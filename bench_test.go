package biaslab_test

// One testing.B benchmark per table and figure of the paper's evaluation.
// Each iteration regenerates the artifact from scratch (compile → link →
// load → simulate → analyze), so `go test -bench=.` is the reproduction
// harness: its output includes the rendered artifacts on the first
// iteration of each benchmark.
//
// Workload size defaults to "test" so the harness completes quickly; set
// BIASLAB_BENCH_SIZE=small (or ref) for the paper-scale runs recorded in
// EXPERIMENTS.md.

import (
	"context"
	"fmt"
	"os"
	"testing"

	"biaslab"
)

func benchSize() biaslab.Size {
	switch os.Getenv("BIASLAB_BENCH_SIZE") {
	case "small":
		return biaslab.SizeSmall
	case "ref":
		return biaslab.SizeRef
	}
	return biaslab.SizeTest
}

func labOptions() biaslab.LabOptions {
	opt := biaslab.LabOptions{Size: benchSize()}
	if opt.Size == biaslab.SizeTest {
		// Keep the default harness cheap: coarser sweeps, fewer orders.
		opt.EnvStep = 512
		opt.FineStep = 256
		opt.LinkOrders = 6
		opt.RandomSetups = 6
	}
	return opt
}

// runExperiment is the shared body: fresh Lab per iteration so caching
// never hides the real cost, artifact printed once for inspection.
func runExperiment(b *testing.B, id string) {
	b.Helper()
	printed := false
	for i := 0; i < b.N; i++ {
		lab := biaslab.NewLab(labOptions())
		res, err := lab.ByID(id)
		if err != nil {
			b.Fatal(err)
		}
		if !printed {
			printed = true
			fmt.Printf("\n%s\n", res.Text)
		}
	}
}

// BenchmarkTableSuite regenerates T1, the benchmark-suite table.
func BenchmarkTableSuite(b *testing.B) { runExperiment(b, "T1") }

// BenchmarkFigure1 regenerates Figure 1: perlbench cycles at O2 and O3 as
// the UNIX environment grows (Core 2).
func BenchmarkFigure1(b *testing.B) { runExperiment(b, "F1") }

// BenchmarkFigure2 regenerates Figure 2: perlbench O3 speedup vs
// environment size (Core 2).
func BenchmarkFigure2(b *testing.B) { runExperiment(b, "F2") }

// BenchmarkFigure3 regenerates Figure 3: suite-wide O3 speedup ranges
// across environment sizes on Core 2 — the paper's headline figure.
func BenchmarkFigure3(b *testing.B) { runExperiment(b, "F3") }

// BenchmarkFigure4 regenerates Figure 4: the same study on Pentium 4.
func BenchmarkFigure4(b *testing.B) { runExperiment(b, "F4") }

// BenchmarkFigure5 regenerates Figure 5: the same study on the m5 O3CPU
// model — bias appears even on a simulator.
func BenchmarkFigure5(b *testing.B) { runExperiment(b, "F5") }

// BenchmarkFigure6 regenerates Figure 6: suite-wide O3 speedup ranges
// across link orders on Core 2.
func BenchmarkFigure6(b *testing.B) { runExperiment(b, "F6") }

// BenchmarkFigure7 regenerates Figure 7: the link-order study on m5.
func BenchmarkFigure7(b *testing.B) { runExperiment(b, "F7") }

// BenchmarkTableBias regenerates T2: bias magnitude vs the O3 effect for
// every benchmark × machine × factor.
func BenchmarkTableBias(b *testing.B) { runExperiment(b, "T2") }

// BenchmarkTableSurvey regenerates T3: the 133-paper literature survey.
func BenchmarkTableSurvey(b *testing.B) { runExperiment(b, "T3") }

// BenchmarkTableCompilers regenerates T4: environment bias under both
// compiler personalities.
func BenchmarkTableCompilers(b *testing.B) { runExperiment(b, "T4") }

// BenchmarkFigure8 regenerates F8: the causal-analysis intervention study.
func BenchmarkFigure8(b *testing.B) { runExperiment(b, "F8") }

// BenchmarkFigure9 regenerates F9: setup randomization vs single-setup
// estimates.
func BenchmarkFigure9(b *testing.B) { runExperiment(b, "F9") }

// BenchmarkSimulator measures raw simulator throughput (instructions per
// second of host time), the figure of merit for harness cost planning.
func BenchmarkSimulator(b *testing.B) {
	r := biaslab.NewRunner(benchSize())
	bm, _ := biaslab.Benchmark("libquantum")
	setup := biaslab.DefaultSetup("core2")
	var instrs uint64
	for i := 0; i < b.N; i++ {
		m, err := r.Measure(context.Background(), bm, setup)
		if err != nil {
			b.Fatal(err)
		}
		instrs += m.Counters.Instructions
	}
	b.ReportMetric(float64(instrs)/b.Elapsed().Seconds()/1e6, "Minstr/s")
}

// BenchmarkEnvSweep measures the end-to-end cost of one environment sweep
// (the Figure 3 inner loop: one benchmark, one machine, 33 env sizes),
// reporting sweep points per second of host time. A sweep shares one
// compile, one link and one predecode across its points, so this is the
// workload the memoized pipeline is built for.
func BenchmarkEnvSweep(b *testing.B) {
	bm, _ := biaslab.Benchmark("libquantum")
	setup := biaslab.DefaultSetup("core2")
	sizes := biaslab.DefaultEnvSizes(128)
	var points int
	for i := 0; i < b.N; i++ {
		// Fresh Runner per iteration: the sweep pays its own compile and
		// link, exactly as an experiment does.
		r := biaslab.NewRunner(benchSize())
		pts, err := biaslab.EnvSweep(context.Background(), r, bm, setup, sizes)
		if err != nil {
			b.Fatal(err)
		}
		points += len(pts)
	}
	b.ReportMetric(float64(points)/b.Elapsed().Seconds(), "points/s")
}

// BenchmarkEnvSweepAdaptive measures the oracle-guided sweep in the regime
// the oracle models exactly: a pressure-free machine (large associativity,
// no store buffer — the same geometry the oracle's cross-validation test
// certifies) over a fine step-16 grid. The sweep measures only predicted
// boundaries plus verification points and interpolates the rest; the
// measured_pts metric against grid_pts is the honest savings figure, and
// the result is byte-identical to the dense sweep (asserted in
// internal/core's tests). On the built-in machines unmodelled mechanisms
// break plateau flatness and the sweep degrades to dense — see
// EXPERIMENTS.md.
func BenchmarkEnvSweepAdaptive(b *testing.B) {
	bm, _ := biaslab.Benchmark("libquantum")
	cfg := biaslab.MachineConfig{
		Name:        "pressure-free",
		IssueWidth:  4,
		L1I:         biaslab.CacheConfig{Name: "L1I", SizeKB: 32, LineSize: 64, Ways: 8},
		L1D:         biaslab.CacheConfig{Name: "L1D", SizeKB: 64, LineSize: 64, Ways: 8},
		L2:          biaslab.CacheConfig{Name: "L2", SizeKB: 2048, LineSize: 64, Ways: 16},
		ITLBEntries: 128, DTLBEntries: 256, PageSize: 4096,
		Predictor: biaslab.PredictorConfig{HistoryBits: 12, BTBEntries: 2048, RASDepth: 16},
		Penalties: biaslab.Penalties{
			L1Miss: 10, L2Miss: 200, ITLBMiss: 20, DTLBMiss: 30,
			Mispredict: 10, BTBRedirect: 4, TakenBranch: 1, MisalignedEntry: 2,
			SplitAccess: 5, Alias4K: 0, Mul: 3, Div: 20, Sys: 100,
		},
		StoreBufferDepth: 0, AliasWindow: 0, FetchBlockBytes: 16,
	}
	sizes := biaslab.DefaultEnvSizes(16)
	var grid, measured int
	for i := 0; i < b.N; i++ {
		r := biaslab.NewRunner(benchSize())
		if err := r.RegisterMachine(cfg.Name, cfg); err != nil {
			b.Fatal(err)
		}
		setup := biaslab.DefaultSetup(cfg.Name)
		_, stats, err := biaslab.EnvSweepAdaptive(context.Background(), r, bm, setup, sizes, nil)
		if err != nil {
			b.Fatal(err)
		}
		if stats.Fallbacks != 0 {
			b.Fatalf("pressure-free plateaus failed verification: %+v", stats)
		}
		grid += stats.GridPoints
		measured += stats.Measured
	}
	b.ReportMetric(float64(grid)/float64(b.N), "grid_pts")
	b.ReportMetric(float64(measured)/float64(b.N), "measured_pts")
	b.ReportMetric(float64(grid)/b.Elapsed().Seconds(), "points/s")
}

// BenchmarkMeasureRepeated measures the steady-state cost of re-measuring
// one (benchmark, setup) on a warm Runner — the singleflight caches make
// this pure load+simulate, the per-run floor for randomized-setup studies.
func BenchmarkMeasureRepeated(b *testing.B) {
	r := biaslab.NewRunner(benchSize())
	bm, _ := biaslab.Benchmark("hmmer")
	setup := biaslab.DefaultSetup("p4")
	if _, err := r.Measure(context.Background(), bm, setup); err != nil {
		b.Fatal(err) // warm the compile/link caches
	}
	b.ResetTimer()
	var instrs uint64
	for i := 0; i < b.N; i++ {
		m, err := r.Measure(context.Background(), bm, setup)
		if err != nil {
			b.Fatal(err)
		}
		instrs += m.Counters.Instructions
	}
	b.ReportMetric(float64(instrs)/b.Elapsed().Seconds()/1e6, "Minstr/s")
}

// BenchmarkCoRun measures co-run simulation throughput: subject and
// co-runner stepped through ONE shared cache/TLB/predictor hierarchy in
// deterministic round-robin quanta. Warm Runner, so this is the pure
// interleaved-execute cost; the Minstr/s metric counts the subject's
// retired instructions only, making it directly comparable to
// BenchmarkMeasureRepeated's solo figure — the gap is the price of
// tenancy (two images resident plus memo flushes at quantum boundaries).
func BenchmarkCoRun(b *testing.B) {
	r := biaslab.NewRunner(benchSize())
	bm, _ := biaslab.Benchmark("sjeng")
	setup := biaslab.DefaultSetup("core2")
	setup.CoRunner = biaslab.CoRunner{Bench: "sjeng"}
	if _, err := r.Measure(context.Background(), bm, setup); err != nil {
		b.Fatal(err) // warm the compile/link caches for both tenants
	}
	b.ResetTimer()
	var instrs uint64
	for i := 0; i < b.N; i++ {
		m, err := r.Measure(context.Background(), bm, setup)
		if err != nil {
			b.Fatal(err)
		}
		instrs += m.Counters.Instructions
	}
	b.ReportMetric(float64(instrs)/b.Elapsed().Seconds()/1e6, "Minstr/s")
}

// BenchmarkToolchain measures the compile+link path alone.
func BenchmarkToolchain(b *testing.B) {
	bm, _ := biaslab.Benchmark("gcc")
	for i := 0; i < b.N; i++ {
		r := biaslab.NewRunner(benchSize())
		// Measure forces compile+link+load+run; dominate it with compile
		// by using the smallest machine run (test size fixed here).
		if _, err := r.Measure(context.Background(), bm, biaslab.DefaultSetup("m5")); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationEnv regenerates A1: the mechanism ablation for the
// environment-size bias on Pentium 4 variants.
func BenchmarkAblationEnv(b *testing.B) { runExperiment(b, "A1") }

// BenchmarkAblationLink regenerates A2: the mechanism ablation for the
// link-order bias on Core 2 variants.
func BenchmarkAblationLink(b *testing.B) { runExperiment(b, "A2") }

// BenchmarkAblationPrefetch regenerates A3: what a next-line prefetcher
// does to measurement bias on the m5 model.
func BenchmarkAblationPrefetch(b *testing.B) { runExperiment(b, "A3") }
