module biaslab

go 1.22
