// Quickstart: the paper's headline result in thirty lines.
//
// A researcher wants to know whether -O3 beats -O2 for a benchmark. She
// measures once, in her own shell. Her colleague repeats the measurement in
// a shell with a larger environment — more exported variables, a longer
// PATH — and gets the opposite answer. Neither did anything obviously
// wrong; the environment block displaced the stack, the stack displacement
// changed the cache and aliasing behaviour, and the measured "effect of O3"
// absorbed the difference.
package main

import (
	"context"
	"fmt"
	"log"

	"biaslab"
)

func main() {
	r := biaslab.NewRunner(biaslab.SizeSmall)
	b, ok := biaslab.Benchmark("perlbench")
	if !ok {
		log.Fatal("perlbench missing from suite")
	}

	// Researcher A: modest environment (~1 KiB of exported variables).
	setupA := biaslab.DefaultSetup("p4")
	setupA.EnvBytes = 1024

	// Researcher B: comfortable login environment (~4 KiB) — more
	// variables, a longer PATH, nothing anyone would think to report.
	setupB := setupA
	setupB.EnvBytes = 4096

	for _, sc := range []struct {
		who   string
		setup biaslab.Setup
	}{{"researcher A (env = 1024B)", setupA}, {"researcher B (env = 4096B)", setupB}} {
		speedup, o2, o3, err := r.Speedup(context.Background(), b, sc.setup, biaslab.O2, biaslab.O3)
		if err != nil {
			log.Fatal(err)
		}
		verdict := "O3 HELPS"
		if speedup < 1 {
			verdict = "O3 HURTS"
		}
		fmt.Printf("%s: O2 %9d cycles, O3 %9d cycles → speedup %.4f  %s\n",
			sc.who, o2.Cycles, o3.Cycles, speedup, verdict)
		// Both measured the same computation: identical output checksums.
		if o2.Checksum != o3.Checksum {
			log.Fatal("checksum mismatch — impossible unless the toolchain is broken")
		}
	}

	fmt.Println("\nSame program, same machine, same compiler — different conclusion.")
	fmt.Println("That is measurement bias. See examples/robust-eval for the fix.")
}
