// linkorder reproduces the paper's second bias channel: permute the order
// in which the benchmark's object files are given to the linker — something
// build systems do implicitly and nobody reports — and watch the measured
// O3 speedup move. The instructions executed are identical in every case;
// only their addresses change, and with them I-cache conflicts, BTB
// aliasing, and fetch alignment.
//
// Usage: linkorder [-bench gcc] [-machine core2] [-orders 16] [-size small]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"biaslab"
	"biaslab/internal/report"
)

func main() {
	benchName := flag.String("bench", "gcc", "benchmark to permute")
	machineName := flag.String("machine", "core2", "machine model: p4, core2, m5")
	orders := flag.Int("orders", 16, "number of random link orders")
	seed := flag.Uint64("seed", 2009, "permutation seed")
	sizeName := flag.String("size", "small", "workload size: test, small, ref")
	flag.Parse()

	size := biaslab.SizeSmall
	switch *sizeName {
	case "test":
		size = biaslab.SizeTest
	case "ref":
		size = biaslab.SizeRef
	}

	b, ok := biaslab.Benchmark(*benchName)
	if !ok {
		log.Fatalf("unknown benchmark %q", *benchName)
	}
	r := biaslab.NewRunner(size)

	fmt.Printf("Linking %s in %d different orders on %s...\n\n", b.Name, *orders+2, *machineName)
	points, err := biaslab.LinkSweep(context.Background(), r, b, biaslab.DefaultSetup(*machineName), *orders, *seed)
	if err != nil {
		log.Fatal(err)
	}

	t := &report.Table{Headers: []string{"link order", "cycles O2", "cycles O3", "speedup O3/O2"}}
	speedups := make([]float64, 0, len(points))
	var worst, best *struct {
		label   string
		speedup float64
	}
	for _, p := range points {
		t.AddRow(p.Label, p.CyclesBase, p.CyclesOpt, p.Speedup)
		speedups = append(speedups, p.Speedup)
		entry := &struct {
			label   string
			speedup float64
		}{p.Label, p.Speedup}
		if best == nil || p.Speedup > best.speedup {
			best = entry
		}
		if worst == nil || p.Speedup < worst.speedup {
			worst = entry
		}
	}
	fmt.Print(t.String())

	rep := biaslab.NewBiasReport(b.Name, *machineName, "link order", speedups)
	fmt.Println()
	fmt.Println(rep)
	fmt.Printf("\nBest case for O3: order %q (%.4f). Worst: %q (%.4f).\n",
		best.label, best.speedup, worst.label, worst.speedup)
	fmt.Println("A paper reporting only one of these orders reports whichever story")
	fmt.Println("its Makefile happened to tell.")
}
