// robust-eval demonstrates the paper's remedies working together.
//
// Part 1 — setup randomization: instead of one arbitrary setup, measure the
// O3 speedup across n randomized setups (random environment size, random
// link order) and report a confidence interval. Bias becomes visible
// variance; the interval either excludes 1.0 (a real effect) or contains it
// (the experiment cannot support a direction, and saying so is the honest
// result).
//
// Part 2 — causal analysis: for the environment-size effect, intervene on
// the suspected cause (stack displacement) directly and rank hardware
// events by correlation with cycles, confirming the mechanism instead of
// guessing it.
//
// Usage: robust-eval [-bench perlbench] [-machine core2] [-n 16] [-size small]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"biaslab"
	"biaslab/internal/report"
)

func main() {
	benchName := flag.String("bench", "perlbench", "benchmark to evaluate")
	machineName := flag.String("machine", "core2", "machine model: p4, core2, m5")
	n := flag.Int("n", 16, "number of randomized setups")
	seed := flag.Uint64("seed", 42, "randomization seed")
	sizeName := flag.String("size", "small", "workload size: test, small, ref")
	flag.Parse()

	size := biaslab.SizeSmall
	switch *sizeName {
	case "test":
		size = biaslab.SizeTest
	case "ref":
		size = biaslab.SizeRef
	}

	b, ok := biaslab.Benchmark(*benchName)
	if !ok {
		log.Fatalf("unknown benchmark %q", *benchName)
	}
	r := biaslab.NewRunner(size)
	base := biaslab.DefaultSetup(*machineName)

	fmt.Printf("== Part 1: setup randomization (%d setups) ==\n\n", *n)
	est, err := biaslab.EstimateSpeedup(context.Background(), r, b, base, *n, *seed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(est)
	if est.Conclusive() {
		fmt.Println("→ the 95% interval excludes 1.0: the O3 effect is real for this benchmark.")
	} else {
		fmt.Println("→ the 95% interval CONTAINS 1.0: across realistic setups this")
		fmt.Println("  experiment does not establish whether O3 helps. A single-setup")
		fmt.Println("  measurement would still have printed a confident-looking number.")
	}

	// Show the spread that randomization summarized.
	s := report.Series{Name: "per-setup speedup"}
	for i, sp := range est.Speedups {
		s.X = append(s.X, float64(i))
		s.Y = append(s.Y, sp)
	}
	fmt.Println()
	fmt.Print(report.LineChart("speedups across randomized setups (---- is 1.0)",
		[]report.Series{s}, 60, 12, 1.0, true))

	fmt.Printf("\n== Part 2: causal analysis of the environment effect ==\n\n")
	rep, err := biaslab.CausalStudy(context.Background(), r, b, base, 1024, 128)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(rep)
	fmt.Println()
	t := &report.Table{
		Title:   "hardware events ranked by |correlation| with cycles under the intervention:",
		Headers: []string{"counter", "pearson", "spearman"},
	}
	for i, c := range rep.Correlations {
		if i >= 6 {
			break
		}
		t.AddRow(c.Counter, c.Pearson, c.Spearman)
	}
	fmt.Print(t.String())
	fmt.Println("\nThe displacement intervention moved cycles without touching the")
	fmt.Println("environment, and the implicated event tracks the cycles: stack")
	fmt.Println("placement — not any property of O3 — explains the swing.")
}
