// envbias reproduces the paper's Figures 1–2 interactively: sweep the UNIX
// environment from empty to 4 KiB and plot how the measured O3-over-O2
// speedup of one benchmark wanders — crossing the speedup=1.0 line, where
// the experiment's *conclusion* silently inverts.
//
// Usage: envbias [-bench perlbench] [-machine core2] [-step 128] [-size small]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"biaslab"
	"biaslab/internal/report"
)

func main() {
	benchName := flag.String("bench", "perlbench", "benchmark to sweep")
	machineName := flag.String("machine", "core2", "machine model: p4, core2, m5")
	step := flag.Uint64("step", 128, "environment-size step in bytes")
	sizeName := flag.String("size", "small", "workload size: test, small, ref")
	flag.Parse()

	size := biaslab.SizeSmall
	switch *sizeName {
	case "test":
		size = biaslab.SizeTest
	case "ref":
		size = biaslab.SizeRef
	}

	b, ok := biaslab.Benchmark(*benchName)
	if !ok {
		log.Fatalf("unknown benchmark %q", *benchName)
	}
	r := biaslab.NewRunner(size)
	setup := biaslab.DefaultSetup(*machineName)

	fmt.Printf("Sweeping environment size for %s on %s (%s workload)...\n\n", b.Name, *machineName, *sizeName)
	points, err := biaslab.EnvSweep(context.Background(), r, b, setup, biaslab.DefaultEnvSizes(*step))
	if err != nil {
		log.Fatal(err)
	}

	s := report.Series{Name: "speedup O3/O2"}
	speedups := make([]float64, 0, len(points))
	for _, p := range points {
		s.X = append(s.X, float64(p.EnvBytes))
		s.Y = append(s.Y, p.Speedup)
		speedups = append(speedups, p.Speedup)
	}
	fmt.Print(report.LineChart(
		fmt.Sprintf("O3 speedup of %s vs environment size (%s); the ---- line is speedup = 1.0", b.Name, *machineName),
		[]report.Series{s}, 72, 18, 1.0, true))

	rep := biaslab.NewBiasReport(b.Name, *machineName, "environment size", speedups)
	fmt.Println()
	fmt.Println(rep)
	if rep.FlipsSign {
		fmt.Println("\nThe sweep crosses 1.0: with one environment O3 looks beneficial,")
		fmt.Println("with another it looks harmful. The environment is not part of the")
		fmt.Println("program — yet it decided the experiment's conclusion.")
	} else {
		fmt.Printf("\nNo sign flip here, but the speedup still moved by %.2f%% for a\n", 100*rep.Speedups.Range())
		fmt.Println("change no evaluation section would ever mention.")
	}
}
