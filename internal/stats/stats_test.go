package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{4, 1, 3, 2, 5})
	if s.N != 5 || s.Min != 1 || s.Max != 5 || s.Median != 3 || s.Mean != 3 {
		t.Errorf("summary wrong: %+v", s)
	}
	if !almostEq(s.Std, math.Sqrt(2.5), 1e-12) {
		t.Errorf("std = %v", s.Std)
	}
	if s.Range() != 4 {
		t.Errorf("range = %v", s.Range())
	}
	if len(s.String()) == 0 {
		t.Error("empty String")
	}
}

func TestSummarizePanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Summarize(nil)
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if Quantile(xs, 0) != 1 || Quantile(xs, 1) != 4 {
		t.Error("extreme quantiles wrong")
	}
	if !almostEq(Quantile(xs, 0.5), 2.5, 1e-12) {
		t.Errorf("median = %v", Quantile(xs, 0.5))
	}
	if !almostEq(Quantile(xs, 0.25), 1.75, 1e-12) {
		t.Errorf("q1 = %v", Quantile(xs, 0.25))
	}
}

func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(raw []float64, a, b float64) bool {
		if len(raw) == 0 {
			return true
		}
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
		}
		xs := append([]float64(nil), raw...)
		sort.Float64s(xs)
		qa, qb := math.Mod(math.Abs(a), 1), math.Mod(math.Abs(b), 1)
		if qa > qb {
			qa, qb = qb, qa
		}
		return Quantile(xs, qa) <= Quantile(xs, qb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTInterval(t *testing.T) {
	xs := []float64{9.8, 10.1, 10.0, 9.9, 10.2}
	iv := TInterval(xs, 0.95)
	if !iv.Contains(10.0) {
		t.Errorf("interval %v should contain 10.0", iv)
	}
	if iv.Width() <= 0 || iv.Width() > 1 {
		t.Errorf("implausible width %v", iv.Width())
	}
	// Wider confidence ⇒ wider interval.
	iv99 := TInterval(xs, 0.99)
	if iv99.Width() <= iv.Width() {
		t.Error("99% interval not wider than 95%")
	}
	one := TInterval([]float64{5}, 0.95)
	if one.Lo != 5 || one.Hi != 5 {
		t.Error("single-sample interval should be degenerate")
	}
}

func TestTIntervalCoverageProperty(t *testing.T) {
	// Empirical coverage: a 95% t-interval over normal-ish samples should
	// contain the true mean in clearly more than 80% of trials.
	rng := NewRNG(42)
	const trials = 400
	covered := 0
	for i := 0; i < trials; i++ {
		xs := make([]float64, 10)
		for j := range xs {
			// Sum of uniforms ≈ normal, mean 3.
			xs[j] = rng.Float64() + rng.Float64() + rng.Float64() + rng.Float64() + rng.Float64() + rng.Float64() - 3 + 3
		}
		if TInterval(xs, 0.95).Contains(3) {
			covered++
		}
	}
	if covered < trials*8/10 {
		t.Errorf("coverage %d/%d too low", covered, trials)
	}
}

func TestBootstrapInterval(t *testing.T) {
	rng := NewRNG(7)
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	iv := BootstrapMeanInterval(xs, 0.95, 2000, rng)
	if !iv.Contains(5.5) {
		t.Errorf("bootstrap interval %v should contain 5.5", iv)
	}
	if iv.Lo < 1 || iv.Hi > 10 {
		t.Errorf("bootstrap interval %v outside sample range", iv)
	}
}

func TestPearson(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	if r := Pearson(xs, ys); !almostEq(r, 1, 1e-12) {
		t.Errorf("perfect correlation = %v", r)
	}
	neg := []float64{10, 8, 6, 4, 2}
	if r := Pearson(xs, neg); !almostEq(r, -1, 1e-12) {
		t.Errorf("perfect anticorrelation = %v", r)
	}
	flat := []float64{3, 3, 3, 3, 3}
	if r := Pearson(xs, flat); r != 0 {
		t.Errorf("zero-variance correlation = %v", r)
	}
}

func TestSpearman(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{1, 4, 9, 16, 25} // monotone, nonlinear
	if r := Spearman(xs, ys); !almostEq(r, 1, 1e-12) {
		t.Errorf("monotone Spearman = %v", r)
	}
	tied := []float64{1, 1, 2, 2, 3}
	_ = Spearman(xs, tied) // must not panic on ties
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(123), NewRNG(123)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	if NewRNG(0).Uint64() == 0 {
		t.Error("zero seed should be remapped")
	}
}

func TestRNGPerm(t *testing.T) {
	rng := NewRNG(9)
	p := rng.Perm(20)
	seen := make([]bool, 20)
	for _, v := range p {
		if v < 0 || v >= 20 || seen[v] {
			t.Fatalf("bad permutation %v", p)
		}
		seen[v] = true
	}
	// Different draws differ (with overwhelming probability).
	q := rng.Perm(20)
	same := true
	for i := range p {
		if p[i] != q[i] {
			same = false
		}
	}
	if same {
		t.Error("two permutations identical")
	}
}

func TestRNGUniformityProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := NewRNG(seed)
		buckets := make([]int, 8)
		for i := 0; i < 800; i++ {
			buckets[rng.Intn(8)]++
		}
		for _, c := range buckets {
			if c < 40 || c > 180 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram([]float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}, 5)
	total := 0
	for _, c := range h.Counts {
		total += c
	}
	if total != 10 {
		t.Errorf("histogram lost values: %v", h.Counts)
	}
	if h.Counts[0] != 2 || h.Counts[4] != 2 {
		t.Errorf("bin counts wrong: %v", h.Counts)
	}
	flat := NewHistogram([]float64{5, 5, 5}, 3)
	if flat.Counts[0] != 3 {
		t.Errorf("degenerate histogram wrong: %v", flat.Counts)
	}
}

func TestIntervalHelpers(t *testing.T) {
	iv := Interval{Lo: 1, Hi: 3, Level: 0.95}
	if !iv.Contains(2) || iv.Contains(0) || iv.Contains(4) {
		t.Error("Contains wrong")
	}
	if iv.Width() != 2 {
		t.Error("Width wrong")
	}
	if len(iv.String()) == 0 {
		t.Error("String empty")
	}
}

func TestMedianInterval(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15}
	iv := MedianInterval(xs, 0.95)
	if !iv.Contains(8) {
		t.Errorf("median interval %v should contain 8", iv)
	}
	if iv.Lo < 1 || iv.Hi > 15 {
		t.Errorf("interval %v outside sample", iv)
	}
	if iv.Lo >= 8 || iv.Hi <= 8 {
		t.Errorf("degenerate interval %v", iv)
	}
	// Small sample: conservative full range.
	small := MedianInterval([]float64{3, 1, 2}, 0.95)
	if small.Lo != 1 || small.Hi != 3 {
		t.Errorf("small-sample interval %v should be the range", small)
	}
}

func TestMedianIntervalCoverage(t *testing.T) {
	// Empirical coverage over uniform samples with median 0.5.
	rng := NewRNG(77)
	const trials = 300
	covered := 0
	for i := 0; i < trials; i++ {
		xs := make([]float64, 25)
		for j := range xs {
			xs[j] = rng.Float64()
		}
		if MedianInterval(xs, 0.95).Contains(0.5) {
			covered++
		}
	}
	if covered < trials*85/100 {
		t.Errorf("median CI coverage %d/%d too low", covered, trials)
	}
}

func TestEffectSize(t *testing.T) {
	a := []float64{10, 11, 12, 13, 14}
	b := []float64{20, 21, 22, 23, 24}
	d := EffectSize(a, b)
	if d >= 0 {
		t.Errorf("a < b should give negative d, got %v", d)
	}
	if math.Abs(EffectSize(a, a)) > 1e-12 {
		t.Error("identical samples should give d = 0")
	}
	flat := []float64{5, 5, 5}
	if EffectSize(flat, flat) != 0 {
		t.Error("zero-variance effect size should be 0")
	}
}

func TestBinomHelpers(t *testing.T) {
	// Sum of the full PMF is 1.
	var sum float64
	for k := 0; k <= 20; k++ {
		sum += binomPMF(20, k)
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("binomial PMF sums to %v", sum)
	}
	if lnChoose(10, -1) != math.Inf(-1) || lnChoose(10, 11) != math.Inf(-1) {
		t.Error("out-of-range lnChoose should be -inf")
	}
}
