// Package stats provides the statistics the experiments report: summary
// statistics, quantiles, confidence intervals (Student-t and bootstrap),
// correlation, and the compact distribution summaries used to render the
// paper's violin-style figures in text.
//
// The paper's remedy for measurement bias is statistical — evaluate over
// many randomized setups and report an interval, not a point — so this
// package is part of the contribution, not just plumbing.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds the moments and order statistics of a sample.
type Summary struct {
	N      int
	Mean   float64
	Std    float64 // sample standard deviation (n-1)
	Min    float64
	Q1     float64
	Median float64
	Q3     float64
	Max    float64
}

// Summarize computes a Summary of xs. It panics on an empty sample: callers
// decide what an absent measurement means, not this package.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		panic("stats: Summarize of empty sample")
	}
	s := Summary{N: len(xs)}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.Min, s.Max = sorted[0], sorted[len(sorted)-1]
	s.Q1 = Quantile(sorted, 0.25)
	s.Median = Quantile(sorted, 0.5)
	s.Q3 = Quantile(sorted, 0.75)
	s.Mean = Mean(xs)
	s.Std = Std(xs)
	return s
}

// Range returns max − min.
func (s Summary) Range() float64 { return s.Max - s.Min }

func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4f std=%.4f min=%.4f med=%.4f max=%.4f",
		s.N, s.Mean, s.Std, s.Min, s.Median, s.Max)
}

// Mean returns the arithmetic mean.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Mean of empty sample")
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Std returns the sample standard deviation (n−1 denominator); 0 for n<2.
func Std(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(n-1))
}

// Quantile returns the q-quantile (0≤q≤1) of a **sorted** sample using
// linear interpolation between order statistics.
func Quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		panic("stats: Quantile of empty sample")
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Interval is a two-sided confidence interval.
type Interval struct {
	Lo, Hi float64
	Level  float64 // e.g. 0.95
}

// Contains reports whether v lies inside the interval.
func (iv Interval) Contains(v float64) bool { return v >= iv.Lo && v <= iv.Hi }

// Width returns Hi − Lo.
func (iv Interval) Width() float64 { return iv.Hi - iv.Lo }

func (iv Interval) String() string {
	return fmt.Sprintf("[%.4f, %.4f] (%.0f%%)", iv.Lo, iv.Hi, iv.Level*100)
}

// TInterval returns the Student-t confidence interval for the mean of xs at
// the given level (0.90, 0.95 or 0.99).
func TInterval(xs []float64, level float64) Interval {
	n := len(xs)
	if n < 2 {
		m := Mean(xs)
		return Interval{Lo: m, Hi: m, Level: level}
	}
	m := Mean(xs)
	se := Std(xs) / math.Sqrt(float64(n))
	t := tCritical(n-1, level)
	return Interval{Lo: m - t*se, Hi: m + t*se, Level: level}
}

// tCritical returns the two-sided critical value of Student's t for the
// given degrees of freedom. The table covers the levels the experiments
// use; large df falls back to the normal approximation.
func tCritical(df int, level float64) float64 {
	type row struct{ t90, t95, t99 float64 }
	table := map[int]row{
		1: {6.314, 12.706, 63.657}, 2: {2.920, 4.303, 9.925},
		3: {2.353, 3.182, 5.841}, 4: {2.132, 2.776, 4.604},
		5: {2.015, 2.571, 4.032}, 6: {1.943, 2.447, 3.707},
		7: {1.895, 2.365, 3.499}, 8: {1.860, 2.306, 3.355},
		9: {1.833, 2.262, 3.250}, 10: {1.812, 2.228, 3.169},
		12: {1.782, 2.179, 3.055}, 15: {1.753, 2.131, 2.947},
		20: {1.725, 2.086, 2.845}, 25: {1.708, 2.060, 2.787},
		30: {1.697, 2.042, 2.750}, 40: {1.684, 2.021, 2.704},
		60: {1.671, 2.000, 2.660}, 120: {1.658, 1.980, 2.617},
	}
	keys := []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 12, 15, 20, 25, 30, 40, 60, 120}
	pick := keys[len(keys)-1]
	for _, k := range keys {
		if df <= k {
			pick = k
			break
		}
	}
	r, ok := table[pick]
	if !ok || df > 120 {
		r = row{1.645, 1.960, 2.576}
	}
	switch {
	case level <= 0.90:
		return r.t90
	case level <= 0.95:
		return r.t95
	default:
		return r.t99
	}
}

// RNG is a small deterministic generator (xorshift64*), used everywhere
// randomness is needed so experiments are exactly reproducible from seeds.
type RNG struct{ state uint64 }

// NewRNG seeds a generator; seed 0 is remapped to a fixed constant.
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &RNG{state: seed}
}

// Uint64 returns the next raw value.
func (r *RNG) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// Intn returns a value in [0, n).
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with non-positive bound")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// BootstrapMeanInterval returns a percentile-bootstrap confidence interval
// for the mean of xs, using iters resamples from rng.
func BootstrapMeanInterval(xs []float64, level float64, iters int, rng *RNG) Interval {
	if len(xs) == 0 {
		panic("stats: bootstrap of empty sample")
	}
	if iters <= 0 {
		iters = 1000
	}
	means := make([]float64, iters)
	for b := 0; b < iters; b++ {
		var sum float64
		for i := 0; i < len(xs); i++ {
			sum += xs[rng.Intn(len(xs))]
		}
		means[b] = sum / float64(len(xs))
	}
	sort.Float64s(means)
	alpha := (1 - level) / 2
	return Interval{
		Lo:    Quantile(means, alpha),
		Hi:    Quantile(means, 1-alpha),
		Level: level,
	}
}

// Pearson returns the Pearson correlation coefficient of paired samples.
func Pearson(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) < 2 {
		panic("stats: Pearson needs two equal samples of length ≥ 2")
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// Spearman returns the Spearman rank correlation of paired samples.
func Spearman(xs, ys []float64) float64 {
	return Pearson(ranks(xs), ranks(ys))
}

func ranks(xs []float64) []float64 {
	idx := make([]int, len(xs))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	r := make([]float64, len(xs))
	for pos := 0; pos < len(idx); {
		// Average ranks across ties.
		end := pos
		for end+1 < len(idx) && xs[idx[end+1]] == xs[idx[pos]] {
			end++
		}
		avg := float64(pos+end)/2 + 1
		for k := pos; k <= end; k++ {
			r[idx[k]] = avg
		}
		pos = end + 1
	}
	return r
}

// Histogram bins xs into n equal-width bins over [min, max].
type Histogram struct {
	Lo, Hi float64
	Counts []int
}

// NewHistogram builds a histogram with n bins.
func NewHistogram(xs []float64, n int) Histogram {
	if len(xs) == 0 || n <= 0 {
		panic("stats: bad histogram input")
	}
	s := Summarize(xs)
	h := Histogram{Lo: s.Min, Hi: s.Max, Counts: make([]int, n)}
	span := s.Max - s.Min
	for _, x := range xs {
		bin := 0
		if span > 0 {
			bin = int((x - s.Min) / span * float64(n))
			if bin >= n {
				bin = n - 1
			}
		}
		h.Counts[bin]++
	}
	return h
}

// MedianInterval returns a distribution-free confidence interval for the
// median based on order statistics (binomial argument): the interval
// [x(lo), x(hi)] covers the true median with at least the requested level.
// Later methodology work (e.g. Kalibera & Jones) recommends medians over
// means for performance data because they resist the heavy right tails
// measurement noise produces; biaslab offers both.
func MedianInterval(xs []float64, level float64) Interval {
	if len(xs) == 0 {
		panic("stats: MedianInterval of empty sample")
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	n := len(sorted)
	if n < 6 {
		// Too few samples for a nondegenerate order-statistic interval at
		// common levels; report the full range, which is conservative.
		return Interval{Lo: sorted[0], Hi: sorted[n-1], Level: level}
	}
	// Find the smallest symmetric pair of order statistics whose binomial
	// coverage reaches the level: P(lo < #below ≤ hi) with p = 1/2.
	alpha := 1 - level
	lo, hi := 0, n-1
	for lo < hi-1 {
		// Coverage of [lo+1, hi] order statistics (1-based ranks).
		cov := binomCoverage(n, lo+1, hi)
		covNext := binomCoverage(n, lo+2, hi-1)
		if covNext >= 1-alpha {
			lo++
			hi--
			_ = cov
			continue
		}
		break
	}
	return Interval{Lo: sorted[lo], Hi: sorted[hi], Level: level}
}

// binomCoverage returns P(loRank ≤ B ≤ hiRank−1) for B ~ Binomial(n, 1/2):
// the probability the true median lies between the loRank-th and hiRank-th
// order statistics (1-based).
func binomCoverage(n, loRank, hiRank int) float64 {
	var p float64
	for k := loRank; k < hiRank; k++ {
		p += binomPMF(n, k)
	}
	return p
}

// binomPMF is C(n,k) / 2^n computed in log space to avoid overflow.
func binomPMF(n, k int) float64 {
	return math.Exp(lnChoose(n, k) - float64(n)*math.Ln2)
}

func lnChoose(n, k int) float64 {
	if k < 0 || k > n {
		return math.Inf(-1)
	}
	return lnFact(n) - lnFact(k) - lnFact(n-k)
}

func lnFact(n int) float64 {
	var s float64
	for i := 2; i <= n; i++ {
		s += math.Log(float64(i))
	}
	return s
}

// EffectSize returns Cohen's d for two samples (pooled standard deviation):
// a scale-free measure of how far apart two configurations are relative to
// their variability across setups.
func EffectSize(xs, ys []float64) float64 {
	if len(xs) < 2 || len(ys) < 2 {
		panic("stats: EffectSize needs ≥ 2 samples on each side")
	}
	mx, my := Mean(xs), Mean(ys)
	sx, sy := Std(xs), Std(ys)
	nx, ny := float64(len(xs)), float64(len(ys))
	pooled := math.Sqrt(((nx-1)*sx*sx + (ny-1)*sy*sy) / (nx + ny - 2))
	if pooled == 0 {
		return 0
	}
	return (mx - my) / pooled
}
