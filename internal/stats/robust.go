// Rigorous effect-size statistics for randomized-setup experiments: the
// hierarchical random-effects bootstrap of Kalibera & Jones ("Rigorous
// benchmarking in reasonable time"), the median-based Speedup-Test of
// Touati et al., and the sample-size planning that grounds the audit
// rules' thresholds. Everything here is deterministic: resamplers are
// seeded explicitly (SeedFrom) so a confidence interval is a pure function
// of the data and the experiment's identity, byte-identical across runs,
// processes and machines.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// SeedFrom derives a deterministic RNG seed from an experiment's identity —
// typically the fields that make up its content key (kind, bench, machine,
// n, seed). FNV-64a over the parts with a separator, so distinct identities
// collide no more often than any 64-bit hash and the same identity always
// resamples identically.
func SeedFrom(parts ...string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, p := range parts {
		for i := 0; i < len(p); i++ {
			h ^= uint64(p[i])
			h *= prime64
		}
		h ^= 0x1F // separator: ("ab","c") and ("a","bc") hash apart
		h *= prime64
	}
	return h
}

// MinSamples returns the smallest sample size n ≥ 2 for which a Student-t
// confidence interval at the given level has half-width ≤ halfWidth,
// assuming the sample standard deviation is sigma: the planning inverse of
// TInterval, and the statistical grounding behind the auditor's
// insufficient-repetition rule. sigma and halfWidth share units (for
// speedup ratios, 0.01 = one percentage point).
func MinSamples(sigma, halfWidth, level float64) int {
	if sigma <= 0 || halfWidth <= 0 {
		panic("stats: MinSamples needs positive sigma and halfWidth")
	}
	const limit = 4096
	for n := 2; n <= limit; n++ {
		if tCritical(n-1, level)*sigma/math.Sqrt(float64(n)) <= halfWidth {
			return n
		}
	}
	return limit
}

// HierarchicalCI returns a percentile-bootstrap confidence interval for the
// grand mean of a two-level experiment — groups are randomized setups,
// group members are repetitions within a setup — following the
// random-effects resampling of Kalibera & Jones: each bootstrap replicate
// redraws setups with replacement, then redraws repetitions within each
// drawn setup, so the interval reflects both between-setup variance (the
// measurement bias the paper studies) and within-setup variance. With one
// repetition per setup (biaslab's deterministic simulator) the inner level
// is degenerate and the interval reduces to a setup-level bootstrap, which
// is exactly the variance that remains. The estimator is the mean of group
// means (balanced weighting: a setup's evidence does not grow with its
// repetition count).
func HierarchicalCI(groups [][]float64, level float64, iters int, rng *RNG) Interval {
	if len(groups) == 0 {
		panic("stats: HierarchicalCI of empty sample")
	}
	for _, g := range groups {
		if len(g) == 0 {
			panic("stats: HierarchicalCI group with no repetitions")
		}
	}
	if iters <= 0 {
		iters = 1000
	}
	means := make([]float64, iters)
	for b := 0; b < iters; b++ {
		var sum float64
		for i := 0; i < len(groups); i++ {
			g := groups[rng.Intn(len(groups))]
			var gs float64
			for j := 0; j < len(g); j++ {
				gs += g[rng.Intn(len(g))]
			}
			sum += gs / float64(len(g))
		}
		means[b] = sum / float64(len(groups))
	}
	sort.Float64s(means)
	alpha := (1 - level) / 2
	return Interval{
		Lo:    Quantile(means, alpha),
		Hi:    Quantile(means, 1-alpha),
		Level: level,
	}
}

// SpeedupVerdict is the outcome of a SpeedupTest.
type SpeedupVerdict string

// Speedup-Test verdicts.
const (
	// VerdictFaster: the optimized configuration is faster (median speedup
	// above 1) at the test's level.
	VerdictFaster SpeedupVerdict = "faster"
	// VerdictSlower: the optimized configuration is slower.
	VerdictSlower SpeedupVerdict = "slower"
	// VerdictInconclusive: the sign test cannot reject "no effect".
	VerdictInconclusive SpeedupVerdict = "inconclusive"
)

// SpeedupTestResult is the outcome of the median-based Speedup-Test.
type SpeedupTestResult struct {
	// N is the number of per-setup speedup ratios tested.
	N int `json:"n"`
	// Median is the sample median speedup ratio.
	Median float64 `json:"median"`
	// Wins counts setups with speedup > 1, Losses speedup < 1; ties (exactly
	// 1.0) are discarded, as in the classical sign test.
	Wins   int `json:"wins"`
	Losses int `json:"losses"`
	Ties   int `json:"ties"`
	// P is the two-sided sign-test p-value for H0: median speedup = 1.
	P float64 `json:"p"`
	// Level is the confidence level the verdict was decided at.
	Level float64 `json:"level"`
	// Verdict is faster/slower/inconclusive at Level.
	Verdict SpeedupVerdict `json:"verdict"`
}

func (t SpeedupTestResult) String() string {
	return fmt.Sprintf("speedup-test: %s (median %.4f, %d/%d setups faster, sign-test p=%.3f at %.0f%%)",
		t.Verdict, t.Median, t.Wins, t.Wins+t.Losses, t.P, t.Level*100)
}

// SpeedupTest runs the median-based Speedup-Test of Touati et al. on
// per-setup speedup ratios: a two-sided sign test of H0 "the median
// speedup is 1" (no effect). Unlike a t interval on the mean, it is
// distribution-free and immune to the heavy tails and outlier setups that
// measurement bias produces: each randomized setup contributes only the
// sign of its ratio. The verdict declares a direction only when the exact
// binomial p-value beats 1−level.
func SpeedupTest(speedups []float64, level float64) SpeedupTestResult {
	if len(speedups) == 0 {
		panic("stats: SpeedupTest of empty sample")
	}
	sorted := append([]float64(nil), speedups...)
	sort.Float64s(sorted)
	t := SpeedupTestResult{
		N:       len(speedups),
		Median:  Quantile(sorted, 0.5),
		Level:   level,
		Verdict: VerdictInconclusive,
	}
	for _, sp := range speedups {
		switch {
		case sp > 1:
			t.Wins++
		case sp < 1:
			t.Losses++
		default:
			t.Ties++
		}
	}
	m := t.Wins + t.Losses
	if m == 0 {
		// Every setup tied at exactly 1.0: no evidence either way.
		t.P = 1
		return t
	}
	// Two-sided exact binomial tail: P(B ≥ max(wins, losses)) doubled,
	// B ~ Binomial(m, 1/2).
	k := t.Wins
	if t.Losses > k {
		k = t.Losses
	}
	var tail float64
	for i := k; i <= m; i++ {
		tail += binomPMF(m, i)
	}
	t.P = 2 * tail
	if t.P > 1 {
		t.P = 1
	}
	if t.P <= 1-level {
		if t.Wins > t.Losses {
			t.Verdict = VerdictFaster
		} else {
			t.Verdict = VerdictSlower
		}
	}
	return t
}
