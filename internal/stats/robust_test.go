package stats

import (
	"fmt"
	"math"
	"testing"
)

func TestSeedFrom(t *testing.T) {
	a := SeedFrom("randomize", "hmmer", "core2")
	if a != SeedFrom("randomize", "hmmer", "core2") {
		t.Fatal("SeedFrom is not deterministic")
	}
	if a == SeedFrom("randomize", "hmmer", "p4") {
		t.Fatal("SeedFrom ignores its parts")
	}
	// The separator must keep part boundaries significant.
	if SeedFrom("ab", "c") == SeedFrom("a", "bc") {
		t.Fatal("SeedFrom collapses part boundaries")
	}
}

func TestMinSamples(t *testing.T) {
	// The audit grounding case: prior σ = 0.015, target half-width 0.01.
	n := MinSamples(0.015, 0.01, 0.95)
	if n < 2 || n > 4096 {
		t.Fatalf("MinSamples out of range: %d", n)
	}
	// Verify the defining property: n suffices, n-1 does not.
	half := func(n int) float64 {
		return tCritical(n-1, 0.95) * 0.015 / math.Sqrt(float64(n))
	}
	if half(n) > 0.01 {
		t.Fatalf("n=%d does not reach the target half-width: %v", n, half(n))
	}
	if n > 2 && half(n-1) <= 0.01 {
		t.Fatalf("n=%d is not minimal: n-1 already reaches %v", n, half(n-1))
	}
	// Zero-variance-ish sigma needs almost nothing; huge targets likewise.
	if got := MinSamples(0.001, 0.5, 0.95); got != 2 {
		t.Fatalf("tiny sigma should need n=2, got %d", got)
	}
	// Tighter targets need more samples, monotonically.
	if MinSamples(0.015, 0.005, 0.95) <= n {
		t.Fatal("halving the target half-width should raise the required n")
	}
}

func TestHierarchicalCI(t *testing.T) {
	// Two-level sample with real between- and within-group variance.
	groups := [][]float64{
		{1.00, 1.02, 0.98},
		{1.10, 1.12, 1.08},
		{0.95, 0.97, 0.93},
		{1.05, 1.03, 1.07},
		{1.01, 0.99, 1.00},
	}
	iv := HierarchicalCI(groups, 0.95, 2000, NewRNG(7))
	if iv.Lo > iv.Hi {
		t.Fatalf("inverted interval %v", iv)
	}
	// The grand mean of group means must be covered.
	var grand float64
	for _, g := range groups {
		grand += Mean(g)
	}
	grand /= float64(len(groups))
	if !iv.Contains(grand) {
		t.Fatalf("interval %v does not contain the grand mean %v", iv, grand)
	}
	// Singleton groups (one repetition per setup) must degrade to a
	// setup-level bootstrap, not panic or collapse.
	singles := [][]float64{{1.0}, {1.1}, {0.9}, {1.05}, {0.95}, {1.02}}
	iv2 := HierarchicalCI(singles, 0.95, 2000, NewRNG(7))
	if iv2.Width() <= 0 {
		t.Fatalf("singleton-group interval degenerate: %v", iv2)
	}
}

// TestHierarchicalCIDeterministic is the regression test for the
// determinism satellite: with the resampler seeded from the experiment's
// identity, the formatted interval must be byte-identical across runs.
func TestHierarchicalCIDeterministic(t *testing.T) {
	groups := [][]float64{{1.01, 1.02}, {0.98, 0.97}, {1.05, 1.06}, {1.00, 1.01}}
	render := func() string {
		rng := NewRNG(SeedFrom("hier", "hmmer", "core2", "4", "1"))
		iv := HierarchicalCI(groups, 0.95, 1000, rng)
		return fmt.Sprintf("%.17g %.17g %.17g", iv.Lo, iv.Hi, iv.Level)
	}
	first := render()
	for i := 0; i < 3; i++ {
		if got := render(); got != first {
			t.Fatalf("run %d produced %q, first run %q", i, got, first)
		}
	}
}

// TestBootstrapDeterministic pins the one-level bootstrap the same way.
func TestBootstrapDeterministic(t *testing.T) {
	xs := []float64{1.0, 1.1, 0.9, 1.05, 0.95, 1.02, 1.01, 0.99}
	render := func() string {
		rng := NewRNG(SeedFrom("boot", "hmmer", "core2", "8", "1"))
		iv := BootstrapMeanInterval(xs, 0.95, 1000, rng)
		return fmt.Sprintf("%.17g %.17g", iv.Lo, iv.Hi)
	}
	first := render()
	if render() != first || render() != first {
		t.Fatal("BootstrapMeanInterval output varies across identically seeded runs")
	}
}

func TestSpeedupTest(t *testing.T) {
	// Overwhelming wins: verdict faster with a small p.
	fast := []float64{1.02, 1.03, 1.01, 1.04, 1.02, 1.05, 1.01, 1.03, 1.02, 1.04}
	res := SpeedupTest(fast, 0.95)
	if res.Verdict != VerdictFaster {
		t.Fatalf("want faster, got %+v", res)
	}
	if res.Wins != 10 || res.Losses != 0 {
		t.Fatalf("miscounted signs: %+v", res)
	}
	if res.P > 0.05 {
		t.Fatalf("10/10 wins should be significant: p=%v", res.P)
	}

	// Mirror image: slower.
	slow := make([]float64, len(fast))
	for i, sp := range fast {
		slow[i] = 2 - sp
	}
	if got := SpeedupTest(slow, 0.95); got.Verdict != VerdictSlower {
		t.Fatalf("want slower, got %+v", got)
	}

	// Balanced signs: inconclusive with p = 1-ish.
	mixed := []float64{1.02, 0.98, 1.01, 0.99, 1.03, 0.97}
	got := SpeedupTest(mixed, 0.95)
	if got.Verdict != VerdictInconclusive {
		t.Fatalf("want inconclusive, got %+v", got)
	}
	if got.P < 0.5 {
		t.Fatalf("3/3 split should have a large p, got %v", got.P)
	}

	// Small n can never be significant: 4 wins out of 4 has p = 0.125.
	tiny := SpeedupTest([]float64{1.1, 1.1, 1.1, 1.1}, 0.95)
	if tiny.Verdict != VerdictInconclusive {
		t.Fatalf("n=4 must be inconclusive at 95%%: %+v", tiny)
	}

	// Ties are discarded, not counted as evidence.
	ties := SpeedupTest([]float64{1, 1, 1, 1}, 0.95)
	if ties.Verdict != VerdictInconclusive || ties.P != 1 || ties.Ties != 4 {
		t.Fatalf("all-ties sample mishandled: %+v", ties)
	}
}
