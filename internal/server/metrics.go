package server

import (
	"fmt"
	"strings"
	"sync"

	"biaslab/internal/core"
)

// metrics is the daemon's counter set. Job-state counts are derived from
// the live jobs map at snapshot time (the jobs map is the truth); the rest
// are monotonic counters or gauges maintained at the events themselves.
type metrics struct {
	mu            sync.Mutex
	jobsSubmitted uint64
	cacheHits     uint64
	cacheMisses   uint64
	queueDepth    int
	workersBusy   int
	// Per-point sweep progress: fresh measurements vs journal replays.
	pointsMeasured uint64
	pointsReplayed uint64
	// Per-measurement totals fed by the Runner's OnMeasure hook.
	measurements uint64
	instructions uint64
	cycles       uint64
	// Audit outcomes at submission: clean vs flagged specs, suppressed
	// findings, strict-mode rejections.
	auditClean      uint64
	auditFlagged    uint64
	auditSuppressed uint64
	auditRejects    uint64
}

func (m *metrics) submitted(cacheHit bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.jobsSubmitted++
	if cacheHit {
		m.cacheHits++
	} else {
		m.cacheMisses++
	}
}

func (m *metrics) enqueued()  { m.mu.Lock(); m.queueDepth++; m.mu.Unlock() }
func (m *metrics) dequeued()  { m.mu.Lock(); m.queueDepth--; m.mu.Unlock() }
func (m *metrics) busy(d int) { m.mu.Lock(); m.workersBusy += d; m.mu.Unlock() }

func (m *metrics) point(replayed bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if replayed {
		m.pointsReplayed++
	} else {
		m.pointsMeasured++
	}
}

// audited records one spec passing through the auditor at submission.
func (m *metrics) audited(flagged bool, suppressed int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if flagged {
		m.auditFlagged++
	} else {
		m.auditClean++
	}
	m.auditSuppressed += uint64(suppressed)
}

// auditRejected records one strict-mode rejection.
func (m *metrics) auditRejected() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.auditRejects++
}

// measured is the Runner's OnMeasure hook target.
func (m *metrics) measured(meas *core.Measurement) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.measurements++
	m.instructions += meas.Counters.Instructions
	m.cycles += meas.Counters.Cycles
}

// Snapshot is a consistent copy of the daemon's counters — the single
// source behind GET /metrics and biaslabd -selfcheck, so the endpoint and
// the in-process view cannot disagree.
type Snapshot struct {
	JobsSubmitted uint64
	// Jobs counts the daemon's in-memory jobs by current state.
	Jobs           map[JobState]uint64
	CacheHits      uint64
	CacheMisses    uint64
	QueueDepth     int
	Workers        int
	WorkersBusy    int
	PointsMeasured uint64
	PointsReplayed uint64
	Measurements   uint64
	Instructions   uint64
	Cycles         uint64
	// Audit outcomes at submission.
	AuditClean      uint64
	AuditFlagged    uint64
	AuditSuppressed uint64
	AuditRejected   uint64
	// StoredResults is the result store's current size.
	StoredResults int
}

// Render renders the snapshot in the text exposition format, one
// `biaslabd_*` line per counter, in a fixed order.
func (s Snapshot) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "biaslabd_jobs_submitted_total %d\n", s.JobsSubmitted)
	for _, st := range States() {
		fmt.Fprintf(&sb, "biaslabd_jobs{state=%q} %d\n", string(st), s.Jobs[st])
	}
	fmt.Fprintf(&sb, "biaslabd_cache_hits_total %d\n", s.CacheHits)
	fmt.Fprintf(&sb, "biaslabd_cache_misses_total %d\n", s.CacheMisses)
	fmt.Fprintf(&sb, "biaslabd_queue_depth %d\n", s.QueueDepth)
	fmt.Fprintf(&sb, "biaslabd_workers %d\n", s.Workers)
	fmt.Fprintf(&sb, "biaslabd_workers_busy %d\n", s.WorkersBusy)
	fmt.Fprintf(&sb, "biaslabd_points_measured_total %d\n", s.PointsMeasured)
	fmt.Fprintf(&sb, "biaslabd_points_replayed_total %d\n", s.PointsReplayed)
	fmt.Fprintf(&sb, "biaslabd_measurements_total %d\n", s.Measurements)
	fmt.Fprintf(&sb, "biaslabd_instructions_retired_total %d\n", s.Instructions)
	fmt.Fprintf(&sb, "biaslabd_cycles_total %d\n", s.Cycles)
	fmt.Fprintf(&sb, "biaslabd_audit_specs_clean_total %d\n", s.AuditClean)
	fmt.Fprintf(&sb, "biaslabd_audit_specs_flagged_total %d\n", s.AuditFlagged)
	fmt.Fprintf(&sb, "biaslabd_audit_findings_suppressed_total %d\n", s.AuditSuppressed)
	fmt.Fprintf(&sb, "biaslabd_audit_rejected_total %d\n", s.AuditRejected)
	fmt.Fprintf(&sb, "biaslabd_stored_results %d\n", s.StoredResults)
	return sb.String()
}
