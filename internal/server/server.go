package server

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"sync"

	"biaslab/internal/bench"
	"biaslab/internal/core"
	"biaslab/internal/journal"
)

// Config configures a Server.
type Config struct {
	// DataDir holds the result store (results.jsonl) and per-job
	// checkpoint journals (jobs/<key>.jsonl). One daemon owns a DataDir at
	// a time.
	DataDir string
	// Workers bounds concurrent job execution (default 2). Each job's
	// sweep additionally parallelizes internally through the Runner.
	Workers int
	// QueueCap bounds the number of queued jobs (default 256); submissions
	// beyond it are rejected with ErrQueueFull rather than buffered
	// without limit.
	QueueCap int
}

// Errors surfaced to the HTTP layer.
var (
	// ErrDraining rejects submissions during graceful shutdown.
	ErrDraining = errors.New("server: draining, not accepting jobs")
	// ErrQueueFull rejects submissions when the job queue is at capacity.
	ErrQueueFull = errors.New("server: job queue full")
)

// ErrNotSharded is returned by a ShardRunner that declines a job — most
// importantly when zero workers are alive — telling the server to degrade
// gracefully to ordinary local execution.
var ErrNotSharded = errors.New("server: job not sharded, execute locally")

// ShardRunner distributes a shardable job's pending points across a
// cluster of worker daemons. It must journal every completed point into jn
// under the job's single-node checkpoint keys (announcing each through
// onPoint exactly once: replayed for points already in jn, fresh for
// points delivered by workers) and return only when every point of the job
// is in jn — at which point the server assembles the final result by
// replaying jn through the ordinary execution path, so the cluster result
// is byte-identical to a single-node run by construction.
//
// Implemented by internal/cluster.Coordinator; the indirection exists
// because the cluster package builds on this package's wire types.
//
// audit is the verdict the submitting coordinator's auditor recorded
// against the spec (nil when clean or unaudited). It travels with every
// shard assignment so workers inherit the coordinator's verdict instead of
// re-auditing — in particular, a suppressed guilty spec the coordinator
// accepted must execute on workers whose own strict policy would have
// rejected a fresh submission of it.
type ShardRunner interface {
	RunSharded(ctx context.Context, jobKey string, spec JobSpec, audit []AuditFinding, jn *journal.Journal, onPoint func(key string, replayed bool), onTotal func(int)) error
}

// Shardable reports whether a canonical spec names a job the cluster can
// shard: a job whose result decomposes into an enumerable set of
// independent points. Adaptive sweeps (the measurement set depends on
// oracle verification at runtime) and adaptive randomize (the sample count
// depends on interim intervals) stay coordinator-local, as do run and
// experiment jobs.
func Shardable(spec JobSpec) bool {
	switch spec.Kind {
	case KindSweepEnv, KindSweepPad, KindSweepBase:
		return !spec.Adaptive
	case KindSweepLink, KindSweepTenant:
		return true
	case KindRandomize:
		return spec.Tol == 0
	}
	return false
}

// Server is the biaslabd engine: a bounded worker pool over the
// measurement core, a singleflight job table keyed by content hash, and
// the persistent result store. Construct with New, serve its Handler, and
// stop with Shutdown.
type Server struct {
	cfg     Config
	store   *Store
	queue   chan *job
	ctx     context.Context
	cancel  context.CancelFunc
	wg      sync.WaitGroup
	metrics metrics

	mu       sync.Mutex
	jobs     map[string]*job // by id
	active   map[string]*job // queued/running jobs by content key (singleflight)
	runners  map[bench.Size]*core.Runner
	nextID   int
	draining bool

	// Cluster integration, set by SetCluster before serving.
	sharder      ShardRunner
	extraMetrics func() string

	// Audit integration, set by SetAuditor before serving.
	auditor SpecAuditor
}

// SetAuditor attaches a spec auditor: every submission is audited
// statically before any cycles are spent, findings ride along in the
// submit response and job status, and ?strict=1 submissions with
// unsuppressed error findings are rejected. Call before the server starts
// accepting jobs.
func (s *Server) SetAuditor(a SpecAuditor) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.auditor = a
}

func (s *Server) specAuditor() SpecAuditor {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.auditor
}

// SetCluster attaches a cluster coordinator: sh takes over execution of
// Shardable jobs (falling back to local execution when it returns
// ErrNotSharded), and metrics (optional) is appended verbatim to the
// /metrics exposition. Call before the server starts accepting jobs.
func (s *Server) SetCluster(sh ShardRunner, metrics func() string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sharder = sh
	s.extraMetrics = metrics
}

func (s *Server) shardRunner() ShardRunner {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sharder
}

// New opens the store under cfg.DataDir and starts the worker pool.
func New(cfg Config) (*Server, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = 256
	}
	if cfg.DataDir == "" {
		return nil, fmt.Errorf("server: Config.DataDir is required")
	}
	if err := os.MkdirAll(filepath.Join(cfg.DataDir, "jobs"), 0o755); err != nil {
		return nil, fmt.Errorf("server: creating data dir: %w", err)
	}
	store, err := OpenStore(filepath.Join(cfg.DataDir, "results.jsonl"))
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:     cfg,
		store:   store,
		queue:   make(chan *job, cfg.QueueCap),
		ctx:     ctx,
		cancel:  cancel,
		jobs:    map[string]*job{},
		active:  map[string]*job{},
		runners: map[bench.Size]*core.Runner{},
	}
	s.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	return s, nil
}

// Runner returns the shared Runner for a workload size, creating it on
// first use with the metrics hook attached. Sharing one Runner per size
// across all jobs is what makes the daemon's compile/link caches span
// clients — and, exported, what lets a cluster worker or coordinator
// execute shards through the same caches.
func (s *Server) Runner(size bench.Size) *core.Runner {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.runners[size]
	if !ok {
		r = core.NewRunner(size)
		r.OnMeasure = s.metrics.measured
		s.runners[size] = r
	}
	return r
}

// Submit accepts a job: a store hit returns a job born done (zero new
// measurements), an identical in-flight job absorbs the submission
// (singleflight), and anything else is queued for the worker pool.
func (s *Server) Submit(spec JobSpec) (*SubmitResponse, error) {
	return s.SubmitStrict(spec, false)
}

// SubmitStrict is Submit with the audit gate armed: when strict is true
// and the attached auditor records an unsuppressed error-severity finding,
// the spec is rejected with *AuditRejectedError before any queueing,
// caching or measurement happens — the daemon refuses to bless a criminal
// experiment even when its result is already cached.
func (s *Server) SubmitStrict(spec JobSpec, strict bool) (*SubmitResponse, error) {
	canonical, err := spec.Canonicalize()
	if err != nil {
		return nil, err
	}
	key := canonicalKey(canonical)

	// Static audit first: it spends no cycles (the rules read the spec and
	// the bias oracle's compile-time artifacts) and its verdict shapes the
	// rest of the submission. The raw spec is audited, not the canonical
	// one, because AuditAllow suppressions are dropped by Canonicalize.
	findings, err := s.auditSubmission(spec, strict)
	if err != nil {
		return nil, err
	}

	// Store hit: the result is already durable; the job exists only so
	// GET /v1/jobs/{id} and the event stream behave uniformly.
	if _, ok, err := s.store.Get(key); err != nil {
		return nil, err
	} else if ok {
		s.mu.Lock()
		if s.draining {
			s.mu.Unlock()
			return nil, ErrDraining
		}
		j := s.newJobLocked(canonical, key, findings)
		j.cached = true
		s.mu.Unlock()
		j.setState(StateDone, nil)
		s.metrics.submitted(true)
		return &SubmitResponse{ID: j.id, Key: key, Cached: true, State: StateDone, Audit: findings}, nil
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil, ErrDraining
	}
	if j, ok := s.active[key]; ok {
		s.mu.Unlock()
		s.metrics.submitted(true)
		return &SubmitResponse{ID: j.id, Key: key, InFlight: true, State: j.State(), Audit: findings}, nil
	}
	j := s.newJobLocked(canonical, key, findings)
	s.active[key] = j
	select {
	case s.queue <- j:
	default:
		delete(s.jobs, j.id)
		delete(s.active, key)
		s.mu.Unlock()
		return nil, ErrQueueFull
	}
	s.mu.Unlock()
	s.metrics.submitted(false)
	s.metrics.enqueued()
	return &SubmitResponse{ID: j.id, Key: key, State: StateQueued, Audit: findings}, nil
}

// auditSubmission runs the attached auditor (if any) over the raw spec,
// maintains the audit counters, and enforces strict gating.
func (s *Server) auditSubmission(spec JobSpec, strict bool) ([]AuditFinding, error) {
	auditor := s.specAuditor()
	if auditor == nil {
		return nil, nil
	}
	findings, err := auditor.AuditSpec(spec)
	if err != nil {
		return nil, fmt.Errorf("server: auditing spec: %w", err)
	}
	gating := 0
	suppressed := 0
	for _, f := range findings {
		if f.Gating() {
			gating++
		}
		if f.Suppressed {
			suppressed++
		}
	}
	s.metrics.audited(len(findings) > 0, suppressed)
	if strict && gating > 0 {
		s.metrics.auditRejected()
		return nil, &AuditRejectedError{Findings: findings}
	}
	return findings, nil
}

// newJobLocked allocates a job under s.mu.
func (s *Server) newJobLocked(canonical JobSpec, key string, audit []AuditFinding) *job {
	s.nextID++
	j := &job{
		id:      "job-" + strconv.Itoa(s.nextID),
		key:     key,
		spec:    canonical,
		audit:   audit,
		state:   StateQueued,
		changed: make(chan struct{}),
	}
	j.events = append(j.events, Event{Type: "state", State: StateQueued})
	s.jobs[j.id] = j
	return j
}

// Job returns the status of a job by id.
func (s *Server) Job(id string) (*JobStatus, bool) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return nil, false
	}
	st := j.status()
	return &st, true
}

// Result returns the stored canonical result bytes for a content key.
func (s *Server) Result(key string) ([]byte, bool, error) {
	return s.store.Get(key)
}

// MetricsSnapshot captures the daemon's counters.
func (s *Server) MetricsSnapshot() Snapshot {
	s.mu.Lock()
	byState := map[JobState]uint64{}
	for _, j := range s.jobs { //determlint:allow counting by state only
		byState[j.State()]++
	}
	s.mu.Unlock()
	m := &s.metrics
	m.mu.Lock()
	defer m.mu.Unlock()
	return Snapshot{
		JobsSubmitted:   m.jobsSubmitted,
		Jobs:            byState,
		CacheHits:       m.cacheHits,
		CacheMisses:     m.cacheMisses,
		QueueDepth:      m.queueDepth,
		Workers:         s.cfg.Workers,
		WorkersBusy:     m.workersBusy,
		PointsMeasured:  m.pointsMeasured,
		PointsReplayed:  m.pointsReplayed,
		Measurements:    m.measurements,
		Instructions:    m.instructions,
		Cycles:          m.cycles,
		AuditClean:      m.auditClean,
		AuditFlagged:    m.auditFlagged,
		AuditSuppressed: m.auditSuppressed,
		AuditRejected:   m.auditRejects,
		StoredResults:   s.store.Len(),
	}
}

// Shutdown drains the daemon: submissions are rejected, the run context is
// cancelled so in-flight sweeps stop at the next watchdog poll (their
// completed points already fsynced in per-job journals), workers are
// awaited, still-queued jobs are marked canceled, and the store is closed.
// Resubmitting an interrupted job after a restart resumes from its journal
// without re-measuring a single completed point.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil
	}
	s.draining = true
	s.mu.Unlock()

	s.cancel()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		return ctx.Err()
	}
	// Workers are gone; whatever is left in the queue never started.
	for {
		select {
		case j := <-s.queue:
			s.metrics.dequeued()
			s.finishJob(j, StateCanceled, context.Canceled)
		default:
			return s.store.Close()
		}
	}
}

// worker pulls jobs until the run context is cancelled.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		select {
		case <-s.ctx.Done():
			return
		case j := <-s.queue:
			s.metrics.dequeued()
			s.metrics.busy(1)
			s.runJob(j)
			s.metrics.busy(-1)
		}
	}
}

// runJob executes one job and resolves it.
func (s *Server) runJob(j *job) {
	j.setState(StateRunning, nil)
	raw, err := s.execute(s.ctx, j)
	if err != nil {
		state := StateFailed
		if errors.Is(err, context.Canceled) || s.ctx.Err() != nil {
			state = StateCanceled
		}
		s.finishJob(j, state, err)
		return
	}
	if err := s.store.Put(j.key, raw); err != nil {
		s.finishJob(j, StateFailed, err)
		return
	}
	// The per-job checkpoint journal is redundant once the result is
	// durable; best-effort cleanup.
	os.Remove(s.jobJournalPath(j.key))
	s.finishJob(j, StateDone, nil)
}

// finishJob moves a job to a terminal state and releases its singleflight
// slot.
func (s *Server) finishJob(j *job, state JobState, err error) {
	s.mu.Lock()
	if s.active[j.key] == j {
		delete(s.active, j.key)
	}
	s.mu.Unlock()
	j.setState(state, err)
}

func (s *Server) jobJournalPath(key string) string {
	return filepath.Join(s.cfg.DataDir, "jobs", key+".jsonl")
}

// jobCheckpoint opens the job's checkpoint journal and wraps it so every
// completed point — fresh or replayed from an earlier interrupted run —
// feeds the job's progress, the SSE event stream, and the daemon's
// counters. This is the live-progress spine: the same fsynced record that
// makes a point crash-safe is what announces it to watchers.
func (s *Server) jobCheckpoint(j *job) (core.Checkpoint, func(), error) {
	jn, err := journal.Open(s.jobJournalPath(j.key))
	if err != nil {
		return nil, nil, err
	}
	ck := core.WithProgress(jn, func(key string, replayed bool) {
		j.point(key, replayed)
		s.metrics.point(replayed)
	})
	return ck, func() { jn.Close() }, nil
}

// execute runs the measurement a job names through the shared Execute
// path, wiring the job's checkpoint journal and progress into it, and
// returns the canonical result encoding. When a cluster ShardRunner is
// attached and the job is Shardable, execution is distributed first and
// degrades to the local path if the cluster declines (zero workers alive).
func (s *Server) execute(ctx context.Context, j *job) ([]byte, error) {
	spec := j.spec
	size, err := parseSize(spec.Size)
	if err != nil {
		return nil, err
	}
	if sh := s.shardRunner(); sh != nil && Shardable(spec) {
		raw, err := s.executeSharded(ctx, sh, j)
		if err == nil || !errors.Is(err, ErrNotSharded) {
			return raw, err
		}
		// Zero workers alive: degrade gracefully to local execution. The
		// job journal is shared between both paths, so any points a
		// previous partial cluster run delivered are replayed, not lost.
	}
	var ck core.Checkpoint
	switch {
	case spec.Kind == KindSweepEnv, spec.Kind == KindSweepPad, spec.Kind == KindSweepBase,
		spec.Kind == KindSweepLink, spec.Kind == KindSweepTenant, spec.Kind == KindExperiment,
		spec.Kind == KindRandomize && spec.Tol == 0:
		jobCk, closeCk, err := s.jobCheckpoint(j)
		if err != nil {
			return nil, err
		}
		defer closeCk()
		ck = jobCk
	}
	res, err := Execute(ctx, s.Runner(size), spec, ck, j.setTotal)
	if err != nil {
		return nil, err
	}
	switch {
	case res.Run != nil:
		j.point("run", false)
		s.metrics.point(false)
	case res.Randomize != nil:
		j.setDone(res.Randomize.Estimate.N)
	}
	return EncodeResult(res)
}

// executeSharded runs a shardable job through the cluster: the coordinator
// fans the pending points out to workers and journals every completed
// point into the job's ordinary checkpoint journal; the server then
// assembles the final result by replaying that journal through the shared
// Execute path — zero new measurements, and byte-identical to a
// single-node run because it *is* the single-node code path over the same
// journal namespace.
func (s *Server) executeSharded(ctx context.Context, sh ShardRunner, j *job) ([]byte, error) {
	size, err := parseSize(j.spec.Size)
	if err != nil {
		return nil, err
	}
	jn, err := journal.Open(s.jobJournalPath(j.key))
	if err != nil {
		return nil, err
	}
	defer jn.Close()
	onPoint := func(key string, replayed bool) {
		j.point(key, replayed)
		s.metrics.point(replayed)
	}
	if err := sh.RunSharded(ctx, j.key, j.spec, j.audit, jn, onPoint, j.setTotal); err != nil {
		return nil, err
	}
	// Assembly replays the now-complete journal without the progress
	// wrapper: every point was already announced exactly once above.
	res, err := Execute(ctx, s.Runner(size), j.spec, jn, nil)
	if err != nil {
		return nil, err
	}
	return EncodeResult(res)
}

// job is one submitted measurement job.
type job struct {
	id     string
	key    string
	spec   JobSpec // canonical
	audit  []AuditFinding
	cached bool

	mu       sync.Mutex
	state    JobState
	progress Progress
	errDet   *ErrorDetail
	events   []Event
	changed  chan struct{} // closed and replaced on every event append
}

// State returns the job's current state.
func (j *job) State() JobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// status snapshots the job for GET /v1/jobs/{id}.
func (j *job) status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return JobStatus{
		ID:       j.id,
		Key:      j.key,
		Spec:     j.spec,
		State:    j.state,
		Cached:   j.cached,
		Progress: j.progress,
		Error:    j.errDet,
		Audit:    j.audit,
	}
}

// emitLocked appends an event and wakes subscribers. Callers hold j.mu.
func (j *job) emitLocked(ev Event) {
	j.events = append(j.events, ev)
	close(j.changed)
	j.changed = make(chan struct{})
}

// setState transitions the job and emits a state event; err (when
// non-nil) is recorded as the job's typed failure detail.
func (j *job) setState(state JobState, err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.state = state
	if err != nil {
		j.errDet = newErrorDetail(err)
	}
	j.emitLocked(Event{Type: "state", State: state, Done: j.progress.Done, Total: j.progress.Total, Error: j.errDet})
}

// setTotal sets the expected point count.
func (j *job) setTotal(n int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.progress.Total = n
}

// setDone pins the completed count (randomize jobs, which report progress
// only at the end).
func (j *job) setDone(n int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.progress.Done = n
}

// point records one completed sweep point and emits a point event.
func (j *job) point(key string, replayed bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.progress.Done++
	if replayed {
		j.progress.Replayed++
	}
	j.emitLocked(Event{
		Type:     "point",
		Key:      key,
		Replayed: replayed,
		Done:     j.progress.Done,
		Total:    j.progress.Total,
	})
}

// terminal reports whether the state is final.
func terminal(state JobState) bool {
	return state == StateDone || state == StateFailed || state == StateCanceled
}

// eventsSince returns the events from index i on, a channel that is
// closed when more arrive, and whether the job has reached a terminal
// state. The SSE handler drains events, then waits on the channel.
func (j *job) eventsSince(i int) ([]Event, <-chan struct{}, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if i > len(j.events) {
		i = len(j.events)
	}
	evs := append([]Event(nil), j.events[i:]...)
	return evs, j.changed, terminal(j.state)
}
