package server_test

import (
	"testing"

	"biaslab/internal/server"
)

func mustKey(t *testing.T, spec server.JobSpec) string {
	t.Helper()
	key, err := server.Key(spec)
	if err != nil {
		t.Fatalf("Key(%+v): %v", spec, err)
	}
	return key
}

// TestKeyCanonicalization: two specs that request the same work must hash
// to the same content key, however they spell it.
func TestKeyCanonicalization(t *testing.T) {
	base := server.JobSpec{Kind: server.KindSweepEnv, Bench: "hmmer"}
	explicit := server.JobSpec{
		Kind: server.KindSweepEnv, Bench: "hmmer",
		Size: "small", Machine: "core2", Personality: "gcc", Step: 128,
	}
	if k1, k2 := mustKey(t, base), mustKey(t, explicit); k1 != k2 {
		t.Errorf("defaulted and explicit specs keyed differently:\n%s\n%s", k1, k2)
	}

	// Fields the kind does not use must not perturb the key.
	noisy := base
	noisy.Orders = 999
	noisy.N = 7
	noisy.Tol = 0.5
	noisy.EnvBytes = 4096
	noisy.Level = "O3"
	noisy.Experiment = "F3"
	if k1, k2 := mustKey(t, base), mustKey(t, noisy); k1 != k2 {
		t.Errorf("kind-irrelevant fields changed the key:\n%s\n%s", k1, k2)
	}

	// Adaptive:false must key identically to a pre-Adaptive dense spec —
	// omitempty keeps every stored dense sweep reachable.
	denseExplicit := base
	denseExplicit.Adaptive = false
	if k1, k2 := mustKey(t, base), mustKey(t, denseExplicit); k1 != k2 {
		t.Errorf("Adaptive:false changed the dense key:\n%s\n%s", k1, k2)
	}
}

// TestKeySeparatesWork: any field the kind does use must separate keys.
func TestKeySeparatesWork(t *testing.T) {
	base := server.JobSpec{Kind: server.KindSweepEnv, Bench: "hmmer"}
	variants := []server.JobSpec{
		{Kind: server.KindSweepLink, Bench: "hmmer"},
		{Kind: server.KindSweepEnv, Bench: "libquantum"},
		{Kind: server.KindSweepEnv, Bench: "hmmer", Machine: "p4"},
		{Kind: server.KindSweepEnv, Bench: "hmmer", Size: "test"},
		{Kind: server.KindSweepEnv, Bench: "hmmer", Step: 64},
		{Kind: server.KindSweepEnv, Bench: "hmmer", Personality: "icc"},
		{Kind: server.KindSweepEnv, Bench: "hmmer", Adaptive: true},
	}
	seen := map[string]int{mustKey(t, base): -1}
	for i, v := range variants {
		k := mustKey(t, v)
		if prev, dup := seen[k]; dup {
			t.Errorf("variant %d collides with %d: %+v", i, prev, v)
		}
		seen[k] = i
	}
}

// TestKeyTenantFields pins the co-run fields' keying contract: a spec
// without a co-runner keys exactly as it did before the fields existed
// (every stored pre-tenancy result stays reachable), judgment metadata
// never perturbs the key, and the fields that do change the work separate
// keys.
func TestKeyTenantFields(t *testing.T) {
	legacy := server.JobSpec{Kind: server.KindRandomize, Bench: "sjeng", Machine: "core2", N: 16}

	// Context is judgment metadata — audited, never measured.
	claimed := legacy
	claimed.Context = "serving"
	if k1, k2 := mustKey(t, legacy), mustKey(t, claimed); k1 != k2 {
		t.Errorf("context perturbed the key:\n%s\n%s", k1, k2)
	}

	// Co fields on a kind that does not use them must not perturb the key.
	noisy := server.JobSpec{Kind: server.KindSweepEnv, Bench: "hmmer", CoBench: "milc", CoLevel: "O3", Quantum: 999}
	if k1, k2 := mustKey(t, server.JobSpec{Kind: server.KindSweepEnv, Bench: "hmmer"}), mustKey(t, noisy); k1 != k2 {
		t.Errorf("co fields perturbed a sweep-env key:\n%s\n%s", k1, k2)
	}

	// Defaulted and explicit co parameters share one key.
	base := server.JobSpec{Kind: server.KindSweepTenant, Bench: "sjeng", Machine: "core2"}
	explicit := base
	explicit.CoLevel = "O2"
	explicit.Quantum = 4096
	if k1, k2 := mustKey(t, base), mustKey(t, explicit); k1 != k2 {
		t.Errorf("defaulted and explicit co-run specs keyed differently:\n%s\n%s", k1, k2)
	}

	// The fields that change the work separate keys.
	pinned := legacy
	pinned.CoBench = "sjeng"
	randomized := legacy
	randomized.CoRandom = true
	fastSlice := base
	fastSlice.Quantum = 1024
	seen := map[string]string{}
	for name, s := range map[string]server.JobSpec{
		"legacy": legacy, "pinned": pinned, "randomized": randomized,
		"sweep": base, "sweep-q1024": fastSlice,
	} { //determlint:allow collision check is order-independent
		k := mustKey(t, s)
		if prev, dup := seen[k]; dup {
			t.Errorf("%s collides with %s", name, prev)
		}
		seen[k] = name
	}
}

// TestKeyRejectsInvalidSpecs: keying validates, so garbage can never be
// stored under a well-formed key.
func TestKeyRejectsInvalidSpecs(t *testing.T) {
	for _, spec := range []server.JobSpec{
		{},
		{Kind: "sideways"},
		{Kind: server.KindSweepEnv},
		{Kind: server.KindSweepEnv, Bench: "hmmer", Size: "jumbo"},
		{Kind: server.KindExperiment},
	} {
		if _, err := server.Key(spec); err == nil {
			t.Errorf("Key(%+v) succeeded, want error", spec)
		}
	}
}

// TestKeyIsStable pins the key format: a version-prefixed SHA-256 hex
// digest. If this test breaks, stored results from older daemons are
// orphaned — bump keyVersion deliberately, not by accident.
func TestKeyIsStable(t *testing.T) {
	key := mustKey(t, server.JobSpec{Kind: server.KindSweepEnv, Bench: "hmmer"})
	if len(key) != 64 {
		t.Errorf("key %q is not a SHA-256 hex digest", key)
	}
	if again := mustKey(t, server.JobSpec{Kind: server.KindSweepEnv, Bench: "hmmer"}); again != key {
		t.Errorf("keying is not deterministic: %s vs %s", key, again)
	}
}
