package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
)

// Handler returns the daemon's HTTP API:
//
//	POST /v1/jobs                submit a job (JobSpec → SubmitResponse);
//	                             ?strict=1 rejects audited-criminal specs (422)
//	GET  /v1/jobs/{id}           job status (JobStatus)
//	GET  /v1/jobs/{id}/events    SSE stream of per-point progress (?since=N)
//	GET  /v1/results/{key}       stored result; ?format=json|text|csv
//	GET  /v1/catalog             benchmarks, machines, experiments
//	GET  /metrics                text-format counters
//	GET  /healthz                liveness: 200 whenever the process is up
//	GET  /readyz                 readiness: 503 while draining
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /v1/results/{key}", s.handleResult)
	mux.HandleFunc("GET /v1/catalog", s.handleCatalog)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	return mux
}

// writeJSON writes v as a JSON response.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.Encode(v)
}

// apiError is the JSON error body.
type apiError struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, apiError{Error: err.Error()})
}

// auditRejection is the JSON body of a ?strict=1 rejection: the error plus
// the findings that caused it, so the client can print the charges.
type auditRejection struct {
	Error string         `json:"error"`
	Audit []AuditFinding `json:"audit"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding job spec: %w", err))
		return
	}
	strict := r.URL.Query().Get("strict") == "1"
	resp, err := s.SubmitStrict(spec, strict)
	var rejected *AuditRejectedError
	switch {
	case errors.Is(err, ErrDraining):
		writeError(w, http.StatusServiceUnavailable, err)
	case errors.Is(err, ErrQueueFull):
		writeError(w, http.StatusServiceUnavailable, err)
	case errors.As(err, &rejected):
		// The spec is well-formed but commits benchmarking crimes the
		// caller asked us to gate on: unprocessable, with the findings.
		writeJSON(w, http.StatusUnprocessableEntity, auditRejection{Error: err.Error(), Audit: rejected.Findings})
	case err != nil:
		// Submission errors are spec validation failures: the caller's fault.
		writeError(w, http.StatusBadRequest, err)
	default:
		writeJSON(w, http.StatusOK, resp)
	}
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	st, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no job %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// handleEvents streams a job's events as SSE: every event already
// recorded is replayed first (late subscribers see the full history), then
// new events as they happen; the stream ends when the job reaches a
// terminal state. Each event carries its absolute index as the SSE id;
// a reconnecting client passes ?since=N (the index after the last event it
// saw) to receive exactly the events it missed — no duplicates, no gaps.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	j, ok := s.jobs[r.PathValue("id")]
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no job %q", r.PathValue("id")))
		return
	}
	idx := 0
	if since := r.URL.Query().Get("since"); since != "" {
		n, err := strconv.Atoi(since)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad since %q", since))
			return
		}
		idx = n
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, fmt.Errorf("response writer cannot stream"))
		return
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)

	for {
		evs, changed, done := j.eventsSince(idx)
		for i, ev := range evs {
			data, err := json.Marshal(ev)
			if err != nil {
				return
			}
			fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", idx+i, ev.Type, data)
		}
		idx += len(evs)
		fl.Flush()
		if done {
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-changed:
		}
	}
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	raw, ok, err := s.Result(key)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no result for key %q", key))
		return
	}
	switch format := r.URL.Query().Get("format"); format {
	case "", "json":
		// The stored bytes, verbatim: cached results are byte-identical to
		// fresh ones by construction.
		w.Header().Set("Content-Type", "application/json")
		w.Write(raw)
	case "text", "csv":
		res, err := DecodeResult(raw)
		if err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		var out string
		if format == "text" {
			out, err = RenderText(res)
		} else {
			out, err = RenderCSV(res)
		}
		if err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, out)
	default:
		writeError(w, http.StatusBadRequest, fmt.Errorf("unknown format %q (want json, text or csv)", format))
	}
}

func (s *Server) handleCatalog(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, NewCatalog())
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	extra := s.extraMetrics
	s.mu.Unlock()
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, s.MetricsSnapshot().Render())
	if extra != nil {
		fmt.Fprint(w, extra())
	}
}

// handleHealthz is the liveness probe: 200 whenever the process is up,
// even while draining — a draining daemon is alive and must not be
// restarted out from under its in-flight checkpoint writes.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// handleReadyz is the readiness probe: 503 while draining (the daemon is
// alive but must receive no new work). The cluster coordinator's worker
// health checks use this endpoint, so a draining worker stops receiving
// shard assignments before its executor stops.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if draining {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	fmt.Fprintln(w, "ok")
}
