package server_test

import (
	"bufio"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"biaslab/internal/server"
)

// TestHealthzReadyzSplit: liveness and readiness are distinct probes. A
// draining daemon is still alive — /healthz answers 200 so supervisors
// don't kill it mid-drain — but it is no longer ready, so /readyz flips
// to 503 and load balancers (and the cluster coordinator's join probe)
// stop routing to it.
func TestHealthzReadyzSplit(t *testing.T) {
	srv := newServer(t, t.TempDir(), 1)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	get := func(path string) int {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := get("/healthz"); got != http.StatusOK {
		t.Errorf("/healthz before drain = %d, want 200", got)
	}
	if got := get("/readyz"); got != http.StatusOK {
		t.Errorf("/readyz before drain = %d, want 200", got)
	}
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := get("/healthz"); got != http.StatusOK {
		t.Errorf("/healthz while draining = %d, want 200 (liveness must not flap)", got)
	}
	if got := get("/readyz"); got != http.StatusServiceUnavailable {
		t.Errorf("/readyz while draining = %d, want 503", got)
	}
}

// sseEvent is one parsed frame of an event stream.
type sseEvent struct {
	id   int
	data string
}

// readEvents consumes SSE frames from a response body until limit events
// have arrived (limit < 0 reads to stream end).
func readEvents(t *testing.T, body *bufio.Scanner, limit int) []sseEvent {
	t.Helper()
	var evs []sseEvent
	id := -1
	for (limit < 0 || len(evs) < limit) && body.Scan() {
		line := body.Text()
		switch {
		case strings.HasPrefix(line, "id:"):
			n, err := strconv.Atoi(strings.TrimSpace(strings.TrimPrefix(line, "id:")))
			if err != nil {
				t.Fatalf("bad id line %q: %v", line, err)
			}
			id = n
		case strings.HasPrefix(line, "data:"):
			evs = append(evs, sseEvent{id: id, data: strings.TrimSpace(strings.TrimPrefix(line, "data:"))})
		}
	}
	return evs
}

// TestEventsResumeExactlyOnce: drop an SSE consumer mid-sweep, reconnect
// with ?since=<next>, and the combined stream must carry every event
// exactly once — sequential ids, no duplicates, no gaps — ending in a
// terminal state event.
func TestEventsResumeExactlyOnce(t *testing.T) {
	srv := newServer(t, t.TempDir(), 2)
	defer srv.Shutdown(context.Background())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	sub, err := srv.Submit(sweepSpec())
	if err != nil {
		t.Fatal(err)
	}
	stream := func(since int) (*http.Response, *bufio.Scanner) {
		t.Helper()
		url := fmt.Sprintf("%s/v1/jobs/%s/events", ts.URL, sub.ID)
		if since > 0 {
			url += fmt.Sprintf("?since=%d", since)
		}
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("events stream returned %d", resp.StatusCode)
		}
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
		return resp, sc
	}

	// First connection: read a handful of events, then drop the link.
	resp, sc := stream(0)
	head := readEvents(t, sc, 5)
	resp.Body.Close()
	if len(head) != 5 {
		t.Fatalf("first connection delivered %d events, want 5", len(head))
	}

	// Resume from the next unseen index and consume to the stream's end.
	next := head[len(head)-1].id + 1
	resp, sc = stream(next)
	tail := readEvents(t, sc, -1)
	resp.Body.Close()

	all := append(head, tail...)
	for i, ev := range all {
		if ev.id != i {
			t.Fatalf("event %d has id %d: resumed stream has a gap or duplicate", i, ev.id)
		}
	}
	last := all[len(all)-1]
	if !strings.Contains(last.data, `"state":"done"`) {
		t.Errorf("stream did not end in a done state event: %s", last.data)
	}
	waitDone(t, srv, sub.ID)
}

// TestEventsBadSince: a malformed resume index is the caller's mistake.
func TestEventsBadSince(t *testing.T) {
	srv := newServer(t, t.TempDir(), 1)
	defer srv.Shutdown(context.Background())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	sub, err := srv.Submit(server.JobSpec{Kind: server.KindRun, Size: "test", Bench: "libquantum", Machine: "core2", Level: "O3"})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, srv, sub.ID)
	for _, since := range []string{"abc", "-1"} {
		resp, err := http.Get(fmt.Sprintf("%s/v1/jobs/%s/events?since=%s", ts.URL, sub.ID, since))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("since=%s returned %d, want 400", since, resp.StatusCode)
		}
	}
}
