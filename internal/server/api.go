// Package server implements biaslabd, the measurement-as-a-service daemon:
// an HTTP/JSON front end over the measurement core with a bounded worker
// pool, a job queue, a persistent content-addressed result store, and live
// per-point progress streaming over SSE.
//
// The serving contract mirrors the repository's measurement contract:
// a job's result is a pure function of its canonical specification. Jobs
// are therefore keyed by a content hash of the canonicalized spec;
// identical requests are deduplicated in flight (the same singleflight
// discipline the Runner applies to compiles and links) and served from the
// store on completion, byte-identical to a fresh run. The store reuses
// internal/journal's fsynced JSONL discipline, so cached results survive
// restarts and a daemon killed mid-sweep resumes from its per-job
// checkpoint journal without re-measuring completed points.
//
// This file defines the wire types. They are shared verbatim by the
// daemon's handlers, the client package, and cmd/biaslab's -json output,
// so the CLI and the daemon cannot drift apart.
package server

import (
	"encoding/json"
	"errors"
	"fmt"

	"biaslab/internal/bench"
	"biaslab/internal/channels"
	"biaslab/internal/compiler"
	"biaslab/internal/core"
	"biaslab/internal/experiments"
	"biaslab/internal/machine"
	"biaslab/internal/tenancy"
)

// Job kinds accepted by POST /v1/jobs.
const (
	KindRun         = "run"
	KindSweepEnv    = "sweep-env"
	KindSweepLink   = "sweep-link"
	KindSweepPad    = "sweep-pad"
	KindSweepBase   = "sweep-base"
	KindSweepTenant = "sweep-tenant"
	KindRandomize   = "randomize"
	KindExperiment  = "experiment"
)

// JobSpec is one measurement request. Fields that do not apply to a kind
// are zeroed by Canonicalize so that two requests for the same work always
// hash to the same content key, however sloppily they were filled in.
type JobSpec struct {
	// Kind selects the measurement: run, sweep-env, sweep-link, randomize,
	// or experiment.
	Kind string `json:"kind"`
	// Size is the workload size: test, small (default), or ref.
	Size string `json:"size,omitempty"`
	// Bench names the benchmark (all kinds except experiment).
	Bench string `json:"bench,omitempty"`
	// Machine names the hardware model (default core2).
	Machine string `json:"machine,omitempty"`
	// Personality selects the compiler personality: gcc (default) or icc.
	Personality string `json:"personality,omitempty"`
	// Level is the optimization level for run jobs (default O2); sweeps
	// and randomize always measure O2 against O3.
	Level string `json:"level,omitempty"`
	// EnvBytes is the environment size for run jobs (default 512).
	EnvBytes uint64 `json:"env_bytes,omitempty"`
	// Step is the environment-size step for sweep-env jobs (default 128).
	Step uint64 `json:"step,omitempty"`
	// Orders is the number of random link orders for sweep-link jobs
	// (default 16).
	Orders int `json:"orders,omitempty"`
	// N is the number of randomized setups for randomize jobs (default 16;
	// the maximum when Tol is set).
	N int `json:"n,omitempty"`
	// Tol switches randomize jobs to adaptive sampling: stop when the 95%
	// CI half-width falls below Tol.
	Tol float64 `json:"tol,omitempty"`
	// Seed seeds randomized choices for sweep-link and randomize jobs
	// (default 1).
	Seed uint64 `json:"seed,omitempty"`
	// Experiment is the artifact id (F1..F9, T1..T4) for experiment jobs.
	Experiment string `json:"experiment,omitempty"`
	// Adaptive switches sweep-env, sweep-pad and sweep-base jobs to the
	// oracle-guided adaptive sweep: measure predicted transition boundaries
	// plus verification points, interpolate verified plateaus. Results are
	// byte-identical to the dense sweep when the oracle's predictions
	// verify, but the content key still differs (omitempty keeps existing
	// dense keys stable).
	Adaptive bool `json:"adaptive,omitempty"`
	// CoBench pins a co-running benchmark on the shared machine for run
	// and randomize jobs: the multi-tenant interference channel. Empty
	// means an idle machine (every pre-existing spec). sweep-tenant jobs
	// sweep the co-runner identity over the canonical panel, so they
	// reject the field.
	CoBench string `json:"co_bench,omitempty"`
	// CoLevel is the co-runner's own optimization level (default O2 when
	// a co-runner is in play; zeroed otherwise).
	CoLevel string `json:"co_level,omitempty"`
	// Quantum is the co-run interleave granularity in retired instructions
	// (defaulted when a co-runner is in play; zeroed otherwise).
	Quantum uint64 `json:"quantum,omitempty"`
	// CoRandom switches randomize jobs to treat the co-runner as one more
	// randomized nuisance factor, drawn per setup from the canonical
	// panel (idle included). Mutually exclusive with CoBench — fixing the
	// tenant is exactly the crime randomization removes.
	CoRandom bool `json:"co_random,omitempty"`
	// Context names the deployment context the conclusion claims to
	// generalize to (e.g. "serving"). It is judgment metadata for the
	// auditor — a "serving" claim backed only by idle-machine setups is
	// flagged — not a measurement parameter, so Canonicalize drops it and
	// it never perturbs the content key.
	Context string `json:"context,omitempty"`
	// AuditAllow suppresses the named audit rules for this spec (the
	// spec-field form of an //audit:allow directive). Suppressions are
	// metadata about how the experiment is judged, not about what it
	// measures, so Canonicalize drops the field and it never perturbs the
	// content key: a suppressed and an unsuppressed spec for the same work
	// share one cached result.
	AuditAllow []string `json:"audit_allow,omitempty"`
}

// parseSize maps a spec size to the bench workload size.
func parseSize(s string) (bench.Size, error) {
	switch s {
	case "test":
		return bench.SizeTest, nil
	case "small":
		return bench.SizeSmall, nil
	case "ref":
		return bench.SizeRef, nil
	}
	return 0, fmt.Errorf("unknown size %q (want test, small or ref)", s)
}

// Canonicalize validates spec, applies defaults, and zeroes every field
// the kind does not use, returning the canonical spec that content-keying
// hashes. Two specs that request the same work canonicalize identically.
func (spec JobSpec) Canonicalize() (JobSpec, error) {
	c := JobSpec{Kind: spec.Kind, Size: spec.Size}
	if c.Size == "" {
		c.Size = "small"
	}
	if _, err := parseSize(c.Size); err != nil {
		return JobSpec{}, err
	}

	needBench := func() error {
		c.Bench = spec.Bench
		if c.Bench == "" {
			return fmt.Errorf("%s job needs a bench", c.Kind)
		}
		if _, ok := bench.ByName(c.Bench); !ok {
			return fmt.Errorf("unknown benchmark %q", c.Bench)
		}
		c.Machine = spec.Machine
		if c.Machine == "" {
			c.Machine = "core2"
		}
		if _, ok := machine.ConfigByName(c.Machine); !ok {
			return fmt.Errorf("unknown machine %q", c.Machine)
		}
		c.Personality = spec.Personality
		if c.Personality == "" {
			c.Personality = "gcc"
		}
		if _, err := compiler.ParsePersonality(c.Personality); err != nil {
			return err
		}
		return nil
	}

	// coDefaults canonicalizes the co-run parameters once a co-runner is
	// in play: explicit defaults, so a defaulted and an explicit spec for
	// the same co-run share one content key.
	coDefaults := func() error {
		c.CoLevel = spec.CoLevel
		if c.CoLevel == "" {
			c.CoLevel = "O2"
		}
		if _, err := compiler.ParseLevel(c.CoLevel); err != nil {
			return fmt.Errorf("co-runner level: %w", err)
		}
		c.Quantum = spec.Quantum
		if c.Quantum == 0 {
			c.Quantum = tenancy.DefaultQuantum
		}
		return nil
	}
	// coBench validates and adopts a fixed co-runner when the spec names
	// one; without one the co-run fields stay zeroed (an idle machine,
	// byte-identical to every pre-existing spec).
	coBench := func() error {
		if spec.CoBench == "" {
			return nil
		}
		if _, ok := bench.ByName(spec.CoBench); !ok {
			return fmt.Errorf("unknown co-runner benchmark %q", spec.CoBench)
		}
		c.CoBench = spec.CoBench
		return coDefaults()
	}

	switch spec.Kind {
	case KindRun:
		if err := needBench(); err != nil {
			return JobSpec{}, err
		}
		c.Level = spec.Level
		if c.Level == "" {
			c.Level = "O2"
		}
		if _, err := compiler.ParseLevel(c.Level); err != nil {
			return JobSpec{}, err
		}
		c.EnvBytes = spec.EnvBytes
		if c.EnvBytes == 0 {
			c.EnvBytes = core.DefaultEnvBytes
		}
		if err := coBench(); err != nil {
			return JobSpec{}, err
		}
	case KindSweepEnv:
		if err := needBench(); err != nil {
			return JobSpec{}, err
		}
		c.Step = spec.Step
		if c.Step == 0 {
			c.Step = 128
		}
		c.Adaptive = spec.Adaptive
	case KindSweepPad, KindSweepBase:
		// The grid is canonical (DefaultPadSizes / DefaultTextBases), so the
		// spec carries no grid parameters: two requests for the same channel
		// sweep always share a content key.
		if err := needBench(); err != nil {
			return JobSpec{}, err
		}
		c.Adaptive = spec.Adaptive
	case KindSweepLink:
		if err := needBench(); err != nil {
			return JobSpec{}, err
		}
		c.Orders = spec.Orders
		if c.Orders <= 0 {
			c.Orders = 16
		}
		c.Seed = spec.Seed
		if c.Seed == 0 {
			c.Seed = 1
		}
	case KindSweepTenant:
		// The co-runner identity IS the swept factor, over the canonical
		// panel (core.DefaultCoRunners): like sweep-pad's grid, the panel is
		// canonical so the spec carries no point list. CoLevel and Quantum
		// are fixed attributes of the whole panel.
		if err := needBench(); err != nil {
			return JobSpec{}, err
		}
		if spec.CoBench != "" {
			return JobSpec{}, fmt.Errorf("sweep-tenant sweeps the co-runner identity; co_bench would fix it (use kind=run or randomize for a pinned co-runner)")
		}
		if err := coDefaults(); err != nil {
			return JobSpec{}, err
		}
	case KindRandomize:
		if err := needBench(); err != nil {
			return JobSpec{}, err
		}
		c.N = spec.N
		if c.N <= 0 {
			c.N = 16
		}
		if spec.Tol < 0 {
			return JobSpec{}, fmt.Errorf("negative tol %v", spec.Tol)
		}
		c.Tol = spec.Tol
		c.Seed = spec.Seed
		if c.Seed == 0 {
			c.Seed = 1
		}
		if spec.CoRandom && spec.CoBench != "" {
			return JobSpec{}, fmt.Errorf("co_random randomizes the co-runner; co_bench fixes it — pick one")
		}
		if spec.CoRandom {
			if spec.Tol > 0 {
				return JobSpec{}, fmt.Errorf("co_random does not compose with adaptive sampling (tol); use a fixed n")
			}
			c.CoRandom = true
			if err := coDefaults(); err != nil {
				return JobSpec{}, err
			}
		} else if err := coBench(); err != nil {
			return JobSpec{}, err
		}
	case KindExperiment:
		c.Experiment = spec.Experiment
		if !validExperiment(c.Experiment) {
			return JobSpec{}, fmt.Errorf("unknown experiment %q (want one of %v)", c.Experiment, experiments.IDs())
		}
	case "":
		return JobSpec{}, fmt.Errorf("job spec needs a kind")
	default:
		return JobSpec{}, fmt.Errorf("unknown job kind %q", spec.Kind)
	}
	return c, nil
}

func validExperiment(id string) bool {
	for _, known := range experiments.IDs() {
		if id == known {
			return true
		}
	}
	return false
}

// compilerConfig builds the compiler config a canonical spec names.
func (spec JobSpec) compilerConfig() (compiler.Config, error) {
	cfg := compiler.Config{Level: compiler.O2, Personality: compiler.GCC}
	if spec.Personality != "" {
		p, err := compiler.ParsePersonality(spec.Personality)
		if err != nil {
			return cfg, err
		}
		cfg.Personality = p
	}
	if spec.Level != "" {
		l, err := compiler.ParseLevel(spec.Level)
		if err != nil {
			return cfg, err
		}
		cfg.Level = l
	}
	return cfg, nil
}

// JobState is the lifecycle state of a job.
type JobState string

// Job lifecycle states.
const (
	StateQueued   JobState = "queued"
	StateRunning  JobState = "running"
	StateDone     JobState = "done"
	StateFailed   JobState = "failed"
	StateCanceled JobState = "canceled"
)

// States lists every job state in lifecycle order — the iteration order of
// the by-state metrics, fixed so /metrics output is deterministic.
func States() []JobState {
	return []JobState{StateQueued, StateRunning, StateDone, StateFailed, StateCanceled}
}

// ErrorDetail is the typed failure of a job, carrying the measurement
// pipeline stage and the exact setup when the failure was a
// *core.MeasurementError — the setup is attached because the paper's whole
// point is that setups are not interchangeable.
type ErrorDetail struct {
	Message   string `json:"message"`
	Stage     string `json:"stage,omitempty"`
	Benchmark string `json:"benchmark,omitempty"`
	Setup     string `json:"setup,omitempty"`
	Attempts  int    `json:"attempts,omitempty"`
}

// newErrorDetail classifies err, unwrapping a *core.MeasurementError into
// its typed fields.
func newErrorDetail(err error) *ErrorDetail {
	d := &ErrorDetail{Message: err.Error()}
	var me *core.MeasurementError
	if errors.As(err, &me) {
		d.Stage = me.Stage.String()
		d.Benchmark = me.Benchmark
		d.Setup = me.Setup.String()
		d.Attempts = me.Attempts
	}
	return d
}

// Progress is a job's per-point progress. Total is 0 when the point count
// is not known up front (experiment jobs).
type Progress struct {
	// Done counts completed points, fresh and replayed together.
	Done int `json:"done"`
	// Replayed counts the subset of Done served from the checkpoint
	// journal of an earlier, interrupted run of the same job.
	Replayed int `json:"replayed"`
	// Total is the number of points the job will complete, when known.
	Total int `json:"total,omitempty"`
}

// AuditSeverity grades an audit finding.
type AuditSeverity string

// Audit severities: errors gate (CLI exit 1, ?strict=1 rejection), warnings
// inform.
const (
	AuditError AuditSeverity = "error"
	AuditWarn  AuditSeverity = "warn"
)

// AuditFinding is one benchmarking crime flagged against a spec — the wire
// form shared by the audit CLI, the daemon's submit response, and cluster
// shard assignments (which inherit the submitting coordinator's verdict).
type AuditFinding struct {
	// Rule is the stable rule id (e.g. "single-setup").
	Rule     string        `json:"rule"`
	Severity AuditSeverity `json:"severity"`
	Message  string        `json:"message"`
	// Suppressed marks a finding covered by an //audit:allow directive or
	// the spec's audit_allow field: still reported, no longer gating.
	Suppressed bool `json:"suppressed,omitempty"`
}

// Gating reports whether the finding blocks under strict gating: an
// unsuppressed error.
func (f AuditFinding) Gating() bool {
	return f.Severity == AuditError && !f.Suppressed
}

// SpecAuditor statically audits a job spec for benchmarking crimes before
// any cycles are spent on it. Implemented by internal/audit; the
// indirection exists because the audit package builds on this package's
// spec and wire types (the same inversion as ShardRunner).
type SpecAuditor interface {
	AuditSpec(spec JobSpec) ([]AuditFinding, error)
}

// AuditRejectedError is the typed rejection of a criminal spec under
// ?strict=1, carrying the findings so the HTTP layer can return them to
// the client.
type AuditRejectedError struct {
	Findings []AuditFinding
}

func (e *AuditRejectedError) Error() string {
	n := 0
	for _, f := range e.Findings {
		if f.Gating() {
			n++
		}
	}
	return fmt.Sprintf("server: audit rejected spec under strict mode: %d gating finding(s)", n)
}

// JobStatus is the GET /v1/jobs/{id} response.
type JobStatus struct {
	ID       string       `json:"id"`
	Key      string       `json:"key"`
	Spec     JobSpec      `json:"spec"`
	State    JobState     `json:"state"`
	Cached   bool         `json:"cached"`
	Progress Progress     `json:"progress"`
	Error    *ErrorDetail `json:"error,omitempty"`
	// Audit carries the findings recorded against the spec at submission.
	Audit []AuditFinding `json:"audit,omitempty"`
}

// SubmitResponse is the POST /v1/jobs response.
type SubmitResponse struct {
	ID  string `json:"id"`
	Key string `json:"key"`
	// Cached is true when the result was already in the store: the job is
	// born done and performed zero new measurements.
	Cached bool `json:"cached"`
	// InFlight is true when an identical job was already queued or running
	// and this submission was deduplicated onto it.
	InFlight bool     `json:"in_flight"`
	State    JobState `json:"state"`
	// Audit lists the benchmarking crimes the daemon's auditor flagged in
	// the spec (empty when clean or no auditor is attached). Findings are
	// advisory unless the submission used ?strict=1, which rejects specs
	// with unsuppressed error findings instead of running them.
	Audit []AuditFinding `json:"audit,omitempty"`
}

// Event is one SSE progress event on GET /v1/jobs/{id}/events.
type Event struct {
	// Type is "state" or "point".
	Type string `json:"type"`
	// State accompanies state events.
	State JobState `json:"state,omitempty"`
	// Key is the completed point's checkpoint key (point events).
	Key string `json:"key,omitempty"`
	// Replayed marks a point served from the checkpoint journal.
	Replayed bool `json:"replayed,omitempty"`
	// Done/Total snapshot the job's progress at the event.
	Done  int `json:"done,omitempty"`
	Total int `json:"total,omitempty"`
	// Error accompanies failed state events.
	Error *ErrorDetail `json:"error,omitempty"`
}

// RunResult is the result payload of a run job.
type RunResult struct {
	Benchmark string           `json:"benchmark"`
	Size      string           `json:"size"`
	Setup     string           `json:"setup"`
	Cycles    uint64           `json:"cycles"`
	Checksum  uint64           `json:"checksum"`
	Counters  machine.Counters `json:"counters"`
}

// EnvSweepResult is the result payload of a sweep-env job.
type EnvSweepResult struct {
	Benchmark string          `json:"benchmark"`
	Machine   string          `json:"machine"`
	Points    []core.EnvPoint `json:"points"`
	// Adaptive carries the oracle-guided sweep's measurement ledger when the
	// job ran adaptively; nil for dense sweeps.
	Adaptive *core.AdaptiveSweepStats `json:"adaptive,omitempty"`
	Report   core.BiasReport          `json:"report"`
}

// ChannelSweepResult is the result payload of a sweep-pad or sweep-base
// job: one scalar code-layout channel swept over its canonical grid.
type ChannelSweepResult struct {
	Benchmark string `json:"benchmark"`
	Machine   string `json:"machine"`
	// Channel is "pad" or "base".
	Channel string              `json:"channel"`
	Points  []core.ChannelPoint `json:"points"`
	// Adaptive carries the comparator-guided sweep's measurement ledger
	// when the job ran adaptively; nil for dense sweeps.
	Adaptive *core.AdaptiveSweepStats `json:"adaptive,omitempty"`
	Report   core.BiasReport          `json:"report"`
}

// LinkSweepResult is the result payload of a sweep-link job.
type LinkSweepResult struct {
	Benchmark string           `json:"benchmark"`
	Machine   string           `json:"machine"`
	Points    []core.LinkPoint `json:"points"`
	Report    core.BiasReport  `json:"report"`
}

// TenantSweepResult is the result payload of a sweep-tenant job: the
// subject's O2-vs-O3 comparison repeated with each panel co-runner
// sharing the machine, idle first.
type TenantSweepResult struct {
	Benchmark string `json:"benchmark"`
	Machine   string `json:"machine"`
	// CoLevel and Quantum are the fixed co-run parameters of the panel.
	CoLevel string             `json:"co_level"`
	Quantum uint64             `json:"quantum"`
	Points  []core.TenantPoint `json:"points"`
	Report  core.BiasReport    `json:"report"`
}

// RandomizeResult is the result payload of a randomize job.
type RandomizeResult struct {
	Estimate core.RobustEstimate `json:"estimate"`
	// Conclusive reports whether the interval excludes 1.0.
	Conclusive bool `json:"conclusive"`
}

// ExperimentResult is the result payload of an experiment job: one
// regenerated artifact, text and CSV.
type ExperimentResult struct {
	ID    string `json:"id"`
	Title string `json:"title"`
	Text  string `json:"text"`
	CSV   string `json:"csv"`
}

// Result is the envelope every job resolves to: the kind, the canonical
// spec, and exactly one payload. Its canonical encoding (EncodeResult) is
// what the store persists and what GET /v1/results/{key} serves verbatim,
// so a cached result is byte-identical to a fresh one.
type Result struct {
	Kind         string              `json:"kind"`
	Spec         JobSpec             `json:"spec"`
	Run          *RunResult          `json:"run,omitempty"`
	EnvSweep     *EnvSweepResult     `json:"env_sweep,omitempty"`
	LinkSweep    *LinkSweepResult    `json:"link_sweep,omitempty"`
	ChannelSweep *ChannelSweepResult `json:"channel_sweep,omitempty"`
	TenantSweep  *TenantSweepResult  `json:"tenant_sweep,omitempty"`
	Randomize    *RandomizeResult    `json:"randomize,omitempty"`
	Experiment   *ExperimentResult   `json:"experiment,omitempty"`
}

// EncodeResult renders the canonical encoding of a result: compact JSON
// with fields in declaration order. Every byte served for a key — fresh,
// cached, or across a daemon restart — comes from this encoding.
func EncodeResult(r *Result) ([]byte, error) {
	return json.Marshal(r)
}

// DecodeResult parses a stored result.
func DecodeResult(raw []byte) (*Result, error) {
	var r Result
	if err := json.Unmarshal(raw, &r); err != nil {
		return nil, fmt.Errorf("server: decoding result: %w", err)
	}
	return &r, nil
}

// BenchmarkInfo is one catalog entry.
type BenchmarkInfo struct {
	Name   string `json:"name"`
	Spec   string `json:"spec"`
	Kernel string `json:"kernel"`
}

// ChannelInfo is one bias channel in the catalog: the registry entry's
// wire form.
type ChannelInfo struct {
	Name string `json:"name"`
	// Kind is the job kind that sweeps the channel.
	Kind   string `json:"kind"`
	Factor string `json:"factor"`
	// Oracle marks channels `biaslab predict` can analyze statically.
	Oracle bool `json:"oracle,omitempty"`
}

// Catalog is the GET /v1/catalog response and the biaslab list -json
// output: what this lab can measure.
type Catalog struct {
	Benchmarks  []BenchmarkInfo `json:"benchmarks"`
	Machines    []string        `json:"machines"`
	Channels    []ChannelInfo   `json:"channels"`
	Experiments []string        `json:"experiments"`
}

// NewCatalog builds the catalog from the built-in suite, machine models,
// channel registry, and experiment registry.
func NewCatalog() *Catalog {
	c := &Catalog{
		Machines:    []string{"p4", "core2", "m5"},
		Experiments: experiments.IDs(),
	}
	for _, b := range bench.All() {
		c.Benchmarks = append(c.Benchmarks, BenchmarkInfo{Name: b.Name, Spec: b.Spec, Kernel: b.Kernel})
	}
	for _, ch := range channels.All() {
		c.Channels = append(c.Channels, ChannelInfo{Name: ch.Name, Kind: ch.JobKind, Factor: ch.Factor, Oracle: ch.Oracle})
	}
	return c
}
