// Package client is the small HTTP client behind cmd/biaslab's -server
// mode: submit a job to a biaslabd daemon, follow its progress, and fetch
// the stored result. It speaks only the wire types of internal/server, so
// the CLI and the daemon cannot drift apart.
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"biaslab/internal/server"
)

// Client talks to one biaslabd daemon.
type Client struct {
	// BaseURL is the daemon's root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// HTTP is the underlying client (http.DefaultClient when nil).
	HTTP *http.Client
	// PollInterval paces Wait's status polls (default 100ms).
	PollInterval time.Duration
}

// New builds a client for the daemon at baseURL.
func New(baseURL string) *Client {
	return &Client{BaseURL: strings.TrimRight(baseURL, "/")}
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// doJSON issues a request and decodes the JSON response into out,
// surfacing the daemon's error body on non-2xx statuses.
func (c *Client) doJSON(ctx context.Context, method, path string, body any, out any) error {
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		var apiErr struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(data, &apiErr) == nil && apiErr.Error != "" {
			return fmt.Errorf("client: %s %s: %s", method, path, apiErr.Error)
		}
		return fmt.Errorf("client: %s %s: HTTP %d", method, path, resp.StatusCode)
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(data, out)
}

// Submit posts a job spec.
func (c *Client) Submit(ctx context.Context, spec server.JobSpec) (*server.SubmitResponse, error) {
	var resp server.SubmitResponse
	if err := c.doJSON(ctx, http.MethodPost, "/v1/jobs", spec, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Job fetches a job's status.
func (c *Client) Job(ctx context.Context, id string) (*server.JobStatus, error) {
	var st server.JobStatus
	if err := c.doJSON(ctx, http.MethodGet, "/v1/jobs/"+id, nil, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Wait polls until the job reaches a terminal state and returns it.
func (c *Client) Wait(ctx context.Context, id string) (*server.JobStatus, error) {
	interval := c.PollInterval
	if interval <= 0 {
		interval = 100 * time.Millisecond
	}
	for {
		st, err := c.Job(ctx, id)
		if err != nil {
			return nil, err
		}
		switch st.State {
		case server.StateDone, server.StateFailed, server.StateCanceled:
			return st, nil
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(interval):
		}
	}
}

// Result fetches the stored canonical result bytes for a content key and
// their decoded form. The raw bytes are exactly what the daemon stored —
// print them for -json output and a remote result is byte-identical to a
// local one.
func (c *Client) Result(ctx context.Context, key string) (*server.Result, []byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/v1/results/"+key, nil)
	if err != nil {
		return nil, nil, err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, nil, fmt.Errorf("client: GET /v1/results/%s: HTTP %d", key, resp.StatusCode)
	}
	res, err := server.DecodeResult(raw)
	if err != nil {
		return nil, nil, err
	}
	return res, raw, nil
}

// Catalog fetches the daemon's catalog.
func (c *Client) Catalog(ctx context.Context) (*server.Catalog, error) {
	var cat server.Catalog
	if err := c.doJSON(ctx, http.MethodGet, "/v1/catalog", nil, &cat); err != nil {
		return nil, err
	}
	return &cat, nil
}

// Metrics fetches the daemon's text-format counters.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/metrics", nil)
	if err != nil {
		return "", err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("client: GET /metrics: HTTP %d", resp.StatusCode)
	}
	return string(data), nil
}

// Events subscribes to a job's SSE stream and invokes fn for every event,
// historical and live, until the stream ends (the job reached a terminal
// state) or ctx is cancelled. A cancelled ctx is not an error: the caller
// chose to stop watching.
func (c *Client) Events(ctx context.Context, id string, fn func(server.Event)) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/v1/jobs/"+id+"/events", nil)
	if err != nil {
		return err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		if ctx.Err() != nil {
			return nil
		}
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("client: GET /v1/jobs/%s/events: HTTP %d", id, resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var data string
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "data:"):
			data = strings.TrimSpace(strings.TrimPrefix(line, "data:"))
		case line == "" && data != "":
			var ev server.Event
			if err := json.Unmarshal([]byte(data), &ev); err != nil {
				return fmt.Errorf("client: decoding event: %w", err)
			}
			fn(ev)
			data = ""
		}
	}
	if err := sc.Err(); err != nil && ctx.Err() == nil {
		return err
	}
	return nil
}
