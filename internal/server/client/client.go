// Package client is the small HTTP client behind cmd/biaslab's -server
// mode: submit a job to a biaslabd daemon, follow its progress, and fetch
// the stored result. It speaks only the wire types of internal/server, so
// the CLI and the daemon cannot drift apart.
//
// The client is transient-failure tolerant: connection failures and 5xx
// responses are retried with capped exponential backoff (every request
// here is safe to repeat — GETs are read-only, and POST /v1/jobs is
// idempotent because the daemon content-keys and singleflights
// submissions), and a dropped SSE stream reconnects and resumes from the
// last event index it saw, so a watcher misses nothing across a network
// blip.
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"biaslab/internal/retry"
	"biaslab/internal/server"
)

// Client talks to one biaslabd daemon.
type Client struct {
	// BaseURL is the daemon's root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// HTTP is the underlying client (http.DefaultClient when nil).
	HTTP *http.Client
	// PollInterval paces Wait's status polls (default 100ms).
	PollInterval time.Duration
	// Retry paces transient-failure retries and SSE reconnects. The zero
	// value selects the package defaults (5 attempts, 50ms–2s backoff).
	Retry retry.Policy
}

// New builds a client for the daemon at baseURL.
func New(baseURL string) *Client {
	return &Client{BaseURL: strings.TrimRight(baseURL, "/")}
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// statusError is a non-2xx daemon response, carrying the status so the
// retry predicate can separate server trouble (5xx, transient) from
// caller mistakes (4xx, permanent).
type statusError struct {
	method, path string
	status       int
	msg          string
}

func (e *statusError) Error() string {
	if e.msg != "" {
		return fmt.Sprintf("client: %s %s: %s", e.method, e.path, e.msg)
	}
	return fmt.Sprintf("client: %s %s: HTTP %d", e.method, e.path, e.status)
}

// transient reports whether an error is worth retrying: any transport
// failure, or a 5xx. 4xx responses are the caller's fault and retrying
// would only repeat them.
func transient(err error) bool {
	if se, ok := err.(*statusError); ok {
		return se.status >= 500
	}
	return true
}

// do issues one request (with retries) and returns the response body of
// the first 2xx answer.
func (c *Client) do(ctx context.Context, method, path string, body []byte) ([]byte, error) {
	var data []byte
	err := c.Retry.Do(ctx, method+" "+path, transient, func() error {
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, rd)
		if err != nil {
			return err
		}
		if body != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		resp, err := c.httpClient().Do(req)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		data, err = io.ReadAll(resp.Body)
		if err != nil {
			return err
		}
		if resp.StatusCode/100 != 2 {
			var apiErr struct {
				Error string `json:"error"`
			}
			json.Unmarshal(data, &apiErr)
			return &statusError{method: method, path: path, status: resp.StatusCode, msg: apiErr.Error}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return data, nil
}

// doJSON issues a request and decodes the JSON response into out.
func (c *Client) doJSON(ctx context.Context, method, path string, body any, out any) error {
	var encoded []byte
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return err
		}
		encoded = b
	}
	data, err := c.do(ctx, method, path, encoded)
	if err != nil {
		return err
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(data, out)
}

// Submit posts a job spec. Safe under retry: the daemon content-keys the
// spec, so a resubmission after a lost response lands on the same job.
func (c *Client) Submit(ctx context.Context, spec server.JobSpec) (*server.SubmitResponse, error) {
	var resp server.SubmitResponse
	if err := c.doJSON(ctx, http.MethodPost, "/v1/jobs", spec, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Job fetches a job's status.
func (c *Client) Job(ctx context.Context, id string) (*server.JobStatus, error) {
	var st server.JobStatus
	if err := c.doJSON(ctx, http.MethodGet, "/v1/jobs/"+id, nil, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Wait polls until the job reaches a terminal state and returns it.
func (c *Client) Wait(ctx context.Context, id string) (*server.JobStatus, error) {
	interval := c.PollInterval
	if interval <= 0 {
		interval = 100 * time.Millisecond
	}
	for {
		st, err := c.Job(ctx, id)
		if err != nil {
			return nil, err
		}
		switch st.State {
		case server.StateDone, server.StateFailed, server.StateCanceled:
			return st, nil
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(interval):
		}
	}
}

// Result fetches the stored canonical result bytes for a content key and
// their decoded form. The raw bytes are exactly what the daemon stored —
// print them for -json output and a remote result is byte-identical to a
// local one.
func (c *Client) Result(ctx context.Context, key string) (*server.Result, []byte, error) {
	raw, err := c.do(ctx, http.MethodGet, "/v1/results/"+key, nil)
	if err != nil {
		return nil, nil, err
	}
	res, err := server.DecodeResult(raw)
	if err != nil {
		return nil, nil, err
	}
	return res, raw, nil
}

// Catalog fetches the daemon's catalog.
func (c *Client) Catalog(ctx context.Context) (*server.Catalog, error) {
	var cat server.Catalog
	if err := c.doJSON(ctx, http.MethodGet, "/v1/catalog", nil, &cat); err != nil {
		return nil, err
	}
	return &cat, nil
}

// Metrics fetches the daemon's text-format counters.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	data, err := c.do(ctx, http.MethodGet, "/metrics", nil)
	if err != nil {
		return "", err
	}
	return string(data), nil
}

// Events subscribes to a job's SSE stream and invokes fn for every event,
// historical and live, until the job reaches a terminal state or ctx is
// cancelled. A cancelled ctx is not an error: the caller chose to stop
// watching.
//
// The subscription survives disconnects: the client tracks the index of
// the next event it needs (fed by the stream's id: lines) and reconnects
// with ?since=<index>, so the daemon replays exactly the missed events —
// no duplicates, no gaps. Reconnect attempts are paced by the Retry
// policy; the budget resets whenever a connection makes progress.
func (c *Client) Events(ctx context.Context, id string, fn func(server.Event)) error {
	next := 0 // index of the next event this watcher has not seen
	failures := 0
	pol := c.Retry
	for {
		terminal, progressed, err := c.streamEvents(ctx, id, &next, fn)
		switch {
		case terminal || ctx.Err() != nil:
			return nil
		case err != nil && !transient(err):
			return err
		}
		// The stream dropped mid-job (or ended without a terminal event):
		// reconnect from where we left off.
		if progressed {
			failures = 0
		}
		failures++
		maxFailures := pol.Attempts
		if maxFailures <= 0 {
			maxFailures = 5
		}
		if failures >= maxFailures {
			if err == nil {
				err = fmt.Errorf("client: event stream for %s ended before the job finished", id)
			}
			return err
		}
		t := time.NewTimer(pol.Delay("events/"+id, failures))
		select {
		case <-ctx.Done():
			return nil
		case <-t.C:
		}
	}
}

// streamEvents consumes one SSE connection. It reports whether a terminal
// state event arrived (the stream's natural end) and whether any event at
// all arrived (progress, which resets the reconnect budget). next is
// advanced past every dispatched event, in step with the server's id:
// lines.
func (c *Client) streamEvents(ctx context.Context, id string, next *int, fn func(server.Event)) (terminal, progressed bool, err error) {
	path := "/v1/jobs/" + id + "/events"
	if *next > 0 {
		path += "?since=" + strconv.Itoa(*next)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+path, nil)
	if err != nil {
		return false, false, err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return false, false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
		var apiErr struct {
			Error string `json:"error"`
		}
		json.Unmarshal(data, &apiErr)
		return false, false, &statusError{method: http.MethodGet, path: path, status: resp.StatusCode, msg: apiErr.Error}
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var data string
	idx := *next
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "id:"):
			if n, err := strconv.Atoi(strings.TrimSpace(strings.TrimPrefix(line, "id:"))); err == nil {
				idx = n
			}
		case strings.HasPrefix(line, "data:"):
			data = strings.TrimSpace(strings.TrimPrefix(line, "data:"))
		case line == "" && data != "":
			var ev server.Event
			if err := json.Unmarshal([]byte(data), &ev); err != nil {
				return false, progressed, fmt.Errorf("client: decoding event: %w", err)
			}
			fn(ev)
			progressed = true
			*next = idx + 1
			data = ""
			if ev.Type == "state" {
				switch ev.State {
				case server.StateDone, server.StateFailed, server.StateCanceled:
					return true, true, nil
				}
			}
		}
	}
	return false, progressed, sc.Err()
}
