package client_test

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"biaslab/internal/retry"
	"biaslab/internal/server"
	"biaslab/internal/server/client"
)

func testClient(url string) *client.Client {
	c := client.New(url)
	c.PollInterval = time.Millisecond
	c.Retry = retry.Policy{Attempts: 3, Base: time.Millisecond, Cap: 5 * time.Millisecond}
	return c
}

// TestSubmitRetriesTransient: 5xx responses are server trouble — the
// client retries with backoff until the daemon recovers. Submission is
// retry-safe because the server deduplicates by content key.
func TestSubmitRetriesTransient(t *testing.T) {
	var mu sync.Mutex
	calls := 0
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		calls++
		n := calls
		mu.Unlock()
		if n <= 2 {
			http.Error(w, `{"error":"restarting"}`, http.StatusServiceUnavailable)
			return
		}
		json.NewEncoder(w).Encode(server.SubmitResponse{ID: "j1", Key: "k1", State: server.StateQueued})
	}))
	defer ts.Close()

	sub, err := testClient(ts.URL).Submit(context.Background(), server.JobSpec{Kind: server.KindRun, Size: "test", Bench: "hmmer", Machine: "p4"})
	if err != nil {
		t.Fatalf("Submit did not survive transient 503s: %v", err)
	}
	if sub.ID != "j1" {
		t.Errorf("ID = %q, want j1", sub.ID)
	}
	mu.Lock()
	defer mu.Unlock()
	if calls != 3 {
		t.Errorf("server saw %d requests, want 3 (two failures + success)", calls)
	}
}

// TestSubmitDoesNotRetryCallerMistakes: a 4xx is permanent; retrying
// would just repeat the mistake.
func TestSubmitDoesNotRetryCallerMistakes(t *testing.T) {
	var mu sync.Mutex
	calls := 0
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		calls++
		mu.Unlock()
		http.Error(w, `{"error":"no such benchmark"}`, http.StatusBadRequest)
	}))
	defer ts.Close()

	if _, err := testClient(ts.URL).Submit(context.Background(), server.JobSpec{Kind: server.KindRun}); err == nil {
		t.Fatal("Submit swallowed a 400")
	}
	mu.Lock()
	defer mu.Unlock()
	if calls != 1 {
		t.Errorf("server saw %d requests, want exactly 1 (no retry on 4xx)", calls)
	}
}

// TestSubmitRetriesConnectionRefused: a daemon that is briefly down
// (restart, deploy) refuses connections at the TCP level; the client
// retries those too.
func TestSubmitRetriesConnectionRefused(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(server.SubmitResponse{ID: "j1", Key: "k1", State: server.StateQueued})
	}))
	url := ts.URL
	ts.Close() // the port now refuses connections

	c := testClient(url)
	if _, err := c.Submit(context.Background(), server.JobSpec{Kind: server.KindRun}); err == nil {
		t.Fatal("Submit succeeded against a dead daemon")
	}
	// All attempts must have been spent on the network error before giving
	// up — observable through the error being a dial failure, not a status.
}

// writeEvent emits one SSE frame in the server's wire format.
func writeEvent(w http.ResponseWriter, idx int, ev server.Event) {
	data, _ := json.Marshal(ev)
	fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", idx, ev.Type, data)
}

// TestEventsReconnectResumes: when the stream drops mid-job (EOF with no
// terminal event), the client reconnects with ?since=<next unseen index>
// and the combined delivery is exactly-once, in order.
func TestEventsReconnectResumes(t *testing.T) {
	var mu sync.Mutex
	conns := 0
	var sinces []string
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		conns++
		n := conns
		sinces = append(sinces, r.URL.Query().Get("since"))
		mu.Unlock()
		w.Header().Set("Content-Type", "text/event-stream")
		if n == 1 {
			// Three point events, then the connection dies mid-job.
			for i := 0; i < 3; i++ {
				writeEvent(w, i, server.Event{Type: "point", Key: fmt.Sprintf("p%d", i), Done: i + 1, Total: 6})
			}
			return
		}
		// Resumed connection: the rest of the job, ending terminally.
		for i := 3; i < 5; i++ {
			writeEvent(w, i, server.Event{Type: "point", Key: fmt.Sprintf("p%d", i), Done: i + 1, Total: 6})
		}
		writeEvent(w, 5, server.Event{Type: "state", State: server.StateDone})
	}))
	defer ts.Close()

	var got []server.Event
	if err := testClient(ts.URL).Events(context.Background(), "j1", func(ev server.Event) {
		got = append(got, ev)
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 6 {
		t.Fatalf("delivered %d events, want 6 exactly-once", len(got))
	}
	for i := 0; i < 5; i++ {
		if want := fmt.Sprintf("p%d", i); got[i].Key != want {
			t.Errorf("event %d = %q, want %q (order or dedup broken)", i, got[i].Key, want)
		}
	}
	if got[5].State != server.StateDone {
		t.Errorf("final event state = %q, want done", got[5].State)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(sinces) != 2 || sinces[0] != "" || sinces[1] != "3" {
		t.Errorf("since parameters = %v, want [\"\" \"3\"]", sinces)
	}
}

// TestEventsGivesUpWithoutProgress: a stream that keeps dying without
// delivering anything exhausts the reconnect budget instead of spinning
// forever.
func TestEventsGivesUpWithoutProgress(t *testing.T) {
	var mu sync.Mutex
	conns := 0
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		conns++
		mu.Unlock()
		w.Header().Set("Content-Type", "text/event-stream")
		// EOF immediately: no events, no terminal state.
	}))
	defer ts.Close()

	err := testClient(ts.URL).Events(context.Background(), "j1", func(server.Event) {})
	if err == nil {
		t.Fatal("Events returned nil for a stream that never finished")
	}
	mu.Lock()
	defer mu.Unlock()
	if conns < 2 {
		t.Errorf("client gave up after %d connections without using its reconnect budget", conns)
	}
}
