package server_test

import (
	"bytes"
	"context"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"biaslab/internal/bench"
	"biaslab/internal/core"
	"biaslab/internal/server"
	"biaslab/internal/server/client"
)

func newServer(t *testing.T, dir string, workers int) *server.Server {
	t.Helper()
	srv, err := server.New(server.Config{DataDir: dir, Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

// waitDone polls a job until it reaches a terminal state.
func waitDone(t *testing.T, srv *server.Server, id string) *server.JobStatus {
	t.Helper()
	deadline := time.Now().Add(180 * time.Second)
	for time.Now().Before(deadline) {
		st, ok := srv.Job(id)
		if !ok {
			t.Fatalf("job %s vanished", id)
		}
		switch st.State {
		case server.StateDone, server.StateFailed, server.StateCanceled:
			return st
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish in time", id)
	return nil
}

func sweepSpec() server.JobSpec {
	// Step 256 keeps the sweep small (17 points) so the suite stays quick
	// under -race.
	return server.JobSpec{Kind: server.KindSweepEnv, Size: "test", Bench: "hmmer", Machine: "p4", Step: 256}
}

// localBytes runs a spec through the shared Execute path exactly as
// cmd/biaslab's local mode does and returns the canonical encoding.
func localBytes(t *testing.T, spec server.JobSpec) []byte {
	t.Helper()
	canonical, err := spec.Canonicalize()
	if err != nil {
		t.Fatal(err)
	}
	size, _ := bench.ParseSize(canonical.Size)
	res, err := server.Execute(context.Background(), core.NewRunner(size), canonical, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := server.EncodeResult(res)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// TestSweepByteIdentityAndCache is acceptance criteria (a) and (b): a
// sweep submitted over HTTP stores exactly the bytes the same command
// produces locally, and resubmitting the identical spec is a cache hit
// that performs zero new measurements.
func TestSweepByteIdentityAndCache(t *testing.T) {
	srv := newServer(t, t.TempDir(), 2)
	defer srv.Shutdown(context.Background())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	cl := client.New(ts.URL)
	cl.PollInterval = 2 * time.Millisecond
	ctx := context.Background()

	sub, err := cl.Submit(ctx, sweepSpec())
	if err != nil {
		t.Fatal(err)
	}
	if sub.Cached || sub.InFlight {
		t.Fatalf("fresh submission: %+v", sub)
	}
	st, err := cl.Wait(ctx, sub.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != server.StateDone {
		t.Fatalf("job finished %s (error %+v), want done", st.State, st.Error)
	}
	if st.Progress.Replayed != 0 {
		t.Errorf("fresh sweep replayed %d points", st.Progress.Replayed)
	}
	if st.Progress.Done == 0 || st.Progress.Done != st.Progress.Total {
		t.Errorf("progress %+v, want done == total > 0", st.Progress)
	}

	// (a) The stored result is byte-identical to the local execution path,
	// and both render identically through the shared renderers.
	res, raw, err := cl.Result(ctx, sub.Key)
	if err != nil {
		t.Fatal(err)
	}
	local := localBytes(t, sweepSpec())
	if !bytes.Equal(raw, local) {
		t.Errorf("HTTP result differs from local execution:\nremote %s\nlocal  %s", raw, local)
	}
	text, err := server.RenderText(res)
	if err != nil {
		t.Fatal(err)
	}
	if want := "O3-over-O2 speedup of hmmer vs environment size (p4)"; !bytes.Contains([]byte(text), []byte(want)) {
		t.Errorf("rendered text missing %q:\n%.200s", want, text)
	}
	csv, err := server.RenderCSV(res)
	if err != nil || len(csv) == 0 {
		t.Errorf("RenderCSV = %q, %v", csv, err)
	}

	// (b) Identical resubmission: cache hit, zero new measurements.
	before := srv.MetricsSnapshot()
	sub2, err := cl.Submit(ctx, sweepSpec())
	if err != nil {
		t.Fatal(err)
	}
	if !sub2.Cached || sub2.State != server.StateDone {
		t.Fatalf("resubmission not served from cache: %+v", sub2)
	}
	if sub2.Key != sub.Key {
		t.Errorf("identical specs keyed differently: %s vs %s", sub.Key, sub2.Key)
	}
	after := srv.MetricsSnapshot()
	if after.Measurements != before.Measurements {
		t.Errorf("cache hit measured: %d → %d", before.Measurements, after.Measurements)
	}
	if after.CacheHits != before.CacheHits+1 {
		t.Errorf("cache hits %d → %d, want +1", before.CacheHits, after.CacheHits)
	}
	_, raw2, err := cl.Result(ctx, sub2.Key)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw, raw2) {
		t.Error("cached result bytes differ from the original")
	}

	// The event stream replays the full history of a finished job.
	var points, stateDone int
	if err := cl.Events(ctx, sub.ID, func(ev server.Event) {
		switch ev.Type {
		case "point":
			points++
		case "state":
			if ev.State == server.StateDone {
				stateDone++
			}
		}
	}); err != nil {
		t.Fatal(err)
	}
	if points != st.Progress.Total {
		t.Errorf("event stream replayed %d points, want %d", points, st.Progress.Total)
	}
	if stateDone != 1 {
		t.Errorf("event stream carried %d done events, want 1", stateDone)
	}
}

// TestShutdownResumeLosesNoPoints is acceptance criterion (c): SIGTERM
// (Shutdown) mid-sweep, restart on the same data dir, resubmit — every
// point completed before the interruption is replayed from the job
// journal, only the remainder is measured, and the final result is
// byte-identical to an uninterrupted run.
func TestShutdownResumeLosesNoPoints(t *testing.T) {
	dir := t.TempDir()
	// step 192 → 22 points: enough runway to interrupt mid-flight without
	// making the resumed and reference runs expensive under -race.
	spec := server.JobSpec{Kind: server.KindSweepEnv, Size: "test", Bench: "hmmer", Machine: "p4", Step: 192}

	srv1 := newServer(t, dir, 1)
	sub, err := srv1.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	// Let a few points land, then pull the plug.
	deadline := time.Now().Add(180 * time.Second)
	for {
		st, _ := srv1.Job(sub.ID)
		if st.Progress.Done >= 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("sweep made no progress")
		}
		time.Sleep(500 * time.Microsecond)
	}
	if err := srv1.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	st, _ := srv1.Job(sub.ID)
	if st.State != server.StateCanceled {
		t.Fatalf("interrupted job is %s, want canceled", st.State)
	}
	interrupted := st.Progress.Done
	if interrupted < 3 || interrupted >= st.Progress.Total {
		t.Fatalf("interrupted at %d/%d points; test needs a mid-sweep cut", interrupted, st.Progress.Total)
	}
	if _, err := os.Stat(filepath.Join(dir, "jobs", sub.Key+".jsonl")); err != nil {
		t.Fatalf("interrupted job left no journal: %v", err)
	}

	// Restart on the same data dir and resubmit: the journal must replay
	// every completed point and the sweep must finish by measuring only the
	// remainder.
	srv2 := newServer(t, dir, 1)
	defer srv2.Shutdown(context.Background())
	sub2, err := srv2.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if sub2.Cached {
		t.Fatal("interrupted job resubmitted as a store hit; nothing was resumed")
	}
	if sub2.Key != sub.Key {
		t.Fatalf("resubmission keyed %s, interrupted job was %s", sub2.Key, sub.Key)
	}
	st2 := waitDone(t, srv2, sub2.ID)
	if st2.State != server.StateDone {
		t.Fatalf("resumed job finished %s (error %+v)", st2.State, st2.Error)
	}
	if st2.Progress.Replayed == 0 {
		t.Error("resumed job replayed nothing; completed points were lost")
	}
	if st2.Progress.Replayed > interrupted {
		t.Errorf("replayed %d points but only %d were observed before the cut", st2.Progress.Replayed, interrupted)
	}
	if st2.Progress.Done != st2.Progress.Total {
		t.Errorf("resumed progress %+v, want done == total", st2.Progress)
	}
	m := srv2.MetricsSnapshot()
	if fresh := st2.Progress.Total - st2.Progress.Replayed; int(m.PointsMeasured) != fresh {
		t.Errorf("restarted daemon measured %d points, want %d (total %d − replayed %d)",
			m.PointsMeasured, fresh, st2.Progress.Total, st2.Progress.Replayed)
	}

	// The resumed result must be byte-identical to an uninterrupted run.
	raw, ok, err := srv2.Result(sub.Key)
	if err != nil || !ok {
		t.Fatalf("resumed result missing: ok=%v err=%v", ok, err)
	}
	if local := localBytes(t, spec); !bytes.Equal(raw, local) {
		t.Errorf("resumed result differs from an uninterrupted run:\nresumed %s\nfresh   %s", raw, local)
	}
	// The job journal is redundant once the result is durable.
	if _, err := os.Stat(filepath.Join(dir, "jobs", sub.Key+".jsonl")); !os.IsNotExist(err) {
		t.Errorf("job journal survived result storage: %v", err)
	}
}

// TestSingleflight: submitting a spec identical to a queued/running job
// joins it instead of spawning duplicate work.
func TestSingleflight(t *testing.T) {
	srv := newServer(t, t.TempDir(), 1)
	defer srv.Shutdown(context.Background())
	sub1, err := srv.Submit(sweepSpec())
	if err != nil {
		t.Fatal(err)
	}
	sub2, err := srv.Submit(sweepSpec())
	if err != nil {
		t.Fatal(err)
	}
	if !sub2.InFlight || sub2.ID != sub1.ID {
		t.Errorf("duplicate submission spawned a new job: %+v vs %+v", sub2, sub1)
	}
	waitDone(t, srv, sub1.ID)
	m := srv.MetricsSnapshot()
	if m.JobsSubmitted != 2 || m.CacheHits != 1 || m.CacheMisses != 1 {
		t.Errorf("submitted/hits/misses = %d/%d/%d, want 2/1/1", m.JobsSubmitted, m.CacheHits, m.CacheMisses)
	}
}

// TestSubmitValidation: a malformed spec is rejected before any job is
// created.
func TestSubmitValidation(t *testing.T) {
	srv := newServer(t, t.TempDir(), 1)
	defer srv.Shutdown(context.Background())
	for _, spec := range []server.JobSpec{
		{},
		{Kind: "explode"},
		{Kind: server.KindRun},
		{Kind: server.KindRun, Bench: "nope"},
		{Kind: server.KindRun, Bench: "hmmer", Machine: "vax"},
		{Kind: server.KindRun, Bench: "hmmer", Size: "enormous"},
		{Kind: server.KindExperiment, Experiment: "F99"},
		{Kind: server.KindRandomize, Bench: "hmmer", Tol: -1},
	} {
		if _, err := srv.Submit(spec); err == nil {
			t.Errorf("Submit(%+v) accepted an invalid spec", spec)
		}
	}
	if m := srv.MetricsSnapshot(); m.JobsSubmitted != 0 {
		t.Errorf("invalid specs counted as submissions: %d", m.JobsSubmitted)
	}
}

// TestDrainingRejectsSubmissions: after Shutdown no new work is accepted.
func TestDrainingRejectsSubmissions(t *testing.T) {
	srv := newServer(t, t.TempDir(), 1)
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Submit(sweepSpec()); err != server.ErrDraining {
		t.Errorf("Submit after Shutdown = %v, want ErrDraining", err)
	}
}

// TestRunJobThroughHTTP: the smallest job kind exercises the whole HTTP
// surface — submit, status, result in all three formats, metrics, healthz.
func TestRunJobThroughHTTP(t *testing.T) {
	srv := newServer(t, t.TempDir(), 1)
	defer srv.Shutdown(context.Background())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	cl := client.New(ts.URL)
	cl.PollInterval = 2 * time.Millisecond
	ctx := context.Background()

	spec := server.JobSpec{Kind: server.KindRun, Size: "test", Bench: "libquantum", Machine: "core2", Level: "O3"}
	sub, err := cl.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	st, err := cl.Wait(ctx, sub.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != server.StateDone {
		t.Fatalf("run job finished %s: %+v", st.State, st.Error)
	}
	res, raw, err := cl.Result(ctx, sub.Key)
	if err != nil {
		t.Fatal(err)
	}
	if res.Run == nil || res.Run.Cycles == 0 || res.Run.Benchmark != "libquantum" {
		t.Fatalf("run payload wrong: %+v", res.Run)
	}
	if local := localBytes(t, spec); !bytes.Equal(raw, local) {
		t.Errorf("HTTP run result differs from local execution")
	}
	metrics, err := cl.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if want := srv.MetricsSnapshot().Render(); metrics != want {
		t.Errorf("/metrics drifted from snapshot:\n%s\nvs\n%s", metrics, want)
	}
}
