package server_test

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"biaslab/internal/audit"
	"biaslab/internal/server"
)

// criminalSpec is the paper's titular crime: a one-setup "comparison".
func criminalSpec() server.JobSpec {
	return server.JobSpec{Kind: server.KindRandomize, Size: "test", Bench: "hmmer", N: 1}
}

func postJob(t *testing.T, ts *httptest.Server, spec server.JobSpec, strict bool) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	url := ts.URL + "/v1/jobs"
	if strict {
		url += "?strict=1"
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

// decodeSubmit parses a SubmitResponse into a fresh struct (reusing one
// across decodes would let absent fields keep stale values).
func decodeSubmit(t *testing.T, body []byte) server.SubmitResponse {
	t.Helper()
	var sub server.SubmitResponse
	if err := json.Unmarshal(body, &sub); err != nil {
		t.Fatal(err)
	}
	return sub
}

// TestStrictSubmitRejectsCriminalSpec is the daemon-side audit acceptance
// test: ?strict=1 rejects a guilty spec with 422 and the findings, the
// same spec without strict runs with the findings attached as advisory,
// a suppression restores strict admission, and the biaslabd_audit_*
// metrics record all of it.
func TestStrictSubmitRejectsCriminalSpec(t *testing.T) {
	srv := newServer(t, t.TempDir(), 2)
	defer srv.Shutdown(context.Background())
	srv.SetAuditor(audit.New(srv.Runner))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Strict: rejected before any queueing, with the charges in the body.
	resp, body := postJob(t, ts, criminalSpec(), true)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("strict submit status = %d, want 422 (body %s)", resp.StatusCode, body)
	}
	var rejection struct {
		Error string                `json:"error"`
		Audit []server.AuditFinding `json:"audit"`
	}
	if err := json.Unmarshal(body, &rejection); err != nil {
		t.Fatal(err)
	}
	if len(rejection.Audit) == 0 || rejection.Audit[0].Rule != audit.RuleSingleSetup {
		t.Fatalf("rejection body missing findings: %s", body)
	}
	snap := srv.MetricsSnapshot()
	if snap.AuditRejected != 1 || snap.AuditFlagged != 1 {
		t.Fatalf("AuditRejected=%d AuditFlagged=%d, want 1/1", snap.AuditRejected, snap.AuditFlagged)
	}

	// Non-strict: the same spec is admitted, findings attached as advisory.
	resp, body = postJob(t, ts, criminalSpec(), false)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("advisory submit status = %d (body %s)", resp.StatusCode, body)
	}
	sub := decodeSubmit(t, body)
	if len(sub.Audit) == 0 || sub.Audit[0].Rule != audit.RuleSingleSetup || sub.Audit[0].Suppressed {
		t.Fatalf("advisory submission missing unsuppressed findings: %s", body)
	}
	st := waitDone(t, srv, sub.ID)
	if st.State != server.StateDone {
		t.Fatalf("advisory criminal job state = %s, err %v", st.State, st.Error)
	}
	if len(st.Audit) == 0 {
		t.Fatal("job status lost the audit findings")
	}

	// Suppressed: the guilty spec with audit_allow passes strict. Its
	// result is already cached — strict auditing must still have run.
	suppressed := criminalSpec()
	suppressed.AuditAllow = []string{audit.RuleSingleSetup}
	resp, body = postJob(t, ts, suppressed, true)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("suppressed strict submit status = %d (body %s)", resp.StatusCode, body)
	}
	sub = decodeSubmit(t, body)
	if !sub.Cached {
		t.Error("suppression changed the content key: suppressed resubmission missed the cache")
	}
	if len(sub.Audit) != 1 || !sub.Audit[0].Suppressed {
		t.Fatalf("suppressed submission findings = %s", body)
	}

	// Clean spec: counted clean, no findings.
	clean := criminalSpec()
	clean.N = 16
	resp, body = postJob(t, ts, clean, true)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("clean strict submit status = %d (body %s)", resp.StatusCode, body)
	}
	sub = decodeSubmit(t, body)
	if len(sub.Audit) != 0 {
		t.Fatalf("clean spec flagged: %s", body)
	}
	waitDone(t, srv, sub.ID)

	snap = srv.MetricsSnapshot()
	if snap.AuditClean != 1 {
		t.Errorf("AuditClean = %d, want 1", snap.AuditClean)
	}
	if snap.AuditFlagged != 3 {
		t.Errorf("AuditFlagged = %d, want 3", snap.AuditFlagged)
	}
	if snap.AuditSuppressed != 1 {
		t.Errorf("AuditSuppressed = %d, want 1", snap.AuditSuppressed)
	}
	if snap.AuditRejected != 1 {
		t.Errorf("AuditRejected = %d, want 1", snap.AuditRejected)
	}

	// The counters are served on /metrics in text form.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(mresp.Body)
	for _, line := range []string{
		"biaslabd_audit_specs_clean_total 1",
		"biaslabd_audit_specs_flagged_total 3",
		"biaslabd_audit_findings_suppressed_total 1",
		"biaslabd_audit_rejected_total 1",
	} {
		if !strings.Contains(buf.String(), line) {
			t.Errorf("/metrics missing %q:\n%s", line, buf.String())
		}
	}
}

// TestNoAuditorIsNoop: a daemon without an attached auditor admits
// everything, strict or not — auditing is opt-in wiring, not a hard
// dependency of the server package.
func TestNoAuditorIsNoop(t *testing.T) {
	srv := newServer(t, t.TempDir(), 1)
	defer srv.Shutdown(context.Background())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, body := postJob(t, ts, criminalSpec(), true)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("auditor-less strict submit status = %d (body %s)", resp.StatusCode, body)
	}
	sub := decodeSubmit(t, body)
	if len(sub.Audit) != 0 {
		t.Fatalf("auditor-less daemon produced findings: %s", body)
	}
	waitDone(t, srv, sub.ID)
}
