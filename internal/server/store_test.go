package server_test

import (
	"bytes"
	"path/filepath"
	"testing"

	"biaslab/internal/server"
)

// TestStoreRoundTripAndPersistence: stored result bytes come back verbatim,
// and survive a close/reopen cycle — the property that lets a restarted
// daemon serve cache hits byte-identical to the run that produced them.
func TestStoreRoundTripAndPersistence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.jsonl")
	st, err := server.OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	raw := []byte(`{"kind":"run","spec":{"kind":"run","size":"test","bench":"hmmer"},"run":{"cycles":12345}}`)
	if err := st.Put("k1", raw); err != nil {
		t.Fatal(err)
	}
	got, ok, err := st.Get("k1")
	if err != nil || !ok {
		t.Fatalf("Get = %v, %v; want hit", ok, err)
	}
	if !bytes.Equal(got, raw) {
		t.Errorf("stored bytes changed:\nput %s\ngot %s", raw, got)
	}
	if _, ok, _ := st.Get("absent"); ok {
		t.Error("Get of unknown key reported a hit")
	}
	if st.Len() != 1 {
		t.Errorf("Len = %d, want 1", st.Len())
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := server.OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	got2, ok, err := st2.Get("k1")
	if err != nil || !ok {
		t.Fatalf("Get after reopen = %v, %v; want hit", ok, err)
	}
	if !bytes.Equal(got2, raw) {
		t.Errorf("reopened store changed the bytes:\nput %s\ngot %s", raw, got2)
	}
}
