package server

import (
	"context"
	"fmt"

	"biaslab/internal/bench"
	"biaslab/internal/channels"
	"biaslab/internal/core"
	"biaslab/internal/experiments"
)

// Execute runs the measurement a canonical spec names on r and returns
// the result envelope. It is the single execution path behind both the
// daemon's workers and cmd/biaslab's local mode — the reason a job
// submitted over HTTP resolves to exactly the result the same command
// computes locally.
//
// spec must be canonical (Canonicalize it first); r must have been built
// at spec's workload size. ck (optional) checkpoints sweep and experiment
// points for crash-safe resume. onTotal (optional) is told the job's point
// count as soon as it is known.
func Execute(ctx context.Context, r *core.Runner, spec JobSpec, ck core.Checkpoint, onTotal func(int)) (*Result, error) {
	if onTotal == nil {
		onTotal = func(int) {}
	}
	res := &Result{Kind: spec.Kind, Spec: spec}
	var err error
	switch spec.Kind {
	case KindRun:
		res.Run, err = executeRun(ctx, r, spec, onTotal)
	case KindSweepEnv:
		res.EnvSweep, err = executeEnvSweep(ctx, r, spec, ck, onTotal)
	case KindSweepLink:
		res.LinkSweep, err = executeLinkSweep(ctx, r, spec, ck, onTotal)
	case KindSweepPad, KindSweepBase:
		res.ChannelSweep, err = executeChannelSweep(ctx, r, spec, ck, onTotal)
	case KindSweepTenant:
		res.TenantSweep, err = executeTenantSweep(ctx, r, spec, ck, onTotal)
	case KindRandomize:
		res.Randomize, err = executeRandomize(ctx, r, spec, ck, onTotal)
	case KindExperiment:
		res.Experiment, err = executeExperiment(ctx, r, spec, ck)
	default:
		return nil, fmt.Errorf("server: unknown job kind %q", spec.Kind)
	}
	if err != nil {
		return nil, err
	}
	return res, nil
}

// BaseSetup builds the setup a canonical spec starts from and resolves its
// benchmark. Exported for the cluster package, whose shard planner and
// shard executor must derive exactly the setups the single-node path
// measures.
func BaseSetup(spec JobSpec) (core.Setup, *bench.Benchmark, error) {
	b, ok := bench.ByName(spec.Bench)
	if !ok {
		return core.Setup{}, nil, fmt.Errorf("server: unknown benchmark %q", spec.Bench)
	}
	cfg, err := spec.compilerConfig()
	if err != nil {
		return core.Setup{}, nil, err
	}
	setup := core.DefaultSetup(spec.Machine)
	setup.Compiler = cfg
	// The co-run parameters ride on the setup. For kinds that vary the
	// co-runner (sweep-tenant, randomize with co_random) CoBench is empty
	// here: the setup carries the fixed level and quantum while the sweep
	// or the draw fills in each point's identity.
	setup.CoRunner = core.CoRunner{Bench: spec.CoBench, Level: spec.CoLevel, Quantum: spec.Quantum}
	return setup, b, nil
}

func executeRun(ctx context.Context, r *core.Runner, spec JobSpec, onTotal func(int)) (*RunResult, error) {
	setup, b, err := BaseSetup(spec)
	if err != nil {
		return nil, err
	}
	setup.EnvBytes = spec.EnvBytes
	onTotal(1)
	m, err := r.Measure(ctx, b, setup)
	if err != nil {
		return nil, err
	}
	return &RunResult{
		Benchmark: b.Name,
		Size:      spec.Size,
		Setup:     setup.String(),
		Cycles:    m.Cycles,
		Checksum:  m.Checksum,
		Counters:  m.Counters,
	}, nil
}

func executeEnvSweep(ctx context.Context, r *core.Runner, spec JobSpec, ck core.Checkpoint, onTotal func(int)) (*EnvSweepResult, error) {
	setup, b, err := BaseSetup(spec)
	if err != nil {
		return nil, err
	}
	sizes := core.DefaultEnvSizes(spec.Step)
	onTotal(len(sizes))
	var points []core.EnvPoint
	var adaptive *core.AdaptiveSweepStats
	if spec.Adaptive {
		var stats core.AdaptiveSweepStats
		points, stats, err = core.EnvSweepAdaptive(ctx, r, b, setup, sizes, ck)
		adaptive = &stats
	} else {
		points, err = core.EnvSweepCheckpointed(ctx, r, b, setup, sizes, ck)
	}
	if err != nil {
		return nil, err
	}
	speedups := make([]float64, len(points))
	for i, p := range points {
		speedups[i] = p.Speedup
	}
	return &EnvSweepResult{
		Benchmark: b.Name,
		Machine:   spec.Machine,
		Points:    points,
		Adaptive:  adaptive,
		Report:    core.NewBiasReport(b.Name, spec.Machine, "environment size", speedups),
	}, nil
}

func executeChannelSweep(ctx context.Context, r *core.Runner, spec JobSpec, ck core.Checkpoint, onTotal func(int)) (*ChannelSweepResult, error) {
	setup, b, err := BaseSetup(spec)
	if err != nil {
		return nil, err
	}
	channel, factor := "pad", "text padding"
	values := core.DefaultPadSizes()
	sweep, adaptiveSweep := core.PadSweepCheckpointed, core.PadSweepAdaptive
	if spec.Kind == KindSweepBase {
		channel, factor = "base", "image base"
		values = core.DefaultTextBases()
		sweep, adaptiveSweep = core.BaseSweepCheckpointed, core.BaseSweepAdaptive
	}
	onTotal(len(values))
	var points []core.ChannelPoint
	var adaptive *core.AdaptiveSweepStats
	if spec.Adaptive {
		var stats core.AdaptiveSweepStats
		points, stats, err = adaptiveSweep(ctx, r, b, setup, values, ck)
		adaptive = &stats
	} else {
		points, err = sweep(ctx, r, b, setup, values, ck)
	}
	if err != nil {
		return nil, err
	}
	speedups := make([]float64, len(points))
	for i, p := range points {
		speedups[i] = p.Speedup
	}
	return &ChannelSweepResult{
		Benchmark: b.Name,
		Machine:   spec.Machine,
		Channel:   channel,
		Points:    points,
		Adaptive:  adaptive,
		Report:    core.NewBiasReport(b.Name, spec.Machine, factor, speedups),
	}, nil
}

func executeLinkSweep(ctx context.Context, r *core.Runner, spec JobSpec, ck core.Checkpoint, onTotal func(int)) (*LinkSweepResult, error) {
	setup, b, err := BaseSetup(spec)
	if err != nil {
		return nil, err
	}
	onTotal(spec.Orders + 2) // default + alphabetical + random orders
	points, err := core.LinkSweepCheckpointed(ctx, r, b, setup, spec.Orders, spec.Seed, ck)
	if err != nil {
		return nil, err
	}
	speedups := make([]float64, len(points))
	for i, p := range points {
		speedups[i] = p.Speedup
	}
	return &LinkSweepResult{
		Benchmark: b.Name,
		Machine:   spec.Machine,
		Points:    points,
		Report:    core.NewBiasReport(b.Name, spec.Machine, "link order", speedups),
	}, nil
}

func executeTenantSweep(ctx context.Context, r *core.Runner, spec JobSpec, ck core.Checkpoint, onTotal func(int)) (*TenantSweepResult, error) {
	setup, b, err := BaseSetup(spec)
	if err != nil {
		return nil, err
	}
	ch, _ := channels.ByName("tenant")
	corunners := core.DefaultCoRunners()
	onTotal(len(corunners))
	points, err := core.TenantSweepCheckpointed(ctx, r, b, setup, corunners, ck)
	if err != nil {
		return nil, err
	}
	speedups := make([]float64, len(points))
	for i, p := range points {
		speedups[i] = p.Speedup
	}
	return &TenantSweepResult{
		Benchmark: b.Name,
		Machine:   spec.Machine,
		CoLevel:   spec.CoLevel,
		Quantum:   spec.Quantum,
		Points:    points,
		Report:    core.NewBiasReport(b.Name, spec.Machine, ch.Factor, speedups),
	}, nil
}

func executeRandomize(ctx context.Context, r *core.Runner, spec JobSpec, ck core.Checkpoint, onTotal func(int)) (*RandomizeResult, error) {
	setup, b, err := BaseSetup(spec)
	if err != nil {
		return nil, err
	}
	onTotal(spec.N)
	var est *core.RobustEstimate
	switch {
	case spec.Tol > 0:
		// Adaptive sampling's setup count depends on interim intervals, so
		// it is not checkpointed: a resumed run must re-decide when to stop.
		est, err = core.EstimateSpeedupAdaptive(ctx, r, b, setup, spec.Tol, 4, spec.N, spec.Seed)
	case spec.CoRandom:
		est, err = core.EstimateSpeedupTenantCheckpointed(ctx, r, b, setup, spec.N, spec.Seed, ck)
	default:
		est, err = core.EstimateSpeedupCheckpointed(ctx, r, b, setup, spec.N, spec.Seed, ck)
	}
	if err != nil {
		return nil, err
	}
	return &RandomizeResult{Estimate: *est, Conclusive: est.Conclusive()}, nil
}

func executeExperiment(ctx context.Context, r *core.Runner, spec JobSpec, ck core.Checkpoint) (*ExperimentResult, error) {
	size, err := parseSize(spec.Size)
	if err != nil {
		return nil, err
	}
	lab := experiments.NewLabCtx(ctx, experiments.Options{Size: size}, ck)
	// Swap in the shared Runner so experiment jobs reuse the daemon's
	// compile/link caches and feed its measurement counters.
	lab.Runner = r
	out, err := lab.ByID(spec.Experiment)
	if err != nil {
		return nil, err
	}
	return &ExperimentResult{ID: out.ID, Title: out.Title, Text: out.Text, CSV: out.CSV}, nil
}
