package server

import (
	"fmt"
	"strings"

	"biaslab/internal/report"
)

// The renderers below are the single text/CSV code path for results:
// cmd/biaslab calls them for local runs, the daemon serves them on
// GET /v1/results/{key}?format=text|csv, and the client mode renders
// fetched results through them — which is what makes a remote result
// byte-identical to the same command run locally.

// RenderText renders a result exactly as the equivalent biaslab subcommand
// prints it, trailing newline included.
func RenderText(res *Result) (string, error) {
	switch res.Kind {
	case KindRun:
		r := res.Run
		if r == nil {
			return "", fmt.Errorf("server: %s result missing payload", res.Kind)
		}
		var sb strings.Builder
		fmt.Fprintf(&sb, "%s under %s (%s workload)\n\n", r.Benchmark, r.Setup, r.Size)
		sb.WriteString(r.Counters.String())
		fmt.Fprintf(&sb, "checksum             %12d\n", r.Checksum)
		return sb.String(), nil
	case KindSweepEnv:
		r := res.EnvSweep
		if r == nil {
			return "", fmt.Errorf("server: %s result missing payload", res.Kind)
		}
		return envSweepTable(r).String() + "\n" + r.Report.String() + "\n", nil
	case KindSweepLink:
		r := res.LinkSweep
		if r == nil {
			return "", fmt.Errorf("server: %s result missing payload", res.Kind)
		}
		return linkSweepTable(r).String() + "\n" + r.Report.String() + "\n", nil
	case KindSweepPad, KindSweepBase:
		r := res.ChannelSweep
		if r == nil {
			return "", fmt.Errorf("server: %s result missing payload", res.Kind)
		}
		return channelSweepTable(r).String() + "\n" + r.Report.String() + "\n", nil
	case KindSweepTenant:
		r := res.TenantSweep
		if r == nil {
			return "", fmt.Errorf("server: %s result missing payload", res.Kind)
		}
		return tenantSweepTable(r).String() + "\n" + r.Report.String() + "\n", nil
	case KindRandomize:
		r := res.Randomize
		if r == nil {
			return "", fmt.Errorf("server: %s result missing payload", res.Kind)
		}
		verdict := "INCONCLUSIVE: the interval contains 1.0 — a single-setup paper would still have printed a number"
		if r.Conclusive {
			verdict = "the randomized experiment supports a direction: the interval excludes 1.0"
		}
		return r.Estimate.String() + "\n" +
			r.Estimate.EffectString() + "\n" +
			r.Estimate.Test.String() + "\n" +
			verdict + "\n", nil
	case KindExperiment:
		r := res.Experiment
		if r == nil {
			return "", fmt.Errorf("server: %s result missing payload", res.Kind)
		}
		return r.Text + "\n", nil
	}
	return "", fmt.Errorf("server: cannot render result of kind %q", res.Kind)
}

// RenderCSV renders a result's CSV form.
func RenderCSV(res *Result) (string, error) {
	switch res.Kind {
	case KindRun:
		r := res.Run
		if r == nil {
			return "", fmt.Errorf("server: %s result missing payload", res.Kind)
		}
		var sb strings.Builder
		sb.WriteString("counter,value\n")
		fmt.Fprintf(&sb, "cycles,%d\n", r.Cycles)
		fmt.Fprintf(&sb, "instructions,%d\n", r.Counters.Instructions)
		fmt.Fprintf(&sb, "checksum,%d\n", r.Checksum)
		return sb.String(), nil
	case KindSweepEnv:
		r := res.EnvSweep
		if r == nil {
			return "", fmt.Errorf("server: %s result missing payload", res.Kind)
		}
		return envSweepTable(r).CSV(), nil
	case KindSweepLink:
		r := res.LinkSweep
		if r == nil {
			return "", fmt.Errorf("server: %s result missing payload", res.Kind)
		}
		return linkSweepTable(r).CSV(), nil
	case KindSweepPad, KindSweepBase:
		r := res.ChannelSweep
		if r == nil {
			return "", fmt.Errorf("server: %s result missing payload", res.Kind)
		}
		return channelSweepTable(r).CSV(), nil
	case KindSweepTenant:
		r := res.TenantSweep
		if r == nil {
			return "", fmt.Errorf("server: %s result missing payload", res.Kind)
		}
		return tenantSweepTable(r).CSV(), nil
	case KindRandomize:
		r := res.Randomize
		if r == nil {
			return "", fmt.Errorf("server: %s result missing payload", res.Kind)
		}
		var sb strings.Builder
		sb.WriteString("setup,speedup\n")
		for i, sp := range r.Estimate.Speedups {
			fmt.Fprintf(&sb, "%d,%g\n", i, sp)
		}
		// Effect-size footer: the same hierarchical interval and
		// Speedup-Test verdict the text renderer prints, as summary rows.
		center, half := r.Estimate.EffectPct()
		fmt.Fprintf(&sb, "effect_pct,%g\n", center)
		fmt.Fprintf(&sb, "effect_pct_half_width_95,%g\n", half)
		fmt.Fprintf(&sb, "hier_ci_lo,%g\n", r.Estimate.HierCI.Lo)
		fmt.Fprintf(&sb, "hier_ci_hi,%g\n", r.Estimate.HierCI.Hi)
		fmt.Fprintf(&sb, "speedup_test_verdict,%s\n", r.Estimate.Test.Verdict)
		fmt.Fprintf(&sb, "speedup_test_p,%g\n", r.Estimate.Test.P)
		return sb.String(), nil
	case KindExperiment:
		r := res.Experiment
		if r == nil {
			return "", fmt.Errorf("server: %s result missing payload", res.Kind)
		}
		return fmt.Sprintf("# %s: %s\n%s", r.ID, r.Title, r.CSV), nil
	}
	return "", fmt.Errorf("server: cannot render result of kind %q", res.Kind)
}

// envSweepTable builds the sweep-env table exactly as cmd/biaslab always
// rendered it.
func envSweepTable(r *EnvSweepResult) *report.Table {
	t := &report.Table{
		Title:   fmt.Sprintf("O3-over-O2 speedup of %s vs environment size (%s)", r.Benchmark, r.Machine),
		Headers: []string{"env bytes", "cycles O2", "cycles O3", "speedup"},
	}
	for _, p := range r.Points {
		t.AddRow(p.EnvBytes, p.CyclesBase, p.CyclesOpt, p.Speedup)
	}
	return t
}

// channelSweepTable builds the sweep-pad / sweep-base table.
func channelSweepTable(r *ChannelSweepResult) *report.Table {
	header := "pad bytes"
	if r.Channel == "base" {
		header = "text base"
	}
	t := &report.Table{
		Title:   fmt.Sprintf("O3-over-O2 speedup of %s vs %s (%s)", r.Benchmark, header, r.Machine),
		Headers: []string{header, "cycles O2", "cycles O3", "speedup"},
	}
	for _, p := range r.Points {
		t.AddRow(p.Value, p.CyclesBase, p.CyclesOpt, p.Speedup)
	}
	return t
}

// tenantSweepTable builds the sweep-tenant table.
func tenantSweepTable(r *TenantSweepResult) *report.Table {
	t := &report.Table{
		Title: fmt.Sprintf("O3-over-O2 speedup of %s vs co-runner at %s, quantum %d (%s)",
			r.Benchmark, r.CoLevel, r.Quantum, r.Machine),
		Headers: []string{"co-runner", "cycles O2", "cycles O3", "speedup"},
	}
	for _, p := range r.Points {
		t.AddRow(p.CoRunner, p.CyclesBase, p.CyclesOpt, p.Speedup)
	}
	return t
}

// linkSweepTable builds the sweep-link table.
func linkSweepTable(r *LinkSweepResult) *report.Table {
	t := &report.Table{
		Title:   fmt.Sprintf("O3-over-O2 speedup of %s vs link order (%s)", r.Benchmark, r.Machine),
		Headers: []string{"order", "cycles O2", "cycles O3", "speedup"},
	}
	for _, p := range r.Points {
		t.AddRow(p.Label, p.CyclesBase, p.CyclesOpt, p.Speedup)
	}
	return t
}
