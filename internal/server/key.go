package server

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
)

// keyVersion is hashed into every content key. Bump it whenever the
// canonical spec encoding or the measurement semantics behind it change,
// so stale stored results from an incompatible daemon can never be served
// for new requests.
const keyVersion = "biaslabd/job/v1\n"

// Key returns the content-address of a job: the hex SHA-256 of the
// canonicalized spec's JSON encoding under the key version. Because
// Canonicalize applies defaults and zeroes unused fields, every request
// for the same work — however its optional fields were spelled — hashes to
// the same key, which is what makes in-flight dedup and the result store
// line up with measurement identity.
func Key(spec JobSpec) (string, error) {
	c, err := spec.Canonicalize()
	if err != nil {
		return "", err
	}
	return canonicalKey(c), nil
}

// canonicalKey hashes an already-canonical spec.
func canonicalKey(c JobSpec) string {
	b, err := json.Marshal(c)
	if err != nil {
		// A JobSpec contains only plain scalar fields; Marshal cannot fail.
		panic("server: encoding canonical spec: " + err.Error())
	}
	h := sha256.New()
	h.Write([]byte(keyVersion))
	h.Write(b)
	return hex.EncodeToString(h.Sum(nil))
}
