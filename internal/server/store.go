package server

import (
	"encoding/json"
	"fmt"

	"biaslab/internal/journal"
)

// Store is the persistent content-addressed result store: content key →
// canonical result encoding. It reuses internal/journal's fsynced JSONL
// discipline, so a stored result survives a kill at any instant and the
// bytes read back are exactly the bytes stored — cached results are
// byte-identical to fresh ones across restarts. One Store (and one daemon)
// owns a store file at a time; the journal does not support multi-process
// sharing.
type Store struct {
	j *journal.Journal
}

// OpenStore opens (creating if absent) the store at path and loads every
// intact record, tolerating the torn final line of a mid-write kill.
func OpenStore(path string) (*Store, error) {
	j, err := journal.Open(path)
	if err != nil {
		return nil, fmt.Errorf("server: opening result store: %w", err)
	}
	return &Store{j: j}, nil
}

// Get returns the stored canonical result bytes for key.
func (s *Store) Get(key string) ([]byte, bool, error) {
	var raw json.RawMessage
	ok, err := s.j.Lookup(key, &raw)
	if err != nil || !ok {
		return nil, false, err
	}
	return raw, true, nil
}

// Put durably stores the canonical result bytes under key before
// returning. raw must be valid JSON (it always is: every caller encodes
// through EncodeResult).
func (s *Store) Put(key string, raw []byte) error {
	return s.j.Record(key, json.RawMessage(raw))
}

// Len returns the number of stored results.
func (s *Store) Len() int { return s.j.Len() }

// Close syncs and closes the store.
func (s *Store) Close() error { return s.j.Close() }
