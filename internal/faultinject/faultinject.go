// Package faultinject is a deterministic fault-injection harness for the
// experiment engine. The runner calls Check at the boundary of every
// measurement stage ("compile", "link", "load", "measure"); a test armed
// with Arm makes selected calls fail, panic, or fail transiently, proving
// that every error path propagates as a typed error with the failing setup
// attached and that retry/resume machinery behaves.
//
// The package has two bodies selected by the `faultinject` build tag.
// Without the tag (the production build) every hook is an inlinable no-op
// and Enabled is false, so shipping the hooks costs nothing. With
// `go test -tags faultinject` the registry below is live.
//
// Injection is deterministic: a Fault fires based only on the per-site
// arrival count (After/Times) or on a seeded hash of the site key and
// arrival index (Rate/Seed) — never on wall-clock time or global RNG — so
// a failing schedule can be replayed exactly.
package faultinject

import "fmt"

// Mode selects what an armed fault does at the chosen call.
type Mode uint8

const (
	// ModeError makes Check return a permanent *InjectedError.
	ModeError Mode = iota
	// ModeTransient makes Check return an *InjectedError that marks itself
	// transient, exercising retry-once paths. A transient fault defaults to
	// firing exactly once per site.
	ModeTransient
	// ModePanic makes Check panic with a *InjectedError, exercising
	// panic-isolation boundaries.
	ModePanic
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case ModeError:
		return "error"
	case ModeTransient:
		return "transient"
	case ModePanic:
		return "panic"
	}
	return fmt.Sprintf("mode(%d)", uint8(m))
}

// Fault describes one armed injection.
type Fault struct {
	// Stage is the stage name the fault applies to ("compile", "link",
	// "load", "measure"); "" applies to every stage.
	Stage string
	// Match selects sites whose key contains this substring; "" matches
	// every site at the stage.
	Match string
	// Mode is what happens when the fault fires.
	Mode Mode
	// After skips this many matching arrivals (per fault, across all
	// sites) before the fault may fire.
	After int
	// Times bounds how many firings the fault gets; 0 means unlimited for
	// ModeError/ModePanic and exactly once for ModeTransient.
	Times int
	// Rate, when non-zero, fires the fault probabilistically: arrival i at
	// key k fires iff hash(Seed, stage, k, i) mod 1e6 < Rate×1e6. The
	// decision depends only on Seed and the arrival sequence, so it is
	// reproducible run to run.
	Rate float64
	// Seed feeds the Rate hash.
	Seed uint64
}

// InjectedError is the typed error every fired fault produces.
type InjectedError struct {
	Stage     string
	Key       string
	Transient bool
}

func (e *InjectedError) Error() string {
	kind := "permanent"
	if e.Transient {
		kind = "transient"
	}
	return fmt.Sprintf("faultinject: %s fault injected at %s stage (site %q)", kind, e.Stage, e.Key)
}

// IsTransient marks transient injections for retry-once logic.
func (e *InjectedError) IsTransient() bool { return e.Transient }
