//go:build faultinject

package faultinject

import (
	"errors"
	"testing"
)

func TestArmFiltersByStageAndMatch(t *testing.T) {
	defer Reset()
	Reset()
	Arm(Fault{Stage: "link", Match: "bzip2", Mode: ModeError})

	if err := Check("compile", "bzip2/gcc -O2"); err != nil {
		t.Errorf("wrong stage fired: %v", err)
	}
	if err := Check("link", "hmmer/core2"); err != nil {
		t.Errorf("non-matching key fired: %v", err)
	}
	err := Check("link", "bzip2/core2")
	if err == nil {
		t.Fatal("matching site did not fire")
	}
	var inj *InjectedError
	if !errors.As(err, &inj) || inj.Stage != "link" || inj.Key != "bzip2/core2" || inj.Transient {
		t.Errorf("injected error = %+v", inj)
	}
	if Fired() != 1 {
		t.Errorf("Fired = %d, want 1", Fired())
	}
}

func TestAfterAndTimes(t *testing.T) {
	defer Reset()
	Reset()
	Arm(Fault{Stage: "measure", Mode: ModeError, After: 2, Times: 2})

	var fired int
	for i := 0; i < 6; i++ {
		if Check("measure", "site") != nil {
			fired++
		}
	}
	// Arrivals 0,1 skipped by After; 2,3 fire; 4,5 exhausted by Times.
	if fired != 2 || Fired() != 2 {
		t.Errorf("fired %d times (counter %d), want 2", fired, Fired())
	}
}

func TestTransientDefaultsToOnce(t *testing.T) {
	defer Reset()
	Reset()
	Arm(Fault{Stage: "load", Mode: ModeTransient})

	err := Check("load", "site")
	if err == nil {
		t.Fatal("transient fault did not fire")
	}
	var inj *InjectedError
	if !errors.As(err, &inj) || !inj.IsTransient() {
		t.Errorf("transient fault produced %v", err)
	}
	if Check("load", "site") != nil {
		t.Error("transient fault fired twice without Times")
	}
}

func TestPanicMode(t *testing.T) {
	defer Reset()
	Reset()
	Arm(Fault{Stage: "measure", Mode: ModePanic})

	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("ModePanic did not panic")
		}
		if _, ok := r.(*InjectedError); !ok {
			t.Errorf("panic value %T, want *InjectedError", r)
		}
	}()
	Check("measure", "site")
}

func TestResetDisarms(t *testing.T) {
	defer Reset()
	Reset()
	Arm(Fault{Mode: ModeError})
	if Check("compile", "x") == nil {
		t.Fatal("blanket fault did not fire")
	}
	Reset()
	if Check("compile", "x") != nil {
		t.Error("fault survived Reset")
	}
	if Fired() != 0 {
		t.Errorf("Fired after Reset = %d, want 0", Fired())
	}
}

// TestRateDeterministic: the probabilistic mode depends only on the seed
// and the arrival sequence, so two identical runs fire identically.
func TestRateDeterministic(t *testing.T) {
	defer Reset()
	run := func(seed uint64) []bool {
		Reset()
		Arm(Fault{Stage: "measure", Mode: ModeError, Rate: 0.3, Seed: seed, Times: 1 << 30})
		pattern := make([]bool, 200)
		for i := range pattern {
			pattern[i] = Check("measure", "site") != nil
		}
		return pattern
	}
	a, b := run(7), run(7)
	hits := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at arrival %d", i)
		}
		if a[i] {
			hits++
		}
	}
	if hits == 0 || hits == len(a) {
		t.Errorf("rate 0.3 fired %d/%d times; expected a mix", hits, len(a))
	}
}
