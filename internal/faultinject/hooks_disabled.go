//go:build !faultinject

package faultinject

// Enabled reports whether the harness is compiled in.
const Enabled = false

// Check is a no-op in production builds; the compiler inlines it away at
// every hook site.
func Check(stage, key string) error { return nil }

// Arm is a no-op in production builds.
func Arm(Fault) {}

// Reset is a no-op in production builds.
func Reset() {}

// Fired always reports zero in production builds.
func Fired() int { return 0 }
