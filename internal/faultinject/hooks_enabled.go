//go:build faultinject

package faultinject

import (
	"hash/fnv"
	"strconv"
	"strings"
	"sync"
)

// Enabled reports whether the harness is compiled in.
const Enabled = true

type armed struct {
	Fault
	arrivals int // matching Check calls seen
	fired    int // times this fault has fired
}

var (
	mu     sync.Mutex
	faults []*armed
	nFired int
)

// Arm registers a fault. Faults are consulted in arming order; the first
// one that decides to fire wins the call.
func Arm(f Fault) {
	mu.Lock()
	defer mu.Unlock()
	faults = append(faults, &armed{Fault: f})
}

// Reset disarms every fault and clears counters.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	faults = nil
	nFired = 0
}

// Fired returns how many injections have fired since the last Reset.
func Fired() int {
	mu.Lock()
	defer mu.Unlock()
	return nFired
}

// Check consults the armed faults for the given stage and site key. It
// returns an *InjectedError (or panics with one, under ModePanic) when a
// fault fires, and nil otherwise.
func Check(stage, key string) error {
	mu.Lock()
	var hit *armed
	for _, f := range faults {
		if f.Stage != "" && f.Stage != stage {
			continue
		}
		if f.Match != "" && !strings.Contains(key, f.Match) {
			continue
		}
		arrival := f.arrivals
		f.arrivals++
		if arrival < f.After {
			continue
		}
		limit := f.Times
		if limit == 0 && f.Mode == ModeTransient {
			limit = 1
		}
		if limit > 0 && f.fired >= limit {
			continue
		}
		if f.Rate > 0 && !rateHit(f.Seed, stage, key, arrival, f.Rate) {
			continue
		}
		f.fired++
		nFired++
		hit = f
		break
	}
	mu.Unlock()
	if hit == nil {
		return nil
	}
	err := &InjectedError{Stage: stage, Key: key, Transient: hit.Mode == ModeTransient}
	if hit.Mode == ModePanic {
		panic(err)
	}
	return err
}

// rateHit makes the seeded probabilistic decision for arrival i at a site.
func rateHit(seed uint64, stage, key string, arrival int, rate float64) bool {
	h := fnv.New64a()
	h.Write([]byte(strconv.FormatUint(seed, 16)))
	h.Write([]byte{0})
	h.Write([]byte(stage))
	h.Write([]byte{0})
	h.Write([]byte(key))
	h.Write([]byte{0})
	h.Write([]byte(strconv.Itoa(arrival)))
	return float64(h.Sum64()%1_000_000) < rate*1_000_000
}
