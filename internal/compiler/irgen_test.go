package compiler

import (
	"testing"

	"biaslab/internal/ir"
)

// checkVal runs src and asserts the sequence of checksum values.
func checkVal(t *testing.T, src string, vals ...uint64) {
	t.Helper()
	p := lowerSrc(t, src)
	want := uint64(0)
	for _, v := range vals {
		want = ir.MixChecksum(want, v)
	}
	if got := runIR(t, p); got != want {
		t.Errorf("checksum = %d, want %d\nsource:\n%s", got, want, src)
	}
	// The same values must survive full optimization.
	Optimize(p, Config{Level: O3, Personality: ICC})
	if got := runIR(t, p); got != want {
		t.Errorf("optimized checksum = %d, want %d", got, want)
	}
}

func u(v int64) uint64 { return uint64(v) }

func TestLowerArithmetic(t *testing.T) {
	checkVal(t, `void main() { checksum(7 + 3 * 2 - 8 / 4); }`, u(11))
	checkVal(t, `void main() { checksum(17 % 5); }`, u(2))
	checkVal(t, `void main() { checksum(1 << 10 | 3); }`, u(1027))
	checkVal(t, `void main() { checksum(255 & 15 ^ 1); }`, u(14))
	checkVal(t, `void main() { checksum(-5 + 2); }`, u(-3))
	checkVal(t, `void main() { checksum(~0); }`, u(-1))
	checkVal(t, `void main() { int x = -16; checksum(x >> 2); }`, u(4611686018427387900))
}

func TestLowerComparisons(t *testing.T) {
	checkVal(t, `void main() { checksum((3 < 5) + (5 <= 5) + (7 > 2) + (2 >= 3) + (4 == 4) + (4 != 4)); }`, u(4))
}

func TestLowerShortCircuit(t *testing.T) {
	// Side effects must not occur when short-circuited.
	src := `
int calls;
int bump() { calls++; return 1; }
void main() {
	int a = 0 != 0 && bump();
	int b = 1 == 1 || bump();
	checksum(calls);
	checksum(a);
	checksum(b);
}
`
	checkVal(t, src, u(0), u(0), u(1))
}

func TestLowerByteSemantics(t *testing.T) {
	// Byte stores truncate; loads zero-extend.
	checkVal(t, `
byte b[4];
void main() {
	b[0] = 300;
	checksum(b[0]);
	b[1] = 255;
	b[1] += 1;
	checksum(b[1]);
}
`, u(300%256), u(0))
}

func TestLowerPointerScaling(t *testing.T) {
	checkVal(t, `
int a[10];
void main() {
	for (int i = 0; i < 10; i++) { a[i] = i * 100; }
	int* p = a;
	p += 3;
	checksum(*p);
	p++;
	checksum(*p);
	p -= 2;
	checksum(*p);
	int* q = &a[9];
	checksum(q - p);
}
`, u(300), u(400), u(200), u(7))
}

func TestLowerGlobalInit(t *testing.T) {
	checkVal(t, `
int g = 40 + 2;
byte flag = 1;
void main() {
	checksum(g);
	checksum(flag);
}
`, u(42), u(1))
}

func TestLowerAddressTakenParam(t *testing.T) {
	checkVal(t, `
void setit(int* p, int v) { *p = v; }
int readback(int x) {
	setit(&x, x * 2);
	return x;
}
void main() { checksum(readback(21)); }
`, u(42))
}

func TestLowerNestedLoopsAndBreak(t *testing.T) {
	checkVal(t, `
void main() {
	int total = 0;
	for (int i = 0; i < 10; i++) {
		for (int j = 0; j < 10; j++) {
			if (j == 5) { break; }
			if (i == 7) { break; }
			total += 1;
		}
		if (i == 8) { break; }
	}
	checksum(total);
}
`, u(40))
}

func TestLowerWhileWithComplexCondition(t *testing.T) {
	checkVal(t, `
void main() {
	int i = 0;
	int j = 20;
	int steps = 0;
	while (i < 10 && j > 12) {
		i++;
		j -= 1;
		steps++;
	}
	checksum(steps);
	checksum(i);
	checksum(j);
}
`, u(8), u(8), u(12))
}

func TestLowerRecursionDepth(t *testing.T) {
	checkVal(t, `
int sumto(int n) {
	if (n <= 0) { return 0; }
	return n + sumto(n - 1);
}
void main() { checksum(sumto(100)); }
`, u(5050))
}

func TestLowerSixArguments(t *testing.T) {
	checkVal(t, `
int six(int a, int b, int c, int d, int e, int f) {
	return a + b * 2 + c * 3 + d * 4 + e * 5 + f * 6;
}
void main() { checksum(six(1, 2, 3, 4, 5, 6)); }
`, u(1+4+9+16+25+36))
}

func TestLowerFallOffEndReturnsZero(t *testing.T) {
	checkVal(t, `
int maybe(int x) {
	if (x > 0) { return x; }
}
void main() { checksum(maybe(5)); checksum(maybe(-5)); }
`, u(5), u(0))
}
