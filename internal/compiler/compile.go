package compiler

import (
	"biaslab/internal/ir"
	"biaslab/internal/obj"
)

// Compile runs the whole toolchain front half: parse and check the sources,
// lower to IR, optimize per cfg, and generate one relocatable object per
// translation unit. It returns the objects in source order along with the
// optimized IR program (useful for differential testing against the IR
// interpreter).
func Compile(sources []Source, cfg Config) ([]*obj.Object, *ir.Program, error) {
	unit, err := Frontend(sources)
	if err != nil {
		return nil, nil, err
	}
	prog, err := Lower(unit)
	if err != nil {
		return nil, nil, err
	}
	Optimize(prog, cfg)
	if err := prog.Verify(); err != nil {
		return nil, nil, err
	}
	objs := make([]*obj.Object, len(prog.Modules))
	for i, m := range prog.Modules {
		o, err := CodeGen(m, cfg)
		if err != nil {
			return nil, nil, err
		}
		objs[i] = o
	}
	return objs, prog, nil
}
