package compiler

import (
	"strings"
	"testing"

	"biaslab/internal/ir"
	"biaslab/internal/obj"
)

// runIR interprets a program and returns its checksum.
func runIR(t *testing.T, p *ir.Program) uint64 {
	t.Helper()
	it, err := ir.NewInterp(p)
	if err != nil {
		t.Fatalf("interp setup: %v", err)
	}
	if err := it.Run(); err != nil {
		t.Fatalf("interp run: %v", err)
	}
	return it.Checksum
}

// lowerSrc parses, checks and lowers sources without optimization.
func lowerSrc(t *testing.T, srcs ...string) *ir.Program {
	t.Helper()
	sources := make([]Source, len(srcs))
	for i, s := range srcs {
		sources[i] = Source{Name: "u" + string(rune('0'+i)) + ".cm", Text: s}
	}
	unit, err := Frontend(sources)
	if err != nil {
		t.Fatalf("frontend: %v", err)
	}
	p, err := Lower(unit)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	return p
}

const fibSrc = `
int fib(int n) {
	if (n < 2) { return n; }
	return fib(n - 1) + fib(n - 2);
}
void main() {
	checksum(fib(12));
}
`

const loopSrc = `
int data[64];
void main() {
	for (int i = 0; i < 64; i++) {
		data[i] = i * 3 + 1;
	}
	int sum = 0;
	int i = 0;
	while (i < 64) {
		sum += data[i];
		i++;
	}
	checksum(sum);
}
`

const ptrSrc = `
int buf[16];
int sum(int* p, int n) {
	int s = 0;
	for (int i = 0; i < n; i++) {
		s += p[i];
	}
	return s;
}
void main() {
	int* q = &buf[4];
	for (int i = 0; i < 8; i++) {
		q[i] = i * i;
	}
	checksum(sum(q, 8));
	checksum(q - buf);
	byte b[8];
	b[0] = 250;
	b[1] = 10;
	b[0] += b[1];
	checksum(b[0]);
}
`

const callSrc = `
int square(int x) { return x * x; }
int cube(int x) { return square(x) * x; }
int helper(int a, int b, int c) {
	if (a > b && b > c) { return a; }
	if (a < b || c == 0) { return b; }
	return c;
}
void main() {
	checksum(cube(5));
	checksum(helper(3, 2, 1));
	checksum(helper(1, 2, 0));
	checksum(helper(9, 2, 5));
	int x = 100;
	x -= 30;
	x *= 2;
	checksum(x);
	checksum(-x + ~x + !x);
}
`

var semanticsPrograms = map[string]string{
	"fib":  fibSrc,
	"loop": loopSrc,
	"ptr":  ptrSrc,
	"call": callSrc,
}

// TestOptimizePreservesSemantics runs every program through every
// optimization level and both personalities and checks the IR checksum is
// unchanged — the compiler's core correctness contract.
func TestOptimizePreservesSemantics(t *testing.T) {
	for name, src := range semanticsPrograms {
		base := runIR(t, lowerSrc(t, src))
		for _, lvl := range []Level{O0, O1, O2, O3} {
			for _, pers := range []Personality{GCC, ICC} {
				p := lowerSrc(t, src)
				Optimize(p, Config{Level: lvl, Personality: pers})
				if err := p.Verify(); err != nil {
					t.Fatalf("%s %v/%v: invalid IR after optimize: %v", name, lvl, pers, err)
				}
				got := runIR(t, p)
				if got != base {
					t.Errorf("%s %v/%v: checksum %d, want %d", name, lvl, pers, got, base)
				}
			}
		}
	}
}

func TestOptimizeReducesSteps(t *testing.T) {
	// O2 should execute strictly fewer IR steps than O0 for loop code.
	count := func(lvl Level) int64 {
		p := lowerSrc(t, loopSrc)
		Optimize(p, Config{Level: lvl})
		it, err := ir.NewInterp(p)
		if err != nil {
			t.Fatal(err)
		}
		if err := it.Run(); err != nil {
			t.Fatal(err)
		}
		return it.Steps()
	}
	o0, o2 := count(O0), count(O2)
	if o2 >= o0 {
		t.Errorf("O2 steps (%d) not fewer than O0 steps (%d)", o2, o0)
	}
}

func TestInliningFires(t *testing.T) {
	p := lowerSrc(t, callSrc)
	Optimize(p, Config{Level: O3, Personality: ICC})
	// cube should no longer call square at O3/icc.
	cube := p.FindFunc("cube")
	for _, b := range cube.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpCall && in.Sym == "square" {
				t.Error("square was not inlined into cube at O3/icc")
			}
		}
	}
	// Recursive fib must never be inlined into itself infinitely; just
	// check the program still verifies and runs.
	p2 := lowerSrc(t, fibSrc)
	Optimize(p2, Config{Level: O3, Personality: ICC})
	if err := p2.Verify(); err != nil {
		t.Fatalf("recursive program invalid after inlining: %v", err)
	}
}

func TestUnrollingGrowsCode(t *testing.T) {
	size := func(cfg Config) int {
		p := lowerSrc(t, loopSrc)
		Optimize(p, cfg)
		n := 0
		for _, f := range p.Modules[0].Funcs {
			for _, b := range f.Blocks {
				n += len(b.Instrs)
			}
		}
		return n
	}
	o2 := size(Config{Level: O2})
	o3icc := size(Config{Level: O3, Personality: ICC})
	if o3icc <= o2 {
		t.Errorf("O3/icc code (%d IR instrs) not larger than O2 (%d); unrolling did not fire", o3icc, o2)
	}
}

func TestConstantFolding(t *testing.T) {
	p := lowerSrc(t, `void main() { int x = 2 + 3 * 4; checksum(x); }`)
	Optimize(p, Config{Level: O1})
	main := p.FindFunc("main")
	// After folding, no OpAdd/OpMul should remain in main.
	for _, b := range main.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpAdd || in.Op == ir.OpMul {
				t.Errorf("arithmetic op %v survived folding", in.Op)
			}
		}
	}
	if got := runIR(t, p); got != ir.MixChecksum(0, 14) {
		t.Errorf("folded program produced wrong checksum")
	}
}

func TestDCERemovesDeadCode(t *testing.T) {
	p := lowerSrc(t, `void main() { int unused = 5 * 7; checksum(1); }`)
	before := countInstrs(p)
	Optimize(p, Config{Level: O1})
	after := countInstrs(p)
	if after >= before {
		t.Errorf("DCE did not shrink: %d → %d", before, after)
	}
}

func countInstrs(p *ir.Program) int {
	n := 0
	for _, m := range p.Modules {
		for _, f := range m.Funcs {
			for _, b := range f.Blocks {
				n += len(b.Instrs)
			}
		}
	}
	return n
}

func TestCodeGenProducesValidObjects(t *testing.T) {
	for name, src := range semanticsPrograms {
		for _, cfg := range []Config{{Level: O0}, {Level: O2}, {Level: O3, Personality: ICC}} {
			objs, _, err := Compile([]Source{{Name: name + ".cm", Text: src}}, cfg)
			if err != nil {
				t.Fatalf("%s %v: %v", name, cfg, err)
			}
			if len(objs) != 1 {
				t.Fatalf("%s: %d objects", name, len(objs))
			}
			o := objs[0]
			if err := o.Validate(); err != nil {
				t.Errorf("%s %v: %v", name, cfg, err)
			}
			if o.Symbol("main") == nil {
				t.Errorf("%s: no main symbol", name)
			}
			if len(o.Text) == 0 || len(o.Text)%4 != 0 {
				t.Errorf("%s: bad text size %d", name, len(o.Text))
			}
		}
	}
}

func TestCodeGenMultiUnit(t *testing.T) {
	objs, _, err := Compile([]Source{
		{Name: "a.cm", Text: `int shared[8]; void main() { fill(); checksum(shared[5]); }`},
		{Name: "b.cm", Text: `void fill() { for (int i = 0; i < 8; i++) { shared[i] = i + 40; } }`},
	}, Config{Level: O2})
	if err != nil {
		t.Fatal(err)
	}
	if len(objs) != 2 {
		t.Fatalf("objects = %d", len(objs))
	}
	if objs[0].Symbol("main") == nil || objs[1].Symbol("fill") == nil {
		t.Error("symbols missing")
	}
	// a.o references shared (defined in a.o) and fill (in b.o).
	foundCallReloc := false
	for _, r := range objs[0].Relocs {
		if r.Kind == obj.RelocJal26 && r.Sym == "fill" {
			foundCallReloc = true
		}
	}
	if !foundCallReloc {
		t.Error("missing jal relocation for cross-unit call")
	}
}

func TestICCAlignsFunctions(t *testing.T) {
	objs, _, err := Compile([]Source{{Name: "a.cm", Text: callSrc}}, Config{Level: O3, Personality: ICC})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range objs[0].Symbols {
		if s.Kind == obj.SymFunc {
			if s.Align != 16 {
				t.Errorf("function %s align %d, want 16 under icc -O3", s.Name, s.Align)
			}
			if s.Offset%16 != 0 {
				t.Errorf("function %s at offset %d not 16-aligned", s.Name, s.Offset)
			}
		}
	}
	objsGCC, _, err := Compile([]Source{{Name: "a.cm", Text: callSrc}}, Config{Level: O3, Personality: GCC})
	if err != nil {
		t.Fatal(err)
	}
	if len(objsGCC[0].Text) >= len(objs[0].Text) {
		t.Logf("note: gcc text %d >= icc text %d (alignment padding)", len(objsGCC[0].Text), len(objs[0].Text))
	}
}

func TestParseLevelAndPersonality(t *testing.T) {
	if l, err := ParseLevel("-O3"); err != nil || l != O3 {
		t.Error("ParseLevel -O3 failed")
	}
	if l, err := ParseLevel("O0"); err != nil || l != O0 {
		t.Error("ParseLevel O0 failed")
	}
	if _, err := ParseLevel("O9"); err == nil {
		t.Error("ParseLevel O9 should fail")
	}
	if p, err := ParsePersonality("icc"); err != nil || p != ICC {
		t.Error("ParsePersonality icc failed")
	}
	if _, err := ParsePersonality("clang"); err == nil {
		t.Error("ParsePersonality clang should fail")
	}
	if (Config{Level: O2, Personality: GCC}).String() != "gcc -O2" {
		t.Error("Config.String wrong")
	}
}

func TestFrontendErrorsPropagate(t *testing.T) {
	_, _, err := Compile([]Source{{Name: "bad.cm", Text: "void main() { undefined(); }"}}, Config{})
	if err == nil || !strings.Contains(err.Error(), "undefined") {
		t.Errorf("expected frontend error, got %v", err)
	}
}

func TestShortCircuitSemantics(t *testing.T) {
	// Division by zero on the right of && must not execute when the left
	// is false.
	src := `
int zero = 0;
void main() {
	int x = 5;
	if (zero != 0 && 10 / zero > 1) { x = 1; }
	if (zero == 0 || 10 / zero > 1) { x += 2; }
	checksum(x);
}
`
	p := lowerSrc(t, src)
	if got, want := runIR(t, p), ir.MixChecksum(0, 7); got != want {
		t.Errorf("short-circuit checksum = %d, want %d", got, want)
	}
	Optimize(p, Config{Level: O3, Personality: ICC})
	if got, want := runIR(t, p), ir.MixChecksum(0, 7); got != want {
		t.Errorf("optimized short-circuit checksum = %d, want %d", got, want)
	}
}

func TestAddressTakenLocals(t *testing.T) {
	src := `
void bump(int* p) { *p = *p + 1; }
void main() {
	int x = 41;
	bump(&x);
	checksum(x);
}
`
	for _, lvl := range []Level{O0, O3} {
		p := lowerSrc(t, src)
		Optimize(p, Config{Level: lvl, Personality: ICC})
		if got, want := runIR(t, p), ir.MixChecksum(0, 42); got != want {
			t.Errorf("%v: checksum = %d, want %d", lvl, got, want)
		}
	}
}

func TestOversizedFrameRejected(t *testing.T) {
	src := `void main() { int big[8000]; big[0] = 1; checksum(big[0]); }`
	_, _, err := Compile([]Source{{Name: "big.cm", Text: src}}, Config{Level: O2})
	if err == nil || !strings.Contains(err.Error(), "32 KiB") {
		t.Errorf("oversized frame not rejected cleanly: %v", err)
	}
	// A comfortably sized frame still compiles.
	ok := `void main() { int buf[1000]; buf[0] = 1; checksum(buf[0]); }`
	if _, _, err := Compile([]Source{{Name: "ok.cm", Text: ok}}, Config{Level: O2}); err != nil {
		t.Errorf("legitimate frame rejected: %v", err)
	}
}
