// Package compiler lowers cmini source to IR, optimizes it, and generates
// machine code as relocatable objects. It is the analogue of the paper's
// gcc/icc: it offers optimization levels O0–O3 and two code-generator
// personalities whose differing heuristics (inlining budget, unroll factor,
// code alignment) reproduce the paper's observation that measurement bias
// appears with more than one compiler.
package compiler

import "fmt"

// Level is an optimization level, mirroring -O0 … -O3.
type Level int

// Optimization levels.
const (
	O0 Level = iota // straight translation, no optimization
	O1              // constant folding, copy propagation, dead-code elimination
	O2              // O1 + local CSE, strength reduction, register promotion
	O3              // O2 + inlining, loop unrolling, code alignment
)

func (l Level) String() string { return fmt.Sprintf("O%d", int(l)) }

// ParseLevel converts "O0".."O3" (or "-O2" etc.) to a Level.
func ParseLevel(s string) (Level, error) {
	t := s
	if len(t) > 0 && t[0] == '-' {
		t = t[1:]
	}
	switch t {
	case "O0":
		return O0, nil
	case "O1":
		return O1, nil
	case "O2":
		return O2, nil
	case "O3":
		return O3, nil
	}
	return O0, fmt.Errorf("compiler: unknown optimization level %q", s)
}

// Personality selects a code-generator flavour, standing in for the paper's
// two real compilers.
type Personality int

const (
	// GCC inlines conservatively, unrolls by 2 at O3, and does not align
	// branch targets.
	GCC Personality = iota
	// ICC inlines aggressively, unrolls by 4 at O3, and pads function
	// entries and loop headers to 16-byte boundaries.
	ICC
)

func (p Personality) String() string {
	if p == ICC {
		return "icc"
	}
	return "gcc"
}

// ParsePersonality converts "gcc"/"icc" to a Personality.
func ParsePersonality(s string) (Personality, error) {
	switch s {
	case "gcc":
		return GCC, nil
	case "icc":
		return ICC, nil
	}
	return GCC, fmt.Errorf("compiler: unknown compiler personality %q", s)
}

// Config selects how a translation unit is compiled.
type Config struct {
	Level       Level
	Personality Personality
}

func (c Config) String() string { return fmt.Sprintf("%s -%s", c.Personality, c.Level) }

// tuning parameters derived from Config.
type tuning struct {
	inline       bool
	inlineBudget int // max callee IR instructions
	unroll       int // unroll factor; 1 disables
	alignFuncs   uint64
	alignLoops   uint64
	cse          bool
	strength     bool
	promote      bool // promote hot vregs to callee-saved registers
	fold         bool
	localTrack   bool // codegen tracks values in scratch registers per block
}

func (c Config) tune() tuning {
	t := tuning{alignFuncs: 4, unroll: 1}
	if c.Level >= O1 {
		t.fold = true
	}
	if c.Level >= O2 {
		t.cse = true
		t.strength = true
		t.promote = true
		t.localTrack = true
	}
	if c.Level >= O3 {
		t.inline = true
		switch c.Personality {
		case GCC:
			t.inlineBudget = 24
			t.unroll = 2
		case ICC:
			t.inlineBudget = 48
			t.unroll = 4
			t.alignFuncs = 16
			t.alignLoops = 16
		}
	}
	return t
}
