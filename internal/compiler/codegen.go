package compiler

import (
	"fmt"
	"sort"

	"biaslab/internal/ir"
	"biaslab/internal/isa"
	"biaslab/internal/obj"
)

// CodeGen translates one IR module into a relocatable object. The code
// generator is a "memory machine with promotion": every virtual register has
// a home — either a callee-saved register (for the hottest values at O2+) or
// an 8-byte frame slot — and each IR instruction expands to loads, the
// operation, and a store. At O2+ a per-block tracker remembers which virtual
// registers currently sit in scratch registers, eliding most reloads.
func CodeGen(m *ir.Module, cfg Config) (*obj.Object, error) {
	t := cfg.tune()
	o := &obj.Object{Name: m.Name}
	for _, g := range m.Globals {
		if err := emitGlobal(o, g); err != nil {
			return nil, err
		}
	}
	for _, f := range m.Funcs {
		if err := emitFunc(o, f, t); err != nil {
			return nil, err
		}
	}
	if err := o.Validate(); err != nil {
		return nil, err
	}
	return o, nil
}

func emitGlobal(o *obj.Object, g *ir.Global) error {
	align := uint64(g.Align)
	if align == 0 {
		align = 8
	}
	if len(g.Init) > 0 {
		// Initialized data goes to .data.
		for uint64(len(o.Data))%align != 0 {
			o.Data = append(o.Data, 0)
		}
		off := uint64(len(o.Data))
		o.Data = append(o.Data, g.Init...)
		for int64(len(o.Data))-int64(off) < g.Size {
			o.Data = append(o.Data, 0)
		}
		return o.AddSymbol(obj.Symbol{Name: g.Name, Kind: obj.SymData, Section: obj.SecData, Offset: off, Size: uint64(g.Size), Align: align})
	}
	// Zero data goes to .bss.
	o.BSSSize = (o.BSSSize + align - 1) &^ (align - 1)
	off := o.BSSSize
	o.BSSSize += uint64(g.Size)
	return o.AddSymbol(obj.Symbol{Name: g.Name, Kind: obj.SymData, Section: obj.SecBSS, Offset: off, Size: uint64(g.Size), Align: align})
}

// Scratch registers available to the per-block value tracker. T7 and AT are
// reserved for instruction expansion (address materialization, second
// operands); the tracker rotates through the rest.
var trackRegs = []isa.Reg{isa.T0, isa.T1, isa.T2, isa.T3, isa.T4, isa.T5, isa.T6}

// promoteRegs are the callee-saved homes for hot virtual registers.
var promoteRegs = []isa.Reg{isa.S0, isa.S1, isa.S2, isa.S3, isa.S4, isa.S5,
	isa.S6, isa.S7, isa.S8, isa.S9, isa.S10}

type funcGen struct {
	o    *obj.Object
	f    *ir.Func
	t    tuning
	code []isa.Inst
	// relocation requests recorded against instruction indices, converted
	// to byte offsets when the function is appended to the object.
	relocs []pendingReloc

	promoted map[ir.VReg]isa.Reg
	spillOff map[ir.VReg]int64 // SP-relative home for non-promoted vregs
	slotOff  []int64           // SP-relative base of each IR slot
	frame    int64
	hasCalls bool
	savedS   []isa.Reg

	blockStart map[*ir.Block]int // instruction index of each block
	fixups     []branchFixup

	// tracker state (per block)
	inT   map[ir.VReg]isa.Reg
	tHeld map[isa.Reg]ir.VReg
	tNext int

	epilogue *ir.Block // sentinel key for the shared epilogue "block"
}

type pendingReloc struct {
	kind   obj.RelocKind
	instIx int
	sym    string
	addend int64
}

type branchFixup struct {
	instIx int
	target *ir.Block
}

func emitFunc(o *obj.Object, f *ir.Func, t tuning) error {
	g := &funcGen{
		o: o, f: f, t: t,
		promoted:   map[ir.VReg]isa.Reg{},
		spillOff:   map[ir.VReg]int64{},
		blockStart: map[*ir.Block]int{},
		epilogue:   &ir.Block{Name: "$epilogue"},
	}
	g.analyze()
	g.layoutFrame()
	if !isa.FitsImm16(g.frame) {
		return fmt.Errorf("compiler: frame of %s is %d bytes; stack frames are limited to 32 KiB (hoist large arrays to globals)", f.Name, g.frame)
	}
	g.prologue()
	for i, b := range f.Blocks {
		g.startBlock(b)
		for _, in := range b.Instrs {
			if err := g.instr(in); err != nil {
				return err
			}
		}
		var next *ir.Block
		if i+1 < len(f.Blocks) {
			next = f.Blocks[i+1]
		}
		g.terminator(b, next)
	}
	g.emitEpilogue()
	if err := g.resolveBranches(); err != nil {
		return err
	}
	return g.appendToObject()
}

// analyze decides which vregs get promoted to callee-saved registers and
// whether the function makes calls.
func (g *funcGen) analyze() {
	depth := map[*ir.Block]int{}
	for _, l := range g.f.Loops {
		for _, b := range l.Blocks {
			depth[b]++
		}
		depth[l.Header]++
	}
	weight := make([]int64, g.f.NumVRegs)
	bump := func(v ir.VReg, w int64) {
		if v >= 0 {
			weight[v] += w
		}
	}
	for _, b := range g.f.Blocks {
		w := int64(1)
		for d := 0; d < depth[b] && d < 4; d++ {
			w *= 8
		}
		for _, in := range b.Instrs {
			if in.Op == ir.OpCall || in.Op == ir.OpSys {
				g.hasCalls = true
			}
			bump(in.Dst, w)
			bump(in.A, w)
			if in.Op.IsBinary() || in.Op == ir.OpStore {
				bump(in.B, w)
			}
			for _, a := range in.Args {
				bump(a, w)
			}
		}
		if b.Term.Kind == ir.TermBr {
			bump(b.Term.Cond, w)
		}
		if b.Term.Kind == ir.TermRet {
			bump(b.Term.Val, w)
		}
	}
	if !g.t.promote {
		return
	}
	type cand struct {
		v ir.VReg
		w int64
	}
	var cands []cand
	for v := 0; v < g.f.NumVRegs; v++ {
		if weight[v] > 1 {
			cands = append(cands, cand{ir.VReg(v), weight[v]})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].w != cands[j].w {
			return cands[i].w > cands[j].w
		}
		return cands[i].v < cands[j].v
	})
	for i, c := range cands {
		if i >= len(promoteRegs) {
			break
		}
		g.promoted[c.v] = promoteRegs[i]
		g.savedS = append(g.savedS, promoteRegs[i])
	}
}

// layoutFrame assigns SP-relative offsets:
//
//	[0,8)          saved RA (if the function calls)
//	[...]          saved S registers
//	[...]          spill homes for unpromoted vregs
//	[...]          IR slots (arrays, address-taken scalars)
func (g *funcGen) layoutFrame() {
	off := int64(0)
	if g.hasCalls {
		off += 8
	}
	off += int64(len(g.savedS)) * 8
	for v := 0; v < g.f.NumVRegs; v++ {
		if _, ok := g.promoted[ir.VReg(v)]; ok {
			continue
		}
		g.spillOff[ir.VReg(v)] = off
		off += 8
	}
	g.slotOff = make([]int64, len(g.f.Slots))
	for i, s := range g.f.Slots {
		align := s.Align
		if align <= 0 {
			align = 8
		}
		off = (off + align - 1) &^ (align - 1)
		g.slotOff[i] = off
		off += s.Size
	}
	g.frame = (off + 7) &^ 7
}

func (g *funcGen) emit(in isa.Inst) int {
	g.code = append(g.code, in)
	return len(g.code) - 1
}

func (g *funcGen) prologue() {
	if g.frame != 0 {
		g.emitAddSP(-g.frame)
	}
	off := int64(0)
	if g.hasCalls {
		g.emit(isa.Inst{Op: isa.OpStq, Rs1: isa.SP, Rs2: isa.RA, Imm: int32(off)})
		off += 8
	}
	for _, s := range g.savedS {
		g.emit(isa.Inst{Op: isa.OpStq, Rs1: isa.SP, Rs2: s, Imm: int32(off)})
		off += 8
	}
	// Move incoming arguments to their homes.
	for i := 0; i < g.f.NumParams && i < 6; i++ {
		v := ir.VReg(i)
		src := isa.Reg(uint8(isa.A0) + uint8(i))
		if r, ok := g.promoted[v]; ok {
			g.emitMove(r, src)
		} else {
			g.emit(isa.Inst{Op: isa.OpStq, Rs1: isa.SP, Rs2: src, Imm: int32(g.spillOff[v])})
		}
	}
}

func (g *funcGen) emitEpilogue() {
	g.blockStart[g.epilogue] = len(g.code)
	off := int64(0)
	if g.hasCalls {
		g.emit(isa.Inst{Op: isa.OpLdq, Rd: isa.RA, Rs1: isa.SP, Imm: int32(off)})
		off += 8
	}
	for _, s := range g.savedS {
		g.emit(isa.Inst{Op: isa.OpLdq, Rd: s, Rs1: isa.SP, Imm: int32(off)})
		off += 8
	}
	if g.frame != 0 {
		g.emitAddSP(g.frame)
	}
	g.emit(isa.Inst{Op: isa.OpJalr, Rd: isa.R0, Rs1: isa.RA})
}

func (g *funcGen) emitAddSP(delta int64) {
	// Frame size was validated against imm16 range before the prologue.
	g.emit(isa.Inst{Op: isa.OpAddi, Rd: isa.SP, Rs1: isa.SP, Imm: int32(delta)})
}

func (g *funcGen) emitMove(dst, src isa.Reg) {
	if dst != src {
		g.emit(isa.Inst{Op: isa.OpAdd, Rd: dst, Rs1: src, Rs2: isa.R0})
	}
}

// ---- per-block scratch tracking ----

func (g *funcGen) startBlock(b *ir.Block) {
	// Loop-header alignment: pad so the block starts on an aligned
	// instruction boundary (icc personality).
	if g.t.alignLoops > 1 && g.isLoopHeader(b) {
		per := int(g.t.alignLoops) / isa.InstSize
		for len(g.code)%per != 0 {
			g.emit(isa.Inst{Op: isa.OpNop})
		}
	}
	g.blockStart[b] = len(g.code)
	g.resetTracker()
}

func (g *funcGen) isLoopHeader(b *ir.Block) bool {
	for _, l := range g.f.Loops {
		if l.Header == b {
			return true
		}
	}
	return false
}

func (g *funcGen) resetTracker() {
	g.inT = map[ir.VReg]isa.Reg{}
	g.tHeld = map[isa.Reg]ir.VReg{}
	g.tNext = 0
}

// claimT returns a scratch register for holding vreg v, evicting the oldest
// binding if necessary (values are written through, so eviction is free).
func (g *funcGen) claimT(v ir.VReg) isa.Reg {
	r := trackRegs[g.tNext%len(trackRegs)]
	g.tNext++
	if old, ok := g.tHeld[r]; ok {
		delete(g.inT, old)
	}
	g.tHeld[r] = v
	g.inT[v] = r
	return r
}

// dropT forgets any binding for v (because v is being redefined elsewhere).
func (g *funcGen) dropT(v ir.VReg) {
	if r, ok := g.inT[v]; ok {
		delete(g.inT, v)
		delete(g.tHeld, r)
	}
}

// read returns a register holding vreg v, loading from the frame if needed.
// The result must not be written to.
func (g *funcGen) read(v ir.VReg) isa.Reg {
	if r, ok := g.promoted[v]; ok {
		return r
	}
	if g.t.localTrack {
		if r, ok := g.inT[v]; ok {
			return r
		}
	}
	r := g.claimTOrScratch(v)
	g.emit(isa.Inst{Op: isa.OpLdq, Rd: r, Rs1: isa.SP, Imm: int32(g.spillOff[v])})
	return r
}

func (g *funcGen) claimTOrScratch(v ir.VReg) isa.Reg {
	if g.t.localTrack {
		return g.claimT(v)
	}
	// Without tracking, rotate through scratch registers anyway so two
	// operands never collide.
	r := trackRegs[g.tNext%len(trackRegs)]
	g.tNext++
	return r
}

// destReg returns the register that the result of defining vreg v should be
// computed into.
func (g *funcGen) destReg(v ir.VReg) isa.Reg {
	if r, ok := g.promoted[v]; ok {
		return r
	}
	g.dropT(v)
	return g.claimTOrScratch(v)
}

// finishDest completes a definition: spills the computed value to v's frame
// home when v is not promoted.
func (g *funcGen) finishDest(v ir.VReg, r isa.Reg) {
	if _, ok := g.promoted[v]; ok {
		return
	}
	g.emit(isa.Inst{Op: isa.OpStq, Rs1: isa.SP, Rs2: r, Imm: int32(g.spillOff[v])})
}

// invalidateScratch forgets all scratch bindings (at calls, which clobber
// caller-saved registers).
func (g *funcGen) invalidateScratch() { g.resetTracker() }

// ---- constants and addresses ----

// genConst materializes a 64-bit constant into dst.
func (g *funcGen) genConst(dst isa.Reg, v int64) {
	if isa.FitsImm16(v) {
		g.emit(isa.Inst{Op: isa.OpAddi, Rd: dst, Rs1: isa.R0, Imm: int32(v)})
		return
	}
	if uv := uint64(v); uv>>32 == 0 {
		g.emit(isa.Inst{Op: isa.OpLui, Rd: dst, Imm: int32(uv >> 16)})
		if low := uv & 0xffff; low != 0 {
			g.emit(isa.Inst{Op: isa.OpOri, Rd: dst, Rs1: dst, Imm: int32(low)})
		}
		return
	}
	// Full 64-bit composition from 16-bit chunks.
	uv := uint64(v)
	g.emit(isa.Inst{Op: isa.OpLui, Rd: dst, Imm: int32(uv >> 48)})
	g.emit(isa.Inst{Op: isa.OpOri, Rd: dst, Rs1: dst, Imm: int32(uv >> 32 & 0xffff)})
	g.emit(isa.Inst{Op: isa.OpSlli, Rd: dst, Rs1: dst, Imm: 16})
	g.emit(isa.Inst{Op: isa.OpOri, Rd: dst, Rs1: dst, Imm: int32(uv >> 16 & 0xffff)})
	g.emit(isa.Inst{Op: isa.OpSlli, Rd: dst, Rs1: dst, Imm: 16})
	g.emit(isa.Inst{Op: isa.OpOri, Rd: dst, Rs1: dst, Imm: int32(uv & 0xffff)})
}

// genGlobalAddr materializes the address of sym+addend into dst, recording
// hi/lo relocations.
func (g *funcGen) genGlobalAddr(dst isa.Reg, sym string, addend int64) {
	hi := g.emit(isa.Inst{Op: isa.OpLui, Rd: dst, Imm: 0})
	g.relocs = append(g.relocs, pendingReloc{kind: obj.RelocHi16, instIx: hi, sym: sym, addend: addend})
	lo := g.emit(isa.Inst{Op: isa.OpOri, Rd: dst, Rs1: dst, Imm: 0})
	g.relocs = append(g.relocs, pendingReloc{kind: obj.RelocLo16, instIx: lo, sym: sym, addend: addend})
}

// ---- instruction expansion ----

var binOpMap = map[ir.Op]isa.Op{
	ir.OpAdd: isa.OpAdd, ir.OpSub: isa.OpSub, ir.OpMul: isa.OpMul,
	ir.OpDiv: isa.OpDiv, ir.OpRem: isa.OpRem, ir.OpAnd: isa.OpAnd,
	ir.OpOr: isa.OpOr, ir.OpXor: isa.OpXor, ir.OpShl: isa.OpSll,
	ir.OpShr: isa.OpSrl, ir.OpSar: isa.OpSra,
}

func loadOp(size uint8, signed bool) isa.Op {
	switch size {
	case 1:
		if signed {
			return isa.OpLdb
		}
		return isa.OpLdbu
	case 2:
		if signed {
			return isa.OpLdh
		}
		return isa.OpLdhu
	case 4:
		if signed {
			return isa.OpLdw
		}
		return isa.OpLdwu
	default:
		return isa.OpLdq
	}
}

func storeOp(size uint8) isa.Op {
	switch size {
	case 1:
		return isa.OpStb
	case 2:
		return isa.OpSth
	case 4:
		return isa.OpStw
	default:
		return isa.OpStq
	}
}

func (g *funcGen) instr(in ir.Instr) error {
	switch in.Op {
	case ir.OpNop:
	case ir.OpConst:
		d := g.destReg(in.Dst)
		g.genConst(d, in.Imm)
		g.finishDest(in.Dst, d)
	case ir.OpCopy:
		src := g.read(in.A)
		if r, ok := g.promoted[in.Dst]; ok {
			g.emitMove(r, src)
			return nil
		}
		// Store the source directly to the destination's home and update
		// the tracker: src's register now also holds Dst's value.
		g.dropT(in.Dst)
		g.emit(isa.Inst{Op: isa.OpStq, Rs1: isa.SP, Rs2: src, Imm: int32(g.spillOff[in.Dst])})
		if g.t.localTrack {
			if held, ok := g.tHeld[src]; ok && held != in.Dst {
				delete(g.inT, held)
				g.tHeld[src] = in.Dst
				g.inT[in.Dst] = src
			}
		}
	case ir.OpNeg:
		a := g.read(in.A)
		d := g.destReg(in.Dst)
		g.emit(isa.Inst{Op: isa.OpSub, Rd: d, Rs1: isa.R0, Rs2: a})
		g.finishDest(in.Dst, d)
	case ir.OpNot:
		a := g.read(in.A)
		d := g.destReg(in.Dst)
		g.emit(isa.Inst{Op: isa.OpSub, Rd: d, Rs1: isa.R0, Rs2: a})
		g.emit(isa.Inst{Op: isa.OpAddi, Rd: d, Rs1: d, Imm: -1})
		g.finishDest(in.Dst, d)
	case ir.OpLoad:
		base := g.read(in.A)
		d := g.destReg(in.Dst)
		if !isa.FitsImm16(in.Imm) {
			return fmt.Errorf("compiler: load offset %d too large in %s", in.Imm, g.f.Name)
		}
		g.emit(isa.Inst{Op: loadOp(in.Size, in.Signed), Rd: d, Rs1: base, Imm: int32(in.Imm)})
		g.finishDest(in.Dst, d)
	case ir.OpStore:
		base := g.read(in.A)
		val := g.read(in.B)
		if !isa.FitsImm16(in.Imm) {
			return fmt.Errorf("compiler: store offset %d too large in %s", in.Imm, g.f.Name)
		}
		g.emit(isa.Inst{Op: storeOp(in.Size), Rs1: base, Rs2: val, Imm: int32(in.Imm)})
	case ir.OpAddrGlobal:
		d := g.destReg(in.Dst)
		g.genGlobalAddr(d, in.Sym, in.Imm)
		g.finishDest(in.Dst, d)
	case ir.OpAddrSlot:
		d := g.destReg(in.Dst)
		off := g.slotOff[in.Slot] + in.Imm
		if !isa.FitsImm16(off) {
			return fmt.Errorf("compiler: slot offset %d too large in %s", off, g.f.Name)
		}
		g.emit(isa.Inst{Op: isa.OpAddi, Rd: d, Rs1: isa.SP, Imm: int32(off)})
		g.finishDest(in.Dst, d)
	case ir.OpCall:
		for i, a := range in.Args {
			src := g.read(a)
			g.emitMove(isa.Reg(uint8(isa.A0)+uint8(i)), src)
		}
		j := g.emit(isa.Inst{Op: isa.OpJal, Rd: isa.RA, Imm: 0})
		g.relocs = append(g.relocs, pendingReloc{kind: obj.RelocJal26, instIx: j, sym: in.Sym})
		g.invalidateScratch()
		if in.Dst >= 0 {
			if r, ok := g.promoted[in.Dst]; ok {
				g.emitMove(r, isa.RV)
			} else {
				g.emit(isa.Inst{Op: isa.OpStq, Rs1: isa.SP, Rs2: isa.RV, Imm: int32(g.spillOff[in.Dst])})
			}
		}
	case ir.OpSys:
		// Syscall number in A0, arguments in A1..; read args first (reads
		// may use scratch), then set A-registers.
		srcs := make([]isa.Reg, len(in.Args))
		for i, a := range in.Args {
			srcs[i] = g.read(a)
		}
		for i, s := range srcs {
			g.emitMove(isa.Reg(uint8(isa.A1)+uint8(i)), s)
		}
		g.genConst(isa.A0, in.Imm)
		g.emit(isa.Inst{Op: isa.OpSys, Rs1: isa.A0})
		g.invalidateScratch()
		if in.Dst >= 0 {
			if r, ok := g.promoted[in.Dst]; ok {
				g.emitMove(r, isa.RV)
			} else {
				g.emit(isa.Inst{Op: isa.OpStq, Rs1: isa.SP, Rs2: isa.RV, Imm: int32(g.spillOff[in.Dst])})
			}
		}
	default:
		if in.Op.IsCompare() {
			return g.compare(in)
		}
		mop, ok := binOpMap[in.Op]
		if !ok {
			return fmt.Errorf("compiler: no selection for IR op %v", in.Op)
		}
		a := g.read(in.A)
		b := g.read(in.B)
		d := g.destReg(in.Dst)
		g.emit(isa.Inst{Op: mop, Rd: d, Rs1: a, Rs2: b})
		g.finishDest(in.Dst, d)
	}
	return nil
}

func (g *funcGen) compare(in ir.Instr) error {
	a := g.read(in.A)
	b := g.read(in.B)
	d := g.destReg(in.Dst)
	switch in.Op {
	case ir.OpLt:
		g.emit(isa.Inst{Op: isa.OpSlt, Rd: d, Rs1: a, Rs2: b})
	case ir.OpGt:
		g.emit(isa.Inst{Op: isa.OpSlt, Rd: d, Rs1: b, Rs2: a})
	case ir.OpLe:
		g.emit(isa.Inst{Op: isa.OpSlt, Rd: d, Rs1: b, Rs2: a})
		g.emit(isa.Inst{Op: isa.OpXori, Rd: d, Rs1: d, Imm: 1})
	case ir.OpGe:
		g.emit(isa.Inst{Op: isa.OpSlt, Rd: d, Rs1: a, Rs2: b})
		g.emit(isa.Inst{Op: isa.OpXori, Rd: d, Rs1: d, Imm: 1})
	case ir.OpEq:
		g.emit(isa.Inst{Op: isa.OpXor, Rd: d, Rs1: a, Rs2: b})
		g.emit(isa.Inst{Op: isa.OpSltiu, Rd: d, Rs1: d, Imm: 1})
	case ir.OpNe:
		g.emit(isa.Inst{Op: isa.OpXor, Rd: d, Rs1: a, Rs2: b})
		g.emit(isa.Inst{Op: isa.OpSltu, Rd: d, Rs1: isa.R0, Rs2: d})
	}
	g.finishDest(in.Dst, d)
	return nil
}

func (g *funcGen) terminator(b *ir.Block, next *ir.Block) {
	switch b.Term.Kind {
	case ir.TermRet:
		if b.Term.Val >= 0 {
			src := g.read(b.Term.Val)
			g.emitMove(isa.RV, src)
		}
		g.branchTo(isa.Inst{Op: isa.OpJmp}, g.epilogue)
	case ir.TermJmp:
		if b.Term.Then != next {
			g.branchTo(isa.Inst{Op: isa.OpJmp}, b.Term.Then)
		}
	case ir.TermBr:
		cond := g.read(b.Term.Cond)
		switch {
		case b.Term.Else == next:
			g.branchTo(isa.Inst{Op: isa.OpBne, Rs1: cond, Rs2: isa.R0}, b.Term.Then)
		case b.Term.Then == next:
			g.branchTo(isa.Inst{Op: isa.OpBeq, Rs1: cond, Rs2: isa.R0}, b.Term.Else)
		default:
			g.branchTo(isa.Inst{Op: isa.OpBne, Rs1: cond, Rs2: isa.R0}, b.Term.Then)
			g.branchTo(isa.Inst{Op: isa.OpJmp}, b.Term.Else)
		}
	}
}

func (g *funcGen) branchTo(in isa.Inst, target *ir.Block) {
	ix := g.emit(in)
	g.fixups = append(g.fixups, branchFixup{instIx: ix, target: target})
}

func (g *funcGen) resolveBranches() error {
	for _, fx := range g.fixups {
		start, ok := g.blockStart[fx.target]
		if !ok {
			return fmt.Errorf("compiler: branch to unplaced block %s in %s", fx.target.Name, g.f.Name)
		}
		rel := start - (fx.instIx + 1)
		if !isa.FitsImm16(int64(rel)) {
			return fmt.Errorf("compiler: branch displacement %d too large in %s", rel, g.f.Name)
		}
		g.code[fx.instIx].Imm = int32(rel)
	}
	return nil
}

// appendToObject places the function's code in the object's text section,
// honouring the personality's function alignment.
func (g *funcGen) appendToObject() error {
	align := g.t.alignFuncs
	if align < uint64(isa.InstSize) {
		align = uint64(isa.InstSize)
	}
	for uint64(len(g.o.Text))%align != 0 {
		g.o.Text = isa.EncodeTo(g.o.Text, isa.Inst{Op: isa.OpNop})
	}
	base := uint64(len(g.o.Text))
	for _, in := range g.code {
		g.o.Text = isa.EncodeTo(g.o.Text, in)
	}
	if err := g.o.AddSymbol(obj.Symbol{
		Name: g.f.Name, Kind: obj.SymFunc, Section: obj.SecText,
		Offset: base, Size: uint64(len(g.code) * isa.InstSize), Align: align,
	}); err != nil {
		return err
	}
	for _, pr := range g.relocs {
		g.o.Relocs = append(g.o.Relocs, obj.Reloc{
			Kind:    pr.kind,
			Section: obj.SecText,
			Offset:  base + uint64(pr.instIx*isa.InstSize),
			Sym:     pr.sym,
			Addend:  pr.addend,
		})
	}
	return nil
}
