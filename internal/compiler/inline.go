package compiler

import "biaslab/internal/ir"

// inlineProgram replaces calls to small functions with the callee's body.
// One round is performed over every function; call sites are considered in
// program order and a per-caller growth budget caps code expansion, which
// keeps the two personalities' inlining behaviour distinct without letting
// either explode.
func inlineProgram(p *ir.Program, t tuning) {
	funcs := map[string]*ir.Func{}
	for _, m := range p.Modules {
		for _, f := range m.Funcs {
			funcs[f.Name] = f
		}
	}
	recursive := findRecursive(p, funcs)
	for _, m := range p.Modules {
		for _, f := range m.Funcs {
			inlineInto(f, funcs, recursive, t)
		}
	}
}

// findRecursive marks every function on a call-graph cycle (or calling into
// one transitively back to itself) using a DFS from each node.
func findRecursive(p *ir.Program, funcs map[string]*ir.Func) map[string]bool {
	callees := map[string][]string{}
	for _, m := range p.Modules {
		for _, f := range m.Funcs {
			for _, b := range f.Blocks {
				for _, in := range b.Instrs {
					if in.Op == ir.OpCall {
						callees[f.Name] = append(callees[f.Name], in.Sym)
					}
				}
			}
		}
	}
	recursive := map[string]bool{}
	for name := range funcs {
		seen := map[string]bool{}
		var reach func(n string) bool
		reach = func(n string) bool {
			for _, c := range callees[n] {
				if c == name {
					return true
				}
				if !seen[c] {
					seen[c] = true
					if reach(c) {
						return true
					}
				}
			}
			return false
		}
		if reach(name) {
			recursive[name] = true
		}
	}
	return recursive
}

func funcSize(f *ir.Func) int {
	n := 0
	for _, b := range f.Blocks {
		n += len(b.Instrs) + 1
	}
	return n
}

func inlineInto(caller *ir.Func, funcs map[string]*ir.Func, recursive map[string]bool, t tuning) {
	budget := funcSize(caller)*2 + 256 // growth cap
	// Iterate over blocks by index; inlining appends new blocks, and calls
	// inside inlined bodies are not reconsidered (their block pointers are
	// fresh copies appended past the scan position of the original call —
	// we deliberately scan only the blocks present at entry plus the
	// post-split continuations, giving one level of inlining per round).
	for bi := 0; bi < len(caller.Blocks); bi++ {
		b := caller.Blocks[bi]
		for ii := 0; ii < len(b.Instrs); ii++ {
			in := b.Instrs[ii]
			if in.Op != ir.OpCall {
				continue
			}
			callee := funcs[in.Sym]
			if callee == nil || callee == caller || recursive[in.Sym] {
				continue
			}
			size := funcSize(callee)
			if size > t.inlineBudget || funcSize(caller)+size > budget {
				continue
			}
			spliceCall(caller, b, ii, callee, in)
			// The current block was truncated at the call; move on.
			break
		}
	}
	caller.Renumber()
}

// spliceCall inlines callee at caller block b instruction index ii.
func spliceCall(caller *ir.Func, b *ir.Block, ii int, callee *ir.Func, call ir.Instr) {
	vregBase := caller.NumVRegs
	caller.NumVRegs += callee.NumVRegs
	slotBase := len(caller.Slots)
	caller.Slots = append(caller.Slots, callee.Slots...)

	mapReg := func(v ir.VReg) ir.VReg {
		if v < 0 {
			return v
		}
		return v + ir.VReg(vregBase)
	}

	// Continuation block receives the instructions after the call and the
	// original terminator.
	cont := &ir.Block{
		Name:   b.Name + ".cont",
		Instrs: append([]ir.Instr{}, b.Instrs[ii+1:]...),
		Term:   b.Term,
	}

	// Copy callee blocks with remapped registers and slots.
	blockMap := map[*ir.Block]*ir.Block{}
	copies := make([]*ir.Block, 0, len(callee.Blocks))
	for _, cb := range callee.Blocks {
		nb := &ir.Block{Name: callee.Name + "." + cb.Name}
		nb.Instrs = make([]ir.Instr, len(cb.Instrs))
		for i, cin := range cb.Instrs {
			nin := cin
			nin.Dst = mapReg(cin.Dst)
			nin.A = mapReg(cin.A)
			nin.B = mapReg(cin.B)
			if cin.Op == ir.OpAddrSlot {
				nin.Slot = cin.Slot + slotBase
			}
			if len(cin.Args) > 0 {
				nin.Args = make([]ir.VReg, len(cin.Args))
				for j, a := range cin.Args {
					nin.Args[j] = mapReg(a)
				}
			}
			nb.Instrs[i] = nin
		}
		blockMap[cb] = nb
		copies = append(copies, nb)
	}
	// Remap terminators; returns become a copy to the call destination plus
	// a jump to the continuation.
	for _, cb := range callee.Blocks {
		nb := blockMap[cb]
		switch cb.Term.Kind {
		case ir.TermRet:
			if call.Dst >= 0 && cb.Term.Val >= 0 {
				nb.Instrs = append(nb.Instrs, ir.Instr{Op: ir.OpCopy, Dst: call.Dst, A: mapReg(cb.Term.Val)})
			}
			nb.Term = ir.Term{Kind: ir.TermJmp, Then: cont}
		case ir.TermJmp:
			nb.Term = ir.Term{Kind: ir.TermJmp, Then: blockMap[cb.Term.Then]}
		case ir.TermBr:
			nb.Term = ir.Term{
				Kind: ir.TermBr,
				Cond: mapReg(cb.Term.Cond),
				Then: blockMap[cb.Term.Then],
				Else: blockMap[cb.Term.Else],
			}
		}
	}

	// Truncate the call block: argument copies then jump into the body.
	b.Instrs = b.Instrs[:ii]
	for i, a := range call.Args {
		b.Instrs = append(b.Instrs, ir.Instr{Op: ir.OpCopy, Dst: ir.VReg(vregBase + i), A: a})
	}
	b.Term = ir.Term{Kind: ir.TermJmp, Then: blockMap[callee.Entry()]}

	// Splice the copies and continuation right after b in layout order.
	idx := indexOfBlock(caller.Blocks, b)
	tail := append([]*ir.Block{}, caller.Blocks[idx+1:]...)
	caller.Blocks = append(caller.Blocks[:idx+1], copies...)
	caller.Blocks = append(caller.Blocks, cont)
	caller.Blocks = append(caller.Blocks, tail...)

	// Import the callee's loop annotations.
	for _, l := range callee.Loops {
		nl := ir.Loop{
			Header: blockMap[l.Header],
			Latch:  blockMap[l.Latch],
			Exit:   blockMap[l.Exit],
		}
		for _, lb := range l.Blocks {
			nl.Blocks = append(nl.Blocks, blockMap[lb])
		}
		caller.Loops = append(caller.Loops, nl)
	}
	// Fix caller loops whose member list contained b: the continuation now
	// carries the back half of b, and the inlined body executes between
	// them; add all of it to any loop containing b.
	for li := range caller.Loops {
		l := &caller.Loops[li]
		for _, lb := range l.Blocks {
			if lb == b {
				l.Blocks = append(l.Blocks, copies...)
				l.Blocks = append(l.Blocks, cont)
				break
			}
		}
		if l.Latch == b {
			l.Latch = cont
		}
		if l.Header == b {
			// The header was split; the loop annotation no longer
			// describes a simple loop. Mark it unusable for unrolling by
			// clearing the latch linkage.
			l.Latch = nil
		}
	}
}

func indexOfBlock(bs []*ir.Block, b *ir.Block) int {
	for i, x := range bs {
		if x == b {
			return i
		}
	}
	return -1
}
