package compiler

import "biaslab/internal/ir"

// unrollLoops unrolls eligible innermost loops by the tuning factor using
// unknown-trip-count unrolling with exits: the loop condition is re-tested
// between body copies, so semantics are preserved for any trip count. The
// benefit is the elimination of K−1 of every K back-jumps plus longer
// straight-line blocks for the code generator's local value tracking; the
// cost is code growth, which is exactly the O3 trade-off the paper's
// experiments ride on.
const maxUnrollBody = 48 // IR instructions in header+body

func unrollLoops(f *ir.Func, t tuning) {
	if t.unroll <= 1 {
		return
	}
	for li := range f.Loops {
		l := &f.Loops[li]
		if eligible(f, l) {
			unrollOne(f, l, t.unroll)
		}
	}
	f.Renumber()
}

// eligible reports whether the loop has the simple rotated shape the
// unroller handles: a header that tests and branches, a single in-loop edge
// back to the header (from the latch), and a small body.
func eligible(f *ir.Func, l *ir.Loop) bool {
	if l.Header == nil || l.Latch == nil {
		return false
	}
	if l.Header.Term.Kind != ir.TermBr {
		return false
	}
	if l.Latch.Term.Kind != ir.TermJmp || l.Latch.Term.Then != l.Header {
		return false
	}
	inLoop := map[*ir.Block]bool{l.Header: true}
	size := len(l.Header.Instrs) + 1
	for _, b := range l.Blocks {
		inLoop[b] = true
		size += len(b.Instrs) + 1
	}
	if size > maxUnrollBody {
		return false
	}
	// The only jump to the header from inside the loop must be the latch
	// (no continue-style edges), and no other loop may nest inside.
	for _, b := range l.Blocks {
		if b != l.Latch {
			for _, s := range b.Succs() {
				if s == l.Header {
					return false
				}
			}
		}
		// A call inside the body is allowed; another loop header is not.
		for _, other := range f.Loops {
			if other.Header == b {
				return false
			}
		}
	}
	// All loop blocks must be members (defensive: successors inside the
	// loop that we failed to record would break remapping).
	for _, b := range l.Blocks {
		for _, s := range b.Succs() {
			if s != l.Header && !inLoop[s] && s != l.Exit {
				// Edge to an outside block (break target beyond exit is
				// fine only if it is the recorded exit).
				if s.Name != l.Exit.Name {
					return false
				}
			}
		}
	}
	return true
}

func unrollOne(f *ir.Func, l *ir.Loop, factor int) {
	// The copied unit is header+body. Registers are reused verbatim:
	// the IR is not SSA, and the copies execute sequentially, so the
	// original registers carry values between copies exactly as memory
	// would.
	unit := append([]*ir.Block{l.Header}, l.Blocks...)
	prevLatch := l.Latch

	var allCopies []*ir.Block
	var firstHeaders []*ir.Block
	for k := 1; k < factor; k++ {
		blockMap := map[*ir.Block]*ir.Block{}
		copies := make([]*ir.Block, len(unit))
		for i, b := range unit {
			nb := &ir.Block{Name: b.Name + ".u", Instrs: append([]ir.Instr{}, b.Instrs...)}
			blockMap[b] = nb
			copies[i] = nb
		}
		for i, b := range unit {
			nb := copies[i]
			remap := func(t *ir.Block) *ir.Block {
				if m, ok := blockMap[t]; ok {
					return m
				}
				return t
			}
			switch b.Term.Kind {
			case ir.TermJmp:
				nb.Term = ir.Term{Kind: ir.TermJmp, Then: remap(b.Term.Then)}
			case ir.TermBr:
				nb.Term = ir.Term{Kind: ir.TermBr, Cond: b.Term.Cond, Then: remap(b.Term.Then), Else: remap(b.Term.Else)}
			case ir.TermRet:
				nb.Term = b.Term
			}
		}
		// The previous latch now falls into this copy's header.
		prevLatch.Term = ir.Term{Kind: ir.TermJmp, Then: blockMap[l.Header]}
		// This copy's latch jumps to the original header (patched next
		// iteration or left for the final copy).
		newLatch := blockMap[l.Latch]
		newLatch.Term = ir.Term{Kind: ir.TermJmp, Then: l.Header}
		prevLatch = newLatch
		allCopies = append(allCopies, copies...)
		firstHeaders = append(firstHeaders, blockMap[l.Header])
	}

	// Splice copies after the original latch in layout order so the
	// inter-copy jumps become fallthroughs in the emitted code.
	idx := indexOfBlock(f.Blocks, l.Latch)
	tail := append([]*ir.Block{}, f.Blocks[idx+1:]...)
	f.Blocks = append(f.Blocks[:idx+1], allCopies...)
	f.Blocks = append(f.Blocks, tail...)
	l.Blocks = append(l.Blocks, allCopies...)
	_ = firstHeaders
}
