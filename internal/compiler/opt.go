package compiler

import (
	"fmt"

	"biaslab/internal/ir"
)

// Optimize runs the IR optimization pipeline selected by cfg over the whole
// program in place. The pipeline is:
//
//	O1+: local value numbering (constant folding, copy propagation, algebraic
//	     simplification), dead-code elimination, unreachable-block removal
//	O2+: + common-subexpression elimination and strength reduction (inside LVN)
//	O3 : + cross-module inlining and loop unrolling, then a second cleanup
func Optimize(p *ir.Program, cfg Config) {
	t := cfg.tune()
	if !t.fold {
		return
	}
	cleanup := func() {
		for _, m := range p.Modules {
			for _, f := range m.Funcs {
				lvn(f, t)
				dce(f)
				removeUnreachable(f)
			}
		}
	}
	cleanup()
	if t.inline {
		inlineProgram(p, t)
		for _, m := range p.Modules {
			for _, f := range m.Funcs {
				unrollLoops(f, t)
			}
		}
		cleanup()
	}
}

// ---- Local value numbering ----

// lvn performs per-block value numbering: it folds constants, propagates
// copies, simplifies algebraic identities, and (at O2+) eliminates common
// subexpressions and strength-reduces multiplications.
func lvn(f *ir.Func, t tuning) {
	for _, b := range f.Blocks {
		lvnBlock(f, b, t)
	}
}

type valueNum int

type lvnState struct {
	next    valueNum
	regVN   map[ir.VReg]valueNum
	constVN map[int64]valueNum
	vnConst map[valueNum]int64
	// holders maps a value number to vregs currently bound to it; used to
	// find a live source for CSE rewrites.
	holders map[valueNum][]ir.VReg
	exprVN  map[string]valueNum
}

func newLVNState() *lvnState {
	return &lvnState{
		regVN:   map[ir.VReg]valueNum{},
		constVN: map[int64]valueNum{},
		vnConst: map[valueNum]int64{},
		holders: map[valueNum][]ir.VReg{},
		exprVN:  map[string]valueNum{},
	}
}

func (s *lvnState) fresh() valueNum {
	s.next++
	return s.next
}

// vnOf returns the value number of reg, assigning a fresh one for values
// flowing in from other blocks.
func (s *lvnState) vnOf(reg ir.VReg) valueNum {
	if vn, ok := s.regVN[reg]; ok {
		return vn
	}
	vn := s.fresh()
	s.bind(reg, vn)
	return vn
}

// bind rebinds reg to vn, maintaining the holders index.
func (s *lvnState) bind(reg ir.VReg, vn valueNum) {
	if old, ok := s.regVN[reg]; ok {
		hs := s.holders[old]
		for i, h := range hs {
			if h == reg {
				s.holders[old] = append(hs[:i], hs[i+1:]...)
				break
			}
		}
	}
	s.regVN[reg] = vn
	s.holders[vn] = append(s.holders[vn], reg)
}

func (s *lvnState) vnForConst(v int64) valueNum {
	if vn, ok := s.constVN[v]; ok {
		return vn
	}
	vn := s.fresh()
	s.constVN[v] = vn
	s.vnConst[vn] = v
	return vn
}

func (s *lvnState) constOf(vn valueNum) (int64, bool) {
	v, ok := s.vnConst[vn]
	return v, ok
}

// holder returns a vreg currently bound to vn, other than exclude.
func (s *lvnState) holder(vn valueNum, exclude ir.VReg) (ir.VReg, bool) {
	for _, h := range s.holders[vn] {
		if h != exclude {
			return h, true
		}
	}
	return 0, false
}

func lvnBlock(f *ir.Func, b *ir.Block, t tuning) {
	s := newLVNState()
	for i := range b.Instrs {
		in := &b.Instrs[i]
		switch in.Op {
		case ir.OpConst:
			s.bind(in.Dst, s.vnForConst(in.Imm))
		case ir.OpCopy:
			src := s.vnOf(in.A)
			// Rewrite copy-of-constant into a const so downstream blocks
			// that only see this register still benefit.
			if cv, ok := s.constOf(src); ok {
				*in = ir.Instr{Op: ir.OpConst, Dst: in.Dst, Imm: cv}
			}
			s.bind(in.Dst, src)
		case ir.OpNeg, ir.OpNot:
			a := s.vnOf(in.A)
			if av, ok := s.constOf(a); ok {
				folded := -av
				if in.Op == ir.OpNot {
					folded = ^av
				}
				*in = ir.Instr{Op: ir.OpConst, Dst: in.Dst, Imm: folded}
				s.bind(in.Dst, s.vnForConst(folded))
				continue
			}
			s.bind(in.Dst, s.exprValue(in.Op, a, 0, in.Dst, t, in))
		case ir.OpAddrGlobal:
			key := fmt.Sprintf("g:%s:%d", in.Sym, in.Imm)
			s.reuseOrDefine(key, in, t)
		case ir.OpAddrSlot:
			key := fmt.Sprintf("s:%d:%d", in.Slot, in.Imm)
			s.reuseOrDefine(key, in, t)
		case ir.OpLoad:
			// Loads read mutable memory; never value-numbered.
			s.bind(in.Dst, s.fresh())
		case ir.OpStore:
			// No register effects.
		case ir.OpCall, ir.OpSys:
			if in.Dst >= 0 {
				s.bind(in.Dst, s.fresh())
			}
		case ir.OpNop:
		default:
			if !in.Op.IsBinary() {
				if in.Dst >= 0 {
					s.bind(in.Dst, s.fresh())
				}
				continue
			}
			a, bn := s.vnOf(in.A), s.vnOf(in.B)
			av, aConst := s.constOf(a)
			bv, bConst := s.constOf(bn)
			if aConst && bConst {
				if folded, ok := foldBinary(in.Op, av, bv); ok {
					*in = ir.Instr{Op: ir.OpConst, Dst: in.Dst, Imm: folded}
					s.bind(in.Dst, s.vnForConst(folded))
					continue
				}
			}
			if newOp, newA, vn, rewrote := s.simplify(in, a, bn, av, aConst, bv, bConst, t); rewrote {
				_ = newOp
				_ = newA
				s.bind(in.Dst, vn)
				continue
			}
			s.bind(in.Dst, s.exprValue(in.Op, a, bn, in.Dst, t, in))
		}
	}
}

// reuseOrDefine handles pure keyed expressions (address computations):
// at O2+ a repeated computation becomes a copy of the earlier result.
func (s *lvnState) reuseOrDefine(key string, in *ir.Instr, t tuning) {
	if vn, ok := s.exprVN[key]; ok && t.cse {
		if h, live := s.holder(vn, in.Dst); live {
			*in = ir.Instr{Op: ir.OpCopy, Dst: in.Dst, A: h}
			s.bind(in.Dst, vn)
			return
		}
	}
	vn := s.fresh()
	s.exprVN[key] = vn
	s.bind(in.Dst, vn)
}

// exprValue value-numbers a pure operation, applying CSE at O2+.
func (s *lvnState) exprValue(op ir.Op, a, b valueNum, dst ir.VReg, t tuning, in *ir.Instr) valueNum {
	if op.Commutative() && b != 0 && a > b {
		a, b = b, a
	}
	key := fmt.Sprintf("e:%d:%d:%d", op, a, b)
	if vn, ok := s.exprVN[key]; ok && t.cse {
		if h, live := s.holder(vn, dst); live {
			*in = ir.Instr{Op: ir.OpCopy, Dst: dst, A: h}
			return vn
		}
	}
	vn := s.fresh()
	s.exprVN[key] = vn
	return vn
}

// simplify applies algebraic identities and strength reduction. It rewrites
// *in in place when it fires and returns the value number of the result.
func (s *lvnState) simplify(in *ir.Instr, a, b valueNum, av int64, aConst bool, bv int64, bConst bool, t tuning) (ir.Op, ir.VReg, valueNum, bool) {
	set := func(instr ir.Instr, vn valueNum) (ir.Op, ir.VReg, valueNum, bool) {
		instr.Dst = in.Dst
		*in = instr
		return instr.Op, instr.A, vn, true
	}
	constResult := func(v int64) (ir.Op, ir.VReg, valueNum, bool) {
		return set(ir.Instr{Op: ir.OpConst, Imm: v}, s.vnForConst(v))
	}
	copyOf := func(src ir.VReg, vn valueNum) (ir.Op, ir.VReg, valueNum, bool) {
		return set(ir.Instr{Op: ir.OpCopy, A: src}, vn)
	}
	switch in.Op {
	case ir.OpAdd:
		if aConst && av == 0 {
			return copyOf(in.B, b)
		}
		if bConst && bv == 0 {
			return copyOf(in.A, a)
		}
	case ir.OpSub:
		if bConst && bv == 0 {
			return copyOf(in.A, a)
		}
		if a == b {
			return constResult(0)
		}
	case ir.OpMul:
		if bConst {
			switch bv {
			case 0:
				return constResult(0)
			case 1:
				return copyOf(in.A, a)
			}
			if t.strength && bv > 0 && bv&(bv-1) == 0 {
				// x * 2^k → x << k. The shift amount becomes a constant
				// operand, which needs a register; reuse B's register by
				// rewriting its defining value: emit as OpShl with B kept
				// (B holds 2^k, not k), so instead express via immediate
				// trick: fold into OpShl only if a const-k register is
				// already available. Simpler: leave as multiply unless a
				// register holding k exists.
				if kReg, ok := s.holder(s.vnForConst(log2(bv)), -1); ok {
					return set(ir.Instr{Op: ir.OpShl, A: in.A, B: kReg}, s.fresh())
				}
			}
		}
		if aConst {
			switch av {
			case 0:
				return constResult(0)
			case 1:
				return copyOf(in.B, b)
			}
		}
	case ir.OpDiv:
		if bConst && bv == 1 {
			return copyOf(in.A, a)
		}
	case ir.OpAnd:
		if (aConst && av == 0) || (bConst && bv == 0) {
			return constResult(0)
		}
		if a == b {
			return copyOf(in.A, a)
		}
	case ir.OpOr:
		if aConst && av == 0 {
			return copyOf(in.B, b)
		}
		if bConst && bv == 0 {
			return copyOf(in.A, a)
		}
		if a == b {
			return copyOf(in.A, a)
		}
	case ir.OpXor:
		if a == b {
			return constResult(0)
		}
		if bConst && bv == 0 {
			return copyOf(in.A, a)
		}
	case ir.OpShl, ir.OpShr, ir.OpSar:
		if bConst && bv == 0 {
			return copyOf(in.A, a)
		}
	case ir.OpEq:
		if a == b {
			return constResult(1)
		}
	case ir.OpNe, ir.OpLt, ir.OpGt:
		if a == b {
			return constResult(0)
		}
	case ir.OpLe, ir.OpGe:
		if a == b {
			return constResult(1)
		}
	}
	return 0, 0, 0, false
}

func foldBinary(op ir.Op, a, b int64) (int64, bool) {
	switch op {
	case ir.OpAdd:
		return a + b, true
	case ir.OpSub:
		return a - b, true
	case ir.OpMul:
		return a * b, true
	case ir.OpDiv:
		if b == 0 {
			return 0, false // preserve the trap
		}
		return a / b, true
	case ir.OpRem:
		if b == 0 {
			return 0, false
		}
		return a % b, true
	case ir.OpAnd:
		return a & b, true
	case ir.OpOr:
		return a | b, true
	case ir.OpXor:
		return a ^ b, true
	case ir.OpShl:
		return a << (uint64(b) & 63), true
	case ir.OpShr:
		return int64(uint64(a) >> (uint64(b) & 63)), true
	case ir.OpSar:
		return a >> (uint64(b) & 63), true
	case ir.OpEq:
		return b2i(a == b), true
	case ir.OpNe:
		return b2i(a != b), true
	case ir.OpLt:
		return b2i(a < b), true
	case ir.OpLe:
		return b2i(a <= b), true
	case ir.OpGt:
		return b2i(a > b), true
	case ir.OpGe:
		return b2i(a >= b), true
	}
	return 0, false
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// ---- Dead code elimination ----

// dce removes pure instructions whose results are never used. It iterates
// to a fixpoint because removing one use can kill an upstream definition.
func dce(f *ir.Func) {
	for {
		uses := make([]int, f.NumVRegs)
		mark := func(v ir.VReg) {
			if v >= 0 {
				uses[v]++
			}
		}
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				switch in.Op {
				case ir.OpStore:
					mark(in.A)
					mark(in.B)
				case ir.OpCall, ir.OpSys:
					for _, a := range in.Args {
						mark(a)
					}
				case ir.OpConst, ir.OpAddrGlobal, ir.OpNop:
				case ir.OpAddrSlot:
				case ir.OpLoad:
					mark(in.A)
				default:
					if in.Op.IsBinary() {
						mark(in.A)
						mark(in.B)
					} else if in.Op.IsUnary() {
						mark(in.A)
					}
				}
			}
			if b.Term.Kind == ir.TermBr {
				mark(b.Term.Cond)
			}
			if b.Term.Kind == ir.TermRet && b.Term.Val >= 0 {
				mark(b.Term.Val)
			}
		}
		removed := false
		for _, b := range f.Blocks {
			kept := b.Instrs[:0]
			for _, in := range b.Instrs {
				dead := false
				switch in.Op {
				case ir.OpConst, ir.OpAddrGlobal, ir.OpAddrSlot, ir.OpCopy,
					ir.OpNeg, ir.OpNot, ir.OpLoad:
					dead = uses[in.Dst] == 0
				case ir.OpNop:
					dead = true
				default:
					if in.Op.IsBinary() && in.Op != ir.OpDiv && in.Op != ir.OpRem {
						dead = uses[in.Dst] == 0
					}
				}
				if in.Op == ir.OpCopy && in.A == in.Dst {
					dead = true
				}
				if dead {
					removed = true
					continue
				}
				kept = append(kept, in)
			}
			b.Instrs = kept
		}
		if !removed {
			return
		}
	}
}

// removeUnreachable drops blocks not reachable from the entry and prunes
// loop annotations that lost blocks.
func removeUnreachable(f *ir.Func) {
	reach := map[*ir.Block]bool{}
	var walk func(b *ir.Block)
	walk = func(b *ir.Block) {
		if reach[b] {
			return
		}
		reach[b] = true
		for _, s := range b.Succs() {
			walk(s)
		}
	}
	walk(f.Entry())
	if len(reach) == len(f.Blocks) {
		return
	}
	kept := f.Blocks[:0]
	for _, b := range f.Blocks {
		if reach[b] {
			kept = append(kept, b)
		}
	}
	f.Blocks = kept
	f.Renumber()
	var loops []ir.Loop
	for _, l := range f.Loops {
		if !reach[l.Header] || !reach[l.Latch] {
			continue
		}
		var blocks []*ir.Block
		for _, b := range l.Blocks {
			if reach[b] {
				blocks = append(blocks, b)
			}
		}
		l.Blocks = blocks
		loops = append(loops, l)
	}
	f.Loops = loops
}
