package compiler

import (
	"strings"
	"testing"
	"testing/quick"

	"biaslab/internal/ir"
)

// countOps tallies IR opcodes in a function.
func countOps(f *ir.Func) map[ir.Op]int {
	out := map[ir.Op]int{}
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			out[in.Op]++
		}
	}
	return out
}

func TestLVNConstantPropagationThroughCopies(t *testing.T) {
	// x = 6; y = x; z = y * 7 → z should fold to 42.
	p := lowerSrc(t, `void main() { int x = 6; int y = x; int z = y * 7; checksum(z); }`)
	Optimize(p, Config{Level: O1})
	ops := countOps(p.FindFunc("main"))
	if ops[ir.OpMul] != 0 {
		t.Errorf("multiply survived const+copy propagation: %v", ops)
	}
	if got, want := runIR(t, p), ir.MixChecksum(0, 42); got != want {
		t.Errorf("semantics broken: %d vs %d", got, want)
	}
}

func TestLVNAlgebraicIdentities(t *testing.T) {
	cases := map[string]string{
		"add zero":   `void main() { int x = 9; int y = x + 0; checksum(y); }`,
		"mul one":    `void main() { int x = 9; int y = x * 1; checksum(y); }`,
		"sub self":   `void main() { int x = 9; checksum(x - x + 9); }`,
		"xor self":   `void main() { int x = 9; checksum((x ^ x) + 9); }`,
		"div one":    `void main() { int x = 9; checksum(x / 1); }`,
		"shift zero": `void main() { int x = 9; checksum(x << 0); }`,
	}
	for name, src := range cases {
		p := lowerSrc(t, src)
		Optimize(p, Config{Level: O2})
		ops := countOps(p.FindFunc("main"))
		if ops[ir.OpAdd]+ops[ir.OpSub]+ops[ir.OpMul]+ops[ir.OpDiv]+ops[ir.OpXor]+ops[ir.OpShl] != 0 {
			t.Errorf("%s: arithmetic survived simplification: %v", name, ops)
		}
		if got, want := runIR(t, p), ir.MixChecksum(0, 9); got != want {
			t.Errorf("%s: wrong result", name)
		}
	}
}

func TestCSEEliminatesRepeatedAddresses(t *testing.T) {
	// g[i] read twice in one expression: address computed once at O2.
	src := `
int g[8];
void main() {
	int i = 3;
	g[i] = 5;
	checksum(g[i] * g[i]);
}
`
	countAddrs := func(lvl Level) int {
		p := lowerSrc(t, src)
		Optimize(p, Config{Level: lvl})
		return countOps(p.FindFunc("main"))[ir.OpAddrGlobal]
	}
	o1, o2 := countAddrs(O1), countAddrs(O2)
	if o2 >= o1 {
		t.Errorf("CSE did not reduce address computations: O1=%d O2=%d", o1, o2)
	}
}

func TestDivByZeroNotFolded(t *testing.T) {
	// Constant 1/0 must keep the trap, not fold to garbage.
	p := lowerSrc(t, `void main() { int z = 0; hide(1 / z); } void hide(int x) {}`)
	Optimize(p, Config{Level: O2})
	ops := countOps(p.FindFunc("main"))
	if ops[ir.OpDiv] != 1 {
		t.Errorf("div by constant zero was folded away: %v", ops)
	}
	it, err := ir.NewInterp(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := it.Run(); err == nil {
		t.Error("optimized program lost its divide-by-zero trap")
	}
}

func TestUnreachableBlocksRemoved(t *testing.T) {
	src := `
void main() {
	checksum(1);
	return;
}
`
	p := lowerSrc(t, src)
	before := len(p.FindFunc("main").Blocks)
	Optimize(p, Config{Level: O1})
	after := len(p.FindFunc("main").Blocks)
	if after >= before {
		t.Errorf("dead blocks not removed: %d → %d", before, after)
	}
}

func TestInlineRecursionDetection(t *testing.T) {
	// Mutual recursion must be detected and left alone.
	src := `
int even(int n) { if (n == 0) { return 1; } return odd(n - 1); }
int odd(int n) { if (n == 0) { return 0; } return even(n - 1); }
void main() { checksum(even(10)); checksum(odd(7)); }
`
	p := lowerSrc(t, src)
	Optimize(p, Config{Level: O3, Personality: ICC})
	if err := p.Verify(); err != nil {
		t.Fatalf("mutual recursion broke inlining: %v", err)
	}
	want := ir.MixChecksum(ir.MixChecksum(0, 1), 1)
	if got := runIR(t, p); got != want {
		t.Errorf("wrong result after optimization: %d vs %d", got, want)
	}
}

func TestInlineBudgetRespected(t *testing.T) {
	// A large callee must not be inlined under the gcc budget.
	var body string
	for i := 0; i < 40; i++ {
		body += "\tx = x * 3 + 1;\n\tx = x & 65535;\n"
	}
	src := `
int big(int x) {
` + body + `	return x;
}
void main() { checksum(big(7)); }
`
	p := lowerSrc(t, src)
	Optimize(p, Config{Level: O3, Personality: GCC})
	found := false
	for _, b := range p.FindFunc("main").Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpCall && in.Sym == "big" {
				found = true
			}
		}
	}
	if !found {
		t.Error("oversized callee was inlined despite the budget")
	}
}

func TestUnrollEligibility(t *testing.T) {
	// A loop containing continue (extra edge to the header) must not be
	// unrolled; semantics must hold either way.
	src := `
void main() {
	int sum = 0;
	for (int i = 0; i < 20; i++) {
		if (i % 3 == 0) { continue; }
		sum += i;
	}
	checksum(sum);
}
`
	base := runIR(t, lowerSrc(t, src))
	p := lowerSrc(t, src)
	Optimize(p, Config{Level: O3, Personality: ICC})
	if got := runIR(t, p); got != base {
		t.Errorf("continue-loop broken by O3: %d vs %d", got, base)
	}
}

func TestUnrollProperty(t *testing.T) {
	// Property: for random trip counts, the unrolled loop sums correctly.
	f := func(nRaw uint8) bool {
		n := int(nRaw % 50)
		src := lowerSrcHelper(t, n)
		p := lowerSrc(t, src)
		Optimize(p, Config{Level: O3, Personality: ICC})
		want := int64(0)
		for i := 0; i < n; i++ {
			want += int64(i * i)
		}
		return runIR(t, p) == ir.MixChecksum(0, uint64(want))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}

func lowerSrcHelper(t *testing.T, n int) string {
	t.Helper()
	return `
void main() {
	int sum = 0;
	for (int i = 0; i < ` + itoa(n) + `; i++) {
		sum += i * i;
	}
	checksum(sum);
}
`
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var digits []byte
	for n > 0 {
		digits = append([]byte{byte('0' + n%10)}, digits...)
		n /= 10
	}
	return string(digits)
}

func TestOptimizeO0IsIdentity(t *testing.T) {
	p1 := lowerSrc(t, loopSrc)
	p2 := lowerSrc(t, loopSrc)
	Optimize(p2, Config{Level: O0})
	if countInstrs(p1) != countInstrs(p2) {
		t.Error("O0 changed the program")
	}
}

func TestLoopAnnotationsSurviveCleanup(t *testing.T) {
	p := lowerSrc(t, loopSrc)
	Optimize(p, Config{Level: O2})
	main := p.FindFunc("main")
	if len(main.Loops) == 0 {
		t.Fatal("loop annotations lost during O2 cleanup")
	}
	for _, l := range main.Loops {
		if l.Header == nil {
			t.Error("loop header nil")
		}
		// Every annotated block must still be in the function.
		present := map[*ir.Block]bool{}
		for _, b := range main.Blocks {
			present[b] = true
		}
		if !present[l.Header] {
			t.Error("loop header not in function blocks")
		}
	}
}

func TestPersonalitiesProduceDifferentCode(t *testing.T) {
	// gcc and icc at O3 must actually differ (different unroll factors and
	// alignment), otherwise T4 tests nothing.
	size := func(pers Personality) int {
		objs, _, err := Compile([]Source{{Name: "l.cm", Text: loopSrc}}, Config{Level: O3, Personality: pers})
		if err != nil {
			t.Fatal(err)
		}
		return len(objs[0].Text)
	}
	if size(GCC) == size(ICC) {
		t.Error("gcc and icc personalities produced identical code size")
	}
}

func TestCompileErrorsSurfaceCleanly(t *testing.T) {
	_, _, err := Compile([]Source{{Name: "x.cm", Text: "int f( {"}}, Config{})
	if err == nil || !strings.Contains(err.Error(), "x.cm") {
		t.Errorf("parse error lacks location: %v", err)
	}
}
