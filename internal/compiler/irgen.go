package compiler

import (
	"encoding/binary"
	"fmt"

	"biaslab/internal/cmini"
	"biaslab/internal/ir"
)

// Source is one translation unit's input.
type Source struct {
	Name string
	Text string
}

// Frontend parses and type-checks the sources.
func Frontend(sources []Source) (*cmini.Unit, error) {
	files := make([]*cmini.File, len(sources))
	for i, s := range sources {
		f, err := cmini.ParseFile(s.Name, s.Text)
		if err != nil {
			return nil, err
		}
		files[i] = f
	}
	return cmini.Check(files)
}

// Lower translates a checked unit into an IR program, one module per file.
func Lower(u *cmini.Unit) (*ir.Program, error) {
	p := &ir.Program{}
	for _, f := range u.Files {
		m := &ir.Module{Name: f.Name}
		for _, g := range f.Globals {
			m.Globals = append(m.Globals, lowerGlobal(g))
		}
		for _, fn := range f.Funcs {
			irf, err := lowerFunc(fn)
			if err != nil {
				return nil, err
			}
			m.Funcs = append(m.Funcs, irf)
		}
		p.Modules = append(p.Modules, m)
	}
	if err := p.Verify(); err != nil {
		return nil, fmt.Errorf("compiler: lowering produced invalid IR: %w", err)
	}
	return p, nil
}

func lowerGlobal(g *cmini.VarDecl) *ir.Global {
	out := &ir.Global{Name: g.Name, Size: g.StorageSize(), Align: 8}
	if out.Size == 1 {
		out.Align = 1
	}
	if g.Init != nil {
		v := g.Init.(*cmini.IntLit).Val
		switch g.Type.Size() {
		case 1:
			out.Init = []byte{byte(v)}
		default:
			out.Init = binary.LittleEndian.AppendUint64(nil, uint64(v))
		}
	}
	return out
}

// loopCtx tracks break/continue targets while lowering a loop body.
type loopCtx struct {
	brk  *ir.Block // break target
	cont *ir.Block // continue target
}

type lowerer struct {
	b     *ir.Builder
	fn    *cmini.FuncDecl
	vregs map[*cmini.Symbol]ir.VReg // scalar homes
	slots map[*cmini.Symbol]int     // arrays and address-taken scalars
	taken map[*cmini.Symbol]bool    // address-taken scalars
	loops []loopCtx
}

func lowerFunc(fn *cmini.FuncDecl) (f *ir.Func, err error) {
	defer func() {
		if r := recover(); r != nil {
			if le, ok := r.(*lowerError); ok {
				err = le.err
				return
			}
			panic(r)
		}
	}()
	lo := &lowerer{
		b:     ir.NewFunc(fn.Name, len(fn.Params), fn.Ret != cmini.TypeVoid),
		fn:    fn,
		vregs: map[*cmini.Symbol]ir.VReg{},
		slots: map[*cmini.Symbol]int{},
		taken: map[*cmini.Symbol]bool{},
	}
	findAddressTaken(fn.Body, lo.taken)
	for i := range fn.Params {
		sym := fn.Params[i].Sym
		if lo.taken[sym] {
			// Address-taken parameter: give it a slot and spill the
			// incoming value at entry.
			slot := lo.b.NewSlot(sym.Name, sym.Type.Size(), sym.Type.Size())
			lo.slots[sym] = slot
			addr := lo.b.AddrSlot(slot, 0)
			lo.b.Store(addr, 0, ir.VReg(i), uint8(sym.Type.Size()))
		} else {
			lo.vregs[sym] = ir.VReg(i)
		}
	}
	lo.stmt(fn.Body)
	// Seal every block still carrying the builder's placeholder terminator
	// (Ret with no value). For void functions that placeholder is already a
	// valid return; for value-returning functions, falling off the end
	// returns 0 (the checker does not do flow-sensitive return analysis,
	// matching C89 latitude), and unreachable join/dead blocks get the same
	// treatment so the IR verifies.
	if fn.Ret != cmini.TypeVoid {
		for _, blk := range lo.b.F.Blocks {
			if blk.Term.Kind == ir.TermRet && blk.Term.Val < 0 {
				lo.b.SetBlock(blk)
				z := lo.b.Const(0)
				lo.b.Ret(z)
			}
		}
	}
	return lo.b.F, nil
}

type lowerError struct{ err error }

func (lo *lowerer) failf(pos cmini.Pos, format string, args ...any) {
	panic(&lowerError{fmt.Errorf("%s: %s", pos, fmt.Sprintf(format, args...))})
}

// findAddressTaken marks scalar symbols whose address is taken with &x.
func findAddressTaken(s cmini.Stmt, out map[*cmini.Symbol]bool) {
	var walkExpr func(e cmini.Expr)
	walkExpr = func(e cmini.Expr) {
		switch x := e.(type) {
		case *cmini.UnaryExpr:
			if x.Op == cmini.Amp {
				if id, ok := x.X.(*cmini.Ident); ok && !id.Sym.IsArray && id.Sym.Kind != cmini.SymGlobal {
					out[id.Sym] = true
				}
			}
			walkExpr(x.X)
		case *cmini.BinaryExpr:
			walkExpr(x.X)
			walkExpr(x.Y)
		case *cmini.IndexExpr:
			walkExpr(x.X)
			walkExpr(x.I)
		case *cmini.CallExpr:
			for _, a := range x.Args {
				walkExpr(a)
			}
		}
	}
	var walk func(s cmini.Stmt)
	walk = func(s cmini.Stmt) {
		switch st := s.(type) {
		case *cmini.BlockStmt:
			for _, c := range st.List {
				walk(c)
			}
		case *cmini.DeclStmt:
			if st.Decl.Init != nil {
				walkExpr(st.Decl.Init)
			}
		case *cmini.AssignStmt:
			walkExpr(st.LHS)
			if st.RHS != nil {
				walkExpr(st.RHS)
			}
		case *cmini.ExprStmt:
			walkExpr(st.X)
		case *cmini.IfStmt:
			walkExpr(st.Cond)
			walk(st.Then)
			if st.Else != nil {
				walk(st.Else)
			}
		case *cmini.WhileStmt:
			walkExpr(st.Cond)
			walk(st.Body)
		case *cmini.ForStmt:
			if st.Init != nil {
				walk(st.Init)
			}
			if st.Cond != nil {
				walkExpr(st.Cond)
			}
			if st.Post != nil {
				walk(st.Post)
			}
			walk(st.Body)
		case *cmini.ReturnStmt:
			if st.X != nil {
				walkExpr(st.X)
			}
		}
	}
	if s != nil {
		walk(s)
	}
}

func (lo *lowerer) stmt(s cmini.Stmt) {
	switch st := s.(type) {
	case *cmini.BlockStmt:
		for _, c := range st.List {
			lo.stmt(c)
		}
	case *cmini.DeclStmt:
		lo.declStmt(st.Decl)
	case *cmini.AssignStmt:
		lo.assign(st)
	case *cmini.ExprStmt:
		lo.expr(st.X)
	case *cmini.IfStmt:
		lo.ifStmt(st)
	case *cmini.WhileStmt:
		lo.whileStmt(st)
	case *cmini.ForStmt:
		lo.forStmt(st)
	case *cmini.ReturnStmt:
		if st.X != nil {
			v := lo.expr(st.X)
			lo.b.Ret(v)
		} else {
			lo.b.Ret(-1)
		}
		// Statements after a return are unreachable; park them in a fresh
		// block so lowering remains well-formed.
		dead := lo.b.NewBlock("dead")
		lo.b.SetBlock(dead)
	case *cmini.BreakStmt:
		lo.b.Jmp(lo.loops[len(lo.loops)-1].brk)
		dead := lo.b.NewBlock("dead")
		lo.b.SetBlock(dead)
	case *cmini.ContinueStmt:
		lo.b.Jmp(lo.loops[len(lo.loops)-1].cont)
		dead := lo.b.NewBlock("dead")
		lo.b.SetBlock(dead)
	default:
		lo.failf(s.Pos(), "compiler: unknown statement %T", s)
	}
}

func (lo *lowerer) declStmt(d *cmini.VarDecl) {
	sym := d.Sym
	if sym.IsArray || lo.taken[sym] {
		size := d.StorageSize()
		align := d.Type.Size()
		slot := lo.b.NewSlot(d.Name, size, align)
		lo.slots[sym] = slot
		if d.Init != nil {
			v := lo.expr(d.Init)
			addr := lo.b.AddrSlot(slot, 0)
			lo.b.Store(addr, 0, v, uint8(d.Type.Size()))
		}
		return
	}
	home := lo.b.F.NewVReg()
	lo.vregs[sym] = home
	if d.Init != nil {
		v := lo.expr(d.Init)
		lo.b.CopyTo(home, v)
	} else {
		z := lo.b.Const(0)
		lo.b.CopyTo(home, z)
	}
}

func (lo *lowerer) ifStmt(st *cmini.IfStmt) {
	cond := lo.expr(st.Cond)
	thenB := lo.b.NewBlock("then")
	var elseB *ir.Block
	join := lo.b.NewBlock("join")
	if st.Else != nil {
		elseB = lo.b.NewBlock("else")
		lo.b.Br(cond, thenB, elseB)
	} else {
		lo.b.Br(cond, thenB, join)
	}
	lo.b.SetBlock(thenB)
	lo.stmt(st.Then)
	lo.b.Jmp(join)
	if st.Else != nil {
		lo.b.SetBlock(elseB)
		lo.stmt(st.Else)
		lo.b.Jmp(join)
	}
	lo.b.SetBlock(join)
}

func (lo *lowerer) whileStmt(st *cmini.WhileStmt) {
	header := lo.b.NewBlock("while")
	body := lo.b.NewBlock("body")
	exit := lo.b.NewBlock("endwhile")
	lo.b.Jmp(header)

	lo.b.SetBlock(header)
	cond := lo.expr(st.Cond)
	lo.b.Br(cond, body, exit)

	startIdx := len(lo.b.F.Blocks)
	lo.b.SetBlock(body)
	lo.loops = append(lo.loops, loopCtx{brk: exit, cont: header})
	lo.stmt(st.Body)
	lo.loops = lo.loops[:len(lo.loops)-1]
	latch := lo.b.Block()
	lo.b.Jmp(header)

	blocks := append([]*ir.Block{body}, lo.b.F.Blocks[startIdx:]...)
	lo.b.F.Loops = append(lo.b.F.Loops, ir.Loop{Header: header, Latch: latch, Exit: exit, Blocks: blocks})
	lo.b.SetBlock(exit)
}

func (lo *lowerer) forStmt(st *cmini.ForStmt) {
	if st.Init != nil {
		lo.stmt(st.Init)
	}
	header := lo.b.NewBlock("for")
	body := lo.b.NewBlock("body")
	post := lo.b.NewBlock("post")
	exit := lo.b.NewBlock("endfor")
	lo.b.Jmp(header)

	lo.b.SetBlock(header)
	if st.Cond != nil {
		cond := lo.expr(st.Cond)
		lo.b.Br(cond, body, exit)
	} else {
		lo.b.Jmp(body)
	}

	startIdx := len(lo.b.F.Blocks)
	lo.b.SetBlock(body)
	lo.loops = append(lo.loops, loopCtx{brk: exit, cont: post})
	lo.stmt(st.Body)
	lo.loops = lo.loops[:len(lo.loops)-1]
	lo.b.Jmp(post)

	lo.b.SetBlock(post)
	if st.Post != nil {
		lo.stmt(st.Post)
	}
	latch := lo.b.Block()
	lo.b.Jmp(header)

	blocks := append([]*ir.Block{body}, lo.b.F.Blocks[startIdx:]...)
	blocks = append(blocks, post)
	// post was created before startIdx blocks? It was created before body's
	// children, so include explicitly (appended above) and dedupe.
	blocks = dedupBlocks(blocks)
	lo.b.F.Loops = append(lo.b.F.Loops, ir.Loop{Header: header, Latch: latch, Exit: exit, Blocks: blocks})
	lo.b.SetBlock(exit)
}

func dedupBlocks(bs []*ir.Block) []*ir.Block {
	seen := map[*ir.Block]bool{}
	out := bs[:0]
	for _, b := range bs {
		if !seen[b] {
			seen[b] = true
			out = append(out, b)
		}
	}
	return out
}

// location describes where an lvalue lives.
type location struct {
	isVReg bool
	vreg   ir.VReg
	addr   ir.VReg // base address (when !isVReg)
	size   uint8
	signed bool
	// elemSize for pointer ++/--: how much one unit advances the value.
	ptrStep int64
}

func (lo *lowerer) lvalue(e cmini.Expr) location {
	switch x := e.(type) {
	case *cmini.Ident:
		sym := x.Sym
		step := int64(1)
		if x.Type().IsPtr() {
			step = x.Type().Elem().Size()
		}
		if sym.Kind == cmini.SymGlobal && !sym.IsArray {
			addr := lo.b.AddrGlobal(sym.Name, 0)
			return location{addr: addr, size: uint8(sym.Type.Size()), signed: sym.Type == cmini.TypeInt, ptrStep: step}
		}
		if slot, ok := lo.slots[sym]; ok {
			addr := lo.b.AddrSlot(slot, 0)
			return location{addr: addr, size: uint8(sym.Type.Size()), signed: sym.Type == cmini.TypeInt, ptrStep: step}
		}
		return location{isVReg: true, vreg: lo.vregs[sym], size: uint8(sym.Type.Size()), signed: true, ptrStep: step}
	case *cmini.IndexExpr:
		addr := lo.indexAddr(x)
		t := x.Type()
		step := int64(1)
		if t.IsPtr() {
			step = t.Elem().Size()
		}
		return location{addr: addr, size: uint8(t.Size()), signed: t.Kind == cmini.KindInt && !t.IsPtr(), ptrStep: step}
	case *cmini.UnaryExpr:
		if x.Op == cmini.Star {
			addr := lo.expr(x.X)
			t := x.Type()
			step := int64(1)
			if t.IsPtr() {
				step = t.Elem().Size()
			}
			return location{addr: addr, size: uint8(t.Size()), signed: t.Kind == cmini.KindInt && !t.IsPtr(), ptrStep: step}
		}
	}
	lo.failf(e.Pos(), "not an lvalue")
	return location{}
}

func (lo *lowerer) loadLoc(loc location) ir.VReg {
	if loc.isVReg {
		return loc.vreg
	}
	return lo.b.Load(loc.addr, 0, loc.size, loc.signed)
}

func (lo *lowerer) storeLoc(loc location, v ir.VReg) {
	if loc.isVReg {
		lo.b.CopyTo(loc.vreg, v)
		return
	}
	lo.b.Store(loc.addr, 0, v, loc.size)
}

func (lo *lowerer) assign(st *cmini.AssignStmt) {
	loc := lo.lvalue(st.LHS)
	switch st.Op {
	case cmini.Assign:
		v := lo.expr(st.RHS)
		lo.storeLoc(loc, v)
	case cmini.PlusEq, cmini.MinusEq, cmini.StarEq:
		cur := lo.loadLoc(loc)
		rhs := lo.expr(st.RHS)
		if st.LHS.Type().IsPtr() && st.Op != cmini.StarEq {
			scale := lo.b.Const(st.LHS.Type().Elem().Size())
			rhs = lo.b.Bin(ir.OpMul, rhs, scale)
		}
		var op ir.Op
		switch st.Op {
		case cmini.PlusEq:
			op = ir.OpAdd
		case cmini.MinusEq:
			op = ir.OpSub
		default:
			op = ir.OpMul
		}
		v := lo.b.Bin(op, cur, rhs)
		lo.storeLoc(loc, v)
	case cmini.PlusPlus, cmini.MinusMinus:
		cur := lo.loadLoc(loc)
		step := lo.b.Const(loc.ptrStep)
		op := ir.OpAdd
		if st.Op == cmini.MinusMinus {
			op = ir.OpSub
		}
		v := lo.b.Bin(op, cur, step)
		lo.storeLoc(loc, v)
	default:
		lo.failf(st.Pos(), "bad assignment op %v", st.Op)
	}
}

// indexAddr computes the byte address of x.X[x.I].
func (lo *lowerer) indexAddr(x *cmini.IndexExpr) ir.VReg {
	base := lo.expr(x.X)
	idx := lo.expr(x.I)
	elem := x.X.Type().Elem().Size()
	if elem != 1 {
		scale := lo.b.Const(elem)
		idx = lo.b.Bin(ir.OpMul, idx, scale)
	}
	return lo.b.Bin(ir.OpAdd, base, idx)
}

func (lo *lowerer) expr(e cmini.Expr) ir.VReg {
	switch x := e.(type) {
	case *cmini.IntLit:
		return lo.b.Const(x.Val)
	case *cmini.Ident:
		sym := x.Sym
		if sym.IsArray {
			if sym.Kind == cmini.SymGlobal {
				return lo.b.AddrGlobal(sym.Name, 0)
			}
			return lo.b.AddrSlot(lo.slots[sym], 0)
		}
		if sym.Kind == cmini.SymGlobal {
			addr := lo.b.AddrGlobal(sym.Name, 0)
			return lo.b.Load(addr, 0, uint8(sym.Type.Size()), sym.Type == cmini.TypeInt)
		}
		if slot, ok := lo.slots[sym]; ok {
			addr := lo.b.AddrSlot(slot, 0)
			return lo.b.Load(addr, 0, uint8(sym.Type.Size()), sym.Type == cmini.TypeInt)
		}
		return lo.vregs[sym]
	case *cmini.UnaryExpr:
		return lo.unary(x)
	case *cmini.BinaryExpr:
		return lo.binary(x)
	case *cmini.IndexExpr:
		addr := lo.indexAddr(x)
		t := x.Type()
		return lo.b.Load(addr, 0, uint8(t.Size()), t.Kind == cmini.KindInt && !t.IsPtr())
	case *cmini.CallExpr:
		return lo.call(x)
	}
	lo.failf(e.Pos(), "compiler: unknown expression %T", e)
	return -1
}

func (lo *lowerer) unary(x *cmini.UnaryExpr) ir.VReg {
	switch x.Op {
	case cmini.Minus:
		return lo.b.Unary(ir.OpNeg, lo.expr(x.X))
	case cmini.Tilde:
		return lo.b.Unary(ir.OpNot, lo.expr(x.X))
	case cmini.Bang:
		v := lo.expr(x.X)
		z := lo.b.Const(0)
		return lo.b.Bin(ir.OpEq, v, z)
	case cmini.Star:
		addr := lo.expr(x.X)
		t := x.Type()
		return lo.b.Load(addr, 0, uint8(t.Size()), t.Kind == cmini.KindInt && !t.IsPtr())
	case cmini.Amp:
		switch target := x.X.(type) {
		case *cmini.Ident:
			sym := target.Sym
			if sym.IsArray {
				if sym.Kind == cmini.SymGlobal {
					return lo.b.AddrGlobal(sym.Name, 0)
				}
				return lo.b.AddrSlot(lo.slots[sym], 0)
			}
			if sym.Kind == cmini.SymGlobal {
				return lo.b.AddrGlobal(sym.Name, 0)
			}
			slot, ok := lo.slots[sym]
			if !ok {
				lo.failf(x.Pos(), "internal: address-taken %s has no slot", sym.Name)
			}
			return lo.b.AddrSlot(slot, 0)
		case *cmini.IndexExpr:
			return lo.indexAddr(target)
		}
	}
	lo.failf(x.Pos(), "bad unary %v", x.Op)
	return -1
}

func (lo *lowerer) binary(x *cmini.BinaryExpr) ir.VReg {
	switch x.Op {
	case cmini.AndAnd, cmini.OrOr:
		return lo.shortCircuit(x)
	}
	a := lo.expr(x.X)
	bv := lo.expr(x.Y)
	lt, rt := x.X.Type(), x.Y.Type()

	// Pointer arithmetic scaling.
	if x.Op == cmini.Plus || x.Op == cmini.Minus {
		switch {
		case lt.IsPtr() && !rt.IsPtr():
			if s := lt.Elem().Size(); s != 1 {
				scale := lo.b.Const(s)
				bv = lo.b.Bin(ir.OpMul, bv, scale)
			}
		case !lt.IsPtr() && rt.IsPtr() && x.Op == cmini.Plus:
			if s := rt.Elem().Size(); s != 1 {
				scale := lo.b.Const(s)
				a = lo.b.Bin(ir.OpMul, a, scale)
			}
		case lt.IsPtr() && rt.IsPtr() && x.Op == cmini.Minus:
			diff := lo.b.Bin(ir.OpSub, a, bv)
			if s := lt.Elem().Size(); s != 1 {
				sh := lo.b.Const(log2(s))
				return lo.b.Bin(ir.OpSar, diff, sh)
			}
			return diff
		}
	}

	var op ir.Op
	switch x.Op {
	case cmini.Plus:
		op = ir.OpAdd
	case cmini.Minus:
		op = ir.OpSub
	case cmini.Star:
		op = ir.OpMul
	case cmini.Slash:
		op = ir.OpDiv
	case cmini.Percent:
		op = ir.OpRem
	case cmini.Amp:
		op = ir.OpAnd
	case cmini.Pipe:
		op = ir.OpOr
	case cmini.Caret:
		op = ir.OpXor
	case cmini.Shl:
		op = ir.OpShl
	case cmini.Shr:
		op = ir.OpShr
	case cmini.Eq:
		op = ir.OpEq
	case cmini.Ne:
		op = ir.OpNe
	case cmini.Lt:
		op = ir.OpLt
	case cmini.Le:
		op = ir.OpLe
	case cmini.Gt:
		op = ir.OpGt
	case cmini.Ge:
		op = ir.OpGe
	default:
		lo.failf(x.Pos(), "bad binary %v", x.Op)
	}
	return lo.b.Bin(op, a, bv)
}

func log2(v int64) int64 {
	var n int64
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}

// shortCircuit lowers && and || with control flow into a result register.
func (lo *lowerer) shortCircuit(x *cmini.BinaryExpr) ir.VReg {
	result := lo.b.F.NewVReg()
	a := lo.expr(x.X)
	z := lo.b.Const(0)
	av := lo.b.Bin(ir.OpNe, a, z)
	lo.b.CopyTo(result, av)

	evalY := lo.b.NewBlock("scy")
	join := lo.b.NewBlock("scjoin")
	if x.Op == cmini.AndAnd {
		lo.b.Br(av, evalY, join)
	} else {
		lo.b.Br(av, join, evalY)
	}
	lo.b.SetBlock(evalY)
	bval := lo.expr(x.Y)
	z2 := lo.b.Const(0)
	bv := lo.b.Bin(ir.OpNe, bval, z2)
	lo.b.CopyTo(result, bv)
	lo.b.Jmp(join)
	lo.b.SetBlock(join)
	return result
}

func (lo *lowerer) call(x *cmini.CallExpr) ir.VReg {
	args := make([]ir.VReg, len(x.Args))
	for i, a := range x.Args {
		args[i] = lo.expr(a)
	}
	if x.Builtin != cmini.NotBuiltin {
		switch x.Builtin {
		case cmini.BuiltinPrint:
			return lo.b.Sys(1, args...)
		case cmini.BuiltinPutc:
			return lo.b.Sys(2, args...)
		case cmini.BuiltinChecksum:
			return lo.b.Sys(3, args...)
		case cmini.BuiltinCycles:
			return lo.b.Sys(4)
		}
	}
	if len(args) > 6 {
		lo.failf(x.Pos(), "calls support at most 6 arguments")
	}
	hasResult := x.Fn.Ret != cmini.TypeVoid
	return lo.b.Call(x.Name, hasResult, args...)
}
