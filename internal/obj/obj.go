// Package obj defines the relocatable object format produced by the compiler
// and consumed by the linker. An Object holds one translation unit's text
// and data images, the symbols defined in them, and the relocations that
// must be patched once the linker assigns final addresses.
//
// The format is deliberately ELF-shaped in miniature: named sections,
// symbols with section-relative offsets, and typed relocations. Because the
// linker lays out objects in command-line order, the object boundaries are
// what make link order an experimental variable.
package obj

import "fmt"

// SectionKind identifies one of the three section types.
type SectionKind uint8

const (
	SecText SectionKind = iota
	SecData
	SecBSS
)

func (k SectionKind) String() string {
	switch k {
	case SecText:
		return ".text"
	case SecData:
		return ".data"
	case SecBSS:
		return ".bss"
	}
	return ".sec?"
}

// SymKind classifies symbols.
type SymKind uint8

const (
	SymFunc SymKind = iota
	SymData
)

// Symbol is a named location within a section of this object.
type Symbol struct {
	Name    string
	Kind    SymKind
	Section SectionKind
	Offset  uint64 // section-relative
	Size    uint64
	Align   uint64 // required alignment of the symbol's start
}

// RelocKind identifies how a relocation patches the instruction or datum at
// its offset.
type RelocKind uint8

const (
	// RelocJal26 patches the imm26 field of a jal with the target's word
	// address (byte address / 4).
	RelocJal26 RelocKind = iota
	// RelocHi16 patches a lui imm16 with bits [31:16] of the target address.
	RelocHi16
	// RelocLo16 patches an ori imm16 with bits [15:0] of the target address.
	RelocLo16
	// RelocAbs64 patches 8 bytes of data with the target's absolute address.
	RelocAbs64
)

func (k RelocKind) String() string {
	switch k {
	case RelocJal26:
		return "jal26"
	case RelocHi16:
		return "hi16"
	case RelocLo16:
		return "lo16"
	case RelocAbs64:
		return "abs64"
	}
	return "reloc?"
}

// Reloc records that the word at Offset within Section must be patched with
// the final address of Sym plus Addend.
type Reloc struct {
	Kind    RelocKind
	Section SectionKind
	Offset  uint64
	Sym     string
	Addend  int64
}

// Object is one relocatable translation unit.
type Object struct {
	Name    string
	Text    []byte
	Data    []byte
	BSSSize uint64
	Symbols []Symbol
	Relocs  []Reloc
}

// Symbol returns the symbol named name, or nil.
func (o *Object) Symbol(name string) *Symbol {
	for i := range o.Symbols {
		if o.Symbols[i].Name == name {
			return &o.Symbols[i]
		}
	}
	return nil
}

// AddSymbol registers a symbol, rejecting duplicates within the object.
func (o *Object) AddSymbol(s Symbol) error {
	if o.Symbol(s.Name) != nil {
		return fmt.Errorf("obj: duplicate symbol %s in %s", s.Name, o.Name)
	}
	o.Symbols = append(o.Symbols, s)
	return nil
}

// Validate checks internal consistency: symbol and relocation offsets within
// bounds and alignments that are powers of two.
func (o *Object) Validate() error {
	secSize := func(k SectionKind) uint64 {
		switch k {
		case SecText:
			return uint64(len(o.Text))
		case SecData:
			return uint64(len(o.Data))
		default:
			return o.BSSSize
		}
	}
	for _, s := range o.Symbols {
		if s.Offset > secSize(s.Section) {
			return fmt.Errorf("obj: %s: symbol %s offset %d beyond %s size %d", o.Name, s.Name, s.Offset, s.Section, secSize(s.Section))
		}
		if s.Align != 0 && s.Align&(s.Align-1) != 0 {
			return fmt.Errorf("obj: %s: symbol %s alignment %d not a power of two", o.Name, s.Name, s.Align)
		}
	}
	for _, r := range o.Relocs {
		need := uint64(4)
		if r.Kind == RelocAbs64 {
			need = 8
		}
		if r.Offset+need > secSize(r.Section) {
			return fmt.Errorf("obj: %s: relocation at %s+%d overruns section", o.Name, r.Section, r.Offset)
		}
		if r.Sym == "" {
			return fmt.Errorf("obj: %s: relocation with empty symbol", o.Name)
		}
	}
	return nil
}
