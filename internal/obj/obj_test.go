package obj

import (
	"strings"
	"testing"
)

func TestAddSymbolDuplicate(t *testing.T) {
	o := &Object{Name: "u.o", Text: make([]byte, 16)}
	if err := o.AddSymbol(Symbol{Name: "f", Section: SecText}); err != nil {
		t.Fatal(err)
	}
	if err := o.AddSymbol(Symbol{Name: "f", Section: SecText}); err == nil {
		t.Error("expected duplicate-symbol error")
	}
	if o.Symbol("f") == nil || o.Symbol("g") != nil {
		t.Error("Symbol lookup wrong")
	}
}

func TestValidate(t *testing.T) {
	o := &Object{
		Name: "u.o",
		Text: make([]byte, 32),
		Data: make([]byte, 8),
	}
	o.Symbols = []Symbol{
		{Name: "f", Kind: SymFunc, Section: SecText, Offset: 0, Size: 32, Align: 4},
		{Name: "g", Kind: SymData, Section: SecData, Offset: 0, Size: 8, Align: 8},
	}
	o.Relocs = []Reloc{
		{Kind: RelocJal26, Section: SecText, Offset: 8, Sym: "f"},
		{Kind: RelocAbs64, Section: SecData, Offset: 0, Sym: "g"},
	}
	if err := o.Validate(); err != nil {
		t.Fatalf("valid object rejected: %v", err)
	}

	bad := *o
	bad.Symbols = append([]Symbol{}, o.Symbols...)
	bad.Symbols[0].Offset = 100
	if err := bad.Validate(); err == nil || !strings.Contains(err.Error(), "beyond") {
		t.Errorf("offset overflow not caught: %v", err)
	}

	bad2 := *o
	bad2.Symbols = []Symbol{{Name: "h", Section: SecText, Align: 3}}
	if err := bad2.Validate(); err == nil || !strings.Contains(err.Error(), "power of two") {
		t.Errorf("bad alignment not caught: %v", err)
	}

	bad3 := *o
	bad3.Relocs = []Reloc{{Kind: RelocJal26, Section: SecText, Offset: 30, Sym: "f"}}
	if err := bad3.Validate(); err == nil || !strings.Contains(err.Error(), "overruns") {
		t.Errorf("reloc overrun not caught: %v", err)
	}

	bad4 := *o
	bad4.Relocs = []Reloc{{Kind: RelocJal26, Section: SecText, Offset: 0}}
	if err := bad4.Validate(); err == nil || !strings.Contains(err.Error(), "empty symbol") {
		t.Errorf("empty reloc sym not caught: %v", err)
	}
}

func TestStringers(t *testing.T) {
	if SecText.String() != ".text" || SecBSS.String() != ".bss" {
		t.Error("section names wrong")
	}
	if RelocHi16.String() != "hi16" || RelocAbs64.String() != "abs64" {
		t.Error("reloc names wrong")
	}
}
