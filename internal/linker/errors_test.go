package linker

import (
	"errors"
	"testing"

	"biaslab/internal/compiler"
	"biaslab/internal/obj"
)

// TestSentinelErrors pins the typed-error contract: every linker failure
// class is classifiable with errors.Is, no message parsing required.
func TestSentinelErrors(t *testing.T) {
	objs := compileObjs(t, compiler.Config{}, mainSrc, helperSrc)

	dup := compileObjs(t, compiler.Config{}, `void main() {}`)
	if _, err := Link([]*obj.Object{objs[0], objs[1], dup[0]}, Options{}); !errors.Is(err, ErrDuplicateSymbol) {
		t.Errorf("duplicate main: err = %v, want ErrDuplicateSymbol", err)
	}

	// helper dropped from the link line: the call site cannot resolve.
	if _, err := Link([]*obj.Object{objs[0]}, Options{}); !errors.Is(err, ErrUndefinedSymbol) {
		t.Errorf("missing helper: err = %v, want ErrUndefinedSymbol", err)
	}

	// No main at all: crt0's call to main is the unresolved reference.
	if _, err := Link([]*obj.Object{objs[1]}, Options{}); !errors.Is(err, ErrUndefinedSymbol) {
		t.Errorf("missing main: err = %v, want ErrUndefinedSymbol", err)
	}

	// A relocation in bss can never be applied.
	bad := compileObjs(t, compiler.Config{}, mainSrc, helperSrc)
	bad[1].Relocs = append(bad[1].Relocs, obj.Reloc{
		Kind: obj.RelocAbs64, Section: obj.SecBSS, Offset: 0, Sym: "main",
	})
	if _, err := Link(bad, Options{}); !errors.Is(err, ErrBadRelocation) {
		t.Errorf("bss relocation: err = %v, want ErrBadRelocation", err)
	}
}
