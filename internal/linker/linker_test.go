package linker

import (
	"strings"
	"testing"

	"biaslab/internal/compiler"
	"biaslab/internal/obj"
)

func compileObjs(t *testing.T, cfg compiler.Config, srcs ...string) []*obj.Object {
	t.Helper()
	sources := make([]compiler.Source, len(srcs))
	for i, s := range srcs {
		sources[i] = compiler.Source{Name: "u" + string(rune('0'+i)) + ".cm", Text: s}
	}
	objs, _, err := compiler.Compile(sources, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return objs
}

const mainSrc = `void main() { helper(); checksum(1); }`
const helperSrc = `int hstate; void helper() { hstate = 7; }`

func TestLinkBasics(t *testing.T) {
	objs := compileObjs(t, compiler.Config{Level: compiler.O2}, mainSrc, helperSrc)
	exe, err := Link(objs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if exe.Entry != exe.Symbols["_start"] {
		t.Error("entry is not _start")
	}
	for _, sym := range []string{"_start", "main", "helper", "hstate"} {
		if _, ok := exe.Symbols[sym]; !ok {
			t.Errorf("missing symbol %s", sym)
		}
	}
	if exe.Symbols["main"] < exe.TextBase {
		t.Error("main below text base")
	}
	if exe.DataBase%PageSize != 0 || exe.BSSBase%PageSize != 0 {
		t.Error("data/bss not page aligned")
	}
	// hstate is zero-initialized → bss.
	if a := exe.Symbols["hstate"]; a < exe.BSSBase || a >= exe.BSSBase+exe.BSSSize {
		t.Errorf("hstate at %#x outside bss [%#x,%#x)", a, exe.BSSBase, exe.BSSBase+exe.BSSSize)
	}
	if f := exe.FuncAt(exe.Symbols["main"]); f == nil || f.Name != "main" {
		t.Error("FuncAt(main) wrong")
	}
	if f := exe.FuncAt(exe.TextBase - 4); f != nil {
		t.Error("FuncAt below text should be nil")
	}
}

func TestLinkOrderMovesFunctions(t *testing.T) {
	objs := compileObjs(t, compiler.Config{Level: compiler.O2}, mainSrc, helperSrc)
	ab, err := Link([]*obj.Object{objs[0], objs[1]}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ba, err := Link([]*obj.Object{objs[1], objs[0]}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ab.Symbols["helper"] == ba.Symbols["helper"] {
		t.Error("link order did not move helper")
	}
	// Both must still resolve and keep functions inside text.
	for _, exe := range []*Executable{ab, ba} {
		end := exe.TextBase + uint64(len(exe.Text))
		for _, f := range exe.Funcs {
			if f.Addr < exe.TextBase || f.Addr+f.Size > end {
				t.Errorf("func %s out of text range", f.Name)
			}
		}
	}
}

func TestLinkDuplicateSymbol(t *testing.T) {
	objs := compileObjs(t, compiler.Config{}, mainSrc, helperSrc)
	dup := compileObjs(t, compiler.Config{}, `void main() {}`)
	_, err := Link([]*obj.Object{objs[0], objs[1], dup[0]}, Options{})
	if err == nil || !strings.Contains(err.Error(), "defined in both") {
		t.Errorf("duplicate symbol not detected: %v", err)
	}
}

func TestLinkUndefinedSymbol(t *testing.T) {
	// Object calling a function that exists at compile time but is then
	// dropped from the link line.
	objs := compileObjs(t, compiler.Config{}, mainSrc, helperSrc)
	_, err := Link([]*obj.Object{objs[0]}, Options{})
	if err == nil || !strings.Contains(err.Error(), "undefined symbol") {
		t.Errorf("undefined symbol not detected: %v", err)
	}
}

func TestLinkNoMain(t *testing.T) {
	objs := compileObjs(t, compiler.Config{}, mainSrc, helperSrc)
	_, err := Link([]*obj.Object{objs[1]}, Options{})
	if err == nil {
		t.Error("link without main should fail")
	}
}

func TestAlignmentHonoured(t *testing.T) {
	objs := compileObjs(t, compiler.Config{Level: compiler.O3, Personality: compiler.ICC}, mainSrc, helperSrc)
	exe, err := Link(objs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range exe.Funcs {
		if f.Name == "_start" {
			continue
		}
		if f.Addr%16 != 0 {
			t.Errorf("icc -O3 function %s at %#x not 16-aligned", f.Name, f.Addr)
		}
	}
}

func TestPadObjectsShiftsLayout(t *testing.T) {
	objs := compileObjs(t, compiler.Config{Level: compiler.O2}, mainSrc, helperSrc)
	a, _ := Link(objs, Options{})
	b, err := Link(objs, Options{PadObjects: 64})
	if err != nil {
		t.Fatal(err)
	}
	if a.Symbols["helper"] == b.Symbols["helper"] {
		t.Error("padding did not shift layout")
	}
}
