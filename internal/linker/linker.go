// Package linker combines relocatable objects into an executable image.
//
// The linker is the first of the two bias channels the paper studies: it
// lays out each object's text and data **in the order the objects are given
// on the command line**, so permuting the link order moves every function
// and datum, changing I-cache set mappings, branch-target-buffer indices and
// fetch alignment without changing a single instruction.
package linker

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"biaslab/internal/isa"
	"biaslab/internal/obj"
)

// Sentinel errors for the linker's failure classes; every failure returned
// by Link wraps one of these, so callers can classify with errors.Is
// without parsing messages.
var (
	// ErrDuplicateSymbol marks a symbol defined by two objects.
	ErrDuplicateSymbol = errors.New("linker: duplicate symbol")
	// ErrUndefinedSymbol marks a relocation against a symbol no object defines.
	ErrUndefinedSymbol = errors.New("linker: undefined symbol")
	// ErrBadRelocation marks a relocation that cannot be applied (offset out
	// of range, unencodable target, unsupported kind).
	ErrBadRelocation = errors.New("linker: bad relocation")
	// ErrNoEntry marks a link with no _start or no main symbol.
	ErrNoEntry = errors.New("linker: no entry point")
)

// Default image geometry. Everything lives below 16 MiB so that 32-bit
// hi/lo relocations and 26-bit call targets always fit.
const (
	DefaultTextBase = 0x00100000 // 1 MiB
	PageSize        = 4096
)

// Options control layout policy.
type Options struct {
	TextBase uint64
	// PadObjects inserts this many bytes of padding between consecutive
	// objects' text (0 = none). Exposed for layout experiments.
	PadObjects uint64
}

// Executable is a fully linked, loadable program image.
type Executable struct {
	Entry    uint64
	TextBase uint64
	Text     []byte
	DataBase uint64
	Data     []byte
	BSSBase  uint64
	BSSSize  uint64

	// Symbols maps every defined symbol to its absolute address.
	Symbols map[string]uint64
	// Funcs lists function symbols sorted by address, for profiling and
	// disassembly.
	Funcs []FuncRange
	// Order records the object names in the order they were laid out.
	Order []string
}

// FuncRange locates one function in the image.
type FuncRange struct {
	Name string
	Addr uint64
	Size uint64
}

// FuncAt returns the function containing addr, or nil.
func (e *Executable) FuncAt(addr uint64) *FuncRange {
	i := sort.Search(len(e.Funcs), func(i int) bool { return e.Funcs[i].Addr > addr })
	if i == 0 {
		return nil
	}
	f := &e.Funcs[i-1]
	if addr < f.Addr+f.Size {
		return f
	}
	return nil
}

// MemTop returns the lowest address above all loadable segments.
func (e *Executable) MemTop() uint64 { return e.BSSBase + e.BSSSize }

// Link combines the objects in the given order into an executable. A
// synthetic startup object (crt0) is always placed first, mirroring real
// toolchains; it calls main and then issues the exit system call.
func Link(objects []*obj.Object, opts Options) (*Executable, error) {
	if opts.TextBase == 0 {
		opts.TextBase = DefaultTextBase
	}
	opts.PadObjects = alignUp(opts.PadObjects, uint64(isa.InstSize))
	all := append([]*obj.Object{crt0()}, objects...)

	// Pass 1: detect duplicate definitions.
	defined := map[string]int{}
	for i, o := range all {
		if err := o.Validate(); err != nil {
			return nil, err
		}
		for _, s := range o.Symbols {
			if prev, dup := defined[s.Name]; dup {
				return nil, fmt.Errorf("%w: %s defined in both %s and %s", ErrDuplicateSymbol, s.Name, all[prev].Name, o.Name)
			}
			defined[s.Name] = i
		}
	}

	exe := &Executable{TextBase: opts.TextBase, Symbols: map[string]uint64{}}

	// Pass 2: lay out text in object order.
	textBases := make([]uint64, len(all))
	addr := opts.TextBase
	for i, o := range all {
		align := objTextAlign(o)
		addr = alignUp(addr, align)
		textBases[i] = addr
		pad := addr - opts.TextBase - uint64(len(exe.Text))
		for j := uint64(0); j < pad; j += uint64(isa.InstSize) {
			exe.Text = isa.EncodeTo(exe.Text, isa.Inst{Op: isa.OpNop})
		}
		exe.Text = append(exe.Text, o.Text...)
		addr += uint64(len(o.Text)) + opts.PadObjects
		exe.Order = append(exe.Order, o.Name)
	}

	// Pass 3: data and bss, page-aligned after text, again in object order.
	exe.DataBase = alignUp(opts.TextBase+uint64(len(exe.Text)), PageSize)
	dataBases := make([]uint64, len(all))
	daddr := exe.DataBase
	for i, o := range all {
		daddr = alignUp(daddr, objDataAlign(o, obj.SecData))
		dataBases[i] = daddr
		pad := daddr - exe.DataBase - uint64(len(exe.Data))
		exe.Data = append(exe.Data, make([]byte, pad)...)
		exe.Data = append(exe.Data, o.Data...)
		daddr += uint64(len(o.Data))
	}
	exe.BSSBase = alignUp(daddr, PageSize)
	bssBases := make([]uint64, len(all))
	baddr := exe.BSSBase
	for i, o := range all {
		baddr = alignUp(baddr, objDataAlign(o, obj.SecBSS))
		bssBases[i] = baddr
		baddr += o.BSSSize
	}
	exe.BSSSize = baddr - exe.BSSBase

	// Pass 4: resolve symbol addresses.
	for i, o := range all {
		for _, s := range o.Symbols {
			var base uint64
			switch s.Section {
			case obj.SecText:
				base = textBases[i]
			case obj.SecData:
				base = dataBases[i]
			default:
				base = bssBases[i]
			}
			a := base + s.Offset
			exe.Symbols[s.Name] = a
			if s.Kind == obj.SymFunc {
				exe.Funcs = append(exe.Funcs, FuncRange{Name: s.Name, Addr: a, Size: s.Size})
			}
		}
	}
	sort.Slice(exe.Funcs, func(i, j int) bool { return exe.Funcs[i].Addr < exe.Funcs[j].Addr })

	// Pass 5: apply relocations.
	for i, o := range all {
		for _, r := range o.Relocs {
			target, ok := exe.Symbols[r.Sym]
			if !ok {
				return nil, fmt.Errorf("%w: %s referenced from %s", ErrUndefinedSymbol, r.Sym, o.Name)
			}
			target = uint64(int64(target) + r.Addend)
			switch r.Section {
			case obj.SecText:
				off := textBases[i] - opts.TextBase + r.Offset
				if err := patchText(exe.Text, off, r, target); err != nil {
					return nil, fmt.Errorf("%w: %s: %v", ErrBadRelocation, o.Name, err)
				}
			case obj.SecData:
				if r.Kind != obj.RelocAbs64 {
					return nil, fmt.Errorf("%w: %s: non-abs64 relocation in data", ErrBadRelocation, o.Name)
				}
				off := dataBases[i] - exe.DataBase + r.Offset
				if off+8 > uint64(len(exe.Data)) {
					return nil, fmt.Errorf("%w: %s: data relocation offset %#x out of range", ErrBadRelocation, o.Name, off)
				}
				binary.LittleEndian.PutUint64(exe.Data[off:], target)
			default:
				return nil, fmt.Errorf("%w: %s: relocation in bss", ErrBadRelocation, o.Name)
			}
		}
	}

	entry, ok := exe.Symbols["_start"]
	if !ok {
		return nil, fmt.Errorf("%w: no _start symbol", ErrNoEntry)
	}
	exe.Entry = entry
	if _, ok := exe.Symbols["main"]; !ok {
		return nil, fmt.Errorf("%w: no main symbol", ErrNoEntry)
	}
	return exe, nil
}

func patchText(text []byte, off uint64, r obj.Reloc, target uint64) error {
	if off+4 > uint64(len(text)) {
		return fmt.Errorf("relocation offset %#x out of range", off)
	}
	w := binary.LittleEndian.Uint32(text[off:])
	switch r.Kind {
	case obj.RelocJal26:
		if target%uint64(isa.InstSize) != 0 {
			return fmt.Errorf("call target %#x for %s not instruction-aligned", target, r.Sym)
		}
		word := target / uint64(isa.InstSize)
		if word > isa.MaxImm26 {
			return fmt.Errorf("call target %#x for %s exceeds 26-bit range", target, r.Sym)
		}
		w = w&^uint32(isa.MaxImm26) | uint32(word)
	case obj.RelocHi16:
		if target>>32 != 0 {
			return fmt.Errorf("address %#x for %s exceeds 32-bit addressing", target, r.Sym)
		}
		w = w&^uint32(0xffff) | uint32(target>>16&0xffff)
	case obj.RelocLo16:
		w = w&^uint32(0xffff) | uint32(target&0xffff)
	default:
		return fmt.Errorf("unsupported text relocation %v", r.Kind)
	}
	binary.LittleEndian.PutUint32(text[off:], w)
	return nil
}

func alignUp(v, a uint64) uint64 {
	if a <= 1 {
		return v
	}
	return (v + a - 1) &^ (a - 1)
}

// objTextAlign returns the placement alignment for an object's text: the
// largest alignment any of its function symbols requests (at least one
// instruction). This is where the gcc/icc personalities diverge: icc objects
// demand 16-byte placement, gcc objects move in 4-byte steps as the objects
// before them grow and shrink — the raw material of link-order bias.
func objTextAlign(o *obj.Object) uint64 {
	align := uint64(isa.InstSize)
	for _, s := range o.Symbols {
		if s.Section == obj.SecText && s.Align > align {
			align = s.Align
		}
	}
	return align
}

func objDataAlign(o *obj.Object, sec obj.SectionKind) uint64 {
	align := uint64(1)
	for _, s := range o.Symbols {
		if s.Section == sec && s.Align > align {
			align = s.Align
		}
	}
	return align
}

// crt0 synthesizes the startup object: call main, then exit(0).
func crt0() *obj.Object {
	o := &obj.Object{Name: "crt0.o"}
	var code []isa.Inst
	code = append(code,
		isa.Inst{Op: isa.OpJal, Rd: isa.RA, Imm: 0}, // patched to main
		isa.Inst{Op: isa.OpAddi, Rd: isa.A0, Rs1: isa.R0, Imm: isa.SysExit},
		isa.Inst{Op: isa.OpAddi, Rd: isa.A1, Rs1: isa.R0, Imm: 0},
		isa.Inst{Op: isa.OpSys, Rs1: isa.A0},
		isa.Inst{Op: isa.OpHalt},
	)
	for _, in := range code {
		o.Text = isa.EncodeTo(o.Text, in)
	}
	o.Symbols = []obj.Symbol{{
		Name: "_start", Kind: obj.SymFunc, Section: obj.SecText,
		Offset: 0, Size: uint64(len(o.Text)), Align: uint64(isa.InstSize),
	}}
	o.Relocs = []obj.Reloc{{Kind: obj.RelocJal26, Section: obj.SecText, Offset: 0, Sym: "main"}}
	return o
}
