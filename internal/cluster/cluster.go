// Package cluster shards measurement jobs across a fleet of worker
// biaslabd processes, designed failure-first: every mechanism assumes
// workers crash, heartbeats drop, and shards stall.
//
// The topology is one coordinator plus any number of workers. The
// protocol is pull-model — workers dial the coordinator, never the other
// way around (the only exception is an optional readiness probe at join):
//
//   - A worker joins (POST /v1/cluster/join) and is given an epoch, the
//     lease TTL, and the heartbeat interval.
//   - The worker heartbeats (POST /v1/cluster/heartbeat) on the interval.
//     One heartbeat does three jobs at once: it renews the leases on the
//     shards the worker holds, delivers completed points and shard
//     results, and picks up new shard assignments.
//   - A missed lease marks the worker suspect; shards whose every leased
//     copy has expired are requeued with exponential backoff plus
//     deterministic jitter. A worker silent for several TTLs is dropped.
//   - When a job is nearly complete and a straggler shard's sole copy has
//     been in flight too long, an idle worker steals a second copy. The
//     first completed copy wins; duplicates are safe because every point
//     is a pure function of its spec, and the coordinator asserts exactly
//     that: a duplicate delivery must be byte-identical to the merged
//     copy, and a mismatch fails the job loudly as a determinism
//     violation rather than silently picking one.
//
// Correctness rests on the journal, not the protocol. Workers produce
// points keyed in the single-node checkpoint namespace
// (core.PointKey), and the coordinator merges them into the job's
// ordinary checkpoint journal — the same file a single-node run
// checkpoints into. The final result is then assembled by replaying that
// journal through the ordinary single-node execution path, which makes
// zero new measurements. Cluster output is therefore byte-identical to
// single-node output by construction, a cluster job resumes across
// coordinator restarts exactly like a single-node job resumes across
// daemon restarts, and when zero workers are alive the coordinator
// degrades gracefully to local execution over the very same journal.
package cluster

import (
	"encoding/json"
	"errors"

	"biaslab/internal/server"
)

// Protocol errors.
var (
	// ErrUnknownWorker rejects a heartbeat from a worker the coordinator
	// does not know — never joined, dropped as dead, or joined under an
	// earlier epoch. The worker's remedy is to rejoin.
	ErrUnknownWorker = errors.New("cluster: unknown worker (rejoin required)")
	// ErrNotReady rejects a join whose readiness probe failed.
	ErrNotReady = errors.New("cluster: worker not ready")
)

// JoinRequest announces a worker to the coordinator.
type JoinRequest struct {
	// Worker is the worker's self-chosen stable identity.
	Worker string `json:"worker"`
	// Addr is the worker daemon's base URL (http://host:port), used only
	// for the optional /readyz probe at join time.
	Addr string `json:"addr,omitempty"`
	// Slots is how many shards the worker will run concurrently.
	Slots int `json:"slots"`
}

// JoinResponse tells a joined worker the protocol parameters.
type JoinResponse struct {
	// Epoch identifies this registration. A heartbeat carrying a stale
	// epoch is rejected with ErrUnknownWorker, so a worker that was
	// dropped and rejoined cannot renew leases it no longer holds.
	Epoch int64 `json:"epoch"`
	// LeaseTTLMs is how long a shard lease lives without renewal.
	LeaseTTLMs int64 `json:"lease_ttl_ms"`
	// HeartbeatMs is the interval the worker should heartbeat on.
	HeartbeatMs int64 `json:"heartbeat_ms"`
}

// PointRecord is one completed measurement point, streamed from worker to
// coordinator inside a heartbeat. Val is the point's canonical JSON
// encoding, produced by the same struct marshalling the single-node
// checkpoint path uses; the coordinator stores it verbatim.
type PointRecord struct {
	Job   string          `json:"job"`
	Shard string          `json:"shard"`
	Index int             `json:"index"`
	Key   string          `json:"key"`
	Val   json.RawMessage `json:"val"`
}

// ShardResult reports a shard's terminal outcome.
type ShardResult struct {
	Job   string `json:"job"`
	Shard string `json:"shard"`
	// Error is empty on success. A failed shard is requeued by the
	// coordinator (with backoff) up to its attempt budget.
	Error string `json:"error,omitempty"`
}

// HeartbeatRequest is the worker's periodic message: lease renewal,
// result delivery, and assignment fetch in one round trip.
type HeartbeatRequest struct {
	Worker string `json:"worker"`
	Epoch  int64  `json:"epoch"`
	// Held lists the shard ids the worker is still executing; the
	// coordinator renews their leases.
	Held []string `json:"held,omitempty"`
	// Points are completed measurements not yet acknowledged. Delivery is
	// at-least-once: the worker resends until a heartbeat succeeds, and
	// the coordinator deduplicates by (job, index).
	Points []PointRecord `json:"points,omitempty"`
	// Done are shard outcomes not yet acknowledged.
	Done []ShardResult `json:"done,omitempty"`
}

// ShardAssignment hands a shard to a worker.
type ShardAssignment struct {
	Job   string `json:"job"`
	Shard string `json:"shard"`
	// Spec is the job's canonical spec; the worker derives the full point
	// enumeration from it and measures only Indices.
	Spec server.JobSpec `json:"spec"`
	// Audit is the submitting coordinator's audit verdict for the job's
	// spec, inherited verbatim by every shard: workers never re-audit an
	// assignment, so a spec the coordinator accepted (clean, warned, or
	// guilty-but-suppressed) executes on the whole fleet under the
	// coordinator's judgment.
	Audit []server.AuditFinding `json:"audit,omitempty"`
	// Indices are the positions (into the planner's point enumeration)
	// this shard covers.
	Indices []int `json:"indices"`
	// Stolen marks a work-stealing copy of a straggler shard.
	Stolen bool `json:"stolen,omitempty"`
}

// HeartbeatResponse carries the coordinator's reply.
type HeartbeatResponse struct {
	// Assignments are new shards for the worker to start.
	Assignments []ShardAssignment `json:"assignments,omitempty"`
	// Revoked lists held shards whose lease the coordinator no longer
	// honors (reassigned after expiry, or the job ended); the worker
	// cancels them.
	Revoked []string `json:"revoked,omitempty"`
	// LeaseTTLMs restates the lease TTL so a worker can adapt.
	LeaseTTLMs int64 `json:"lease_ttl_ms"`
}

// LeaveRequest announces a graceful departure.
type LeaveRequest struct {
	Worker string `json:"worker"`
	Epoch  int64  `json:"epoch"`
}

// WorkerStatus is one worker's row in the status listing.
type WorkerStatus struct {
	Worker string `json:"worker"`
	State  string `json:"state"` // alive | suspect
	Slots  int    `json:"slots"`
	Held   int    `json:"held"`
}

// StatusResponse is GET /v1/cluster/status.
type StatusResponse struct {
	Workers []WorkerStatus  `json:"workers"`
	Jobs    int             `json:"jobs"`
	Metrics MetricsSnapshot `json:"metrics"`
}
