package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"time"

	"biaslab/internal/bench"
	"biaslab/internal/core"
	"biaslab/internal/journal"
	"biaslab/internal/retry"
	"biaslab/internal/server"
)

// CoordinatorConfig configures a Coordinator. The zero value is usable:
// every field has a production default.
type CoordinatorConfig struct {
	// LeaseTTL is how long a shard lease lives without a heartbeat
	// renewal (default 10s). A worker silent for LeaseTTL is suspect; for
	// 3×LeaseTTL it is dropped as dead.
	LeaseTTL time.Duration
	// Heartbeat is the interval workers are told to beat on (default
	// LeaseTTL/4, so a healthy worker gets several renewal chances per
	// lease).
	Heartbeat time.Duration
	// PointsPerShard bounds shard size (default 4 points). Small shards
	// bound the re-measurement cost of losing one.
	PointsPerShard int
	// MaxAttempts bounds how many times one shard is granted before its
	// job fails (default 4).
	MaxAttempts int
	// StealAfter is how long a shard's sole in-flight copy may run before
	// an idle worker steals a second copy (default 2×LeaseTTL).
	StealAfter time.Duration
	// Backoff paces shard requeues after an expiry or a failure report.
	Backoff retry.Policy
	// Runner supplies the measurement runner for a workload size — used
	// by the planner and by degraded local execution. Required.
	Runner func(size bench.Size) *core.Runner
	// ProbeReady, when non-nil, vets a joining worker's readiness (the
	// daemon probes GET <addr>/readyz). A failing probe rejects the join.
	ProbeReady func(addr string) error
	// Clock is the time source (default time.Now); tests inject a fake.
	Clock func() time.Time
}

func (cfg CoordinatorConfig) withDefaults() CoordinatorConfig {
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = 10 * time.Second
	}
	if cfg.Heartbeat <= 0 {
		cfg.Heartbeat = cfg.LeaseTTL / 4
	}
	if cfg.PointsPerShard <= 0 {
		cfg.PointsPerShard = 4
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 4
	}
	if cfg.StealAfter <= 0 {
		cfg.StealAfter = 2 * cfg.LeaseTTL
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now //determlint:allow lease/heartbeat wall clock, injected as fakeClock in tests
	}
	return cfg
}

// lease is one worker's hold on a shard.
type lease struct {
	granted time.Time
	expiry  time.Time
}

// workerState is the coordinator's view of one worker.
type workerState struct {
	id       string
	addr     string
	slots    int
	epoch    int64
	lastBeat time.Time
	held     map[string]*shardState
}

// shardState is one shard's lifecycle: queued → leased (one or more
// copies) → completed, with expiry or failure sending it back to queued.
type shardState struct {
	id        string
	job       *clusterJob
	indices   []int
	attempts  int
	notBefore time.Time
	queued    bool
	completed bool
	copies    map[string]lease // worker id → lease
}

// clusterJob is one sharded job in flight.
type clusterJob struct {
	key     string
	spec    server.JobSpec
	audit   []server.AuditFinding
	jn      *journal.Journal
	onPoint func(key string, replayed bool)

	points    []Point
	indexDone []bool
	keyOwner  map[string]int // key -> index whose delivery was journalled
	remaining int
	pending   []*shardState

	finished bool
	err      error
	done     chan struct{}
}

// Coordinator owns the worker registry, the lease table, and the shard
// queues of every sharded job. It implements server.ShardRunner; attach
// it with server.SetCluster and expose its HTTP protocol with Register.
type Coordinator struct {
	cfg CoordinatorConfig
	m   clusterMetrics

	mu     sync.Mutex
	epoch  int64
	ws     map[string]*workerState
	ring   ring
	jobs   map[string]*clusterJob
	shards map[string]*shardState
}

// NewCoordinator builds a coordinator; cfg.Runner is required.
func NewCoordinator(cfg CoordinatorConfig) *Coordinator {
	cfg = cfg.withDefaults()
	if cfg.Runner == nil {
		panic("cluster: CoordinatorConfig.Runner is required")
	}
	return &Coordinator{
		cfg:    cfg,
		ws:     map[string]*workerState{},
		jobs:   map[string]*clusterJob{},
		shards: map[string]*shardState{},
	}
}

// Join registers (or re-registers) a worker and returns its epoch and the
// protocol timings. A rejoin invalidates the previous epoch: stale
// heartbeats are rejected, and the old registration's leases expire on
// their own schedule.
func (c *Coordinator) Join(req JoinRequest) (JoinResponse, error) {
	if req.Worker == "" {
		return JoinResponse{}, fmt.Errorf("cluster: join with empty worker id")
	}
	if c.cfg.ProbeReady != nil && req.Addr != "" {
		if err := c.cfg.ProbeReady(req.Addr); err != nil {
			return JoinResponse{}, fmt.Errorf("%w: %v", ErrNotReady, err)
		}
	}
	slots := req.Slots
	if slots <= 0 {
		slots = 2
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.cfg.Clock()
	if old, ok := c.ws[req.Worker]; ok {
		// Rejoin: drop the old registration's leases immediately — the
		// process behind them is gone (crash) or starting fresh.
		c.dropWorkerLocked(old, now)
	}
	c.epoch++
	w := &workerState{
		id:       req.Worker,
		addr:     req.Addr,
		slots:    slots,
		epoch:    c.epoch,
		lastBeat: now,
		held:     map[string]*shardState{},
	}
	c.ws[req.Worker] = w
	c.ring.Add(req.Worker)
	c.m.add(&c.m.workersJoined, 1)
	return JoinResponse{
		Epoch:       w.epoch,
		LeaseTTLMs:  c.cfg.LeaseTTL.Milliseconds(),
		HeartbeatMs: c.cfg.Heartbeat.Milliseconds(),
	}, nil
}

// Leave gracefully deregisters a worker; its leased shards requeue
// immediately instead of waiting out the lease.
func (c *Coordinator) Leave(req LeaveRequest) {
	c.mu.Lock()
	defer c.mu.Unlock()
	w, ok := c.ws[req.Worker]
	if !ok || w.epoch != req.Epoch {
		return
	}
	c.dropWorkerLocked(w, c.cfg.Clock())
	c.m.add(&c.m.workersLeft, 1)
}

// dropWorkerLocked removes a worker from the registry and ring and
// releases its leases (requeueing shards left copyless).
func (c *Coordinator) dropWorkerLocked(w *workerState, now time.Time) {
	for id, sh := range w.held { //determlint:allow lease release; per-shard deletes are order-independent
		delete(sh.copies, w.id)
		delete(w.held, id)
		if !sh.completed && !sh.job.finished && len(sh.copies) == 0 {
			c.requeueLocked(sh, now)
		}
	}
	delete(c.ws, w.id)
	c.ring.Remove(w.id)
}

// Heartbeat is the protocol's one verb: renew leases, ingest results,
// hand out work.
func (c *Coordinator) Heartbeat(req HeartbeatRequest) (HeartbeatResponse, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.cfg.Clock()
	c.sweepLocked(now)

	w, ok := c.ws[req.Worker]
	if !ok || w.epoch != req.Epoch {
		return HeartbeatResponse{}, ErrUnknownWorker
	}
	c.m.add(&c.m.heartbeats, 1)
	w.lastBeat = now

	// Ingest completed points first, so a Done in the same heartbeat sees
	// its shard's points already merged.
	for _, rec := range req.Points {
		if err := c.ingestPointLocked(rec); err != nil {
			// Merge conflicts and journal write failures fail the job, not
			// the heartbeat: the worker did nothing wrong.
			if job, ok := c.jobs[rec.Job]; ok {
				c.finishJobLocked(job, err)
			}
		}
	}
	for _, res := range req.Done {
		c.shardDoneLocked(w, res, now)
	}

	resp := HeartbeatResponse{LeaseTTLMs: c.cfg.LeaseTTL.Milliseconds()}
	// Renew the leases the worker still holds; anything it thinks it
	// holds but the coordinator no longer honors is revoked.
	for _, id := range req.Held {
		sh, ok := c.shards[id]
		if !ok || sh.completed || sh.job.finished {
			resp.Revoked = append(resp.Revoked, id)
			continue
		}
		if _, ok := sh.copies[w.id]; !ok {
			resp.Revoked = append(resp.Revoked, id)
			continue
		}
		l := sh.copies[w.id]
		l.expiry = now.Add(c.cfg.LeaseTTL)
		sh.copies[w.id] = l
		c.m.add(&c.m.leasesRenewed, 1)
	}
	// Fill the worker's free slots.
	for len(w.held) < w.slots {
		sh, stolen := c.pickShardLocked(w, now)
		if sh == nil {
			break
		}
		sh.copies[w.id] = lease{granted: now, expiry: now.Add(c.cfg.LeaseTTL)}
		w.held[sh.id] = sh
		c.m.add(&c.m.leasesGranted, 1)
		if stolen {
			c.m.add(&c.m.shardsStolen, 1)
		}
		resp.Assignments = append(resp.Assignments, ShardAssignment{
			Job:     sh.job.key,
			Shard:   sh.id,
			Spec:    sh.job.spec,
			Audit:   sh.job.audit,
			Indices: sh.indices,
			Stolen:  stolen,
		})
	}
	return resp, nil
}

// pickShardLocked chooses the next shard for a worker: an eligible queued
// shard (preferring one the ring places on this worker, for cache
// locality), or — when the queues are drained — a stolen copy of a
// straggler whose sole lease has been running longer than StealAfter.
func (c *Coordinator) pickShardLocked(w *workerState, now time.Time) (*shardState, bool) {
	var first *shardState
	for _, job := range c.jobs { //determlint:allow assignment choice; results are assignment-order-independent by the merge discipline
		for _, sh := range job.pending {
			if sh.notBefore.After(now) {
				continue
			}
			if c.ring.Place(sh.id) == w.id {
				c.dequeueLocked(sh)
				return sh, false
			}
			if first == nil {
				first = sh
			}
		}
	}
	if first != nil {
		c.dequeueLocked(first)
		return first, false
	}
	// Work stealing: no queued work anywhere, so chase stragglers.
	for _, job := range c.jobs { //determlint:allow steal-candidate scan; any straggler is a valid victim
		for _, sh := range c.jobShardsLocked(job) {
			if sh.completed || sh.queued || len(sh.copies) != 1 {
				continue
			}
			if _, mine := sh.copies[w.id]; mine {
				continue
			}
			for _, l := range sh.copies { //determlint:allow existence check over lease ages
				if now.Sub(l.granted) >= c.cfg.StealAfter {
					return sh, true
				}
			}
		}
	}
	return nil, false
}

// jobShardsLocked returns a job's shards in deterministic id order.
func (c *Coordinator) jobShardsLocked(job *clusterJob) []*shardState {
	var out []*shardState
	for _, sh := range c.shards { //determlint:allow collected then sorted by id below
		if sh.job == job {
			out = append(out, sh)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// dequeueLocked removes a shard from its job's pending queue.
func (c *Coordinator) dequeueLocked(sh *shardState) {
	q := sh.job.pending
	for i, s := range q {
		if s == sh {
			sh.job.pending = append(q[:i], q[i+1:]...)
			break
		}
	}
	sh.queued = false
}

// requeueLocked sends a copyless shard back to the queue with backoff, or
// fails the job once the attempt budget is spent.
func (c *Coordinator) requeueLocked(sh *shardState, now time.Time) {
	if sh.queued || sh.completed || sh.job.finished {
		return
	}
	sh.attempts++
	if sh.attempts >= c.cfg.MaxAttempts {
		c.finishJobLocked(sh.job, fmt.Errorf("cluster: shard %s failed after %d attempts", sh.id, sh.attempts))
		return
	}
	sh.notBefore = now.Add(c.cfg.Backoff.Delay(sh.id, sh.attempts))
	sh.queued = true
	sh.job.pending = append(sh.job.pending, sh)
	c.m.add(&c.m.shardsRetried, 1)
}

// shardDoneLocked processes one shard outcome report.
func (c *Coordinator) shardDoneLocked(w *workerState, res ShardResult, now time.Time) {
	sh, ok := c.shards[res.Shard]
	if !ok || sh.completed || sh.job.finished {
		return // late report from a revoked or finished shard; already acked
	}
	delete(sh.copies, w.id)
	delete(w.held, sh.id)
	if res.Error != "" {
		if len(sh.copies) == 0 {
			c.requeueLocked(sh, now)
		}
		return
	}
	sh.completed = true
	c.m.add(&c.m.shardsCompleted, 1)
	// Other copies (stolen or stale) lose the race; their holders are
	// told via Revoked on their next heartbeat.
	for wid := range sh.copies { //determlint:allow revocation; per-worker deletes are order-independent
		if ow, ok := c.ws[wid]; ok {
			delete(ow.held, sh.id)
		}
		delete(sh.copies, wid)
	}
}

// ingestPointLocked merges one delivered point into its job's journal.
// A redelivery of the same index (at-least-once delivery, stolen copies)
// must be byte-identical to the merged copy — the coordinator's standing
// determinism assertion. Distinct indices may legitimately share a key
// (a drawn link order equal to the default, coincident randomize setups);
// there the first record wins, exactly as the single-node checkpoint path
// behaves: assembly regenerates per-candidate labels from the plan, and
// the cycle counts agree because the key is derived from the full setup.
func (c *Coordinator) ingestPointLocked(rec PointRecord) error {
	job, ok := c.jobs[rec.Job]
	if !ok || job.finished {
		return nil // job already assembled; late duplicate, safely ignored
	}
	if rec.Index < 0 || rec.Index >= len(job.points) {
		c.m.add(&c.m.mergeConflicts, 1)
		return fmt.Errorf("cluster: job %s: point index %d out of range [0,%d)", rec.Job, rec.Index, len(job.points))
	}
	if job.points[rec.Index].Key != rec.Key {
		c.m.add(&c.m.mergeConflicts, 1)
		return fmt.Errorf("cluster: job %s: point %d delivered key %q, planned %q — plan divergence",
			rec.Job, rec.Index, rec.Key, job.points[rec.Index].Key)
	}
	owner, recorded := job.keyOwner[rec.Key]
	switch {
	case !recorded:
		if err := job.jn.Record(rec.Key, rec.Val); err != nil {
			return err
		}
		job.keyOwner[rec.Key] = rec.Index
		c.m.add(&c.m.pointsIngested, 1)
	case owner == rec.Index:
		c.m.add(&c.m.pointsDuplicate, 1)
		if existing, _ := job.jn.Raw(rec.Key); !bytes.Equal(existing, rec.Val) {
			c.m.add(&c.m.mergeConflicts, 1)
			return fmt.Errorf("cluster: job %s: duplicate of %q is not byte-identical (%s vs %s) — determinism violation",
				rec.Job, rec.Key, existing, rec.Val)
		}
	default:
		// Coincident key from a different index: first record wins.
		c.m.add(&c.m.pointsDuplicate, 1)
	}
	if !job.indexDone[rec.Index] {
		job.indexDone[rec.Index] = true
		job.remaining--
		if job.onPoint != nil {
			job.onPoint(rec.Key, false)
		}
		if job.remaining == 0 {
			c.finishJobLocked(job, nil)
		}
	}
	return nil
}

// finishJobLocked resolves a job and releases everything it holds.
func (c *Coordinator) finishJobLocked(job *clusterJob, err error) {
	if job.finished {
		return
	}
	job.finished = true
	job.err = err
	job.pending = nil
	for id, sh := range c.shards { //determlint:allow job teardown; per-shard deletes are order-independent
		if sh.job != job {
			continue
		}
		for wid := range sh.copies { //determlint:allow job teardown; per-worker deletes are order-independent
			if w, ok := c.ws[wid]; ok {
				delete(w.held, id)
			}
		}
		delete(c.shards, id)
	}
	delete(c.jobs, job.key)
	close(job.done)
}

// sweepLocked expires stale leases and drops dead workers.
func (c *Coordinator) sweepLocked(now time.Time) {
	for _, w := range c.ws { //determlint:allow liveness sweep; per-worker drops are order-independent
		if now.Sub(w.lastBeat) > 3*c.cfg.LeaseTTL {
			c.dropWorkerLocked(w, now)
			c.m.add(&c.m.workersDead, 1)
		}
	}
	for _, sh := range c.shards { //determlint:allow lease-expiry sweep; per-shard requeues are order-independent
		if sh.completed {
			continue
		}
		for wid, l := range sh.copies { //determlint:allow lease-expiry sweep; per-copy expiries are order-independent
			if now.After(l.expiry) {
				delete(sh.copies, wid)
				if w, ok := c.ws[wid]; ok {
					delete(w.held, sh.id)
				}
				c.m.add(&c.m.leasesExpired, 1)
			}
		}
		if len(sh.copies) == 0 && !sh.queued {
			c.requeueLocked(sh, now)
		}
	}
}

// aliveLocked counts workers whose last heartbeat is within the TTL.
func (c *Coordinator) aliveLocked(now time.Time) int {
	n := 0
	for _, w := range c.ws { //determlint:allow counting only
		if now.Sub(w.lastBeat) <= c.cfg.LeaseTTL {
			n++
		}
	}
	return n
}

// RunSharded implements server.ShardRunner: it plans the job's points,
// replays the ones its journal already holds, fans the rest out to the
// fleet, and returns once every point is journalled (or the job failed).
// With zero workers alive at the start it returns server.ErrNotSharded so
// the server takes its ordinary local path; if the fleet dies mid-job the
// coordinator executes the remaining shards inline — same journal, same
// keys, so the hand-off is seamless in both directions.
func (c *Coordinator) RunSharded(ctx context.Context, jobKey string, spec server.JobSpec, audit []server.AuditFinding, jn *journal.Journal, onPoint func(key string, replayed bool), onTotal func(int)) error {
	size, err := bench.ParseSize(spec.Size)
	if err != nil {
		return err
	}
	r := c.cfg.Runner(size)
	points, err := Points(r, spec)
	if err != nil {
		return err
	}
	if onTotal != nil {
		onTotal(len(points))
	}
	// Replay: points already journalled (an earlier interrupted run,
	// local or clustered) are announced and excluded from the plan.
	indexDone := make([]bool, len(points))
	keyOwner := make(map[string]int)
	var pendingIdx []int
	for _, p := range points {
		if _, ok := jn.Raw(p.Key); ok {
			if _, owned := keyOwner[p.Key]; !owned {
				keyOwner[p.Key] = p.Index
			}
			indexDone[p.Index] = true
			if onPoint != nil {
				onPoint(p.Key, true)
			}
		} else {
			pendingIdx = append(pendingIdx, p.Index)
		}
	}
	if len(pendingIdx) == 0 {
		return nil // fully journalled; assembly needs no cluster at all
	}

	c.mu.Lock()
	now := c.cfg.Clock()
	c.sweepLocked(now)
	if c.aliveLocked(now) == 0 {
		c.m.add(&c.m.jobsDegraded, 1)
		c.mu.Unlock()
		return server.ErrNotSharded
	}
	if _, ok := c.jobs[jobKey]; ok {
		c.mu.Unlock()
		return fmt.Errorf("cluster: job %s already sharded", jobKey)
	}
	job := &clusterJob{
		key:       jobKey,
		spec:      spec,
		audit:     audit,
		jn:        jn,
		onPoint:   onPoint,
		points:    points,
		indexDone: indexDone,
		keyOwner:  keyOwner,
		remaining: len(pendingIdx),
		done:      make(chan struct{}),
	}
	for seq, indices := range planShards(jobKey, pendingIdx, c.cfg.PointsPerShard) {
		sh := &shardState{
			id:      shardID(jobKey, seq),
			job:     job,
			indices: indices,
			queued:  true,
			copies:  map[string]lease{},
		}
		job.pending = append(job.pending, sh)
		c.shards[sh.id] = sh
		c.m.add(&c.m.shardsPlanned, 1)
	}
	c.jobs[jobKey] = job
	c.m.add(&c.m.jobsSharded, 1)
	c.mu.Unlock()

	tick := time.NewTicker(c.cfg.Heartbeat)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			c.mu.Lock()
			c.finishJobLocked(job, ctx.Err())
			c.mu.Unlock()
			<-job.done
			return ctx.Err()
		case <-job.done:
			return job.err
		case <-tick.C:
			c.mu.Lock()
			now := c.cfg.Clock()
			c.sweepLocked(now)
			var local *shardState
			if c.aliveLocked(now) == 0 && !job.finished {
				// The fleet is gone mid-job: degrade to local execution,
				// one shard per tick, through the same ingest path.
				for _, sh := range job.pending {
					local = sh
					c.dequeueLocked(sh)
					break
				}
			}
			c.mu.Unlock()
			if local != nil {
				c.runShardLocally(ctx, r, job, local)
			}
		}
	}
}

// runShardLocally executes one shard on the coordinator's own runner and
// feeds its points through the same merge path worker deliveries take.
func (c *Coordinator) runShardLocally(ctx context.Context, r *core.Runner, job *clusterJob, sh *shardState) {
	c.m.add(&c.m.shardsLocal, 1)
	err := ExecuteShard(ctx, r, job.spec, sh.id, sh.indices, func(index int, key string, val json.RawMessage) error {
		c.mu.Lock()
		defer c.mu.Unlock()
		return c.ingestPointLocked(PointRecord{Job: job.key, Shard: sh.id, Index: index, Key: key, Val: val})
	})
	c.mu.Lock()
	defer c.mu.Unlock()
	if sh.completed || job.finished {
		return
	}
	if err != nil {
		c.requeueLocked(sh, c.cfg.Clock())
		return
	}
	sh.completed = true
	c.m.add(&c.m.shardsCompleted, 1)
}

// MetricsSnapshot captures the coordinator's counters and worker census.
func (c *Coordinator) MetricsSnapshot() MetricsSnapshot {
	c.mu.Lock()
	now := c.cfg.Clock()
	alive, suspect := 0, 0
	for _, w := range c.ws { //determlint:allow counting only
		if now.Sub(w.lastBeat) <= c.cfg.LeaseTTL {
			alive++
		} else {
			suspect++
		}
	}
	c.mu.Unlock()
	m := &c.m
	m.mu.Lock()
	defer m.mu.Unlock()
	return MetricsSnapshot{
		WorkersAlive:    alive,
		WorkersSuspect:  suspect,
		WorkersJoined:   m.workersJoined,
		WorkersLeft:     m.workersLeft,
		WorkersDead:     m.workersDead,
		Heartbeats:      m.heartbeats,
		LeasesGranted:   m.leasesGranted,
		LeasesRenewed:   m.leasesRenewed,
		LeasesExpired:   m.leasesExpired,
		ShardsPlanned:   m.shardsPlanned,
		ShardsCompleted: m.shardsCompleted,
		ShardsRetried:   m.shardsRetried,
		ShardsStolen:    m.shardsStolen,
		ShardsLocal:     m.shardsLocal,
		PointsIngested:  m.pointsIngested,
		PointsDuplicate: m.pointsDuplicate,
		MergeConflicts:  m.mergeConflicts,
		JobsSharded:     m.jobsSharded,
		JobsDegraded:    m.jobsDegraded,
	}
}

// Status snapshots the registry for GET /v1/cluster/status.
func (c *Coordinator) Status() StatusResponse {
	snap := c.MetricsSnapshot()
	c.mu.Lock()
	now := c.cfg.Clock()
	var workers []WorkerStatus
	for _, w := range c.ws { //determlint:allow collected then sorted by worker id below
		state := "alive"
		if now.Sub(w.lastBeat) > c.cfg.LeaseTTL {
			state = "suspect"
		}
		workers = append(workers, WorkerStatus{Worker: w.id, State: state, Slots: w.slots, Held: len(w.held)})
	}
	jobs := len(c.jobs)
	c.mu.Unlock()
	sort.Slice(workers, func(i, j int) bool { return workers[i].Worker < workers[j].Worker })
	return StatusResponse{Workers: workers, Jobs: jobs, Metrics: snap}
}
