package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// vnodes is how many virtual nodes each worker contributes to the ring.
// Enough to spread shards evenly across a handful of workers without
// making membership changes expensive.
const vnodes = 32

// ring is a consistent-hash ring over worker ids. Shards are placed by
// hashing their id and walking clockwise to the next virtual node, so
// when a worker joins or leaves only the shards adjacent to its virtual
// nodes move — every other shard keeps its preferred worker, and with it
// the compile/link cache that worker has already warmed for the job.
type ring struct {
	points []ringPoint // sorted by hash
}

type ringPoint struct {
	hash   uint64
	worker string
}

func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	// FNV of short, near-identical strings ("w1#0", "w1#1", …) clusters;
	// a splitmix64-style finalizer spreads the vnodes over the ring.
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Add inserts a worker's virtual nodes.
func (r *ring) Add(worker string) {
	for i := 0; i < vnodes; i++ {
		r.points = append(r.points, ringPoint{hash64(fmt.Sprintf("%s#%d", worker, i)), worker})
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
}

// Remove deletes a worker's virtual nodes.
func (r *ring) Remove(worker string) {
	kept := r.points[:0]
	for _, p := range r.points {
		if p.worker != worker {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Place returns the preferred worker for a key, or "" on an empty ring.
// Placement is a preference, not a constraint: the coordinator assigns a
// shard elsewhere rather than leave a worker idle.
func (r *ring) Place(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].worker
}
