package cluster

import (
	"context"
	"encoding/json"
	"fmt"

	"biaslab/internal/core"
	"biaslab/internal/faultinject"
	"biaslab/internal/server"
)

// ExecuteShard measures the given indices of a job's point enumeration
// and emits each completed point as (index, key, canonical JSON value).
// It is the unit both sides share: worker executors run it against their
// own runner, and the coordinator runs it inline when it degrades to
// local execution. The emitted value bytes are produced by json.Marshal
// of the same point structs the single-node checkpoint path records, so
// merging them into the job journal is byte-identical to a single-node
// run recording them itself.
//
// Fault site: "cluster"/"stall/<shard>" turns the shard into a straggler —
// it blocks until cancelled instead of measuring, which is what the
// work-stealing chaos tests use to force a steal.
func ExecuteShard(ctx context.Context, r *core.Runner, spec server.JobSpec, shard string, indices []int, emit func(index int, key string, val json.RawMessage) error) error {
	if err := faultinject.Check("cluster", "stall/"+shard); err != nil {
		<-ctx.Done()
		return ctx.Err()
	}
	setup, b, err := server.BaseSetup(spec)
	if err != nil {
		return err
	}
	// measure resolves one index to its key and value. The full
	// enumeration is regenerated here (it is a pure function of the spec)
	// rather than shipped over the wire.
	var measure func(ctx context.Context, i int) (string, any, error)
	switch spec.Kind {
	case server.KindSweepEnv:
		sizes := core.DefaultEnvSizes(spec.Step)
		measure = func(ctx context.Context, i int) (string, any, error) {
			if i < 0 || i >= len(sizes) {
				return "", nil, fmt.Errorf("cluster: env point index %d out of range [0,%d)", i, len(sizes))
			}
			s := setup
			s.EnvBytes = sizes[i]
			p, err := core.MeasureEnvPoint(ctx, r, b, setup, sizes[i])
			return core.PointKey("env", b.Name, s), p, err
		}
	case server.KindSweepPad:
		values := core.DefaultPadSizes()
		measure = func(ctx context.Context, i int) (string, any, error) {
			if i < 0 || i >= len(values) {
				return "", nil, fmt.Errorf("cluster: pad point index %d out of range [0,%d)", i, len(values))
			}
			s := setup
			s.TextPad = values[i]
			p, err := core.MeasurePadPoint(ctx, r, b, setup, values[i])
			return core.PointKey("pad", b.Name, s), p, err
		}
	case server.KindSweepBase:
		values := core.DefaultTextBases()
		measure = func(ctx context.Context, i int) (string, any, error) {
			if i < 0 || i >= len(values) {
				return "", nil, fmt.Errorf("cluster: base point index %d out of range [0,%d)", i, len(values))
			}
			s := setup
			s.TextBase = values[i]
			p, err := core.MeasureBasePoint(ctx, r, b, setup, values[i])
			return core.PointKey("base", b.Name, s), p, err
		}
	case server.KindSweepLink:
		cands := core.LinkCandidates(r.UnitNames(b), spec.Orders, spec.Seed)
		measure = func(ctx context.Context, i int) (string, any, error) {
			if i < 0 || i >= len(cands) {
				return "", nil, fmt.Errorf("cluster: link point index %d out of range [0,%d)", i, len(cands))
			}
			s := setup
			s.LinkOrder = cands[i].Order
			p, err := core.MeasureLinkPoint(ctx, r, b, setup, cands[i])
			return core.PointKey("link", b.Name, s), p, err
		}
	case server.KindSweepTenant:
		corunners := core.DefaultCoRunners()
		measure = func(ctx context.Context, i int) (string, any, error) {
			if i < 0 || i >= len(corunners) {
				return "", nil, fmt.Errorf("cluster: tenant point index %d out of range [0,%d)", i, len(corunners))
			}
			p, err := core.MeasureTenantPoint(ctx, r, b, setup, corunners[i])
			return core.TenantPointKey(b.Name, setup, corunners[i]), p, err
		}
	case server.KindRandomize:
		setups := randomSetups(r, b, setup, spec)
		measure = func(ctx context.Context, i int) (string, any, error) {
			if i < 0 || i >= len(setups) {
				return "", nil, fmt.Errorf("cluster: rand point index %d out of range [0,%d)", i, len(setups))
			}
			p, err := core.MeasureRandomPoint(ctx, r, b, setups[i])
			return core.PointKey("rand", b.Name, setups[i]), p, err
		}
	default:
		return fmt.Errorf("cluster: job kind %q is not shardable", spec.Kind)
	}
	for _, i := range indices {
		if err := ctx.Err(); err != nil {
			return err
		}
		key, v, err := measure(ctx, i)
		if err != nil {
			return fmt.Errorf("cluster: shard %s point %d: %w", shard, i, err)
		}
		raw, err := json.Marshal(v)
		if err != nil {
			return fmt.Errorf("cluster: shard %s encoding point %d: %w", shard, i, err)
		}
		if err := emit(i, key, raw); err != nil {
			return err
		}
	}
	return nil
}
