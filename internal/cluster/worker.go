package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"sync"
	"time"

	"biaslab/internal/bench"
	"biaslab/internal/core"
	"biaslab/internal/faultinject"
	"biaslab/internal/retry"
)

// WorkerConfig configures a cluster worker.
type WorkerConfig struct {
	// ID is the worker's stable identity (default is not supplied here:
	// cmd/biaslabd composes hostname-pid).
	ID string
	// Addr is this worker daemon's base URL, advertised to the
	// coordinator for the join-time readiness probe. Optional.
	Addr string
	// Slots is how many shards to execute concurrently (default 2).
	Slots int
	// Runner supplies the measurement runner for a workload size —
	// normally server.(*Server).Runner, so shard execution shares the
	// daemon's compile/link caches. Required.
	Runner func(size bench.Size) *core.Runner
	// Transport performs the protocol calls (HTTP in production,
	// in-process in tests).
	Transport Transport
	// Retry paces join retries and transient transport failures.
	Retry retry.Policy
}

// Transport is the worker's view of the coordinator: the three protocol
// verbs. Implemented over HTTP by Dial, and directly by a *Coordinator
// for in-process tests (see LocalTransport).
type Transport interface {
	Join(ctx context.Context, req JoinRequest) (JoinResponse, error)
	Heartbeat(ctx context.Context, req HeartbeatRequest) (HeartbeatResponse, error)
	Leave(ctx context.Context, req LeaveRequest) error
}

// LocalTransport adapts a Coordinator into a Transport for in-process
// fleets — the chaos tests run coordinator and workers in one process so
// the race detector can see across the protocol boundary.
type LocalTransport struct{ C *Coordinator }

func (t LocalTransport) Join(ctx context.Context, req JoinRequest) (JoinResponse, error) {
	return t.C.Join(req)
}

func (t LocalTransport) Heartbeat(ctx context.Context, req HeartbeatRequest) (HeartbeatResponse, error) {
	return t.C.Heartbeat(req)
}

func (t LocalTransport) Leave(ctx context.Context, req LeaveRequest) error {
	t.C.Leave(req)
	return nil
}

// Worker executes shard assignments for a coordinator. Run drives the
// join → heartbeat → execute loop until the context is cancelled (a
// graceful leave) or a kill fault fires (a simulated crash).
//
// Delivery is at-least-once: completed points and shard results stay in
// the outbox until a heartbeat round-trip succeeds, so a heartbeat lost
// to the network (or to the "heartbeat/<id>" fault site) delays delivery
// but never loses it. The coordinator deduplicates.
type Worker struct {
	cfg WorkerConfig

	mu      sync.Mutex
	epoch   int64
	held    map[string]*shardRun
	outbox  []PointRecord
	doneBox []ShardResult
}

// shardRun is one executing assignment.
type shardRun struct {
	cancel context.CancelFunc
	done   chan struct{}
}

// NewWorker builds a worker; cfg.Runner and cfg.Transport are required.
func NewWorker(cfg WorkerConfig) *Worker {
	if cfg.Slots <= 0 {
		cfg.Slots = 2
	}
	if cfg.Runner == nil || cfg.Transport == nil {
		panic("cluster: WorkerConfig.Runner and Transport are required")
	}
	return &Worker{cfg: cfg, held: map[string]*shardRun{}}
}

// errKilled distinguishes a simulated crash from a graceful shutdown.
var errKilled = errors.New("cluster: worker killed by fault injection")

// Run joins the coordinator and processes assignments until ctx is
// cancelled. It returns nil on graceful shutdown (after a best-effort
// leave) and errKilled when the kill fault site fires.
func (w *Worker) Run(ctx context.Context) error {
	join, err := w.join(ctx)
	if err != nil {
		return err
	}
	interval := time.Duration(join.HeartbeatMs) * time.Millisecond
	if interval <= 0 {
		interval = time.Second
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			w.shutdown()
			w.cfg.Transport.Leave(context.Background(), LeaveRequest{Worker: w.cfg.ID, Epoch: w.epochNow()})
			return nil
		case <-tick.C:
			// Fault site: a fired kill is a crash — no leave, no cleanup,
			// executors abandoned. The coordinator must recover on its own.
			if err := faultinject.Check("cluster", "kill/"+w.cfg.ID); err != nil {
				w.shutdown()
				return errKilled
			}
			// Fault site: a fired heartbeat fault drops this beat; the
			// outbox keeps everything for the next one.
			if err := faultinject.Check("cluster", "heartbeat/"+w.cfg.ID); err != nil {
				continue
			}
			if err := w.beat(ctx); errors.Is(err, ErrUnknownWorker) {
				// Dropped by the coordinator (missed leases, or it
				// restarted). Cancel everything and start over; the
				// outbox survives so finished work still gets delivered.
				w.cancelAll()
				if join, err = w.join(ctx); err != nil {
					return err
				}
			}
		}
	}
}

// join registers with retry until it succeeds or ctx ends.
func (w *Worker) join(ctx context.Context) (JoinResponse, error) {
	var resp JoinResponse
	err := w.cfg.Retry.Do(ctx, "join/"+w.cfg.ID, func(error) bool { return true }, func() error {
		var err error
		resp, err = w.cfg.Transport.Join(ctx, JoinRequest{Worker: w.cfg.ID, Addr: w.cfg.Addr, Slots: w.cfg.Slots})
		return err
	})
	if err != nil {
		return JoinResponse{}, err
	}
	w.mu.Lock()
	w.epoch = resp.Epoch
	w.mu.Unlock()
	return resp, nil
}

func (w *Worker) epochNow() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.epoch
}

// beat performs one heartbeat round trip and applies the response.
func (w *Worker) beat(ctx context.Context) error {
	w.mu.Lock()
	req := HeartbeatRequest{
		Worker: w.cfg.ID,
		Epoch:  w.epoch,
		Points: append([]PointRecord(nil), w.outbox...),
		Done:   append([]ShardResult(nil), w.doneBox...),
	}
	for id := range w.held { //determlint:allow lease-renewal set; the coordinator treats Held as a set
		req.Held = append(req.Held, id)
	}
	sentPoints, sentDone := len(w.outbox), len(w.doneBox)
	w.mu.Unlock()

	resp, err := w.cfg.Transport.Heartbeat(ctx, req)
	if err != nil {
		return err
	}
	w.mu.Lock()
	// A successful round trip acknowledges exactly what was sent;
	// anything appended since stays queued.
	w.outbox = w.outbox[sentPoints:]
	w.doneBox = w.doneBox[sentDone:]
	for _, id := range resp.Revoked {
		if run, ok := w.held[id]; ok {
			run.cancel()
			delete(w.held, id)
		}
	}
	w.mu.Unlock()
	for _, a := range resp.Assignments {
		w.start(ctx, a)
	}
	return nil
}

// start launches one assignment's executor goroutine.
func (w *Worker) start(ctx context.Context, a ShardAssignment) {
	size, err := bench.ParseSize(a.Spec.Size)
	if err != nil {
		w.mu.Lock()
		w.doneBox = append(w.doneBox, ShardResult{Job: a.Job, Shard: a.Shard, Error: err.Error()})
		w.mu.Unlock()
		return
	}
	runCtx, cancel := context.WithCancel(ctx)
	run := &shardRun{cancel: cancel, done: make(chan struct{})}
	w.mu.Lock()
	if _, dup := w.held[a.Shard]; dup {
		w.mu.Unlock()
		cancel()
		return
	}
	w.held[a.Shard] = run
	w.mu.Unlock()
	go func() {
		defer close(run.done)
		defer cancel()
		err := ExecuteShard(runCtx, w.cfg.Runner(size), a.Spec, a.Shard, a.Indices, func(index int, key string, val json.RawMessage) error {
			w.mu.Lock()
			w.outbox = append(w.outbox, PointRecord{Job: a.Job, Shard: a.Shard, Index: index, Key: key, Val: val})
			w.mu.Unlock()
			return nil
		})
		w.mu.Lock()
		defer w.mu.Unlock()
		if w.held[a.Shard] == run {
			delete(w.held, a.Shard)
		}
		if runCtx.Err() != nil {
			return // revoked or shutting down: report nothing
		}
		res := ShardResult{Job: a.Job, Shard: a.Shard}
		if err != nil {
			res.Error = err.Error()
		}
		w.doneBox = append(w.doneBox, res)
	}()
}

// cancelAll revokes every running executor (rejoin path).
func (w *Worker) cancelAll() {
	w.mu.Lock()
	runs := make([]*shardRun, 0, len(w.held))
	for id, run := range w.held { //determlint:allow cancellation; per-run cancels are order-independent
		runs = append(runs, run)
		delete(w.held, id)
	}
	w.mu.Unlock()
	for _, run := range runs {
		run.cancel()
		<-run.done
	}
}

// shutdown cancels executors and waits for them.
func (w *Worker) shutdown() {
	w.cancelAll()
}
