package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"biaslab/internal/bench"
	"biaslab/internal/core"
	"biaslab/internal/journal"
	"biaslab/internal/retry"
	"biaslab/internal/server"
)

// fakeClock is an injectable time source the protocol tests advance by
// hand, so lease expiry, backoff gates, and steal ages are exact rather
// than sleep-raced.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(1_000_000, 0)} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

var testRunnerOnce sync.Once
var testRunner *core.Runner

// sharedRunner returns one process-wide test-size runner; protocol tests
// only plan with it (no measurements), so sharing is safe and fast.
func sharedRunner(bench.Size) *core.Runner {
	testRunnerOnce.Do(func() { testRunner = core.NewRunner(bench.SizeTest) })
	return testRunner
}

func protocolConfig(clock *fakeClock) CoordinatorConfig {
	return CoordinatorConfig{
		LeaseTTL: time.Minute,
		// The ticker inside RunSharded runs on real time; an hour keeps it
		// quiet so the tests drive every state change through Heartbeat.
		Heartbeat:      time.Hour,
		PointsPerShard: 4,
		MaxAttempts:    10,
		StealAfter:     24 * time.Hour,
		Backoff:        retry.Policy{Base: time.Millisecond, Cap: time.Millisecond},
		Runner:         sharedRunner,
		Clock:          clock.Now,
	}
}

func protocolSpec(t *testing.T) server.JobSpec {
	t.Helper()
	spec, err := server.JobSpec{Kind: server.KindSweepEnv, Size: "test", Bench: "hmmer", Machine: "p4", Step: 256}.Canonicalize()
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

// startJob launches RunSharded in the background and waits until the
// coordinator has registered and sharded it.
func startJob(t *testing.T, c *Coordinator, key string, spec server.JobSpec) (*journal.Journal, []Point, chan error) {
	t.Helper()
	jn, err := journal.Open(filepath.Join(t.TempDir(), "job.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { jn.Close() })
	points, err := Points(sharedRunner(bench.SizeTest), spec)
	if err != nil {
		t.Fatal(err)
	}
	errCh := make(chan error, 1)
	go func() {
		errCh <- c.RunSharded(context.Background(), key, spec, nil, jn, nil, nil)
	}()
	deadline := time.Now().Add(5 * time.Second)
	for {
		c.mu.Lock()
		_, ok := c.jobs[key]
		c.mu.Unlock()
		if ok {
			return jn, points, errCh
		}
		if time.Now().After(deadline) {
			t.Fatal("job was never registered")
		}
		time.Sleep(time.Millisecond)
	}
}

// fakeVal is a syntactically valid point value for protocol-only tests,
// which never assemble a result from the journal.
func fakeVal(i int) json.RawMessage {
	return json.RawMessage(`{"speedup":1.` + string(rune('0'+i%10)) + `}`)
}

// deliver builds the PointRecords for an assignment.
func deliver(a ShardAssignment, points []Point) []PointRecord {
	var recs []PointRecord
	for _, idx := range a.Indices {
		recs = append(recs, PointRecord{Job: a.Job, Shard: a.Shard, Index: idx, Key: points[idx].Key, Val: fakeVal(idx)})
	}
	return recs
}

func mustJoin(t *testing.T, c *Coordinator, id string, slots int) JoinResponse {
	t.Helper()
	resp, err := c.Join(JoinRequest{Worker: id, Slots: slots})
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func mustBeat(t *testing.T, c *Coordinator, req HeartbeatRequest) HeartbeatResponse {
	t.Helper()
	resp, err := c.Heartbeat(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestLeaseExpiryRequeueAndReassign: a worker takes every shard and goes
// silent; its leases expire, the shards requeue with backoff, and a
// healthy worker drains them to completion.
func TestLeaseExpiryRequeueAndReassign(t *testing.T) {
	clock := newFakeClock()
	c := NewCoordinator(protocolConfig(clock))
	spec := protocolSpec(t)
	w1 := mustJoin(t, c, "w1", 8)
	jn, points, errCh := startJob(t, c, "job-expiry", spec)
	got := mustBeat(t, c, HeartbeatRequest{Worker: "w1", Epoch: w1.Epoch})
	if len(got.Assignments) == 0 {
		t.Fatal("w1 received no assignments")
	}
	// w1 goes silent; its leases outlive it by exactly the TTL.
	clock.Advance(2 * time.Minute)
	w2 := mustJoin(t, c, "w2", 8)
	mustBeat(t, c, HeartbeatRequest{Worker: "w2", Epoch: w2.Epoch}) // sweep: expire + requeue
	clock.Advance(time.Second)                                      // clear the backoff gates
	resp := mustBeat(t, c, HeartbeatRequest{Worker: "w2", Epoch: w2.Epoch})
	if len(resp.Assignments) == 0 {
		t.Fatal("expired shards were not reassigned to w2")
	}
	held := []string{}
	var recs []PointRecord
	var done []ShardResult
	for _, a := range resp.Assignments {
		held = append(held, a.Shard)
		recs = append(recs, deliver(a, points)...)
		done = append(done, ShardResult{Job: a.Job, Shard: a.Shard})
	}
	mustBeat(t, c, HeartbeatRequest{Worker: "w2", Epoch: w2.Epoch, Held: held, Points: recs, Done: done})
	select {
	case err := <-errCh:
		if err != nil {
			t.Fatalf("RunSharded: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("job did not complete after reassignment")
	}
	snap := c.MetricsSnapshot()
	if snap.LeasesExpired == 0 {
		t.Error("no leases expired")
	}
	if snap.ShardsRetried == 0 {
		t.Error("no shards retried")
	}
	for _, p := range points {
		if _, ok := jn.Raw(p.Key); !ok {
			t.Errorf("point %q missing from journal", p.Key)
		}
	}
}

// TestDeadWorkerDroppedAndEpochRejected: a worker silent past 3×TTL is
// dropped; its stale epoch is rejected and the remedy is a rejoin.
func TestDeadWorkerDroppedAndEpochRejected(t *testing.T) {
	clock := newFakeClock()
	c := NewCoordinator(protocolConfig(clock))
	w1 := mustJoin(t, c, "w1", 2)
	clock.Advance(4 * time.Minute)
	w2 := mustJoin(t, c, "w2", 2)
	mustBeat(t, c, HeartbeatRequest{Worker: "w2", Epoch: w2.Epoch}) // sweep drops w1
	if snap := c.MetricsSnapshot(); snap.WorkersDead != 1 {
		t.Fatalf("WorkersDead = %d, want 1", snap.WorkersDead)
	}
	if _, err := c.Heartbeat(HeartbeatRequest{Worker: "w1", Epoch: w1.Epoch}); !errors.Is(err, ErrUnknownWorker) {
		t.Fatalf("stale worker heartbeat: got %v, want ErrUnknownWorker", err)
	}
	if _, err := c.Join(JoinRequest{Worker: "w1", Slots: 2}); err != nil {
		t.Fatalf("rejoin: %v", err)
	}
}

// TestWorkSteal: with the queues drained and one straggler copy running
// past StealAfter, an idle worker steals a second copy; the first
// completed copy wins and the loser is revoked.
func TestWorkSteal(t *testing.T) {
	clock := newFakeClock()
	cfg := protocolConfig(clock)
	cfg.LeaseTTL = time.Hour // no expiry: stealing must not wait for it
	cfg.StealAfter = time.Minute
	c := NewCoordinator(cfg)
	spec := protocolSpec(t)
	w1 := mustJoin(t, c, "w1", 8)
	_, points, errCh := startJob(t, c, "job-steal", spec)
	first := mustBeat(t, c, HeartbeatRequest{Worker: "w1", Epoch: w1.Epoch})
	if len(first.Assignments) == 0 {
		t.Fatal("w1 received no assignments")
	}
	held := []string{}
	for _, a := range first.Assignments {
		held = append(held, a.Shard)
	}
	// w1 stays alive (renewing) but never finishes anything.
	clock.Advance(2 * time.Minute)
	mustBeat(t, c, HeartbeatRequest{Worker: "w1", Epoch: w1.Epoch, Held: held})

	w2 := mustJoin(t, c, "w2", 8)
	resp := mustBeat(t, c, HeartbeatRequest{Worker: "w2", Epoch: w2.Epoch})
	if len(resp.Assignments) == 0 {
		t.Fatal("idle worker stole nothing from the straggler")
	}
	for _, a := range resp.Assignments {
		if !a.Stolen {
			t.Errorf("assignment %s not marked stolen", a.Shard)
		}
	}
	if snap := c.MetricsSnapshot(); snap.ShardsStolen == 0 {
		t.Error("ShardsStolen = 0")
	}
	// w2 has 8 slots and there are only 5 shards, so it stole every one;
	// completing them all finishes the job.
	var recs []PointRecord
	var done []ShardResult
	w2Held := []string{}
	for _, a := range resp.Assignments {
		w2Held = append(w2Held, a.Shard)
		recs = append(recs, deliver(a, points)...)
		done = append(done, ShardResult{Job: a.Job, Shard: a.Shard})
	}
	mustBeat(t, c, HeartbeatRequest{Worker: "w2", Epoch: w2.Epoch, Held: w2Held, Points: recs, Done: done})
	select {
	case err := <-errCh:
		if err != nil {
			t.Fatalf("RunSharded: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("job did not complete after the steal")
	}
	// The straggler's next renewal is told to stand down.
	lost := mustBeat(t, c, HeartbeatRequest{Worker: "w1", Epoch: w1.Epoch, Held: held})
	if len(lost.Revoked) == 0 {
		t.Error("straggler's obsolete leases were not revoked")
	}
}

// TestDuplicateDelivery: byte-identical duplicates are counted and
// ignored; a mismatched duplicate is a determinism violation that fails
// the job loudly.
func TestDuplicateDelivery(t *testing.T) {
	clock := newFakeClock()
	c := NewCoordinator(protocolConfig(clock))
	spec := protocolSpec(t)
	w1 := mustJoin(t, c, "w1", 8)
	_, points, errCh := startJob(t, c, "job-dup", spec)
	resp := mustBeat(t, c, HeartbeatRequest{Worker: "w1", Epoch: w1.Epoch})
	if len(resp.Assignments) == 0 {
		t.Fatal("no assignments")
	}
	a := resp.Assignments[0]
	rec := PointRecord{Job: a.Job, Shard: a.Shard, Index: a.Indices[0], Key: points[a.Indices[0]].Key, Val: fakeVal(a.Indices[0])}
	mustBeat(t, c, HeartbeatRequest{Worker: "w1", Epoch: w1.Epoch, Points: []PointRecord{rec, rec}})
	snap := c.MetricsSnapshot()
	if snap.PointsDuplicate != 1 {
		t.Fatalf("PointsDuplicate = %d, want 1", snap.PointsDuplicate)
	}
	if snap.MergeConflicts != 0 {
		t.Fatalf("MergeConflicts = %d, want 0", snap.MergeConflicts)
	}

	bad := rec
	bad.Val = json.RawMessage(`{"speedup":9.9}`)
	mustBeat(t, c, HeartbeatRequest{Worker: "w1", Epoch: w1.Epoch, Points: []PointRecord{bad}})
	select {
	case err := <-errCh:
		if err == nil || !strings.Contains(err.Error(), "determinism") {
			t.Fatalf("RunSharded error = %v, want determinism violation", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("mismatched duplicate did not fail the job")
	}
	if snap := c.MetricsSnapshot(); snap.MergeConflicts != 1 {
		t.Fatalf("MergeConflicts = %d, want 1", snap.MergeConflicts)
	}
}

// TestShardFailureExhaustsAttempts: a shard that keeps failing is retried
// with backoff until the attempt budget is spent, then fails the job.
func TestShardFailureExhaustsAttempts(t *testing.T) {
	clock := newFakeClock()
	cfg := protocolConfig(clock)
	cfg.MaxAttempts = 2
	c := NewCoordinator(cfg)
	spec := protocolSpec(t)
	w1 := mustJoin(t, c, "w1", 8)
	_, _, errCh := startJob(t, c, "job-fail", spec)
	resp := mustBeat(t, c, HeartbeatRequest{Worker: "w1", Epoch: w1.Epoch})
	if len(resp.Assignments) == 0 {
		t.Fatal("no assignments")
	}
	a := resp.Assignments[0]
	mustBeat(t, c, HeartbeatRequest{Worker: "w1", Epoch: w1.Epoch, Done: []ShardResult{{Job: a.Job, Shard: a.Shard, Error: "boom"}}})
	if snap := c.MetricsSnapshot(); snap.ShardsRetried != 1 {
		t.Fatalf("ShardsRetried = %d, want 1", snap.ShardsRetried)
	}
	clock.Advance(time.Second)
	resp = mustBeat(t, c, HeartbeatRequest{Worker: "w1", Epoch: w1.Epoch})
	var again *ShardAssignment
	for i := range resp.Assignments {
		if resp.Assignments[i].Shard == a.Shard {
			again = &resp.Assignments[i]
		}
	}
	if again == nil {
		t.Fatalf("failed shard %s was not reoffered", a.Shard)
	}
	mustBeat(t, c, HeartbeatRequest{Worker: "w1", Epoch: w1.Epoch, Done: []ShardResult{{Job: a.Job, Shard: a.Shard, Error: "boom"}}})
	select {
	case err := <-errCh:
		if err == nil || !strings.Contains(err.Error(), "after 2 attempts") {
			t.Fatalf("RunSharded error = %v, want attempt exhaustion", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("exhausted shard did not fail the job")
	}
}

// TestNoWorkersDeclines: with nobody alive the coordinator declines and
// the server takes its ordinary local path.
func TestNoWorkersDeclines(t *testing.T) {
	clock := newFakeClock()
	c := NewCoordinator(protocolConfig(clock))
	spec := protocolSpec(t)
	jn, err := journal.Open(filepath.Join(t.TempDir(), "job.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer jn.Close()
	err = c.RunSharded(context.Background(), "job-none", spec, nil, jn, nil, nil)
	if !errors.Is(err, server.ErrNotSharded) {
		t.Fatalf("got %v, want ErrNotSharded", err)
	}
	if snap := c.MetricsSnapshot(); snap.JobsDegraded != 1 {
		t.Fatalf("JobsDegraded = %d, want 1", snap.JobsDegraded)
	}
}

// TestFullyJournalledJobNeedsNoCluster: a job whose journal already holds
// every point is pure replay — no workers required, every point announced
// as replayed.
func TestFullyJournalledJobNeedsNoCluster(t *testing.T) {
	clock := newFakeClock()
	c := NewCoordinator(protocolConfig(clock))
	spec := protocolSpec(t)
	points, err := Points(sharedRunner(bench.SizeTest), spec)
	if err != nil {
		t.Fatal(err)
	}
	jn, err := journal.Open(filepath.Join(t.TempDir(), "job.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer jn.Close()
	for _, p := range points {
		if err := jn.Record(p.Key, json.RawMessage(`{"speedup":1.0}`)); err != nil {
			t.Fatal(err)
		}
	}
	replayed := 0
	err = c.RunSharded(context.Background(), "job-replay", spec, nil, jn, func(key string, r bool) {
		if r {
			replayed++
		}
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if replayed != len(points) {
		t.Fatalf("replayed %d points, want %d", replayed, len(points))
	}
}
