package cluster

import (
	"context"
	"encoding/json"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"biaslab/internal/bench"
	"biaslab/internal/journal"
	"biaslab/internal/server"
)

// TestAuditVerdictInheritedByShards: a coordinator that accepted a
// guilty-but-suppressed spec stamps its audit verdict on every shard
// assignment, byte-for-byte through the wire encoding — workers execute
// under the coordinator's judgment and never re-audit.
func TestAuditVerdictInheritedByShards(t *testing.T) {
	clock := newFakeClock()
	c := NewCoordinator(protocolConfig(clock))
	spec := protocolSpec(t)
	verdict := []server.AuditFinding{{
		Rule:       "single-setup",
		Severity:   server.AuditError,
		Message:    "suppressed for the inheritance test",
		Suppressed: true,
	}}

	jn, err := journal.Open(filepath.Join(t.TempDir(), "job.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer jn.Close()
	points, err := Points(sharedRunner(bench.SizeTest), spec)
	if err != nil {
		t.Fatal(err)
	}
	w1 := mustJoin(t, c, "w1", 8)
	errCh := make(chan error, 1)
	go func() {
		errCh <- c.RunSharded(context.Background(), "job-audit", spec, verdict, jn, nil, nil)
	}()
	deadline := time.Now().Add(5 * time.Second)
	for {
		c.mu.Lock()
		_, ok := c.jobs["job-audit"]
		c.mu.Unlock()
		if ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job was never registered")
		}
		time.Sleep(time.Millisecond)
	}

	resp := mustBeat(t, c, HeartbeatRequest{Worker: "w1", Epoch: w1.Epoch})
	if len(resp.Assignments) == 0 {
		t.Fatal("no assignments")
	}
	var recs []PointRecord
	var done []ShardResult
	for _, a := range resp.Assignments {
		if !reflect.DeepEqual(a.Audit, verdict) {
			t.Errorf("shard %s audit = %+v, want inherited %+v", a.Shard, a.Audit, verdict)
		}
		// The verdict survives the wire encoding the HTTP transport uses.
		raw, err := json.Marshal(a)
		if err != nil {
			t.Fatal(err)
		}
		var back ShardAssignment
		if err := json.Unmarshal(raw, &back); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(back.Audit, verdict) {
			t.Errorf("shard %s audit did not round-trip: %+v", a.Shard, back.Audit)
		}
		recs = append(recs, deliver(a, points)...)
		done = append(done, ShardResult{Job: a.Job, Shard: a.Shard})
	}
	mustBeat(t, c, HeartbeatRequest{Worker: "w1", Epoch: w1.Epoch, Points: recs, Done: done})
	select {
	case err := <-errCh:
		if err != nil {
			t.Fatalf("RunSharded: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("job did not complete")
	}
}
