package cluster

import (
	"fmt"
	"testing"
)

// TestRingPlacementStability: when a worker leaves, only the shards it
// owned move; every other shard keeps its preferred worker. This is the
// property that preserves warm compile/link caches across membership
// churn.
func TestRingPlacementStability(t *testing.T) {
	var r ring
	workers := []string{"w1", "w2", "w3"}
	for _, w := range workers {
		r.Add(w)
	}
	keys := make([]string, 100)
	before := map[string]string{}
	for i := range keys {
		keys[i] = fmt.Sprintf("job-abc-s%02d", i)
		before[keys[i]] = r.Place(keys[i])
	}
	r.Remove("w2")
	moved := 0
	for _, k := range keys {
		after := r.Place(k)
		if after == "w2" {
			t.Fatalf("key %s still placed on removed worker", k)
		}
		if before[k] != "w2" && after != before[k] {
			moved++
		}
	}
	if moved != 0 {
		t.Errorf("%d keys not owned by the removed worker moved anyway", moved)
	}
}

// TestRingSpread: placement over several workers uses all of them.
func TestRingSpread(t *testing.T) {
	var r ring
	for _, w := range []string{"w1", "w2", "w3"} {
		r.Add(w)
	}
	got := map[string]int{}
	for i := 0; i < 300; i++ {
		got[r.Place(fmt.Sprintf("shard-%d", i))]++
	}
	for _, w := range []string{"w1", "w2", "w3"} {
		if got[w] == 0 {
			t.Errorf("worker %s received no placements: %v", w, got)
		}
	}
}

// TestRingEmpty: an empty ring places nowhere.
func TestRingEmpty(t *testing.T) {
	var r ring
	if got := r.Place("anything"); got != "" {
		t.Errorf("empty ring placed on %q", got)
	}
}
