package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"biaslab/internal/retry"
)

// Register mounts the cluster protocol on a mux, alongside the daemon's
// ordinary API:
//
//	POST /v1/cluster/join       worker registration (JoinRequest → JoinResponse)
//	POST /v1/cluster/heartbeat  lease renewal + delivery + assignment
//	POST /v1/cluster/leave      graceful departure
//	GET  /v1/cluster/status     worker census and coordinator metrics
func (c *Coordinator) Register(mux *http.ServeMux) {
	mux.HandleFunc("POST /v1/cluster/join", c.handleJoin)
	mux.HandleFunc("POST /v1/cluster/heartbeat", c.handleHeartbeat)
	mux.HandleFunc("POST /v1/cluster/leave", c.handleLeave)
	mux.HandleFunc("GET /v1/cluster/status", c.handleStatus)
}

func clusterJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

type clusterError struct {
	Error string `json:"error"`
}

func (c *Coordinator) handleJoin(w http.ResponseWriter, r *http.Request) {
	var req JoinRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		clusterJSON(w, http.StatusBadRequest, clusterError{err.Error()})
		return
	}
	resp, err := c.Join(req)
	switch {
	case errors.Is(err, ErrNotReady):
		clusterJSON(w, http.StatusServiceUnavailable, clusterError{err.Error()})
	case err != nil:
		clusterJSON(w, http.StatusBadRequest, clusterError{err.Error()})
	default:
		clusterJSON(w, http.StatusOK, resp)
	}
}

func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req HeartbeatRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		clusterJSON(w, http.StatusBadRequest, clusterError{err.Error()})
		return
	}
	resp, err := c.Heartbeat(req)
	switch {
	case errors.Is(err, ErrUnknownWorker):
		// 409: the worker's registration is gone; it must rejoin.
		clusterJSON(w, http.StatusConflict, clusterError{err.Error()})
	case err != nil:
		clusterJSON(w, http.StatusBadRequest, clusterError{err.Error()})
	default:
		clusterJSON(w, http.StatusOK, resp)
	}
}

func (c *Coordinator) handleLeave(w http.ResponseWriter, r *http.Request) {
	var req LeaveRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		clusterJSON(w, http.StatusBadRequest, clusterError{err.Error()})
		return
	}
	c.Leave(req)
	clusterJSON(w, http.StatusOK, struct{}{})
}

func (c *Coordinator) handleStatus(w http.ResponseWriter, r *http.Request) {
	clusterJSON(w, http.StatusOK, c.Status())
}

// ProbeReadyHTTP returns a ProbeReady that checks a worker's /readyz over
// HTTP — the readiness split's cluster consumer: a draining worker
// answers 503 there and is refused membership.
func ProbeReadyHTTP(client *http.Client) func(addr string) error {
	if client == nil {
		client = http.DefaultClient
	}
	return func(addr string) error {
		resp, err := client.Get(addr + "/readyz")
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("readyz returned %s", resp.Status)
		}
		return nil
	}
}

// httpTransport is the worker's HTTP client for the coordinator protocol.
type httpTransport struct {
	base   string
	client *http.Client
	retry  retry.Policy
}

// Dial returns a Transport speaking the protocol against a coordinator at
// base (e.g. http://host:port). Transient failures — connection errors
// and 5xx — are retried with capped exponential backoff; protocol
// rejections (ErrUnknownWorker) are returned to the worker loop, which
// knows the remedy is a rejoin, not a retry.
func Dial(base string, client *http.Client, pol retry.Policy) Transport {
	if client == nil {
		client = http.DefaultClient
	}
	return &httpTransport{base: base, client: client, retry: pol}
}

func (t *httpTransport) Join(ctx context.Context, req JoinRequest) (JoinResponse, error) {
	var resp JoinResponse
	err := t.post(ctx, "/v1/cluster/join", req, &resp)
	return resp, err
}

func (t *httpTransport) Heartbeat(ctx context.Context, req HeartbeatRequest) (HeartbeatResponse, error) {
	var resp HeartbeatResponse
	err := t.post(ctx, "/v1/cluster/heartbeat", req, &resp)
	return resp, err
}

func (t *httpTransport) Leave(ctx context.Context, req LeaveRequest) error {
	return t.post(ctx, "/v1/cluster/leave", req, &struct{}{})
}

// post sends one protocol request, retrying transport-level failures.
func (t *httpTransport) post(ctx context.Context, path string, req, resp any) error {
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	transient := func(err error) bool {
		if errors.Is(err, ErrUnknownWorker) {
			return false // the remedy is a rejoin, not a retry
		}
		var se *statusError
		if errors.As(err, &se) {
			return se.status >= 500
		}
		return true // network-level failure
	}
	return t.retry.Do(ctx, path, transient, func() error {
		httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost, t.base+path, bytes.NewReader(body))
		if err != nil {
			return err
		}
		httpReq.Header.Set("Content-Type", "application/json")
		httpResp, err := t.client.Do(httpReq)
		if err != nil {
			return err
		}
		defer httpResp.Body.Close()
		if httpResp.StatusCode != http.StatusOK {
			var ce clusterError
			data, _ := io.ReadAll(io.LimitReader(httpResp.Body, 1<<16))
			json.Unmarshal(data, &ce)
			if httpResp.StatusCode == http.StatusConflict {
				return fmt.Errorf("%w (%s)", ErrUnknownWorker, ce.Error)
			}
			return &statusError{status: httpResp.StatusCode, msg: ce.Error}
		}
		return json.NewDecoder(httpResp.Body).Decode(resp)
	})
}

// statusError is a non-200 protocol response.
type statusError struct {
	status int
	msg    string
}

func (e *statusError) Error() string {
	return fmt.Sprintf("cluster: coordinator returned %d: %s", e.status, e.msg)
}
