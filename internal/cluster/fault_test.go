//go:build faultinject

package cluster_test

import (
	"bytes"
	"testing"
	"time"

	"biaslab/internal/cluster"
	"biaslab/internal/faultinject"
	"biaslab/internal/retry"
	"biaslab/internal/server"
)

// These tests require the faultinject build tag:
//
//	go test -tags faultinject ./internal/cluster/
//
// They drive the cluster's three injection sites — worker kill, heartbeat
// drop, and shard stall — and prove the recovery machinery converges on
// byte-identical results every time.

// TestFaultKillWorker: the "kill/<worker>" site crashes w1 mid-sweep — no
// leave, executors abandoned. Its leases expire, the shards requeue on
// w2, and the merged result is byte-identical.
func TestFaultKillWorker(t *testing.T) {
	faultinject.Reset()
	t.Cleanup(faultinject.Reset)
	// Fires on w1's fourth tick, ~100ms in — after it has taken leases.
	faultinject.Arm(faultinject.Fault{Stage: "cluster", Match: "kill/w1", Mode: faultinject.ModeError, After: 3})

	srv, coord := newClusterServer(t, cluster.CoordinatorConfig{
		LeaseTTL:   250 * time.Millisecond,
		Heartbeat:  25 * time.Millisecond,
		StealAfter: time.Hour, // recovery must come from lease expiry
		Backoff:    retry.Policy{Base: 5 * time.Millisecond, Cap: 50 * time.Millisecond},
	})
	startWorker(t, "w1", cluster.LocalTransport{C: coord})
	startWorker(t, "w2", cluster.LocalTransport{C: coord})
	waitWorkers(t, coord, 2)

	spec := server.JobSpec{Kind: server.KindSweepEnv, Size: "test", Bench: "hmmer", Machine: "p4", Step: 256}
	raw := submitAndFetch(t, srv, spec)
	if local := localBytes(t, spec); !bytes.Equal(raw, local) {
		t.Error("result after injected kill differs from single-node result")
	}
	if faultinject.Fired() == 0 {
		t.Fatal("kill fault never fired")
	}
	snap := coord.MetricsSnapshot()
	if snap.LeasesExpired == 0 {
		t.Error("LeasesExpired = 0: the killed worker's leases never expired")
	}
	if snap.ShardsRetried == 0 {
		t.Error("ShardsRetried = 0: no shard was requeued after the kill")
	}
	if snap.MergeConflicts != 0 {
		t.Errorf("MergeConflicts = %d, want 0", snap.MergeConflicts)
	}
}

// TestFaultHeartbeatDrop: the "heartbeat/<worker>" site swallows one
// beat. The outbox redelivers on the next beat, so nothing is lost and
// the result is byte-identical.
func TestFaultHeartbeatDrop(t *testing.T) {
	faultinject.Reset()
	t.Cleanup(faultinject.Reset)
	// Transient: fires exactly once, dropping a single beat mid-job.
	faultinject.Arm(faultinject.Fault{Stage: "cluster", Match: "heartbeat/w1", Mode: faultinject.ModeTransient, After: 4})

	srv, coord := newClusterServer(t, cluster.CoordinatorConfig{
		LeaseTTL:  500 * time.Millisecond,
		Heartbeat: 25 * time.Millisecond,
	})
	startWorker(t, "w1", cluster.LocalTransport{C: coord})
	waitWorkers(t, coord, 1)

	spec := server.JobSpec{Kind: server.KindSweepEnv, Size: "test", Bench: "hmmer", Machine: "p4", Step: 512}
	raw := submitAndFetch(t, srv, spec)
	if local := localBytes(t, spec); !bytes.Equal(raw, local) {
		t.Error("result after dropped heartbeat differs from single-node result")
	}
	if faultinject.Fired() == 0 {
		t.Fatal("heartbeat fault never fired")
	}
	if snap := coord.MetricsSnapshot(); snap.MergeConflicts != 0 {
		t.Errorf("MergeConflicts = %d, want 0", snap.MergeConflicts)
	}
}

// TestFaultStallSteal: the "stall/<shard>" site wedges one shard's
// executor until its context is cancelled. With long leases the lease
// table never expires it; recovery must come from work-stealing once the
// queues drain. The stolen copy re-executes (the fault's budget is
// spent), wins, and the loser's revocation unblocks the wedged executor.
func TestFaultStallSteal(t *testing.T) {
	faultinject.Reset()
	t.Cleanup(faultinject.Reset)
	faultinject.Arm(faultinject.Fault{Stage: "cluster", Match: "stall/", Mode: faultinject.ModeError, Times: 1})

	srv, coord := newClusterServer(t, cluster.CoordinatorConfig{
		LeaseTTL:   10 * time.Second, // renewals keep the wedged lease alive
		Heartbeat:  20 * time.Millisecond,
		StealAfter: 150 * time.Millisecond,
	})
	startWorker(t, "w1", cluster.LocalTransport{C: coord})
	startWorker(t, "w2", cluster.LocalTransport{C: coord})
	waitWorkers(t, coord, 2)

	spec := server.JobSpec{Kind: server.KindSweepEnv, Size: "test", Bench: "hmmer", Machine: "p4", Step: 256}
	raw := submitAndFetch(t, srv, spec)
	if local := localBytes(t, spec); !bytes.Equal(raw, local) {
		t.Error("result after stalled shard differs from single-node result")
	}
	if faultinject.Fired() == 0 {
		t.Fatal("stall fault never fired")
	}
	snap := coord.MetricsSnapshot()
	if snap.ShardsStolen == 0 {
		t.Error("ShardsStolen = 0: the wedged shard was never stolen")
	}
	if snap.MergeConflicts != 0 {
		t.Errorf("MergeConflicts = %d, want 0", snap.MergeConflicts)
	}
}
