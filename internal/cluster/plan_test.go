package cluster

import (
	"context"
	"path/filepath"
	"testing"

	"biaslab/internal/bench"
	"biaslab/internal/core"
	"biaslab/internal/journal"
	"biaslab/internal/server"
)

// TestPointsMatchSingleNodeJournal is the planner's core contract: for
// every shardable kind, the planned point keys are exactly the keys a
// single-node checkpointed run journals. If these ever diverge, cluster
// workers would measure points the merge cannot place — so the test runs
// the real single-node path and compares.
func TestPointsMatchSingleNodeJournal(t *testing.T) {
	specs := []server.JobSpec{
		{Kind: server.KindSweepEnv, Size: "test", Bench: "hmmer", Machine: "p4", Step: 512},
		{Kind: server.KindSweepLink, Size: "test", Bench: "hmmer", Machine: "p4", Orders: 3},
		{Kind: server.KindRandomize, Size: "test", Bench: "hmmer", Machine: "p4", N: 5},
	}
	for _, spec := range specs {
		spec := spec
		t.Run(spec.Kind, func(t *testing.T) {
			canonical, err := spec.Canonicalize()
			if err != nil {
				t.Fatal(err)
			}
			size, _ := bench.ParseSize(canonical.Size)
			r := core.NewRunner(size)
			points, err := Points(r, canonical)
			if err != nil {
				t.Fatal(err)
			}
			if len(points) == 0 {
				t.Fatal("planner produced no points")
			}
			jn, err := journal.Open(filepath.Join(t.TempDir(), "job.jsonl"))
			if err != nil {
				t.Fatal(err)
			}
			defer jn.Close()
			if _, err := server.Execute(context.Background(), r, canonical, jn, nil); err != nil {
				t.Fatal(err)
			}
			unique := map[string]bool{}
			for _, p := range points {
				unique[p.Key] = true
				if _, ok := jn.Raw(p.Key); !ok {
					t.Errorf("planned key %q not journalled by the single-node run", p.Key)
				}
			}
			if jn.Len() != len(unique) {
				t.Errorf("journal has %d keys, planner %d unique keys", jn.Len(), len(unique))
			}
		})
	}
}

// TestPointsRejectsUnshardable: run and experiment jobs have no point
// enumeration.
func TestPointsRejectsUnshardable(t *testing.T) {
	r := core.NewRunner(bench.SizeTest)
	if _, err := Points(r, server.JobSpec{Kind: server.KindRun, Size: "test", Bench: "hmmer", Machine: "p4"}); err == nil {
		t.Fatal("planner accepted a run job")
	}
}

// TestPlanShards: grouping is in order, bounded, and exhaustive.
func TestPlanShards(t *testing.T) {
	shards := planShards("abcdef0123456789", []int{0, 1, 2, 3, 4, 5, 6, 7, 8}, 4)
	if len(shards) != 3 {
		t.Fatalf("got %d shards, want 3", len(shards))
	}
	want := [][]int{{0, 1, 2, 3}, {4, 5, 6, 7}, {8}}
	for i, sh := range shards {
		if len(sh) != len(want[i]) {
			t.Fatalf("shard %d has %d points, want %d", i, len(sh), len(want[i]))
		}
		for j, idx := range sh {
			if idx != want[i][j] {
				t.Fatalf("shard %d point %d = %d, want %d", i, j, idx, want[i][j])
			}
		}
	}
	if id := shardID("abcdef0123456789", 2); id != "abcdef012345-s02" {
		t.Fatalf("shardID = %q", id)
	}
}
