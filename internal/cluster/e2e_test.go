package cluster_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"biaslab/internal/bench"
	"biaslab/internal/cluster"
	"biaslab/internal/core"
	"biaslab/internal/retry"
	"biaslab/internal/server"
)

// runnerCache returns a per-worker runner factory: each simulated worker
// process keeps its own compile/link caches, like a real fleet.
func runnerCache() func(bench.Size) *core.Runner {
	var mu sync.Mutex
	runners := map[bench.Size]*core.Runner{}
	return func(size bench.Size) *core.Runner {
		mu.Lock()
		defer mu.Unlock()
		r, ok := runners[size]
		if !ok {
			r = core.NewRunner(size)
			runners[size] = r
		}
		return r
	}
}

func newClusterServer(t *testing.T, cfg cluster.CoordinatorConfig) (*server.Server, *cluster.Coordinator) {
	t.Helper()
	srv, err := server.New(server.Config{DataDir: t.TempDir(), Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Shutdown(context.Background()) })
	if cfg.Runner == nil {
		cfg.Runner = srv.Runner
	}
	coord := cluster.NewCoordinator(cfg)
	srv.SetCluster(coord, func() string { return coord.MetricsSnapshot().Render() })
	return srv, coord
}

// startWorker runs an in-process worker against a transport until the
// test ends (or the returned cancel is called).
func startWorker(t *testing.T, id string, tr cluster.Transport) context.CancelFunc {
	t.Helper()
	w := cluster.NewWorker(cluster.WorkerConfig{
		ID:        id,
		Slots:     2,
		Runner:    runnerCache(),
		Transport: tr,
		Retry:     retry.Policy{Base: 5 * time.Millisecond, Cap: 50 * time.Millisecond},
	})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		w.Run(ctx)
	}()
	t.Cleanup(func() {
		cancel()
		<-done
	})
	return cancel
}

// waitWorkers blocks until n workers have joined — submitting before the
// fleet registers would (correctly) degrade the job to local execution,
// which is not what these tests are probing.
func waitWorkers(t *testing.T, coord *cluster.Coordinator, n int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if snap := coord.MetricsSnapshot(); snap.WorkersAlive >= n {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("fleet of %d never assembled", n)
}

func waitJob(t *testing.T, srv *server.Server, id string) *server.JobStatus {
	t.Helper()
	deadline := time.Now().Add(180 * time.Second)
	for time.Now().Before(deadline) {
		st, ok := srv.Job(id)
		if !ok {
			t.Fatalf("job %s vanished", id)
		}
		switch st.State {
		case server.StateDone, server.StateFailed, server.StateCanceled:
			return st
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish in time", id)
	return nil
}

// localBytes computes the spec's result through the ordinary single-node
// path — the reference every cluster result must match byte for byte.
func localBytes(t *testing.T, spec server.JobSpec) []byte {
	t.Helper()
	canonical, err := spec.Canonicalize()
	if err != nil {
		t.Fatal(err)
	}
	size, _ := bench.ParseSize(canonical.Size)
	res, err := server.Execute(context.Background(), core.NewRunner(size), canonical, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := server.EncodeResult(res)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

func submitAndFetch(t *testing.T, srv *server.Server, spec server.JobSpec) []byte {
	t.Helper()
	sub, err := srv.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	st := waitJob(t, srv, sub.ID)
	if st.State != server.StateDone {
		t.Fatalf("job ended %s: %+v", st.State, st.Error)
	}
	raw, ok, err := srv.Result(sub.Key)
	if err != nil || !ok {
		t.Fatalf("result missing: ok=%v err=%v", ok, err)
	}
	return raw
}

// TestClusterByteIdentity is the tentpole's core guarantee: every
// shardable kind, fanned out over a two-worker fleet, stores exactly the
// bytes the single-node path produces.
func TestClusterByteIdentity(t *testing.T) {
	srv, coord := newClusterServer(t, cluster.CoordinatorConfig{
		LeaseTTL:  500 * time.Millisecond,
		Heartbeat: 20 * time.Millisecond,
	})
	startWorker(t, "w1", cluster.LocalTransport{C: coord})
	startWorker(t, "w2", cluster.LocalTransport{C: coord})
	waitWorkers(t, coord, 2)

	specs := []server.JobSpec{
		{Kind: server.KindSweepEnv, Size: "test", Bench: "hmmer", Machine: "p4", Step: 256},
		{Kind: server.KindSweepLink, Size: "test", Bench: "hmmer", Machine: "p4", Orders: 4},
		{Kind: server.KindSweepTenant, Size: "test", Bench: "sjeng", Machine: "core2"},
		{Kind: server.KindRandomize, Size: "test", Bench: "hmmer", Machine: "p4", N: 6},
		{Kind: server.KindRandomize, Size: "test", Bench: "sjeng", Machine: "core2", N: 6, CoRandom: true},
	}
	for i, spec := range specs {
		spec := spec
		t.Run(fmt.Sprintf("%d-%s", i, spec.Kind), func(t *testing.T) {
			raw := submitAndFetch(t, srv, spec)
			if local := localBytes(t, spec); !bytes.Equal(raw, local) {
				t.Errorf("cluster result differs from single-node result\ncluster: %s\nlocal:   %s", raw, local)
			}
		})
	}
	snap := coord.MetricsSnapshot()
	if snap.JobsSharded != uint64(len(specs)) {
		t.Errorf("JobsSharded = %d, want %d", snap.JobsSharded, len(specs))
	}
	if snap.PointsIngested == 0 {
		t.Error("no points flowed through the cluster")
	}
	if snap.MergeConflicts != 0 {
		t.Errorf("MergeConflicts = %d, want 0", snap.MergeConflicts)
	}
}

// flakyTransport simulates a worker crash without fault-injection tags: a
// fixed number of heartbeats succeed, then every protocol call fails
// forever — the worker process is effectively gone, without a graceful
// leave, exactly like a kill.
type flakyTransport struct {
	inner  cluster.Transport
	mu     sync.Mutex
	beats  int
	budget int
}

func newFlakyTransport(inner cluster.Transport, budget int) *flakyTransport {
	return &flakyTransport{inner: inner, budget: budget}
}

func (f *flakyTransport) dead() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.beats++
	return f.beats > f.budget
}

func (f *flakyTransport) Join(ctx context.Context, req cluster.JoinRequest) (cluster.JoinResponse, error) {
	return f.inner.Join(ctx, req)
}

func (f *flakyTransport) Heartbeat(ctx context.Context, req cluster.HeartbeatRequest) (cluster.HeartbeatResponse, error) {
	if f.dead() {
		return cluster.HeartbeatResponse{}, errors.New("connection refused (simulated crash)")
	}
	return f.inner.Heartbeat(ctx, req)
}

func (f *flakyTransport) Leave(ctx context.Context, req cluster.LeaveRequest) error {
	return errors.New("connection refused (simulated crash)")
}

// TestClusterWorkerCrashRecovers is the chaos acceptance test: kill a
// worker mid-sweep (its heartbeats stop cold, no leave), and the merged
// result must still be byte-identical to a single-node run, with the
// coordinator's metrics showing the failure machinery engaged — leases
// expired and shards retried.
func TestClusterWorkerCrashRecovers(t *testing.T) {
	srv, coord := newClusterServer(t, cluster.CoordinatorConfig{
		LeaseTTL:   250 * time.Millisecond,
		Heartbeat:  25 * time.Millisecond,
		StealAfter: time.Hour, // force recovery through lease expiry, not stealing
		Backoff:    retry.Policy{Base: 5 * time.Millisecond, Cap: 50 * time.Millisecond},
	})
	// w1 crashes after three heartbeats — mid-sweep, holding leases.
	startWorker(t, "w1", newFlakyTransport(cluster.LocalTransport{C: coord}, 3))
	startWorker(t, "w2", cluster.LocalTransport{C: coord})
	waitWorkers(t, coord, 2)

	spec := server.JobSpec{Kind: server.KindSweepEnv, Size: "test", Bench: "hmmer", Machine: "p4", Step: 256}
	raw := submitAndFetch(t, srv, spec)
	if local := localBytes(t, spec); !bytes.Equal(raw, local) {
		t.Error("result after worker crash differs from single-node result")
	}
	snap := coord.MetricsSnapshot()
	if snap.LeasesExpired == 0 {
		t.Error("LeasesExpired = 0: the crashed worker's leases never expired")
	}
	if snap.ShardsRetried == 0 {
		t.Error("ShardsRetried = 0: no shard was requeued after the crash")
	}
	if snap.MergeConflicts != 0 {
		t.Errorf("MergeConflicts = %d, want 0", snap.MergeConflicts)
	}
}

// TestClusterFleetDiesDegradesToLocal: every worker dies mid-job; the
// coordinator finishes the remaining shards inline through its own
// runner, and the result is still byte-identical.
func TestClusterFleetDiesDegradesToLocal(t *testing.T) {
	srv, coord := newClusterServer(t, cluster.CoordinatorConfig{
		LeaseTTL:  150 * time.Millisecond,
		Heartbeat: 25 * time.Millisecond,
		Backoff:   retry.Policy{Base: 5 * time.Millisecond, Cap: 50 * time.Millisecond},
	})
	startWorker(t, "w1", newFlakyTransport(cluster.LocalTransport{C: coord}, 2))
	waitWorkers(t, coord, 1)

	spec := server.JobSpec{Kind: server.KindSweepEnv, Size: "test", Bench: "hmmer", Machine: "p4", Step: 256}
	raw := submitAndFetch(t, srv, spec)
	if local := localBytes(t, spec); !bytes.Equal(raw, local) {
		t.Error("degraded result differs from single-node result")
	}
	if snap := coord.MetricsSnapshot(); snap.ShardsLocal == 0 {
		t.Error("ShardsLocal = 0: the coordinator never took over")
	}
}

// TestClusterNoWorkersRunsLocally: with an attached coordinator but no
// fleet, the server's ordinary local path runs the job — same bytes, one
// degraded-jobs tick.
func TestClusterNoWorkersRunsLocally(t *testing.T) {
	srv, coord := newClusterServer(t, cluster.CoordinatorConfig{
		LeaseTTL:  200 * time.Millisecond,
		Heartbeat: 20 * time.Millisecond,
	})
	spec := server.JobSpec{Kind: server.KindSweepEnv, Size: "test", Bench: "hmmer", Machine: "p4", Step: 512}
	raw := submitAndFetch(t, srv, spec)
	if local := localBytes(t, spec); !bytes.Equal(raw, local) {
		t.Error("locally degraded result differs from single-node result")
	}
	if snap := coord.MetricsSnapshot(); snap.JobsDegraded != 1 {
		t.Errorf("JobsDegraded = %d, want 1", snap.JobsDegraded)
	}
}

// TestClusterHTTPTransport drives the protocol over real HTTP: the
// coordinator's handlers on one side, Dial's retrying client on the
// other.
func TestClusterHTTPTransport(t *testing.T) {
	srv, coord := newClusterServer(t, cluster.CoordinatorConfig{
		LeaseTTL:  500 * time.Millisecond,
		Heartbeat: 20 * time.Millisecond,
	})
	mux := http.NewServeMux()
	mux.Handle("/", srv.Handler())
	coord.Register(mux)
	ts := httptest.NewServer(mux)
	defer ts.Close()

	tr := cluster.Dial(ts.URL, nil, retry.Policy{Base: 5 * time.Millisecond, Cap: 50 * time.Millisecond})
	startWorker(t, "w-http", tr)
	waitWorkers(t, coord, 1)

	spec := server.JobSpec{Kind: server.KindSweepEnv, Size: "test", Bench: "hmmer", Machine: "p4", Step: 512}
	raw := submitAndFetch(t, srv, spec)
	if local := localBytes(t, spec); !bytes.Equal(raw, local) {
		t.Error("HTTP-transport result differs from single-node result")
	}
	if snap := coord.MetricsSnapshot(); snap.PointsIngested == 0 {
		t.Error("no points delivered over HTTP")
	}
}

// TestJoinReadinessProbe: a worker whose /readyz answers 503 (draining)
// is refused membership — the readiness split's cluster consumer.
func TestJoinReadinessProbe(t *testing.T) {
	draining := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/readyz" {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer draining.Close()
	ready := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok\n"))
	}))
	defer ready.Close()

	coord := cluster.NewCoordinator(cluster.CoordinatorConfig{
		Runner:     runnerCache(),
		ProbeReady: cluster.ProbeReadyHTTP(nil),
	})
	if _, err := coord.Join(cluster.JoinRequest{Worker: "draining", Addr: draining.URL}); !errors.Is(err, cluster.ErrNotReady) {
		t.Fatalf("draining worker join: got %v, want ErrNotReady", err)
	}
	if _, err := coord.Join(cluster.JoinRequest{Worker: "ready", Addr: ready.URL}); err != nil {
		t.Fatalf("ready worker join: %v", err)
	}
}
