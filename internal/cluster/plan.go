package cluster

import (
	"fmt"

	"biaslab/internal/bench"
	"biaslab/internal/core"
	"biaslab/internal/server"
)

// Point is one planned unit of work: the i-th measurement of a job, and
// the single-node checkpoint key its value is journalled under. Two
// points may share a key (randomize jobs can draw coincident setups);
// they are still distinct units for progress accounting, exactly as they
// are on a single node.
type Point struct {
	Index int
	Key   string
}

// Points enumerates a shardable job's full measurement set, in the order
// the single-node path measures it. The enumeration is a pure function of
// the canonical spec (plus the benchmark's unit list, which the runner
// resolves deterministically), so the coordinator's planner, a worker's
// shard executor, and a single-node resume all derive exactly the same
// points with exactly the same keys — the foundation of the byte-identical
// merge.
func Points(r *core.Runner, spec server.JobSpec) ([]Point, error) {
	setup, b, err := server.BaseSetup(spec)
	if err != nil {
		return nil, err
	}
	var points []Point
	switch spec.Kind {
	case server.KindSweepEnv:
		for i, sz := range core.DefaultEnvSizes(spec.Step) {
			s := setup
			s.EnvBytes = sz
			points = append(points, Point{i, core.PointKey("env", b.Name, s)})
		}
	case server.KindSweepPad:
		for i, v := range core.DefaultPadSizes() {
			s := setup
			s.TextPad = v
			points = append(points, Point{i, core.PointKey("pad", b.Name, s)})
		}
	case server.KindSweepBase:
		for i, v := range core.DefaultTextBases() {
			s := setup
			s.TextBase = v
			points = append(points, Point{i, core.PointKey("base", b.Name, s)})
		}
	case server.KindSweepLink:
		for i, c := range core.LinkCandidates(r.UnitNames(b), spec.Orders, spec.Seed) {
			s := setup
			s.LinkOrder = c.Order
			points = append(points, Point{i, core.PointKey("link", b.Name, s)})
		}
	case server.KindSweepTenant:
		for i, co := range core.DefaultCoRunners() {
			points = append(points, Point{i, core.TenantPointKey(b.Name, setup, co)})
		}
	case server.KindRandomize:
		for i, s := range randomSetups(r, b, setup, spec) {
			points = append(points, Point{i, core.PointKey("rand", b.Name, s)})
		}
	default:
		return nil, fmt.Errorf("cluster: job kind %q is not shardable", spec.Kind)
	}
	return points, nil
}

// randomSetups derives a randomize job's setups — with the co-runner as
// one more randomized factor when the spec asks for it. One function so
// the planner and the shard executor cannot disagree on the draw.
func randomSetups(r *core.Runner, b *bench.Benchmark, setup core.Setup, spec server.JobSpec) []core.Setup {
	if spec.CoRandom {
		return core.RandomSetupsTenant(setup, spec.N, len(r.UnitNames(b)), spec.Seed, core.DefaultCoRunners())
	}
	return core.RandomSetups(setup, spec.N, len(r.UnitNames(b)), spec.Seed)
}

// planShards groups the pending point indices of a job into shards of at
// most perShard points, in enumeration order. Shard ids embed the job key
// prefix so every id is self-describing in logs and fault-injection site
// keys.
func planShards(jobKey string, pending []int, perShard int) [][]int {
	if perShard <= 0 {
		perShard = 4
	}
	var shards [][]int
	for len(pending) > 0 {
		n := perShard
		if n > len(pending) {
			n = len(pending)
		}
		shards = append(shards, pending[:n:n])
		pending = pending[n:]
	}
	return shards
}

// shardID names the seq-th shard of a job.
func shardID(jobKey string, seq int) string {
	p := jobKey
	if len(p) > 12 {
		p = p[:12]
	}
	return fmt.Sprintf("%s-s%02d", p, seq)
}
