package cluster

import (
	"fmt"
	"strings"
	"sync"
)

// clusterMetrics counts the coordinator's protocol events. Everything the
// chaos tests assert about — lease expiries, retries, steals — is a
// counter here, so "the failure machinery actually engaged" is checkable
// from /metrics rather than from logs.
type clusterMetrics struct {
	mu sync.Mutex

	workersJoined uint64
	workersLeft   uint64
	workersDead   uint64
	heartbeats    uint64

	leasesGranted uint64
	leasesRenewed uint64
	leasesExpired uint64

	shardsPlanned   uint64
	shardsCompleted uint64
	shardsRetried   uint64
	shardsStolen    uint64
	shardsLocal     uint64

	pointsIngested  uint64
	pointsDuplicate uint64
	mergeConflicts  uint64

	jobsSharded  uint64
	jobsDegraded uint64
}

func (m *clusterMetrics) add(field *uint64, n uint64) {
	m.mu.Lock()
	*field += n
	m.mu.Unlock()
}

// MetricsSnapshot is a point-in-time copy of the coordinator's counters
// plus the registry's live worker census.
type MetricsSnapshot struct {
	WorkersAlive   int    `json:"workers_alive"`
	WorkersSuspect int    `json:"workers_suspect"`
	WorkersJoined  uint64 `json:"workers_joined"`
	WorkersLeft    uint64 `json:"workers_left"`
	WorkersDead    uint64 `json:"workers_dead"`
	Heartbeats     uint64 `json:"heartbeats"`

	LeasesGranted uint64 `json:"leases_granted"`
	LeasesRenewed uint64 `json:"leases_renewed"`
	LeasesExpired uint64 `json:"leases_expired"`

	ShardsPlanned   uint64 `json:"shards_planned"`
	ShardsCompleted uint64 `json:"shards_completed"`
	ShardsRetried   uint64 `json:"shards_retried"`
	ShardsStolen    uint64 `json:"shards_stolen"`
	ShardsLocal     uint64 `json:"shards_local"`

	PointsIngested  uint64 `json:"points_ingested"`
	PointsDuplicate uint64 `json:"points_duplicate"`
	MergeConflicts  uint64 `json:"merge_conflicts"`

	JobsSharded  uint64 `json:"jobs_sharded"`
	JobsDegraded uint64 `json:"jobs_degraded"`
}

// Render writes the snapshot in the same text exposition format the
// daemon's /metrics uses; the server appends it after its own counters.
func (s MetricsSnapshot) Render() string {
	var b strings.Builder
	line := func(name string, v uint64) {
		fmt.Fprintf(&b, "biaslabd_cluster_%s %d\n", name, v)
	}
	line("workers_alive", uint64(s.WorkersAlive))
	line("workers_suspect", uint64(s.WorkersSuspect))
	line("workers_joined_total", s.WorkersJoined)
	line("workers_left_total", s.WorkersLeft)
	line("workers_dead_total", s.WorkersDead)
	line("heartbeats_total", s.Heartbeats)
	line("leases_granted_total", s.LeasesGranted)
	line("leases_renewed_total", s.LeasesRenewed)
	line("leases_expired_total", s.LeasesExpired)
	line("shards_planned_total", s.ShardsPlanned)
	line("shards_completed_total", s.ShardsCompleted)
	line("shards_retried_total", s.ShardsRetried)
	line("shards_stolen_total", s.ShardsStolen)
	line("shards_local_total", s.ShardsLocal)
	line("points_ingested_total", s.PointsIngested)
	line("points_duplicate_total", s.PointsDuplicate)
	line("merge_conflicts_total", s.MergeConflicts)
	line("jobs_sharded_total", s.JobsSharded)
	line("jobs_degraded_total", s.JobsDegraded)
	return b.String()
}
