// Package ir defines the compiler's intermediate representation: a typed
// three-address code over virtual registers, organised into functions of
// basic blocks. The representation is deliberately non-SSA; scalars live in
// virtual registers and addressable data (arrays, spilled locals) lives in
// named stack slots or globals.
//
// The package also provides a reference interpreter (see interp.go) that
// executes IR directly against a flat byte-addressed memory. The interpreter
// is the semantic oracle for differential testing: every optimization level
// and code-generator personality must produce machine code whose observable
// output (the checksum stream) matches the interpreter's.
package ir

import (
	"fmt"
	"strings"
)

// VReg identifies a virtual register within a function. Parameters occupy
// v0..v(n-1); the builder allocates the rest densely.
type VReg int

func (v VReg) String() string { return fmt.Sprintf("v%d", int(v)) }

// Op is an IR operation.
type Op uint8

const (
	OpNop Op = iota

	// OpConst materializes the 64-bit constant Imm into Dst.
	OpConst

	// Binary arithmetic: Dst ← A op B. Division and remainder are signed
	// and trap on a zero divisor.
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpRem
	OpAnd
	OpOr
	OpXor
	OpShl
	OpShr // logical
	OpSar // arithmetic

	// Comparisons: Dst ← (A op B) ? 1 : 0, signed.
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe

	// OpNeg and OpNot are unary: Dst ← -A, Dst ← ^A.
	OpNeg
	OpNot

	// OpLoad reads Size bytes at address A (+Imm) into Dst. Signed loads
	// sign-extend. OpStore writes the low Size bytes of B to address A
	// (+Imm).
	OpLoad
	OpStore

	// OpAddrGlobal sets Dst to the address of global Sym plus Imm.
	// OpAddrSlot sets Dst to the address of frame slot Slot plus Imm.
	OpAddrGlobal
	OpAddrSlot

	// OpCall calls function Sym with Args; if the callee returns a value
	// it lands in Dst (Dst < 0 means the result is discarded).
	OpCall

	// OpSys performs system call number Imm with arguments Args; a result,
	// if any, lands in Dst.
	OpSys

	// OpCopy moves A to Dst. Inserted by the builder and by inlining;
	// copy-propagation removes most of them.
	OpCopy
)

var opNames = map[Op]string{
	OpNop: "nop", OpConst: "const", OpAdd: "add", OpSub: "sub", OpMul: "mul",
	OpDiv: "div", OpRem: "rem", OpAnd: "and", OpOr: "or", OpXor: "xor",
	OpShl: "shl", OpShr: "shr", OpSar: "sar", OpEq: "eq", OpNe: "ne",
	OpLt: "lt", OpLe: "le", OpGt: "gt", OpGe: "ge", OpNeg: "neg",
	OpNot: "not", OpLoad: "load", OpStore: "store",
	OpAddrGlobal: "addrg", OpAddrSlot: "addrs", OpCall: "call",
	OpSys: "sys", OpCopy: "copy",
}

func (op Op) String() string {
	if s, ok := opNames[op]; ok {
		return s
	}
	return fmt.Sprintf("op%d?", uint8(op))
}

// IsBinary reports whether op is a two-operand arithmetic or comparison op.
func (op Op) IsBinary() bool { return op >= OpAdd && op <= OpGe }

// IsCompare reports whether op is a comparison.
func (op Op) IsCompare() bool { return op >= OpEq && op <= OpGe }

// IsUnary reports whether op is a one-operand op.
func (op Op) IsUnary() bool { return op == OpNeg || op == OpNot || op == OpCopy }

// Commutative reports whether op's operands may be swapped.
func (op Op) Commutative() bool {
	switch op {
	case OpAdd, OpMul, OpAnd, OpOr, OpXor, OpEq, OpNe:
		return true
	}
	return false
}

// Instr is a single three-address instruction. Which fields are meaningful
// depends on Op; see the Op constants. Dst of -1 means "no destination".
type Instr struct {
	Op     Op
	Dst    VReg
	A, B   VReg
	Imm    int64
	Sym    string
	Slot   int
	Size   uint8 // access width for OpLoad/OpStore: 1, 2, 4, 8
	Signed bool  // sign-extend loads
	Args   []VReg
}

func (in Instr) String() string {
	switch {
	case in.Op == OpConst:
		return fmt.Sprintf("%s = const %d", in.Dst, in.Imm)
	case in.Op == OpLoad:
		return fmt.Sprintf("%s = load%d%s %s+%d", in.Dst, in.Size, signSuffix(in.Signed), in.A, in.Imm)
	case in.Op == OpStore:
		return fmt.Sprintf("store%d %s+%d, %s", in.Size, in.A, in.Imm, in.B)
	case in.Op == OpAddrGlobal:
		return fmt.Sprintf("%s = addrg %s+%d", in.Dst, in.Sym, in.Imm)
	case in.Op == OpAddrSlot:
		return fmt.Sprintf("%s = addrs slot%d+%d", in.Dst, in.Slot, in.Imm)
	case in.Op == OpCall:
		args := make([]string, len(in.Args))
		for i, a := range in.Args {
			args[i] = a.String()
		}
		if in.Dst < 0 {
			return fmt.Sprintf("call %s(%s)", in.Sym, strings.Join(args, ", "))
		}
		return fmt.Sprintf("%s = call %s(%s)", in.Dst, in.Sym, strings.Join(args, ", "))
	case in.Op == OpSys:
		args := make([]string, len(in.Args))
		for i, a := range in.Args {
			args[i] = a.String()
		}
		return fmt.Sprintf("%s = sys %d(%s)", in.Dst, in.Imm, strings.Join(args, ", "))
	case in.Op.IsUnary():
		return fmt.Sprintf("%s = %s %s", in.Dst, in.Op, in.A)
	case in.Op.IsBinary():
		return fmt.Sprintf("%s = %s %s, %s", in.Dst, in.Op, in.A, in.B)
	}
	return in.Op.String()
}

func signSuffix(signed bool) string {
	if signed {
		return "s"
	}
	return "u"
}

// TermKind discriminates block terminators.
type TermKind uint8

const (
	// TermRet returns from the function; Val is the result register or -1.
	TermRet TermKind = iota
	// TermJmp jumps unconditionally to Then.
	TermJmp
	// TermBr branches to Then if Cond is non-zero, else to Else.
	TermBr
)

// Term is a basic-block terminator.
type Term struct {
	Kind TermKind
	Cond VReg
	Val  VReg // TermRet result, or -1
	Then *Block
	Else *Block
}

func (t Term) String() string {
	switch t.Kind {
	case TermRet:
		if t.Val < 0 {
			return "ret"
		}
		return fmt.Sprintf("ret %s", t.Val)
	case TermJmp:
		return fmt.Sprintf("jmp %s", t.Then.Name)
	case TermBr:
		return fmt.Sprintf("br %s, %s, %s", t.Cond, t.Then.Name, t.Else.Name)
	}
	return "term?"
}

// Block is a basic block: straight-line instructions plus one terminator.
type Block struct {
	Name   string
	Index  int // position within Func.Blocks; maintained by Func.Renumber
	Instrs []Instr
	Term   Term
}

// Succs returns the block's successors in branch order.
func (b *Block) Succs() []*Block {
	switch b.Term.Kind {
	case TermJmp:
		return []*Block{b.Term.Then}
	case TermBr:
		return []*Block{b.Term.Then, b.Term.Else}
	}
	return nil
}

// Slot describes one unit of addressable frame storage (e.g. a local array).
type Slot struct {
	Name  string
	Size  int64
	Align int64
}

// Loop records the structure of a source-level loop, annotated by the
// frontend so the unroller need not rediscover natural loops. Header is the
// block that tests the condition; Latch is the block that jumps back to
// Header; Blocks lists every block in the loop body (excluding Header);
// Exit is the block control reaches when the condition fails.
type Loop struct {
	Header *Block
	Latch  *Block
	Exit   *Block
	Blocks []*Block
}

// Func is an IR function.
type Func struct {
	Name      string
	NumParams int
	NumVRegs  int
	HasResult bool
	Blocks    []*Block // Blocks[0] is the entry block
	Slots     []Slot
	Loops     []Loop // frontend loop annotations; passes may consume these
}

// NewVReg allocates a fresh virtual register.
func (f *Func) NewVReg() VReg {
	v := VReg(f.NumVRegs)
	f.NumVRegs++
	return v
}

// Renumber refreshes Block.Index after structural edits.
func (f *Func) Renumber() {
	for i, b := range f.Blocks {
		b.Index = i
	}
}

// Entry returns the function's entry block.
func (f *Func) Entry() *Block { return f.Blocks[0] }

// String renders the function as readable IR text.
func (f *Func) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "func %s(params=%d, vregs=%d)", f.Name, f.NumParams, f.NumVRegs)
	if f.HasResult {
		sb.WriteString(" int")
	}
	sb.WriteString(" {\n")
	for _, s := range f.Slots {
		fmt.Fprintf(&sb, "  slot %s[%d] align %d\n", s.Name, s.Size, s.Align)
	}
	for _, b := range f.Blocks {
		fmt.Fprintf(&sb, "%s:\n", b.Name)
		for _, in := range b.Instrs {
			fmt.Fprintf(&sb, "  %s\n", in)
		}
		fmt.Fprintf(&sb, "  %s\n", b.Term)
	}
	sb.WriteString("}\n")
	return sb.String()
}

// Global is a module-level datum.
type Global struct {
	Name  string
	Size  int64
	Align int64
	Init  []byte // nil or shorter than Size ⇒ zero-filled remainder
}

// Module is a compilation unit: one translation unit's worth of globals and
// functions. The linker combines modules; the unit boundaries are what make
// link order meaningful.
type Module struct {
	Name    string
	Globals []*Global
	Funcs   []*Func
}

// Func returns the function named name, or nil.
func (m *Module) Func(name string) *Func {
	for _, f := range m.Funcs {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// Global returns the global named name, or nil.
func (m *Module) GlobalByName(name string) *Global {
	for _, g := range m.Globals {
		if g.Name == name {
			return g
		}
	}
	return nil
}

// String renders the whole module.
func (m *Module) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "module %s\n", m.Name)
	for _, g := range m.Globals {
		fmt.Fprintf(&sb, "global %s[%d] align %d\n", g.Name, g.Size, g.Align)
	}
	for _, f := range m.Funcs {
		sb.WriteString(f.String())
	}
	return sb.String()
}

// Program is a set of modules forming a complete executable: exactly one
// module must define "main".
type Program struct {
	Modules []*Module
}

// FindFunc locates a function by name across all modules.
func (p *Program) FindFunc(name string) *Func {
	for _, m := range p.Modules {
		if f := m.Func(name); f != nil {
			return f
		}
	}
	return nil
}

// FindGlobal locates a global by name across all modules.
func (p *Program) FindGlobal(name string) *Global {
	for _, m := range p.Modules {
		if g := m.GlobalByName(name); g != nil {
			return g
		}
	}
	return nil
}
