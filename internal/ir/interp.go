package ir

import (
	"encoding/binary"
	"fmt"

	"biaslab/internal/isa"
)

// Interp executes a Program directly, serving as the semantic oracle for the
// compiler and machine pipeline. Memory is a flat byte-addressed arena with
// globals placed at GlobalBase and a downward-growing stack for frame slots.
//
// Observable behaviour is collected in Output (SysPutInt/SysPutChar) and
// Checksum (SysChecksum), matching the machine's system-call surface.
type Interp struct {
	Prog     *Program
	Output   []int64
	Checksum uint64
	ExitCode int64

	mem       []byte
	globals   map[string]uint64
	funcs     map[string]*Func
	sp        uint64
	steps     int64
	stepLimit int64
}

// Interpreter memory geometry. These are interpreter-internal and need not
// match the loader's layout; IR semantics never depend on absolute addresses.
const (
	interpMemSize   = 64 << 20
	interpGlobalBas = 0x10000
	interpStackTop  = interpMemSize - 16
)

// DefaultStepLimit bounds interpretation to catch runaway programs in tests.
const DefaultStepLimit = 1 << 30

// NewInterp prepares an interpreter for prog. It verifies the program and
// lays out globals.
func NewInterp(prog *Program) (*Interp, error) {
	if err := prog.Verify(); err != nil {
		return nil, err
	}
	it := &Interp{
		Prog:      prog,
		mem:       make([]byte, interpMemSize),
		globals:   make(map[string]uint64),
		funcs:     make(map[string]*Func),
		sp:        interpStackTop,
		stepLimit: DefaultStepLimit,
	}
	addr := uint64(interpGlobalBas)
	for _, m := range prog.Modules {
		for _, f := range m.Funcs {
			it.funcs[f.Name] = f
		}
		for _, g := range m.Globals {
			align := uint64(g.Align)
			if align == 0 {
				align = 8
			}
			addr = (addr + align - 1) &^ (align - 1)
			it.globals[g.Name] = addr
			copy(it.mem[addr:], g.Init)
			addr += uint64(g.Size)
			if addr >= interpStackTop/2 {
				return nil, fmt.Errorf("ir: interp: globals exceed arena")
			}
		}
	}
	return it, nil
}

// SetStepLimit overrides the default execution budget.
func (it *Interp) SetStepLimit(n int64) { it.stepLimit = n }

// Steps reports how many IR instructions have been executed.
func (it *Interp) Steps() int64 { return it.steps }

// Run executes main to completion.
func (it *Interp) Run() error {
	main := it.funcs["main"]
	_, err := it.call(main, nil)
	return err
}

func (it *Interp) call(f *Func, args []int64) (int64, error) {
	regs := make([]int64, f.NumVRegs)
	copy(regs, args)

	// Allocate frame slots on the interpreter stack.
	slotAddrs := make([]uint64, len(f.Slots))
	savedSP := it.sp
	for i, s := range f.Slots {
		align := uint64(s.Align)
		if align == 0 {
			align = 8
		}
		it.sp -= uint64(s.Size)
		it.sp &^= align - 1
		if it.sp < interpGlobalBas {
			return 0, fmt.Errorf("ir: interp: stack overflow in %s", f.Name)
		}
		slotAddrs[i] = it.sp
		// Zero the slot: frame memory is reused across calls and cmini
		// semantics (like C) leave locals uninitialized, but deterministic
		// zero-fill keeps the oracle and machine comparable when a
		// benchmark reads-before-write by design.
		for j := it.sp; j < it.sp+uint64(s.Size); j++ {
			it.mem[j] = 0
		}
	}
	defer func() { it.sp = savedSP }()

	blk := f.Entry()
	for {
		for _, in := range blk.Instrs {
			it.steps++
			if it.steps > it.stepLimit {
				return 0, fmt.Errorf("ir: interp: step limit exceeded in %s", f.Name)
			}
			switch in.Op {
			case OpNop:
			case OpConst:
				regs[in.Dst] = in.Imm
			case OpCopy:
				regs[in.Dst] = regs[in.A]
			case OpNeg:
				regs[in.Dst] = -regs[in.A]
			case OpNot:
				regs[in.Dst] = ^regs[in.A]
			case OpAdd:
				regs[in.Dst] = regs[in.A] + regs[in.B]
			case OpSub:
				regs[in.Dst] = regs[in.A] - regs[in.B]
			case OpMul:
				regs[in.Dst] = regs[in.A] * regs[in.B]
			case OpDiv:
				if regs[in.B] == 0 {
					return 0, fmt.Errorf("ir: interp: divide by zero in %s", f.Name)
				}
				regs[in.Dst] = regs[in.A] / regs[in.B]
			case OpRem:
				if regs[in.B] == 0 {
					return 0, fmt.Errorf("ir: interp: remainder by zero in %s", f.Name)
				}
				regs[in.Dst] = regs[in.A] % regs[in.B]
			case OpAnd:
				regs[in.Dst] = regs[in.A] & regs[in.B]
			case OpOr:
				regs[in.Dst] = regs[in.A] | regs[in.B]
			case OpXor:
				regs[in.Dst] = regs[in.A] ^ regs[in.B]
			case OpShl:
				regs[in.Dst] = regs[in.A] << (uint64(regs[in.B]) & 63)
			case OpShr:
				regs[in.Dst] = int64(uint64(regs[in.A]) >> (uint64(regs[in.B]) & 63))
			case OpSar:
				regs[in.Dst] = regs[in.A] >> (uint64(regs[in.B]) & 63)
			case OpEq:
				regs[in.Dst] = b2i(regs[in.A] == regs[in.B])
			case OpNe:
				regs[in.Dst] = b2i(regs[in.A] != regs[in.B])
			case OpLt:
				regs[in.Dst] = b2i(regs[in.A] < regs[in.B])
			case OpLe:
				regs[in.Dst] = b2i(regs[in.A] <= regs[in.B])
			case OpGt:
				regs[in.Dst] = b2i(regs[in.A] > regs[in.B])
			case OpGe:
				regs[in.Dst] = b2i(regs[in.A] >= regs[in.B])
			case OpAddrGlobal:
				base, ok := it.globals[in.Sym]
				if !ok {
					return 0, fmt.Errorf("ir: interp: unknown global %s", in.Sym)
				}
				regs[in.Dst] = int64(base) + in.Imm
			case OpAddrSlot:
				regs[in.Dst] = int64(slotAddrs[in.Slot]) + in.Imm
			case OpLoad:
				v, err := it.load(uint64(regs[in.A]+in.Imm), in.Size, in.Signed, f)
				if err != nil {
					return 0, err
				}
				regs[in.Dst] = v
			case OpStore:
				if err := it.store(uint64(regs[in.A]+in.Imm), regs[in.B], in.Size, f); err != nil {
					return 0, err
				}
			case OpCall:
				callee := it.funcs[in.Sym]
				if callee == nil {
					return 0, fmt.Errorf("ir: interp: call to unknown %s", in.Sym)
				}
				callArgs := make([]int64, len(in.Args))
				for i, a := range in.Args {
					callArgs[i] = regs[a]
				}
				rv, err := it.call(callee, callArgs)
				if err != nil {
					return 0, err
				}
				if in.Dst >= 0 {
					regs[in.Dst] = rv
				}
			case OpSys:
				rv, err := it.sys(in.Imm, regs, in.Args)
				if err != nil {
					return 0, err
				}
				if in.Dst >= 0 {
					regs[in.Dst] = rv
				}
			default:
				return 0, fmt.Errorf("ir: interp: unhandled op %v", in.Op)
			}
		}
		switch blk.Term.Kind {
		case TermRet:
			if blk.Term.Val >= 0 {
				return regs[blk.Term.Val], nil
			}
			return 0, nil
		case TermJmp:
			blk = blk.Term.Then
		case TermBr:
			if regs[blk.Term.Cond] != 0 {
				blk = blk.Term.Then
			} else {
				blk = blk.Term.Else
			}
		}
	}
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

func (it *Interp) load(addr uint64, size uint8, signed bool, f *Func) (int64, error) {
	if addr+uint64(size) > uint64(len(it.mem)) {
		return 0, fmt.Errorf("ir: interp: load out of bounds at %#x in %s", addr, f.Name)
	}
	var u uint64
	switch size {
	case 1:
		u = uint64(it.mem[addr])
		if signed {
			return int64(int8(u)), nil
		}
	case 2:
		u = uint64(binary.LittleEndian.Uint16(it.mem[addr:]))
		if signed {
			return int64(int16(u)), nil
		}
	case 4:
		u = uint64(binary.LittleEndian.Uint32(it.mem[addr:]))
		if signed {
			return int64(int32(u)), nil
		}
	case 8:
		u = binary.LittleEndian.Uint64(it.mem[addr:])
	default:
		return 0, fmt.Errorf("ir: interp: bad load size %d", size)
	}
	return int64(u), nil
}

func (it *Interp) store(addr uint64, val int64, size uint8, f *Func) error {
	if addr+uint64(size) > uint64(len(it.mem)) {
		return fmt.Errorf("ir: interp: store out of bounds at %#x in %s", addr, f.Name)
	}
	switch size {
	case 1:
		it.mem[addr] = byte(val)
	case 2:
		binary.LittleEndian.PutUint16(it.mem[addr:], uint16(val))
	case 4:
		binary.LittleEndian.PutUint32(it.mem[addr:], uint32(val))
	case 8:
		binary.LittleEndian.PutUint64(it.mem[addr:], uint64(val))
	default:
		return fmt.Errorf("ir: interp: bad store size %d", size)
	}
	return nil
}

// Sys numbers mirror isa.Sys*; ir avoids importing isa to keep the layering
// one-directional (isa is a codegen concern).
const (
	sysExit     = 0
	sysPutInt   = 1
	sysPutChar  = 2
	sysChecksum = 3
	sysCycles   = 4
)

func (it *Interp) sys(num int64, regs []int64, args []VReg) (int64, error) {
	arg := func(i int) int64 {
		if i < len(args) {
			return regs[args[i]]
		}
		return 0
	}
	switch num {
	case sysExit:
		it.ExitCode = arg(0)
		return 0, nil
	case sysPutInt, sysPutChar:
		it.Output = append(it.Output, arg(0))
		return 0, nil
	case sysChecksum:
		it.Checksum = MixChecksum(it.Checksum, uint64(arg(0)))
		return 0, nil
	case sysCycles:
		// The oracle has no clock; return the step count, which is
		// deterministic. Programs must not fold cycle readings into
		// checksums (the bench suite never does).
		return it.steps, nil
	}
	return 0, fmt.Errorf("ir: interp: unknown syscall %d", num)
}

// MixChecksum folds v into sum; it is the shared checksum function of the
// SysChecksum ABI (see isa.MixChecksum), re-exported here so IR-level tests
// need not import the ISA.
func MixChecksum(sum, v uint64) uint64 { return isa.MixChecksum(sum, v) }
