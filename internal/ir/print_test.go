package ir

import (
	"strings"
	"testing"
)

func TestInstrStringForms(t *testing.T) {
	cases := []struct {
		in   Instr
		want string
	}{
		{Instr{Op: OpConst, Dst: 3, Imm: -7}, "v3 = const -7"},
		{Instr{Op: OpLoad, Dst: 1, A: 2, Imm: 8, Size: 8, Signed: true}, "v1 = load8s v2+8"},
		{Instr{Op: OpLoad, Dst: 1, A: 2, Size: 1}, "v1 = load1u v2+0"},
		{Instr{Op: OpStore, A: 4, B: 5, Imm: 16, Size: 4}, "store4 v4+16, v5"},
		{Instr{Op: OpAddrGlobal, Dst: 0, Sym: "tab", Imm: 24}, "v0 = addrg tab+24"},
		{Instr{Op: OpAddrSlot, Dst: 0, Slot: 2, Imm: 4}, "v0 = addrs slot2+4"},
		{Instr{Op: OpCall, Dst: 7, Sym: "f", Args: []VReg{1, 2}}, "v7 = call f(v1, v2)"},
		{Instr{Op: OpCall, Dst: -1, Sym: "g"}, "call g()"},
		{Instr{Op: OpSys, Dst: 9, Imm: 3, Args: []VReg{4}}, "v9 = sys 3(v4)"},
		{Instr{Op: OpNeg, Dst: 1, A: 2}, "v1 = neg v2"},
		{Instr{Op: OpCopy, Dst: 1, A: 2}, "v1 = copy v2"},
		{Instr{Op: OpAdd, Dst: 1, A: 2, B: 3}, "v1 = add v2, v3"},
		{Instr{Op: OpNop}, "nop"},
	}
	for _, tc := range cases {
		if got := tc.in.String(); got != tc.want {
			t.Errorf("String() = %q, want %q", got, tc.want)
		}
	}
}

func TestTermString(t *testing.T) {
	b1 := &Block{Name: "b1"}
	b2 := &Block{Name: "b2"}
	cases := []struct {
		term Term
		want string
	}{
		{Term{Kind: TermRet, Val: -1}, "ret"},
		{Term{Kind: TermRet, Val: 4}, "ret v4"},
		{Term{Kind: TermJmp, Then: b1}, "jmp b1"},
		{Term{Kind: TermBr, Cond: 2, Then: b1, Else: b2}, "br v2, b1, b2"},
	}
	for _, tc := range cases {
		if got := tc.term.String(); got != tc.want {
			t.Errorf("Term.String() = %q, want %q", got, tc.want)
		}
	}
}

func TestOpStringUnknown(t *testing.T) {
	if got := Op(200).String(); !strings.Contains(got, "?") {
		t.Errorf("unknown op rendered as %q", got)
	}
}

func TestFuncStringIncludesSlots(t *testing.T) {
	b := NewFunc("f", 1, true)
	b.NewSlot("buf", 64, 8)
	v := b.Const(0)
	b.Ret(v)
	text := b.F.String()
	for _, want := range []string{"func f", "slot buf[64] align 8", "int {", "ret v1"} {
		if !strings.Contains(text, want) {
			t.Errorf("func text missing %q:\n%s", want, text)
		}
	}
}

func TestVerifierSizeAndSlotChecks(t *testing.T) {
	// Bad load size.
	f := NewFunc("main", 0, false)
	addr := f.Const(0)
	f.F.Blocks[0].Instrs = append(f.F.Blocks[0].Instrs,
		Instr{Op: OpLoad, Dst: f.F.NewVReg(), A: addr, Size: 3})
	f.Ret(-1)
	if err := f.F.Verify(); err == nil || !strings.Contains(err.Error(), "access size") {
		t.Errorf("bad size not caught: %v", err)
	}

	// Slot index out of range.
	g := NewFunc("main", 0, false)
	g.F.Blocks[0].Instrs = append(g.F.Blocks[0].Instrs,
		Instr{Op: OpAddrSlot, Dst: g.F.NewVReg(), Slot: 5})
	g.Ret(-1)
	if err := g.F.Verify(); err == nil || !strings.Contains(err.Error(), "slot") {
		t.Errorf("bad slot not caught: %v", err)
	}

	// Branch to unregistered block.
	h := NewFunc("main", 0, false)
	cond := h.Const(1)
	rogue := &Block{Name: "rogue", Term: Term{Kind: TermRet, Val: -1}}
	h.Br(cond, rogue, rogue)
	if err := h.F.Verify(); err == nil || !strings.Contains(err.Error(), "unregistered") {
		t.Errorf("rogue block not caught: %v", err)
	}
}

func TestVerifyArgMismatch(t *testing.T) {
	callee := NewFunc("f", 2, true)
	s := callee.Bin(OpAdd, 0, 1)
	callee.Ret(s)
	caller := NewFunc("main", 0, false)
	x := caller.Const(1)
	caller.Call("f", true, x) // one arg, needs two
	caller.Ret(-1)
	p := &Program{Modules: []*Module{{Name: "m", Funcs: []*Func{callee.F, caller.F}}}}
	if err := p.Verify(); err == nil || !strings.Contains(err.Error(), "args") {
		t.Errorf("arity mismatch not caught: %v", err)
	}
}

func TestVerifyVoidResultUse(t *testing.T) {
	callee := NewFunc("v", 0, false)
	callee.Ret(-1)
	caller := NewFunc("main", 0, false)
	caller.Call("v", true) // demands a result from a void function
	caller.Ret(-1)
	p := &Program{Modules: []*Module{{Name: "m", Funcs: []*Func{callee.F, caller.F}}}}
	if err := p.Verify(); err == nil || !strings.Contains(err.Error(), "void") {
		t.Errorf("void-result use not caught: %v", err)
	}
}

func TestVerifyUndefinedGlobal(t *testing.T) {
	f := NewFunc("main", 0, false)
	f.AddrGlobal("ghost", 0)
	f.Ret(-1)
	p := &Program{Modules: []*Module{{Name: "m", Funcs: []*Func{f.F}}}}
	if err := p.Verify(); err == nil || !strings.Contains(err.Error(), "global") {
		t.Errorf("undefined global not caught: %v", err)
	}
}

func TestInterpOutputSyscalls(t *testing.T) {
	b := NewFunc("main", 0, false)
	v := b.Const(65)
	b.Sys(1, v) // print
	b.Sys(2, v) // putc
	b.Sys(0, v) // exit(65)
	b.Ret(-1)
	p := &Program{Modules: []*Module{{Name: "m", Funcs: []*Func{b.F}}}}
	it, err := NewInterp(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := it.Run(); err != nil {
		t.Fatal(err)
	}
	if len(it.Output) != 2 || it.Output[0] != 65 {
		t.Errorf("output = %v", it.Output)
	}
	if it.ExitCode != 65 {
		t.Errorf("exit code = %d", it.ExitCode)
	}
}

func TestInterpUnknownSyscall(t *testing.T) {
	b := NewFunc("main", 0, false)
	b.Sys(99)
	b.Ret(-1)
	p := &Program{Modules: []*Module{{Name: "m", Funcs: []*Func{b.F}}}}
	it, _ := NewInterp(p)
	if err := it.Run(); err == nil || !strings.Contains(err.Error(), "syscall") {
		t.Errorf("unknown syscall not caught: %v", err)
	}
}

func TestBuilderPanics(t *testing.T) {
	b := NewFunc("f", 0, false)
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("Bin with unary", func() { b.Bin(OpNeg, 0, 0) })
	mustPanic("Unary with binary", func() { b.Unary(OpAdd, 0) })
}
