package ir

import "fmt"

// Builder constructs a Func incrementally. It tracks the "current" block;
// emit methods append to it. The zero Builder is not usable; call NewFunc.
type Builder struct {
	F   *Func
	cur *Block
	nb  int // block name counter
}

// NewFunc starts a new function with the given parameter count. Parameters
// occupy v0..v(numParams-1).
func NewFunc(name string, numParams int, hasResult bool) *Builder {
	f := &Func{
		Name:      name,
		NumParams: numParams,
		NumVRegs:  numParams,
		HasResult: hasResult,
	}
	b := &Builder{F: f}
	entry := b.NewBlock("entry")
	b.SetBlock(entry)
	return b
}

// NewBlock creates (and registers) a new basic block. The label is a hint;
// a unique suffix is appended.
func (b *Builder) NewBlock(label string) *Block {
	blk := &Block{Name: fmt.Sprintf("%s%d", label, b.nb), Index: len(b.F.Blocks)}
	b.nb++
	b.F.Blocks = append(b.F.Blocks, blk)
	// A block is unterminated until a terminator is set; default to a
	// self-evidently invalid Ret so the verifier catches fallthrough bugs.
	blk.Term = Term{Kind: TermRet, Val: -1}
	return blk
}

// SetBlock makes blk the target of subsequent emissions.
func (b *Builder) SetBlock(blk *Block) { b.cur = blk }

// Block returns the current block.
func (b *Builder) Block() *Block { return b.cur }

func (b *Builder) emit(in Instr) VReg {
	b.cur.Instrs = append(b.cur.Instrs, in)
	return in.Dst
}

// Const materializes a constant.
func (b *Builder) Const(v int64) VReg {
	return b.emit(Instr{Op: OpConst, Dst: b.F.NewVReg(), Imm: v})
}

// Bin emits a binary operation.
func (b *Builder) Bin(op Op, x, y VReg) VReg {
	if !op.IsBinary() {
		panic("ir: Bin with non-binary op " + op.String())
	}
	return b.emit(Instr{Op: op, Dst: b.F.NewVReg(), A: x, B: y})
}

// Unary emits neg/not/copy.
func (b *Builder) Unary(op Op, x VReg) VReg {
	if !op.IsUnary() {
		panic("ir: Unary with non-unary op " + op.String())
	}
	return b.emit(Instr{Op: op, Dst: b.F.NewVReg(), A: x})
}

// Copy emits an explicit register copy.
func (b *Builder) Copy(x VReg) VReg { return b.Unary(OpCopy, x) }

// CopyTo copies x into an existing register dst.
func (b *Builder) CopyTo(dst, x VReg) {
	b.emit(Instr{Op: OpCopy, Dst: dst, A: x})
}

// Load emits a load of size bytes from addr+off.
func (b *Builder) Load(addr VReg, off int64, size uint8, signed bool) VReg {
	return b.emit(Instr{Op: OpLoad, Dst: b.F.NewVReg(), A: addr, Imm: off, Size: size, Signed: signed})
}

// Store emits a store of the low size bytes of val to addr+off.
func (b *Builder) Store(addr VReg, off int64, val VReg, size uint8) {
	b.emit(Instr{Op: OpStore, Dst: -1, A: addr, B: val, Imm: off, Size: size})
}

// AddrGlobal yields the address of a global plus offset.
func (b *Builder) AddrGlobal(sym string, off int64) VReg {
	return b.emit(Instr{Op: OpAddrGlobal, Dst: b.F.NewVReg(), Sym: sym, Imm: off})
}

// NewSlot allocates a frame slot and returns its index.
func (b *Builder) NewSlot(name string, size, align int64) int {
	b.F.Slots = append(b.F.Slots, Slot{Name: name, Size: size, Align: align})
	return len(b.F.Slots) - 1
}

// AddrSlot yields the address of frame slot idx plus offset.
func (b *Builder) AddrSlot(idx int, off int64) VReg {
	return b.emit(Instr{Op: OpAddrSlot, Dst: b.F.NewVReg(), Slot: idx, Imm: off})
}

// Call emits a call. If hasResult, the returned VReg holds the result;
// otherwise the returned VReg is -1.
func (b *Builder) Call(sym string, hasResult bool, args ...VReg) VReg {
	dst := VReg(-1)
	if hasResult {
		dst = b.F.NewVReg()
	}
	b.emit(Instr{Op: OpCall, Dst: dst, Sym: sym, Args: args})
	return dst
}

// Sys emits a system call.
func (b *Builder) Sys(num int64, args ...VReg) VReg {
	return b.emit(Instr{Op: OpSys, Dst: b.F.NewVReg(), Imm: num, Args: args})
}

// Ret terminates the current block with a return.
func (b *Builder) Ret(val VReg) {
	b.cur.Term = Term{Kind: TermRet, Val: val}
}

// Jmp terminates the current block with an unconditional jump.
func (b *Builder) Jmp(to *Block) {
	b.cur.Term = Term{Kind: TermJmp, Then: to}
}

// Br terminates the current block with a conditional branch.
func (b *Builder) Br(cond VReg, then, els *Block) {
	b.cur.Term = Term{Kind: TermBr, Cond: cond, Then: then, Else: els}
}

// Verify checks structural invariants of a function: every referenced vreg
// is in range, every block's terminator targets registered blocks, slot and
// parameter indices are valid, and the entry block exists. It returns the
// first problem found.
func (f *Func) Verify() error {
	if len(f.Blocks) == 0 {
		return fmt.Errorf("ir: func %s: no blocks", f.Name)
	}
	known := make(map[*Block]bool, len(f.Blocks))
	for _, b := range f.Blocks {
		known[b] = true
	}
	checkReg := func(v VReg, what string, b *Block) error {
		if v < 0 || int(v) >= f.NumVRegs {
			return fmt.Errorf("ir: func %s block %s: %s register %d out of range [0,%d)", f.Name, b.Name, what, v, f.NumVRegs)
		}
		return nil
	}
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			switch in.Op {
			case OpNop:
			case OpConst, OpAddrGlobal:
				if err := checkReg(in.Dst, "dst", b); err != nil {
					return err
				}
			case OpAddrSlot:
				if err := checkReg(in.Dst, "dst", b); err != nil {
					return err
				}
				if in.Slot < 0 || in.Slot >= len(f.Slots) {
					return fmt.Errorf("ir: func %s block %s: slot %d out of range", f.Name, b.Name, in.Slot)
				}
			case OpLoad:
				if err := checkReg(in.Dst, "dst", b); err != nil {
					return err
				}
				if err := checkReg(in.A, "addr", b); err != nil {
					return err
				}
				if err := checkSize(in.Size, f, b); err != nil {
					return err
				}
			case OpStore:
				if err := checkReg(in.A, "addr", b); err != nil {
					return err
				}
				if err := checkReg(in.B, "val", b); err != nil {
					return err
				}
				if err := checkSize(in.Size, f, b); err != nil {
					return err
				}
			case OpCall:
				if in.Dst >= 0 {
					if err := checkReg(in.Dst, "dst", b); err != nil {
						return err
					}
				}
				for _, a := range in.Args {
					if err := checkReg(a, "arg", b); err != nil {
						return err
					}
				}
			case OpSys:
				if in.Dst >= 0 {
					if err := checkReg(in.Dst, "dst", b); err != nil {
						return err
					}
				}
				for _, a := range in.Args {
					if err := checkReg(a, "arg", b); err != nil {
						return err
					}
				}
			default:
				switch {
				case in.Op.IsBinary():
					if err := checkReg(in.Dst, "dst", b); err != nil {
						return err
					}
					if err := checkReg(in.A, "a", b); err != nil {
						return err
					}
					if err := checkReg(in.B, "b", b); err != nil {
						return err
					}
				case in.Op.IsUnary():
					if err := checkReg(in.Dst, "dst", b); err != nil {
						return err
					}
					if err := checkReg(in.A, "a", b); err != nil {
						return err
					}
				default:
					return fmt.Errorf("ir: func %s block %s: unknown op %v", f.Name, b.Name, in.Op)
				}
			}
		}
		switch b.Term.Kind {
		case TermRet:
			if f.HasResult && b.Term.Val < 0 {
				return fmt.Errorf("ir: func %s block %s: missing return value", f.Name, b.Name)
			}
			if b.Term.Val >= 0 {
				if err := checkReg(b.Term.Val, "ret", b); err != nil {
					return err
				}
			}
		case TermJmp:
			if !known[b.Term.Then] {
				return fmt.Errorf("ir: func %s block %s: jmp to unregistered block", f.Name, b.Name)
			}
		case TermBr:
			if err := checkReg(b.Term.Cond, "cond", b); err != nil {
				return err
			}
			if !known[b.Term.Then] || !known[b.Term.Else] {
				return fmt.Errorf("ir: func %s block %s: br to unregistered block", f.Name, b.Name)
			}
		default:
			return fmt.Errorf("ir: func %s block %s: bad terminator", f.Name, b.Name)
		}
	}
	return nil
}

func checkSize(size uint8, f *Func, b *Block) error {
	switch size {
	case 1, 2, 4, 8:
		return nil
	}
	return fmt.Errorf("ir: func %s block %s: bad access size %d", f.Name, b.Name, size)
}

// Verify checks every function in the module and that referenced call and
// global symbols resolve within the program when checked at program level.
func (m *Module) Verify() error {
	for _, f := range m.Funcs {
		if err := f.Verify(); err != nil {
			return err
		}
	}
	return nil
}

// Verify checks all modules and cross-module symbol resolution.
func (p *Program) Verify() error {
	funcs := map[string]*Func{}
	globals := map[string]bool{}
	for _, m := range p.Modules {
		if err := m.Verify(); err != nil {
			return err
		}
		for _, f := range m.Funcs {
			if funcs[f.Name] != nil {
				return fmt.Errorf("ir: duplicate function %s", f.Name)
			}
			funcs[f.Name] = f
		}
		for _, g := range m.Globals {
			if globals[g.Name] {
				return fmt.Errorf("ir: duplicate global %s", g.Name)
			}
			globals[g.Name] = true
		}
	}
	main := funcs["main"]
	if main == nil {
		return fmt.Errorf("ir: program has no main")
	}
	if main.NumParams != 0 {
		return fmt.Errorf("ir: main must take no parameters")
	}
	for _, m := range p.Modules {
		for _, f := range m.Funcs {
			for _, b := range f.Blocks {
				for _, in := range b.Instrs {
					switch in.Op {
					case OpCall:
						callee := funcs[in.Sym]
						if callee == nil {
							return fmt.Errorf("ir: %s calls undefined %s", f.Name, in.Sym)
						}
						if len(in.Args) != callee.NumParams {
							return fmt.Errorf("ir: %s calls %s with %d args, want %d", f.Name, in.Sym, len(in.Args), callee.NumParams)
						}
						if in.Dst >= 0 && !callee.HasResult {
							return fmt.Errorf("ir: %s uses result of void %s", f.Name, in.Sym)
						}
					case OpAddrGlobal:
						if !globals[in.Sym] {
							return fmt.Errorf("ir: %s references undefined global %s", f.Name, in.Sym)
						}
					}
				}
			}
		}
	}
	return nil
}
