package ir

import (
	"strings"
	"testing"
)

// buildAddProgram constructs: func add(a,b) { return a+b }
// func main() { checksum(add(2,3)); }
func buildAddProgram() *Program {
	add := NewFunc("add", 2, true)
	sum := add.Bin(OpAdd, 0, 1)
	add.Ret(sum)

	main := NewFunc("main", 0, false)
	a := main.Const(2)
	b := main.Const(3)
	r := main.Call("add", true, a, b)
	main.Sys(sysChecksum, r)
	main.Ret(-1)

	mod := &Module{Name: "m", Funcs: []*Func{add.F, main.F}}
	return &Program{Modules: []*Module{mod}}
}

func TestInterpCallArith(t *testing.T) {
	p := buildAddProgram()
	it, err := NewInterp(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := it.Run(); err != nil {
		t.Fatal(err)
	}
	want := MixChecksum(0, 5)
	if it.Checksum != want {
		t.Errorf("checksum = %d, want %d", it.Checksum, want)
	}
}

func TestVerifyCatchesBadProgram(t *testing.T) {
	// Call to undefined function.
	b := NewFunc("main", 0, false)
	b.Call("missing", false)
	b.Ret(-1)
	p := &Program{Modules: []*Module{{Name: "m", Funcs: []*Func{b.F}}}}
	if err := p.Verify(); err == nil || !strings.Contains(err.Error(), "undefined") {
		t.Errorf("expected undefined-call error, got %v", err)
	}

	// Out-of-range vreg.
	b2 := NewFunc("main", 0, false)
	b2.F.Blocks[0].Instrs = append(b2.F.Blocks[0].Instrs, Instr{Op: OpAdd, Dst: 0, A: 5, B: 6})
	b2.F.NumVRegs = 1
	b2.Ret(-1)
	p2 := &Program{Modules: []*Module{{Name: "m", Funcs: []*Func{b2.F}}}}
	if err := p2.Verify(); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Errorf("expected out-of-range error, got %v", err)
	}

	// Missing main.
	f := NewFunc("notmain", 0, false)
	f.Ret(-1)
	p3 := &Program{Modules: []*Module{{Name: "m", Funcs: []*Func{f.F}}}}
	if err := p3.Verify(); err == nil || !strings.Contains(err.Error(), "no main") {
		t.Errorf("expected no-main error, got %v", err)
	}

	// main returning value required but missing.
	g := NewFunc("main", 0, true)
	g.Ret(-1)
	p4 := &Program{Modules: []*Module{{Name: "m", Funcs: []*Func{g.F}}}}
	if err := p4.Verify(); err == nil || !strings.Contains(err.Error(), "missing return value") {
		t.Errorf("expected missing-return error, got %v", err)
	}
}

func TestVerifyDuplicates(t *testing.T) {
	f1 := NewFunc("f", 0, false)
	f1.Ret(-1)
	f2 := NewFunc("f", 0, false)
	f2.Ret(-1)
	m := NewFunc("main", 0, false)
	m.Ret(-1)
	p := &Program{Modules: []*Module{
		{Name: "a", Funcs: []*Func{f1.F, m.F}},
		{Name: "b", Funcs: []*Func{f2.F}},
	}}
	if err := p.Verify(); err == nil || !strings.Contains(err.Error(), "duplicate function") {
		t.Errorf("expected duplicate error, got %v", err)
	}
}

func TestInterpMemoryOps(t *testing.T) {
	// Global array of 4 int64s; main writes i*i and checksums the sum.
	g := &Global{Name: "arr", Size: 32, Align: 8}
	b := NewFunc("main", 0, false)
	loop := b.NewBlock("loop")
	body := b.NewBlock("body")
	done := b.NewBlock("done")

	i := b.Const(0)
	n := b.Const(4)
	b.Jmp(loop)

	b.SetBlock(loop)
	cond := b.Bin(OpLt, i, i) // placeholder, patched below to use n
	b.Block().Instrs[len(b.Block().Instrs)-1].B = n
	b.Br(cond, body, done)

	b.SetBlock(body)
	sq := b.Bin(OpMul, i, i)
	base := b.AddrGlobal("arr", 0)
	eight := b.Const(8)
	off := b.Bin(OpMul, i, eight)
	addr := b.Bin(OpAdd, base, off)
	b.Store(addr, 0, sq, 8)
	one := b.Const(1)
	i2 := b.Bin(OpAdd, i, one)
	b.CopyTo(i, i2)
	b.Jmp(loop)

	b.SetBlock(done)
	// Sum the array back.
	sum := b.Const(0)
	for k := int64(0); k < 4; k++ {
		a := b.AddrGlobal("arr", k*8)
		v := b.Load(a, 0, 8, true)
		s2 := b.Bin(OpAdd, sum, v)
		b.CopyTo(sum, s2)
	}
	b.Sys(sysChecksum, sum)
	b.Ret(-1)

	p := &Program{Modules: []*Module{{Name: "m", Globals: []*Global{g}, Funcs: []*Func{b.F}}}}
	it, err := NewInterp(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := it.Run(); err != nil {
		t.Fatal(err)
	}
	want := MixChecksum(0, 0+1+4+9)
	if it.Checksum != want {
		t.Errorf("checksum = %d, want %d", it.Checksum, want)
	}
}

func TestInterpSlots(t *testing.T) {
	b := NewFunc("main", 0, false)
	slot := b.NewSlot("buf", 16, 8)
	addr := b.AddrSlot(slot, 8)
	v := b.Const(99)
	b.Store(addr, 0, v, 8)
	back := b.Load(addr, 0, 8, true)
	b.Sys(sysChecksum, back)
	b.Ret(-1)
	p := &Program{Modules: []*Module{{Name: "m", Funcs: []*Func{b.F}}}}
	it, err := NewInterp(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := it.Run(); err != nil {
		t.Fatal(err)
	}
	if want := MixChecksum(0, 99); it.Checksum != want {
		t.Errorf("checksum = %d, want %d", it.Checksum, want)
	}
}

func TestInterpSignExtension(t *testing.T) {
	b := NewFunc("main", 0, false)
	slot := b.NewSlot("buf", 8, 8)
	addr := b.AddrSlot(slot, 0)
	v := b.Const(-1)
	b.Store(addr, 0, v, 1)
	signed := b.Load(addr, 0, 1, true)
	unsigned := b.Load(addr, 0, 1, false)
	b.Sys(sysChecksum, signed)
	b.Sys(sysChecksum, unsigned)
	b.Ret(-1)
	p := &Program{Modules: []*Module{{Name: "m", Funcs: []*Func{b.F}}}}
	it, _ := NewInterp(p)
	if err := it.Run(); err != nil {
		t.Fatal(err)
	}
	minusOne := int64(-1)
	want := MixChecksum(MixChecksum(0, uint64(minusOne)), 255)
	if it.Checksum != want {
		t.Errorf("checksum mismatch: got %d want %d", it.Checksum, want)
	}
}

func TestInterpDivByZero(t *testing.T) {
	b := NewFunc("main", 0, false)
	x := b.Const(1)
	z := b.Const(0)
	b.Bin(OpDiv, x, z)
	b.Ret(-1)
	p := &Program{Modules: []*Module{{Name: "m", Funcs: []*Func{b.F}}}}
	it, _ := NewInterp(p)
	if err := it.Run(); err == nil || !strings.Contains(err.Error(), "divide by zero") {
		t.Errorf("expected divide-by-zero, got %v", err)
	}
}

func TestInterpStepLimit(t *testing.T) {
	b := NewFunc("main", 0, false)
	loop := b.NewBlock("spin")
	b.Jmp(loop)
	b.SetBlock(loop)
	b.Const(1)
	b.Jmp(loop)
	p := &Program{Modules: []*Module{{Name: "m", Funcs: []*Func{b.F}}}}
	it, _ := NewInterp(p)
	it.SetStepLimit(1000)
	if err := it.Run(); err == nil || !strings.Contains(err.Error(), "step limit") {
		t.Errorf("expected step-limit error, got %v", err)
	}
}

func TestStringRendering(t *testing.T) {
	p := buildAddProgram()
	text := p.Modules[0].String()
	for _, want := range []string{"module m", "func add", "v2 = add v0, v1", "ret v2", "call add(v0, v1)"} {
		if !strings.Contains(text, want) {
			t.Errorf("module text missing %q:\n%s", want, text)
		}
	}
}

func TestOpPredicates(t *testing.T) {
	if !OpAdd.IsBinary() || OpConst.IsBinary() || !OpGe.IsBinary() {
		t.Error("IsBinary wrong")
	}
	if !OpEq.IsCompare() || OpAdd.IsCompare() {
		t.Error("IsCompare wrong")
	}
	if !OpNeg.IsUnary() || !OpCopy.IsUnary() || OpAdd.IsUnary() {
		t.Error("IsUnary wrong")
	}
	if !OpAdd.Commutative() || OpSub.Commutative() || !OpXor.Commutative() {
		t.Error("Commutative wrong")
	}
}

func TestMixChecksumProperties(t *testing.T) {
	// Distinct inputs give distinct sums (for these values), and mixing is
	// order-sensitive.
	a := MixChecksum(MixChecksum(0, 1), 2)
	b := MixChecksum(MixChecksum(0, 2), 1)
	if a == b {
		t.Error("checksum is order-insensitive; too weak")
	}
	if MixChecksum(0, 7) == MixChecksum(0, 8) {
		t.Error("checksum collision on adjacent values")
	}
}

func TestFuncHelpers(t *testing.T) {
	p := buildAddProgram()
	m := p.Modules[0]
	if m.Func("add") == nil || m.Func("nope") != nil {
		t.Error("Module.Func lookup wrong")
	}
	if p.FindFunc("main") == nil || p.FindFunc("nope") != nil {
		t.Error("Program.FindFunc lookup wrong")
	}
	f := p.FindFunc("add")
	if f.Entry() != f.Blocks[0] {
		t.Error("Entry() wrong")
	}
	f.Renumber()
	for i, b := range f.Blocks {
		if b.Index != i {
			t.Error("Renumber wrong")
		}
	}
}

func TestBlockSuccs(t *testing.T) {
	b := NewFunc("f", 0, false)
	t1 := b.NewBlock("t")
	e1 := b.NewBlock("e")
	cond := b.Const(1)
	b.Br(cond, t1, e1)
	entry := b.F.Entry()
	succs := entry.Succs()
	if len(succs) != 2 || succs[0] != t1 || succs[1] != e1 {
		t.Error("Succs for br wrong")
	}
	b.SetBlock(t1)
	b.Jmp(e1)
	if s := t1.Succs(); len(s) != 1 || s[0] != e1 {
		t.Error("Succs for jmp wrong")
	}
	b.SetBlock(e1)
	b.Ret(-1)
	if s := e1.Succs(); s != nil {
		t.Error("Succs for ret should be nil")
	}
}
