package journal

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

type point struct {
	Env     uint64  `json:"env"`
	Speedup float64 `json:"speedup"`
}

func TestRecordLookupRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	j, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()

	want := point{Env: 512, Speedup: 1.0625}
	if err := j.Record("env/bzip2/512", want); err != nil {
		t.Fatal(err)
	}
	var got point
	ok, err := j.Lookup("env/bzip2/512", &got)
	if err != nil || !ok {
		t.Fatalf("Lookup = %v, %v; want hit", ok, err)
	}
	if got != want {
		t.Errorf("round trip changed the point: %+v != %+v", got, want)
	}
	if ok, _ := j.Lookup("env/bzip2/1024", nil); ok {
		t.Error("lookup of unrecorded key reported a hit")
	}
	if j.Len() != 1 {
		t.Errorf("Len = %d, want 1", j.Len())
	}
}

func TestReopenPersists(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	j, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := j.Record(fmt.Sprintf("k%02d", i), point{Env: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// Overwrites keep the latest value.
	if err := j.Record("k03", point{Env: 99}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Errorf("second Close should be a no-op, got %v", err)
	}

	j2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Len() != 10 {
		t.Errorf("reopened Len = %d, want 10", j2.Len())
	}
	var p point
	if ok, _ := j2.Lookup("k03", &p); !ok || p.Env != 99 {
		t.Errorf("latest value not kept across reopen: ok=%v p=%+v", ok, p)
	}
}

// TestTornTailDiscarded simulates a kill mid-write: the final line has no
// trailing newline. Reopening must keep every acknowledged record, drop the
// torn tail, and leave the file appendable.
func TestTornTailDiscarded(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	j, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Record("good", point{Env: 1}); err != nil {
		t.Fatal(err)
	}
	j.Close()

	// A partial record, cut off mid-JSON, with no newline.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"key":"torn","val":{"en`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	j2, err := Open(path)
	if err != nil {
		t.Fatalf("torn tail must be tolerated, got %v", err)
	}
	if j2.Len() != 1 {
		t.Errorf("Len after torn tail = %d, want 1", j2.Len())
	}
	if ok, _ := j2.Lookup("torn", nil); ok {
		t.Error("unacknowledged torn record must not be visible")
	}
	// The journal must still accept appends on a clean line.
	if err := j2.Record("after", point{Env: 2}); err != nil {
		t.Fatal(err)
	}
	j2.Close()

	j3, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j3.Close()
	for _, k := range []string{"good", "after"} {
		if ok, _ := j3.Lookup(k, nil); !ok {
			t.Errorf("record %q lost", k)
		}
	}
}

// TestMidFileCorruptionRefused: a malformed line that is *not* the torn
// final line cannot come from a mid-write kill, so resuming from it would
// silently drop points. Open must fail.
func TestMidFileCorruptionRefused(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	body := `{"key":"a","val":1}` + "\n" + `garbage not json` + "\n" + `{"key":"b","val":2}` + "\n"
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := Open(path)
	if err == nil || !strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("corrupt mid-file record must refuse to open, got %v", err)
	}
	// A record with an empty key is equally corrupt.
	body = `{"val":1}` + "\n"
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); err == nil {
		t.Fatal("keyless record must refuse to open")
	}
}

// TestConcurrentRecord exercises the journal under -race: many goroutines
// recording and looking up at once, every record durable afterwards.
func TestConcurrentRecord(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	j, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	const n = 64
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			key := fmt.Sprintf("k%03d", i)
			if err := j.Record(key, point{Env: uint64(i)}); err != nil {
				t.Errorf("Record %s: %v", key, err)
			}
			j.Lookup(key, nil)
			j.Len()
		}(i)
	}
	wg.Wait()
	j.Close()

	j2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Len() != n {
		t.Errorf("Len after concurrent records = %d, want %d", j2.Len(), n)
	}
	for i := 0; i < n; i++ {
		var p point
		key := fmt.Sprintf("k%03d", i)
		if ok, _ := j2.Lookup(key, &p); !ok || p.Env != uint64(i) {
			t.Errorf("record %s missing or wrong: ok=%v p=%+v", key, ok, p)
		}
	}
}

// TestConcurrentWritersNoInterleaving hammers one journal from many
// goroutines, each recording a stream of payloads large enough that torn
// writes would be visible, then verifies the on-disk discipline directly:
// every line of the raw file is one complete, self-consistent JSON record
// (no interleaving of concurrent writes within a line), and a reopened
// journal converges to exactly the written state.
func TestConcurrentWritersNoInterleaving(t *testing.T) {
	type fat struct {
		Writer  int    `json:"writer"`
		Seq     int    `json:"seq"`
		Payload string `json:"payload"`
	}
	path := filepath.Join(t.TempDir(), "j.jsonl")
	j, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	const writers, perWriter = 8, 25
	pad := strings.Repeat("x", 512) // wide records make torn lines likely if locking is broken
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for s := 0; s < perWriter; s++ {
				key := fmt.Sprintf("w%02d/s%02d", w, s)
				if err := j.Record(key, fat{Writer: w, Seq: s, Payload: pad}); err != nil {
					t.Errorf("Record %s: %v", key, err)
				}
				// Interleave reads of other writers' keys while writes are
				// in flight.
				j.Lookup(fmt.Sprintf("w%02d/s%02d", (w+1)%writers, s), nil)
			}
		}(w)
	}
	wg.Wait()
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Raw-file discipline: every line is complete, valid JSON whose key
	// matches its payload — a torn or interleaved write could not satisfy
	// this.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(raw), "\n"), "\n")
	if len(lines) != writers*perWriter {
		t.Fatalf("raw file has %d lines, want %d", len(lines), writers*perWriter)
	}
	for i, line := range lines {
		var rec struct {
			Key string `json:"key"`
			Val fat    `json:"val"`
		}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("line %d is not a complete JSON record (interleaved write?): %v\n%s", i+1, err, line)
		}
		if want := fmt.Sprintf("w%02d/s%02d", rec.Val.Writer, rec.Val.Seq); rec.Key != want {
			t.Errorf("line %d: key %q does not match payload (want %q) — records interleaved", i+1, rec.Key, want)
		}
		if rec.Val.Payload != pad {
			t.Errorf("line %d: payload torn (%d bytes, want %d)", i+1, len(rec.Val.Payload), len(pad))
		}
	}

	// Resume converges: a reopened journal holds every record.
	j2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Len() != writers*perWriter {
		t.Errorf("reopened Len = %d, want %d", j2.Len(), writers*perWriter)
	}
	for w := 0; w < writers; w++ {
		for s := 0; s < perWriter; s++ {
			var got fat
			key := fmt.Sprintf("w%02d/s%02d", w, s)
			if ok, err := j2.Lookup(key, &got); !ok || err != nil {
				t.Fatalf("reopened journal lost %s: ok=%v err=%v", key, ok, err)
			} else if got.Writer != w || got.Seq != s || got.Payload != pad {
				t.Errorf("%s resumed wrong: %+v", key, got)
			}
		}
	}
}
