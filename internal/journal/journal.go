// Package journal persists completed measurement points as a JSONL
// append-only file, implementing core.Checkpoint for cmd/biaslab's
// checkpoint/resume support.
//
// Each record is one line: {"key":"...","val":...}. Records are flushed
// and fsynced as they are written, so a process killed at any instant
// loses at most the record being written. On open, the journal tolerates
// a torn final line (the signature of a mid-write kill) by ignoring it;
// any other malformed line is reported as corruption rather than silently
// skipped, because a silently dropped point would be re-measured and the
// resumed run could diverge from the original had the measurement been
// nondeterministic.
package journal

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
)

// record is the wire format of one journal line.
type record struct {
	Key string          `json:"key"`
	Val json.RawMessage `json:"val"`
}

// Journal is an append-only JSONL checkpoint file. It is safe for
// concurrent use by multiple goroutines of one process; concurrent use of
// one file by multiple processes is not supported.
type Journal struct {
	mu      sync.Mutex
	f       *os.File
	entries map[string]json.RawMessage
}

// Open opens (creating if absent) the journal at path and loads every
// intact record. A torn final line — no trailing newline and invalid
// JSON — is discarded as the expected residue of a kill mid-write.
func Open(path string) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: open %s: %w", path, err)
	}
	j := &Journal{f: f, entries: make(map[string]json.RawMessage)}
	if err := j.load(path); err != nil {
		f.Close()
		return nil, err
	}
	return j, nil
}

func (j *Journal) load(path string) error {
	data, err := io.ReadAll(j.f)
	if err != nil {
		return fmt.Errorf("journal: reading %s: %w", path, err)
	}
	tail := int64(0) // offset just past the last intact record
	lineno := 0
	for off := 0; off < len(data); {
		nl := bytes.IndexByte(data[off:], '\n')
		if nl < 0 {
			// No trailing newline: Record only acknowledges a point after
			// the full line *including* the newline is written and synced,
			// so this tail was never acknowledged — the expected residue of
			// a kill mid-write. Truncate it away below.
			break
		}
		lineno++
		line := data[off : off+nl]
		off += nl + 1
		if len(bytes.TrimSpace(line)) == 0 {
			tail = int64(off)
			continue
		}
		var rec record
		if err := json.Unmarshal(line, &rec); err != nil || rec.Key == "" {
			// A torn line in the *middle* of the file cannot come from a
			// mid-write kill; refuse to resume from a corrupt journal
			// rather than silently re-measuring dropped points.
			return fmt.Errorf("journal: %s:%d: corrupt record: %v", path, lineno, err)
		}
		j.entries[rec.Key] = append(json.RawMessage(nil), rec.Val...)
		tail = int64(off)
	}
	// Drop any torn tail so subsequent appends start on a clean line.
	if err := j.f.Truncate(tail); err != nil {
		return fmt.Errorf("journal: truncating torn tail of %s: %w", path, err)
	}
	if _, err := j.f.Seek(tail, 0); err != nil {
		return fmt.Errorf("journal: seeking %s: %w", path, err)
	}
	return nil
}

// Len returns the number of distinct keys recorded.
func (j *Journal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.entries)
}

// Lookup implements core.Checkpoint.
func (j *Journal) Lookup(key string, out any) (bool, error) {
	j.mu.Lock()
	raw, ok := j.entries[key]
	j.mu.Unlock()
	if !ok {
		return false, nil
	}
	if out == nil {
		return true, nil
	}
	if err := json.Unmarshal(raw, out); err != nil {
		return false, fmt.Errorf("journal: decoding %q: %w", key, err)
	}
	return true, nil
}

// Raw returns the stored encoding of a key verbatim, without decoding.
// The cluster coordinator uses it to assert that a duplicate shard
// delivery is byte-identical to the copy already merged — the
// determinism check behind "duplicates are safe".
func (j *Journal) Raw(key string) (json.RawMessage, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	raw, ok := j.entries[key]
	return raw, ok
}

// Record implements core.Checkpoint: the record is appended, flushed, and
// fsynced before Record returns, so every point a sweep reports complete
// survives an immediately following kill.
func (j *Journal) Record(key string, v any) error {
	raw, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("journal: encoding %q: %w", key, err)
	}
	line, err := json.Marshal(record{Key: key, Val: raw})
	if err != nil {
		return fmt.Errorf("journal: encoding %q: %w", key, err)
	}
	line = append(line, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.f.Write(line); err != nil {
		return fmt.Errorf("journal: appending %q: %w", key, err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("journal: syncing %q: %w", key, err)
	}
	j.entries[key] = raw
	return nil
}

// Close syncs and closes the underlying file.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Sync()
	if cerr := j.f.Close(); err == nil {
		err = cerr
	}
	j.f = nil
	return err
}
