package cmini

import "testing"

func lexAll(t *testing.T, src string) []Tok {
	t.Helper()
	l := newLexer("test.cm", src)
	var toks []Tok
	for l.tok != EOF {
		toks = append(toks, l.tok)
		l.next()
	}
	if l.err != nil {
		t.Fatalf("lex error: %v", l.err)
	}
	return toks
}

func TestLexBasics(t *testing.T) {
	toks := lexAll(t, "int x = 42; // comment\nbyte b;")
	want := []Tok{KwInt, IDENT, Assign, INT, Semi, KwByte, IDENT, Semi}
	if len(toks) != len(want) {
		t.Fatalf("got %v, want %v", toks, want)
	}
	for i := range want {
		if toks[i] != want[i] {
			t.Errorf("token %d = %v, want %v", i, toks[i], want[i])
		}
	}
}

func TestLexOperators(t *testing.T) {
	toks := lexAll(t, "+ += ++ - -= -- * *= / % << >> < <= > >= == != & && | || ^ ~ !")
	want := []Tok{Plus, PlusEq, PlusPlus, Minus, MinusEq, MinusMinus, Star,
		StarEq, Slash, Percent, Shl, Shr, Lt, Le, Gt, Ge, Eq, Ne, Amp,
		AndAnd, Pipe, OrOr, Caret, Tilde, Bang}
	if len(toks) != len(want) {
		t.Fatalf("got %d tokens, want %d: %v", len(toks), len(want), toks)
	}
	for i := range want {
		if toks[i] != want[i] {
			t.Errorf("token %d = %v, want %v", i, toks[i], want[i])
		}
	}
}

func TestLexNumbers(t *testing.T) {
	l := newLexer("t", "123 0x1f 0 '\\n' 'A'")
	wantVals := []int64{123, 31, 0, 10, 65}
	for i, want := range wantVals {
		if l.tok != INT && l.tok != CHAR {
			t.Fatalf("token %d: got %v", i, l.tok)
		}
		if l.val != want {
			t.Errorf("value %d = %d, want %d", i, l.val, want)
		}
		l.next()
	}
}

func TestLexBlockComment(t *testing.T) {
	toks := lexAll(t, "int /* a\nmulti\nline */ x;")
	if len(toks) != 3 {
		t.Fatalf("got %v", toks)
	}
}

func TestLexLineNumbers(t *testing.T) {
	l := newLexer("f.cm", "int\nx\n=\n1;")
	lines := []int{1, 2, 3, 4, 4}
	for i, want := range lines {
		if l.tpos.Line != want {
			t.Errorf("token %d at line %d, want %d", i, l.tpos.Line, want)
		}
		l.next()
	}
}

func TestLexErrors(t *testing.T) {
	for _, src := range []string{"@", "/* unterminated", "'x", "'\\q'", "0x", "99999999999999999999999"} {
		l := newLexer("t", src)
		for l.tok != EOF {
			l.next()
		}
		if l.err == nil {
			t.Errorf("source %q: expected lex error", src)
		}
	}
}
