package cmini

import "testing"

// FuzzParse drives the lexer, parser and checker with arbitrary input. The
// property under test is freedom from panics and runaway behavior: any
// input must either parse (and then check) cleanly or produce an error
// value. The seed corpus (testdata/fuzz/FuzzParse) covers every statement
// and expression form plus historically tricky shapes — unterminated
// comments and strings, deep nesting, huge literals.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		"void main() {}",
		"int g = 1 + 2 * 3; void main() { g = g << 4; }",
		"int a[16]; void main() { int i; for (i = 0; i < 16; i++) { a[i] = i; } }",
		"void main() { while (1) { break; } }",
		"int f(int x) { if (x) { return 1; } else { return 0; } } void main() { print(f(3)); }",
		"byte b[4]; void main() { int* p; p = &b[0]; *p = 7; }",
		"int g = 9223372036854775807; void main() { checksum(g % 7); }",
		"void main() { putc(65); } // trailing comment",
		"/* block */ void main() { int x; x = ~0 & 0xff ^ 3 | 1; print(!x); }",
		"int g = 1 / 0; void main() {}",
		"void main() { int x x }",
		"void main() { \"unterminated",
		"void main() { /* unterminated",
		"int \xff\xfe; void main() {}",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		file, err := ParseFile("fuzz.cm", src)
		if err != nil {
			return
		}
		// A parsed file must survive semantic analysis without panicking.
		_, _ = Check([]*File{file})
	})
}
