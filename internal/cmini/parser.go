package cmini

// parser is a hand-written recursive-descent parser with
// precedence-climbing expression parsing.
type parser struct {
	lx *lexer
}

// ParseFile parses one translation unit.
func ParseFile(name, src string) (*File, error) {
	p := &parser{lx: newLexer(name, src)}
	f := &File{Name: name}
	for p.lx.tok != EOF {
		if err := p.parseTopDecl(f); err != nil {
			return nil, err
		}
	}
	if p.lx.err != nil {
		return nil, p.lx.err
	}
	return f, nil
}

func (p *parser) pos() Pos { return p.lx.tpos }

func (p *parser) expect(t Tok) error {
	if p.lx.tok != t {
		return errf(p.pos(), "expected %s, found %s", t, p.describe())
	}
	p.lx.next()
	return nil
}

func (p *parser) describe() string {
	if p.lx.tok == IDENT || p.lx.tok == INT {
		return "'" + p.lx.lit + "'"
	}
	return "'" + p.lx.tok.String() + "'"
}

func (p *parser) isTypeStart() bool {
	switch p.lx.tok {
	case KwInt, KwByte, KwVoid:
		return true
	}
	return false
}

// parseType parses a base type plus pointer stars.
func (p *parser) parseType() (Type, error) {
	var t Type
	switch p.lx.tok {
	case KwInt:
		t = TypeInt
	case KwByte:
		t = TypeByte
	case KwVoid:
		t = TypeVoid
	default:
		return t, errf(p.pos(), "expected type, found %s", p.describe())
	}
	p.lx.next()
	for p.lx.tok == Star {
		t = t.AddrOf()
		p.lx.next()
	}
	return t, nil
}

func (p *parser) parseTopDecl(f *File) error {
	pos := p.pos()
	t, err := p.parseType()
	if err != nil {
		return err
	}
	if p.lx.tok != IDENT {
		return errf(p.pos(), "expected name, found %s", p.describe())
	}
	name := p.lx.lit
	p.lx.next()

	if p.lx.tok == LParen {
		fn, err := p.parseFuncRest(pos, t, name)
		if err != nil {
			return err
		}
		f.Funcs = append(f.Funcs, fn)
		return nil
	}

	if t == TypeVoid {
		return errf(pos, "variable %s cannot have type void", name)
	}
	d, err := p.parseVarRest(pos, t, name, true)
	if err != nil {
		return err
	}
	f.Globals = append(f.Globals, d)
	return nil
}

func (p *parser) parseVarRest(pos Pos, t Type, name string, global bool) (*VarDecl, error) {
	d := &VarDecl{P: pos, Type: t, Name: name, ArrayLen: -1, IsGlobal: global}
	if p.lx.tok == LBrack {
		p.lx.next()
		if p.lx.tok != INT {
			return nil, errf(p.pos(), "array length must be an integer literal")
		}
		d.ArrayLen = p.lx.val
		if d.ArrayLen <= 0 {
			return nil, errf(p.pos(), "array length must be positive")
		}
		p.lx.next()
		if err := p.expect(RBrack); err != nil {
			return nil, err
		}
	}
	if p.lx.tok == Assign {
		if d.IsArray() {
			return nil, errf(p.pos(), "array initializers are not supported")
		}
		p.lx.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		d.Init = e
	}
	return d, p.expect(Semi)
}

func (p *parser) parseFuncRest(pos Pos, ret Type, name string) (*FuncDecl, error) {
	fn := &FuncDecl{P: pos, Ret: ret, Name: name}
	if err := p.expect(LParen); err != nil {
		return nil, err
	}
	if p.lx.tok != RParen {
		for {
			pt, err := p.parseType()
			if err != nil {
				return nil, err
			}
			if pt == TypeVoid {
				return nil, errf(p.pos(), "parameter cannot have type void")
			}
			if p.lx.tok != IDENT {
				return nil, errf(p.pos(), "expected parameter name, found %s", p.describe())
			}
			fn.Params = append(fn.Params, Param{Type: pt, Name: p.lx.lit})
			p.lx.next()
			if p.lx.tok != Comma {
				break
			}
			p.lx.next()
		}
	}
	if err := p.expect(RParen); err != nil {
		return nil, err
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	fn.Body = body
	return fn, nil
}

func (p *parser) parseBlock() (*BlockStmt, error) {
	b := &BlockStmt{stmtBase: stmtBase{P: p.pos()}}
	if err := p.expect(LBrace); err != nil {
		return nil, err
	}
	for p.lx.tok != RBrace {
		if p.lx.tok == EOF {
			return nil, errf(p.pos(), "unexpected end of file in block")
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		if s != nil {
			b.List = append(b.List, s)
		}
	}
	p.lx.next() // consume }
	return b, nil
}

func (p *parser) parseStmt() (Stmt, error) {
	pos := p.pos()
	switch p.lx.tok {
	case Semi:
		p.lx.next()
		return nil, nil
	case LBrace:
		return p.parseBlock()
	case KwIf:
		p.lx.next()
		if err := p.expect(LParen); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(RParen); err != nil {
			return nil, err
		}
		then, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		st := &IfStmt{stmtBase: stmtBase{P: pos}, Cond: cond, Then: then}
		if p.lx.tok == KwElse {
			p.lx.next()
			els, err := p.parseStmt()
			if err != nil {
				return nil, err
			}
			st.Else = els
		}
		return st, nil
	case KwWhile:
		p.lx.next()
		if err := p.expect(LParen); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(RParen); err != nil {
			return nil, err
		}
		body, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		return &WhileStmt{stmtBase: stmtBase{P: pos}, Cond: cond, Body: body}, nil
	case KwFor:
		return p.parseFor(pos)
	case KwReturn:
		p.lx.next()
		st := &ReturnStmt{stmtBase: stmtBase{P: pos}}
		if p.lx.tok != Semi {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			st.X = e
		}
		return st, p.expect(Semi)
	case KwBreak:
		p.lx.next()
		return &BreakStmt{stmtBase{P: pos}}, p.expect(Semi)
	case KwContinue:
		p.lx.next()
		return &ContinueStmt{stmtBase{P: pos}}, p.expect(Semi)
	case KwInt, KwByte:
		t, err := p.parseType()
		if err != nil {
			return nil, err
		}
		if p.lx.tok != IDENT {
			return nil, errf(p.pos(), "expected name, found %s", p.describe())
		}
		name := p.lx.lit
		p.lx.next()
		d, err := p.parseVarRest(pos, t, name, false)
		if err != nil {
			return nil, err
		}
		return &DeclStmt{stmtBase: stmtBase{P: pos}, Decl: d}, nil
	case KwVoid:
		return nil, errf(pos, "variable cannot have type void")
	}
	st, err := p.parseSimpleStmt(pos)
	if err != nil {
		return nil, err
	}
	return st, p.expect(Semi)
}

// parseSimpleStmt parses an assignment, ++/--, or expression statement
// without consuming a trailing semicolon (shared with for-headers).
func (p *parser) parseSimpleStmt(pos Pos) (Stmt, error) {
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	switch p.lx.tok {
	case Assign, PlusEq, MinusEq, StarEq:
		op := p.lx.tok
		p.lx.next()
		rhs, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return &AssignStmt{stmtBase: stmtBase{P: pos}, Op: op, LHS: e, RHS: rhs}, nil
	case PlusPlus, MinusMinus:
		op := p.lx.tok
		p.lx.next()
		return &AssignStmt{stmtBase: stmtBase{P: pos}, Op: op, LHS: e}, nil
	}
	return &ExprStmt{stmtBase: stmtBase{P: pos}, X: e}, nil
}

func (p *parser) parseFor(pos Pos) (Stmt, error) {
	p.lx.next()
	if err := p.expect(LParen); err != nil {
		return nil, err
	}
	st := &ForStmt{stmtBase: stmtBase{P: pos}}
	// Init clause.
	if p.lx.tok != Semi {
		if p.isTypeStart() {
			dpos := p.pos()
			t, err := p.parseType()
			if err != nil {
				return nil, err
			}
			if p.lx.tok != IDENT {
				return nil, errf(p.pos(), "expected name in for-init")
			}
			name := p.lx.lit
			p.lx.next()
			if p.lx.tok != Assign {
				return nil, errf(p.pos(), "for-init declaration needs an initializer")
			}
			p.lx.next()
			init, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			d := &VarDecl{P: dpos, Type: t, Name: name, ArrayLen: -1, Init: init}
			st.Init = &DeclStmt{stmtBase: stmtBase{P: dpos}, Decl: d}
		} else {
			s, err := p.parseSimpleStmt(p.pos())
			if err != nil {
				return nil, err
			}
			st.Init = s
		}
	}
	if err := p.expect(Semi); err != nil {
		return nil, err
	}
	// Cond clause.
	if p.lx.tok != Semi {
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Cond = cond
	}
	if err := p.expect(Semi); err != nil {
		return nil, err
	}
	// Post clause.
	if p.lx.tok != RParen {
		s, err := p.parseSimpleStmt(p.pos())
		if err != nil {
			return nil, err
		}
		st.Post = s
	}
	if err := p.expect(RParen); err != nil {
		return nil, err
	}
	body, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	st.Body = body
	return st, nil
}

// Binary operator precedence, higher binds tighter.
func precOf(t Tok) int {
	switch t {
	case OrOr:
		return 1
	case AndAnd:
		return 2
	case Pipe:
		return 3
	case Caret:
		return 4
	case Amp:
		return 5
	case Eq, Ne:
		return 6
	case Lt, Le, Gt, Ge:
		return 7
	case Shl, Shr:
		return 8
	case Plus, Minus:
		return 9
	case Star, Slash, Percent:
		return 10
	}
	return 0
}

func (p *parser) parseExpr() (Expr, error) { return p.parseBinary(1) }

func (p *parser) parseBinary(minPrec int) (Expr, error) {
	x, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		prec := precOf(p.lx.tok)
		if prec < minPrec {
			return x, nil
		}
		op := p.lx.tok
		pos := p.pos()
		p.lx.next()
		y, err := p.parseBinary(prec + 1)
		if err != nil {
			return nil, err
		}
		x = &BinaryExpr{exprBase: exprBase{P: pos}, Op: op, X: x, Y: y}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	pos := p.pos()
	switch p.lx.tok {
	case Minus, Bang, Tilde, Star, Amp:
		op := p.lx.tok
		p.lx.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{exprBase: exprBase{P: pos}, Op: op, X: x}, nil
	}
	return p.parsePostfix()
}

func (p *parser) parsePostfix() (Expr, error) {
	x, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		switch p.lx.tok {
		case LBrack:
			pos := p.pos()
			p.lx.next()
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expect(RBrack); err != nil {
				return nil, err
			}
			x = &IndexExpr{exprBase: exprBase{P: pos}, X: x, I: idx}
		default:
			return x, nil
		}
	}
}

func (p *parser) parsePrimary() (Expr, error) {
	pos := p.pos()
	switch p.lx.tok {
	case INT, CHAR:
		v := p.lx.val
		p.lx.next()
		return &IntLit{exprBase: exprBase{P: pos}, Val: v}, nil
	case LParen:
		p.lx.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return e, p.expect(RParen)
	case IDENT:
		name := p.lx.lit
		p.lx.next()
		if p.lx.tok == LParen {
			p.lx.next()
			call := &CallExpr{exprBase: exprBase{P: pos}, Name: name}
			if p.lx.tok != RParen {
				for {
					a, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					call.Args = append(call.Args, a)
					if p.lx.tok != Comma {
						break
					}
					p.lx.next()
				}
			}
			return call, p.expect(RParen)
		}
		return &Ident{exprBase: exprBase{P: pos}, Name: name}, nil
	}
	return nil, errf(pos, "expected expression, found %s", p.describe())
}
