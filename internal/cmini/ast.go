package cmini

import (
	"fmt"
	"strings"
)

// Kind is a base type.
type Kind uint8

const (
	KindVoid Kind = iota
	KindInt       // 64-bit signed
	KindByte      // 8-bit unsigned storage, promoted to int in expressions
)

// Type is a cmini type: a base kind plus pointer depth. Arrays are a
// property of declarations, not of the type system; an array-typed name
// decays to a pointer when used as a value.
type Type struct {
	Kind Kind
	Ptr  int
}

// Common types.
var (
	TypeVoid    = Type{Kind: KindVoid}
	TypeInt     = Type{Kind: KindInt}
	TypeByte    = Type{Kind: KindByte}
	TypeIntPtr  = Type{Kind: KindInt, Ptr: 1}
	TypeBytePtr = Type{Kind: KindByte, Ptr: 1}
)

// IsPtr reports whether t is any pointer type.
func (t Type) IsPtr() bool { return t.Ptr > 0 }

// Elem returns the pointee type of a pointer.
func (t Type) Elem() Type { return Type{Kind: t.Kind, Ptr: t.Ptr - 1} }

// AddrOf returns the pointer-to-t type.
func (t Type) AddrOf() Type { return Type{Kind: t.Kind, Ptr: t.Ptr + 1} }

// Size returns the storage size in bytes of a value of type t.
func (t Type) Size() int64 {
	if t.Ptr > 0 {
		return 8
	}
	switch t.Kind {
	case KindInt:
		return 8
	case KindByte:
		return 1
	}
	return 0
}

func (t Type) String() string {
	var base string
	switch t.Kind {
	case KindVoid:
		base = "void"
	case KindInt:
		base = "int"
	case KindByte:
		base = "byte"
	}
	return base + strings.Repeat("*", t.Ptr)
}

// Expr is the interface implemented by all expression nodes. Every
// expression carries the type assigned to it by semantic analysis.
type Expr interface {
	Pos() Pos
	Type() Type
	setType(Type)
	exprNode()
}

type exprBase struct {
	P Pos
	T Type
}

func (e *exprBase) Pos() Pos       { return e.P }
func (e *exprBase) Type() Type     { return e.T }
func (e *exprBase) setType(t Type) { e.T = t }
func (e *exprBase) exprNode()      {}

// IntLit is an integer or character literal.
type IntLit struct {
	exprBase
	Val int64
}

// Ident is a reference to a named variable or parameter.
type Ident struct {
	exprBase
	Name string
	// Sym is filled by semantic analysis.
	Sym *Symbol
}

// BinaryExpr is X op Y. && and || short-circuit.
type BinaryExpr struct {
	exprBase
	Op   Tok
	X, Y Expr
}

// UnaryExpr is op X for op in {-, !, ~, * (deref), & (address-of)}.
type UnaryExpr struct {
	exprBase
	Op Tok
	X  Expr
}

// IndexExpr is X[I]; X must be a pointer or array-typed name.
type IndexExpr struct {
	exprBase
	X, I Expr
}

// CallExpr calls a named function or builtin.
type CallExpr struct {
	exprBase
	Name string
	Args []Expr
	// Builtin is set by sema for print/putc/checksum/cycles.
	Builtin Builtin
	// Fn is the resolved user function (nil for builtins).
	Fn *FuncDecl
}

// Builtin identifies the built-in pseudo-functions.
type Builtin uint8

const (
	NotBuiltin Builtin = iota
	BuiltinPrint
	BuiltinPutc
	BuiltinChecksum
	BuiltinCycles
)

// Stmt is implemented by all statement nodes.
type Stmt interface {
	Pos() Pos
	stmtNode()
}

type stmtBase struct{ P Pos }

func (s *stmtBase) Pos() Pos  { return s.P }
func (s *stmtBase) stmtNode() {}

// DeclStmt declares a local variable (possibly an array).
type DeclStmt struct {
	stmtBase
	Decl *VarDecl
}

// AssignStmt is LHS op= RHS (op= in {=, +=, -=, *=}) or LHS++ / LHS--.
type AssignStmt struct {
	stmtBase
	Op  Tok // Assign, PlusEq, MinusEq, StarEq, PlusPlus, MinusMinus
	LHS Expr
	RHS Expr // nil for ++/--
}

// ExprStmt evaluates an expression for its side effects (calls).
type ExprStmt struct {
	stmtBase
	X Expr
}

// IfStmt is the conditional statement.
type IfStmt struct {
	stmtBase
	Cond Expr
	Then Stmt
	Else Stmt // may be nil
}

// WhileStmt loops while Cond is non-zero.
type WhileStmt struct {
	stmtBase
	Cond Expr
	Body Stmt
}

// ForStmt is C's for. Init and Post may be nil; Cond may be nil (infinite).
type ForStmt struct {
	stmtBase
	Init Stmt // DeclStmt or AssignStmt or nil
	Cond Expr
	Post Stmt // AssignStmt or nil
	Body Stmt
}

// ReturnStmt returns from the enclosing function.
type ReturnStmt struct {
	stmtBase
	X Expr // nil for void returns
}

// BreakStmt exits the innermost loop.
type BreakStmt struct{ stmtBase }

// ContinueStmt jumps to the next iteration of the innermost loop.
type ContinueStmt struct{ stmtBase }

// BlockStmt is a brace-enclosed statement list with its own scope.
type BlockStmt struct {
	stmtBase
	List []Stmt
}

// VarDecl declares a variable: global or local, scalar or array.
type VarDecl struct {
	P        Pos
	Type     Type
	Name     string
	ArrayLen int64 // -1 for scalars
	Init     Expr  // optional; for globals must be constant
	IsGlobal bool
	// Sym is filled by semantic analysis.
	Sym *Symbol
}

// IsArray reports whether the declaration is an array.
func (d *VarDecl) IsArray() bool { return d.ArrayLen >= 0 }

// StorageSize is the total byte size of the declared object.
func (d *VarDecl) StorageSize() int64 {
	if d.IsArray() {
		return d.Type.Size() * d.ArrayLen
	}
	return d.Type.Size()
}

// Param is a function parameter.
type Param struct {
	Type Type
	Name string
	Sym  *Symbol
}

// FuncDecl declares a function.
type FuncDecl struct {
	P      Pos
	Ret    Type
	Name   string
	Params []Param
	Body   *BlockStmt
}

// File is one parsed translation unit.
type File struct {
	Name    string
	Globals []*VarDecl
	Funcs   []*FuncDecl
}

// SymKind classifies symbols.
type SymKind uint8

const (
	SymGlobal SymKind = iota
	SymLocal
	SymParam
)

// Symbol is a resolved name. For locals and params, Index is assigned by
// sema in declaration order and used by the IR lowerer.
type Symbol struct {
	Kind     SymKind
	Name     string // mangled for globals: unit-qualified if static? (not used)
	Decl     *VarDecl
	ParamIdx int
	Type     Type
	IsArray  bool
	ArrayLen int64
}

func (s *Symbol) String() string {
	return fmt.Sprintf("%s(%v)", s.Name, s.Type)
}
