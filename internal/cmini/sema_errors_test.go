package cmini

import (
	"strings"
	"testing"
)

// checkErr parses srcs and runs Check, requiring an error whose message
// contains want.
func checkErr(t *testing.T, want string, srcs ...string) {
	t.Helper()
	var files []*File
	for i, src := range srcs {
		f, err := ParseFile("err"+string(rune('0'+i))+".cm", src)
		if err != nil {
			t.Fatalf("parse: %v", err)
		}
		files = append(files, f)
	}
	_, err := Check(files)
	if err == nil {
		t.Fatalf("Check succeeded, want error containing %q", want)
	}
	if !strings.Contains(err.Error(), want) {
		t.Fatalf("Check error = %q, want it to contain %q", err, want)
	}
}

func TestConstValueFolds(t *testing.T) {
	cases := []struct {
		expr string
		want int64
	}{
		{"1 + 2*3", 7},
		{"(1 << 10) - 1", 1023},
		{"-7 / 2", -3},
		{"17 % 5", 2},
		{"-17 % 5", -2},
		{"~0 & 255", 255},
		{"1 | 2 ^ 2", 1},
		{"!0 + !5", 1},
		{"255 >> 4", 15},
		{"(-9223372036854775807 - 1) % -1", 0}, // INT64_MIN % -1 is defined: 0
	}
	for _, tc := range cases {
		u := mustCheck(t, "int g = "+tc.expr+"; void main() {}")
		g := u.Globals["g"]
		lit, ok := g.Init.(*IntLit)
		if !ok {
			t.Fatalf("%s: initializer not folded to literal", tc.expr)
		}
		if lit.Val != tc.want {
			t.Errorf("%s folded to %d, want %d", tc.expr, lit.Val, tc.want)
		}
	}
}

// TestConstValueUndefined pins every undefined-arithmetic class to a
// positioned error: the analyzer (and global initializers) must refuse to
// fold UB rather than pick an arbitrary value.
func TestConstValueUndefined(t *testing.T) {
	cases := []struct {
		expr, want string
	}{
		{"1 / 0", "division by zero"},
		{"1 % 0", "remainder by zero"},
		{"1 % (3 - 3)", "remainder by zero"},
		{"1 << 64", "shift count 64 out of range"},
		{"1 << -1", "shift count -1 out of range"},
		{"1 >> 100", "shift count 100 out of range"},
		{"9223372036854775807 + 1", "constant overflow"},
		{"(-9223372036854775807 - 1) - 1", "constant overflow"},
		{"4611686018427387904 * 2", "constant overflow"},
		{"(-9223372036854775807 - 1) * -1", "constant overflow"},
		{"(-9223372036854775807 - 1) / -1", "constant overflow"},
		{"-(-9223372036854775807 - 1)", "constant overflow"},
	}
	for _, tc := range cases {
		checkErr(t, tc.want, "int g = "+tc.expr+"; void main() {}")
	}
}

func TestConstValueNonConstant(t *testing.T) {
	checkErr(t, "not a constant expression", "int a; int g = a + 1; void main() {}")
}

func TestRedeclarationErrors(t *testing.T) {
	cases := []struct{ name, want, src string }{
		{"dup global", "duplicate global", "int x; int x; void main() {}"},
		{"global as func", "redeclared as function", "int f; void f() {} void main() {}"},
		{"dup function", "duplicate function", "void f() {} void f() {} void main() {}"},
		{"builtin global", "builtin name", "int print; void main() {}"},
		{"builtin func", "builtin name", "void cycles() {} void main() {}"},
		{"dup param", "duplicate parameter", "int f(int a, int a) { return a; } void main() {}"},
		{"dup local", "duplicate variable", "void main() { int a; int a; }"},
		{"main params", "main must be void main()", "void main(int argc) {}"},
		{"main ret", "main must be void main()", "int main() { return 0; }"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) { checkErr(t, tc.want, tc.src) })
	}
}

func TestRedeclarationAcrossFiles(t *testing.T) {
	checkErr(t, "duplicate global", "int shared; void main() {}", "int shared;")
	checkErr(t, "duplicate function", "void f() {} void main() {}", "void f() {}")
}

// Shadowing in a nested scope is legal; redeclaration is per-scope.
func TestShadowingAllowed(t *testing.T) {
	mustCheck(t, "void main() { int a; if (a) { int a; a = 1; } }")
}
