// Package cmini implements the frontend for cmini, the small C-like language
// the benchmark suite is written in. cmini has 64-bit ints, bytes, pointers,
// fixed-size arrays, functions, and C-style control flow — enough to express
// faithful analogues of the SPEC CPU2006 C programs while keeping the
// toolchain self-contained.
//
// The package provides the lexer, parser, AST, and semantic analyzer.
// Lowering to IR lives in internal/compiler.
package cmini

import "fmt"

// Tok enumerates token kinds.
type Tok uint8

const (
	EOF Tok = iota
	IDENT
	INT  // integer literal
	CHAR // character literal (value is the byte)

	// Keywords.
	KwInt
	KwByte
	KwVoid
	KwIf
	KwElse
	KwWhile
	KwFor
	KwReturn
	KwBreak
	KwContinue

	// Punctuation and operators.
	LParen
	RParen
	LBrace
	RBrace
	LBrack
	RBrack
	Comma
	Semi

	Assign     // =
	PlusEq     // +=
	MinusEq    // -=
	StarEq     // *=
	Plus       // +
	Minus      // -
	Star       // *
	Slash      // /
	Percent    // %
	Amp        // &
	Pipe       // |
	Caret      // ^
	Tilde      // ~
	Bang       // !
	Shl        // <<
	Shr        // >>
	Eq         // ==
	Ne         // !=
	Lt         // <
	Le         // <=
	Gt         // >
	Ge         // >=
	AndAnd     // &&
	OrOr       // ||
	PlusPlus   // ++
	MinusMinus // --
)

var tokNames = map[Tok]string{
	EOF: "EOF", IDENT: "identifier", INT: "integer", CHAR: "char",
	KwInt: "int", KwByte: "byte", KwVoid: "void", KwIf: "if", KwElse: "else",
	KwWhile: "while", KwFor: "for", KwReturn: "return", KwBreak: "break",
	KwContinue: "continue",
	LParen:     "(", RParen: ")", LBrace: "{", RBrace: "}",
	LBrack: "[", RBrack: "]", Comma: ",", Semi: ";",
	Assign: "=", PlusEq: "+=", MinusEq: "-=", StarEq: "*=",
	Plus: "+", Minus: "-", Star: "*", Slash: "/", Percent: "%",
	Amp: "&", Pipe: "|", Caret: "^", Tilde: "~", Bang: "!",
	Shl: "<<", Shr: ">>", Eq: "==", Ne: "!=", Lt: "<", Le: "<=",
	Gt: ">", Ge: ">=", AndAnd: "&&", OrOr: "||",
	PlusPlus: "++", MinusMinus: "--",
}

func (t Tok) String() string {
	if s, ok := tokNames[t]; ok {
		return s
	}
	return fmt.Sprintf("tok%d?", uint8(t))
}

var keywords = map[string]Tok{
	"int": KwInt, "byte": KwByte, "void": KwVoid, "if": KwIf, "else": KwElse,
	"while": KwWhile, "for": KwFor, "return": KwReturn, "break": KwBreak,
	"continue": KwContinue,
}

// Pos is a source position.
type Pos struct {
	File string
	Line int
}

func (p Pos) String() string { return fmt.Sprintf("%s:%d", p.File, p.Line) }

// Error is a frontend diagnostic.
type Error struct {
	Pos Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

func errf(pos Pos, format string, args ...any) *Error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}
