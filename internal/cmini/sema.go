package cmini

import (
	"fmt"
	"math"
)

// Unit is a set of parsed files forming a whole program with a shared global
// namespace (every top-level name is externally visible, as in the C
// programs the suite models).
type Unit struct {
	Files []*File
	// Globals and Funcs index the program-wide namespace after Check.
	Globals map[string]*VarDecl
	Funcs   map[string]*FuncDecl
}

// Check runs semantic analysis over the files: it builds the global
// namespace, resolves every identifier, type-checks every construct, and
// annotates the AST (expression types, symbol links, constant-folded global
// initializers). It returns the analyzed Unit or the first error.
func Check(files []*File) (*Unit, error) {
	u := &Unit{
		Files:   files,
		Globals: make(map[string]*VarDecl),
		Funcs:   make(map[string]*FuncDecl),
	}
	// Pass 1: collect the global namespace.
	for _, f := range files {
		for _, g := range f.Globals {
			if _, dup := u.Globals[g.Name]; dup {
				return nil, errf(g.P, "duplicate global %s", g.Name)
			}
			if _, dup := u.Funcs[g.Name]; dup {
				return nil, errf(g.P, "%s redeclared as variable", g.Name)
			}
			if isBuiltinName(g.Name) {
				return nil, errf(g.P, "%s is a builtin name", g.Name)
			}
			g.Sym = &Symbol{Kind: SymGlobal, Name: g.Name, Decl: g, Type: g.Type, IsArray: g.IsArray(), ArrayLen: g.ArrayLen}
			u.Globals[g.Name] = g
		}
		for _, fn := range f.Funcs {
			if _, dup := u.Funcs[fn.Name]; dup {
				return nil, errf(fn.P, "duplicate function %s", fn.Name)
			}
			if _, dup := u.Globals[fn.Name]; dup {
				return nil, errf(fn.P, "%s redeclared as function", fn.Name)
			}
			if isBuiltinName(fn.Name) {
				return nil, errf(fn.P, "%s is a builtin name", fn.Name)
			}
			u.Funcs[fn.Name] = fn
		}
	}
	main, ok := u.Funcs["main"]
	if !ok {
		return nil, fmt.Errorf("cmini: program has no main")
	}
	if len(main.Params) != 0 || main.Ret != TypeVoid {
		return nil, errf(main.P, "main must be void main()")
	}

	// Pass 2: check global initializers (must be constant).
	for _, f := range files {
		for _, g := range f.Globals {
			if g.Init == nil {
				continue
			}
			v, err := constEval(g.Init)
			if err != nil {
				return nil, err
			}
			lit, okLit := g.Init.(*IntLit)
			if !okLit {
				lit = &IntLit{exprBase: exprBase{P: g.P}, Val: v}
				g.Init = lit
			}
			lit.Val = v
			lit.setType(TypeInt)
			if g.Type.IsPtr() {
				return nil, errf(g.P, "global pointer %s cannot be initialized", g.Name)
			}
		}
	}

	// Pass 3: check function bodies.
	for _, f := range files {
		for _, fn := range f.Funcs {
			c := &checker{unit: u, fn: fn}
			c.pushScope()
			for i := range fn.Params {
				prm := &fn.Params[i]
				prm.Sym = &Symbol{Kind: SymParam, Name: prm.Name, ParamIdx: i, Type: prm.Type}
				if !c.declare(prm.Name, prm.Sym) {
					return nil, errf(fn.P, "duplicate parameter %s", prm.Name)
				}
			}
			if err := c.checkBlock(fn.Body); err != nil {
				return nil, err
			}
			c.popScope()
		}
	}
	return u, nil
}

func isBuiltinName(name string) bool {
	switch name {
	case "print", "putc", "checksum", "cycles":
		return true
	}
	return false
}

func builtinOf(name string) Builtin {
	switch name {
	case "print":
		return BuiltinPrint
	case "putc":
		return BuiltinPutc
	case "checksum":
		return BuiltinChecksum
	case "cycles":
		return BuiltinCycles
	}
	return NotBuiltin
}

// ConstValue folds a constant expression (literals, unary -/~/!, and binary
// arithmetic over constants), reporting the undefined cases — division or
// remainder by zero, shift counts outside [0,64), and signed overflow — as
// positioned errors instead of folding them to an arbitrary value. It is the
// shared evaluator behind global initializers and the static analyzer's
// constant-condition and UB diagnostics.
func ConstValue(e Expr) (int64, error) {
	switch x := e.(type) {
	case *IntLit:
		return x.Val, nil
	case *UnaryExpr:
		v, err := ConstValue(x.X)
		if err != nil {
			return 0, err
		}
		switch x.Op {
		case Minus:
			if v == math.MinInt64 {
				return 0, errf(x.Pos(), "constant overflow: -(%d)", v)
			}
			return -v, nil
		case Tilde:
			return ^v, nil
		case Bang:
			if v == 0 {
				return 1, nil
			}
			return 0, nil
		}
	case *BinaryExpr:
		a, err := ConstValue(x.X)
		if err != nil {
			return 0, err
		}
		b, err := ConstValue(x.Y)
		if err != nil {
			return 0, err
		}
		switch x.Op {
		case Plus:
			if s := a + b; (s > a) == (b > 0) || b == 0 {
				return s, nil
			}
			return 0, errf(x.Pos(), "constant overflow: %d + %d", a, b)
		case Minus:
			if d := a - b; (d < a) == (b > 0) || b == 0 {
				return d, nil
			}
			return 0, errf(x.Pos(), "constant overflow: %d - %d", a, b)
		case Star:
			p := a * b
			if a != 0 && (p/a != b || (a == -1 && b == math.MinInt64)) {
				return 0, errf(x.Pos(), "constant overflow: %d * %d", a, b)
			}
			return p, nil
		case Slash:
			if b == 0 {
				return 0, errf(x.Pos(), "division by zero in constant")
			}
			if a == math.MinInt64 && b == -1 {
				return 0, errf(x.Pos(), "constant overflow: %d / -1", a)
			}
			return a / b, nil
		case Percent:
			if b == 0 {
				return 0, errf(x.Pos(), "remainder by zero in constant")
			}
			if a == math.MinInt64 && b == -1 {
				return 0, nil // no overflow: remainder is 0
			}
			return a % b, nil
		case Shl:
			if b < 0 || b > 63 {
				return 0, errf(x.Pos(), "shift count %d out of range [0,64)", b)
			}
			return a << uint64(b), nil
		case Shr:
			if b < 0 || b > 63 {
				return 0, errf(x.Pos(), "shift count %d out of range [0,64)", b)
			}
			return int64(uint64(a) >> uint64(b)), nil
		case Pipe:
			return a | b, nil
		case Amp:
			return a & b, nil
		case Caret:
			return a ^ b, nil
		}
	}
	return 0, errf(e.Pos(), "not a constant expression")
}

// constEval keeps the historic internal name used by the global-initializer
// pass; it is ConstValue.
func constEval(e Expr) (int64, error) { return ConstValue(e) }

type checker struct {
	unit   *Unit
	fn     *FuncDecl
	scopes []map[string]*Symbol
	loops  int
}

func (c *checker) pushScope() { c.scopes = append(c.scopes, map[string]*Symbol{}) }
func (c *checker) popScope()  { c.scopes = c.scopes[:len(c.scopes)-1] }

func (c *checker) declare(name string, s *Symbol) bool {
	top := c.scopes[len(c.scopes)-1]
	if _, dup := top[name]; dup {
		return false
	}
	top[name] = s
	return true
}

func (c *checker) lookup(name string) *Symbol {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if s, ok := c.scopes[i][name]; ok {
			return s
		}
	}
	if g, ok := c.unit.Globals[name]; ok {
		return g.Sym
	}
	return nil
}

func (c *checker) checkBlock(b *BlockStmt) error {
	c.pushScope()
	defer c.popScope()
	for _, s := range b.List {
		if err := c.checkStmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (c *checker) checkStmt(s Stmt) error {
	switch st := s.(type) {
	case *BlockStmt:
		return c.checkBlock(st)
	case *DeclStmt:
		return c.checkDecl(st.Decl)
	case *AssignStmt:
		return c.checkAssign(st)
	case *ExprStmt:
		_, err := c.checkExpr(st.X)
		return err
	case *IfStmt:
		if _, err := c.checkCond(st.Cond); err != nil {
			return err
		}
		if err := c.checkStmt(st.Then); err != nil {
			return err
		}
		if st.Else != nil {
			return c.checkStmt(st.Else)
		}
		return nil
	case *WhileStmt:
		if _, err := c.checkCond(st.Cond); err != nil {
			return err
		}
		c.loops++
		defer func() { c.loops-- }()
		return c.checkStmt(st.Body)
	case *ForStmt:
		c.pushScope()
		defer c.popScope()
		if st.Init != nil {
			if err := c.checkStmt(st.Init); err != nil {
				return err
			}
		}
		if st.Cond != nil {
			if _, err := c.checkCond(st.Cond); err != nil {
				return err
			}
		}
		if st.Post != nil {
			if err := c.checkStmt(st.Post); err != nil {
				return err
			}
		}
		c.loops++
		defer func() { c.loops-- }()
		return c.checkStmt(st.Body)
	case *ReturnStmt:
		if c.fn.Ret == TypeVoid {
			if st.X != nil {
				return errf(st.Pos(), "void function %s returns a value", c.fn.Name)
			}
			return nil
		}
		if st.X == nil {
			return errf(st.Pos(), "function %s must return a value", c.fn.Name)
		}
		t, err := c.checkExpr(st.X)
		if err != nil {
			return err
		}
		if !assignable(c.fn.Ret, t) {
			return errf(st.Pos(), "cannot return %v from function returning %v", t, c.fn.Ret)
		}
		return nil
	case *BreakStmt:
		if c.loops == 0 {
			return errf(st.Pos(), "break outside loop")
		}
		return nil
	case *ContinueStmt:
		if c.loops == 0 {
			return errf(st.Pos(), "continue outside loop")
		}
		return nil
	}
	return fmt.Errorf("cmini: unknown statement %T", s)
}

func (c *checker) checkDecl(d *VarDecl) error {
	if d.Type == TypeVoid {
		return errf(d.P, "variable %s cannot have type void", d.Name)
	}
	d.Sym = &Symbol{Kind: SymLocal, Name: d.Name, Decl: d, Type: d.Type, IsArray: d.IsArray(), ArrayLen: d.ArrayLen}
	if !c.declare(d.Name, d.Sym) {
		return errf(d.P, "duplicate variable %s in scope", d.Name)
	}
	if d.Init != nil {
		t, err := c.checkExpr(d.Init)
		if err != nil {
			return err
		}
		if !assignable(d.Type, t) {
			return errf(d.P, "cannot initialize %v with %v", d.Type, t)
		}
	}
	return nil
}

func (c *checker) checkAssign(st *AssignStmt) error {
	lt, err := c.checkLValue(st.LHS)
	if err != nil {
		return err
	}
	if st.Op == PlusPlus || st.Op == MinusMinus {
		if !lt.IsPtr() && lt.Kind == KindVoid {
			return errf(st.Pos(), "cannot increment %v", lt)
		}
		return nil
	}
	rt, err := c.checkExpr(st.RHS)
	if err != nil {
		return err
	}
	switch st.Op {
	case Assign:
		if !assignable(lt, rt) {
			return errf(st.Pos(), "cannot assign %v to %v", rt, lt)
		}
	case PlusEq, MinusEq:
		if lt.IsPtr() {
			if rt.IsPtr() || rt.Kind == KindVoid {
				return errf(st.Pos(), "pointer %s needs an integer operand", st.Op)
			}
		} else if rt.IsPtr() {
			return errf(st.Pos(), "cannot %s a pointer into %v", st.Op, lt)
		}
	case StarEq:
		if lt.IsPtr() || rt.IsPtr() {
			return errf(st.Pos(), "*= requires integer operands")
		}
	default:
		return errf(st.Pos(), "bad assignment operator %s", st.Op)
	}
	return nil
}

// checkLValue checks an expression in assignable position and returns the
// type of the storage location.
func (c *checker) checkLValue(e Expr) (Type, error) {
	switch x := e.(type) {
	case *Ident:
		t, err := c.checkExpr(x)
		if err != nil {
			return t, err
		}
		if x.Sym.IsArray {
			return t, errf(x.Pos(), "cannot assign to array %s", x.Name)
		}
		return t, nil
	case *IndexExpr:
		return c.checkExpr(x)
	case *UnaryExpr:
		if x.Op == Star {
			return c.checkExpr(x)
		}
	}
	return TypeVoid, errf(e.Pos(), "expression is not assignable")
}

// checkCond type-checks a condition; any int or pointer value is allowed.
func (c *checker) checkCond(e Expr) (Type, error) {
	t, err := c.checkExpr(e)
	if err != nil {
		return t, err
	}
	if t == TypeVoid {
		return t, errf(e.Pos(), "void value used as condition")
	}
	return t, nil
}

// assignable reports whether a value of type src may be stored into dst.
// int and byte interconvert (stores truncate); pointer types must match.
func assignable(dst, src Type) bool {
	if dst.IsPtr() || src.IsPtr() {
		return dst == src
	}
	return dst.Kind != KindVoid && src.Kind != KindVoid
}

func (c *checker) checkExpr(e Expr) (Type, error) {
	switch x := e.(type) {
	case *IntLit:
		x.setType(TypeInt)
		return TypeInt, nil
	case *Ident:
		sym := c.lookup(x.Name)
		if sym == nil {
			return TypeVoid, errf(x.Pos(), "undefined: %s", x.Name)
		}
		x.Sym = sym
		t := sym.Type
		if sym.IsArray {
			t = t.AddrOf() // arrays decay to pointers as values
		}
		x.setType(t)
		return t, nil
	case *UnaryExpr:
		return c.checkUnary(x)
	case *BinaryExpr:
		return c.checkBinary(x)
	case *IndexExpr:
		xt, err := c.checkExpr(x.X)
		if err != nil {
			return TypeVoid, err
		}
		if !xt.IsPtr() {
			return TypeVoid, errf(x.Pos(), "cannot index %v", xt)
		}
		it, err := c.checkExpr(x.I)
		if err != nil {
			return TypeVoid, err
		}
		if it.IsPtr() || it == TypeVoid {
			return TypeVoid, errf(x.Pos(), "array index must be an integer, not %v", it)
		}
		t := xt.Elem()
		x.setType(t)
		return t, nil
	case *CallExpr:
		return c.checkCall(x)
	}
	return TypeVoid, fmt.Errorf("cmini: unknown expression %T", e)
}

func (c *checker) checkUnary(x *UnaryExpr) (Type, error) {
	switch x.Op {
	case Minus, Tilde, Bang:
		t, err := c.checkExpr(x.X)
		if err != nil {
			return TypeVoid, err
		}
		if t.IsPtr() && x.Op != Bang {
			return TypeVoid, errf(x.Pos(), "invalid operand %v to unary %s", t, x.Op)
		}
		if t == TypeVoid {
			return TypeVoid, errf(x.Pos(), "invalid void operand to unary %s", x.Op)
		}
		x.setType(TypeInt)
		return TypeInt, nil
	case Star:
		t, err := c.checkExpr(x.X)
		if err != nil {
			return TypeVoid, err
		}
		if !t.IsPtr() {
			return TypeVoid, errf(x.Pos(), "cannot dereference %v", t)
		}
		et := t.Elem()
		x.setType(et)
		return et, nil
	case Amp:
		switch target := x.X.(type) {
		case *Ident:
			t, err := c.checkExpr(target)
			if err != nil {
				return TypeVoid, err
			}
			if target.Sym.IsArray {
				// &arr is the same pointer as the decayed arr.
				x.setType(t)
				return t, nil
			}
			pt := t.AddrOf()
			x.setType(pt)
			return pt, nil
		case *IndexExpr:
			t, err := c.checkExpr(target)
			if err != nil {
				return TypeVoid, err
			}
			pt := t.AddrOf()
			x.setType(pt)
			return pt, nil
		}
		return TypeVoid, errf(x.Pos(), "cannot take address of expression")
	}
	return TypeVoid, errf(x.Pos(), "bad unary operator %s", x.Op)
}

func (c *checker) checkBinary(x *BinaryExpr) (Type, error) {
	lt, err := c.checkExpr(x.X)
	if err != nil {
		return TypeVoid, err
	}
	rt, err := c.checkExpr(x.Y)
	if err != nil {
		return TypeVoid, err
	}
	if lt == TypeVoid || rt == TypeVoid {
		return TypeVoid, errf(x.Pos(), "void operand to %s", x.Op)
	}
	switch x.Op {
	case Eq, Ne, Lt, Le, Gt, Ge:
		if lt.IsPtr() != rt.IsPtr() {
			return TypeVoid, errf(x.Pos(), "cannot compare %v with %v", lt, rt)
		}
		if lt.IsPtr() && lt != rt {
			return TypeVoid, errf(x.Pos(), "cannot compare %v with %v", lt, rt)
		}
		x.setType(TypeInt)
		return TypeInt, nil
	case AndAnd, OrOr:
		x.setType(TypeInt)
		return TypeInt, nil
	case Plus:
		if lt.IsPtr() && rt.IsPtr() {
			return TypeVoid, errf(x.Pos(), "cannot add two pointers")
		}
		if lt.IsPtr() {
			x.setType(lt)
			return lt, nil
		}
		if rt.IsPtr() {
			x.setType(rt)
			return rt, nil
		}
		x.setType(TypeInt)
		return TypeInt, nil
	case Minus:
		if lt.IsPtr() && rt.IsPtr() {
			if lt != rt {
				return TypeVoid, errf(x.Pos(), "cannot subtract %v from %v", rt, lt)
			}
			// Pointer difference yields the element count, as in C.
			x.setType(TypeInt)
			return TypeInt, nil
		}
		if rt.IsPtr() {
			return TypeVoid, errf(x.Pos(), "cannot subtract pointer from integer")
		}
		if lt.IsPtr() {
			x.setType(lt)
			return lt, nil
		}
		x.setType(TypeInt)
		return TypeInt, nil
	default:
		if lt.IsPtr() || rt.IsPtr() {
			return TypeVoid, errf(x.Pos(), "invalid pointer operand to %s", x.Op)
		}
		x.setType(TypeInt)
		return TypeInt, nil
	}
}

func (c *checker) checkCall(x *CallExpr) (Type, error) {
	if b := builtinOf(x.Name); b != NotBuiltin {
		x.Builtin = b
		switch b {
		case BuiltinCycles:
			if len(x.Args) != 0 {
				return TypeVoid, errf(x.Pos(), "cycles() takes no arguments")
			}
			x.setType(TypeInt)
			return TypeInt, nil
		default:
			if len(x.Args) != 1 {
				return TypeVoid, errf(x.Pos(), "%s takes exactly one argument", x.Name)
			}
			t, err := c.checkExpr(x.Args[0])
			if err != nil {
				return TypeVoid, err
			}
			if t == TypeVoid {
				return TypeVoid, errf(x.Pos(), "void argument to %s", x.Name)
			}
			x.setType(TypeVoid)
			return TypeVoid, nil
		}
	}
	fn, ok := c.unit.Funcs[x.Name]
	if !ok {
		return TypeVoid, errf(x.Pos(), "undefined function %s", x.Name)
	}
	x.Fn = fn
	if len(x.Args) != len(fn.Params) {
		return TypeVoid, errf(x.Pos(), "%s takes %d arguments, got %d", x.Name, len(fn.Params), len(x.Args))
	}
	for i, a := range x.Args {
		t, err := c.checkExpr(a)
		if err != nil {
			return TypeVoid, err
		}
		if !assignable(fn.Params[i].Type, t) {
			return TypeVoid, errf(a.Pos(), "argument %d of %s: cannot pass %v as %v", i+1, x.Name, t, fn.Params[i].Type)
		}
	}
	x.setType(fn.Ret)
	return fn.Ret, nil
}
