package cmini

import "fmt"

// lexer turns source text into tokens. It supports //-comments, /* */
// comments, decimal and hex integer literals, and character literals with
// the common escapes.
type lexer struct {
	src  string
	file string
	pos  int
	line int

	tok  Tok
	lit  string
	val  int64
	tpos Pos
	err  error
}

func newLexer(file, src string) *lexer {
	l := &lexer{src: src, file: file, line: 1}
	l.next()
	return l
}

func (l *lexer) errorf(format string, args ...any) {
	if l.err == nil {
		l.err = errf(Pos{File: l.file, Line: l.line}, format, args...)
	}
	l.tok = EOF
}

func (l *lexer) peekByte() byte {
	if l.pos < len(l.src) {
		return l.src[l.pos]
	}
	return 0
}

func (l *lexer) peek2() byte {
	if l.pos+1 < len(l.src) {
		return l.src[l.pos+1]
	}
	return 0
}

func (l *lexer) skipSpace() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.line++
			l.pos++
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
		case c == '/' && l.peek2() == '/':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case c == '/' && l.peek2() == '*':
			l.pos += 2
			for l.pos < len(l.src) && !(l.src[l.pos] == '*' && l.peek2() == '/') {
				if l.src[l.pos] == '\n' {
					l.line++
				}
				l.pos++
			}
			if l.pos >= len(l.src) {
				l.errorf("unterminated block comment")
				return
			}
			l.pos += 2
		default:
			return
		}
	}
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }
func isHex(c byte) bool {
	return isDigit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
}
func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}
func isIdent(c byte) bool { return isIdentStart(c) || isDigit(c) }

// next advances to the next token.
func (l *lexer) next() {
	l.skipSpace()
	l.tpos = Pos{File: l.file, Line: l.line}
	if l.err != nil || l.pos >= len(l.src) {
		l.tok = EOF
		return
	}
	c := l.src[l.pos]
	switch {
	case isIdentStart(c):
		start := l.pos
		for l.pos < len(l.src) && isIdent(l.src[l.pos]) {
			l.pos++
		}
		l.lit = l.src[start:l.pos]
		if kw, ok := keywords[l.lit]; ok {
			l.tok = kw
		} else {
			l.tok = IDENT
		}
		return
	case isDigit(c):
		l.lexNumber()
		return
	case c == '\'':
		l.lexChar()
		return
	}
	l.pos++
	two := func(second byte, ifTwo, ifOne Tok) {
		if l.peekByte() == second {
			l.pos++
			l.tok = ifTwo
		} else {
			l.tok = ifOne
		}
	}
	switch c {
	case '(':
		l.tok = LParen
	case ')':
		l.tok = RParen
	case '{':
		l.tok = LBrace
	case '}':
		l.tok = RBrace
	case '[':
		l.tok = LBrack
	case ']':
		l.tok = RBrack
	case ',':
		l.tok = Comma
	case ';':
		l.tok = Semi
	case '~':
		l.tok = Tilde
	case '^':
		l.tok = Caret
	case '/':
		l.tok = Slash
	case '%':
		l.tok = Percent
	case '=':
		two('=', Eq, Assign)
	case '!':
		two('=', Ne, Bang)
	case '+':
		switch l.peekByte() {
		case '=':
			l.pos++
			l.tok = PlusEq
		case '+':
			l.pos++
			l.tok = PlusPlus
		default:
			l.tok = Plus
		}
	case '-':
		switch l.peekByte() {
		case '=':
			l.pos++
			l.tok = MinusEq
		case '-':
			l.pos++
			l.tok = MinusMinus
		default:
			l.tok = Minus
		}
	case '*':
		two('=', StarEq, Star)
	case '&':
		two('&', AndAnd, Amp)
	case '|':
		two('|', OrOr, Pipe)
	case '<':
		switch l.peekByte() {
		case '=':
			l.pos++
			l.tok = Le
		case '<':
			l.pos++
			l.tok = Shl
		default:
			l.tok = Lt
		}
	case '>':
		switch l.peekByte() {
		case '=':
			l.pos++
			l.tok = Ge
		case '>':
			l.pos++
			l.tok = Shr
		default:
			l.tok = Gt
		}
	default:
		l.errorf("unexpected character %q", string(rune(c)))
	}
}

func (l *lexer) lexNumber() {
	start := l.pos
	if l.src[l.pos] == '0' && (l.peek2() == 'x' || l.peek2() == 'X') {
		l.pos += 2
		hstart := l.pos
		for l.pos < len(l.src) && isHex(l.src[l.pos]) {
			l.pos++
		}
		if l.pos == hstart {
			l.errorf("malformed hex literal")
			return
		}
		var v uint64
		for _, ch := range []byte(l.src[hstart:l.pos]) {
			v = v*16 + uint64(hexVal(ch))
		}
		l.tok, l.val, l.lit = INT, int64(v), l.src[start:l.pos]
		return
	}
	for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
		l.pos++
	}
	var v int64
	for _, ch := range []byte(l.src[start:l.pos]) {
		nv := v*10 + int64(ch-'0')
		if nv < v {
			l.errorf("integer literal overflows int64")
			return
		}
		v = nv
	}
	l.tok, l.val, l.lit = INT, v, l.src[start:l.pos]
}

func hexVal(c byte) int {
	switch {
	case isDigit(c):
		return int(c - '0')
	case c >= 'a':
		return int(c-'a') + 10
	default:
		return int(c-'A') + 10
	}
}

func (l *lexer) lexChar() {
	l.pos++ // consume opening quote
	if l.pos >= len(l.src) {
		l.errorf("unterminated character literal")
		return
	}
	var v int64
	c := l.src[l.pos]
	if c == '\\' {
		l.pos++
		if l.pos >= len(l.src) {
			l.errorf("unterminated escape")
			return
		}
		switch l.src[l.pos] {
		case 'n':
			v = '\n'
		case 't':
			v = '\t'
		case 'r':
			v = '\r'
		case '0':
			v = 0
		case '\\':
			v = '\\'
		case '\'':
			v = '\''
		default:
			l.errorf("unknown escape \\%c", l.src[l.pos])
			return
		}
		l.pos++
	} else {
		v = int64(c)
		l.pos++
	}
	if l.pos >= len(l.src) || l.src[l.pos] != '\'' {
		l.errorf("unterminated character literal")
		return
	}
	l.pos++
	l.tok, l.val = CHAR, v
	l.lit = fmt.Sprintf("'%c'", rune(v))
}
