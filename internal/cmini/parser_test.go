package cmini

import (
	"strings"
	"testing"
)

func mustParse(t *testing.T, src string) *File {
	t.Helper()
	f, err := ParseFile("test.cm", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return f
}

func mustCheck(t *testing.T, srcs ...string) *Unit {
	t.Helper()
	var files []*File
	for i, src := range srcs {
		f, err := ParseFile("test"+string(rune('0'+i))+".cm", src)
		if err != nil {
			t.Fatalf("parse: %v", err)
		}
		files = append(files, f)
	}
	u, err := Check(files)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	return u
}

func TestParseGlobalsAndFuncs(t *testing.T) {
	f := mustParse(t, `
int counter = 5;
int table[64];
byte buf[256];
int* head;

void main() {
	counter = counter + 1;
}

int addone(int x) {
	return x + 1;
}
`)
	if len(f.Globals) != 4 {
		t.Fatalf("globals = %d, want 4", len(f.Globals))
	}
	if f.Globals[1].ArrayLen != 64 || !f.Globals[1].IsArray() {
		t.Errorf("table should be array of 64")
	}
	if f.Globals[2].Type != TypeByte || f.Globals[2].StorageSize() != 256 {
		t.Errorf("buf wrong: %v size %d", f.Globals[2].Type, f.Globals[2].StorageSize())
	}
	if f.Globals[3].Type != TypeIntPtr {
		t.Errorf("head type = %v, want int*", f.Globals[3].Type)
	}
	if len(f.Funcs) != 2 {
		t.Fatalf("funcs = %d, want 2", len(f.Funcs))
	}
	if f.Funcs[1].Ret != TypeInt || len(f.Funcs[1].Params) != 1 {
		t.Errorf("addone signature wrong")
	}
}

func TestParsePrecedence(t *testing.T) {
	f := mustParse(t, `void main() { int x = 1 + 2 * 3 - 4 / 2; }`)
	d := f.Funcs[0].Body.List[0].(*DeclStmt).Decl
	// Shape: ((1 + (2*3)) - (4/2))
	top, ok := d.Init.(*BinaryExpr)
	if !ok || top.Op != Minus {
		t.Fatalf("top op wrong: %#v", d.Init)
	}
	left, ok := top.X.(*BinaryExpr)
	if !ok || left.Op != Plus {
		t.Fatalf("left op wrong")
	}
	if mul, ok := left.Y.(*BinaryExpr); !ok || mul.Op != Star {
		t.Fatalf("mul not nested under plus")
	}
	if div, ok := top.Y.(*BinaryExpr); !ok || div.Op != Slash {
		t.Fatalf("div not under minus")
	}
}

func TestParseControlFlow(t *testing.T) {
	f := mustParse(t, `
void main() {
	int i;
	for (i = 0; i < 10; i++) {
		if (i == 5) { break; } else { continue; }
	}
	while (i > 0) { i -= 1; }
	for (int j = 0; j < 4; j += 1) { print(j); }
	for (;;) { break; }
}
`)
	body := f.Funcs[0].Body.List
	if len(body) != 5 {
		t.Fatalf("statements = %d, want 5", len(body))
	}
	if _, ok := body[1].(*ForStmt); !ok {
		t.Error("want ForStmt")
	}
	if _, ok := body[2].(*WhileStmt); !ok {
		t.Error("want WhileStmt")
	}
	inf := body[4].(*ForStmt)
	if inf.Init != nil || inf.Cond != nil || inf.Post != nil {
		t.Error("for(;;) clauses should be nil")
	}
}

func TestParseUnaryAndIndex(t *testing.T) {
	f := mustParse(t, `
int a[4];
void main() {
	int x = -a[1] + ~a[2] * !a[3];
	int* p = &a[0];
	*p = 7;
	int y = *p;
}
`)
	if len(f.Funcs[0].Body.List) != 4 {
		t.Fatal("wrong statement count")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"void main() { int x = ; }",
		"void main() { if x { } }",
		"int;",
		"void v;",
		"void main() { return 1 }",
		"int f(void v) { return 0; }",
		"void main() { x[1 = 2; }",
		"int a[0];",
		"int a[3] = 5;",
		"void main() { for (int k; k < 3; k++) {} }",
	}
	for _, src := range cases {
		if _, err := ParseFile("t.cm", src); err == nil {
			t.Errorf("source %q: expected parse error", src)
		}
	}
}

func TestCheckTypes(t *testing.T) {
	u := mustCheck(t, `
int g = 3 * 7 + 1;
byte flags[8];

int twice(int v) { return v * 2; }

void main() {
	int x = twice(g);
	flags[0] = 1;
	byte* p = &flags[2];
	p[1] = 3;
	int sum = flags[0] + p[1];
	checksum(sum);
	print(x);
	putc('A');
	int c = cycles();
}
`)
	if u.Globals["g"].Init.(*IntLit).Val != 22 {
		t.Errorf("constant folding of global init failed: %v", u.Globals["g"].Init)
	}
}

func TestCheckErrors(t *testing.T) {
	cases := map[string]string{
		"void main() { y = 1; }":                          "undefined",
		"void main() { int x; int x; }":                   "duplicate",
		"int main() { return 0; }":                        "main must be",
		"void f() {} void main() { int x = f(); }":        "cannot initialize",
		"void main() { break; }":                          "break outside loop",
		"void main() { continue; }":                       "continue outside loop",
		"int a[3]; void main() { a = 0; }":                "cannot assign to array",
		"void main() { int x = *4; }":                     "cannot dereference",
		"int g = cycles(); void main() {}":                "not a constant",
		"void main() { print(1, 2); }":                    "exactly one",
		"int f(int a) { return a; } void main() { f(); }": "takes 1 arguments",
		"void main() { int* p; byte* q; p = q; }":         "cannot assign",
		"int print; void main() {}":                       "builtin",
		"void main() { return 3; }":                       "returns a value",
		"int f() { return; } void main() {}":              "must return",
		"void main() { int x; x[0] = 1; }":                "cannot index",
		"int x; int x; void main() {}":                    "duplicate global",
		"void main() { int* p; int x = p * 2; }":          "invalid pointer operand",
		"void main() { int* p; int* q; int r = p + q; }":  "cannot add two pointers",
	}
	for src, wantSub := range cases {
		f, err := ParseFile("t.cm", src)
		if err != nil {
			t.Errorf("source %q: unexpected parse error %v", src, err)
			continue
		}
		_, err = Check([]*File{f})
		if err == nil {
			t.Errorf("source %q: expected check error containing %q", src, wantSub)
			continue
		}
		if !strings.Contains(err.Error(), wantSub) {
			t.Errorf("source %q: error %q does not contain %q", src, err, wantSub)
		}
	}
}

func TestCheckCrossFile(t *testing.T) {
	u := mustCheck(t,
		`int shared[16]; void main() { helper(); checksum(shared[3]); }`,
		`void helper() { shared[3] = 99; }`,
	)
	if len(u.Funcs) != 2 {
		t.Fatalf("funcs = %d", len(u.Funcs))
	}
}

func TestCheckNoMain(t *testing.T) {
	f := mustParse(t, "int x;")
	if _, err := Check([]*File{f}); err == nil || !strings.Contains(err.Error(), "no main") {
		t.Errorf("expected no-main error, got %v", err)
	}
}

func TestPointerArithmeticTypes(t *testing.T) {
	mustCheck(t, `
int a[10];
void main() {
	int* p = &a[0];
	int* q = p + 3;
	int n = q - p;
	if (q > p) { n = n + 1; }
	checksum(n);
}
`)
}

func TestTypeHelpers(t *testing.T) {
	if TypeInt.Size() != 8 || TypeByte.Size() != 1 || TypeIntPtr.Size() != 8 {
		t.Error("sizes wrong")
	}
	if TypeIntPtr.Elem() != TypeInt || TypeInt.AddrOf() != TypeIntPtr {
		t.Error("Elem/AddrOf wrong")
	}
	if TypeBytePtr.String() != "byte*" || TypeVoid.String() != "void" {
		t.Error("String wrong")
	}
}

func TestCheckMoreErrors(t *testing.T) {
	cases := map[string]string{
		"void main() { int a[3]; if (a) {} }":                        "", // arrays decay: pointer condition is fine
		"void main() { byte b; int* p = &b; }":                       "cannot initialize",
		"void main() { int x; int* p = &x; int* q = &p; }":           "cannot initialize",
		"void main() { checksum(cycles(1)); }":                       "no arguments",
		"void f(int a, int a) {} void main() {}":                     "duplicate parameter",
		"int f() { return 1; } int f() { return 2; } void main() {}": "duplicate function",
		"int x; void x() {} void main() {}":                          "redeclared",
		"void main() { int* p; p *= 2; }":                            "integer operands",
		"void main() { int* p; int x; x += p; }":                     "cannot +=",
		"void main() { int* p; byte* q; if (p < q) {} }":             "cannot compare",
	}
	for src, wantSub := range cases {
		f, err := ParseFile("t.cm", src)
		if err != nil {
			t.Errorf("source %q: parse error %v", src, err)
			continue
		}
		_, err = Check([]*File{f})
		if wantSub == "" {
			if err != nil {
				t.Errorf("source %q: unexpected error %v", src, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), wantSub) {
			t.Errorf("source %q: error %v does not contain %q", src, err, wantSub)
		}
	}
}

func TestIncrementSemantics(t *testing.T) {
	u := mustCheck(t, `
int a[4];
void main() {
	int i = 0;
	i++;
	i--;
	int* p = &a[0];
	p++;
	a[i]++;
	checksum(i);
}
`)
	if u == nil {
		t.Fatal("check failed")
	}
}

func TestErrorPositions(t *testing.T) {
	_, err := ParseFile("pos.cm", "void main() {\n\nint x = ;\n}")
	if err == nil || !strings.Contains(err.Error(), "pos.cm:3") {
		t.Errorf("error lacks position: %v", err)
	}
	f, _ := ParseFile("pos.cm", "void main() {\n\n\n  y = 1;\n}")
	_, err = Check([]*File{f})
	if err == nil || !strings.Contains(err.Error(), "pos.cm:4") {
		t.Errorf("check error lacks position: %v", err)
	}
}

func TestSymbolString(t *testing.T) {
	u := mustCheck(t, `int g; void main() { checksum(g); }`)
	sym := u.Globals["g"].Sym
	if !strings.Contains(sym.String(), "g") {
		t.Error("Symbol.String missing name")
	}
}
