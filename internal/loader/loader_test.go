package loader

import (
	"testing"
	"testing/quick"

	"biaslab/internal/compiler"
	"biaslab/internal/linker"
)

func buildExe(t *testing.T) *linker.Executable {
	t.Helper()
	objs, _, err := compiler.Compile([]compiler.Source{
		{Name: "m.cm", Text: `int g = 5; void main() { checksum(g); }`},
	}, compiler.Config{Level: compiler.O2})
	if err != nil {
		t.Fatal(err)
	}
	exe, err := linker.Link(objs, linker.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return exe
}

func TestEnvBytes(t *testing.T) {
	if got := EnvBytes(nil); got != 8 {
		t.Errorf("empty env = %d bytes, want 8", got)
	}
	// "A=1" costs 4 bytes of string + 8 of pointer; plus the null slot.
	if got := EnvBytes([]string{"A=1"}); got != 8+4+8 {
		t.Errorf("EnvBytes(A=1) = %d, want 20", got)
	}
}

func TestSyntheticEnvExact(t *testing.T) {
	for _, total := range []uint64{8, 17, 18, 32, 64, 100, 129, 256, 1000, 4096} {
		env := SyntheticEnv(total)
		if got := EnvBytes(env); got != total {
			t.Errorf("SyntheticEnv(%d) produced %d bytes", total, got)
		}
	}
	// Unrepresentable totals fall back to empty.
	for _, total := range []uint64{0, 7, 9, 16} {
		if env := SyntheticEnv(total); len(env) != 0 {
			t.Errorf("SyntheticEnv(%d) should be empty, got %v", total, env)
		}
	}
}

func TestSyntheticEnvProperty(t *testing.T) {
	f := func(n uint16) bool {
		total := uint64(n)%8192 + 17
		env := SyntheticEnv(total)
		return EnvBytes(env) == total
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLoadPlacesSegments(t *testing.T) {
	exe := buildExe(t)
	img, err := Load(exe, Options{Env: []string{"PATH=/bin"}, Args: []string{"prog"}})
	if err != nil {
		t.Fatal(err)
	}
	// Text is where the executable says.
	for i, b := range exe.Text {
		if img.Mem[exe.TextBase+uint64(i)] != b {
			t.Fatalf("text byte %d mismatch", i)
		}
	}
	for i, b := range exe.Data {
		if img.Mem[exe.DataBase+uint64(i)] != b {
			t.Fatalf("data byte %d mismatch", i)
		}
	}
	if img.Entry != exe.Entry {
		t.Error("entry mismatch")
	}
	if img.SP%8 != 0 {
		t.Errorf("sp %#x not 8-aligned", img.SP)
	}
	if img.SP >= DefaultStackTop {
		t.Error("sp not below stack top")
	}
}

// TestEnvSizeShiftsSP is the package's load-bearing test: growing the
// environment must lower the initial stack pointer by a corresponding
// amount, because that displacement is the entire env-size bias mechanism.
func TestEnvSizeShiftsSP(t *testing.T) {
	exe := buildExe(t)
	spFor := func(envTotal uint64) uint64 {
		img, err := Load(exe, Options{Env: SyntheticEnv(envTotal)})
		if err != nil {
			t.Fatal(err)
		}
		return img.SP
	}
	sp0 := spFor(8)
	sp1 := spFor(8 + 64)
	sp2 := spFor(8 + 128)
	if sp1 >= sp0 || sp2 >= sp1 {
		t.Errorf("sp did not decrease with env size: %#x %#x %#x", sp0, sp1, sp2)
	}
	if diff := sp0 - sp1; diff < 56 || diff > 72 {
		t.Errorf("64 extra env bytes moved sp by %d; expected ≈64", diff)
	}
}

func TestStackShiftIntervention(t *testing.T) {
	exe := buildExe(t)
	base, err := Load(exe, Options{})
	if err != nil {
		t.Fatal(err)
	}
	shifted, err := Load(exe, Options{StackShift: 48})
	if err != nil {
		t.Fatal(err)
	}
	if base.SP-shifted.SP != 48 {
		t.Errorf("StackShift moved sp by %d, want 48", base.SP-shifted.SP)
	}
}

func TestEnvStringsReadable(t *testing.T) {
	exe := buildExe(t)
	img, err := Load(exe, Options{Env: []string{"HOME=/root", "X=1"}})
	if err != nil {
		t.Fatal(err)
	}
	// The last-placed env string starts at EnvBase.
	got := ""
	for a := img.EnvBase; img.Mem[a] != 0; a++ {
		got += string(rune(img.Mem[a]))
	}
	if got != "X=1" {
		t.Errorf("env string at EnvBase = %q, want X=1", got)
	}
}

// TestInitialSPMatchesLoad pins the static SP predictor to the real loader:
// for every combination of environment size, argument vector and stack
// shift, InitialSP must equal the SP of an actual Load. The bias oracle's
// address arithmetic is built entirely on this equality.
func TestInitialSPMatchesLoad(t *testing.T) {
	exe := buildExe(t)
	envs := [][]string{
		nil,
		{"A=1"},
		{"PATH=/usr/bin", "HOME=/root"},
		SyntheticEnv(512),
		SyntheticEnv(4096),
	}
	argvs := [][]string{nil, {"prog"}, {"a-much-longer-name", "arg1", "x"}}
	shifts := []uint64{0, 1, 7, 8, 48, 333}
	for _, env := range envs {
		for _, args := range argvs {
			for _, shift := range shifts {
				opts := Options{Env: env, Args: args, StackShift: shift}
				img, err := Load(exe, opts)
				if err != nil {
					t.Fatal(err)
				}
				if got := InitialSP(opts); got != img.SP {
					t.Fatalf("InitialSP(env %d bytes, %d args, shift %d) = %#x, Load produced %#x",
						EnvBytes(env), len(args), shift, got, img.SP)
				}
				img.Release()
			}
		}
	}
	// Non-default geometry follows the same arithmetic.
	opts := Options{MemSize: 8 << 20, StackTop: 8<<20 - 128, Env: SyntheticEnv(100), Args: []string{"p"}}
	img, err := Load(exe, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got := InitialSP(opts); got != img.SP {
		t.Fatalf("InitialSP with custom geometry = %#x, Load produced %#x", got, img.SP)
	}
}

func TestLoadErrors(t *testing.T) {
	exe := buildExe(t)
	if _, err := Load(exe, Options{MemSize: 1 << 12}); err == nil {
		t.Error("tiny memory should fail")
	}
	if _, err := Load(exe, Options{StackTop: 1 << 63, MemSize: DefaultMemSize}); err == nil {
		t.Error("stack top beyond memory should fail")
	}
}

// TestReleaseRecyclesZeroedBuffer locks in the pooled-buffer contract: a
// Load that reuses a released buffer must observe exactly the state a fresh
// allocation would — any residue from the prior run would break the repo's
// bit-identical determinism.
func TestReleaseRecyclesZeroedBuffer(t *testing.T) {
	exe := buildExe(t)
	opts := Options{Env: []string{"A=1"}, Args: []string{"x"}}
	img, err := Load(exe, opts)
	if err != nil {
		t.Fatal(err)
	}
	pristine := append([]byte(nil), img.Mem...)
	// Scribble all over the address space, as a run's stores would.
	for i := 0; i < len(img.Mem); i += 4097 {
		img.Mem[i] ^= 0xa5
	}
	img.Release()
	if img.Mem != nil {
		t.Fatal("Release must detach the buffer")
	}
	again, err := Load(exe, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(again.Mem) != len(pristine) {
		t.Fatalf("reloaded image size %d != %d", len(again.Mem), len(pristine))
	}
	for i := range pristine {
		if again.Mem[i] != pristine[i] {
			t.Fatalf("byte %#x differs after buffer recycling: %#x vs %#x", i, again.Mem[i], pristine[i])
		}
	}
}
