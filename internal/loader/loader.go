// Package loader builds a process image from a linked executable: it places
// the text, data and bss segments, lays out the initial stack, and — the
// crux of the paper's first experiment — copies the UNIX environment block
// onto the top of the stack before computing the initial stack pointer.
//
// Because the environment strings sit between the fixed stack top and the
// first frame, **every byte added to the environment slides every stack
// address in the entire execution**. That is the mechanism by which an
// innocuous `export FOO=...` changes cache-set mappings, 4 KiB aliasing
// distances and page boundaries, and therefore measured cycles.
package loader

import (
	"errors"
	"fmt"
	"sync"

	"biaslab/internal/isa"
	"biaslab/internal/linker"
)

// Default geometry: a 16 MiB address space with the stack at the top.
const (
	DefaultMemSize  = 16 << 20
	DefaultStackTop = DefaultMemSize - 64
)

// Sentinel errors for the loader's failure classes; every failure returned
// by Load wraps one of these.
var (
	// ErrBadGeometry marks impossible geometry options (stack top outside
	// memory).
	ErrBadGeometry = errors.New("loader: bad geometry")
	// ErrImageTruncated marks an executable whose declared segment layout
	// does not fit its payload or the address space — the image cannot have
	// been produced by a correct link.
	ErrImageTruncated = errors.New("loader: truncated or inconsistent executable")
	// ErrStackOverflow marks an environment/argument block (plus stack
	// shift) too large for the room between the program segments and the
	// stack top.
	ErrStackOverflow = errors.New("loader: initial stack exceeds available memory")
)

// Options control process creation.
type Options struct {
	MemSize  uint64
	StackTop uint64
	// Env is the environment, as "KEY=VALUE" strings.
	Env []string
	// Args is the argument vector (argv[0] is conventionally the program
	// name); arguments are copied above the stack like the environment.
	Args []string
	// StackShift, when non-zero, additionally lowers the initial stack
	// pointer by the given number of bytes. It is the *intervention knob*
	// for causal analysis: it reproduces the environment-size effect
	// directly, without touching the environment.
	StackShift uint64
}

// EnvBytes returns the number of bytes the environment block occupies: each
// string plus its NUL terminator, plus one pointer per entry and a
// terminating null pointer (the envp array), mirroring execve.
func EnvBytes(env []string) uint64 {
	n := uint64(0)
	for _, s := range env {
		n += uint64(len(s)) + 1
	}
	n += uint64(len(env)+1) * isa.WordSize
	return n
}

// envCacheCap bounds the synthetic-environment memo: an env sweep touches
// one entry per grid point, so even the paper's densest grid (512 sizes)
// fits. Eviction is arbitrary — the builder is deterministic, so evicting
// only costs a rebuild, never changes a result.
const envCacheCap = 1024

var (
	envMu    sync.Mutex
	envCache = map[uint64][]string{}
)

// SyntheticEnv builds an environment whose EnvBytes is exactly total when
// total is representable (total == 8, the empty environment, or total ≥ 17,
// since the smallest variable costs 9 bytes). Unrepresentable totals
// (0–7 and 9–16) fall back to the empty environment; experiments should
// sweep over representable sizes and report EnvBytes of what they got.
//
// The result is memoized per size and shared between callers — an env sweep
// measuring two optimization levels at each grid point builds each
// environment once, not once per load. Callers must treat it as read-only.
func SyntheticEnv(total uint64) []string {
	envMu.Lock()
	if env, ok := envCache[total]; ok {
		envMu.Unlock()
		return env
	}
	envMu.Unlock()
	env := buildSyntheticEnv(total)
	envMu.Lock()
	if len(envCache) >= envCacheCap {
		//determlint:allow cache eviction choice never reaches a measurement
		for k := range envCache {
			delete(envCache, k)
			break
		}
	}
	envCache[total] = env
	envMu.Unlock()
	return env
}

// buildSyntheticEnv is the uncached builder behind SyntheticEnv.
func buildSyntheticEnv(total uint64) []string {
	const (
		slot   = isa.WordSize     // one envp pointer
		minVar = 1 + isa.WordSize // empty string + NUL + pointer
	)
	if total < slot+minVar {
		return nil
	}
	var env []string
	remaining := total - slot // bytes still owed beyond the null envp slot
	i := 0
	for remaining >= minVar {
		payload := remaining - minVar
		if payload > 120 {
			payload = 120
		}
		env = append(env, pad(fmt.Sprintf("BIAS%02d=", i), int(payload)))
		remaining -= payload + minVar
		i++
	}
	if remaining > 0 {
		// Stretch the last variable by the remainder (one byte of string
		// costs exactly one byte of environment).
		env[len(env)-1] += pad("", int(remaining))
	}
	if got := EnvBytes(env); got != total {
		panic(fmt.Sprintf("loader: synthetic env builder produced %d bytes, want %d", got, total))
	}
	return env
}

func pad(prefix string, n int) string {
	b := make([]byte, n)
	copy(b, prefix)
	for i := len(prefix); i < n; i++ {
		b[i] = 'x'
	}
	return string(b)
}

// Image is a ready-to-run process: initial memory, registers and entry pc.
type Image struct {
	Mem      []byte
	Entry    uint64
	SP       uint64
	TextBase uint64
	TextSize uint64
	// EnvBase is the lowest address of the environment block (diagnostics).
	EnvBase uint64
	// Exe retains the executable for symbolization.
	Exe *linker.Executable
}

// memPool recycles default-geometry image buffers across runs. Every buffer
// in the pool is fully zero — New allocates zeroed memory and Release clears
// before returning — so a pooled Load starts from exactly the state a fresh
// allocation would, preserving bit-identical execution.
var memPool = sync.Pool{
	New: func() any {
		b := make([]byte, DefaultMemSize)
		return &b
	},
}

// Release returns the image's memory buffer to the loader's pool and
// detaches it from the image. Call it only when the run is complete and
// nothing retains img.Mem; non-default buffer sizes are simply dropped.
func (img *Image) Release() {
	mem := img.Mem
	img.Mem = nil
	if uint64(len(mem)) != DefaultMemSize {
		return
	}
	clear(mem)
	memPool.Put(&mem)
}

// InitialSP computes the initial stack pointer Load would hand the machine
// under opts, without building an image. It duplicates Load's placement
// arithmetic (strings, pointer arrays, stack shift, 8-byte rounding) rather
// than sharing code with it, so the loader hot path stays untouched; the
// equality test in loader_test.go keeps the two in lock-step. This is the
// entry point the bias oracle uses to turn an environment size into a stack
// displacement.
func InitialSP(opts Options) uint64 {
	memSize := opts.MemSize
	if memSize == 0 {
		memSize = DefaultMemSize
	}
	stackTop := opts.StackTop
	if stackTop == 0 {
		stackTop = memSize - 64
	}
	sp := stackTop
	for _, a := range opts.Args {
		sp -= uint64(len(a)) + 1
	}
	sp -= EnvBytes(opts.Env)
	sp -= uint64(len(opts.Args)+1) * isa.WordSize
	sp -= opts.StackShift
	sp &^= 7
	return sp
}

// Load builds a process image for exe under opts.
func Load(exe *linker.Executable, opts Options) (*Image, error) {
	memSize := opts.MemSize
	if memSize == 0 {
		memSize = DefaultMemSize
	}
	stackTop := opts.StackTop
	if stackTop == 0 {
		stackTop = memSize - 64
	}
	if stackTop >= memSize {
		return nil, fmt.Errorf("%w: stack top %#x beyond memory size %#x", ErrBadGeometry, stackTop, memSize)
	}
	if err := validateImage(exe, memSize); err != nil {
		return nil, err
	}
	if exe.MemTop() >= stackTop {
		return nil, fmt.Errorf("%w: program segments (top %#x) collide with stack", ErrStackOverflow, exe.MemTop())
	}

	// The whole initial stack must fit between the program segments and the
	// stack top. Checking up front (rather than letting sp wrap below zero
	// mid-placement) turns an oversized environment into a typed error
	// instead of a slice-bounds panic.
	need := EnvBytes(opts.Env)
	for _, a := range opts.Args {
		need += uint64(len(a)) + 1
	}
	need += uint64(len(opts.Args)+1) * isa.WordSize
	need += opts.StackShift + 8 // alignment slack
	if avail := stackTop - exe.MemTop(); need >= avail {
		return nil, fmt.Errorf("%w: %d bytes of environment/arguments/shift, %d available below stack top %#x",
			ErrStackOverflow, need, avail, stackTop)
	}

	var mem []byte
	if memSize == DefaultMemSize {
		mem = *memPool.Get().(*[]byte)
	} else {
		mem = make([]byte, memSize)
	}
	copy(mem[exe.TextBase:], exe.Text)
	copy(mem[exe.DataBase:], exe.Data)
	// BSS is already zero.

	// Stack layout, mirroring execve: strings for argv and envp first
	// (top-down), then the pointer arrays, then the initial sp rounded
	// down to 8 bytes. Real ABIs round to 16; using 8 preserves the
	// byte-level sensitivity the paper measured while keeping every
	// 8-byte quantity naturally aligned.
	sp := stackTop

	strPtrs := make([]uint64, 0, len(opts.Args)+len(opts.Env))
	place := func(s string) uint64 {
		sp -= uint64(len(s)) + 1
		copy(mem[sp:], s)
		mem[sp+uint64(len(s))] = 0
		return sp
	}
	for _, a := range opts.Args {
		strPtrs = append(strPtrs, place(a))
	}
	envBase := sp
	for _, e := range opts.Env {
		strPtrs = append(strPtrs, place(e))
		envBase = sp
	}
	// Pointer arrays: envp (null-terminated) below the strings, then argv.
	writePtr := func(p uint64) {
		sp -= isa.WordSize
		putUint64(mem[sp:], p)
	}
	writePtr(0) // envp terminator
	for i := len(opts.Env) - 1; i >= 0; i-- {
		writePtr(strPtrs[len(opts.Args)+i])
	}
	writePtr(0) // argv terminator
	for i := len(opts.Args) - 1; i >= 0; i-- {
		writePtr(strPtrs[i])
	}
	sp -= opts.StackShift
	sp &^= 7
	if sp <= exe.MemTop() {
		// Unreachable given the up-front space check; keep the guard as an
		// internal invariant.
		return nil, fmt.Errorf("%w: stack underflow after environment placement", ErrStackOverflow)
	}

	return &Image{
		Mem:      mem,
		Entry:    exe.Entry,
		SP:       sp,
		TextBase: exe.TextBase,
		TextSize: uint64(len(exe.Text)),
		EnvBase:  envBase,
		Exe:      exe,
	}, nil
}

// validateImage rejects executables whose declared layout is inconsistent
// (overlapping or out-of-order segments, addresses past the address
// space) before any of it is copied into memory.
func validateImage(exe *linker.Executable, memSize uint64) error {
	textEnd := exe.TextBase + uint64(len(exe.Text))
	dataEnd := exe.DataBase + uint64(len(exe.Data))
	bssEnd := exe.BSSBase + exe.BSSSize
	switch {
	case textEnd < exe.TextBase || dataEnd < exe.DataBase || bssEnd < exe.BSSBase:
		return fmt.Errorf("%w: segment address overflow", ErrImageTruncated)
	case textEnd > exe.DataBase:
		return fmt.Errorf("%w: text [%#x,%#x) overlaps data base %#x", ErrImageTruncated, exe.TextBase, textEnd, exe.DataBase)
	case dataEnd > exe.BSSBase:
		return fmt.Errorf("%w: data [%#x,%#x) overlaps bss base %#x", ErrImageTruncated, exe.DataBase, dataEnd, exe.BSSBase)
	case bssEnd > memSize:
		return fmt.Errorf("%w: segments end %#x beyond memory size %#x", ErrImageTruncated, bssEnd, memSize)
	case len(exe.Text) == 0 || exe.Entry < exe.TextBase || exe.Entry >= textEnd:
		return fmt.Errorf("%w: entry %#x outside text [%#x,%#x)", ErrImageTruncated, exe.Entry, exe.TextBase, textEnd)
	}
	return nil
}

func putUint64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}
