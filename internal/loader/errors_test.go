package loader

import (
	"errors"
	"testing"

	"biaslab/internal/linker"
)

// TestOversizedEnvTypedError: an environment bigger than the room below
// the stack top must come back as ErrStackOverflow — this used to wrap sp
// below zero and panic with a slice-bounds failure mid-placement.
func TestOversizedEnvTypedError(t *testing.T) {
	exe := buildExe(t)
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("oversized environment panicked: %v", r)
		}
	}()
	_, err := Load(exe, Options{Env: SyntheticEnv(32 << 20)})
	if !errors.Is(err, ErrStackOverflow) {
		t.Errorf("oversized env: err = %v, want ErrStackOverflow", err)
	}
	// Arguments count against the same budget.
	huge := make([]string, 1)
	huge[0] = string(make([]byte, DefaultMemSize))
	if _, err := Load(exe, Options{Args: huge}); !errors.Is(err, ErrStackOverflow) {
		t.Errorf("oversized argv: err = %v, want ErrStackOverflow", err)
	}
}

// TestStackShiftOverflowTyped: the causal-analysis shift knob is bounded by
// the same typed check.
func TestStackShiftOverflowTyped(t *testing.T) {
	exe := buildExe(t)
	for _, shift := range []uint64{DefaultMemSize, 1 << 40} {
		if _, err := Load(exe, Options{StackShift: shift}); !errors.Is(err, ErrStackOverflow) {
			t.Errorf("shift %#x: err = %v, want ErrStackOverflow", shift, err)
		}
	}
}

func TestBadGeometryTyped(t *testing.T) {
	exe := buildExe(t)
	if _, err := Load(exe, Options{StackTop: 1 << 63, MemSize: DefaultMemSize}); !errors.Is(err, ErrBadGeometry) {
		t.Errorf("stack top beyond memory: err = %v, want ErrBadGeometry", err)
	}
}

// TestTruncatedImageTyped corrupts a well-formed executable in the ways a
// broken link (or a fuzzer) could and checks each is rejected with
// ErrImageTruncated before any bytes are copied.
func TestTruncatedImageTyped(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(e *linker.Executable)
	}{
		{"entry outside text", func(e *linker.Executable) { e.Entry = 0 }},
		{"text overlaps data", func(e *linker.Executable) { e.DataBase = e.TextBase }},
		{"data overlaps bss", func(e *linker.Executable) { e.BSSBase = e.DataBase }},
		{"segments beyond memory", func(e *linker.Executable) { e.BSSSize = 1 << 40 }},
		{"address overflow", func(e *linker.Executable) { e.DataBase = ^uint64(0) - 4 }},
		{"empty text", func(e *linker.Executable) { e.Text = nil }},
	}
	for _, tc := range cases {
		exe := *buildExe(t) // shallow copy; mutations stay local to the case
		tc.mutate(&exe)
		_, err := Load(&exe, Options{})
		if !errors.Is(err, ErrImageTruncated) {
			t.Errorf("%s: err = %v, want ErrImageTruncated", tc.name, err)
		}
	}
}
