package tenancy_test

import (
	"context"
	"math"
	"reflect"
	"testing"

	"biaslab/internal/bench"
	"biaslab/internal/core"
	"biaslab/internal/linker"
	"biaslab/internal/loader"
	"biaslab/internal/machine"
	"biaslab/internal/tenancy"
)

// One shared Runner: every image below is built through its compile/link
// caches, so the whole file costs a handful of compiles.
var runner = core.NewRunner(bench.SizeTest)

func corunCfg(t testing.TB) machine.Config {
	cfg, ok := machine.ConfigByName("core2")
	if !ok {
		t.Fatal("no core2 machine config")
	}
	return cfg
}

// loadSubject builds and loads a benchmark in the subject's half of the
// address-space plan (the loader defaults).
func loadSubject(t testing.TB, name string) *loader.Image {
	t.Helper()
	b, ok := bench.ByName(name)
	if !ok {
		t.Fatalf("no benchmark %q", name)
	}
	exe, err := runner.Executable(b, core.DefaultSetup("core2"))
	if err != nil {
		t.Fatal(err)
	}
	img, err := loader.Load(exe, loader.Options{
		Env:  loader.SyntheticEnv(core.DefaultEnvBytes),
		Args: []string{name},
	})
	if err != nil {
		t.Fatal(err)
	}
	return img
}

// loadCoRunner builds and loads a benchmark in the co-runner's half.
func loadCoRunner(t testing.TB, name string) *loader.Image {
	t.Helper()
	b, ok := bench.ByName(name)
	if !ok {
		t.Fatalf("no benchmark %q", name)
	}
	setup := core.DefaultSetup("core2")
	setup.TextBase = linker.DefaultTextBase + tenancy.CoRunnerOffset
	exe, err := runner.Executable(b, setup)
	if err != nil {
		t.Fatal(err)
	}
	img, err := loader.Load(exe, tenancy.CoRunnerLoadOptions(
		loader.SyntheticEnv(core.DefaultEnvBytes), []string{name}))
	if err != nil {
		t.Fatal(err)
	}
	return img
}

// solo runs a freshly loaded image alone on a fresh machine.
func solo(t testing.TB, img *loader.Image) *machine.Result {
	t.Helper()
	res, err := machine.New(corunCfg(t)).Run(img, 0)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestCoRunDeterministic: the same co-run twice is byte-identical, per
// tenant — counters, outputs and checksums — and interference never
// changes either tenant's output.
func TestCoRunDeterministic(t *testing.T) {
	cfg := corunCfg(t)
	run := func() (*machine.Result, *machine.Result) {
		a, b, err := tenancy.CoRun(context.Background(),
			cfg, loadSubject(t, "hmmer"), loadCoRunner(t, "milc"), 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		return a, b
	}
	a1, b1 := run()
	a2, b2 := run()
	if !reflect.DeepEqual(a1, a2) {
		t.Errorf("subject results differ across identical co-runs:\n%+v\nvs\n%+v", a1, a2)
	}
	if !reflect.DeepEqual(b1, b2) {
		t.Errorf("co-runner results differ across identical co-runs:\n%+v\nvs\n%+v", b1, b2)
	}

	// The metamorphic invariant extends to tenancy: co-running changes
	// cycles, never output.
	if want := solo(t, loadSubject(t, "hmmer")).Checksum; a1.Checksum != want {
		t.Errorf("subject checksum %d under co-run, %d solo — interference changed OUTPUT", a1.Checksum, want)
	}
	if want := solo(t, loadCoRunner(t, "milc")).Checksum; b1.Checksum != want {
		t.Errorf("co-runner checksum %d under co-run, %d solo — interference changed OUTPUT", b1.Checksum, want)
	}
}

// TestCoRunSoloDegenerate: an effectively infinite quantum means the
// subject runs start to finish before the co-runner's first instruction,
// on a freshly reset hierarchy — so its result must be bit-identical to a
// solo run, in both the production engine and the reference interpreter.
func TestCoRunSoloDegenerate(t *testing.T) {
	cfg := corunCfg(t)
	a, _, err := tenancy.CoRun(context.Background(),
		cfg, loadSubject(t, "hmmer"), loadCoRunner(t, "libquantum"), math.MaxUint64, 0)
	if err != nil {
		t.Fatal(err)
	}

	want, err := machine.New(cfg).Run(loadSubject(t, "hmmer"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, want) {
		t.Errorf("quantum=∞ co-run differs from solo Run:\n%+v\nvs\n%+v", a, want)
	}

	ref, err := machine.New(cfg).RunReference(loadSubject(t, "hmmer"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, ref) {
		t.Errorf("quantum=∞ co-run differs from solo RunReference:\n%+v\nvs\n%+v", a, ref)
	}
}

// TestCoRunSharedCacheEviction: the channel is real — a co-runner
// walking its own working set through the shared hierarchy must strictly
// raise the subject's data-cache misses and cycles over a solo run.
func TestCoRunSharedCacheEviction(t *testing.T) {
	alone := solo(t, loadSubject(t, "hmmer"))
	shared, _, err := tenancy.CoRun(context.Background(),
		corunCfg(t), loadSubject(t, "hmmer"), loadCoRunner(t, "milc"), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	soloMisses := alone.Counters.L1DMisses + alone.Counters.L2Misses
	coMisses := shared.Counters.L1DMisses + shared.Counters.L2Misses
	if coMisses <= soloMisses {
		t.Errorf("co-run data misses %d not above solo %d — no shared-cache eviction observed", coMisses, soloMisses)
	}
	if shared.Counters.Cycles <= alone.Counters.Cycles {
		t.Errorf("co-run cycles %d not above solo %d", shared.Counters.Cycles, alone.Counters.Cycles)
	}
	if shared.Counters.Instructions != alone.Counters.Instructions {
		t.Errorf("co-run retired %d instructions, solo %d — interference must never change the instruction stream",
			shared.Counters.Instructions, alone.Counters.Instructions)
	}
}

// TestCoRunCancellation: a pre-cancelled context aborts the co-run even
// mid-quantum with an enormous quantum.
func TestCoRunCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := tenancy.CoRun(ctx,
		corunCfg(t), loadSubject(t, "hmmer"), loadCoRunner(t, "milc"), math.MaxUint64, 0)
	if err != context.Canceled {
		t.Errorf("cancelled co-run returned %v, want context.Canceled", err)
	}
}
