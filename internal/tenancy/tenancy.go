// Package tenancy implements the multi-tenant interference channel: a
// co-run execution engine that steps two programs through one shared
// machine timing model under a deterministic interleaving policy.
//
// The paper's four established channels (environment size, link order,
// text padding, image base) all perturb where a single program's state
// lands in a fixed hierarchy. This channel perturbs what *else* lives in
// that hierarchy: a co-runner's footprint displaces the subject's hot
// cache sets, TLB entries and BTB slots, exactly the "innocuous detail" a
// serving machine under heavy traffic adds to every measurement taken on
// it. The engine makes that displacement a first-class, sweepable setup
// factor with the same guarantees as every other channel — deterministic,
// byte-identical on replay, and output-preserving (interference changes
// timing, never results; the oracle checks both tenants' checksums).
//
// # Interleaving policy
//
// Tenants alternate in fixed order (subject first) on a quantum of
// retired instructions: the subject runs until its retired-instruction
// count reaches the next multiple of the quantum, then the co-runner
// does, and so on. The schedule depends only on (images, quantum) —
// retired instructions are deterministic, so the whole interleaving is.
// A tenant that halts drops out and the survivor runs uninterrupted;
// both tenants run to completion, so both checksums are complete and
// oracle-checkable. Per-tenant cycles stay deterministic because each
// tenant owns its counters and the shared structures are only ever
// mutated between the scheduler's exactly-placed turn boundaries
// (machine.Machine.StepTo stops exactly at its limit).
package tenancy

import (
	"context"

	"biaslab/internal/loader"
	"biaslab/internal/machine"
)

// DefaultQuantum is the interleave granularity when a setup leaves it
// zero: fine enough that the tenants genuinely contend (thousands of
// switches over even the test workloads), coarse enough that the memo
// flush at each switch stays invisible in throughput.
const DefaultQuantum = 4096

// Address-space plan. The subject occupies the loader defaults —
// [0, 16 MiB) with its stack at the top — and the co-runner is linked
// CoRunnerOffset higher and loaded into a CoRunnerMemSize image whose
// stack sits at *its* top, so the co-runner's entire footprint (text,
// data, bss, stack, environment) lives in [16 MiB, 32 MiB). Disjoint
// addresses into shared physically-indexed caches give set/way contention
// without data aliasing: the model of two hardware threads behind
// physically-tagged caches, and the reason the hot execution engines need
// zero changes for multi-tenancy.
const (
	// CoRunnerOffset is added to the co-runner's link-time text base.
	CoRunnerOffset = 16 << 20
	// CoRunnerMemSize is the co-runner's image size.
	CoRunnerMemSize = 32 << 20
)

// CoRunnerLoadOptions returns the loader options that place a co-runner
// in its half of the address-space plan.
func CoRunnerLoadOptions(env, args []string) loader.Options {
	return loader.Options{
		MemSize:  CoRunnerMemSize,
		StackTop: CoRunnerMemSize - 64,
		Env:      env,
		Args:     args,
	}
}

// cancelPollInstrs mirrors machine.RunCtx's cancellation granularity:
// with a cancellable context the engine polls ctx at least every this
// many retired instructions, even inside one giant quantum.
const cancelPollInstrs = 1 << 16

// CoRun executes subject and corunner to completion through one shared
// cache/TLB/predictor hierarchy built from cfg, interleaving on quantum
// retired instructions (0 = DefaultQuantum), and returns both results in
// order. Each tenant is separately bounded by maxInstr (0 = default).
//
// The two images must occupy disjoint address ranges (the caller links
// the co-runner at a displaced text base); the shared caches then contend
// on sets and ways without aliasing each other's data — the model of two
// hardware threads with physically-tagged caches.
func CoRun(ctx context.Context, cfg machine.Config, subject, corunner *loader.Image, quantum, maxInstr uint64) (*machine.Result, *machine.Result, error) {
	if quantum == 0 {
		quantum = DefaultQuantum
	}
	if maxInstr == 0 {
		maxInstr = machine.DefaultMaxInstructions
	}
	prime := machine.New(cfg)
	ms := [2]*machine.Machine{prime, prime.NewSharedModel()}
	imgs := [2]*loader.Image{subject, corunner}
	for k, m := range ms {
		m.BeginRun(imgs[k])
	}

	var results [2]*machine.Result
	cancellable := ctx.Done() != nil
	// last tracks which tenant ran most recently: a tenant whose memos
	// survived since its own last turn (because the other tenant never ran
	// in between) keeps them, which is what makes a solo-degenerate co-run
	// (quantum >= the subject's whole execution) bit-identical to RunCtx.
	var last *machine.Machine
	remaining := 2
	for remaining > 0 {
		for k, m := range ms {
			if results[k] != nil {
				continue
			}
			turnEnd := maxInstr
			if q := m.Retired() + quantum; q >= m.Retired() && q < turnEnd {
				turnEnd = q
			}
			if last != nil && last != m {
				m.FlushMemos()
			}
			last = m
			for {
				limit := turnEnd
				if cancellable {
					if err := ctx.Err(); err != nil {
						return nil, nil, err
					}
					if l := m.Retired() + cancelPollInstrs; l < limit {
						limit = l
					}
				}
				halted, err := m.StepTo(limit)
				if err != nil {
					return nil, nil, err
				}
				if halted {
					results[k] = m.TakeResult()
					remaining--
					break
				}
				if m.Retired() >= maxInstr {
					return nil, nil, m.BudgetErr(maxInstr)
				}
				if m.Retired() >= turnEnd {
					break
				}
			}
		}
	}
	return results[0], results[1], nil
}
