// Package retry implements capped exponential backoff with deterministic
// jitter. It is the one backoff policy shared by everything in the lab
// that retries: the HTTP client's transient-failure retries, the cluster
// worker's heartbeat transport, and the coordinator's shard-requeue
// schedule.
//
// Jitter is deterministic on purpose: the delay for (key, attempt) is a
// pure function of the policy's Seed, so a retry schedule that provoked a
// failure can be replayed exactly — the same discipline
// internal/faultinject applies to fault arrival.
package retry

import (
	"context"
	"hash/fnv"
	"strconv"
	"time"
)

// Policy describes a capped exponential backoff with deterministic jitter.
// The zero value is usable and selects the defaults documented per field.
type Policy struct {
	// Attempts bounds the total tries, including the first (default 5).
	Attempts int
	// Base is the backoff before the first retry (default 50ms); each
	// further retry doubles it.
	Base time.Duration
	// Cap bounds the backoff growth (default 2s).
	Cap time.Duration
	// Seed feeds the jitter hash (default 1).
	Seed uint64
}

func (p Policy) withDefaults() Policy {
	if p.Attempts <= 0 {
		p.Attempts = 5
	}
	if p.Base <= 0 {
		p.Base = 50 * time.Millisecond
	}
	if p.Cap <= 0 {
		p.Cap = 2 * time.Second
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	return p
}

// Delay returns the backoff before retry attempt (1-based: attempt 1 is
// the delay after the first failure) of the operation named key:
// min(Cap, Base·2^(attempt−1)), jittered into [½,1]× by a hash of
// (Seed, key, attempt). The result depends only on the policy and the
// arguments, never on wall clock or global RNG.
func (p Policy) Delay(key string, attempt int) time.Duration {
	p = p.withDefaults()
	if attempt < 1 {
		attempt = 1
	}
	d := p.Base
	for i := 1; i < attempt && d < p.Cap; i++ {
		d *= 2
	}
	if d > p.Cap {
		d = p.Cap
	}
	// Jitter into [½,1]× so synchronized retriers spread out without ever
	// shortening the schedule below half the nominal backoff.
	h := fnv.New64a()
	h.Write([]byte(strconv.FormatUint(p.Seed, 16)))
	h.Write([]byte{0})
	h.Write([]byte(key))
	h.Write([]byte{0})
	h.Write([]byte(strconv.Itoa(attempt)))
	frac := float64(h.Sum64()%1_000_000) / 1_000_000
	return time.Duration(float64(d) * (0.5 + 0.5*frac))
}

// Do runs fn up to Attempts times. After a failure that retryable reports
// as transient, Do sleeps Delay(key, attempt) — honoring ctx cancellation —
// and tries again; a non-transient failure or an exhausted budget returns
// the last error. retryable may be nil, which retries every error.
func (p Policy) Do(ctx context.Context, key string, retryable func(error) bool, fn func() error) error {
	p = p.withDefaults()
	var err error
	for attempt := 1; ; attempt++ {
		if err = ctx.Err(); err != nil {
			return err
		}
		if err = fn(); err == nil {
			return nil
		}
		if attempt >= p.Attempts || (retryable != nil && !retryable(err)) {
			return err
		}
		t := time.NewTimer(p.Delay(key, attempt))
		select {
		case <-ctx.Done():
			t.Stop()
			return err
		case <-t.C:
		}
	}
}
