package retry

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestDelayDeterministic: the schedule is a pure function of
// (policy, key, attempt).
func TestDelayDeterministic(t *testing.T) {
	p := Policy{Base: 10 * time.Millisecond, Cap: time.Second, Seed: 7}
	for attempt := 1; attempt <= 8; attempt++ {
		if a, b := p.Delay("k", attempt), p.Delay("k", attempt); a != b {
			t.Fatalf("attempt %d: %v != %v", attempt, a, b)
		}
	}
	if p.Delay("k", 1) == p.Delay("other", 1) {
		t.Error("different keys produced identical jitter; suspicious hash")
	}
}

// TestDelayGrowthAndCap: nominal backoff doubles per attempt, jitter stays
// within [½,1]× nominal, and the cap bounds growth.
func TestDelayGrowthAndCap(t *testing.T) {
	p := Policy{Base: 10 * time.Millisecond, Cap: 80 * time.Millisecond}
	for attempt := 1; attempt <= 10; attempt++ {
		nominal := 10 * time.Millisecond << (attempt - 1)
		if nominal > p.Cap {
			nominal = p.Cap
		}
		d := p.Delay("k", attempt)
		if d < nominal/2 || d > nominal {
			t.Errorf("attempt %d: delay %v outside [%v, %v]", attempt, d, nominal/2, nominal)
		}
	}
}

// TestDoRetriesTransient: Do retries transient failures and stops on
// success.
func TestDoRetriesTransient(t *testing.T) {
	p := Policy{Attempts: 5, Base: time.Microsecond, Cap: time.Microsecond}
	calls := 0
	err := p.Do(context.Background(), "k", nil, func() error {
		calls++
		if calls < 3 {
			return errors.New("flaky")
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("Do = %v after %d calls, want nil after 3", err, calls)
	}
}

// TestDoStopsOnPermanent: a non-retryable error short-circuits the budget.
func TestDoStopsOnPermanent(t *testing.T) {
	p := Policy{Attempts: 5, Base: time.Microsecond}
	perm := errors.New("permanent")
	calls := 0
	err := p.Do(context.Background(), "k", func(err error) bool { return false }, func() error {
		calls++
		return perm
	})
	if !errors.Is(err, perm) || calls != 1 {
		t.Fatalf("Do = %v after %d calls, want permanent after 1", err, calls)
	}
}

// TestDoExhaustsBudget: the last error surfaces when attempts run out.
func TestDoExhaustsBudget(t *testing.T) {
	p := Policy{Attempts: 3, Base: time.Microsecond, Cap: time.Microsecond}
	flaky := errors.New("flaky")
	calls := 0
	err := p.Do(context.Background(), "k", nil, func() error { calls++; return flaky })
	if !errors.Is(err, flaky) || calls != 3 {
		t.Fatalf("Do = %v after %d calls, want flaky after 3", err, calls)
	}
}

// TestDoHonorsContext: cancellation mid-backoff returns promptly with the
// last failure.
func TestDoHonorsContext(t *testing.T) {
	p := Policy{Attempts: 3, Base: time.Hour, Cap: time.Hour}
	ctx, cancel := context.WithCancel(context.Background())
	flaky := errors.New("flaky")
	go func() { time.Sleep(10 * time.Millisecond); cancel() }()
	start := time.Now()
	err := p.Do(ctx, "k", nil, func() error { return flaky })
	if !errors.Is(err, flaky) {
		t.Fatalf("Do = %v, want the last failure", err)
	}
	if time.Since(start) > 10*time.Second {
		t.Fatal("Do slept through cancellation")
	}
}
