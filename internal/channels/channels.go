// Package channels is the single registry of measurement-bias channels:
// every way this laboratory can perturb a setup without touching the
// code under test. The catalog handler (/v1/catalog), the predict CLI's
// channel flag, the table-driven sweep subcommands, and the declarative
// bias-on-demand schema (internal/spec) all consume this table, so a
// channel added here appears everywhere at once and the surfaces cannot
// drift apart on names.
package channels

// Channel describes one bias channel.
type Channel struct {
	// Name is the short channel id: env, link, pad, base, tenant.
	Name string
	// JobKind is the server job kind that sweeps the channel.
	JobKind string
	// Factor is the human phrase for the perturbed factor, as the bias
	// reports print it.
	Factor string
	// Param describes what a sweep of this channel varies.
	Param string
	// Oracle reports whether the channel is a `biaslab predict -channel`
	// value: a static oracle or comparator predicts its sensitivity
	// without simulating. The link channel's layout classes ride along in
	// the env channel's report; the tenant channel has no oracle at all —
	// predicting shared-state displacement would require simulating both
	// tenants' reference streams, which is exactly what measurement is
	// for.
	Oracle bool
	// Randomized reports whether randomize jobs can treat the channel as
	// a randomized nuisance factor.
	Randomized bool
}

// All lists every channel in catalog order. The slice is freshly
// allocated; callers may reorder it.
func All() []Channel {
	return []Channel{
		{Name: "env", JobKind: "sweep-env", Factor: "environment size",
			Param: "UNIX environment bytes", Oracle: true, Randomized: true},
		{Name: "link", JobKind: "sweep-link", Factor: "link order",
			Param: "object link permutations", Oracle: false, Randomized: true},
		{Name: "pad", JobKind: "sweep-pad", Factor: "text padding",
			Param: "inter-object padding bytes", Oracle: true, Randomized: true},
		{Name: "base", JobKind: "sweep-base", Factor: "image base",
			Param: "link-time base addresses", Oracle: true, Randomized: true},
		{Name: "tenant", JobKind: "sweep-tenant", Factor: "co-runner",
			Param: "co-running benchmarks", Oracle: false, Randomized: true},
	}
}

// ByName resolves a channel by its short id.
func ByName(name string) (Channel, bool) {
	for _, c := range All() {
		if c.Name == name {
			return c, true
		}
	}
	return Channel{}, false
}

// ByJobKind resolves a channel by its sweep job kind.
func ByJobKind(kind string) (Channel, bool) {
	for _, c := range All() {
		if c.JobKind == kind {
			return c, true
		}
	}
	return Channel{}, false
}

// Names lists every channel id, in catalog order.
func Names() []string {
	var names []string
	for _, c := range All() {
		names = append(names, c.Name)
	}
	return names
}

// OracleNames lists the ids of the channels `biaslab predict` supports.
func OracleNames() []string {
	var names []string
	for _, c := range All() {
		if c.Oracle {
			names = append(names, c.Name)
		}
	}
	return names
}
