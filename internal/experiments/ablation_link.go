package experiments

import (
	"fmt"

	"biaslab/internal/bench"
	"biaslab/internal/core"
	"biaslab/internal/machine"
	"biaslab/internal/report"
)

// AblationLink (experiment A2) is the companion of A1 for the second bias
// channel: which front-end mechanisms carry the *link-order* bias on the
// Core 2 model?
//
//   - no-btb:   branch-target-buffer redirects cost nothing (infinite BTB)
//   - aligned:  misaligned-entry bubbles disabled
//   - hi-assoc: L1I made 16-way (I-cache conflict misses largely removed)
//   - none:     all three off
//
// Link order only moves code, so any residual variation under "none" bounds
// the modelling noise of the remaining mechanisms (gshare aliasing, fetch-
// block boundaries, and D-side effects of moved globals).
func (l *Lab) AblationLink() (*Result, error) {
	base := machine.Core2()

	noBTB := base
	noBTB.Name = "C2 no-btb"
	noBTB.Penalties.BTBRedirect = 0

	aligned := base
	aligned.Name = "C2 aligned"
	aligned.Penalties.MisalignedEntry = 0

	hiAssoc := base
	hiAssoc.Name = "C2 hi-assoc-i"
	hiAssoc.L1I.Ways = 64

	none := base
	none.Name = "C2 none"
	none.Penalties.BTBRedirect = 0
	none.Penalties.MisalignedEntry = 0
	none.L1I.Ways = 64

	variants := []struct {
		key string
		cfg machine.Config
	}{
		{"core2", base},
		{"c2-nobtb", noBTB},
		{"c2-aligned", aligned},
		{"c2-hiassoci", hiAssoc},
		{"c2-none", none},
	}
	for _, v := range variants[1:] {
		if err := l.Runner.RegisterMachine(v.key, v.cfg); err != nil {
			return nil, err
		}
	}

	t := &report.Table{
		Title:   "A2: mechanism ablation — link-order bias on Core 2 variants",
		Headers: []string{"variant", "benchmark", "speedup range", "vs baseline"},
	}
	benchNames := []string{"sjeng", "gobmk", "bzip2", "hmmer"}
	baselines := map[string]float64{}
	for _, v := range variants {
		for _, name := range benchNames {
			b, _ := bench.ByName(name)
			setup := core.DefaultSetup(v.key)
			points, err := core.LinkSweepCheckpointed(l.ctx, l.Runner, b, setup, l.opt.LinkOrders, l.opt.Seed, l.ck)
			if err != nil {
				return nil, err
			}
			min, max := points[0].Speedup, points[0].Speedup
			for _, p := range points {
				if p.Speedup < min {
					min = p.Speedup
				}
				if p.Speedup > max {
					max = p.Speedup
				}
			}
			rng := max - min
			if v.key == "core2" {
				baselines[name] = rng
				t.AddRow(v.cfg.Name, name, rng, "(baseline)")
				continue
			}
			rel := "—"
			if baselines[name] > 0 {
				rel = fmt.Sprintf("%.0f%%", 100*rng/baselines[name])
			}
			t.AddRow(v.cfg.Name, name, rng, rel)
		}
	}
	return &Result{
		ID:    "A2",
		Title: t.Title,
		Text:  t.String(),
		CSV:   t.CSV(),
	}, nil
}
