// Package experiments regenerates every table and figure of the paper's
// evaluation from the biaslab substrates. Each experiment returns a Result
// holding the rendered text artifact and a CSV twin; the Lab memoizes the
// expensive suite-wide sweeps so that e.g. Figure 3 and Table 2 share one
// set of measurements.
//
// Experiment identifiers follow DESIGN.md: F1–F2 (perlbench environment
// sweep), F3–F5 (suite environment studies on Core 2, Pentium 4, m5),
// F6–F7 (suite link-order studies), F8 (causal analysis), F9 (setup
// randomization), T1 (benchmark suite), T2 (bias vs effect), T3
// (literature survey), T4 (both compilers).
package experiments

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"biaslab/internal/bench"
	"biaslab/internal/compiler"
	"biaslab/internal/core"
	"biaslab/internal/report"
	"biaslab/internal/stats"
	"biaslab/internal/survey"
)

// Options tune experiment cost and provenance.
type Options struct {
	// Size selects the workload (default SizeSmall).
	Size bench.Size
	// EnvStep is the environment-size step for suite sweeps (default 256).
	EnvStep uint64
	// FineStep is the step for the single-benchmark Figures 1–2
	// (default 64).
	FineStep uint64
	// LinkOrders is the number of random link orders (default 16; the
	// paper used 32).
	LinkOrders int
	// RandomSetups is the sample size for setup randomization (default 16;
	// the paper recommends "many").
	RandomSetups int
	// Seed makes every randomized choice reproducible.
	Seed uint64
}

func (o Options) withDefaults() Options {
	if o.EnvStep == 0 {
		o.EnvStep = 256
	}
	if o.FineStep == 0 {
		o.FineStep = 64
	}
	if o.LinkOrders == 0 {
		o.LinkOrders = 16
	}
	if o.RandomSetups == 0 {
		o.RandomSetups = 16
	}
	if o.Seed == 0 {
		o.Seed = 20090307 // ASPLOS 2009
	}
	return o
}

// Result is one regenerated artifact.
type Result struct {
	ID    string
	Title string
	Text  string
	CSV   string
}

// Lab runs experiments, memoizing suite-wide studies. A Lab is used by one
// goroutine at a time; the Runner underneath is what parallelizes.
type Lab struct {
	Runner *core.Runner
	opt    Options

	// ctx cancels every measurement the Lab starts; ck (optional) records
	// completed sweep points and finished experiments so an interrupted
	// `biaslab all` resumes where it stopped.
	ctx context.Context
	ck  core.Checkpoint

	envStudies  map[string]studyData // machine → data
	linkStudies map[string]studyData
}

type studyData struct {
	reports []core.BiasReport
	raw     map[string][]float64
}

// NewLab builds a Lab with a background context and no checkpoint.
func NewLab(opt Options) *Lab {
	return NewLabCtx(context.Background(), opt, nil)
}

// NewLabCtx builds a Lab whose measurements are cancelled with ctx and
// checkpointed into ck (nil disables checkpointing).
func NewLabCtx(ctx context.Context, opt Options, ck core.Checkpoint) *Lab {
	opt = opt.withDefaults()
	return &Lab{
		Runner:      core.NewRunner(opt.Size),
		opt:         opt,
		ctx:         ctx,
		ck:          ck,
		envStudies:  map[string]studyData{},
		linkStudies: map[string]studyData{},
	}
}

// Options returns the effective options.
func (l *Lab) Options() Options { return l.opt }

// key renders the options that affect measured values, namespacing every
// checkpoint record so a journal written at one size/seed can never be
// replayed at another.
func (o Options) key() string {
	return fmt.Sprintf("size=%d envstep=%d finestep=%d linkorders=%d randomsetups=%d seed=%d",
		o.Size, o.EnvStep, o.FineStep, o.LinkOrders, o.RandomSetups, o.Seed)
}

func (l *Lab) envStudy(machineName string) (studyData, error) {
	if d, ok := l.envStudies[machineName]; ok {
		return d, nil
	}
	reports, raw, err := core.SuiteEnvStudy(l.ctx, l.Runner, machineName, core.DefaultEnvSizes(l.opt.EnvStep), compiler.GCC, l.ck)
	if err != nil {
		return studyData{}, err
	}
	d := studyData{reports: reports, raw: raw}
	l.envStudies[machineName] = d
	return d, nil
}

func (l *Lab) linkStudy(machineName string) (studyData, error) {
	if d, ok := l.linkStudies[machineName]; ok {
		return d, nil
	}
	reports, raw, err := core.SuiteLinkStudy(l.ctx, l.Runner, machineName, l.opt.LinkOrders, l.opt.Seed, compiler.GCC, l.ck)
	if err != nil {
		return studyData{}, err
	}
	d := studyData{reports: reports, raw: raw}
	l.linkStudies[machineName] = d
	return d, nil
}

// perlbenchSweep runs the fine-grained env sweep behind Figures 1 and 2.
func (l *Lab) perlbenchSweep() ([]core.EnvPoint, error) {
	b, _ := bench.ByName("perlbench")
	return core.EnvSweepCheckpointed(l.ctx, l.Runner, b, core.DefaultSetup("core2"), core.DefaultEnvSizes(l.opt.FineStep), l.ck)
}

// Figure1 regenerates Figure 1: cycles of the perlbench analogue at O2 and
// O3 as the UNIX environment grows, on the Core 2 model.
func (l *Lab) Figure1() (*Result, error) {
	points, err := l.perlbenchSweep()
	if err != nil {
		return nil, err
	}
	base := report.Series{Name: "O2"}
	opt := report.Series{Name: "O3"}
	for _, p := range points {
		x := float64(p.EnvBytes)
		base.X = append(base.X, x)
		base.Y = append(base.Y, float64(p.CyclesBase))
		opt.X = append(opt.X, x)
		opt.Y = append(opt.Y, float64(p.CyclesOpt))
	}
	series := []report.Series{base, opt}
	title := "Figure 1: perlbench cycles vs environment size (Core 2, gcc)"
	return &Result{
		ID:    "F1",
		Title: title,
		Text:  report.LineChart(title, series, 72, 18, 0, false),
		CSV:   report.SeriesCSV(series),
	}, nil
}

// Figure2 regenerates Figure 2: the O3-over-O2 speedup of the perlbench
// analogue as a function of environment size.
func (l *Lab) Figure2() (*Result, error) {
	points, err := l.perlbenchSweep()
	if err != nil {
		return nil, err
	}
	s := report.Series{Name: "speedup O3/O2"}
	for _, p := range points {
		s.X = append(s.X, float64(p.EnvBytes))
		s.Y = append(s.Y, p.Speedup)
	}
	series := []report.Series{s}
	title := "Figure 2: perlbench O3 speedup vs environment size (Core 2, gcc)"
	return &Result{
		ID:    "F2",
		Title: title,
		Text:  report.LineChart(title, series, 72, 18, 1.0, true),
		CSV:   report.SeriesCSV(series),
	}, nil
}

func (l *Lab) suiteEnvFigure(id, machineName, machineLabel string) (*Result, error) {
	d, err := l.envStudy(machineName)
	if err != nil {
		return nil, err
	}
	title := fmt.Sprintf("%s: O3 speedup across environment sizes, all benchmarks (%s, gcc)", id, machineLabel)
	return &Result{
		ID:    id,
		Title: title,
		Text:  report.RangeChart(title, bench.Names(), d.raw, 1.0) + "\n" + biasReportTable(d.reports),
		CSV:   report.DistributionCSV(d.raw),
	}, nil
}

// Figure3 regenerates Figure 3 (Core 2), the paper's headline figure.
func (l *Lab) Figure3() (*Result, error) { return l.suiteEnvFigure("F3", "core2", "Core 2") }

// Figure4 regenerates Figure 4 (Pentium 4).
func (l *Lab) Figure4() (*Result, error) { return l.suiteEnvFigure("F4", "p4", "Pentium 4") }

// Figure5 regenerates Figure 5 (m5 O3CPU).
func (l *Lab) Figure5() (*Result, error) { return l.suiteEnvFigure("F5", "m5", "m5 O3CPU") }

func (l *Lab) suiteLinkFigure(id, machineName, machineLabel string) (*Result, error) {
	d, err := l.linkStudy(machineName)
	if err != nil {
		return nil, err
	}
	title := fmt.Sprintf("%s: O3 speedup across link orders (default, alphabetical, %d random), all benchmarks (%s, gcc)",
		id, l.opt.LinkOrders, machineLabel)
	return &Result{
		ID:    id,
		Title: title,
		Text:  report.RangeChart(title, bench.Names(), d.raw, 1.0) + "\n" + biasReportTable(d.reports),
		CSV:   report.DistributionCSV(d.raw),
	}, nil
}

// Figure6 regenerates Figure 6: link-order study on Core 2.
func (l *Lab) Figure6() (*Result, error) { return l.suiteLinkFigure("F6", "core2", "Core 2") }

// Figure7 regenerates Figure 7: link-order study on m5 O3CPU.
func (l *Lab) Figure7() (*Result, error) { return l.suiteLinkFigure("F7", "m5", "m5 O3CPU") }

func biasReportTable(reports []core.BiasReport) string {
	t := &report.Table{Headers: []string{"benchmark", "min", "median", "max", "range", "bias/effect", "flips sign"}}
	for _, rep := range reports {
		t.AddRow(rep.Benchmark, rep.Speedups.Min, rep.Speedups.Median, rep.Speedups.Max,
			rep.Speedups.Range(), rep.BiasOverEffect, rep.FlipsSign)
	}
	return t.String()
}

// Figure8 regenerates the causal-analysis case study: intervene on the
// stack displacement directly (no environment change) for the perlbench
// analogue on Core 2, and rank hardware events by correlation with cycles.
func (l *Lab) Figure8() (*Result, error) {
	b, _ := bench.ByName("perlbench")
	rep, err := core.CausalStudy(l.ctx, l.Runner, b, core.DefaultSetup("core2"), 1024, 128)
	if err != nil {
		return nil, err
	}
	s := report.Series{Name: "cycles"}
	for _, p := range rep.Points {
		s.X = append(s.X, float64(p.Shift))
		s.Y = append(s.Y, float64(p.Cycles))
	}
	title := "F8: causal analysis — cycles vs direct stack displacement (perlbench, Core 2)"
	var sb strings.Builder
	sb.WriteString(report.LineChart(title, []report.Series{s}, 72, 14, 0, false))
	fmt.Fprintf(&sb, "\nIntervention cycle range: %d; matched env-sweep range: %d; reproduces effect: %v\n",
		rep.CycleRange, rep.EnvRange, rep.Reproduces())
	t := &report.Table{Title: "Counter correlation with cycles across the intervention:",
		Headers: []string{"counter", "pearson", "spearman"}}
	for i, c := range rep.Correlations {
		if i >= 8 {
			break
		}
		t.AddRow(c.Counter, c.Pearson, c.Spearman)
	}
	sb.WriteString(t.String())
	return &Result{ID: "F8", Title: title, Text: sb.String(), CSV: report.SeriesCSV([]report.Series{s})}, nil
}

// Figure9 regenerates the setup-randomization figure: per benchmark, the
// randomized-setup confidence interval for the O3 speedup, contrasted with
// two single-setup point estimates a careless experimenter might publish.
func (l *Lab) Figure9() (*Result, error) {
	labels := []string{}
	means := map[string]float64{}
	intervals := map[string]stats.Interval{}
	t := &report.Table{Headers: []string{"benchmark", "robust mean", "95% CI", "effect ± (95%)", "sign-test", "conclusive", "setupA", "inCI", "setupB", "inCI"}}
	for _, b := range bench.All() {
		est, err := core.EstimateSpeedup(l.ctx, l.Runner, b, core.DefaultSetup("core2"), l.opt.RandomSetups, l.opt.Seed)
		if err != nil {
			return nil, err
		}
		labels = append(labels, b.Name)
		means[b.Name] = est.Mean
		intervals[b.Name] = est.TInterval
		verdicts, err := core.CompareSingleSetups(l.ctx, l.Runner, b, est, map[string]core.Setup{
			"A": {Machine: "core2", Compiler: compiler.Config{Level: compiler.O2}, EnvBytes: 8},
			"B": {Machine: "core2", Compiler: compiler.Config{Level: compiler.O2}, EnvBytes: 3333},
		})
		if err != nil {
			return nil, err
		}
		sort.Slice(verdicts, func(i, j int) bool { return verdicts[i].Label < verdicts[j].Label })
		center, half := est.EffectPct()
		t.AddRow(b.Name, est.Mean, est.TInterval.String(),
			fmt.Sprintf("%+.2f%%±%.2f%%", center, half),
			fmt.Sprintf("%s p=%.3f", est.Test.Verdict, est.Test.P),
			est.Conclusive(),
			verdicts[0].Speedup, verdicts[0].InInterval,
			verdicts[1].Speedup, verdicts[1].InInterval)
	}
	title := "F9: setup randomization — robust speedup intervals vs single-setup estimates (Core 2)"
	text := report.IntervalChart(title, labels, means, intervals, 1.0) + "\n" + t.String()
	return &Result{ID: "F9", Title: title, Text: text, CSV: t.CSV()}, nil
}

// Table1 regenerates the benchmark-suite table: the 12 SPEC CPU2006 C
// analogues with their kernels and dynamic footprint at the current size.
func (l *Lab) Table1() (*Result, error) {
	t := &report.Table{
		Title:   "T1: benchmark suite — SPEC CPU2006 C analogues",
		Headers: []string{"benchmark", "SPEC original", "kernel", "units", "instructions (O2)", "IPC"},
	}
	for _, b := range bench.All() {
		m, err := l.Runner.Measure(l.ctx, b, core.DefaultSetup("core2"))
		if err != nil {
			return nil, err
		}
		t.AddRow(b.Name, b.Spec, b.Kernel, len(l.Runner.UnitNames(b)),
			m.Counters.Instructions, m.Counters.IPC())
	}
	return &Result{ID: "T1", Title: t.Title, Text: t.String(), CSV: t.CSV()}, nil
}

// Table2 regenerates the bias-versus-effect table across all machines and
// both factors: is the bias large relative to the effect being measured?
func (l *Lab) Table2() (*Result, error) {
	t := &report.Table{
		Title:   "T2: magnitude of measurement bias vs the O3 effect",
		Headers: []string{"machine", "factor", "benchmark", "median speedup", "bias range", "bias/effect", "flips sign"},
	}
	flips, comparable := 0, 0
	for _, mach := range []string{"p4", "core2", "m5"} {
		env, err := l.envStudy(mach)
		if err != nil {
			return nil, err
		}
		for _, rep := range env.reports {
			t.AddRow(mach, "env size", rep.Benchmark, rep.Speedups.Median, rep.Speedups.Range(), rep.BiasOverEffect, rep.FlipsSign)
			if rep.FlipsSign {
				flips++
			}
			if rep.BiasOverEffect >= 0.5 {
				comparable++
			}
		}
	}
	for _, mach := range []string{"core2", "m5"} {
		link, err := l.linkStudy(mach)
		if err != nil {
			return nil, err
		}
		for _, rep := range link.reports {
			t.AddRow(mach, "link order", rep.Benchmark, rep.Speedups.Median, rep.Speedups.Range(), rep.BiasOverEffect, rep.FlipsSign)
			if rep.FlipsSign {
				flips++
			}
			if rep.BiasOverEffect >= 0.5 {
				comparable++
			}
		}
	}
	text := t.String() + fmt.Sprintf("\n%d rows flip sign; %d rows have bias ≥ half the measured effect.\n", flips, comparable)
	return &Result{ID: "T2", Title: t.Title, Text: text, CSV: t.CSV()}, nil
}

// Table3 regenerates the literature survey.
func (l *Lab) Table3() (*Result, error) {
	s := survey.Summarize(survey.Dataset())
	t := &report.Table{Headers: []string{"criterion", "count"}}
	t.AddRow("papers surveyed", s.Total)
	t.AddRow("with time-based evaluation", s.UsesSpeedup)
	t.AddRow("single platform", s.SinglePlatform)
	t.AddRow("reports environment", s.ReportsEnv)
	t.AddRow("reports link order", s.ReportsLink)
	t.AddRow("addresses bias", s.AddressesBias)
	return &Result{
		ID:    "T3",
		Title: "T3: literature survey of 133 papers (ASPLOS, PACT, PLDI, CGO)",
		Text:  s.Table(),
		CSV:   t.CSV(),
	}, nil
}

// Table4 regenerates the both-compilers claim: measurement bias appears
// under the gcc and the icc personality alike (perlbench env study on
// Core 2 under each).
func (l *Lab) Table4() (*Result, error) {
	t := &report.Table{
		Title:   "T4: environment-size bias with both compilers (Core 2)",
		Headers: []string{"compiler", "benchmark", "min", "median", "max", "range", "flips sign"},
	}
	sizes := core.DefaultEnvSizes(l.opt.EnvStep)
	for _, pers := range []compiler.Personality{compiler.GCC, compiler.ICC} {
		for _, name := range []string{"perlbench", "gcc", "lbm", "sjeng"} {
			b, _ := bench.ByName(name)
			setup := core.DefaultSetup("core2")
			setup.Compiler.Personality = pers
			points, err := core.EnvSweepCheckpointed(l.ctx, l.Runner, b, setup, sizes, l.ck)
			if err != nil {
				return nil, err
			}
			sp := make([]float64, len(points))
			for i, p := range points {
				sp[i] = p.Speedup
			}
			rep := core.NewBiasReport(name, "core2", "env", sp)
			t.AddRow(pers.String(), name, rep.Speedups.Min, rep.Speedups.Median, rep.Speedups.Max,
				rep.Speedups.Range(), rep.FlipsSign)
		}
	}
	return &Result{ID: "T4", Title: t.Title, Text: t.String(), CSV: t.CSV()}, nil
}

// ByID runs a single experiment by identifier (case-insensitive). With a
// checkpoint attached, a finished experiment's full Result is recorded and
// replayed on a rerun — and the sweeps underneath checkpoint individual
// points, so even a half-finished experiment resumes mid-sweep.
func (l *Lab) ByID(id string) (*Result, error) {
	id = strings.ToUpper(id)
	expKey := "exp/" + id + "?" + l.opt.key()
	if l.ck != nil {
		var r Result
		ok, err := l.ck.Lookup(expKey, &r)
		if err != nil {
			return nil, err
		}
		if ok {
			return &r, nil
		}
	}
	r, err := l.byID(id)
	if err != nil {
		return nil, err
	}
	if l.ck != nil {
		if err := l.ck.Record(expKey, r); err != nil {
			return nil, err
		}
	}
	return r, nil
}

func (l *Lab) byID(id string) (*Result, error) {
	switch id {
	case "F1":
		return l.Figure1()
	case "F2":
		return l.Figure2()
	case "F3":
		return l.Figure3()
	case "F4":
		return l.Figure4()
	case "F5":
		return l.Figure5()
	case "F6":
		return l.Figure6()
	case "F7":
		return l.Figure7()
	case "F8":
		return l.Figure8()
	case "F9":
		return l.Figure9()
	case "T1":
		return l.Table1()
	case "T2":
		return l.Table2()
	case "T3":
		return l.Table3()
	case "T4":
		return l.Table4()
	case "A1":
		return l.Ablation()
	case "A2":
		return l.AblationLink()
	case "A3":
		return l.AblationPrefetch()
	}
	return nil, fmt.Errorf("experiments: unknown experiment %q (know F1–F9, T1–T4, A1–A3)", id)
}

// IDs lists every experiment in presentation order. A1–A3 are biaslab
// extensions (mechanism ablations and what-ifs), not paper artifacts.
func IDs() []string {
	return []string{"T1", "F1", "F2", "F3", "F4", "F5", "F6", "F7", "T2", "T3", "T4", "F8", "F9", "A1", "A2", "A3"}
}

// All runs every experiment in order.
func (l *Lab) All() ([]*Result, error) {
	out := make([]*Result, 0, len(IDs()))
	for _, id := range IDs() {
		r, err := l.ByID(id)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", id, err)
		}
		out = append(out, r)
	}
	return out, nil
}
