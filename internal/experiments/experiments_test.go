package experiments

import (
	"strings"
	"testing"

	"biaslab/internal/bench"
)

// testLab builds a cheap Lab: test-size workloads, coarse sweeps.
func testLab() *Lab {
	return NewLab(Options{
		Size:         bench.SizeTest,
		EnvStep:      1024,
		FineStep:     512,
		LinkOrders:   3,
		RandomSetups: 4,
		Seed:         7,
	})
}

func TestOptionsDefaults(t *testing.T) {
	l := NewLab(Options{})
	o := l.Options()
	if o.EnvStep == 0 || o.FineStep == 0 || o.LinkOrders == 0 || o.RandomSetups == 0 || o.Seed == 0 {
		t.Errorf("defaults not applied: %+v", o)
	}
}

func TestIDsCoverEveryExperiment(t *testing.T) {
	ids := IDs()
	if len(ids) != 16 {
		t.Fatalf("have %d experiments, want 16 (9 figures + 4 tables + 3 ablations)", len(ids))
	}
	seen := map[string]bool{}
	for _, id := range ids {
		seen[id] = true
	}
	for _, want := range []string{"F1", "F2", "F3", "F4", "F5", "F6", "F7", "F8", "F9", "T1", "T2", "T3", "T4", "A1", "A2", "A3"} {
		if !seen[want] {
			t.Errorf("missing experiment %s", want)
		}
	}
}

func TestByIDUnknown(t *testing.T) {
	l := testLab()
	if _, err := l.ByID("F99"); err == nil {
		t.Error("unknown id should fail")
	}
}

func TestTable3(t *testing.T) {
	l := testLab()
	r, err := l.Table3()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(r.Text, "133 papers") {
		t.Errorf("T3 missing survey count:\n%s", r.Text)
	}
	if !strings.Contains(r.CSV, "reports link order,0") {
		t.Errorf("T3 CSV missing central finding:\n%s", r.CSV)
	}
}

func TestFigures1And2(t *testing.T) {
	l := testLab()
	f1, err := l.Figure1()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(f1.Text, "O2") || !strings.Contains(f1.Text, "O3") {
		t.Errorf("F1 missing series:\n%s", f1.Text)
	}
	if !strings.Contains(f1.CSV, "series,x,y") {
		t.Error("F1 CSV malformed")
	}
	f2, err := l.Figure2()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(f2.Text, "speedup") {
		t.Errorf("F2 missing speedup series")
	}
}

func TestFigure3AndTable2ShareStudy(t *testing.T) {
	l := testLab()
	if _, err := l.Figure3(); err != nil {
		t.Fatal(err)
	}
	if len(l.envStudies) != 1 {
		t.Fatalf("env studies cached: %d", len(l.envStudies))
	}
	// Figure 3 again must not re-run the sweep (cache hit leaves map size).
	if _, err := l.Figure3(); err != nil {
		t.Fatal(err)
	}
	if len(l.envStudies) != 1 {
		t.Error("memoization broken")
	}
}

func TestFigure8Causal(t *testing.T) {
	l := testLab()
	r, err := l.Figure8()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"causal", "Counter correlation", "reproduces effect"} {
		if !strings.Contains(r.Text, want) {
			t.Errorf("F8 missing %q:\n%s", want, r.Text)
		}
	}
}

func TestFigure9Randomization(t *testing.T) {
	if testing.Short() {
		t.Skip("randomization study is slow")
	}
	l := testLab()
	r, err := l.Figure9()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(r.Text, "95%") {
		t.Errorf("F9 missing interval:\n%s", r.Text)
	}
	// Every benchmark appears.
	for _, name := range bench.Names() {
		if !strings.Contains(r.Text, name) {
			t.Errorf("F9 missing %s", name)
		}
	}
}

func TestTable1(t *testing.T) {
	l := testLab()
	r, err := l.Table1()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"400.perlbench", "482.sphinx3", "benchmark"} {
		if !strings.Contains(r.Text, want) {
			t.Errorf("T1 missing %q", want)
		}
	}
}

func TestTable4BothCompilers(t *testing.T) {
	if testing.Short() {
		t.Skip("compiler comparison is slow")
	}
	l := testLab()
	r, err := l.Table4()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(r.Text, "gcc") || !strings.Contains(r.Text, "icc") {
		t.Errorf("T4 missing personalities:\n%s", r.Text)
	}
}

func TestAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation sweeps are slow")
	}
	l := testLab()
	r, err := l.Ablation()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"no-alias", "hi-assoc", "baseline"} {
		if !strings.Contains(r.Text, want) {
			t.Errorf("A1 missing %q:\n%s", want, r.Text)
		}
	}
}
