package experiments

import (
	"fmt"

	"biaslab/internal/bench"
	"biaslab/internal/core"
	"biaslab/internal/machine"
	"biaslab/internal/report"
)

// AblationPrefetch (experiment A3) asks a what-if the paper invites: does
// a hardware prefetcher mask measurement bias? It re-runs the env sweep on
// the m5 model — whose bias channel is purely cache-conflict-based — with
// a next-line L1D prefetcher enabled.
//
// The measured answer is *no*: the prefetcher lowers the miss rate, as
// expected, but **widens** the bias range (1.3–3× at test scale). The
// reason is instructive: which prefetches help and which pollute depends
// on where arrays and frames fall relative to line and set boundaries —
// i.e. the prefetcher is itself an address-sensitive mechanism, so adding
// it adds a bias channel rather than averaging one away. More hardware
// cleverness means more, not less, measurement bias; the paper's remedies
// (randomization, causal analysis) are the only general defence.
func (l *Lab) AblationPrefetch() (*Result, error) {
	base := machine.M5O3()
	pf := base
	pf.Name = "m5 +prefetch"
	pf.NextLinePrefetch = true
	if err := l.Runner.RegisterMachine("m5-prefetch", pf); err != nil {
		return nil, err
	}

	sizes := core.DefaultEnvSizes(l.opt.EnvStep)
	t := &report.Table{
		Title:   "A3: next-line prefetching vs env-size bias (m5 O3CPU)",
		Headers: []string{"variant", "benchmark", "speedup range", "L1D miss rate", "vs baseline"},
	}
	benchNames := []string{"perlbench", "lbm", "mcf", "hmmer"}
	baselines := map[string]float64{}
	for _, key := range []string{"m5", "m5-prefetch"} {
		for _, name := range benchNames {
			b, _ := bench.ByName(name)
			setup := core.DefaultSetup(key)
			points, err := core.EnvSweepCheckpointed(l.ctx, l.Runner, b, setup, sizes, l.ck)
			if err != nil {
				return nil, err
			}
			min, max := points[0].Speedup, points[0].Speedup
			for _, p := range points {
				if p.Speedup < min {
					min = p.Speedup
				}
				if p.Speedup > max {
					max = p.Speedup
				}
			}
			rng := max - min
			// Miss rate at the default setup for context.
			m, err := l.Runner.Measure(l.ctx, b, setup)
			if err != nil {
				return nil, err
			}
			missRate := float64(m.Counters.L1DMisses) / float64(m.Counters.Loads+m.Counters.Stores)
			label := "m5 O3CPU"
			rel := "(baseline)"
			if key == "m5" {
				baselines[name] = rng
			} else {
				label = "m5 +prefetch"
				rel = "—"
				if baselines[name] > 0 {
					rel = fmt.Sprintf("%.0f%%", 100*rng/baselines[name])
				}
			}
			t.AddRow(label, name, rng, fmt.Sprintf("%.3f%%", 100*missRate), rel)
		}
	}
	return &Result{
		ID:    "A3",
		Title: t.Title,
		Text:  t.String(),
		CSV:   t.CSV(),
	}, nil
}
