package experiments

import (
	"fmt"

	"biaslab/internal/bench"
	"biaslab/internal/core"
	"biaslab/internal/machine"
	"biaslab/internal/report"
)

// Ablation (experiment A1) asks *which microarchitectural mechanisms carry
// the environment-size bias* by re-running the env sweep on variants of the
// Pentium 4 model with individual features switched off:
//
//   - no-alias: 4 KiB store-aliasing replays disabled
//   - hi-assoc: L1 caches made 16-way (conflict misses largely removed)
//   - no-tlb:   TLB miss penalties zeroed
//   - neither:  no-alias + hi-assoc combined
//
// If the paper's causal story is right, removing the aliasing hazard and
// the conflict-miss channel should collapse most of the bias; the table
// reports the residual speedup range per variant. This is the design-choice
// ablation DESIGN.md calls out: it validates that the simulator's bias is
// produced by the intended mechanisms rather than by modelling noise.
func (l *Lab) Ablation() (*Result, error) {
	base := machine.PentiumIV()

	noAlias := base
	noAlias.Name = "P4 no-alias"
	noAlias.StoreBufferDepth = 0
	noAlias.Penalties.Alias4K = 0

	hiAssoc := base
	hiAssoc.Name = "P4 hi-assoc"
	hiAssoc.L1I.Ways = 16
	hiAssoc.L1D.Ways = 16

	noTLB := base
	noTLB.Name = "P4 no-tlb"
	noTLB.Penalties.ITLBMiss = 0
	noTLB.Penalties.DTLBMiss = 0

	neither := noAlias
	neither.Name = "P4 neither"
	neither.L1I.Ways = 16
	neither.L1D.Ways = 16

	variants := []struct {
		key string
		cfg machine.Config
	}{
		{"p4", base},
		{"p4-noalias", noAlias},
		{"p4-hiassoc", hiAssoc},
		{"p4-notlb", noTLB},
		{"p4-neither", neither},
	}
	for _, v := range variants[1:] {
		if err := l.Runner.RegisterMachine(v.key, v.cfg); err != nil {
			return nil, err
		}
	}

	sizes := core.DefaultEnvSizes(l.opt.EnvStep)
	t := &report.Table{
		Title:   "A1: mechanism ablation — env-size bias on Pentium 4 variants",
		Headers: []string{"variant", "benchmark", "speedup range", "vs baseline"},
	}
	benchNames := []string{"perlbench", "lbm", "sjeng", "mcf"}
	baselines := map[string]float64{}
	for _, v := range variants {
		for _, name := range benchNames {
			b, _ := bench.ByName(name)
			setup := core.DefaultSetup(v.key)
			points, err := core.EnvSweepCheckpointed(l.ctx, l.Runner, b, setup, sizes, l.ck)
			if err != nil {
				return nil, err
			}
			min, max := points[0].Speedup, points[0].Speedup
			for _, p := range points {
				if p.Speedup < min {
					min = p.Speedup
				}
				if p.Speedup > max {
					max = p.Speedup
				}
			}
			rng := max - min
			if v.key == "p4" {
				baselines[name] = rng
				t.AddRow(v.cfg.Name, name, rng, "(baseline)")
				continue
			}
			rel := "—"
			if baselines[name] > 0 {
				rel = fmt.Sprintf("%.0f%%", 100*rng/baselines[name])
			}
			t.AddRow(v.cfg.Name, name, rng, rel)
		}
	}
	return &Result{
		ID:    "A1",
		Title: t.Title,
		Text:  t.String(),
		CSV:   t.CSV(),
	}, nil
}
