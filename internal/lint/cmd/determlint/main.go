// Command determlint checks the measured packages for nondeterminism.
//
// Usage:
//
//	go run ./internal/lint/cmd/determlint ./...
//	go run ./internal/lint/cmd/determlint -all ./...
//
// Package patterns are directories, with "..." expanding recursively.
// Without -all, only the measured roots (internal/machine, internal/isa,
// internal/core, internal/stats, internal/audit, internal/server,
// internal/cluster) are checked — the determinism contract applies to the
// measurement core and the serving layers whose output must be
// byte-identical, not to drivers or tests. Exit status is 1 when any
// finding is reported, 2 on usage or I/O errors.
package main

import (
	"flag"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"

	"biaslab/internal/lint"
)

// measuredRoots are the packages the determinism contract covers, relative
// to the module root: the measurement core proper, plus the serving layers
// whose output must be byte-identical across runs (results, rendered
// reports, audit findings) and the statistics package behind every
// interval. Genuine wall-clock machinery (cluster leases, heartbeats)
// carries //determlint:allow annotations at each use.
var measuredRoots = []string{
	filepath.Join("internal", "machine"),
	filepath.Join("internal", "isa"),
	filepath.Join("internal", "core"),
	filepath.Join("internal", "stats"),
	filepath.Join("internal", "audit"),
	filepath.Join("internal", "server"),
	filepath.Join("internal", "cluster"),
}

func main() {
	all := flag.Bool("all", false, "check every package, not just the measured roots")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: determlint [-all] <dir|pattern>...\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}

	var dirs []string
	for _, pat := range flag.Args() {
		expanded, err := expand(pat)
		if err != nil {
			fmt.Fprintf(os.Stderr, "determlint: %v\n", err)
			os.Exit(2)
		}
		dirs = append(dirs, expanded...)
	}

	nFindings := 0
	for _, dir := range dirs {
		if !*all && !inMeasuredRoot(dir) {
			continue
		}
		findings, err := lint.CheckDir(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "determlint: %s: %v\n", dir, err)
			os.Exit(2)
		}
		for _, f := range findings {
			fmt.Println(f)
			nFindings++
		}
	}
	if nFindings > 0 {
		fmt.Fprintf(os.Stderr, "determlint: %d finding(s)\n", nFindings)
		os.Exit(1)
	}
}

// expand turns a "./..."-style pattern into the list of directories that
// contain Go files, skipping testdata and dot-directories.
func expand(pat string) ([]string, error) {
	if !strings.HasSuffix(pat, "...") {
		return []string{filepath.Clean(pat)}, nil
	}
	root := filepath.Clean(strings.TrimSuffix(pat, "..."))
	if root == "" {
		root = "."
	}
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || strings.HasPrefix(name, ".")) {
			return filepath.SkipDir
		}
		if hasGoFiles(path) {
			dirs = append(dirs, path)
		}
		return nil
	})
	return dirs, err
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			return true
		}
	}
	return false
}

// inMeasuredRoot reports whether dir is one of the measured packages or a
// subdirectory of one.
func inMeasuredRoot(dir string) bool {
	clean := filepath.Clean(dir)
	for _, root := range measuredRoots {
		if clean == root || strings.HasSuffix(clean, string(filepath.Separator)+root) ||
			strings.Contains(clean, string(filepath.Separator)+root+string(filepath.Separator)) {
			return true
		}
	}
	return false
}
