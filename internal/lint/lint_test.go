package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"path/filepath"
	"strings"
	"testing"
)

func check(t *testing.T, src string) []Finding {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "src.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return CheckFiles(fset, []*ast.File{f})
}

func rules(fs []Finding) []string {
	var out []string
	for _, f := range fs {
		out = append(out, f.Rule)
	}
	return out
}

// TestDetectsForbiddenConstructs proves each rule fires on a seeded
// violation.
func TestDetectsForbiddenConstructs(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want []string
	}{
		{
			name: "time.Now",
			src: `package p
import "time"
func f() int64 { return time.Now().UnixNano() }`,
			want: []string{RuleTimeNow},
		},
		{
			name: "global rand",
			src: `package p
import "math/rand"
func f() int { return rand.Intn(8) }`,
			want: []string{RuleRand},
		},
		{
			name: "rand.Seed",
			src: `package p
import "math/rand"
func f() { rand.Seed(42) }`,
			want: []string{RuleRand},
		},
		{
			name: "non-constant NewSource seed",
			src: `package p
import "math/rand"
func f(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }`,
			want: []string{RuleRand},
		},
		{
			name: "wall-clock seed is both violations",
			src: `package p
import ("math/rand"; "time")
func f() *rand.Rand { return rand.New(rand.NewSource(time.Now().UnixNano())) }`,
			want: []string{RuleRand, RuleTimeNow},
		},
		{
			name: "map range",
			src: `package p
func f(m map[string]int) int {
	s := 0
	for _, v := range m {
		s += v
	}
	return s
}`,
			want: []string{RuleMapRange},
		},
		{
			name: "map range over struct field",
			src: `package p
type cache struct { entries map[uint64]int }
func (c *cache) evict() {
	for k := range c.entries {
		delete(c.entries, k)
		break
	}
}`,
			want: []string{RuleMapRange},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := rules(check(t, tc.src))
			if strings.Join(got, ",") != strings.Join(tc.want, ",") {
				t.Errorf("findings = %v, want %v", got, tc.want)
			}
		})
	}
}

// TestCleanConstructs locks in what the linter must NOT flag.
func TestCleanConstructs(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{
			name: "fixed-seed rand",
			src: `package p
import "math/rand"
func f() *rand.Rand { return rand.New(rand.NewSource(1)) }`,
		},
		{
			name: "slice range",
			src: `package p
func f(xs []int) int {
	s := 0
	for _, x := range xs {
		s += x
	}
	return s
}`,
		},
		{
			name: "time duration arithmetic without Now",
			src: `package p
import "time"
var timeout = 5 * time.Second`,
		},
		{
			name: "local identifier named rand",
			src: `package p
func f() int {
	rand := 3
	return rand
}`,
		},
		{
			name: "allow on same line",
			src: `package p
func f(m map[string]int) {
	for k := range m { //determlint:allow eviction order is immaterial
		delete(m, k)
		break
	}
}`,
		},
		{
			name: "allow on preceding line",
			src: `package p
func f(m map[string]int) {
	//determlint:allow eviction order is immaterial
	for k := range m {
		delete(m, k)
		break
	}
}`,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := check(t, tc.src); len(got) != 0 {
				t.Errorf("unexpected findings: %v", got)
			}
		})
	}
}

// TestAllowDoesNotLeak: the directive waives its own line, not the whole
// file.
func TestAllowDoesNotLeak(t *testing.T) {
	src := `package p
func f(m map[string]int) {
	for k := range m { //determlint:allow
		delete(m, k)
	}
	for range m {
	}
}`
	got := check(t, src)
	if len(got) != 1 || got[0].Rule != RuleMapRange || got[0].Pos.Line != 6 {
		t.Errorf("findings = %v, want one maprange at line 6", got)
	}
}

// TestMeasuredPackagesClean is the repo gate: the packages the determinism
// contract covers must lint clean (modulo explicit allow directives).
func TestMeasuredPackagesClean(t *testing.T) {
	for _, dir := range []string{"machine", "isa", "core"} {
		findings, err := CheckDir(filepath.Join("..", dir))
		if err != nil {
			t.Fatalf("%s: %v", dir, err)
		}
		for _, f := range findings {
			t.Errorf("%s: %s", dir, f)
		}
	}
}
