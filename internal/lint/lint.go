// Package lint implements determlint, a determinism checker for the
// measurement core. The simulator's whole claim is that a measurement is a
// pure function of (program, machine config, setup); any ambient
// nondeterminism in the measured paths — wall-clock reads, unseeded
// randomness, or iteration over Go's randomized map order — silently breaks
// that contract. determlint forbids three constructs in the measured
// packages (internal/machine, internal/isa, internal/core):
//
//   - time.Now (any wall-clock read),
//   - math/rand without a fixed seed: the package-global functions
//     (rand.Intn, rand.Seed, ...) and rand.NewSource with a non-constant
//     argument,
//   - range over a map value (iteration order is randomized by the
//     runtime).
//
// A finding can be waived with a `//determlint:allow` comment on the same
// or the immediately preceding line — the escape hatch for map iteration
// whose order provably cannot reach a measurement (e.g. arbitrary cache
// eviction).
//
// The checker is self-contained: it type-checks each package with a
// lenient importer that substitutes empty stub packages for all imports,
// so it needs nothing beyond the standard library. The trade-off is that
// types flowing in from other packages are unknown; a range over a map
// returned by another package's function is not recognized. Within the
// measured packages that limitation is immaterial — every map they range
// over is declared locally.
package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// AllowDirective waives the finding on its own or the following line.
const AllowDirective = "//determlint:allow"

// Finding is one determinism violation.
type Finding struct {
	Pos  token.Position
	Rule string // "timenow", "rand", or "maprange"
	Msg  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Pos, f.Rule, f.Msg)
}

// Rule names.
const (
	RuleTimeNow  = "timenow"
	RuleRand     = "rand"
	RuleMapRange = "maprange"
)

// CheckDir parses and checks every non-test Go file of the package in dir.
func CheckDir(dir string) ([]Finding, error) {
	fset := token.NewFileSet()
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil
	}
	return CheckFiles(fset, files), nil
}

// CheckFiles runs the determinism rules over one package's parsed files.
func CheckFiles(fset *token.FileSet, files []*ast.File) []Finding {
	info := &types.Info{
		Types: map[ast.Expr]types.TypeAndValue{},
		Uses:  map[*ast.Ident]types.Object{},
		Defs:  map[*ast.Ident]types.Object{},
	}
	conf := types.Config{
		Importer: &stubImporter{pkgs: map[string]*types.Package{}},
		Error:    func(error) {}, // stub imports guarantee errors; keep going
	}
	pkgName := files[0].Name.Name
	// Check ignores the returned error: with stub imports the check cannot
	// be complete, but Info is still populated for everything local.
	conf.Check(pkgName, fset, files, info) //nolint:errcheck

	var findings []Finding
	for _, f := range files {
		allowed := allowLines(fset, f)
		c := &checker{fset: fset, info: info, allowed: allowed}
		ast.Inspect(f, c.visit)
		findings = append(findings, c.findings...)
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i].Pos, findings[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Line < b.Line
	})
	return findings
}

// stubImporter returns an empty, complete package for every import path.
type stubImporter struct {
	pkgs map[string]*types.Package
}

func (im *stubImporter) Import(path string) (*types.Package, error) {
	if p, ok := im.pkgs[path]; ok {
		return p, nil
	}
	name := path
	if i := strings.LastIndex(path, "/"); i >= 0 {
		name = path[i+1:]
	}
	p := types.NewPackage(path, name)
	p.MarkComplete()
	im.pkgs[path] = p
	return p, nil
}

// allowLines collects the lines carrying an allow directive.
func allowLines(fset *token.FileSet, f *ast.File) map[int]bool {
	lines := map[int]bool{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if strings.HasPrefix(c.Text, AllowDirective) {
				lines[fset.Position(c.Pos()).Line] = true
			}
		}
	}
	return lines
}

type checker struct {
	fset     *token.FileSet
	info     *types.Info
	allowed  map[int]bool
	findings []Finding
}

func (c *checker) report(pos token.Pos, rule, msg string) {
	p := c.fset.Position(pos)
	if c.allowed[p.Line] || c.allowed[p.Line-1] {
		return
	}
	c.findings = append(c.findings, Finding{Pos: p, Rule: rule, Msg: msg})
}

func (c *checker) visit(n ast.Node) bool {
	switch n := n.(type) {
	case *ast.SelectorExpr:
		c.checkSelector(n)
	case *ast.CallExpr:
		c.checkRandSeed(n)
	case *ast.RangeStmt:
		c.checkRange(n)
	}
	return true
}

// globalRandFuncs are the math/rand (and /v2) package-level draw functions
// backed by the shared, unseeded source. Type names (Rand, Source) and the
// explicit constructors (New, NewSource, NewZipf, NewPCG, NewChaCha8) are
// deliberately absent.
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "IntN": true,
	"Int31": true, "Int31n": true, "Int32": true, "Int32N": true,
	"Int63": true, "Int63n": true, "Int64": true, "Int64N": true,
	"Uint": true, "UintN": true, "Uint32": true, "Uint32N": true,
	"Uint64": true, "Uint64N": true,
	"Float32": true, "Float64": true,
	"ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Read": true, "Seed": true, "N": true,
}

// checkRandSeed flags rand.NewSource calls whose seed is not a compile-time
// constant: a variable seed is how wall-clock seeding sneaks in.
func (c *checker) checkRandSeed(call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "NewSource" {
		return
	}
	switch c.pkgPathOf(sel) {
	case "math/rand", "math/rand/v2":
	default:
		return
	}
	for _, arg := range call.Args {
		if tv, ok := c.info.Types[arg]; !ok || tv.Value == nil {
			c.report(call.Pos(), RuleRand, "rand.NewSource seed is not a constant; fixed seeds only in measured paths")
			return
		}
	}
}

// pkgPathOf resolves sel's receiver to an imported package path, or "".
func (c *checker) pkgPathOf(sel *ast.SelectorExpr) string {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return ""
	}
	pn, ok := c.info.Uses[id].(*types.PkgName)
	if !ok {
		return ""
	}
	return pn.Imported().Path()
}

func (c *checker) checkSelector(sel *ast.SelectorExpr) {
	switch c.pkgPathOf(sel) {
	case "time":
		if sel.Sel.Name == "Now" {
			c.report(sel.Pos(), RuleTimeNow, "time.Now in a measured path; measurements must not read the wall clock")
		}
	case "math/rand", "math/rand/v2":
		// Constructing an explicitly seeded generator is fine; the
		// package-global draw functions use the shared unseeded source and
		// are not. Non-constant seeds are caught at the call site by
		// checkRandSeed, which sees the enclosing CallExpr.
		if globalRandFuncs[sel.Sel.Name] {
			c.report(sel.Pos(), RuleRand,
				fmt.Sprintf("rand.%s uses the shared unseeded generator; build one with rand.New(rand.NewSource(<const>))", sel.Sel.Name))
		}
	}
}

func (c *checker) checkRange(r *ast.RangeStmt) {
	tv, ok := c.info.Types[r.X]
	if !ok || tv.Type == nil {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
		c.report(r.Pos(), RuleMapRange, "map iteration order is randomized; sort the keys or annotate with "+AllowDirective)
	}
}
