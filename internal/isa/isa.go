// Package isa defines the instruction-set architecture of the simulated
// machines used throughout biaslab: a small 64-bit RISC with thirty-two
// general-purpose registers and a fixed 32-bit instruction encoding.
//
// The ISA is deliberately conventional (MIPS/RISC-V flavoured) so that the
// compiler, linker, loader and machine packages exercise the same mechanisms
// real toolchains do: pc-relative branches, absolute call targets patched by
// relocations, and byte-addressed loads and stores whose addresses are what
// the timing model keys its cache, TLB and aliasing behaviour on.
package isa

import "fmt"

// WordSize is the size in bytes of a machine word (and of every register).
const WordSize = 8

// InstSize is the size in bytes of one encoded instruction.
const InstSize = 4

// Reg names one of the 32 architectural registers.
type Reg uint8

// Register conventions. R0 is hardwired to zero. SP, FP, RA, and GP have the
// usual roles; A0..A5 carry arguments, RV carries return values, T* are
// caller-saved temporaries and S* are callee-saved.
const (
	R0 Reg = iota // always zero
	RV            // return value
	A0            // argument 0
	A1
	A2
	A3
	A4
	A5
	T0 // caller-saved temporaries
	T1
	T2
	T3
	T4
	T5
	T6
	T7
	S0 // callee-saved
	S1
	S2
	S3
	S4
	S5
	S6
	S7
	S8
	S9
	S10
	GP // global pointer
	AT // assembler temporary
	FP // frame pointer
	SP // stack pointer
	RA // return address
)

// NumRegs is the number of architectural registers.
const NumRegs = 32

var regNames = [NumRegs]string{
	"r0", "rv", "a0", "a1", "a2", "a3", "a4", "a5",
	"t0", "t1", "t2", "t3", "t4", "t5", "t6", "t7",
	"s0", "s1", "s2", "s3", "s4", "s5", "s6", "s7",
	"s8", "s9", "s10", "gp", "at", "fp", "sp", "ra",
}

func (r Reg) String() string {
	if int(r) < len(regNames) {
		return regNames[r]
	}
	return fmt.Sprintf("r%d?", uint8(r))
}

// Valid reports whether r names an architectural register.
func (r Reg) Valid() bool { return r < NumRegs }

// Op is an opcode.
type Op uint8

// Opcodes. The set is small but complete enough to compile the benchmark
// suite: three-register ALU ops, register-immediate ALU ops, loads and
// stores of 1, 2, 4 and 8 bytes, conditional branches, direct and indirect
// jumps, calls, and a tiny system-call surface for I/O and program exit.
const (
	OpInvalid Op = iota

	// ALU, register-register: rd ← rs1 op rs2.
	OpAdd
	OpSub
	OpMul
	OpDiv // signed quotient; divide by zero traps
	OpRem // signed remainder
	OpAnd
	OpOr
	OpXor
	OpSll // shift left logical (by rs2 mod 64)
	OpSrl // shift right logical
	OpSra // shift right arithmetic
	OpSlt // set if less than, signed: rd ← rs1 < rs2
	OpSltu

	// ALU, register-immediate: rd ← rs1 op signext(imm16).
	// Exception: the logical immediates (andi/ori/xori) and sltiu
	// zero-extend imm16, so 64-bit constants compose from 16-bit chunks.
	OpAddi
	OpMuli
	OpAndi
	OpOri
	OpXori
	OpSlli // shift amount in imm[5:0]
	OpSrli
	OpSrai
	OpSlti
	OpSltiu
	OpLui // rd ← zeroext(imm16) << 16 (no rs1)

	// Memory: loads sign-extend; unsigned variants zero-extend.
	// Address is rs1 + signext(imm16).
	OpLdb
	OpLdbu
	OpLdh
	OpLdhu
	OpLdw
	OpLdwu
	OpLdq
	OpStb
	OpSth
	OpStw
	OpStq

	// Control transfer. Branches compare rs1 with rs2 and are pc-relative
	// (imm16 counts instructions from the following instruction). OpJal
	// calls an absolute word target held in imm26 (patched by relocation);
	// OpJalr calls the address in rs1. Both write the return address to rd.
	OpBeq
	OpBne
	OpBlt
	OpBge
	OpBltu
	OpBgeu
	OpJmp  // unconditional pc-relative jump, imm16
	OpJal  // call absolute target, rd ← return address
	OpJalr // indirect call/return, rd ← return address, target rs1

	// System.
	OpSys // system call; rs1-selected function, see Sys* constants
	OpNop
	OpHalt

	opMax // sentinel
)

// NumOps is the number of defined opcodes, for sizing tables.
const NumOps = int(opMax)

var opNames = [...]string{
	OpInvalid: "invalid",
	OpAdd:     "add", OpSub: "sub", OpMul: "mul", OpDiv: "div", OpRem: "rem",
	OpAnd: "and", OpOr: "or", OpXor: "xor",
	OpSll: "sll", OpSrl: "srl", OpSra: "sra", OpSlt: "slt", OpSltu: "sltu",
	OpAddi: "addi", OpMuli: "muli", OpAndi: "andi", OpOri: "ori",
	OpXori: "xori", OpSlli: "slli", OpSrli: "srli", OpSrai: "srai",
	OpSlti: "slti", OpSltiu: "sltiu", OpLui: "lui",
	OpLdb: "ldb", OpLdbu: "ldbu", OpLdh: "ldh", OpLdhu: "ldhu",
	OpLdw: "ldw", OpLdwu: "ldwu", OpLdq: "ldq",
	OpStb: "stb", OpSth: "sth", OpStw: "stw", OpStq: "stq",
	OpBeq: "beq", OpBne: "bne", OpBlt: "blt", OpBge: "bge",
	OpBltu: "bltu", OpBgeu: "bgeu",
	OpJmp: "jmp", OpJal: "jal", OpJalr: "jalr",
	OpSys: "sys", OpNop: "nop", OpHalt: "halt",
}

func (op Op) String() string {
	if int(op) < len(opNames) && opNames[op] != "" {
		return opNames[op]
	}
	return fmt.Sprintf("op%d?", uint8(op))
}

// System-call numbers, passed in register A0.
const (
	SysExit     = 0 // terminate; exit code in A1
	SysPutInt   = 1 // print A1 as a decimal integer plus newline
	SysPutChar  = 2 // print A1 as a byte
	SysChecksum = 3 // mix A1 into the program checksum (self-validation)
	SysCycles   = 4 // RV ← current cycle count (reading the TSC)
)

// Class groups opcodes by their execution resource; the timing model charges
// different latencies and applies different hazards per class.
type Class uint8

const (
	ClassALU Class = iota
	ClassMul
	ClassDiv
	ClassLoad
	ClassStore
	ClassBranch // conditional branches
	ClassJump   // unconditional jumps, calls, returns
	ClassSys
	ClassNop
)

var opClasses = [...]Class{
	OpInvalid: ClassNop,
	OpAdd:     ClassALU, OpSub: ClassALU, OpMul: ClassMul, OpDiv: ClassDiv,
	OpRem: ClassDiv, OpAnd: ClassALU, OpOr: ClassALU, OpXor: ClassALU,
	OpSll: ClassALU, OpSrl: ClassALU, OpSra: ClassALU,
	OpSlt: ClassALU, OpSltu: ClassALU,
	OpAddi: ClassALU, OpMuli: ClassMul, OpAndi: ClassALU, OpOri: ClassALU,
	OpXori: ClassALU, OpSlli: ClassALU, OpSrli: ClassALU, OpSrai: ClassALU,
	OpSlti: ClassALU, OpSltiu: ClassALU, OpLui: ClassALU,
	OpLdb: ClassLoad, OpLdbu: ClassLoad, OpLdh: ClassLoad, OpLdhu: ClassLoad,
	OpLdw: ClassLoad, OpLdwu: ClassLoad, OpLdq: ClassLoad,
	OpStb: ClassStore, OpSth: ClassStore, OpStw: ClassStore, OpStq: ClassStore,
	OpBeq: ClassBranch, OpBne: ClassBranch, OpBlt: ClassBranch,
	OpBge: ClassBranch, OpBltu: ClassBranch, OpBgeu: ClassBranch,
	OpJmp: ClassJump, OpJal: ClassJump, OpJalr: ClassJump,
	OpSys: ClassSys, OpNop: ClassNop, OpHalt: ClassSys,
}

// Class returns the execution class of op.
func (op Op) Class() Class {
	if int(op) < len(opClasses) {
		return opClasses[op]
	}
	return ClassNop
}

// IsBranch reports whether op is a conditional branch.
func (op Op) IsBranch() bool { return op.Class() == ClassBranch }

// IsLoad reports whether op reads memory.
func (op Op) IsLoad() bool { return op.Class() == ClassLoad }

// IsStore reports whether op writes memory.
func (op Op) IsStore() bool { return op.Class() == ClassStore }

// MemBytes returns the access width in bytes of a load or store opcode, or 0.
func (op Op) MemBytes() int {
	switch op {
	case OpLdb, OpLdbu, OpStb:
		return 1
	case OpLdh, OpLdhu, OpSth:
		return 2
	case OpLdw, OpLdwu, OpStw:
		return 4
	case OpLdq, OpStq:
		return 8
	}
	return 0
}

// ZeroExtImm reports whether op's imm16 is zero-extended rather than
// sign-extended: the logical immediates, sltiu, and lui.
func (op Op) ZeroExtImm() bool {
	switch op {
	case OpAndi, OpOri, OpXori, OpSltiu, OpLui:
		return true
	}
	return false
}

// HasImm reports whether op's encoding carries an immediate field.
func (op Op) HasImm() bool {
	switch op.Class() {
	case ClassLoad, ClassStore, ClassBranch:
		return true
	}
	switch op {
	case OpAddi, OpMuli, OpAndi, OpOri, OpXori, OpSlli, OpSrli, OpSrai,
		OpSlti, OpSltiu, OpLui, OpJmp, OpJal:
		return true
	}
	return false
}

// Inst is one decoded instruction. Imm holds the sign-extended immediate for
// imm16 formats and the raw 26-bit word offset for OpJal.
type Inst struct {
	Op  Op
	Rd  Reg
	Rs1 Reg
	Rs2 Reg
	Imm int32
}

// String renders the instruction in assembler-like syntax.
func (in Inst) String() string {
	switch in.Op.Class() {
	case ClassLoad:
		return fmt.Sprintf("%s %s, %d(%s)", in.Op, in.Rd, in.Imm, in.Rs1)
	case ClassStore:
		return fmt.Sprintf("%s %s, %d(%s)", in.Op, in.Rs2, in.Imm, in.Rs1)
	case ClassBranch:
		return fmt.Sprintf("%s %s, %s, %d", in.Op, in.Rs1, in.Rs2, in.Imm)
	}
	switch in.Op {
	case OpNop, OpHalt:
		return in.Op.String()
	case OpLui:
		return fmt.Sprintf("lui %s, %d", in.Rd, in.Imm)
	case OpJmp:
		return fmt.Sprintf("jmp %d", in.Imm)
	case OpJal:
		return fmt.Sprintf("jal %s, %d", in.Rd, in.Imm)
	case OpJalr:
		return fmt.Sprintf("jalr %s, %s", in.Rd, in.Rs1)
	case OpSys:
		return "sys"
	}
	if in.Op.HasImm() {
		return fmt.Sprintf("%s %s, %s, %d", in.Op, in.Rd, in.Rs1, in.Imm)
	}
	return fmt.Sprintf("%s %s, %s, %s", in.Op, in.Rd, in.Rs1, in.Rs2)
}

// MixChecksum folds v into sum with a 64-bit FNV-style mix. It defines the
// semantics of the SysChecksum system call: the IR interpreter and every
// machine model use this same function, so a program's checksum is identical
// across the oracle and all simulated machines.
func MixChecksum(sum, v uint64) uint64 {
	sum ^= v
	sum *= 1099511628211
	sum ^= sum >> 29
	return sum
}
