package isa

import (
	"encoding/binary"
	"fmt"
)

// Instruction encoding, little-endian 32-bit words:
//
//	[31:26] opcode (6 bits)
//	[25:21] rd
//	[20:16] rs1
//	[15:11] rs2      (register formats)
//	[15:0]  imm16    (immediate formats, signed)
//	[25:0]  imm26    (OpJal only: absolute word address / OpJmp long form)
//
// OpJal steals the rd field: the return-address register for calls is
// architecturally RA, so imm26 occupies bits [25:0].

// Imm16 bounds for encodability checks.
const (
	MinImm16 = -1 << 15
	MaxImm16 = 1<<15 - 1
	MaxImm26 = 1<<26 - 1
)

// FitsImm16 reports whether v is representable as a signed 16-bit immediate.
func FitsImm16(v int64) bool { return v >= MinImm16 && v <= MaxImm16 }

// Encode packs in into its 32-bit representation. It panics if a field is
// out of range; the compiler and assembler are responsible for ranges, and
// an out-of-range field reaching here is a toolchain bug, not user error.
func Encode(in Inst) uint32 {
	if in.Op >= opMax {
		panic(fmt.Sprintf("isa: encode: bad opcode %d", in.Op))
	}
	w := uint32(in.Op) << 26
	switch in.Op {
	case OpJal:
		if in.Imm < 0 || in.Imm > MaxImm26 {
			panic(fmt.Sprintf("isa: encode: jal target %d out of range", in.Imm))
		}
		return w | uint32(in.Imm)
	case OpNop, OpHalt:
		return w
	}
	checkReg := func(r Reg, field string) {
		if !r.Valid() {
			panic(fmt.Sprintf("isa: encode: bad %s register %d in %s", field, r, in.Op))
		}
	}
	checkReg(in.Rd, "rd")
	checkReg(in.Rs1, "rs1")
	w |= uint32(in.Rd) << 21
	w |= uint32(in.Rs1) << 16
	if in.Op.HasImm() {
		if in.Op.ZeroExtImm() {
			if in.Imm < 0 || in.Imm > 0xffff {
				panic(fmt.Sprintf("isa: encode: unsigned imm %d out of range in %s", in.Imm, in.Op))
			}
		} else if !FitsImm16(int64(in.Imm)) {
			panic(fmt.Sprintf("isa: encode: imm %d out of range in %s", in.Imm, in.Op))
		}
		w |= uint32(uint16(in.Imm))
		if in.Op.Class() == ClassStore || in.Op.Class() == ClassBranch {
			// Stores and branches also need rs2; it shares no bits with
			// imm16 in our format, so it rides in rd's slot semantics:
			// stores/branches have no destination, so rd encodes rs2.
			checkReg(in.Rs2, "rs2")
			w &^= uint32(31) << 21
			w |= uint32(in.Rs2) << 21
		}
		return w
	}
	checkReg(in.Rs2, "rs2")
	w |= uint32(in.Rs2) << 11
	return w
}

// Decode unpacks a 32-bit instruction word.
func Decode(w uint32) Inst {
	op := Op(w >> 26)
	if op >= opMax {
		return Inst{Op: OpInvalid}
	}
	var in Inst
	in.Op = op
	switch op {
	case OpJal:
		in.Rd = RA
		in.Imm = int32(w & MaxImm26)
		return in
	case OpNop, OpHalt:
		return in
	}
	in.Rs1 = Reg(w >> 16 & 31)
	if op.HasImm() {
		if op.ZeroExtImm() {
			in.Imm = int32(uint16(w))
		} else {
			in.Imm = int32(int16(uint16(w)))
		}
		if op.Class() == ClassStore || op.Class() == ClassBranch {
			in.Rs2 = Reg(w >> 21 & 31)
		} else {
			in.Rd = Reg(w >> 21 & 31)
		}
		return in
	}
	in.Rd = Reg(w >> 21 & 31)
	in.Rs2 = Reg(w >> 11 & 31)
	return in
}

// EncodeTo appends the little-endian encoding of in to buf.
func EncodeTo(buf []byte, in Inst) []byte {
	return binary.LittleEndian.AppendUint32(buf, Encode(in))
}

// DecodeBytes decodes the instruction at the start of b.
func DecodeBytes(b []byte) Inst {
	return Decode(binary.LittleEndian.Uint32(b))
}

// Disassemble renders the code bytes as one instruction per line, prefixed
// with the address each would occupy starting at base.
func Disassemble(code []byte, base uint64) string {
	var out []byte
	for i := 0; i+InstSize <= len(code); i += InstSize {
		in := DecodeBytes(code[i:])
		out = append(out, fmt.Sprintf("%08x: %s\n", base+uint64(i), in)...)
	}
	return string(out)
}
