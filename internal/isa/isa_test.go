package isa

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestRegString(t *testing.T) {
	cases := map[Reg]string{R0: "r0", RV: "rv", A0: "a0", SP: "sp", RA: "ra", FP: "fp", GP: "gp", T0: "t0", S10: "s10"}
	for r, want := range cases {
		if got := r.String(); got != want {
			t.Errorf("Reg(%d).String() = %q, want %q", r, got, want)
		}
	}
	if got := Reg(40).String(); !strings.Contains(got, "?") {
		t.Errorf("invalid reg rendered as %q, want marker", got)
	}
}

func TestOpString(t *testing.T) {
	if OpAdd.String() != "add" || OpLdq.String() != "ldq" || OpBgeu.String() != "bgeu" {
		t.Fatalf("opcode names wrong: %s %s %s", OpAdd, OpLdq, OpBgeu)
	}
	if got := Op(63).String(); !strings.Contains(got, "?") {
		t.Errorf("invalid op rendered as %q", got)
	}
}

func TestOpClassification(t *testing.T) {
	for _, tc := range []struct {
		op    Op
		class Class
		load  bool
		store bool
		br    bool
		bytes int
	}{
		{OpAdd, ClassALU, false, false, false, 0},
		{OpMul, ClassMul, false, false, false, 0},
		{OpDiv, ClassDiv, false, false, false, 0},
		{OpRem, ClassDiv, false, false, false, 0},
		{OpLdb, ClassLoad, true, false, false, 1},
		{OpLdhu, ClassLoad, true, false, false, 2},
		{OpLdw, ClassLoad, true, false, false, 4},
		{OpLdq, ClassLoad, true, false, false, 8},
		{OpStb, ClassStore, false, true, false, 1},
		{OpStq, ClassStore, false, true, false, 8},
		{OpBeq, ClassBranch, false, false, true, 0},
		{OpJal, ClassJump, false, false, false, 0},
		{OpSys, ClassSys, false, false, false, 0},
		{OpNop, ClassNop, false, false, false, 0},
	} {
		if tc.op.Class() != tc.class {
			t.Errorf("%s.Class() = %v, want %v", tc.op, tc.op.Class(), tc.class)
		}
		if tc.op.IsLoad() != tc.load || tc.op.IsStore() != tc.store || tc.op.IsBranch() != tc.br {
			t.Errorf("%s load/store/branch flags wrong", tc.op)
		}
		if tc.op.MemBytes() != tc.bytes {
			t.Errorf("%s.MemBytes() = %d, want %d", tc.op, tc.op.MemBytes(), tc.bytes)
		}
	}
}

func TestHasImm(t *testing.T) {
	withImm := []Op{OpAddi, OpMuli, OpAndi, OpOri, OpXori, OpSlli, OpSrli, OpSrai, OpSlti, OpLui, OpLdb, OpLdq, OpStb, OpStq, OpBeq, OpBgeu, OpJmp, OpJal}
	withoutImm := []Op{OpAdd, OpSub, OpMul, OpDiv, OpSltu, OpJalr, OpSys, OpNop, OpHalt}
	for _, op := range withImm {
		if !op.HasImm() {
			t.Errorf("%s.HasImm() = false, want true", op)
		}
	}
	for _, op := range withoutImm {
		if op.HasImm() {
			t.Errorf("%s.HasImm() = true, want false", op)
		}
	}
}

func TestEncodeDecodeExamples(t *testing.T) {
	cases := []Inst{
		{Op: OpAdd, Rd: T0, Rs1: A0, Rs2: A1},
		{Op: OpSub, Rd: S3, Rs1: S4, Rs2: S5},
		{Op: OpAddi, Rd: SP, Rs1: SP, Imm: -64},
		{Op: OpMuli, Rd: T1, Rs1: T1, Imm: 1000},
		{Op: OpLui, Rd: GP, Imm: 0x4abc},
		{Op: OpLdq, Rd: T2, Rs1: FP, Imm: -8},
		{Op: OpLdbu, Rd: T3, Rs1: A0, Imm: 32767},
		{Op: OpStq, Rs1: SP, Rs2: RA, Imm: 8},
		{Op: OpStb, Rs1: GP, Rs2: T0, Imm: -32768},
		{Op: OpBeq, Rs1: A0, Rs2: R0, Imm: 12},
		{Op: OpBlt, Rs1: T4, Rs2: T5, Imm: -3},
		{Op: OpJmp, Imm: 200},
		{Op: OpJal, Rd: RA, Imm: 123456},
		{Op: OpJalr, Rd: R0, Rs1: RA},
		{Op: OpSys, Rs1: A0},
		{Op: OpNop},
		{Op: OpHalt},
	}
	for _, in := range cases {
		got := Decode(Encode(in))
		if got != in {
			t.Errorf("round trip %v → %v", in, got)
		}
	}
}

func TestEncodePanicsOutOfRange(t *testing.T) {
	mustPanic := func(name string, in Inst) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		Encode(in)
	}
	mustPanic("imm too big", Inst{Op: OpAddi, Rd: T0, Rs1: T0, Imm: 40000})
	mustPanic("imm too small", Inst{Op: OpAddi, Rd: T0, Rs1: T0, Imm: -40000})
	mustPanic("jal negative", Inst{Op: OpJal, Rd: RA, Imm: -1})
	mustPanic("bad reg", Inst{Op: OpAdd, Rd: Reg(33), Rs1: T0, Rs2: T1})
	mustPanic("bad op", Inst{Op: opMax})
}

func TestFitsImm16(t *testing.T) {
	for _, tc := range []struct {
		v  int64
		ok bool
	}{{0, true}, {32767, true}, {-32768, true}, {32768, false}, {-32769, false}, {1 << 40, false}} {
		if FitsImm16(tc.v) != tc.ok {
			t.Errorf("FitsImm16(%d) = %v, want %v", tc.v, !tc.ok, tc.ok)
		}
	}
}

// randInst produces a valid random instruction for property testing.
func randInst(r *rand.Rand) Inst {
	ops := []Op{OpAdd, OpSub, OpMul, OpDiv, OpRem, OpAnd, OpOr, OpXor, OpSll,
		OpSrl, OpSra, OpSlt, OpSltu, OpAddi, OpMuli, OpAndi, OpOri, OpXori,
		OpSlli, OpSrli, OpSrai, OpSlti, OpLui, OpLdb, OpLdbu, OpLdh, OpLdhu,
		OpLdw, OpLdwu, OpLdq, OpStb, OpSth, OpStw, OpStq, OpBeq, OpBne,
		OpBlt, OpBge, OpBltu, OpBgeu, OpJmp, OpJal, OpJalr, OpSys, OpNop, OpHalt}
	op := ops[r.Intn(len(ops))]
	in := Inst{Op: op}
	switch op {
	case OpJal:
		in.Rd = RA
		in.Imm = int32(r.Intn(MaxImm26 + 1))
		return in
	case OpNop, OpHalt:
		return in
	}
	reg := func() Reg { return Reg(r.Intn(NumRegs)) }
	in.Rs1 = reg()
	if op.HasImm() {
		if op.ZeroExtImm() {
			in.Imm = int32(uint16(r.Uint32()))
		} else {
			in.Imm = int32(int16(r.Uint32()))
		}
		if op.Class() == ClassStore || op.Class() == ClassBranch {
			in.Rs2 = reg()
		} else {
			in.Rd = reg()
		}
		return in
	}
	in.Rd, in.Rs2 = reg(), reg()
	return in
}

func TestEncodeDecodeProperty(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	f := func(seed int64) bool {
		r.Seed(seed)
		for i := 0; i < 64; i++ {
			in := randInst(r)
			if Decode(Encode(in)) != in {
				t.Logf("failed round trip: %v", in)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeInvalidOpcode(t *testing.T) {
	// An opcode beyond opMax decodes as OpInvalid rather than panicking.
	w := uint32(63) << 26
	if got := Decode(w); got.Op != OpInvalid {
		t.Errorf("Decode(bad) = %v, want OpInvalid", got)
	}
}

func TestEncodeToAndDecodeBytes(t *testing.T) {
	in := Inst{Op: OpAddi, Rd: T0, Rs1: SP, Imm: 42}
	buf := EncodeTo(nil, in)
	if len(buf) != InstSize {
		t.Fatalf("EncodeTo produced %d bytes, want %d", len(buf), InstSize)
	}
	if got := DecodeBytes(buf); got != in {
		t.Errorf("DecodeBytes = %v, want %v", got, in)
	}
}

func TestDisassemble(t *testing.T) {
	var code []byte
	code = EncodeTo(code, Inst{Op: OpAddi, Rd: T0, Rs1: R0, Imm: 7})
	code = EncodeTo(code, Inst{Op: OpStq, Rs1: SP, Rs2: T0, Imm: 0})
	code = EncodeTo(code, Inst{Op: OpHalt})
	text := Disassemble(code, 0x1000)
	for _, want := range []string{"00001000:", "addi t0, r0, 7", "stq t0, 0(sp)", "00001008: halt"} {
		if !strings.Contains(text, want) {
			t.Errorf("disassembly missing %q:\n%s", want, text)
		}
	}
}

func TestInstString(t *testing.T) {
	cases := map[string]Inst{
		"add t0, a0, a1":   {Op: OpAdd, Rd: T0, Rs1: A0, Rs2: A1},
		"ldq t2, -8(fp)":   {Op: OpLdq, Rd: T2, Rs1: FP, Imm: -8},
		"beq a0, r0, 12":   {Op: OpBeq, Rs1: A0, Rs2: R0, Imm: 12},
		"lui gp, 19132":    {Op: OpLui, Rd: GP, Imm: 19132},
		"jal ra, 123456":   {Op: OpJal, Rd: RA, Imm: 123456},
		"jalr r0, ra":      {Op: OpJalr, Rd: R0, Rs1: RA},
		"addi sp, sp, -64": {Op: OpAddi, Rd: SP, Rs1: SP, Imm: -64},
	}
	for want, in := range cases {
		if got := in.String(); got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
}
