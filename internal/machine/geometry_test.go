package machine

import "testing"

// The static geometry accessors exist so the bias oracle can reproduce the
// simulator's address→set arithmetic without building a Machine. These tests
// pin them to the live constructors: every cache/TLB shape used by the
// shipped configs (plus deliberately odd shapes) must produce identical
// sets/ways/line/page parameters and identical set indices.

func TestCacheGeometryMatchesNewCache(t *testing.T) {
	cfgs := []CacheConfig{
		PentiumIV().L1I, PentiumIV().L1D, PentiumIV().L2,
		Core2().L1I, Core2().L1D, Core2().L2,
		M5O3().L1I, M5O3().L1D, M5O3().L2,
		{Name: "tiny", SizeKB: 1, LineSize: 32, Ways: 2},
		{Name: "defaultline", SizeKB: 64, Ways: 8}, // LineSize 0 → 64
		{Name: "wide", SizeKB: 64, LineSize: 128, Ways: 16},
	}
	for _, cfg := range cfgs {
		c := NewCache(cfg)
		g := cfg.Geometry()
		if g.Sets != c.Sets() {
			t.Errorf("%s: Geometry().Sets = %d, cache has %d", cfg.Name, g.Sets, c.Sets())
		}
		if g.LineSize != c.LineSize() {
			t.Errorf("%s: Geometry().LineSize = %d, cache has %d", cfg.Name, g.LineSize, c.LineSize())
		}
		if g.Ways != cfg.Ways {
			t.Errorf("%s: Geometry().Ways = %d, want %d", cfg.Name, g.Ways, cfg.Ways)
		}
		for _, addr := range probeAddrs(uint64(g.LineSize), uint64(g.Sets)) {
			if got, want := g.SetOf(addr), c.SetOf(addr); got != want {
				t.Fatalf("%s: SetOf(%#x) = %d, cache says %d", cfg.Name, addr, got, want)
			}
		}
	}
}

func TestTLBGeometryMatchesNewTLB(t *testing.T) {
	cases := []struct{ entries, pageSize int }{
		{PentiumIV().ITLBEntries, PentiumIV().PageSize},
		{PentiumIV().DTLBEntries, PentiumIV().PageSize},
		{Core2().ITLBEntries, Core2().PageSize},
		{M5O3().DTLBEntries, M5O3().PageSize},
		{4, 4096},
		{2, 4096}, // below associativity → rounded up to one set
		{128, 8192},
	}
	for _, tc := range cases {
		tlb := NewTLB(tc.entries, tc.pageSize)
		g := TLBGeom(tc.entries, tc.pageSize)
		if got := 1 << tlb.setBits; g.Sets != got {
			t.Errorf("TLB(%d,%d): Geometry Sets = %d, TLB has %d", tc.entries, tc.pageSize, g.Sets, got)
		}
		if got := 1 << tlb.pageBits; g.PageSize != got {
			t.Errorf("TLB(%d,%d): Geometry PageSize = %d, TLB has %d", tc.entries, tc.pageSize, g.PageSize, got)
		}
		if g.Ways != tlb.ways {
			t.Errorf("TLB(%d,%d): Geometry Ways = %d, TLB has %d", tc.entries, tc.pageSize, g.Ways, tlb.ways)
		}
		for _, addr := range probeAddrs(uint64(g.PageSize), uint64(g.Sets)) {
			page := addr >> tlb.pageBits
			want := int(page & (1<<tlb.setBits - 1))
			if got := g.SetOf(addr); got != want {
				t.Fatalf("TLB(%d,%d): SetOf(%#x) = %d, TLB indexes %d", tc.entries, tc.pageSize, addr, got, want)
			}
		}
	}
}

// probeAddrs yields addresses that exercise unit boundaries, set wraparound
// and high-address bits for a unit (line/page) size and set count.
func probeAddrs(unit, sets uint64) []uint64 {
	span := unit * sets
	return []uint64{
		0, 1, unit - 1, unit, unit + 1,
		span - 1, span, span + unit/2,
		3*span + 7*unit + 13,
		0x00100000, 0x00ffffc0, 0xfedcba9876543210 % (1 << 24),
	}
}
