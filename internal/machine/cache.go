package machine

import "fmt"

// Cache is a set-associative cache model with true-LRU replacement. Only
// tags are modelled — the simulator's flat memory holds the data — because
// timing, not contents, is what the experiments measure.
//
// Two throughput refinements keep the model bit-identical while making the
// simulation hot path cheap: validity is tracked with per-entry generation
// numbers so Reset is O(1) instead of O(lines), and each set remembers its
// most-recently-used way so the common consecutive-touch case skips the
// associative scan entirely.
type Cache struct {
	name     string
	lineBits uint // log2(line size)
	setBits  uint // log2(number of sets)
	ways     int  // associativity
	tags     []uint64
	// gens marks live entries: a way is valid iff gens[i] equals the
	// cache's current generation. Reset invalidates every line at once by
	// bumping gen.
	gens []uint32
	gen  uint32
	// age holds per-way LRU ranks (0 = most recent). Ages of invalid ways
	// may be stale across generations; they are never consulted (victim
	// selection prefers invalid ways before comparing ages, and fills
	// always restart the installed way at rank 0), so staleness cannot
	// change any replacement decision.
	age []uint8
	// mru caches the most-recently-used way index of each set. That way is
	// by construction at LRU rank 0, so a hit on it needs no rank updates.
	mru []uint8

	hits   uint64
	misses uint64
}

// CacheConfig parameterizes a cache.
type CacheConfig struct {
	Name     string
	SizeKB   int
	LineSize int
	Ways     int
}

// NewCache builds a cache; Size = sets × ways × line. Geometry must satisfy
// CacheConfig.validate (see Config.Validate); the panic here is an internal
// invariant guard for configurations that bypassed boundary validation,
// because a silently truncated set count would corrupt the set mapping that
// the bias experiments measure.
func NewCache(cfg CacheConfig) *Cache {
	if err := cfg.validate(); err != nil {
		panic(fmt.Sprintf("machine: unvalidated config reached NewCache: %v", err))
	}
	line := cfg.LineSize
	if line == 0 {
		line = 64
	}
	sets := cfg.SizeKB * 1024 / (line * cfg.Ways)
	c := &Cache{
		name:     cfg.Name,
		lineBits: log2u(uint64(line)),
		setBits:  log2u(uint64(sets)),
		ways:     cfg.Ways,
		tags:     make([]uint64, sets*cfg.Ways),
		gens:     make([]uint32, sets*cfg.Ways),
		gen:      1,
		age:      make([]uint8, sets*cfg.Ways),
		mru:      make([]uint8, sets),
	}
	return c
}

func log2u(v uint64) uint {
	var n uint
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}

// Sets returns the number of sets.
func (c *Cache) Sets() int { return 1 << c.setBits }

// LineSize returns the line size in bytes.
func (c *Cache) LineSize() int { return 1 << c.lineBits }

// SetOf returns the set index an address maps to (useful for diagnostics
// and causal analysis).
func (c *Cache) SetOf(addr uint64) int {
	return int(addr >> c.lineBits & (1<<c.setBits - 1))
}

// Access looks up the line containing addr, filling it on miss. It returns
// true on hit.
func (c *Cache) Access(addr uint64) bool {
	line := addr >> c.lineBits
	set := int(line & (1<<c.setBits - 1))
	tag := line >> c.setBits
	base := set * c.ways
	// MRU fast path: the remembered way is already at rank 0, so a hit on
	// it changes no LRU state at all.
	if i := base + int(c.mru[set]); c.gens[i] == c.gen && c.tags[i] == tag {
		c.hits++
		return true
	}
	// Hit path.
	for w := 0; w < c.ways; w++ {
		i := base + w
		if c.gens[i] == c.gen && c.tags[i] == tag {
			c.touch(set, base, w)
			c.hits++
			return true
		}
	}
	// Miss: evict LRU (highest age, preferring invalid ways).
	c.misses++
	c.install(set, base, tag)
	return false
}

// install picks a victim way for tag in set and fills it as MRU.
func (c *Cache) install(set, base int, tag uint64) {
	victim := 0
	var worst uint8
	for w := 0; w < c.ways; w++ {
		i := base + w
		if c.gens[i] != c.gen {
			victim = w
			break
		}
		if c.age[i] >= worst {
			worst = c.age[i]
			victim = w
		}
	}
	i := base + victim
	c.tags[i] = tag
	c.gens[i] = c.gen
	c.fill(set, base, victim)
}

// Prefetch fills the line holding addr as most-recently-used without
// touching the hit/miss statistics — the model of a hardware next-line
// prefetcher's fill (prefetches are not demand accesses).
func (c *Cache) Prefetch(addr uint64) {
	line := addr >> c.lineBits
	set := int(line & (1<<c.setBits - 1))
	tag := line >> c.setBits
	base := set * c.ways
	if i := base + int(c.mru[set]); c.gens[i] == c.gen && c.tags[i] == tag {
		return
	}
	for w := 0; w < c.ways; w++ {
		i := base + w
		if c.gens[i] == c.gen && c.tags[i] == tag {
			c.touch(set, base, w)
			return
		}
	}
	c.install(set, base, tag)
}

// Contains reports whether the line holding addr is resident, without
// updating LRU or counters.
func (c *Cache) Contains(addr uint64) bool {
	line := addr >> c.lineBits
	set := int(line & (1<<c.setBits - 1))
	tag := line >> c.setBits
	base := set * c.ways
	for w := 0; w < c.ways; w++ {
		i := base + w
		if c.gens[i] == c.gen && c.tags[i] == tag {
			return true
		}
	}
	return false
}

func (c *Cache) touch(set, base, mru int) {
	pivot := c.age[base+mru]
	for w := 0; w < c.ways; w++ {
		if c.age[base+w] < pivot {
			c.age[base+w]++
		}
	}
	c.age[base+mru] = 0
	c.mru[set] = uint8(mru)
}

// fill installs a brand-new line as MRU: every other way ages, because the
// new line has no prior rank to pivot on.
func (c *Cache) fill(set, base, mru int) {
	for w := 0; w < c.ways; w++ {
		if w != mru && c.age[base+w] < uint8(c.ways) {
			c.age[base+w]++
		}
	}
	c.age[base+mru] = 0
	c.mru[set] = uint8(mru)
}

// Stats returns cumulative hits and misses.
func (c *Cache) Stats() (hits, misses uint64) { return c.hits, c.misses }

// Reset invalidates all lines and clears statistics in O(1): bumping the
// generation orphans every entry at once. The wrap case (once per 2^32
// resets) falls back to an explicit sweep so an entry from generation g can
// never be mistaken for one from g + 2^32.
func (c *Cache) Reset() {
	c.gen++
	if c.gen == 0 {
		for i := range c.gens {
			c.gens[i] = 0
		}
		c.gen = 1
	}
	c.hits, c.misses = 0, 0
}

// TLB is a 4-way set-associative translation buffer with LRU replacement
// (real TLBs are set-associative for exactly the lookup-cost reason this
// model is), modelled the same tags-only way as Cache — including the
// generation-based O(1) Reset and the per-set MRU shortcut.
type TLB struct {
	pageBits uint
	setBits  uint
	ways     int
	pages    []uint64
	gens     []uint32
	gen      uint32
	age      []uint8
	mru      []uint8
	hits     uint64
	misses   uint64
}

// tlbWays is the associativity of every TLB.
const tlbWays = 4

// NewTLB builds a TLB with the given entry count and page size. Entry
// counts below the associativity are rounded up to one full set. Geometry
// must satisfy validateTLB (see Config.Validate); like NewCache, the panic
// is an invariant guard against unvalidated configs, not the validation
// surface itself.
func NewTLB(entries, pageSize int) *TLB {
	if err := validateTLB(entries, pageSize); err != nil {
		panic(fmt.Sprintf("machine: unvalidated config reached NewTLB: %v", err))
	}
	if entries < tlbWays {
		entries = tlbWays
	}
	sets := entries / tlbWays
	return &TLB{
		pageBits: log2u(uint64(pageSize)),
		setBits:  log2u(uint64(sets)),
		ways:     tlbWays,
		pages:    make([]uint64, sets*tlbWays),
		gens:     make([]uint32, sets*tlbWays),
		gen:      1,
		age:      make([]uint8, sets*tlbWays),
		mru:      make([]uint8, sets),
	}
}

// Access translates addr, returning true on TLB hit.
func (t *TLB) Access(addr uint64) bool {
	page := addr >> t.pageBits
	set := int(page & (1<<t.setBits - 1))
	base := set * t.ways
	if i := base + int(t.mru[set]); t.gens[i] == t.gen && t.pages[i] == page {
		t.hits++
		return true
	}
	for w := 0; w < t.ways; w++ {
		i := base + w
		if t.gens[i] == t.gen && t.pages[i] == page {
			t.touch(set, base, w)
			t.hits++
			return true
		}
	}
	t.misses++
	victim := 0
	var worst uint8
	for w := 0; w < t.ways; w++ {
		i := base + w
		if t.gens[i] != t.gen {
			victim = w
			break
		}
		if t.age[i] >= worst {
			worst = t.age[i]
			victim = w
		}
	}
	i := base + victim
	t.pages[i] = page
	t.gens[i] = t.gen
	t.fill(set, base, victim)
	return false
}

func (t *TLB) touch(set, base, mru int) {
	pivot := t.age[base+mru]
	for w := 0; w < t.ways; w++ {
		if t.age[base+w] < pivot {
			t.age[base+w]++
		}
	}
	t.age[base+mru] = 0
	t.mru[set] = uint8(mru)
}

// fill installs a brand-new translation as MRU, aging the rest of its set.
func (t *TLB) fill(set, base, mru int) {
	for w := 0; w < t.ways; w++ {
		if w != mru && t.age[base+w] < uint8(t.ways) {
			t.age[base+w]++
		}
	}
	t.age[base+mru] = 0
	t.mru[set] = uint8(mru)
}

// Stats returns cumulative hits and misses.
func (t *TLB) Stats() (hits, misses uint64) { return t.hits, t.misses }

// Reset invalidates all entries and clears statistics in O(1), the same
// generation-bump scheme as Cache.Reset.
func (t *TLB) Reset() {
	t.gen++
	if t.gen == 0 {
		for i := range t.gens {
			t.gens[i] = 0
		}
		t.gen = 1
	}
	t.hits, t.misses = 0, 0
}
