package machine

// Cache is a set-associative cache model with true-LRU replacement. Only
// tags are modelled — the simulator's flat memory holds the data — because
// timing, not contents, is what the experiments measure.
type Cache struct {
	name     string
	lineBits uint // log2(line size)
	setBits  uint // log2(number of sets)
	ways     int  // associativity
	tags     []uint64
	valid    []bool
	// age holds per-way LRU ranks (0 = most recent).
	age []uint8

	hits   uint64
	misses uint64
}

// CacheConfig parameterizes a cache.
type CacheConfig struct {
	Name     string
	SizeKB   int
	LineSize int
	Ways     int
}

// NewCache builds a cache; Size = sets × ways × line.
func NewCache(cfg CacheConfig) *Cache {
	line := cfg.LineSize
	if line == 0 {
		line = 64
	}
	sets := cfg.SizeKB * 1024 / (line * cfg.Ways)
	c := &Cache{
		name:     cfg.Name,
		lineBits: log2u(uint64(line)),
		setBits:  log2u(uint64(sets)),
		ways:     cfg.Ways,
		tags:     make([]uint64, sets*cfg.Ways),
		valid:    make([]bool, sets*cfg.Ways),
		age:      make([]uint8, sets*cfg.Ways),
	}
	return c
}

func log2u(v uint64) uint {
	var n uint
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}

// Sets returns the number of sets.
func (c *Cache) Sets() int { return 1 << c.setBits }

// LineSize returns the line size in bytes.
func (c *Cache) LineSize() int { return 1 << c.lineBits }

// SetOf returns the set index an address maps to (useful for diagnostics
// and causal analysis).
func (c *Cache) SetOf(addr uint64) int {
	return int(addr >> c.lineBits & (1<<c.setBits - 1))
}

// Access looks up the line containing addr, filling it on miss. It returns
// true on hit.
func (c *Cache) Access(addr uint64) bool {
	line := addr >> c.lineBits
	set := int(line & (1<<c.setBits - 1))
	tag := line >> c.setBits
	base := set * c.ways
	// Hit path.
	for w := 0; w < c.ways; w++ {
		i := base + w
		if c.valid[i] && c.tags[i] == tag {
			c.touch(base, w)
			c.hits++
			return true
		}
	}
	// Miss: evict LRU (highest age, preferring invalid ways).
	c.misses++
	victim := 0
	var worst uint8
	for w := 0; w < c.ways; w++ {
		i := base + w
		if !c.valid[i] {
			victim = w
			break
		}
		if c.age[i] >= worst {
			worst = c.age[i]
			victim = w
		}
	}
	i := base + victim
	c.tags[i] = tag
	c.valid[i] = true
	c.fill(base, victim)
	return false
}

// Prefetch fills the line holding addr as most-recently-used without
// touching the hit/miss statistics — the model of a hardware next-line
// prefetcher's fill (prefetches are not demand accesses).
func (c *Cache) Prefetch(addr uint64) {
	line := addr >> c.lineBits
	set := int(line & (1<<c.setBits - 1))
	tag := line >> c.setBits
	base := set * c.ways
	for w := 0; w < c.ways; w++ {
		i := base + w
		if c.valid[i] && c.tags[i] == tag {
			c.touch(base, w)
			return
		}
	}
	victim := 0
	var worst uint8
	for w := 0; w < c.ways; w++ {
		i := base + w
		if !c.valid[i] {
			victim = w
			break
		}
		if c.age[i] >= worst {
			worst = c.age[i]
			victim = w
		}
	}
	i := base + victim
	c.tags[i] = tag
	c.valid[i] = true
	c.fill(base, victim)
}

// Contains reports whether the line holding addr is resident, without
// updating LRU or counters.
func (c *Cache) Contains(addr uint64) bool {
	line := addr >> c.lineBits
	set := int(line & (1<<c.setBits - 1))
	tag := line >> c.setBits
	base := set * c.ways
	for w := 0; w < c.ways; w++ {
		i := base + w
		if c.valid[i] && c.tags[i] == tag {
			return true
		}
	}
	return false
}

func (c *Cache) touch(base, mru int) {
	pivot := c.age[base+mru]
	for w := 0; w < c.ways; w++ {
		if c.age[base+w] < pivot {
			c.age[base+w]++
		}
	}
	c.age[base+mru] = 0
}

// fill installs a brand-new line as MRU: every other way ages, because the
// new line has no prior rank to pivot on.
func (c *Cache) fill(base, mru int) {
	for w := 0; w < c.ways; w++ {
		if w != mru && c.age[base+w] < uint8(c.ways) {
			c.age[base+w]++
		}
	}
	c.age[base+mru] = 0
}

// Stats returns cumulative hits and misses.
func (c *Cache) Stats() (hits, misses uint64) { return c.hits, c.misses }

// Reset invalidates all lines and clears statistics.
func (c *Cache) Reset() {
	for i := range c.valid {
		c.valid[i] = false
		c.age[i] = 0
		c.tags[i] = 0
	}
	c.hits, c.misses = 0, 0
}

// TLB is a 4-way set-associative translation buffer with LRU replacement
// (real TLBs are set-associative for exactly the lookup-cost reason this
// model is), modelled the same tags-only way as Cache.
type TLB struct {
	pageBits uint
	setBits  uint
	ways     int
	pages    []uint64
	valid    []bool
	age      []uint8
	hits     uint64
	misses   uint64
}

// tlbWays is the associativity of every TLB.
const tlbWays = 4

// NewTLB builds a TLB with the given entry count and page size. Entry
// counts below the associativity are rounded up to one full set.
func NewTLB(entries, pageSize int) *TLB {
	if entries < tlbWays {
		entries = tlbWays
	}
	sets := entries / tlbWays
	return &TLB{
		pageBits: log2u(uint64(pageSize)),
		setBits:  log2u(uint64(sets)),
		ways:     tlbWays,
		pages:    make([]uint64, sets*tlbWays),
		valid:    make([]bool, sets*tlbWays),
		age:      make([]uint8, sets*tlbWays),
	}
}

// Access translates addr, returning true on TLB hit.
func (t *TLB) Access(addr uint64) bool {
	page := addr >> t.pageBits
	set := int(page & (1<<t.setBits - 1))
	base := set * t.ways
	for w := 0; w < t.ways; w++ {
		i := base + w
		if t.valid[i] && t.pages[i] == page {
			t.touch(base, w)
			t.hits++
			return true
		}
	}
	t.misses++
	victim := 0
	var worst uint8
	for w := 0; w < t.ways; w++ {
		i := base + w
		if !t.valid[i] {
			victim = w
			break
		}
		if t.age[i] >= worst {
			worst = t.age[i]
			victim = w
		}
	}
	i := base + victim
	t.pages[i] = page
	t.valid[i] = true
	t.fill(base, victim)
	return false
}

func (t *TLB) touch(base, mru int) {
	pivot := t.age[base+mru]
	for w := 0; w < t.ways; w++ {
		if t.age[base+w] < pivot {
			t.age[base+w]++
		}
	}
	t.age[base+mru] = 0
}

// fill installs a brand-new translation as MRU, aging the rest of its set.
func (t *TLB) fill(base, mru int) {
	for w := 0; w < t.ways; w++ {
		if w != mru && t.age[base+w] < uint8(t.ways) {
			t.age[base+w]++
		}
	}
	t.age[base+mru] = 0
}

// Stats returns cumulative hits and misses.
func (t *TLB) Stats() (hits, misses uint64) { return t.hits, t.misses }

// Reset invalidates all entries and clears statistics.
func (t *TLB) Reset() {
	for i := range t.valid {
		t.valid[i] = false
		t.age[i] = 0
	}
	t.hits, t.misses = 0, 0
}
