// Package machine simulates the three evaluation platforms. A Machine is a
// functional executor for the biaslab ISA coupled to a cycle-approximate
// timing model: caches, TLBs, a branch predictor, fetch alignment, and the
// load/store hazards (line splits, 4 KiB aliasing) through which the paper's
// two bias channels — stack displacement from the environment and code
// placement from link order — turn into measurable cycle differences.
//
// Execution has two interchangeable engines. The production engine runs a
// predecoded micro-op array (see predecode.go) with immediates pre-extended
// and branch targets precomputed; the retained reference engine
// (RunReference) fetches, decodes and interprets one raw instruction word
// at a time. Both charge the identical timing model, and the differential
// tests assert they produce bit-identical counters and checksums — the
// repo's guarantee that no throughput optimization ever changes a measured
// value.
package machine

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"

	"biaslab/internal/isa"
	"biaslab/internal/loader"
)

// Machine is one simulated CPU plus its memory system state.
type Machine struct {
	cfg  Config
	l1i  *Cache
	l1d  *Cache
	l2   *Cache
	itlb *TLB
	dtlb *TLB
	pred *Predictor

	mem  []byte
	regs [isa.NumRegs]int64
	pc   uint64

	textBase uint64
	textSize uint64
	// uops is the predecoded text segment: either a shared, immutable
	// cache entry (images that retain their executable) or uopScratch.
	uops       []uop
	uopScratch []uop

	counters Counters
	issueAcc int

	// Store buffer for 4 KiB aliasing: a ring of recent store addresses
	// with the instruction count at which they were issued. sbKeyCount
	// tracks how many buffered stores carry each partial-address key so a
	// load with no key collision skips the ring scan entirely.
	sbAddr     []uint64
	sbSeq      []uint64
	sbPos      int
	sbKeyCount [512]uint16
	// sbKeyPage is, per key, the common page of every buffered store with
	// that key, or mixedPage once two pages collide on it. A load whose page
	// equals the common page cannot stall (aliasing requires differing
	// pages), which covers the dominant spill/reload pattern.
	sbKeyPage [512]uint64
	// sbKeySeq is the issue sequence of the most recent buffered store with
	// each key. The ring evicts in FIFO (= sequence) order, so while a key's
	// count is nonzero its most recent store is still buffered — which lets
	// a single-page key answer the alias window test without scanning.
	sbKeySeq [512]uint64

	// fetchBits is log2(FetchBlockBytes) when it is a power of two
	// (fetchPot), letting the front end use a shift instead of a divide.
	fetchBits uint
	fetchPot  bool

	// Last-reference memos: a line or page that was just referenced is MRU
	// in its set, so re-referencing it is a guaranteed hit that changes no
	// replacement state — the model call can be skipped entirely (only the
	// hit statistic is maintained). dMemoOK gates the L1D memo off when a
	// next-line prefetch into a one-set cache could evict the memoized line.
	lastDLine uint64
	lastDPage uint64
	lastILine uint64
	lastIPage uint64
	dMemoOK   bool

	lastFetchBlock uint64

	output   []int64
	checksum uint64
	exitCode int64
	halted   bool

	profilingOn bool
	prof        *profiler
	tracer      Tracer
}

// Result is the outcome of one complete program run.
type Result struct {
	Machine  string
	Counters Counters
	Output   []int64
	Checksum uint64
	ExitCode int64
	// Profile holds per-function attribution when profiling was enabled.
	Profile Profile
}

// New builds a machine with cfg.
func New(cfg Config) *Machine {
	m := &Machine{
		cfg:  cfg,
		l1i:  NewCache(cfg.L1I),
		l1d:  NewCache(cfg.L1D),
		l2:   NewCache(cfg.L2),
		itlb: NewTLB(cfg.ITLBEntries, cfg.PageSize),
		dtlb: NewTLB(cfg.DTLBEntries, cfg.PageSize),
		pred: NewPredictor(cfg.Predictor),
	}
	if cfg.StoreBufferDepth > 0 {
		m.sbAddr = make([]uint64, cfg.StoreBufferDepth)
		m.sbSeq = make([]uint64, cfg.StoreBufferDepth)
	}
	if b := cfg.FetchBlockBytes; b > 0 && b&(b-1) == 0 {
		m.fetchBits = log2u(uint64(b))
		m.fetchPot = true
	}
	m.dMemoOK = !cfg.NextLinePrefetch || m.l1d.Sets() > 1
	return m
}

// mixedPage marks a store-buffer key whose entries span multiple pages.
const mixedPage = ^uint64(0)

// Config returns the machine's configuration.
func (m *Machine) Config() Config { return m.cfg }

// EnableProfiling turns per-function cycle attribution on or off for
// subsequent runs. Profiling needs the image's executable for symbols.
func (m *Machine) EnableProfiling(on bool) { m.profilingOn = on }

// Counters returns the counters of the last run.
func (m *Machine) Counters() *Counters { return &m.counters }

// DefaultMaxInstructions bounds a run; benchmark workloads stay far below.
const DefaultMaxInstructions = 4 << 30

// ErrStepBudget is the watchdog's verdict: the run retired its entire
// instruction budget without halting. Callers distinguish it from execution
// faults with errors.Is — a budget trip usually means a runaway or
// mis-sized workload, not a broken program image.
var ErrStepBudget = errors.New("machine: instruction budget exhausted")

// cancelPollInstrs is how many instructions execute between context checks
// in RunCtx. At simulator speed (tens of MIPS) this bounds cancellation
// latency to well under a millisecond while keeping the poll out of the
// per-instruction hot path: the check piggybacks on the budget slicing, so
// the inner loops are identical to the uncancellable ones.
const cancelPollInstrs = 1 << 16

// Run executes the loaded image to completion (SysExit/halt) and returns
// the result. Machine state is reset at entry, so a Machine can be reused
// across runs; maxInstr of 0 applies DefaultMaxInstructions.
func (m *Machine) Run(img *loader.Image, maxInstr uint64) (*Result, error) {
	return m.RunCtx(context.Background(), img, maxInstr)
}

// RunCtx is Run with cooperative cancellation: the step-budget watchdog
// always bounds the run, and when ctx carries a deadline or cancel, the
// machine additionally polls it every cancelPollInstrs retired instructions
// and abandons the run with ctx's error. Timing state is charged
// identically either way — a run that completes under a cancellable
// context is bit-identical to one under context.Background().
func (m *Machine) RunCtx(ctx context.Context, img *loader.Image, maxInstr uint64) (*Result, error) {
	m.resetState(img)
	m.uops = predecodedFor(img, m.uopScratch)
	if img.Exe == nil {
		m.uopScratch = m.uops // keep the scratch array for reuse
	}
	if maxInstr == 0 {
		maxInstr = DefaultMaxInstructions
	}
	cancellable := ctx.Done() != nil
	instrumented := m.tracer != nil || m.prof != nil
	for !m.halted {
		limit := maxInstr
		if cancellable {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			if l := m.counters.Instructions + cancelPollInstrs; l < limit {
				limit = l
			}
		}
		if err := m.runSlice(limit, instrumented); err != nil {
			return nil, err
		}
		if !m.halted && m.counters.Instructions >= maxInstr {
			return nil, m.budgetErr(maxInstr)
		}
	}
	return m.result(), nil
}

// RunReference executes the image with the retained straightforward
// fetch-decode-execute interpreter: one raw instruction word decoded per
// step, no predecoding, no memoization. It exists as the oracle for
// differential testing of the optimized engine and must produce
// bit-identical counters, output and checksum. Tracing and profiling are
// ignored in this mode.
func (m *Machine) RunReference(img *loader.Image, maxInstr uint64) (*Result, error) {
	m.resetState(img)
	m.prof = nil
	m.uops = nil
	if maxInstr == 0 {
		maxInstr = DefaultMaxInstructions
	}
	for !m.halted {
		if m.counters.Instructions >= maxInstr {
			return nil, m.budgetErr(maxInstr)
		}
		if err := m.stepRef(); err != nil {
			return nil, err
		}
	}
	return m.result(), nil
}

func (m *Machine) budgetErr(maxInstr uint64) error {
	return fmt.Errorf("%w: %d instructions retired, pc=%#x", ErrStepBudget, maxInstr, m.pc)
}

func (m *Machine) result() *Result {
	res := &Result{
		Machine:  m.cfg.Name,
		Counters: m.counters,
		Output:   m.output,
		Checksum: m.checksum,
		ExitCode: m.exitCode,
	}
	if m.prof != nil {
		res.Profile = m.prof.profile()
	}
	return res
}

// resetState reinitializes every piece of architectural and timing state
// for img. The cache, TLB and predictor resets are O(1) generation bumps.
func (m *Machine) resetState(img *loader.Image) {
	m.l1i.Reset()
	m.l1d.Reset()
	m.l2.Reset()
	m.itlb.Reset()
	m.dtlb.Reset()
	m.pred.Reset()
	m.counters = Counters{}
	m.issueAcc = 0
	m.lastFetchBlock = ^uint64(0)
	for i := range m.sbAddr {
		m.sbAddr[i] = ^uint64(0)
		m.sbSeq[i] = 0
	}
	m.sbPos = 0
	m.sbKeyCount = [512]uint16{}
	m.sbKeyPage = [512]uint64{}
	m.sbKeySeq = [512]uint64{}
	m.lastDLine = ^uint64(0)
	m.lastDPage = ^uint64(0)
	m.lastILine = ^uint64(0)
	m.lastIPage = ^uint64(0)
	m.output = nil
	m.checksum = 0
	m.exitCode = 0
	m.halted = false

	m.mem = img.Mem
	m.textBase = img.TextBase
	m.textSize = img.TextSize
	m.pc = img.Entry
	m.regs = [isa.NumRegs]int64{}
	m.regs[isa.SP] = int64(img.SP)
	m.prof = nil
	if m.profilingOn && img.Exe != nil {
		m.prof = newProfiler(img.Exe)
		m.prof.enter(img.Entry)
	}
}

// charge adds penalty cycles.
func (m *Machine) charge(c uint64) { m.counters.Cycles += c }

// issue accounts the base cost of one instruction.
func (m *Machine) issue() {
	m.counters.Instructions++
	m.issueAcc++
	if m.issueAcc >= m.cfg.IssueWidth {
		m.counters.Cycles++
		m.issueAcc = 0
	}
}

// fetch models the front end at fetch-block granularity.
func (m *Machine) fetch(pc uint64) {
	var block uint64
	if m.fetchPot {
		block = pc >> m.fetchBits
	} else {
		block = pc / uint64(m.cfg.FetchBlockBytes)
	}
	if block == m.lastFetchBlock {
		return
	}
	m.lastFetchBlock = block
	m.counters.FetchBlocks++
	if page := pc >> m.itlb.pageBits; page == m.lastIPage {
		m.itlb.hits++
	} else {
		m.lastIPage = page
		if !m.itlb.Access(pc) {
			m.counters.ITLBMisses++
			m.charge(m.cfg.Penalties.ITLBMiss)
		}
	}
	if line := pc >> m.l1i.lineBits; line == m.lastILine {
		m.l1i.hits++
	} else {
		m.lastILine = line
		if !m.l1i.Access(pc) {
			m.counters.L1IMisses++
			if m.l2.Access(pc) {
				m.charge(m.cfg.Penalties.L1Miss)
			} else {
				m.counters.L2Misses++
				m.charge(m.cfg.Penalties.L2Miss)
			}
		}
	}
}

// dataAccess models the memory system for a load or store of size bytes.
func (m *Machine) dataAccess(addr uint64, size int, isLoad bool) {
	if page := addr >> m.dtlb.pageBits; page == m.lastDPage {
		m.dtlb.hits++
	} else {
		m.lastDPage = page
		if !m.dtlb.Access(addr) {
			m.counters.DTLBMisses++
			m.charge(m.cfg.Penalties.DTLBMiss)
		}
	}
	m.dcacheRef(addr)
	lineBits := m.l1d.lineBits
	if addr>>lineBits != (addr+uint64(size)-1)>>lineBits {
		m.counters.SplitAccesses++
		m.charge(m.cfg.Penalties.SplitAccess)
		m.dcacheRef(addr + uint64(size) - 1)
	}
	if isLoad {
		m.counters.Loads++
		m.alias4K(addr)
	} else {
		m.counters.Stores++
		m.recordStore(addr)
	}
}

// dcacheRef charges one data-cache reference at a.
func (m *Machine) dcacheRef(a uint64) {
	if line := a >> m.l1d.lineBits; m.dMemoOK {
		if line == m.lastDLine {
			m.l1d.hits++
			return
		}
		m.lastDLine = line
	}
	if !m.l1d.Access(a) {
		m.counters.L1DMisses++
		if m.l2.Access(a) {
			m.charge(m.cfg.Penalties.L1Miss)
		} else {
			m.counters.L2Misses++
			m.charge(m.cfg.Penalties.L2Miss)
		}
		if m.cfg.NextLinePrefetch {
			m.l1d.Prefetch(a + uint64(m.l1d.LineSize()))
		}
	}
}

// alias4K models the memory-disambiguation replay: a load whose address
// matches an in-flight store in bits [11:3] but differs above pays a
// penalty, because the partial-address matcher flags a false dependence.
func (m *Machine) alias4K(addr uint64) {
	if len(m.sbAddr) == 0 {
		return
	}
	key := addr >> 3 & 0x1ff
	// Occupancy filters: no buffered store shares this key, or every store
	// that does sits on the load's own page (the spill/reload pattern) — in
	// either case the precise scan below cannot find a match.
	if m.sbKeyCount[key] == 0 || m.sbKeyPage[key] == addr>>12 {
		return
	}
	if m.sbKeyPage[key] != mixedPage {
		// Single-page key on a different page than the load: every buffered
		// store with this key matches the partial-address tag, so the stall
		// decision reduces to recency, and the key's most recent store (still
		// buffered — FIFO eviction) decides the window test.
		if m.counters.Instructions-m.sbKeySeq[key] <= m.cfg.AliasWindow {
			m.counters.Alias4KStalls++
			m.charge(m.cfg.Penalties.Alias4K)
		}
		return
	}
	if m.counters.Instructions-m.sbKeySeq[key] > m.cfg.AliasWindow {
		// Even the key's most recent store is outside the window, so no
		// buffered store with this key can be inside it: skip the scan.
		return
	}
	for i, sa := range m.sbAddr {
		if sa == ^uint64(0) {
			continue
		}
		if m.counters.Instructions-m.sbSeq[i] > m.cfg.AliasWindow {
			continue
		}
		if sa>>3&0x1ff == key && sa>>12 != addr>>12 {
			m.counters.Alias4KStalls++
			m.charge(m.cfg.Penalties.Alias4K)
			return
		}
	}
}

func (m *Machine) recordStore(addr uint64) {
	if len(m.sbAddr) == 0 {
		return
	}
	pos := m.sbPos
	if old := m.sbAddr[pos]; old != ^uint64(0) {
		m.sbKeyCount[old>>3&0x1ff]--
	}
	m.sbAddr[pos] = addr
	m.sbSeq[pos] = m.counters.Instructions
	key := addr >> 3 & 0x1ff
	m.sbKeySeq[key] = m.counters.Instructions
	page := addr >> 12
	if m.sbKeyCount[key] == 0 {
		m.sbKeyPage[key] = page
	} else if m.sbKeyPage[key] != page {
		// Two pages now share the key; scans are required until the key
		// empties out (conservative, never wrong).
		m.sbKeyPage[key] = mixedPage
	}
	m.sbKeyCount[key]++
	pos++
	if pos == len(m.sbAddr) {
		pos = 0
	}
	m.sbPos = pos
}

// control models a taken control transfer to target.
func (m *Machine) control(pc, target uint64) {
	m.counters.TakenBranches++
	m.charge(m.cfg.Penalties.TakenBranch)
	if m.pred.Target(pc, target) {
		m.counters.BTBRedirects++
		m.charge(m.cfg.Penalties.BTBRedirect)
	}
	if target%16 != 0 && m.cfg.Penalties.MisalignedEntry > 0 {
		m.counters.MisalignedTargets++
		m.charge(m.cfg.Penalties.MisalignedEntry)
	}
}

type execError struct {
	pc  uint64
	msg string
}

func (e *execError) Error() string {
	return fmt.Sprintf("machine: at pc=%#x: %s", e.pc, e.msg)
}

func (m *Machine) fail(format string, args ...any) error {
	return &execError{pc: m.pc, msg: fmt.Sprintf(format, args...)}
}

// step executes one instruction with tracing/profiling instrumentation.
func (m *Machine) step() error {
	if m.tracer != nil {
		return m.stepTraced()
	}
	return m.stepProfiled()
}

// stepTraced wraps execution with event reporting (and profiling when both
// are enabled).
func (m *Machine) stepTraced() error {
	seq := m.counters.Instructions
	pc := m.pc
	var inst isa.Inst
	if pc >= m.textBase && pc < m.textBase+m.textSize && pc%uint64(isa.InstSize) == 0 {
		inst = isa.DecodeBytes(m.mem[pc:])
	}
	var memAddr uint64
	if inst.Op.IsLoad() || inst.Op.IsStore() {
		memAddr = uint64(m.regs[inst.Rs1] + int64(inst.Imm))
	}
	var err error
	if m.prof != nil {
		err = m.stepProfiled()
	} else {
		err = m.stepFast()
	}
	m.tracer.Trace(TraceEvent{
		Seq:     seq,
		PC:      pc,
		Inst:    inst,
		Cycles:  m.counters.Cycles,
		MemAddr: memAddr,
		NextPC:  m.pc,
	})
	return err
}

// stepProfiled wraps stepFast with per-function attribution.
func (m *Machine) stepProfiled() error {
	before := m.counters.Cycles
	prevPC := m.pc
	err := m.stepFast()
	// A transfer into another function happens only via call/return
	// (jal/jalr); detect by non-sequential pc movement outside the
	// current fetch neighbourhood and re-resolve.
	if m.pc != prevPC+uint64(isa.InstSize) {
		m.prof.enter(m.pc)
	}
	m.prof.account(m.counters.Cycles - before)
	return err
}

// setReg writes v to r unless r is the hardwired zero register.
func (m *Machine) setReg(r isa.Reg, v int64) {
	if r != isa.R0 {
		m.regs[r] = v
	}
}

// stepFast executes one predecoded micro-op: the production engine.
func (m *Machine) stepFast() error {
	pc := m.pc
	off := pc - m.textBase
	// The unsigned subtraction folds the below-text case into the
	// above-text compare: any pc < textBase wraps far beyond textSize.
	if off >= m.textSize || pc%uint64(isa.InstSize) != 0 {
		return m.fail("instruction fetch outside text segment")
	}
	m.fetch(pc)
	u := &m.uops[off/uint64(isa.InstSize)]
	m.issue()

	next := pc + uint64(isa.InstSize)
	regs := &m.regs

	switch u.op {
	case isa.OpNop:
	case isa.OpAdd:
		m.setReg(u.rd, regs[u.rs1]+regs[u.rs2])
	case isa.OpSub:
		m.setReg(u.rd, regs[u.rs1]-regs[u.rs2])
	case isa.OpMul:
		m.counters.MulOps++
		m.charge(m.cfg.Penalties.Mul)
		m.setReg(u.rd, regs[u.rs1]*regs[u.rs2])
	case isa.OpDiv, isa.OpRem:
		m.counters.DivOps++
		m.charge(m.cfg.Penalties.Div)
		if regs[u.rs2] == 0 {
			return m.fail("integer divide by zero")
		}
		if u.op == isa.OpDiv {
			m.setReg(u.rd, regs[u.rs1]/regs[u.rs2])
		} else {
			m.setReg(u.rd, regs[u.rs1]%regs[u.rs2])
		}
	case isa.OpAnd:
		m.setReg(u.rd, regs[u.rs1]&regs[u.rs2])
	case isa.OpOr:
		m.setReg(u.rd, regs[u.rs1]|regs[u.rs2])
	case isa.OpXor:
		m.setReg(u.rd, regs[u.rs1]^regs[u.rs2])
	case isa.OpSll:
		m.setReg(u.rd, regs[u.rs1]<<(uint64(regs[u.rs2])&63))
	case isa.OpSrl:
		m.setReg(u.rd, int64(uint64(regs[u.rs1])>>(uint64(regs[u.rs2])&63)))
	case isa.OpSra:
		m.setReg(u.rd, regs[u.rs1]>>(uint64(regs[u.rs2])&63))
	case isa.OpSlt:
		m.setReg(u.rd, b2i64(regs[u.rs1] < regs[u.rs2]))
	case isa.OpSltu:
		m.setReg(u.rd, b2i64(uint64(regs[u.rs1]) < uint64(regs[u.rs2])))
	case isa.OpAddi:
		m.setReg(u.rd, regs[u.rs1]+u.imm)
	case isa.OpMuli:
		m.counters.MulOps++
		m.charge(m.cfg.Penalties.Mul)
		m.setReg(u.rd, regs[u.rs1]*u.imm)
	case isa.OpAndi:
		m.setReg(u.rd, regs[u.rs1]&u.imm)
	case isa.OpOri:
		m.setReg(u.rd, regs[u.rs1]|u.imm)
	case isa.OpXori:
		m.setReg(u.rd, regs[u.rs1]^u.imm)
	case isa.OpSlli:
		m.setReg(u.rd, regs[u.rs1]<<uint64(u.imm))
	case isa.OpSrli:
		m.setReg(u.rd, int64(uint64(regs[u.rs1])>>uint64(u.imm)))
	case isa.OpSrai:
		m.setReg(u.rd, regs[u.rs1]>>uint64(u.imm))
	case isa.OpSlti:
		m.setReg(u.rd, b2i64(regs[u.rs1] < u.imm))
	case isa.OpSltiu:
		m.setReg(u.rd, b2i64(uint64(regs[u.rs1]) < uint64(u.imm)))
	case isa.OpLui:
		m.setReg(u.rd, u.imm)

	case isa.OpLdb, isa.OpLdbu, isa.OpLdh, isa.OpLdhu, isa.OpLdw, isa.OpLdwu, isa.OpLdq:
		addr := uint64(regs[u.rs1] + u.imm)
		size := int(u.memSize)
		limit := uint64(len(m.mem))
		if addr >= limit || uint64(size) > limit-addr {
			return m.fail("load at %#x out of bounds", addr)
		}
		m.dataAccess(addr, size, true)
		m.setReg(u.rd, m.loadMem(addr, u.op))

	case isa.OpStb, isa.OpSth, isa.OpStw, isa.OpStq:
		addr := uint64(regs[u.rs1] + u.imm)
		size := int(u.memSize)
		limit := uint64(len(m.mem))
		if addr >= limit || uint64(size) > limit-addr {
			return m.fail("store at %#x out of bounds", addr)
		}
		if addr < m.textBase+m.textSize && addr+uint64(size) > m.textBase {
			return m.fail("store at %#x into text segment", addr)
		}
		m.dataAccess(addr, size, false)
		m.storeMem(addr, regs[u.rs2], size)

	case isa.OpBeq, isa.OpBne, isa.OpBlt, isa.OpBge, isa.OpBltu, isa.OpBgeu:
		m.counters.Branches++
		taken := false
		a, b := regs[u.rs1], regs[u.rs2]
		switch u.op {
		case isa.OpBeq:
			taken = a == b
		case isa.OpBne:
			taken = a != b
		case isa.OpBlt:
			taken = a < b
		case isa.OpBge:
			taken = a >= b
		case isa.OpBltu:
			taken = uint64(a) < uint64(b)
		case isa.OpBgeu:
			taken = uint64(a) >= uint64(b)
		}
		if m.pred.Branch(pc, taken) {
			m.counters.BranchMispredicts++
			m.charge(m.cfg.Penalties.Mispredict)
		}
		if taken {
			m.control(pc, u.target)
			next = u.target
		}

	case isa.OpJmp:
		m.control(pc, u.target)
		next = u.target

	case isa.OpJal:
		m.setReg(u.rd, int64(next))
		m.pred.Call(next)
		m.control(pc, u.target)
		next = u.target

	case isa.OpJalr:
		target := uint64(regs[u.rs1])
		if u.rd == isa.R0 && u.rs1 == isa.RA {
			// Return: consult the return-address stack.
			if m.pred.Return(target) {
				m.counters.RASMispredicts++
				m.charge(m.cfg.Penalties.Mispredict)
			}
		} else if u.rd != isa.R0 {
			m.pred.Call(next)
		}
		m.setReg(u.rd, int64(next))
		m.counters.TakenBranches++
		m.charge(m.cfg.Penalties.TakenBranch)
		next = target

	case isa.OpSys:
		m.counters.Syscalls++
		m.charge(m.cfg.Penalties.Sys)
		if err := m.syscall(); err != nil {
			return err
		}

	case isa.OpHalt:
		m.halted = true

	default:
		return m.fail("invalid opcode %v", u.op)
	}

	m.pc = next
	return nil
}

// stepRef executes one instruction the straightforward way: decode the raw
// word at pc, then interpret it, recomputing immediates and targets in
// place. This is the reference engine differential tests hold stepFast to.
func (m *Machine) stepRef() error {
	pc := m.pc
	if pc < m.textBase || pc >= m.textBase+m.textSize || pc%uint64(isa.InstSize) != 0 {
		return m.fail("instruction fetch outside text segment")
	}
	m.fetch(pc)
	in := isa.DecodeBytes(m.mem[pc:])
	m.issue()

	next := pc + uint64(isa.InstSize)
	regs := &m.regs

	switch in.Op {
	case isa.OpNop:
	case isa.OpAdd:
		m.setReg(in.Rd, regs[in.Rs1]+regs[in.Rs2])
	case isa.OpSub:
		m.setReg(in.Rd, regs[in.Rs1]-regs[in.Rs2])
	case isa.OpMul:
		m.counters.MulOps++
		m.charge(m.cfg.Penalties.Mul)
		m.setReg(in.Rd, regs[in.Rs1]*regs[in.Rs2])
	case isa.OpDiv, isa.OpRem:
		m.counters.DivOps++
		m.charge(m.cfg.Penalties.Div)
		if regs[in.Rs2] == 0 {
			return m.fail("integer divide by zero")
		}
		if in.Op == isa.OpDiv {
			m.setReg(in.Rd, regs[in.Rs1]/regs[in.Rs2])
		} else {
			m.setReg(in.Rd, regs[in.Rs1]%regs[in.Rs2])
		}
	case isa.OpAnd:
		m.setReg(in.Rd, regs[in.Rs1]&regs[in.Rs2])
	case isa.OpOr:
		m.setReg(in.Rd, regs[in.Rs1]|regs[in.Rs2])
	case isa.OpXor:
		m.setReg(in.Rd, regs[in.Rs1]^regs[in.Rs2])
	case isa.OpSll:
		m.setReg(in.Rd, regs[in.Rs1]<<(uint64(regs[in.Rs2])&63))
	case isa.OpSrl:
		m.setReg(in.Rd, int64(uint64(regs[in.Rs1])>>(uint64(regs[in.Rs2])&63)))
	case isa.OpSra:
		m.setReg(in.Rd, regs[in.Rs1]>>(uint64(regs[in.Rs2])&63))
	case isa.OpSlt:
		m.setReg(in.Rd, b2i64(regs[in.Rs1] < regs[in.Rs2]))
	case isa.OpSltu:
		m.setReg(in.Rd, b2i64(uint64(regs[in.Rs1]) < uint64(regs[in.Rs2])))
	case isa.OpAddi:
		m.setReg(in.Rd, regs[in.Rs1]+int64(in.Imm))
	case isa.OpMuli:
		m.counters.MulOps++
		m.charge(m.cfg.Penalties.Mul)
		m.setReg(in.Rd, regs[in.Rs1]*int64(in.Imm))
	case isa.OpAndi:
		m.setReg(in.Rd, regs[in.Rs1]&int64(uint16(in.Imm)))
	case isa.OpOri:
		m.setReg(in.Rd, regs[in.Rs1]|int64(uint16(in.Imm)))
	case isa.OpXori:
		m.setReg(in.Rd, regs[in.Rs1]^int64(uint16(in.Imm)))
	case isa.OpSlli:
		m.setReg(in.Rd, regs[in.Rs1]<<(uint32(in.Imm)&63))
	case isa.OpSrli:
		m.setReg(in.Rd, int64(uint64(regs[in.Rs1])>>(uint32(in.Imm)&63)))
	case isa.OpSrai:
		m.setReg(in.Rd, regs[in.Rs1]>>(uint32(in.Imm)&63))
	case isa.OpSlti:
		m.setReg(in.Rd, b2i64(regs[in.Rs1] < int64(in.Imm)))
	case isa.OpSltiu:
		m.setReg(in.Rd, b2i64(uint64(regs[in.Rs1]) < uint64(uint16(in.Imm))))
	case isa.OpLui:
		m.setReg(in.Rd, int64(uint64(uint16(in.Imm))<<16))

	case isa.OpLdb, isa.OpLdbu, isa.OpLdh, isa.OpLdhu, isa.OpLdw, isa.OpLdwu, isa.OpLdq:
		addr := uint64(regs[in.Rs1] + int64(in.Imm))
		size := in.Op.MemBytes()
		limit := uint64(len(m.mem))
		if addr >= limit || uint64(size) > limit-addr {
			return m.fail("load at %#x out of bounds", addr)
		}
		m.dataAccess(addr, size, true)
		m.setReg(in.Rd, m.loadMem(addr, in.Op))

	case isa.OpStb, isa.OpSth, isa.OpStw, isa.OpStq:
		addr := uint64(regs[in.Rs1] + int64(in.Imm))
		size := in.Op.MemBytes()
		limit := uint64(len(m.mem))
		if addr >= limit || uint64(size) > limit-addr {
			return m.fail("store at %#x out of bounds", addr)
		}
		if addr < m.textBase+m.textSize && addr+uint64(size) > m.textBase {
			return m.fail("store at %#x into text segment", addr)
		}
		m.dataAccess(addr, size, false)
		m.storeMem(addr, regs[in.Rs2], size)

	case isa.OpBeq, isa.OpBne, isa.OpBlt, isa.OpBge, isa.OpBltu, isa.OpBgeu:
		m.counters.Branches++
		taken := false
		a, b := regs[in.Rs1], regs[in.Rs2]
		switch in.Op {
		case isa.OpBeq:
			taken = a == b
		case isa.OpBne:
			taken = a != b
		case isa.OpBlt:
			taken = a < b
		case isa.OpBge:
			taken = a >= b
		case isa.OpBltu:
			taken = uint64(a) < uint64(b)
		case isa.OpBgeu:
			taken = uint64(a) >= uint64(b)
		}
		if m.pred.Branch(pc, taken) {
			m.counters.BranchMispredicts++
			m.charge(m.cfg.Penalties.Mispredict)
		}
		if taken {
			target := uint64(int64(next) + int64(in.Imm)*isa.InstSize)
			m.control(pc, target)
			next = target
		}

	case isa.OpJmp:
		target := uint64(int64(next) + int64(in.Imm)*isa.InstSize)
		m.control(pc, target)
		next = target

	case isa.OpJal:
		target := uint64(in.Imm) * isa.InstSize
		m.setReg(in.Rd, int64(next))
		m.pred.Call(next)
		m.control(pc, target)
		next = target

	case isa.OpJalr:
		target := uint64(regs[in.Rs1])
		if in.Rd == isa.R0 && in.Rs1 == isa.RA {
			// Return: consult the return-address stack.
			if m.pred.Return(target) {
				m.counters.RASMispredicts++
				m.charge(m.cfg.Penalties.Mispredict)
			}
		} else if in.Rd != isa.R0 {
			m.pred.Call(next)
		}
		m.setReg(in.Rd, int64(next))
		m.counters.TakenBranches++
		m.charge(m.cfg.Penalties.TakenBranch)
		next = target

	case isa.OpSys:
		m.counters.Syscalls++
		m.charge(m.cfg.Penalties.Sys)
		if err := m.syscall(); err != nil {
			return err
		}

	case isa.OpHalt:
		m.halted = true

	default:
		return m.fail("invalid opcode %v", in.Op)
	}

	m.pc = next
	return nil
}

func b2i64(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

func (m *Machine) loadMem(addr uint64, op isa.Op) int64 {
	switch op {
	case isa.OpLdb:
		return int64(int8(m.mem[addr]))
	case isa.OpLdbu:
		return int64(m.mem[addr])
	case isa.OpLdh:
		return int64(int16(binary.LittleEndian.Uint16(m.mem[addr:])))
	case isa.OpLdhu:
		return int64(binary.LittleEndian.Uint16(m.mem[addr:]))
	case isa.OpLdw:
		return int64(int32(binary.LittleEndian.Uint32(m.mem[addr:])))
	case isa.OpLdwu:
		return int64(binary.LittleEndian.Uint32(m.mem[addr:]))
	default:
		return int64(binary.LittleEndian.Uint64(m.mem[addr:]))
	}
}

func (m *Machine) storeMem(addr uint64, v int64, size int) {
	switch size {
	case 1:
		m.mem[addr] = byte(v)
	case 2:
		binary.LittleEndian.PutUint16(m.mem[addr:], uint16(v))
	case 4:
		binary.LittleEndian.PutUint32(m.mem[addr:], uint32(v))
	default:
		binary.LittleEndian.PutUint64(m.mem[addr:], uint64(v))
	}
}

func (m *Machine) syscall() error {
	num := m.regs[isa.A0]
	arg := m.regs[isa.A1]
	switch num {
	case isa.SysExit:
		m.exitCode = arg
		m.halted = true
	case isa.SysPutInt, isa.SysPutChar:
		m.output = append(m.output, arg)
	case isa.SysChecksum:
		m.checksum = isa.MixChecksum(m.checksum, uint64(arg))
	case isa.SysCycles:
		m.regs[isa.RV] = int64(m.counters.Cycles)
	default:
		return m.fail("unknown system call %d", num)
	}
	return nil
}
