package machine

import (
	"context"
	"errors"
	"testing"

	"biaslab/internal/compiler"
	"biaslab/internal/loader"
)

// TestStepBudgetTyped: a runaway program is stopped by the instruction
// budget with the typed sentinel, not a hang or an untyped error.
func TestStepBudgetTyped(t *testing.T) {
	img, _ := buildImage(t, compiler.Config{}, loader.Options{}, `void main() { while (1) {} }`)
	m := New(Core2())
	_, err := m.Run(img, 10_000)
	if !errors.Is(err, ErrStepBudget) {
		t.Fatalf("runaway loop: err = %v, want ErrStepBudget", err)
	}
}

// TestRunCtxCancel: cancellation interrupts an otherwise-infinite run at
// the next poll boundary and reports the context's error, not the budget's.
func TestRunCtxCancel(t *testing.T) {
	img, _ := buildImage(t, compiler.Config{}, loader.Options{}, `void main() { while (1) {} }`)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	m := New(Core2())
	_, err := m.RunCtx(ctx, img, 1<<40)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled RunCtx: err = %v, want context.Canceled", err)
	}
	if errors.Is(err, ErrStepBudget) {
		t.Error("cancellation misreported as budget exhaustion")
	}
}

// TestRunCtxBudgetIdenticalToRun: the cancellation polling must not change
// timing — a budget-sliced run retires the same cycles as a plain one.
func TestRunCtxBudgetIdenticalToRun(t *testing.T) {
	src := `void main() { int i; int s; s = 0; for (i = 0; i < 2000; i = i + 1) { s = s + i; } checksum(s); }`
	imgA, _ := buildImage(t, compiler.Config{Level: compiler.O2}, loader.Options{}, src)
	a, err := New(Core2()).Run(imgA, 10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	imgB, _ := buildImage(t, compiler.Config{Level: compiler.O2}, loader.Options{}, src)
	b, err := New(Core2()).RunCtx(context.Background(), imgB, 10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if a.Counters != b.Counters || a.Checksum != b.Checksum {
		t.Errorf("RunCtx diverged from Run:\nRun:    %+v\nRunCtx: %+v", a, b)
	}
}
