package machine

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCacheGeometry(t *testing.T) {
	c := NewCache(CacheConfig{SizeKB: 32, LineSize: 64, Ways: 8})
	if c.Sets() != 64 {
		t.Errorf("sets = %d, want 64", c.Sets())
	}
	if c.LineSize() != 64 {
		t.Errorf("line = %d, want 64", c.LineSize())
	}
}

func TestCacheHitAfterFill(t *testing.T) {
	c := NewCache(CacheConfig{SizeKB: 16, LineSize: 64, Ways: 4})
	if c.Access(0x1000) {
		t.Error("cold access should miss")
	}
	if !c.Access(0x1000) {
		t.Error("second access should hit")
	}
	if !c.Access(0x1038) {
		t.Error("same-line access should hit")
	}
	if c.Access(0x1040) {
		t.Error("next line should miss")
	}
	hits, misses := c.Stats()
	if hits != 2 || misses != 2 {
		t.Errorf("stats = %d/%d, want 2/2", hits, misses)
	}
}

func TestCacheConflictEviction(t *testing.T) {
	// 2-way cache: three lines mapping to the same set evict LRU.
	c := NewCache(CacheConfig{SizeKB: 8, LineSize: 64, Ways: 2}) // 64 sets
	stride := uint64(64 * 64)                                    // same set, different tags
	a, b, d := uint64(0), stride, 2*stride
	c.Access(a)
	c.Access(b)
	if !c.Access(a) {
		t.Fatal("a should still be resident")
	}
	c.Access(d) // evicts b (LRU)
	if c.Contains(b) {
		t.Error("b should have been evicted")
	}
	if !c.Contains(a) || !c.Contains(d) {
		t.Error("a and d should be resident")
	}
}

func TestCacheLRUProperty(t *testing.T) {
	// Property: after accessing exactly `ways` distinct same-set lines,
	// all of them are resident.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ways := 2 + r.Intn(7)
		c := NewCache(CacheConfig{SizeKB: ways * 4, LineSize: 64, Ways: ways})
		set := uint64(r.Intn(c.Sets()))
		stride := uint64(c.Sets() * c.LineSize())
		base := set * uint64(c.LineSize())
		for i := 0; i < ways; i++ {
			c.Access(base + uint64(i)*stride)
		}
		for i := 0; i < ways; i++ {
			if !c.Contains(base + uint64(i)*stride) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestCacheReset(t *testing.T) {
	c := NewCache(CacheConfig{SizeKB: 8, LineSize: 64, Ways: 2})
	c.Access(0x40)
	c.Reset()
	if c.Contains(0x40) {
		t.Error("line survived reset")
	}
	if h, m := c.Stats(); h != 0 || m != 0 {
		t.Error("stats survived reset")
	}
}

func TestCacheSetOf(t *testing.T) {
	c := NewCache(CacheConfig{SizeKB: 32, LineSize: 64, Ways: 8}) // 64 sets
	if c.SetOf(0) != 0 {
		t.Error("SetOf(0) != 0")
	}
	if c.SetOf(64) != 1 {
		t.Error("SetOf(64) != 1")
	}
	if c.SetOf(64*64) != 0 {
		t.Error("SetOf wraps at set count")
	}
}

func TestTLB(t *testing.T) {
	tlb := NewTLB(4, 4096)
	if tlb.Access(0x1000) {
		t.Error("cold TLB access should miss")
	}
	if !tlb.Access(0x1fff) {
		t.Error("same-page access should hit")
	}
	// Fill beyond capacity; the first page is LRU and gets evicted.
	for i := 1; i <= 4; i++ {
		tlb.Access(uint64(i) * 0x10000)
	}
	if tlb.Access(0x1000) {
		t.Error("evicted page should miss")
	}
	h, m := tlb.Stats()
	if h+m != 7 {
		t.Errorf("total accesses = %d, want 7", h+m)
	}
	tlb.Reset()
	if h, m := tlb.Stats(); h != 0 || m != 0 {
		t.Error("stats survived reset")
	}
}

func TestPredictorDirection(t *testing.T) {
	p := NewPredictor(PredictorConfig{HistoryBits: 10, BTBEntries: 64, RASDepth: 4})
	pc := uint64(0x1000)
	// Always-taken branch: after warmup, no mispredicts.
	warm := 0
	for i := 0; i < 100; i++ {
		if p.Branch(pc, true) {
			warm++
		}
	}
	// gshare's index mixes in global history, so the first ~historyBits
	// outcomes each touch a cold counter; after that the index stabilizes.
	if warm > 20 {
		t.Errorf("always-taken branch mispredicted %d times", warm)
	}
	branches, mis, _, _ := p.Stats()
	if branches != 100 || mis != uint64(warm) {
		t.Errorf("stats wrong: %d branches, %d mispredicts", branches, mis)
	}
}

func TestPredictorBTBAliasing(t *testing.T) {
	p := NewPredictor(PredictorConfig{HistoryBits: 10, BTBEntries: 16, RASDepth: 4})
	// Two jumps whose pcs collide in a 16-entry BTB (64-byte aliasing
	// distance at 4-byte pc granularity) keep redirecting each other.
	pcA, pcB := uint64(0x1000), uint64(0x1000+16*4)
	p.Target(pcA, 0x2000)
	p.Target(pcB, 0x3000)
	if !p.Target(pcA, 0x2000) {
		t.Error("aliased BTB entry should redirect")
	}
	// The same jump twice in a row hits.
	if p.Target(pcA, 0x2000) {
		t.Error("repeated jump should hit BTB")
	}
}

func TestPredictorRAS(t *testing.T) {
	p := NewPredictor(PredictorConfig{HistoryBits: 10, BTBEntries: 64, RASDepth: 8})
	p.Call(0x1004)
	p.Call(0x2004)
	if p.Return(0x2004) {
		t.Error("matched return mispredicted")
	}
	if p.Return(0x1004) {
		t.Error("matched return mispredicted")
	}
	if !p.Return(0x9999) {
		t.Error("unmatched return should mispredict")
	}
}

func TestPrefetchFillsWithoutCounting(t *testing.T) {
	c := NewCache(CacheConfig{SizeKB: 8, LineSize: 64, Ways: 2})
	c.Prefetch(0x2000)
	if h, m := c.Stats(); h != 0 || m != 0 {
		t.Errorf("prefetch touched stats: %d/%d", h, m)
	}
	if !c.Contains(0x2000) {
		t.Error("prefetched line not resident")
	}
	if !c.Access(0x2000) {
		t.Error("demand access after prefetch should hit")
	}
	// Prefetching an already-resident line keeps it MRU.
	c.Access(0x2000 + 64*64) // same set, second way
	c.Prefetch(0x2000)       // re-touch first line
	c.Access(0x2000 + 2*64*64)
	if !c.Contains(0x2000) {
		t.Error("prefetch-touched line evicted before LRU peer")
	}
}
