package machine

import (
	"math/rand"
	"testing"

	"biaslab/internal/isa"
)

// TestBoundsNearWraparound is the regression test for the overflow-prone
// bounds check: a base register holding a small negative value produces an
// address near 2^64, where the old `addr+size > len(mem)` comparison
// wrapped around and admitted the access, panicking on the slice index.
// Both engines must return a clean out-of-bounds error instead.
func TestBoundsNearWraparound(t *testing.T) {
	cases := map[string][]isa.Inst{
		"load near 2^64": {
			{Op: isa.OpAddi, Rd: isa.T0, Rs1: isa.R0, Imm: -8}, // t0 = 0xffff_ffff_ffff_fff8
			{Op: isa.OpLdq, Rd: isa.T1, Rs1: isa.T0, Imm: 0},
			{Op: isa.OpHalt},
		},
		"store near 2^64": {
			{Op: isa.OpAddi, Rd: isa.T0, Rs1: isa.R0, Imm: -8},
			{Op: isa.OpStq, Rs1: isa.T0, Rs2: isa.T1, Imm: 0},
			{Op: isa.OpHalt},
		},
		"load wrapping through zero": {
			{Op: isa.OpAddi, Rd: isa.T0, Rs1: isa.R0, Imm: -3}, // straddles 2^64 → 0
			{Op: isa.OpLdq, Rd: isa.T1, Rs1: isa.T0, Imm: 0},
			{Op: isa.OpHalt},
		},
		"store wrapping through zero": {
			{Op: isa.OpAddi, Rd: isa.T0, Rs1: isa.R0, Imm: -3},
			{Op: isa.OpStq, Rs1: isa.T0, Rs2: isa.T1, Imm: 0},
			{Op: isa.OpHalt},
		},
	}
	for name, code := range cases {
		m := New(Core2())
		if _, err := m.Run(asmImage(code, 1<<16), 1000); err == nil {
			t.Errorf("%s: fast engine admitted the access", name)
		}
		if _, err := m.RunReference(asmImage(code, 1<<16), 1000); err == nil {
			t.Errorf("%s: reference engine admitted the access", name)
		}
	}

	// An access that starts in bounds but runs off the end must also fault
	// cleanly in both engines.
	const memSize = 1 << 16
	tail := []isa.Inst{
		{Op: isa.OpLui, Rd: isa.T0, Imm: 1}, // t0 = 1<<16 = memSize
		{Op: isa.OpLdq, Rd: isa.T1, Rs1: isa.T0, Imm: -4},
		{Op: isa.OpHalt},
	}
	m := New(Core2())
	if _, err := m.Run(asmImage(tail, memSize), 1000); err == nil {
		t.Error("tail overrun: fast engine admitted the access")
	}
	if _, err := m.RunReference(asmImage(tail, memSize), 1000); err == nil {
		t.Error("tail overrun: reference engine admitted the access")
	}
}

// TestCacheGenerationResetEquivalent drives a freshly built cache and a
// heavily reset one through the same access sequence and demands identical
// hit/miss behaviour — the generation-counter Reset must be observationally
// identical to constructing a new cache.
func TestCacheGenerationResetEquivalent(t *testing.T) {
	cfg := CacheConfig{Name: "t", SizeKB: 4, LineSize: 64, Ways: 2}
	fresh := NewCache(cfg)
	cycled := NewCache(cfg)
	rng := rand.New(rand.NewSource(7))
	addrs := make([]uint64, 4000)
	for i := range addrs {
		addrs[i] = uint64(rng.Intn(64 << 10))
	}
	for round := 0; round < 300; round++ {
		cycled.Access(uint64(rng.Intn(64 << 10))) // dirty some state
		cycled.Reset()
	}
	for i, a := range addrs {
		if fresh.Access(a) != cycled.Access(a) {
			t.Fatalf("access %d (addr %#x): reset cache diverged from fresh cache", i, a)
		}
	}
	fh, fm := fresh.Stats()
	ch, cm := cycled.Stats()
	if fh != ch || fm != cm {
		t.Fatalf("stats diverged: fresh %d/%d vs cycled %d/%d", fh, fm, ch, cm)
	}
}

// TestTLBGenerationResetEquivalent is the TLB analogue.
func TestTLBGenerationResetEquivalent(t *testing.T) {
	fresh := NewTLB(64, 4096)
	cycled := NewTLB(64, 4096)
	rng := rand.New(rand.NewSource(11))
	for round := 0; round < 300; round++ {
		cycled.Access(uint64(rng.Intn(16 << 20)))
		cycled.Reset()
	}
	for i := 0; i < 4000; i++ {
		a := uint64(rng.Intn(16 << 20))
		if fresh.Access(a) != cycled.Access(a) {
			t.Fatalf("access %d (addr %#x): reset TLB diverged from fresh TLB", i, a)
		}
	}
}

// TestPredictorGenerationResetEquivalent checks the predictor's O(1) reset
// against a freshly constructed predictor over a deterministic branch
// trace.
func TestPredictorGenerationResetEquivalent(t *testing.T) {
	cfg := PredictorConfig{HistoryBits: 10, BTBEntries: 256, RASDepth: 8}
	fresh := NewPredictor(cfg)
	cycled := NewPredictor(cfg)
	rng := rand.New(rand.NewSource(13))
	for round := 0; round < 300; round++ {
		cycled.Branch(uint64(rng.Intn(1<<16))&^3, rng.Intn(2) == 0)
		cycled.Target(uint64(rng.Intn(1<<16))&^3, uint64(rng.Intn(1<<16))&^3)
		cycled.Reset()
	}
	for i := 0; i < 4000; i++ {
		pc := uint64(rng.Intn(1<<16)) &^ 3
		taken := rng.Intn(3) > 0
		if fresh.Branch(pc, taken) != cycled.Branch(pc, taken) {
			t.Fatalf("branch %d at %#x: reset predictor diverged", i, pc)
		}
		tgt := uint64(rng.Intn(1<<16)) &^ 3
		if fresh.Target(pc, tgt) != cycled.Target(pc, tgt) {
			t.Fatalf("target %d at %#x: reset predictor diverged", i, pc)
		}
	}
}

// TestDegenerateGeometryPanics locks in construction-time validation: a
// silently truncated set count would corrupt the set mapping that the bias
// experiments measure, so these must refuse loudly.
func TestDegenerateGeometryPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("zero sets", func() {
		// 1 KB cannot hold one set of 32 ways × 64 B lines.
		NewCache(CacheConfig{Name: "z", SizeKB: 1, LineSize: 64, Ways: 32})
	})
	mustPanic("non-pot sets", func() {
		// 48 KB / (4 × 64 B) = 192 sets.
		NewCache(CacheConfig{Name: "npot", SizeKB: 48, LineSize: 64, Ways: 4})
	})
	mustPanic("non-pot line", func() {
		NewCache(CacheConfig{Name: "line", SizeKB: 16, LineSize: 48, Ways: 4})
	})
	mustPanic("zero ways", func() {
		NewCache(CacheConfig{Name: "ways", SizeKB: 16, LineSize: 64, Ways: 0})
	})
	mustPanic("tlb non-pot sets", func() {
		NewTLB(48, 4096) // 12 sets
	})
	mustPanic("tlb non-pot page", func() {
		NewTLB(64, 5000)
	})
	mustPanic("btb non-pot", func() {
		NewPredictor(PredictorConfig{HistoryBits: 8, BTBEntries: 100, RASDepth: 8})
	})
	mustPanic("ras empty", func() {
		NewPredictor(PredictorConfig{HistoryBits: 8, BTBEntries: 128, RASDepth: 0})
	})

	// Valid geometries must still construct.
	NewCache(CacheConfig{Name: "ok", SizeKB: 16, LineSize: 64, Ways: 4})
	NewTLB(64, 4096)
	NewPredictor(PredictorConfig{HistoryBits: 12, BTBEntries: 512, RASDepth: 16})
}
