package machine

import (
	"strings"
	"testing"

	"biaslab/internal/compiler"
	"biaslab/internal/ir"
	"biaslab/internal/linker"
	"biaslab/internal/loader"
)

// buildImage compiles sources, links them, and loads with the given options.
func buildImage(t *testing.T, cfg compiler.Config, opts loader.Options, srcs ...string) (*loader.Image, *ir.Program) {
	t.Helper()
	sources := make([]compiler.Source, len(srcs))
	for i, s := range srcs {
		sources[i] = compiler.Source{Name: "u" + string(rune('0'+i)) + ".cm", Text: s}
	}
	objs, prog, err := compiler.Compile(sources, cfg)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	exe, err := linker.Link(objs, linker.Options{})
	if err != nil {
		t.Fatalf("link: %v", err)
	}
	img, err := loader.Load(exe, opts)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	return img, prog
}

func irChecksum(t *testing.T, prog *ir.Program) uint64 {
	t.Helper()
	it, err := ir.NewInterp(prog)
	if err != nil {
		t.Fatal(err)
	}
	if err := it.Run(); err != nil {
		t.Fatal(err)
	}
	return it.Checksum
}

const smokeSrc = `
int acc;
int mix(int a, int b) { return a * 31 + b; }
void main() {
	acc = 7;
	for (int i = 0; i < 50; i++) {
		acc = mix(acc, i);
	}
	int local[32];
	for (int i = 0; i < 32; i++) {
		local[i] = acc + i;
	}
	int sum = 0;
	for (int i = 0; i < 32; i++) {
		sum += local[i];
	}
	checksum(sum);
	print(sum);
	putc('k');
}
`

func TestMachineMatchesOracle(t *testing.T) {
	for _, mc := range Configs() {
		m := New(mc)
		for _, lvl := range []compiler.Level{compiler.O0, compiler.O1, compiler.O2, compiler.O3} {
			for _, pers := range []compiler.Personality{compiler.GCC, compiler.ICC} {
				cfg := compiler.Config{Level: lvl, Personality: pers}
				img, prog := buildImage(t, cfg, loader.Options{Env: []string{"HOME=/root"}}, smokeSrc)
				want := irChecksum(t, prog)
				res, err := m.Run(img, 10_000_000)
				if err != nil {
					t.Fatalf("%s %v: %v", mc.Name, cfg, err)
				}
				if res.Checksum != want {
					t.Errorf("%s %v: checksum %d, want %d", mc.Name, cfg, res.Checksum, want)
				}
				if len(res.Output) != 2 || res.Output[1] != 'k' {
					t.Errorf("%s %v: output %v", mc.Name, cfg, res.Output)
				}
				if res.Counters.Instructions == 0 || res.Counters.Cycles == 0 {
					t.Errorf("%s %v: no cycles/instructions counted", mc.Name, cfg)
				}
			}
		}
	}
}

func TestOptimizationReducesCycles(t *testing.T) {
	m := New(Core2())
	run := func(lvl compiler.Level) uint64 {
		img, _ := buildImage(t, compiler.Config{Level: lvl}, loader.Options{}, smokeSrc)
		res, err := m.Run(img, 10_000_000)
		if err != nil {
			t.Fatal(err)
		}
		return res.Counters.Cycles
	}
	o0, o2 := run(compiler.O0), run(compiler.O2)
	if o2 >= o0 {
		t.Errorf("O2 (%d cycles) not faster than O0 (%d cycles)", o2, o0)
	}
}

// TestEnvSizeChangesCyclesNotOutput is the package's statement of the
// paper's thesis at unit scale: a bigger environment must leave the
// program's output untouched while (almost always) changing its cycles.
func TestEnvSizeChangesCyclesNotOutput(t *testing.T) {
	m := New(PentiumIV())
	cfg := compiler.Config{Level: compiler.O2}
	var cycles []uint64
	var sums []uint64
	for _, envSize := range []uint64{8, 512, 1024, 2048, 4096} {
		img, _ := buildImage(t, cfg, loader.Options{Env: loader.SyntheticEnv(envSize)}, smokeSrc)
		res, err := m.Run(img, 10_000_000)
		if err != nil {
			t.Fatal(err)
		}
		cycles = append(cycles, res.Counters.Cycles)
		sums = append(sums, res.Checksum)
	}
	for i := 1; i < len(sums); i++ {
		if sums[i] != sums[0] {
			t.Fatalf("environment size changed program output: %v", sums)
		}
	}
	distinct := map[uint64]bool{}
	for _, c := range cycles {
		distinct[c] = true
	}
	if len(distinct) < 2 {
		t.Logf("note: cycles identical across env sizes for this tiny program: %v", cycles)
	}
}

func TestDeterminism(t *testing.T) {
	m := New(Core2())
	cfg := compiler.Config{Level: compiler.O2}
	var prev *Result
	for i := 0; i < 3; i++ {
		img, _ := buildImage(t, cfg, loader.Options{Env: []string{"A=1"}}, smokeSrc)
		res, err := m.Run(img, 10_000_000)
		if err != nil {
			t.Fatal(err)
		}
		if prev != nil && (res.Counters.Cycles != prev.Counters.Cycles || res.Checksum != prev.Checksum) {
			t.Fatalf("run %d differs: %d vs %d cycles", i, res.Counters.Cycles, prev.Counters.Cycles)
		}
		prev = res
	}
}

func TestRuntimeFaults(t *testing.T) {
	cases := map[string]string{
		"div zero":  `int z; void main() { checksum(5 / z); }`,
		"wild load": `int a[2]; void main() { int* p = &a[0]; p += 9999999; checksum(*p); }`,
	}
	m := New(M5O3())
	for name, src := range cases {
		img, _ := buildImage(t, compiler.Config{Level: compiler.O0}, loader.Options{}, src)
		if _, err := m.Run(img, 1_000_000); err == nil {
			t.Errorf("%s: expected fault", name)
		}
	}
}

func TestInstructionBudget(t *testing.T) {
	src := `void main() { while (1) {} }`
	img, _ := buildImage(t, compiler.Config{}, loader.Options{}, src)
	m := New(Core2())
	if _, err := m.Run(img, 10_000); err == nil {
		t.Error("expected budget exhaustion")
	}
}

func TestCountersPopulated(t *testing.T) {
	img, _ := buildImage(t, compiler.Config{Level: compiler.O2}, loader.Options{}, smokeSrc)
	m := New(PentiumIV())
	res, err := m.Run(img, 10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	c := res.Counters
	if c.Loads == 0 || c.Stores == 0 || c.Branches == 0 || c.TakenBranches == 0 {
		t.Errorf("expected non-zero memory/branch counters: %+v", c)
	}
	if c.Syscalls != 4 { // checksum, print, putc, exit
		t.Errorf("syscalls = %d, want 4", c.Syscalls)
	}
	for _, name := range CounterNames() {
		if _, ok := c.Get(name); !ok {
			t.Errorf("counter %s not resolvable", name)
		}
	}
	if _, ok := c.Get("bogus"); ok {
		t.Error("bogus counter resolved")
	}
	if c.IPC() <= 0 || c.CPI() <= 0 {
		t.Error("IPC/CPI not positive")
	}
	if len(c.String()) == 0 {
		t.Error("String empty")
	}
}

func TestConfigByName(t *testing.T) {
	for _, name := range []string{"p4", "core2", "m5"} {
		if _, ok := ConfigByName(name); !ok {
			t.Errorf("ConfigByName(%s) failed", name)
		}
	}
	if _, ok := ConfigByName("vax"); ok {
		t.Error("ConfigByName(vax) should fail")
	}
	if len(Configs()) != 3 {
		t.Error("want 3 machine configs")
	}
}

func TestCyclesSyscall(t *testing.T) {
	src := `void main() { int c0 = cycles(); int c1 = cycles(); checksum(c1 >= c0); }`
	img, _ := buildImage(t, compiler.Config{Level: compiler.O0}, loader.Options{}, src)
	m := New(Core2())
	res, err := m.Run(img, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	// checksum(1): cycles must be monotonic.
	want := mixOne(1)
	if res.Checksum != want {
		t.Errorf("cycle counter not monotonic")
	}
}

func mixOne(v uint64) uint64 {
	sum := v
	sum = 0 ^ v
	sum *= 1099511628211
	sum ^= sum >> 29
	return sum
}

func TestProfiling(t *testing.T) {
	img, _ := buildImage(t, compiler.Config{Level: compiler.O2}, loader.Options{}, smokeSrc)
	m := New(Core2())
	m.EnableProfiling(true)
	res, err := m.Run(img, 10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Profile) == 0 {
		t.Fatal("empty profile")
	}
	names := map[string]bool{}
	var totalCycles, totalInstr uint64
	for _, f := range res.Profile {
		names[f.Name] = true
		totalCycles += f.Cycles
		totalInstr += f.Instructions
	}
	for _, want := range []string{"main", "mix", "_start"} {
		if !names[want] {
			t.Errorf("profile missing %s: %v", want, res.Profile)
		}
	}
	if totalInstr != res.Counters.Instructions {
		t.Errorf("profile instructions %d != total %d", totalInstr, res.Counters.Instructions)
	}
	if totalCycles != res.Counters.Cycles {
		t.Errorf("profile cycles %d != total %d", totalCycles, res.Counters.Cycles)
	}
	// Sorted descending by cycles.
	for i := 1; i < len(res.Profile); i++ {
		if res.Profile[i].Cycles > res.Profile[i-1].Cycles {
			t.Error("profile not sorted")
		}
	}
	if top := res.Profile.Top(1); len(top) != 1 {
		t.Error("Top wrong")
	}
	if !strings.Contains(res.Profile.String(), "function") {
		t.Error("profile table empty")
	}
	// Profiling must not change measured cycles vs unprofiled run.
	m2 := New(Core2())
	res2, err := m2.Run(img, 10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	// Note: img was consumed; rebuild for a clean comparison.
	img3, _ := buildImage(t, compiler.Config{Level: compiler.O2}, loader.Options{}, smokeSrc)
	res3, err := m2.Run(img3, 10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	_ = res2
	if res3.Counters.Cycles != res.Counters.Cycles {
		t.Errorf("profiling changed timing: %d vs %d", res3.Counters.Cycles, res.Counters.Cycles)
	}
}

func TestTracing(t *testing.T) {
	img, _ := buildImage(t, compiler.Config{Level: compiler.O2}, loader.Options{}, smokeSrc)
	m := New(Core2())
	ct := &CountingTracer{}
	m.SetTracer(ct)
	res, err := m.Run(img, 10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	var total uint64
	for _, c := range ct.Counts {
		total += c
	}
	if total != res.Counters.Instructions {
		t.Errorf("tracer saw %d instructions, machine counted %d", total, res.Counters.Instructions)
	}
	mix := ct.Mix()
	for _, key := range []string{"alu", "load", "store", "branch", "jump"} {
		if mix[key] == 0 {
			t.Errorf("instruction mix missing %s: %v", key, mix)
		}
	}
	// Tracing must not change timing.
	m.SetTracer(nil)
	img2, _ := buildImage(t, compiler.Config{Level: compiler.O2}, loader.Options{}, smokeSrc)
	res2, err := m.Run(img2, 10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Counters.Cycles != res.Counters.Cycles {
		t.Errorf("tracing changed timing: %d vs %d", res.Counters.Cycles, res2.Counters.Cycles)
	}
}

func TestWriterTracer(t *testing.T) {
	img, _ := buildImage(t, compiler.Config{Level: compiler.O0}, loader.Options{},
		`void main() { int x = 1; x += 2; checksum(x); }`)
	m := New(M5O3())
	var sb strings.Builder
	m.SetTracer(&WriterTracer{W: &sb, Limit: 50})
	if _, err := m.Run(img, 1_000_000); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	lines := strings.Count(out, "\n")
	if lines == 0 || lines > 50 {
		t.Errorf("trace lines = %d, want 1..50", lines)
	}
	for _, want := range []string{"jal", "cyc=", "mem="} {
		if !strings.Contains(out, want) {
			t.Errorf("trace missing %q:\n%s", want, out)
		}
	}
}
