package machine

import (
	"context"
	"encoding/binary"
	"fmt"

	"biaslab/internal/isa"
	"biaslab/internal/loader"
)

// This file is the threaded-code execute engine: a single dispatch loop over
// the predecoded micro-op array that walks straight-line code by array index
// instead of by architectural pc. Superblocks — runs of sequential uops
// between taken control transfers — execute with no per-op pc validation
// (the index bound subsumes it), a masked index test instead of a fetch-block
// lookup, and loop-local copies of the hot counters and model state flushed
// once per slice. The memory-system, branch-predictor and BTB fast paths are
// inlined with their table slices hoisted into locals, so the common all-hit
// instruction touches no pointer chains. The hottest sequential opcode pairs
// are additionally fused at predecode time into single dispatch handlers
// (see fusePairs).
//
// The engine is a pure throughput optimization: every handler charges the
// timing model in exactly the order stepFast (and therefore stepRef) does,
// and every irregular event — pc leaving the text segment, a misaligned
// indirect target, instrumentation, a non-power-of-two fetch block — exits
// the loop and defers to the per-op stepper, which reproduces the reference
// behaviour including the exact fault message. The differential matrix test
// holds all engines to bit-identical counters, output and checksums.

// Fused-pair dispatch codes, allocated above the architectural opcode space.
// A uop whose xop carries one of these executes itself AND its successor in
// one dispatch; the successor's uop is untouched, so a branch into the
// middle of a pair executes the second op standalone, bit-identically.
const (
	xLuiOri  = uint8(isa.NumOps) + iota // lui rd, hi ; ori rd, rd, lo
	xXorSltu                            // xor ; sltu (compare idiom)
	xAddiStq                            // addi ; stq
	xAddStq                             // add ; stq
	xStqAdd                             // stq ; add
	xStqAddi                            // stq ; addi
	xStqLdq                             // stq ; ldq (spill/reload, memcpy)
)

// fusePairs assigns dispatch codes: every uop gets its plain opcode, then
// the hot sequential pairs found by opcode-census profiling of the suite
// (ALU feeding a store, store followed by ALU or reload, 32-bit constant
// materialization, the xor/sltu compare idiom) are annotated on their first
// op. Fusion is machine-independent — fetch-block boundaries inside a pair
// are handled at execution time — so the shared predecode cache stays valid
// across machine models.
func fusePairs(u []uop) {
	for i := range u {
		u[i].xop = uint8(u[i].op)
	}
	for i := 0; i+1 < len(u); i++ {
		a, b := &u[i], &u[i+1]
		switch {
		case a.op == isa.OpLui && b.op == isa.OpOri && b.rs1 == a.rd && b.rd == a.rd:
			a.xop = xLuiOri
		case a.op == isa.OpXor && b.op == isa.OpSltu:
			a.xop = xXorSltu
		case a.op == isa.OpAddi && b.op == isa.OpStq:
			a.xop = xAddiStq
		case a.op == isa.OpAdd && b.op == isa.OpStq:
			a.xop = xAddStq
		case a.op == isa.OpStq && b.op == isa.OpAdd:
			a.xop = xStqAdd
		case a.op == isa.OpStq && b.op == isa.OpAddi:
			a.xop = xStqAddi
		case a.op == isa.OpStq && b.op == isa.OpLdq:
			a.xop = xStqLdq
		}
	}
}

// slowLoad executes a non-8-byte load the stepper's way (bounds, memory
// system, sign/zero extension). Counters must be flushed before the call.
func (m *Machine) slowLoad(u *uop, pc uint64) error {
	addr := uint64(m.regs[u.rs1&31] + u.imm)
	size := int(u.memSize)
	limit := uint64(len(m.mem))
	if addr >= limit || uint64(size) > limit-addr {
		m.pc = pc
		return m.fail("load at %#x out of bounds", addr)
	}
	m.dataAccess(addr, size, true)
	m.setReg(u.rd, m.loadMem(addr, u.op))
	return nil
}

// slowStore executes a non-8-byte store the stepper's way. Counters must be
// flushed before the call.
func (m *Machine) slowStore(u *uop, pc uint64) error {
	addr := uint64(m.regs[u.rs1&31] + u.imm)
	size := int(u.memSize)
	limit := uint64(len(m.mem))
	if addr >= limit || uint64(size) > limit-addr {
		m.pc = pc
		return m.fail("store at %#x out of bounds", addr)
	}
	if addr < m.textBase+m.textSize && addr+uint64(size) > m.textBase {
		m.pc = pc
		return m.fail("store at %#x into text segment", addr)
	}
	m.dataAccess(addr, size, false)
	m.storeMem(addr, m.regs[u.rs2&31], size)
	return nil
}

// itlbRef is fetch's ITLB reference after a page-memo miss.
func (m *Machine) itlbRef(pc, page uint64) {
	m.lastIPage = page
	if !m.itlb.Access(pc) {
		m.counters.ITLBMisses++
		m.charge(m.cfg.Penalties.ITLBMiss)
	}
}

// l1iRef is fetch's L1I reference after a line-memo miss.
func (m *Machine) l1iRef(pc, line uint64) {
	m.lastILine = line
	if !m.l1i.Access(pc) {
		m.counters.L1IMisses++
		if m.l2.Access(pc) {
			m.charge(m.cfg.Penalties.L1Miss)
		} else {
			m.counters.L2Misses++
			m.charge(m.cfg.Penalties.L2Miss)
		}
	}
}

// threadedSlack is how far runThreaded may overshoot its stop count. The
// budget test runs at fetch-block boundaries and taken transfers instead of
// per instruction, so the loop can run up to two blocks past stop; callers
// subtract the slack from their true limit and let the per-op stepper walk
// the remainder exactly.
const threadedSlack = 64

// runThreaded executes predecoded uops until the instruction count reaches
// stop (possibly overshooting by up to threadedSlack instructions — budget
// checks happen at fetch-block boundaries and taken transfers, not per
// instruction), the machine halts, execution leaves the text segment, or an
// execution fault occurs. On exit pc and the counters are flushed so the
// per-op stepper can continue seamlessly; fault exits return the identical
// error the stepper would have produced.
//
// The body duplicates the data-side reference sequence of dataAccess — DTLB
// page memo, DTLB MRU probe, L1D line memo, L1D MRU probe, split check,
// aliasing — at each 8-byte memory handler. A memo or MRU hit is a
// guaranteed hit that changes no replacement state, so only the statistics
// move; anything else falls through to the exact model calls dataAccess
// makes, keeping every engine bit-identical.
//
// Requires a power-of-two fetch block (all shipped configs); callers gate on
// m.fetchPot.
func (m *Machine) runThreaded(stop uint64) error {
	pc0 := m.pc
	textLo := m.textBase
	if off := pc0 - textLo; off >= m.textSize || pc0%uint64(isa.InstSize) != 0 {
		return nil // defer the fault to the stepper
	}
	instrs := m.counters.Instructions
	if stop-instrs < 2 || stop < instrs {
		return nil
	}
	uops := m.uops
	n := len(uops)
	i := int((pc0 - textLo) >> 2)
	acc := m.issueAcc
	width := m.cfg.IssueWidth
	pen := m.cfg.Penalties
	regs := &m.regs
	mem := m.mem
	memLimit := uint64(len(mem))
	if memLimit < 8 {
		return nil // degenerate image; the stepper handles every access
	}
	mem8 := memLimit - 8 // highest legal 8-byte access address
	// Text-overlap test folded to one compare: a store overlaps text iff
	// addr+8 > textLo && addr < textHi, i.e. addr-(textLo-7) < textSize+7.
	textOv := m.textSize + 7

	// pc&(fetchBlock-1)==0 expressed on the uop index: (textBase/4 + i) on
	// the block mask scaled down by the 4-byte instruction size.
	tb4 := textLo >> 2
	fbMask4 := uint64(m.cfg.FetchBlockBytes)>>2 - 1
	fetchBits := m.fetchBits
	ipageBits := m.itlb.pageBits
	ilineBits := m.l1i.lineBits

	// Data-side model state, hoisted so the all-hit path runs on registers.
	// The tables are fixed-size for the whole run (Reset only bumps gen, and
	// never mid-run), so the slices and generation snapshots stay valid.
	dlineBits := m.l1d.lineBits
	dpageBits := m.dtlb.pageBits
	memoOK := m.dMemoOK
	dTags, dGens, dMRU := m.l1d.tags, m.l1d.gens, m.l1d.mru
	dGen, dSetBits := m.l1d.gen, m.l1d.setBits
	dSetMask := uint64(1)<<dSetBits - 1
	dWays := m.l1d.ways
	dtPages, dtGens, dtMRU := m.dtlb.pages, m.dtlb.gens, m.dtlb.mru
	dtGen := m.dtlb.gen
	dtSetMask := uint64(1)<<m.dtlb.setBits - 1

	// Store-buffer aliasing state.
	sbOn := len(m.sbAddr) > 0
	sbAddrS, sbSeqS := m.sbAddr, m.sbSeq
	sbLen := len(sbAddrS)
	sbKC := &m.sbKeyCount
	sbKP := &m.sbKeyPage
	sbKS := &m.sbKeySeq
	aliasWin := m.cfg.AliasWindow

	// Branch machinery.
	pr := m.pred
	dirMask := uint64(1)<<pr.historyBits - 1
	hist := pr.history
	prDir, prDirGens := pr.direction, pr.dirGens
	prGen := pr.gen
	btbTargets, btbTags, btbGens := pr.btbTargets, pr.btbTags, pr.btbGens
	btbMask := uint64(1)<<pr.btbBits - 1
	btbShift := 2 + pr.btbBits
	misalignOn := pen.MisalignedEntry > 0

	// Event deltas, flushed once at loop exit. Nothing inside the loop reads
	// the flushed counters except Instructions (kept exact via the local and
	// explicit flushes before the aliasing scan, slow ops and syscalls) and
	// Cycles (flushed before syscalls for SysCycles).
	var cycles, loads, stores, fetchBlocks uint64
	var branches, prTaken, misp, takenB uint64
	var dtlbHits, l1dHits, itlbHits, l1iHits uint64
	var errOut error

	// Entry fetch: the loop's boundary test only covers sequential flow, so
	// the first instruction (and every jump target, at the jump sites below)
	// goes through the full front-end model, which early-outs within a block.
	m.fetch(pc0)
	// nb is the uop index of the next fetch-block boundary on sequential
	// flow, kept strictly ahead of i so the test is one compare per op. The
	// budget is checked here and at the jump sites — the only places a cycle
	// in the control-flow graph must pass through.
	blockStride := int(fbMask4) + 1
	nb := int(((tb4 + uint64(i)) | fbMask4) + 1 - tb4)
loop:
	for {
		if uint(i) >= uint(n) {
			// Off-text pc: the stepper reports the fault.
			m.pc = textLo + uint64(i)<<2
			break
		}
		u := &uops[i]
		// New fetch block on sequential flow: within a block the previous
		// op's fetch already made the block MRU, so the test is sufficient.
		// A backward jump to this exact boundary has already fetched the
		// block, hence the block recheck.
		if i == nb {
			if instrs >= stop {
				m.pc = textLo + uint64(i)<<2
				break
			}
			nb += blockStride
			pc := textLo + uint64(i)<<2
			if blk := pc >> fetchBits; blk != m.lastFetchBlock {
				m.lastFetchBlock = blk
				fetchBlocks++
				if page := pc >> ipageBits; page == m.lastIPage {
					itlbHits++
				} else {
					m.itlbRef(pc, page)
				}
				if line := pc >> ilineBits; line == m.lastILine {
					l1iHits++
				} else {
					m.l1iRef(pc, line)
				}
			}
		}
		instrs++
		acc++
		if acc >= width {
			cycles++
			acc = 0
		}

		switch u.xop {
		case uint8(isa.OpNop):

		case uint8(isa.OpAdd):
			regs[u.rd&31] = regs[u.rs1&31] + regs[u.rs2&31]
		case uint8(isa.OpSub):
			regs[u.rd&31] = regs[u.rs1&31] - regs[u.rs2&31]
		case uint8(isa.OpMul):
			m.counters.MulOps++
			cycles += pen.Mul
			m.setReg(u.rd, regs[u.rs1&31]*regs[u.rs2&31])
		case uint8(isa.OpDiv), uint8(isa.OpRem):
			m.counters.DivOps++
			cycles += pen.Div
			if regs[u.rs2&31] == 0 {
				m.pc = textLo + uint64(i)<<2
				errOut = m.fail("integer divide by zero")
				break loop
			}
			if u.op == isa.OpDiv {
				m.setReg(u.rd, regs[u.rs1&31]/regs[u.rs2&31])
			} else {
				m.setReg(u.rd, regs[u.rs1&31]%regs[u.rs2&31])
			}
		case uint8(isa.OpAnd):
			regs[u.rd&31] = regs[u.rs1&31] & regs[u.rs2&31]
		case uint8(isa.OpOr):
			regs[u.rd&31] = regs[u.rs1&31] | regs[u.rs2&31]
		case uint8(isa.OpXor):
			regs[u.rd&31] = regs[u.rs1&31] ^ regs[u.rs2&31]
		case uint8(isa.OpSll):
			regs[u.rd&31] = regs[u.rs1&31] << (uint64(regs[u.rs2&31]) & 63)
		case uint8(isa.OpSrl):
			regs[u.rd&31] = int64(uint64(regs[u.rs1&31]) >> (uint64(regs[u.rs2&31]) & 63))
		case uint8(isa.OpSra):
			regs[u.rd&31] = regs[u.rs1&31] >> (uint64(regs[u.rs2&31]) & 63)
		case uint8(isa.OpSlt):
			regs[u.rd&31] = b2i64(regs[u.rs1&31] < regs[u.rs2&31])
		case uint8(isa.OpSltu):
			regs[u.rd&31] = b2i64(uint64(regs[u.rs1&31]) < uint64(regs[u.rs2&31]))
		case uint8(isa.OpAddi):
			regs[u.rd&31] = regs[u.rs1&31] + u.imm
		case uint8(isa.OpMuli):
			m.counters.MulOps++
			cycles += pen.Mul
			m.setReg(u.rd, regs[u.rs1&31]*u.imm)
		case uint8(isa.OpAndi):
			regs[u.rd&31] = regs[u.rs1&31] & u.imm
		case uint8(isa.OpOri):
			regs[u.rd&31] = regs[u.rs1&31] | u.imm
		case uint8(isa.OpXori):
			regs[u.rd&31] = regs[u.rs1&31] ^ u.imm
		case uint8(isa.OpSlli):
			regs[u.rd&31] = regs[u.rs1&31] << uint64(u.imm)
		case uint8(isa.OpSrli):
			regs[u.rd&31] = int64(uint64(regs[u.rs1&31]) >> uint64(u.imm))
		case uint8(isa.OpSrai):
			regs[u.rd&31] = regs[u.rs1&31] >> uint64(u.imm)
		case uint8(isa.OpSlti):
			regs[u.rd&31] = b2i64(regs[u.rs1&31] < u.imm)
		case uint8(isa.OpSltiu):
			regs[u.rd&31] = b2i64(uint64(regs[u.rs1&31]) < uint64(u.imm))
		case uint8(isa.OpLui):
			regs[u.rd&31] = u.imm

		case uint8(isa.OpLdq):
			addr := uint64(regs[u.rs1&31] + u.imm)
			if addr > mem8 {
				m.pc = textLo + uint64(i)<<2
				errOut = m.fail("load at %#x out of bounds", addr)
				break loop
			}
			if page := addr >> dpageBits; page == m.lastDPage {
				dtlbHits++
			} else {
				m.lastDPage = page
				s := page & dtSetMask
				if wi := int(s)*tlbWays + int(dtMRU[s]); dtGens[wi] == dtGen && dtPages[wi] == page {
					dtlbHits++
				} else if !m.dtlb.Access(addr) {
					m.counters.DTLBMisses++
					cycles += pen.DTLBMiss
				}
			}
			line := addr >> dlineBits
			if memoOK && line == m.lastDLine {
				l1dHits++
			} else {
				if memoOK {
					m.lastDLine = line
				}
				s := line & dSetMask
				if wi := int(s)*dWays + int(dMRU[s]); dGens[wi] == dGen && dTags[wi] == line>>dSetBits {
					l1dHits++
				} else if !m.l1d.Access(addr) {
					m.counters.L1DMisses++
					if m.l2.Access(addr) {
						cycles += pen.L1Miss
					} else {
						m.counters.L2Misses++
						cycles += pen.L2Miss
					}
					if m.cfg.NextLinePrefetch {
						m.l1d.Prefetch(addr + uint64(m.l1d.LineSize()))
					}
				}
			}
			if line != (addr+7)>>dlineBits {
				m.counters.SplitAccesses++
				cycles += pen.SplitAccess
				m.dcacheRef(addr + 7)
			}
			loads++
			if sbOn {
				if key := addr >> 3 & 0x1ff; sbKC[key] != 0 && sbKP[key] != addr>>12 && instrs-sbKS[key] <= aliasWin {
					// The key's most recent store (still buffered — FIFO
					// eviction) is in the window. Single-page key: that
					// alone decides the stall. Mixed key: scan.
					if sbKP[key] != mixedPage {
						m.counters.Alias4KStalls++
						cycles += pen.Alias4K
					} else {
						m.counters.Instructions = instrs
						m.alias4K(addr)
					}
				}
			}
			if u.rd != 0 {
				regs[u.rd&31] = int64(binary.LittleEndian.Uint64(mem[addr:]))
			}

		case uint8(isa.OpLdb), uint8(isa.OpLdbu), uint8(isa.OpLdh), uint8(isa.OpLdhu), uint8(isa.OpLdw), uint8(isa.OpLdwu):
			m.counters.Instructions = instrs
			if err := m.slowLoad(u, textLo+uint64(i)<<2); err != nil {
				errOut = err
				break loop
			}

		case uint8(isa.OpStq):
			addr := uint64(regs[u.rs1&31] + u.imm)
			if addr > mem8 {
				m.pc = textLo + uint64(i)<<2
				errOut = m.fail("store at %#x out of bounds", addr)
				break loop
			}
			if addr+7-textLo < textOv {
				m.pc = textLo + uint64(i)<<2
				errOut = m.fail("store at %#x into text segment", addr)
				break loop
			}
			if page := addr >> dpageBits; page == m.lastDPage {
				dtlbHits++
			} else {
				m.lastDPage = page
				s := page & dtSetMask
				if wi := int(s)*tlbWays + int(dtMRU[s]); dtGens[wi] == dtGen && dtPages[wi] == page {
					dtlbHits++
				} else if !m.dtlb.Access(addr) {
					m.counters.DTLBMisses++
					cycles += pen.DTLBMiss
				}
			}
			line := addr >> dlineBits
			if memoOK && line == m.lastDLine {
				l1dHits++
			} else {
				if memoOK {
					m.lastDLine = line
				}
				s := line & dSetMask
				if wi := int(s)*dWays + int(dMRU[s]); dGens[wi] == dGen && dTags[wi] == line>>dSetBits {
					l1dHits++
				} else if !m.l1d.Access(addr) {
					m.counters.L1DMisses++
					if m.l2.Access(addr) {
						cycles += pen.L1Miss
					} else {
						m.counters.L2Misses++
						cycles += pen.L2Miss
					}
					if m.cfg.NextLinePrefetch {
						m.l1d.Prefetch(addr + uint64(m.l1d.LineSize()))
					}
				}
			}
			if line != (addr+7)>>dlineBits {
				m.counters.SplitAccesses++
				cycles += pen.SplitAccess
				m.dcacheRef(addr + 7)
			}
			stores++
			if sbOn {
				// recordStore, inlined with the local instruction count.
				pos := m.sbPos
				if old := sbAddrS[pos]; old != ^uint64(0) {
					sbKC[old>>3&0x1ff]--
				}
				sbAddrS[pos] = addr
				sbSeqS[pos] = instrs
				key := addr >> 3 & 0x1ff
				sbKS[key] = instrs
				page := addr >> 12
				if sbKC[key] == 0 {
					sbKP[key] = page
				} else if sbKP[key] != page {
					sbKP[key] = mixedPage
				}
				sbKC[key]++
				pos++
				if pos == sbLen {
					pos = 0
				}
				m.sbPos = pos
			}
			binary.LittleEndian.PutUint64(mem[addr:], uint64(regs[u.rs2&31]))

		case uint8(isa.OpStb), uint8(isa.OpSth), uint8(isa.OpStw):
			m.counters.Instructions = instrs
			if err := m.slowStore(u, textLo+uint64(i)<<2); err != nil {
				errOut = err
				break loop
			}

		case uint8(isa.OpBeq), uint8(isa.OpBne), uint8(isa.OpBlt), uint8(isa.OpBge), uint8(isa.OpBltu), uint8(isa.OpBgeu):
			branches++
			a, b := regs[u.rs1&31], regs[u.rs2&31]
			var taken bool
			switch u.xop {
			case uint8(isa.OpBeq):
				taken = a == b
			case uint8(isa.OpBne):
				taken = a != b
			case uint8(isa.OpBlt):
				taken = a < b
			case uint8(isa.OpBge):
				taken = a >= b
			case uint8(isa.OpBltu):
				taken = uint64(a) < uint64(b)
			default:
				taken = uint64(a) >= uint64(b)
			}
			pc := textLo + uint64(i)<<2
			// Predictor.Branch, inlined: gshare lookup + 2-bit counter
			// update + history shift.
			idx := int((pc>>2 ^ hist) & dirMask)
			ctr := int8(0)
			if prDirGens[idx] == prGen {
				ctr = prDir[idx]
			}
			predTaken := ctr >= 2
			if taken {
				if ctr < 3 {
					ctr++
				}
				prTaken++
				hist = hist<<1 | 1
			} else {
				if ctr > 0 {
					ctr--
				}
				hist = hist << 1
			}
			prDir[idx] = ctr
			prDirGens[idx] = prGen
			if predTaken != taken {
				misp++
				cycles += pen.Mispredict
			}
			if taken {
				// control + Predictor.Target, inlined: taken-branch charge,
				// direct-mapped BTB update, misaligned-target charge.
				takenB++
				cycles += pen.TakenBranch
				bidx := int(pc >> 2 & btbMask)
				btag := uint32(pc >> btbShift)
				var storedTag uint32
				var storedTarget uint64
				if btbGens[bidx] == prGen {
					storedTag, storedTarget = btbTags[bidx], btbTargets[bidx]
				}
				btbTargets[bidx] = u.target
				btbTags[bidx] = btag
				btbGens[bidx] = prGen
				if storedTag != btag || storedTarget != u.target {
					pr.btbMisses++
					m.counters.BTBRedirects++
					cycles += pen.BTBRedirect
				}
				if misalignOn && u.target%16 != 0 {
					m.counters.MisalignedTargets++
					cycles += pen.MisalignedEntry
				}
				if u.tidx < 0 {
					m.pc = u.target
					break loop
				}
				i = int(u.tidx)
				if instrs >= stop {
					m.pc = u.target
					break loop
				}
				m.fetch(u.target)
				nb = int(((tb4 + uint64(i)) | fbMask4) + 1 - tb4)
				continue
			}

		case uint8(isa.OpJmp):
			pc := textLo + uint64(i)<<2
			takenB++
			cycles += pen.TakenBranch
			bidx := int(pc >> 2 & btbMask)
			btag := uint32(pc >> btbShift)
			var storedTag uint32
			var storedTarget uint64
			if btbGens[bidx] == prGen {
				storedTag, storedTarget = btbTags[bidx], btbTargets[bidx]
			}
			btbTargets[bidx] = u.target
			btbTags[bidx] = btag
			btbGens[bidx] = prGen
			if storedTag != btag || storedTarget != u.target {
				pr.btbMisses++
				m.counters.BTBRedirects++
				cycles += pen.BTBRedirect
			}
			if misalignOn && u.target%16 != 0 {
				m.counters.MisalignedTargets++
				cycles += pen.MisalignedEntry
			}
			if u.tidx < 0 {
				m.pc = u.target
				break loop
			}
			i = int(u.tidx)
			if instrs >= stop {
				m.pc = u.target
				break loop
			}
			m.fetch(u.target)
			nb = int(((tb4 + uint64(i)) | fbMask4) + 1 - tb4)
			continue

		case uint8(isa.OpJal):
			pc := textLo + uint64(i)<<2
			next := pc + uint64(isa.InstSize)
			m.setReg(u.rd, int64(next))
			pr.Call(next)
			takenB++
			cycles += pen.TakenBranch
			bidx := int(pc >> 2 & btbMask)
			btag := uint32(pc >> btbShift)
			var storedTag uint32
			var storedTarget uint64
			if btbGens[bidx] == prGen {
				storedTag, storedTarget = btbTags[bidx], btbTargets[bidx]
			}
			btbTargets[bidx] = u.target
			btbTags[bidx] = btag
			btbGens[bidx] = prGen
			if storedTag != btag || storedTarget != u.target {
				pr.btbMisses++
				m.counters.BTBRedirects++
				cycles += pen.BTBRedirect
			}
			if misalignOn && u.target%16 != 0 {
				m.counters.MisalignedTargets++
				cycles += pen.MisalignedEntry
			}
			if u.tidx < 0 {
				m.pc = u.target
				break loop
			}
			i = int(u.tidx)
			if instrs >= stop {
				m.pc = u.target
				break loop
			}
			m.fetch(u.target)
			nb = int(((tb4 + uint64(i)) | fbMask4) + 1 - tb4)
			continue

		case uint8(isa.OpJalr):
			pc := textLo + uint64(i)<<2
			next := pc + uint64(isa.InstSize)
			target := uint64(regs[u.rs1&31])
			if u.rd == isa.R0 && u.rs1 == isa.RA {
				if pr.Return(target) {
					m.counters.RASMispredicts++
					cycles += pen.Mispredict
				}
			} else if u.rd != isa.R0 {
				pr.Call(next)
			}
			m.setReg(u.rd, int64(next))
			takenB++
			cycles += pen.TakenBranch
			if toff := target - textLo; toff >= m.textSize || target%uint64(isa.InstSize) != 0 {
				// Off-text or misaligned indirect target: the stepper
				// reports the fault on its next step, as the reference does.
				m.pc = target
				break loop
			}
			i = int((target - textLo) >> 2)
			if instrs >= stop {
				m.pc = target
				break loop
			}
			m.fetch(target)
			nb = int(((tb4 + uint64(i)) | fbMask4) + 1 - tb4)
			continue

		case uint8(isa.OpSys):
			m.counters.Syscalls++
			cycles += pen.Sys
			// The syscall may read the live cycle count (SysCycles), so the
			// deltas it can observe are flushed first.
			m.counters.Instructions = instrs
			m.counters.Cycles += cycles
			cycles = 0
			pc := textLo + uint64(i)<<2
			m.pc = pc
			if err := m.syscall(); err != nil {
				errOut = err
				break loop
			}
			if m.halted {
				m.pc = pc + uint64(isa.InstSize)
				break loop
			}

		case uint8(isa.OpHalt):
			m.halted = true
			m.pc = textLo + uint64(i)<<2 + uint64(isa.InstSize)
			break loop

		case xLuiOri:
			u2 := &uops[i+1]
			v := u.imm | u2.imm
			if i+1 == nb {
				nb += blockStride
				m.fetch(textLo + (uint64(i)+1)<<2)
			}
			instrs++
			acc++
			if acc >= width {
				cycles++
				acc = 0
			}
			regs[u.rd&31] = v
			i += 2
			continue

		case xXorSltu:
			regs[u.rd&31] = regs[u.rs1&31] ^ regs[u.rs2&31]
			u2 := &uops[i+1]
			if i+1 == nb {
				nb += blockStride
				m.fetch(textLo + (uint64(i)+1)<<2)
			}
			instrs++
			acc++
			if acc >= width {
				cycles++
				acc = 0
			}
			regs[u2.rd&31] = b2i64(uint64(regs[u2.rs1&31]) < uint64(regs[u2.rs2&31]))
			i += 2
			continue

		case xAddiStq, xAddStq:
			if u.xop == xAddiStq {
				regs[u.rd&31] = regs[u.rs1&31] + u.imm
			} else {
				regs[u.rd&31] = regs[u.rs1&31] + regs[u.rs2&31]
			}
			u2 := &uops[i+1]
			if i+1 == nb {
				nb += blockStride
				m.fetch(textLo + (uint64(i)+1)<<2)
			}
			instrs++
			acc++
			if acc >= width {
				cycles++
				acc = 0
			}
			addr := uint64(regs[u2.rs1&31] + u2.imm)
			if addr > mem8 {
				m.pc = textLo + (uint64(i)+1)<<2
				errOut = m.fail("store at %#x out of bounds", addr)
				break loop
			}
			if addr+7-textLo < textOv {
				m.pc = textLo + (uint64(i)+1)<<2
				errOut = m.fail("store at %#x into text segment", addr)
				break loop
			}
			if page := addr >> dpageBits; page == m.lastDPage {
				dtlbHits++
			} else {
				m.lastDPage = page
				s := page & dtSetMask
				if wi := int(s)*tlbWays + int(dtMRU[s]); dtGens[wi] == dtGen && dtPages[wi] == page {
					dtlbHits++
				} else if !m.dtlb.Access(addr) {
					m.counters.DTLBMisses++
					cycles += pen.DTLBMiss
				}
			}
			line := addr >> dlineBits
			if memoOK && line == m.lastDLine {
				l1dHits++
			} else {
				if memoOK {
					m.lastDLine = line
				}
				s := line & dSetMask
				if wi := int(s)*dWays + int(dMRU[s]); dGens[wi] == dGen && dTags[wi] == line>>dSetBits {
					l1dHits++
				} else if !m.l1d.Access(addr) {
					m.counters.L1DMisses++
					if m.l2.Access(addr) {
						cycles += pen.L1Miss
					} else {
						m.counters.L2Misses++
						cycles += pen.L2Miss
					}
					if m.cfg.NextLinePrefetch {
						m.l1d.Prefetch(addr + uint64(m.l1d.LineSize()))
					}
				}
			}
			if line != (addr+7)>>dlineBits {
				m.counters.SplitAccesses++
				cycles += pen.SplitAccess
				m.dcacheRef(addr + 7)
			}
			stores++
			if sbOn {
				pos := m.sbPos
				if old := sbAddrS[pos]; old != ^uint64(0) {
					sbKC[old>>3&0x1ff]--
				}
				sbAddrS[pos] = addr
				sbSeqS[pos] = instrs
				key := addr >> 3 & 0x1ff
				sbKS[key] = instrs
				page := addr >> 12
				if sbKC[key] == 0 {
					sbKP[key] = page
				} else if sbKP[key] != page {
					sbKP[key] = mixedPage
				}
				sbKC[key]++
				pos++
				if pos == sbLen {
					pos = 0
				}
				m.sbPos = pos
			}
			binary.LittleEndian.PutUint64(mem[addr:], uint64(regs[u2.rs2&31]))
			i += 2
			continue

		case xStqAdd, xStqAddi, xStqLdq:
			addr := uint64(regs[u.rs1&31] + u.imm)
			if addr > mem8 {
				m.pc = textLo + uint64(i)<<2
				errOut = m.fail("store at %#x out of bounds", addr)
				break loop
			}
			if addr+7-textLo < textOv {
				m.pc = textLo + uint64(i)<<2
				errOut = m.fail("store at %#x into text segment", addr)
				break loop
			}
			if page := addr >> dpageBits; page == m.lastDPage {
				dtlbHits++
			} else {
				m.lastDPage = page
				s := page & dtSetMask
				if wi := int(s)*tlbWays + int(dtMRU[s]); dtGens[wi] == dtGen && dtPages[wi] == page {
					dtlbHits++
				} else if !m.dtlb.Access(addr) {
					m.counters.DTLBMisses++
					cycles += pen.DTLBMiss
				}
			}
			line := addr >> dlineBits
			if memoOK && line == m.lastDLine {
				l1dHits++
			} else {
				if memoOK {
					m.lastDLine = line
				}
				s := line & dSetMask
				if wi := int(s)*dWays + int(dMRU[s]); dGens[wi] == dGen && dTags[wi] == line>>dSetBits {
					l1dHits++
				} else if !m.l1d.Access(addr) {
					m.counters.L1DMisses++
					if m.l2.Access(addr) {
						cycles += pen.L1Miss
					} else {
						m.counters.L2Misses++
						cycles += pen.L2Miss
					}
					if m.cfg.NextLinePrefetch {
						m.l1d.Prefetch(addr + uint64(m.l1d.LineSize()))
					}
				}
			}
			if line != (addr+7)>>dlineBits {
				m.counters.SplitAccesses++
				cycles += pen.SplitAccess
				m.dcacheRef(addr + 7)
			}
			stores++
			if sbOn {
				pos := m.sbPos
				if old := sbAddrS[pos]; old != ^uint64(0) {
					sbKC[old>>3&0x1ff]--
				}
				sbAddrS[pos] = addr
				sbSeqS[pos] = instrs
				key := addr >> 3 & 0x1ff
				sbKS[key] = instrs
				page := addr >> 12
				if sbKC[key] == 0 {
					sbKP[key] = page
				} else if sbKP[key] != page {
					sbKP[key] = mixedPage
				}
				sbKC[key]++
				pos++
				if pos == sbLen {
					pos = 0
				}
				m.sbPos = pos
			}
			binary.LittleEndian.PutUint64(mem[addr:], uint64(regs[u.rs2&31]))
			u2 := &uops[i+1]
			if i+1 == nb {
				nb += blockStride
				m.fetch(textLo + (uint64(i)+1)<<2)
			}
			instrs++
			acc++
			if acc >= width {
				cycles++
				acc = 0
			}
			switch u.xop {
			case xStqAdd:
				regs[u2.rd&31] = regs[u2.rs1&31] + regs[u2.rs2&31]
			case xStqAddi:
				regs[u2.rd&31] = regs[u2.rs1&31] + u2.imm
			default: // xStqLdq
				addr2 := uint64(regs[u2.rs1&31] + u2.imm)
				if addr2 > mem8 {
					m.pc = textLo + (uint64(i)+1)<<2
					errOut = m.fail("load at %#x out of bounds", addr2)
					break loop
				}
				if page := addr2 >> dpageBits; page == m.lastDPage {
					dtlbHits++
				} else {
					m.lastDPage = page
					s := page & dtSetMask
					if wi := int(s)*tlbWays + int(dtMRU[s]); dtGens[wi] == dtGen && dtPages[wi] == page {
						dtlbHits++
					} else if !m.dtlb.Access(addr2) {
						m.counters.DTLBMisses++
						cycles += pen.DTLBMiss
					}
				}
				line2 := addr2 >> dlineBits
				if memoOK && line2 == m.lastDLine {
					l1dHits++
				} else {
					if memoOK {
						m.lastDLine = line2
					}
					s := line2 & dSetMask
					if wi := int(s)*dWays + int(dMRU[s]); dGens[wi] == dGen && dTags[wi] == line2>>dSetBits {
						l1dHits++
					} else if !m.l1d.Access(addr2) {
						m.counters.L1DMisses++
						if m.l2.Access(addr2) {
							cycles += pen.L1Miss
						} else {
							m.counters.L2Misses++
							cycles += pen.L2Miss
						}
						if m.cfg.NextLinePrefetch {
							m.l1d.Prefetch(addr2 + uint64(m.l1d.LineSize()))
						}
					}
				}
				if line2 != (addr2+7)>>dlineBits {
					m.counters.SplitAccesses++
					cycles += pen.SplitAccess
					m.dcacheRef(addr2 + 7)
				}
				loads++
				if sbOn {
					if key := addr2 >> 3 & 0x1ff; sbKC[key] != 0 && sbKP[key] != addr2>>12 && instrs-sbKS[key] <= aliasWin {
						if sbKP[key] != mixedPage {
							m.counters.Alias4KStalls++
							cycles += pen.Alias4K
						} else {
							m.counters.Instructions = instrs
							m.alias4K(addr2)
						}
					}
				}
				if u2.rd != 0 {
					regs[u2.rd&31] = int64(binary.LittleEndian.Uint64(mem[addr2:]))
				}
			}
			i += 2
			continue

		default:
			m.pc = textLo + uint64(i)<<2
			errOut = m.fail("invalid opcode %v", u.op)
			break loop
		}
		i++
	}
	// Single flush point: every exit path above (fault, halt, off-text
	// transfer, budget) has set m.pc before breaking.
	m.counters.Instructions = instrs
	m.issueAcc = acc
	m.counters.Cycles += cycles
	m.counters.Loads += loads
	m.counters.Stores += stores
	m.counters.FetchBlocks += fetchBlocks
	m.counters.Branches += branches
	m.counters.BranchMispredicts += misp
	m.counters.TakenBranches += takenB
	m.dtlb.hits += dtlbHits
	m.l1d.hits += l1dHits
	m.itlb.hits += itlbHits
	m.l1i.hits += l1iHits
	pr.branches += branches
	pr.takenBranches += prTaken
	pr.mispredicts += misp
	pr.history = hist
	return errOut
}

// runSlice advances execution until halt, fault, or Instructions >= limit.
// The threaded engine does the bulk; the per-op stepper picks up the last
// one or two instructions of each slice and every irregular case (entry
// faults, off-text pc, non-power-of-two fetch blocks).
func (m *Machine) runSlice(limit uint64, instrumented bool) error {
	if instrumented {
		for !m.halted && m.counters.Instructions < limit {
			if err := m.step(); err != nil {
				return err
			}
		}
		return nil
	}
	for !m.halted && m.counters.Instructions < limit {
		// The threaded engine stops a slack short of the limit (its budget
		// checks are per block, not per op, so it may overshoot its stop
		// count); the per-op stepper walks the final stretch exactly.
		if m.fetchPot && limit-m.counters.Instructions > threadedSlack+2 {
			if err := m.runThreaded(limit - threadedSlack); err != nil {
				return err
			}
			if m.halted {
				break
			}
		}
		if err := m.stepFast(); err != nil {
			return err
		}
	}
	return nil
}

// batchChunk is how many instructions each batch member advances per
// round-robin turn: large enough to amortize loop-entry overhead, small
// enough that K setup variants stay interleaved (and cancellation stays
// responsive at the same granularity as RunCtx's polling).
const batchChunk = cancelPollInstrs

// RunBatch executes K loaded images — typically env-offset variants of one
// executable — each on its own machine, interleaved chunkwise in a single
// loop. All members share one predecoded micro-op array via the predecode
// cache, so a sweep decodes its binary once however many setups it steps.
// The machines are independent, so the interleaving cannot affect state:
// each result is bit-identical to what ms[k].RunCtx(ctx, imgs[k], maxInstr)
// returns. The first fault or budget trip aborts the whole batch; results
// are returned in input order.
func RunBatch(ctx context.Context, ms []*Machine, imgs []*loader.Image, maxInstr uint64) ([]*Result, error) {
	if len(ms) != len(imgs) {
		return nil, fmt.Errorf("machine: RunBatch needs one machine per image (%d machines, %d images)", len(ms), len(imgs))
	}
	if maxInstr == 0 {
		maxInstr = DefaultMaxInstructions
	}
	for _, m := range ms {
		if m.tracer != nil || m.profilingOn {
			// Instrumented runs take the ordinary path; batching exists to
			// amortize dispatch, which instrumentation defeats anyway.
			results := make([]*Result, len(ms))
			for k := range ms {
				r, err := ms[k].RunCtx(ctx, imgs[k], maxInstr)
				if err != nil {
					return nil, err
				}
				results[k] = r
			}
			return results, nil
		}
	}
	results := make([]*Result, len(ms))
	for k := range ms {
		ms[k].resetState(imgs[k])
		ms[k].uops = predecodedFor(imgs[k], ms[k].uopScratch)
		if imgs[k].Exe == nil {
			ms[k].uopScratch = ms[k].uops
		}
	}
	cancellable := ctx.Done() != nil
	remaining := len(ms)
	for remaining > 0 {
		if cancellable {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		for k, m := range ms {
			if results[k] != nil {
				continue
			}
			limit := maxInstr
			if l := m.counters.Instructions + batchChunk; l < limit {
				limit = l
			}
			if err := m.runSlice(limit, false); err != nil {
				return nil, err
			}
			if m.halted {
				results[k] = m.result()
				remaining--
			} else if m.counters.Instructions >= maxInstr {
				return nil, m.budgetErr(maxInstr)
			}
		}
	}
	return results, nil
}
