package machine

import "fmt"

// Validation of machine geometry. Config.Validate is the boundary check for
// configurations that arrive from outside the package (RegisterMachine,
// ablation studies, future config files); the constructors call the same
// checks and keep their panics purely as internal invariant guards for
// configurations that were never validated.

// validate reports why a cache geometry is unusable, or nil. The rules
// mirror what the set-index arithmetic assumes: positive associativity, a
// power-of-two line size, and a power-of-two set count that tiles the size
// exactly — a silently truncated set count would corrupt the set mapping
// that the bias experiments measure.
func (cfg CacheConfig) validate() error {
	line := cfg.LineSize
	if line == 0 {
		line = 64
	}
	if cfg.Ways <= 0 {
		return fmt.Errorf("cache %s: associativity %d must be positive", cfg.Name, cfg.Ways)
	}
	if line < 0 || line&(line-1) != 0 {
		return fmt.Errorf("cache %s: line size %d not a power of two", cfg.Name, line)
	}
	if cfg.SizeKB <= 0 {
		return fmt.Errorf("cache %s: size %d KB must be positive", cfg.Name, cfg.SizeKB)
	}
	sets := cfg.SizeKB * 1024 / (line * cfg.Ways)
	if sets == 0 {
		return fmt.Errorf("cache %s: %d KB holds no complete set of %d ways × %dB lines",
			cfg.Name, cfg.SizeKB, cfg.Ways, line)
	}
	if sets&(sets-1) != 0 || sets*line*cfg.Ways != cfg.SizeKB*1024 {
		return fmt.Errorf("cache %s: %d KB / (%d ways × %dB lines) yields %d sets, not a power of two",
			cfg.Name, cfg.SizeKB, cfg.Ways, line, sets)
	}
	return nil
}

// validateTLB reports why a TLB geometry is unusable, or nil. Entry counts
// below the associativity are rounded up to one full set before checking,
// matching NewTLB.
func validateTLB(entries, pageSize int) error {
	if entries < tlbWays {
		entries = tlbWays
	}
	if pageSize <= 0 || pageSize&(pageSize-1) != 0 {
		return fmt.Errorf("tlb: page size %d not a power of two", pageSize)
	}
	sets := entries / tlbWays
	if sets&(sets-1) != 0 || sets*tlbWays != entries {
		return fmt.Errorf("tlb: %d entries / %d ways yields %d sets, not a power of two",
			entries, tlbWays, sets)
	}
	return nil
}

// maxHistoryBits bounds the gshare table; beyond this the direction table
// allocation (2^n entries) stops being a plausible predictor and starts
// being a way to exhaust memory from a config file.
const maxHistoryBits = 24

// validate reports why a predictor geometry is unusable, or nil.
func (cfg PredictorConfig) validate() error {
	if cfg.HistoryBits > maxHistoryBits {
		return fmt.Errorf("predictor: history length %d exceeds %d bits", cfg.HistoryBits, maxHistoryBits)
	}
	if cfg.BTBEntries <= 0 || cfg.BTBEntries&(cfg.BTBEntries-1) != 0 {
		return fmt.Errorf("predictor: BTB entry count %d not a power of two", cfg.BTBEntries)
	}
	if cfg.RASDepth <= 0 {
		return fmt.Errorf("predictor: RAS depth %d must be positive", cfg.RASDepth)
	}
	return nil
}

// Validate reports the first reason cfg cannot be simulated, or nil. It
// covers every geometric assumption New relies on, so a validated config
// can be instantiated without panicking; callers that accept configurations
// from outside the process (custom machines, ablations) must check it
// before constructing a Machine.
func (cfg Config) Validate() error {
	if cfg.IssueWidth <= 0 {
		return fmt.Errorf("machine %q: issue width %d must be positive", cfg.Name, cfg.IssueWidth)
	}
	if cfg.FetchBlockBytes <= 0 {
		return fmt.Errorf("machine %q: fetch block %d bytes must be positive", cfg.Name, cfg.FetchBlockBytes)
	}
	for _, c := range []CacheConfig{cfg.L1I, cfg.L1D, cfg.L2} {
		if err := c.validate(); err != nil {
			return fmt.Errorf("machine %q: %w", cfg.Name, err)
		}
	}
	if err := validateTLB(cfg.ITLBEntries, cfg.PageSize); err != nil {
		return fmt.Errorf("machine %q: i%w", cfg.Name, err)
	}
	if err := validateTLB(cfg.DTLBEntries, cfg.PageSize); err != nil {
		return fmt.Errorf("machine %q: d%w", cfg.Name, err)
	}
	if err := cfg.Predictor.validate(); err != nil {
		return fmt.Errorf("machine %q: %w", cfg.Name, err)
	}
	if cfg.StoreBufferDepth < 0 {
		return fmt.Errorf("machine %q: store buffer depth %d must not be negative", cfg.Name, cfg.StoreBufferDepth)
	}
	return nil
}
