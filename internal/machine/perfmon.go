package machine

import (
	"fmt"
	"strings"
)

// Counters is the hardware-performance-monitor surface of a simulated
// machine: everything the paper's causal analysis reads off the PMU, exact
// rather than sampled because the machine is simulated.
type Counters struct {
	Cycles       uint64
	Instructions uint64

	FetchBlocks uint64
	L1IMisses   uint64
	L1DMisses   uint64
	L2Misses    uint64
	ITLBMisses  uint64
	DTLBMisses  uint64

	Loads  uint64
	Stores uint64

	Branches          uint64
	TakenBranches     uint64
	BranchMispredicts uint64
	BTBRedirects      uint64
	RASMispredicts    uint64

	Alias4KStalls     uint64
	SplitAccesses     uint64
	MisalignedTargets uint64

	MulOps   uint64
	DivOps   uint64
	Syscalls uint64
}

// IPC returns instructions per cycle.
func (c *Counters) IPC() float64 {
	if c.Cycles == 0 {
		return 0
	}
	return float64(c.Instructions) / float64(c.Cycles)
}

// CPI returns cycles per instruction.
func (c *Counters) CPI() float64 {
	if c.Instructions == 0 {
		return 0
	}
	return float64(c.Cycles) / float64(c.Instructions)
}

// Get returns a counter by name, supporting the causal-analysis framework's
// "pick a monitor by name" interface.
func (c *Counters) Get(name string) (uint64, bool) {
	m := map[string]uint64{
		"cycles":             c.Cycles,
		"instructions":       c.Instructions,
		"fetch_blocks":       c.FetchBlocks,
		"l1i_misses":         c.L1IMisses,
		"l1d_misses":         c.L1DMisses,
		"l2_misses":          c.L2Misses,
		"itlb_misses":        c.ITLBMisses,
		"dtlb_misses":        c.DTLBMisses,
		"loads":              c.Loads,
		"stores":             c.Stores,
		"branches":           c.Branches,
		"taken_branches":     c.TakenBranches,
		"branch_mispredicts": c.BranchMispredicts,
		"btb_redirects":      c.BTBRedirects,
		"ras_mispredicts":    c.RASMispredicts,
		"alias4k_stalls":     c.Alias4KStalls,
		"split_accesses":     c.SplitAccesses,
		"misaligned_targets": c.MisalignedTargets,
		"mul_ops":            c.MulOps,
		"div_ops":            c.DivOps,
		"syscalls":           c.Syscalls,
	}
	v, ok := m[name]
	return v, ok
}

// CounterNames lists every counter Get understands, in a stable order.
func CounterNames() []string {
	return []string{
		"cycles", "instructions", "fetch_blocks", "l1i_misses", "l1d_misses",
		"l2_misses", "itlb_misses", "dtlb_misses", "loads", "stores",
		"branches", "taken_branches", "branch_mispredicts", "btb_redirects",
		"ras_mispredicts", "alias4k_stalls", "split_accesses",
		"misaligned_targets", "mul_ops", "div_ops", "syscalls",
	}
}

// String renders the counters as an aligned table.
func (c *Counters) String() string {
	var sb strings.Builder
	for _, name := range CounterNames() {
		v, _ := c.Get(name)
		fmt.Fprintf(&sb, "%-20s %12d\n", name, v)
	}
	fmt.Fprintf(&sb, "%-20s %12.3f\n", "ipc", c.IPC())
	return sb.String()
}
