package machine

// Penalties holds the extra-cycle charges of the timing model. The model is
// cycle-approximate: every instruction costs 1/IssueWidth cycles at base
// rate, and each microarchitectural event adds its penalty. That is exactly
// the level of fidelity the paper's bias channels need — all of them act by
// changing *event counts* (conflict misses, aliasing replays, redirects),
// not by reordering a pipeline.
type Penalties struct {
	L1Miss          uint64 // L1 miss that hits L2
	L2Miss          uint64 // miss to memory
	ITLBMiss        uint64
	DTLBMiss        uint64
	Mispredict      uint64 // conditional-branch direction mispredict
	BTBRedirect     uint64 // taken transfer with wrong/missing BTB entry
	TakenBranch     uint64 // fetch bubble on any taken transfer
	MisalignedEntry uint64 // extra bubble when a taken target is not 16B-aligned
	SplitAccess     uint64 // load/store crossing a cache line
	Alias4K         uint64 // load aliasing an in-flight store at 4 KiB distance
	Mul             uint64
	Div             uint64
	Sys             uint64
}

// Config describes one simulated machine.
type Config struct {
	Name       string
	IssueWidth int

	L1I CacheConfig
	L1D CacheConfig
	L2  CacheConfig

	ITLBEntries int
	DTLBEntries int
	PageSize    int

	Predictor PredictorConfig

	Penalties Penalties

	// StoreBufferDepth is the number of recent stores checked for 4 KiB
	// aliasing (0 disables the hazard, as many simulators do).
	StoreBufferDepth int
	// AliasWindow is how many instructions a store stays "in flight" for
	// aliasing purposes.
	AliasWindow uint64
	// FetchBlockBytes is the front end's fetch granularity.
	FetchBlockBytes int
	// NextLinePrefetch enables a simple L1D next-line prefetcher: every
	// demand miss also fills the following line. Off for the three paper
	// machines (their configs predate aggressive prefetching in the m5
	// defaults of the era); used by the A3 ablation to show prefetching
	// dampens conflict-carried bias.
	NextLinePrefetch bool
}

// PentiumIV models the paper's Pentium 4 machine: a deep pipeline with a
// small low-associativity L1, an expensive mispredict, and the P4's
// notorious address-aliasing replays. It is the most layout-sensitive of
// the three machines, as in the paper.
func PentiumIV() Config {
	return Config{
		Name:        "Pentium 4",
		IssueWidth:  2,
		L1I:         CacheConfig{Name: "L1I", SizeKB: 16, LineSize: 64, Ways: 4},
		L1D:         CacheConfig{Name: "L1D", SizeKB: 16, LineSize: 64, Ways: 4},
		L2:          CacheConfig{Name: "L2", SizeKB: 512, LineSize: 64, Ways: 8},
		ITLBEntries: 64, DTLBEntries: 64, PageSize: 4096,
		Predictor: PredictorConfig{HistoryBits: 12, BTBEntries: 512, RASDepth: 8},
		Penalties: Penalties{
			L1Miss: 18, L2Miss: 350, ITLBMiss: 55, DTLBMiss: 55,
			Mispredict: 24, BTBRedirect: 8, TakenBranch: 1,
			MisalignedEntry: 2, SplitAccess: 6, Alias4K: 12,
			Mul: 4, Div: 40, Sys: 150,
		},
		StoreBufferDepth: 24,
		AliasWindow:      80,
		FetchBlockBytes:  16,
	}
}

// Core2 models the paper's Core 2 machine: wider issue, larger and more
// associative caches, cheaper mispredicts, milder (but present) aliasing.
func Core2() Config {
	return Config{
		Name:        "Core 2",
		IssueWidth:  3,
		L1I:         CacheConfig{Name: "L1I", SizeKB: 32, LineSize: 64, Ways: 8},
		L1D:         CacheConfig{Name: "L1D", SizeKB: 32, LineSize: 64, Ways: 8},
		L2:          CacheConfig{Name: "L2", SizeKB: 4096, LineSize: 64, Ways: 16},
		ITLBEntries: 128, DTLBEntries: 256, PageSize: 4096,
		Predictor: PredictorConfig{HistoryBits: 12, BTBEntries: 2048, RASDepth: 16},
		Penalties: Penalties{
			L1Miss: 12, L2Miss: 200, ITLBMiss: 30, DTLBMiss: 30,
			Mispredict: 15, BTBRedirect: 6, TakenBranch: 1,
			MisalignedEntry: 1, SplitAccess: 3, Alias4K: 5,
			Mul: 2, Div: 20, Sys: 100,
		},
		StoreBufferDepth: 32,
		AliasWindow:      60,
		FetchBlockBytes:  16,
	}
}

// M5O3 models the paper's third platform, the m5 simulator's O3CPU: an
// idealized out-of-order core with low-associativity caches and none of the
// x86 address-aliasing hazards — yet still layout-sensitive through its
// 2-way L1s, reproducing the paper's point that even simulated machines
// exhibit measurement bias.
func M5O3() Config {
	return Config{
		Name:        "m5 O3CPU",
		IssueWidth:  4,
		L1I:         CacheConfig{Name: "L1I", SizeKB: 16, LineSize: 64, Ways: 2},
		L1D:         CacheConfig{Name: "L1D", SizeKB: 16, LineSize: 64, Ways: 2},
		L2:          CacheConfig{Name: "L2", SizeKB: 1024, LineSize: 64, Ways: 8},
		ITLBEntries: 64, DTLBEntries: 64, PageSize: 4096,
		Predictor: PredictorConfig{HistoryBits: 13, BTBEntries: 4096, RASDepth: 16},
		Penalties: Penalties{
			L1Miss: 10, L2Miss: 150, ITLBMiss: 20, DTLBMiss: 20,
			Mispredict: 8, BTBRedirect: 4, TakenBranch: 0,
			MisalignedEntry: 0, SplitAccess: 2, Alias4K: 0,
			Mul: 3, Div: 20, Sys: 50,
		},
		StoreBufferDepth: 0,
		AliasWindow:      0,
		FetchBlockBytes:  32,
	}
}

// Configs returns the three machines of the paper's evaluation, in the
// order the paper presents them.
func Configs() []Config {
	return []Config{PentiumIV(), Core2(), M5O3()}
}

// ConfigByName resolves "p4"/"pentium4", "core2", or "m5"/"m5o3".
func ConfigByName(name string) (Config, bool) {
	switch name {
	case "p4", "pentium4", "Pentium 4":
		return PentiumIV(), true
	case "core2", "Core 2":
		return Core2(), true
	case "m5", "m5o3", "m5 O3CPU":
		return M5O3(), true
	}
	return Config{}, false
}
