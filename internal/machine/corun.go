package machine

import "biaslab/internal/loader"

// Incremental execution API for multi-tenant co-runs (internal/tenancy).
//
// A co-run steps two programs through ONE timing model: the tenants share
// the caches, TLBs and branch predictor, while everything architectural —
// memory, registers, pc, predecoded text, counters, store buffer — stays
// per-tenant. The scheduler owns the interleaving policy; this file only
// exposes the pieces: a shared-model constructor, a bounded stepper that
// stops exactly at a retired-instruction limit, and the memo flush that
// keeps per-tenant fast paths honest about shared-state eviction.

// NewSharedModel returns a fresh Machine that shares m's cache, TLB and
// predictor structures. The two machines must not execute concurrently;
// a co-run interleaves them in one goroutine. All per-tenant state (store
// buffer, memos, counters, fetch configuration) is the new machine's own.
func (m *Machine) NewSharedModel() *Machine {
	t := &Machine{
		cfg:  m.cfg,
		l1i:  m.l1i,
		l1d:  m.l1d,
		l2:   m.l2,
		itlb: m.itlb,
		dtlb: m.dtlb,
		pred: m.pred,
	}
	if m.cfg.StoreBufferDepth > 0 {
		t.sbAddr = make([]uint64, m.cfg.StoreBufferDepth)
		t.sbSeq = make([]uint64, m.cfg.StoreBufferDepth)
	}
	t.fetchBits = m.fetchBits
	t.fetchPot = m.fetchPot
	t.dMemoOK = m.dMemoOK
	return t
}

// BeginRun prepares the machine to execute img incrementally via StepTo:
// full state reset (including the — possibly shared — timing model) plus
// predecode. Resetting the shared model more than once before any tenant
// executes is harmless: the resets are idempotent generation bumps.
func (m *Machine) BeginRun(img *loader.Image) {
	m.resetState(img)
	m.uops = predecodedFor(img, m.uopScratch)
	if img.Exe == nil {
		m.uopScratch = m.uops
	}
}

// StepTo advances execution until the machine halts, faults, or has
// retired at least limit instructions in total — exactly limit when the
// program runs that far, which is what makes quantum scheduling
// deterministic. A full run driven by a single StepTo call is
// bit-identical to RunCtx.
func (m *Machine) StepTo(limit uint64) (halted bool, err error) {
	if err := m.runSlice(limit, m.tracer != nil || m.prof != nil); err != nil {
		return m.halted, err
	}
	return m.halted, nil
}

// FlushMemos invalidates the last-reference memos (MRU line/page/fetch
// block). The memos assert "this line was just referenced by me, so it is
// still resident and MRU" — a co-tenant's turn on the shared hierarchy can
// evict any of those lines, so the scheduler flushes them at every switch-
// in. The next reference then re-probes the real model and observes the
// eviction (or re-confirms the hit); for a line that is still MRU the probe
// is state-identical to the memo fast path, so flushing is always safe.
func (m *Machine) FlushMemos() {
	m.lastDLine = ^uint64(0)
	m.lastDPage = ^uint64(0)
	m.lastILine = ^uint64(0)
	m.lastIPage = ^uint64(0)
	m.lastFetchBlock = ^uint64(0)
}

// Halted reports whether the current incremental run has halted.
func (m *Machine) Halted() bool { return m.halted }

// Retired returns the instructions retired so far in the current run.
func (m *Machine) Retired() uint64 { return m.counters.Instructions }

// TakeResult returns the result of a halted incremental run.
func (m *Machine) TakeResult() *Result { return m.result() }

// BudgetErr builds the standard budget-exhaustion error for an
// incremental run that retired maxInstr instructions without halting.
func (m *Machine) BudgetErr(maxInstr uint64) error { return m.budgetErr(maxInstr) }
