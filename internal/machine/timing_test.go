package machine

import (
	"testing"

	"biaslab/internal/isa"
	"biaslab/internal/loader"
)

// asmImage hand-assembles instructions into a runnable image, bypassing the
// toolchain so each timing mechanism can be probed in isolation.
func asmImage(code []isa.Inst, memSize int) *loader.Image {
	const textBase = 0x1000
	mem := make([]byte, memSize)
	off := textBase
	for _, in := range code {
		w := isa.Encode(in)
		mem[off] = byte(w)
		mem[off+1] = byte(w >> 8)
		mem[off+2] = byte(w >> 16)
		mem[off+3] = byte(w >> 24)
		off += 4
	}
	return &loader.Image{
		Mem:      mem,
		Entry:    textBase,
		SP:       uint64(memSize - 64),
		TextBase: textBase,
		TextSize: uint64(len(code) * isa.InstSize),
	}
}

func mustRun(t *testing.T, m *Machine, img *loader.Image) *Result {
	t.Helper()
	res, err := m.Run(img, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestAlias4KPenaltyFires(t *testing.T) {
	// Store to X, then immediately load X+4096: identical bits [11:3],
	// different page — the partial-address matcher must flag it on the P4
	// model and stay silent on m5 (no store buffer).
	code := []isa.Inst{
		{Op: isa.OpLui, Rd: isa.T0, Imm: 2},                   // t0 = 0x20000
		{Op: isa.OpAddi, Rd: isa.T1, Rs1: isa.R0, Imm: 7},     // t1 = 7
		{Op: isa.OpStq, Rs1: isa.T0, Rs2: isa.T1, Imm: 0},     // [t0] = 7
		{Op: isa.OpLui, Rd: isa.T2, Imm: 2},                   // t2 = 0x20000
		{Op: isa.OpOri, Rd: isa.T2, Rs1: isa.T2, Imm: 0x1000}, // +4096
		{Op: isa.OpLdq, Rd: isa.T3, Rs1: isa.T2, Imm: 0},      // load aliased
		{Op: isa.OpHalt},
	}
	img := asmImage(code, 1<<20)
	p4 := mustRun(t, New(PentiumIV()), img)
	if p4.Counters.Alias4KStalls != 1 {
		t.Errorf("P4 alias stalls = %d, want 1", p4.Counters.Alias4KStalls)
	}
	m5 := mustRun(t, New(M5O3()), asmImage(code, 1<<20))
	if m5.Counters.Alias4KStalls != 0 {
		t.Errorf("m5 alias stalls = %d, want 0 (not modelled)", m5.Counters.Alias4KStalls)
	}
}

func TestAlias4KIgnoresSamePage(t *testing.T) {
	// Load of the exact stored address must NOT count as aliasing.
	code := []isa.Inst{
		{Op: isa.OpLui, Rd: isa.T0, Imm: 2},
		{Op: isa.OpAddi, Rd: isa.T1, Rs1: isa.R0, Imm: 7},
		{Op: isa.OpStq, Rs1: isa.T0, Rs2: isa.T1, Imm: 0},
		{Op: isa.OpLdq, Rd: isa.T3, Rs1: isa.T0, Imm: 0},
		{Op: isa.OpHalt},
	}
	res := mustRun(t, New(PentiumIV()), asmImage(code, 1<<20))
	if res.Counters.Alias4KStalls != 0 {
		t.Errorf("same-address load counted as alias: %d", res.Counters.Alias4KStalls)
	}
}

func TestSplitAccessPenalty(t *testing.T) {
	// An 8-byte load at line offset 60 crosses a 64-byte line.
	code := []isa.Inst{
		{Op: isa.OpLui, Rd: isa.T0, Imm: 2},
		{Op: isa.OpAddi, Rd: isa.T0, Rs1: isa.T0, Imm: 60},
		{Op: isa.OpLdq, Rd: isa.T1, Rs1: isa.T0, Imm: 0},
		{Op: isa.OpHalt},
	}
	res := mustRun(t, New(Core2()), asmImage(code, 1<<20))
	if res.Counters.SplitAccesses != 1 {
		t.Errorf("split accesses = %d, want 1", res.Counters.SplitAccesses)
	}
	// Aligned access: no split.
	code[1].Imm = 56
	res = mustRun(t, New(Core2()), asmImage(code, 1<<20))
	if res.Counters.SplitAccesses != 0 {
		t.Errorf("aligned access counted as split: %d", res.Counters.SplitAccesses)
	}
}

func TestIssueWidthBoundsCycles(t *testing.T) {
	// 400 independent ALU instructions: base cycles ≈ N/width (+ cold
	// start penalties). Core 2 (width 3) must retire them in fewer cycles
	// than Pentium 4 (width 2).
	var code []isa.Inst
	for i := 0; i < 400; i++ {
		code = append(code, isa.Inst{Op: isa.OpAddi, Rd: isa.T0, Rs1: isa.T0, Imm: 1})
	}
	code = append(code, isa.Inst{Op: isa.OpHalt})
	c2 := mustRun(t, New(Core2()), asmImage(code, 1<<20))
	p4 := mustRun(t, New(PentiumIV()), asmImage(code, 1<<20))
	if c2.Counters.Cycles >= p4.Counters.Cycles {
		t.Errorf("wider Core 2 (%d cyc) not faster than P4 (%d cyc)", c2.Counters.Cycles, p4.Counters.Cycles)
	}
	// Sanity: cycles at least N/width.
	if c2.Counters.Cycles < 400/3 {
		t.Errorf("Core 2 cycles %d below issue bound", c2.Counters.Cycles)
	}
}

func TestMisalignedTargetPenalty(t *testing.T) {
	// A taken jump to a non-16-byte-aligned target pays the entry bubble
	// on P4 (penalty 2) but not on m5 (penalty 0).
	code := []isa.Inst{
		{Op: isa.OpJmp, Imm: 1}, // jump over one instruction → target 0x1008 (mod 16 = 8)
		{Op: isa.OpNop},
		{Op: isa.OpHalt},
	}
	p4 := mustRun(t, New(PentiumIV()), asmImage(code, 1<<20))
	if p4.Counters.MisalignedTargets != 1 {
		t.Errorf("P4 misaligned targets = %d, want 1", p4.Counters.MisalignedTargets)
	}
	m5 := mustRun(t, New(M5O3()), asmImage(code, 1<<20))
	if m5.Counters.MisalignedTargets != 0 {
		t.Errorf("m5 misaligned targets = %d, want 0", m5.Counters.MisalignedTargets)
	}
}

func TestICacheConflictSensitivity(t *testing.T) {
	// Two hot code regions a cache-way apart: on the 2-way m5 L1I they
	// plus a third region cause conflict misses; verify the I-cache model
	// responds to layout distance. Region stride = one full L1I way
	// (16KB/2 = 8KB ⇒ same set, different tag).
	mkLoop := func(stride int) []isa.Inst {
		// Loop body at entry calls (jumps) forward to region B and back,
		// 2000 iterations; with three regions mapping to one set on a
		// 2-way cache, every fetch conflicts.
		var code []isa.Inst
		code = append(code,
			isa.Inst{Op: isa.OpAddi, Rd: isa.S0, Rs1: isa.R0, Imm: 2000}, // counter
			// loop: (index 1)
			isa.Inst{Op: isa.OpJmp, Imm: int32(stride/4) - 1}, // to region B
		)
		// pad to region B
		for len(code) < stride/4+1 {
			code = append(code, isa.Inst{Op: isa.OpNop})
		}
		// region B: jump to region C
		code = append(code, isa.Inst{Op: isa.OpJmp, Imm: int32(stride/4) - 1})
		for len(code) < 2*(stride/4)+1 {
			code = append(code, isa.Inst{Op: isa.OpNop})
		}
		// region C: decrement, loop back to index 1
		code = append(code,
			isa.Inst{Op: isa.OpAddi, Rd: isa.S0, Rs1: isa.S0, Imm: -1},
			isa.Inst{Op: isa.OpBne, Rs1: isa.S0, Rs2: isa.R0, Imm: int32(-(2*(stride/4) + 2))},
			isa.Inst{Op: isa.OpHalt},
		)
		return code
	}
	conflicting := mustRun(t, New(M5O3()), asmImage(mkLoop(8192), 1<<20))
	friendly := mustRun(t, New(M5O3()), asmImage(mkLoop(8192+64), 1<<20))
	if conflicting.Counters.L1IMisses <= friendly.Counters.L1IMisses*2 {
		t.Errorf("I-cache conflicts not layout-sensitive: same-set %d misses vs offset %d",
			conflicting.Counters.L1IMisses, friendly.Counters.L1IMisses)
	}
}

func TestRASPredictsCallReturn(t *testing.T) {
	// call f; f returns — the return must hit the RAS (no mispredict).
	code := []isa.Inst{
		{Op: isa.OpJal, Rd: isa.RA, Imm: (0x1000 + 12) / 4}, // call f at +12
		{Op: isa.OpHalt},
		{Op: isa.OpNop},
		// f:
		{Op: isa.OpJalr, Rd: isa.R0, Rs1: isa.RA}, // return
	}
	res := mustRun(t, New(Core2()), asmImage(code, 1<<20))
	if res.Counters.RASMispredicts != 0 {
		t.Errorf("matched return mispredicted %d times", res.Counters.RASMispredicts)
	}
}
