package machine

import (
	"sync"

	"biaslab/internal/isa"
	"biaslab/internal/linker"
	"biaslab/internal/loader"
)

// uop is one predecoded micro-operation: an instruction with every
// pc- and encoding-dependent quantity already computed, so the execute
// loop does no sign extension, no immediate re-interpretation, and no
// branch-target arithmetic per step. The lowering is purely mechanical —
// a uop executes bit-identically to decoding and interpreting the raw
// instruction word at the same pc.
type uop struct {
	op      isa.Op
	rd      isa.Reg
	rs1     isa.Reg
	rs2     isa.Reg
	memSize uint8 // access width for loads/stores
	// xop is the threaded engine's dispatch code: uint8(op) for a plain
	// micro-op, or one of the fused-pair codes (see threaded.go) meaning
	// "execute this op and the next one under a single dispatch". The plain
	// op is always preserved alongside, so an engine that ignores xop — or a
	// branch that lands in the middle of a fused pair — executes the same
	// instruction stream unfused, bit-identically.
	xop uint8
	// tidx is the uop index of the static control-transfer target, or -1
	// when the target leaves the text segment (the engine then defers to the
	// stepper, which reports the fault exactly as the reference does).
	tidx   int32
	imm    int64  // operand immediate, pre-extended per op semantics
	target uint64 // absolute control-transfer target (branch/jmp/jal)
}

// lowerInst turns one decoded instruction at pc into a micro-op.
func lowerInst(in isa.Inst, pc uint64) uop {
	u := uop{op: in.Op, rd: in.Rd, rs1: in.Rs1, rs2: in.Rs2}
	next := pc + uint64(isa.InstSize)
	switch in.Op {
	case isa.OpAndi, isa.OpOri, isa.OpXori, isa.OpSltiu:
		u.imm = int64(uint16(in.Imm)) // zero-extended logical immediates
	case isa.OpLui:
		u.imm = int64(uint64(uint16(in.Imm)) << 16)
	case isa.OpSlli, isa.OpSrli, isa.OpSrai:
		u.imm = int64(uint32(in.Imm) & 63) // pre-masked shift amount
	default:
		u.imm = int64(in.Imm) // sign-extended by the decoder
	}
	switch in.Op.Class() {
	case isa.ClassLoad, isa.ClassStore:
		u.memSize = uint8(in.Op.MemBytes())
	case isa.ClassBranch:
		u.target = uint64(int64(next) + int64(in.Imm)*isa.InstSize)
	}
	switch in.Op {
	case isa.OpJmp:
		u.target = uint64(int64(next) + int64(in.Imm)*isa.InstSize)
	case isa.OpJal:
		u.target = uint64(in.Imm) * isa.InstSize
	}
	switch in.Op {
	case isa.OpAdd, isa.OpSub, isa.OpAnd, isa.OpOr, isa.OpXor,
		isa.OpSll, isa.OpSrl, isa.OpSra, isa.OpSlt, isa.OpSltu,
		isa.OpAddi, isa.OpAndi, isa.OpOri, isa.OpXori,
		isa.OpSlli, isa.OpSrli, isa.OpSrai, isa.OpSlti, isa.OpSltiu, isa.OpLui:
		// A pure ALU op targeting the hardwired zero register retires with
		// nop semantics and nop timing (issue + fetch, no events), so lower
		// it to one. This lets the threaded engine write ALU results without
		// a per-op zero-register guard. Mul/div keep their op: they charge
		// event counters (and div can trap) even when the result is dropped.
		if in.Rd == isa.R0 {
			u = uop{op: isa.OpNop}
		}
	}
	return u
}

// predecode lowers a text segment based at textBase into micro-ops,
// reusing dst's backing array when it is large enough.
func predecode(text []byte, textBase uint64, dst []uop) []uop {
	n := len(text) / isa.InstSize
	if cap(dst) < n {
		dst = make([]uop, n)
	}
	dst = dst[:n]
	for i := 0; i < n; i++ {
		in := isa.DecodeBytes(text[i*isa.InstSize:])
		u := lowerInst(in, textBase+uint64(i*isa.InstSize))
		u.tidx = -1
		switch {
		case in.Op.Class() == isa.ClassBranch, in.Op == isa.OpJmp, in.Op == isa.OpJal:
			if toff := u.target - textBase; toff < uint64(len(text)) && u.target%uint64(isa.InstSize) == 0 {
				u.tidx = int32(toff / uint64(isa.InstSize))
			}
		}
		dst[i] = u
	}
	fusePairs(dst)
	return dst
}

// predecodeCacheCap bounds the shared predecode cache. Entries are keyed by
// executable identity; a 128-point environment sweep touches exactly one
// entry, and even a full suite × compiler-config × link-order study stays
// within a few hundred. Eviction is arbitrary — the cache is a pure
// memoization, so evicting never changes results, only costs a re-decode.
const predecodeCacheCap = 256

var (
	predecodeMu    sync.Mutex
	predecodeCache = map[*linker.Executable][]uop{}
)

// predecodedFor returns the micro-op array for img. When the image retains
// its executable, the array is memoized on the executable's identity so an
// environment sweep over one binary decodes it once, not once per run; the
// cached slice is immutable and safely shared across machines. Images
// without an executable (hand-assembled tests) decode into scratch.
func predecodedFor(img *loader.Image, scratch []uop) []uop {
	text := img.Mem[img.TextBase : img.TextBase+img.TextSize]
	if img.Exe == nil {
		return predecode(text, img.TextBase, scratch)
	}
	predecodeMu.Lock()
	if u, ok := predecodeCache[img.Exe]; ok {
		predecodeMu.Unlock()
		return u
	}
	predecodeMu.Unlock()
	// Decode outside the lock; concurrent racers produce identical arrays
	// and the last store wins.
	u := predecode(text, img.TextBase, nil)
	predecodeMu.Lock()
	if len(predecodeCache) >= predecodeCacheCap {
		//determlint:allow cache eviction choice never reaches a measurement
		for k := range predecodeCache {
			delete(predecodeCache, k)
			break
		}
	}
	predecodeCache[img.Exe] = u
	predecodeMu.Unlock()
	return u
}
