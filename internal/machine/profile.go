package machine

import (
	"fmt"
	"sort"
	"strings"

	"biaslab/internal/linker"
)

// FuncProfile attributes cycles and instructions to one function.
type FuncProfile struct {
	Name         string
	Addr         uint64
	Cycles       uint64
	Instructions uint64
}

// Profile is a per-function execution profile, sorted by descending cycles.
type Profile []FuncProfile

// String renders the profile as a flat table with cumulative percentages.
func (p Profile) String() string {
	var total uint64
	for _, f := range p {
		total += f.Cycles
	}
	if total == 0 {
		total = 1
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-24s %12s %7s %12s\n", "function", "cycles", "share", "instructions")
	var cum uint64
	for _, f := range p {
		cum += f.Cycles
		fmt.Fprintf(&sb, "%-24s %12d %6.1f%% %12d\n", f.Name, f.Cycles,
			100*float64(f.Cycles)/float64(total), f.Instructions)
	}
	return sb.String()
}

// Top returns the n hottest functions.
func (p Profile) Top(n int) Profile {
	if n > len(p) {
		n = len(p)
	}
	return p[:n]
}

// profiler attributes execution to functions. Function identity changes
// only at calls and returns (the code generator never emits cross-function
// jumps), so the attribution bookkeeping costs two counter adds per
// instruction plus a binary search per control transfer into a new
// function.
type profiler struct {
	starts []uint64 // sorted function start addresses
	names  []string
	cycles []uint64
	instrs []uint64
	cur    int
}

func newProfiler(exe *linker.Executable) *profiler {
	funcs := append([]linker.FuncRange(nil), exe.Funcs...)
	sort.Slice(funcs, func(i, j int) bool { return funcs[i].Addr < funcs[j].Addr })
	p := &profiler{
		starts: make([]uint64, len(funcs)),
		names:  make([]string, len(funcs)),
		cycles: make([]uint64, len(funcs)),
		instrs: make([]uint64, len(funcs)),
	}
	for i, f := range funcs {
		p.starts[i] = f.Addr
		p.names[i] = f.Name
	}
	return p
}

// enter records a control transfer to addr.
func (p *profiler) enter(addr uint64) {
	i := sort.Search(len(p.starts), func(i int) bool { return p.starts[i] > addr })
	if i > 0 {
		p.cur = i - 1
	}
}

// account attributes one instruction and its cycle delta.
func (p *profiler) account(cycleDelta uint64) {
	if p.cur < len(p.cycles) {
		p.cycles[p.cur] += cycleDelta
		p.instrs[p.cur]++
	}
}

// profile materializes the result, dropping never-executed functions.
func (p *profiler) profile() Profile {
	out := make(Profile, 0, len(p.names))
	for i, name := range p.names {
		if p.instrs[i] == 0 {
			continue
		}
		out = append(out, FuncProfile{
			Name:         name,
			Addr:         p.starts[i],
			Cycles:       p.cycles[i],
			Instructions: p.instrs[i],
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Cycles != out[j].Cycles {
			return out[i].Cycles > out[j].Cycles
		}
		return out[i].Name < out[j].Name
	})
	return out
}
