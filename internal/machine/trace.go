package machine

import (
	"fmt"
	"io"

	"biaslab/internal/isa"
)

// Tracer receives one event per executed instruction when tracing is
// enabled. Tracing is an observation tool only: it never changes timing.
type Tracer interface {
	Trace(ev TraceEvent)
}

// TraceEvent describes one executed instruction.
type TraceEvent struct {
	Seq    uint64 // instruction index (0-based)
	PC     uint64
	Inst   isa.Inst
	Cycles uint64 // cumulative cycles after the instruction
	// MemAddr is the effective address for loads/stores (0 otherwise).
	MemAddr uint64
	// NextPC is where control goes next (reveals taken branches).
	NextPC uint64
}

// SetTracer installs (or removes, with nil) a tracer for subsequent runs.
func (m *Machine) SetTracer(t Tracer) { m.tracer = t }

// WriterTracer formats events as a classic instruction trace, one line per
// instruction, to an io.Writer. Limit, when non-zero, stops output (but not
// execution) after that many instructions.
type WriterTracer struct {
	W     io.Writer
	Limit uint64
	n     uint64
}

// Trace implements Tracer.
func (wt *WriterTracer) Trace(ev TraceEvent) {
	if wt.Limit != 0 && wt.n >= wt.Limit {
		return
	}
	wt.n++
	if ev.Inst.Op.IsLoad() || ev.Inst.Op.IsStore() {
		fmt.Fprintf(wt.W, "%8d %08x: %-24s mem=%08x cyc=%d\n", ev.Seq, ev.PC, ev.Inst.String(), ev.MemAddr, ev.Cycles)
		return
	}
	if ev.NextPC != ev.PC+uint64(isa.InstSize) {
		fmt.Fprintf(wt.W, "%8d %08x: %-24s  -> %08x cyc=%d\n", ev.Seq, ev.PC, ev.Inst.String(), ev.NextPC, ev.Cycles)
		return
	}
	fmt.Fprintf(wt.W, "%8d %08x: %-24s cyc=%d\n", ev.Seq, ev.PC, ev.Inst.String(), ev.Cycles)
}

// CountingTracer tallies executed opcodes — a cheap dynamic instruction
// mix profile.
type CountingTracer struct {
	Counts [isa.NumOps]uint64
}

// Trace implements Tracer.
func (ct *CountingTracer) Trace(ev TraceEvent) {
	ct.Counts[ev.Inst.Op]++
}

// Mix returns the dynamic instruction mix grouped by execution class.
func (ct *CountingTracer) Mix() map[string]uint64 {
	mix := map[string]uint64{}
	for op := 0; op < isa.NumOps; op++ {
		n := ct.Counts[op]
		if n == 0 {
			continue
		}
		var key string
		switch isa.Op(op).Class() {
		case isa.ClassALU:
			key = "alu"
		case isa.ClassMul:
			key = "mul"
		case isa.ClassDiv:
			key = "div"
		case isa.ClassLoad:
			key = "load"
		case isa.ClassStore:
			key = "store"
		case isa.ClassBranch:
			key = "branch"
		case isa.ClassJump:
			key = "jump"
		case isa.ClassSys:
			key = "sys"
		default:
			key = "nop"
		}
		mix[key] += n
	}
	return mix
}
