package machine

import (
	"strings"
	"testing"
)

func TestValidateAcceptsShippedConfigs(t *testing.T) {
	for _, cfg := range []Config{PentiumIV(), Core2(), M5O3()} {
		if err := cfg.Validate(); err != nil {
			t.Errorf("shipped config %s rejected: %v", cfg.Name, err)
		}
	}
}

func TestValidateRejectsBrokenGeometry(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Config)
		want   string // substring of the expected error
	}{
		{"zero issue width", func(c *Config) { c.IssueWidth = 0 }, "issue width"},
		{"zero fetch block", func(c *Config) { c.FetchBlockBytes = 0 }, "fetch block"},
		{"zero cache ways", func(c *Config) { c.L1D.Ways = 0 }, "associativity"},
		{"non-pow2 line", func(c *Config) { c.L1I.LineSize = 48 }, "line size"},
		{"zero cache size", func(c *Config) { c.L2.SizeKB = 0 }, "size"},
		{"non-pow2 sets", func(c *Config) { c.L1D.SizeKB = 33 }, "not a power of two"},
		{"cache smaller than one set", func(c *Config) { c.L1D.SizeKB = 1; c.L1D.Ways = 64 }, "no complete set"},
		{"non-pow2 page size", func(c *Config) { c.PageSize = 3000 }, "page size"},
		{"non-pow2 itlb sets", func(c *Config) { c.ITLBEntries = 100 }, "itlb"},
		{"non-pow2 dtlb sets", func(c *Config) { c.DTLBEntries = 100 }, "dtlb"},
		{"history too long", func(c *Config) { c.Predictor.HistoryBits = 40 }, "history"},
		{"non-pow2 btb", func(c *Config) { c.Predictor.BTBEntries = 1000 }, "BTB"},
		{"zero ras", func(c *Config) { c.Predictor.RASDepth = 0 }, "RAS"},
		{"negative store buffer", func(c *Config) { c.StoreBufferDepth = -1 }, "store buffer"},
	}
	for _, tc := range cases {
		cfg := Core2()
		cfg.Name = "mutant"
		tc.mutate(&cfg)
		err := cfg.Validate()
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
		if !strings.Contains(err.Error(), "mutant") {
			t.Errorf("%s: error %q does not name the machine", tc.name, err)
		}
	}
}

// TestValidatedConfigConstructs: any config Validate accepts must
// instantiate without panicking — that is the whole contract.
func TestValidatedConfigConstructs(t *testing.T) {
	cfg := PentiumIV()
	cfg.L1D.SizeKB = 32
	cfg.Predictor.HistoryBits = 14
	if err := cfg.Validate(); err != nil {
		t.Fatalf("tweaked config rejected: %v", err)
	}
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("validated config panicked in New: %v", r)
		}
	}()
	New(cfg)
}
