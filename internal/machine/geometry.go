package machine

// Static geometry accessors. The bias oracle (internal/analysis) predicts
// cache-set conflicts without constructing a Machine, so the address→set
// arithmetic the simulator uses must be available as pure functions of the
// configuration. Each accessor mirrors the corresponding constructor
// (NewCache, NewTLB) exactly — including the line-size default and the
// round-up of tiny TLBs — and the geometry tests assert that equality
// against live Cache/TLB instances, so the two can never drift apart.

// CacheGeometry is the set-index arithmetic of one cache, derived from a
// CacheConfig without building the cache.
type CacheGeometry struct {
	Sets     int
	Ways     int
	LineSize int
}

// Geometry returns the cache's set-index geometry. The config must satisfy
// validate (see Config.Validate); geometry of an invalid config is
// unspecified.
func (cfg CacheConfig) Geometry() CacheGeometry {
	line := cfg.LineSize
	if line == 0 {
		line = 64
	}
	return CacheGeometry{
		Sets:     cfg.SizeKB * 1024 / (line * cfg.Ways),
		Ways:     cfg.Ways,
		LineSize: line,
	}
}

// LineOf returns the line index addr falls in.
func (g CacheGeometry) LineOf(addr uint64) uint64 {
	return addr / uint64(g.LineSize)
}

// SetOf returns the set index addr maps to, matching Cache.SetOf.
func (g CacheGeometry) SetOf(addr uint64) int {
	return int(g.LineOf(addr) % uint64(g.Sets))
}

// TLBGeometry is the set-index arithmetic of one TLB.
type TLBGeometry struct {
	Sets     int
	Ways     int
	PageSize int
}

// TLBGeom returns the geometry NewTLB would build for the given entry count
// and page size, including the round-up of entry counts below the
// associativity to one full set.
func TLBGeom(entries, pageSize int) TLBGeometry {
	if entries < tlbWays {
		entries = tlbWays
	}
	return TLBGeometry{
		Sets:     entries / tlbWays,
		Ways:     tlbWays,
		PageSize: pageSize,
	}
}

// PageOf returns the page index addr falls in.
func (g TLBGeometry) PageOf(addr uint64) uint64 {
	return addr / uint64(g.PageSize)
}

// SetOf returns the TLB set index addr maps to, matching TLB.Access.
func (g TLBGeometry) SetOf(addr uint64) int {
	return int(g.PageOf(addr) % uint64(g.Sets))
}
