package machine

import "fmt"

// Predictor models the front end's branch machinery: a gshare direction
// predictor, a direct-mapped branch target buffer, and a return-address
// stack. Both structures are indexed by PC bits, which is precisely why the
// code layout chosen by the linker changes their behaviour: two branches
// whose addresses collide in the BTB or pattern table perturb each other,
// and which branches collide is a function of link order.
//
// The direction table and BTB carry per-entry generation numbers so Reset
// is O(1); an entry whose generation is stale reads exactly as the zeroed
// entry an explicit sweep would have produced.
type Predictor struct {
	historyBits uint
	history     uint64
	direction   []int8 // 2-bit saturating counters
	dirGens     []uint32
	btbBits     uint
	btbTargets  []uint64
	btbTags     []uint32
	btbGens     []uint32
	gen         uint32
	ras         []uint64
	rasTop      int

	branches      uint64
	mispredicts   uint64
	btbMisses     uint64
	rasMispops    uint64
	takenBranches uint64
}

// PredictorConfig sizes the predictor.
type PredictorConfig struct {
	HistoryBits uint // gshare global history length; table is 2^n entries
	BTBEntries  int
	RASDepth    int
}

// NewPredictor builds a predictor. Geometry must satisfy
// PredictorConfig.validate (a non-power-of-two BTB would silently truncate
// its index mask; an empty RAS would divide by zero in the ring
// arithmetic); the panic is an invariant guard for unvalidated configs —
// boundary validation happens at Config.Validate.
func NewPredictor(cfg PredictorConfig) *Predictor {
	if err := cfg.validate(); err != nil {
		panic(fmt.Sprintf("machine: unvalidated config reached NewPredictor: %v", err))
	}
	return &Predictor{
		historyBits: cfg.HistoryBits,
		direction:   make([]int8, 1<<cfg.HistoryBits),
		dirGens:     make([]uint32, 1<<cfg.HistoryBits),
		btbBits:     log2u(uint64(cfg.BTBEntries)),
		btbTargets:  make([]uint64, cfg.BTBEntries),
		btbTags:     make([]uint32, cfg.BTBEntries),
		btbGens:     make([]uint32, cfg.BTBEntries),
		gen:         1,
		ras:         make([]uint64, cfg.RASDepth),
	}
}

func (p *Predictor) dirIndex(pc uint64) int {
	return int((pc>>2 ^ p.history) & (1<<p.historyBits - 1))
}

// Branch records the outcome of a conditional branch at pc and reports
// whether the direction was mispredicted.
func (p *Predictor) Branch(pc uint64, taken bool) (mispredict bool) {
	p.branches++
	idx := p.dirIndex(pc)
	ctr := int8(0) // stale-generation entries read as freshly reset
	if p.dirGens[idx] == p.gen {
		ctr = p.direction[idx]
	}
	predTaken := ctr >= 2
	if taken {
		if ctr < 3 {
			ctr++
		}
		p.takenBranches++
	} else if ctr > 0 {
		ctr--
	}
	p.direction[idx] = ctr
	p.dirGens[idx] = p.gen
	p.history = p.history<<1 | b2u(taken)
	if predTaken != taken {
		p.mispredicts++
		return true
	}
	return false
}

// Target checks the BTB for a taken control transfer from pc to target and
// reports whether the buffered target was wrong (a front-end redirect).
// The BTB is direct-mapped with partial tags, so aliasing is possible both
// ways: a hit with a stale target and a cold/conflicted miss.
func (p *Predictor) Target(pc, target uint64) (redirect bool) {
	idx := int(pc >> 2 & (1<<p.btbBits - 1))
	tag := uint32(pc >> (2 + p.btbBits))
	var storedTag uint32
	var storedTarget uint64
	if p.btbGens[idx] == p.gen {
		storedTag, storedTarget = p.btbTags[idx], p.btbTargets[idx]
	}
	ok := storedTag == tag && storedTarget == target
	p.btbTargets[idx] = target
	p.btbTags[idx] = tag
	p.btbGens[idx] = p.gen
	if !ok {
		p.btbMisses++
		return true
	}
	return false
}

// Call pushes a return address on the RAS.
func (p *Predictor) Call(retAddr uint64) {
	p.rasTop = (p.rasTop + 1) % len(p.ras)
	p.ras[p.rasTop] = retAddr
}

// Return pops the RAS and reports whether the prediction missed.
func (p *Predictor) Return(actual uint64) (mispredict bool) {
	pred := p.ras[p.rasTop]
	p.rasTop = (p.rasTop - 1 + len(p.ras)) % len(p.ras)
	if pred != actual {
		p.rasMispops++
		return true
	}
	return false
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// Stats exposes the predictor counters.
func (p *Predictor) Stats() (branches, mispredicts, btbMisses, rasMispops uint64) {
	return p.branches, p.mispredicts, p.btbMisses, p.rasMispops
}

// Reset clears all state and statistics. The direction table and BTB are
// invalidated in O(1) by bumping the generation (with an explicit sweep on
// the once-per-2^32 wrap); only the tiny RAS is cleared by loop.
func (p *Predictor) Reset() {
	p.gen++
	if p.gen == 0 {
		for i := range p.dirGens {
			p.dirGens[i] = 0
		}
		for i := range p.btbGens {
			p.btbGens[i] = 0
		}
		p.gen = 1
	}
	p.history = 0
	for i := range p.ras {
		p.ras[i] = 0
	}
	p.rasTop = 0
	p.branches, p.mispredicts, p.btbMisses, p.rasMispops, p.takenBranches = 0, 0, 0, 0, 0
}
