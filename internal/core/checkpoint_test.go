package core

import (
	"context"
	"encoding/json"
	"sync"
	"testing"

	"biaslab/internal/bench"
)

// memCheckpoint is an in-memory Checkpoint that counts recordings, for
// asserting that resumed sweeps replay instead of re-measuring.
type memCheckpoint struct {
	mu      sync.Mutex
	data    map[string]json.RawMessage
	records int
}

func newMemCheckpoint() *memCheckpoint {
	return &memCheckpoint{data: map[string]json.RawMessage{}}
}

func (c *memCheckpoint) Lookup(key string, out any) (bool, error) {
	c.mu.Lock()
	raw, ok := c.data[key]
	c.mu.Unlock()
	if !ok {
		return false, nil
	}
	if out == nil {
		return true, nil
	}
	return true, json.Unmarshal(raw, out)
}

func (c *memCheckpoint) Record(key string, v any) error {
	raw, err := json.Marshal(v)
	if err != nil {
		return err
	}
	c.mu.Lock()
	c.data[key] = raw
	c.records++
	c.mu.Unlock()
	return nil
}

func (c *memCheckpoint) recorded() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.records
}

// TestEnvSweepCheckpointReplay: a second run of a checkpointed sweep — with
// a fresh Runner, as after a process restart — must replay every recorded
// point bit-identically and measure nothing.
func TestEnvSweepCheckpointReplay(t *testing.T) {
	b, _ := bench.ByName("hmmer")
	setup := DefaultSetup("p4")
	sizes := []uint64{8, 512, 1024, 2048}
	ck := newMemCheckpoint()

	first, err := EnvSweepCheckpointed(context.Background(), NewRunner(bench.SizeTest), b, setup, sizes, ck)
	if err != nil {
		t.Fatal(err)
	}
	if got := ck.recorded(); got != len(sizes) {
		t.Fatalf("first run recorded %d points, want %d", got, len(sizes))
	}

	second, err := EnvSweepCheckpointed(context.Background(), NewRunner(bench.SizeTest), b, setup, sizes, ck)
	if err != nil {
		t.Fatal(err)
	}
	if got := ck.recorded(); got != len(sizes) {
		t.Errorf("resumed run re-recorded points: %d records, want %d", got, len(sizes))
	}
	if len(second) != len(first) {
		t.Fatalf("resumed run returned %d points, want %d", len(second), len(first))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Errorf("point %d diverged on replay: %+v != %+v", i, first[i], second[i])
		}
	}

	// Uncheckpointed reference: the replayed numbers are the real numbers.
	plain, err := EnvSweep(context.Background(), NewRunner(bench.SizeTest), b, setup, sizes)
	if err != nil {
		t.Fatal(err)
	}
	for i := range plain {
		if plain[i] != second[i] {
			t.Errorf("point %d: replay %+v != direct measurement %+v", i, second[i], plain[i])
		}
	}
}

// TestLinkSweepCheckpointReplay is the link-order analogue; it additionally
// checks that replayed points carry regenerated labels and orders rather
// than aliasing journal-owned data.
func TestLinkSweepCheckpointReplay(t *testing.T) {
	b, _ := bench.ByName("libquantum")
	setup := DefaultSetup("core2")
	ck := newMemCheckpoint()

	first, err := LinkSweepCheckpointed(context.Background(), NewRunner(bench.SizeTest), b, setup, 2, 7, ck)
	if err != nil {
		t.Fatal(err)
	}
	before := ck.recorded()
	second, err := LinkSweepCheckpointed(context.Background(), NewRunner(bench.SizeTest), b, setup, 2, 7, ck)
	if err != nil {
		t.Fatal(err)
	}
	if got := ck.recorded(); got != before {
		t.Errorf("resumed link sweep re-measured: %d new records", got-before)
	}
	if len(first) != len(second) {
		t.Fatalf("resumed sweep returned %d points, want %d", len(second), len(first))
	}
	for i := range first {
		a, b := first[i], second[i]
		if a.Label != b.Label || a.Speedup != b.Speedup || a.CyclesBase != b.CyclesBase || a.CyclesOpt != b.CyclesOpt {
			t.Errorf("point %d diverged: %+v != %+v", i, a, b)
		}
		if len(a.Order) != len(b.Order) {
			t.Errorf("point %d order length diverged", i)
			continue
		}
		for k := range a.Order {
			if a.Order[k] != b.Order[k] {
				t.Errorf("point %d order diverged at %d", i, k)
				break
			}
		}
	}
}

// TestCheckpointKeyIsolation: points recorded under one setup must never be
// replayed for a different one — the key encodes the complete setup.
func TestCheckpointKeyIsolation(t *testing.T) {
	b, _ := bench.ByName("hmmer")
	sizes := []uint64{8, 512}
	ck := newMemCheckpoint()

	s1 := DefaultSetup("p4")
	if _, err := EnvSweepCheckpointed(context.Background(), NewRunner(bench.SizeTest), b, s1, sizes, ck); err != nil {
		t.Fatal(err)
	}
	before := ck.recorded()

	// Same benchmark and sizes, different machine: nothing may be replayed.
	s2 := DefaultSetup("core2")
	if _, err := EnvSweepCheckpointed(context.Background(), NewRunner(bench.SizeTest), b, s2, sizes, ck); err != nil {
		t.Fatal(err)
	}
	if got := ck.recorded() - before; got != len(sizes) {
		t.Errorf("different-machine sweep recorded %d new points, want %d (no cross-setup replay)", got, len(sizes))
	}
}

// TestWithProgress: the progress wrapper must announce fresh points only
// after the underlying Record succeeds and replayed points only on a
// Lookup hit, without disturbing the values that flow through.
func TestWithProgress(t *testing.T) {
	type seen struct {
		key      string
		replayed bool
	}
	type pt struct {
		Env uint64 `json:"env"`
	}
	var calls []seen
	mem := newMemCheckpoint()
	ck := WithProgress(mem, func(key string, replayed bool) {
		calls = append(calls, seen{key, replayed})
	})

	if err := ck.Record("p1", pt{Env: 8}); err != nil {
		t.Fatal(err)
	}
	if ok, _ := ck.Lookup("missing", nil); ok {
		t.Error("lookup of unrecorded key reported a hit")
	}
	var got pt
	if ok, err := ck.Lookup("p1", &got); !ok || err != nil || got.Env != 8 {
		t.Fatalf("Lookup p1 = %v, %v, %+v; want hit with Env 8", ok, err, got)
	}
	want := []seen{{"p1", false}, {"p1", true}}
	if len(calls) != len(want) {
		t.Fatalf("progress calls %+v, want %+v", calls, want)
	}
	for i := range want {
		if calls[i] != want[i] {
			t.Errorf("call %d = %+v, want %+v", i, calls[i], want[i])
		}
	}

	// A nil inner checkpoint still reports fresh progress — the daemon uses
	// this for jobs that need progress but no durability.
	calls = nil
	nilCk := WithProgress(nil, func(key string, replayed bool) {
		calls = append(calls, seen{key, replayed})
	})
	if ok, err := nilCk.Lookup("x", nil); ok || err != nil {
		t.Errorf("nil-backed Lookup = %v, %v; want miss", ok, err)
	}
	if err := nilCk.Record("x", pt{}); err != nil {
		t.Fatal(err)
	}
	if len(calls) != 1 || calls[0] != (seen{"x", false}) {
		t.Errorf("nil-backed progress calls %+v, want [{x false}]", calls)
	}
}
