//go:build faultinject

package core

import (
	"context"
	"errors"
	"testing"

	"biaslab/internal/bench"
	"biaslab/internal/faultinject"
)

// These tests require the faultinject build tag:
//
//	go test -tags faultinject ./internal/core/
//
// They prove the runner's fault model end to end: an injected failure at
// any pipeline stage surfaces as a typed *MeasurementError carrying the
// stage and the exact failing setup; panics are contained; transient
// faults are retried exactly once; and checkpointed sweeps interrupted by
// a fault resume to byte-identical results.

// TestInjectedFaultEveryStage injects a permanent fault at each of the four
// stages in turn and checks the typed error contract.
func TestInjectedFaultEveryStage(t *testing.T) {
	b, _ := bench.ByName("bzip2")
	setup := DefaultSetup("core2")
	setup.EnvBytes = 777

	stages := []struct {
		name string
		want Stage
	}{
		{"compile", StageCompile},
		{"link", StageLink},
		{"load", StageLoad},
		{"measure", StageMeasure},
	}
	for _, tc := range stages {
		faultinject.Reset()
		faultinject.Arm(faultinject.Fault{Stage: tc.name, Mode: faultinject.ModeError})

		r := NewRunner(bench.SizeTest) // fresh caches so every stage actually runs
		_, err := r.Measure(context.Background(), b, setup)
		faultinject.Reset()
		if err == nil {
			t.Errorf("%s: injected fault did not surface", tc.name)
			continue
		}
		var me *MeasurementError
		if !errors.As(err, &me) {
			t.Errorf("%s: error %v is not a *MeasurementError", tc.name, err)
			continue
		}
		if me.Stage != tc.want {
			t.Errorf("%s: Stage = %v, want %v", tc.name, me.Stage, tc.want)
		}
		if me.Benchmark != b.Name || me.Setup.EnvBytes != 777 {
			t.Errorf("%s: failing setup not attached: %q %s", tc.name, me.Benchmark, me.Setup)
		}
		var inj *faultinject.InjectedError
		if !errors.As(err, &inj) || inj.Stage != tc.name {
			t.Errorf("%s: injected cause lost: %v", tc.name, err)
		}
		if me.Attempts != 1 {
			t.Errorf("%s: permanent fault retried (%d attempts)", tc.name, me.Attempts)
		}
	}
}

// TestInjectedPanicIsolated: a panic inside a stage is recovered at the
// runner boundary, wrapped as *PanicError inside *MeasurementError, and
// the typed panic value stays matchable through the chain.
func TestInjectedPanicIsolated(t *testing.T) {
	defer faultinject.Reset()
	b, _ := bench.ByName("bzip2")

	for _, stage := range []string{"compile", "measure"} {
		faultinject.Reset()
		faultinject.Arm(faultinject.Fault{Stage: stage, Mode: faultinject.ModePanic})

		r := NewRunner(bench.SizeTest)
		_, err := r.Measure(context.Background(), b, DefaultSetup("core2"))
		if err == nil {
			t.Fatalf("%s: injected panic did not surface as an error", stage)
		}
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Errorf("%s: panic not wrapped as *PanicError: %v", stage, err)
			continue
		}
		if len(pe.Stack) == 0 {
			t.Errorf("%s: panic stack not captured", stage)
		}
		var inj *faultinject.InjectedError
		if !errors.As(err, &inj) {
			t.Errorf("%s: typed panic value lost through recovery: %v", stage, err)
		}
		var me *MeasurementError
		if !errors.As(err, &me) || me.Benchmark != b.Name {
			t.Errorf("%s: panic lacks measurement context: %v", stage, err)
		}
	}
}

// TestTransientFaultRetriedOnce: a fault that fires once and marks itself
// transient costs a retry, not the measurement.
func TestTransientFaultRetriedOnce(t *testing.T) {
	defer faultinject.Reset()
	b, _ := bench.ByName("bzip2")
	setup := DefaultSetup("core2")

	// Reference value, measured clean.
	clean, err := NewRunner(bench.SizeTest).Measure(context.Background(), b, setup)
	if err != nil {
		t.Fatal(err)
	}

	for _, stage := range []string{"compile", "link", "load", "measure"} {
		faultinject.Reset()
		faultinject.Arm(faultinject.Fault{Stage: stage, Mode: faultinject.ModeTransient})

		m, err := NewRunner(bench.SizeTest).Measure(context.Background(), b, setup)
		if err != nil {
			t.Errorf("%s: transient fault not absorbed by retry: %v", stage, err)
			continue
		}
		if faultinject.Fired() != 1 {
			t.Errorf("%s: fault fired %d times, want 1", stage, faultinject.Fired())
		}
		if m.Cycles != clean.Cycles || m.Checksum != clean.Checksum {
			t.Errorf("%s: retried measurement diverged: %d cycles vs clean %d", stage, m.Cycles, clean.Cycles)
		}
	}
}

// TestTransientFaultExhaustsRetry: a transient fault that persists through
// the retry fails the measurement with the attempt count on record.
func TestTransientFaultExhaustsRetry(t *testing.T) {
	defer faultinject.Reset()
	faultinject.Reset()
	faultinject.Arm(faultinject.Fault{Stage: "measure", Mode: faultinject.ModeTransient, Times: 2})

	b, _ := bench.ByName("bzip2")
	_, err := NewRunner(bench.SizeTest).Measure(context.Background(), b, DefaultSetup("core2"))
	if err == nil {
		t.Fatal("persistent transient fault did not fail the measurement")
	}
	var me *MeasurementError
	if !errors.As(err, &me) {
		t.Fatalf("error %v is not a *MeasurementError", err)
	}
	if me.Attempts != 2 {
		t.Errorf("Attempts = %d, want 2 (original + one retry)", me.Attempts)
	}
	if !IsTransient(err) {
		t.Error("exhausted transient fault should still classify as transient")
	}
}

// TestSweepPartialResultsExplicitGaps: a sweep hit by a fault returns the
// completed points with the gap explicit (shorter slice, wrapped error) —
// never a silently padded result.
func TestSweepPartialResultsExplicitGaps(t *testing.T) {
	defer faultinject.Reset()
	faultinject.Reset()
	// Only the 512-byte point fails; note "env=512B" cannot match 5120.
	faultinject.Arm(faultinject.Fault{Stage: "measure", Match: "env=512B", Mode: faultinject.ModeError})

	b, _ := bench.ByName("hmmer")
	sizes := []uint64{8, 512, 1024}
	points, err := EnvSweep(context.Background(), NewRunner(bench.SizeTest), b, DefaultSetup("p4"), sizes)
	if err == nil {
		t.Fatal("faulted sweep reported success")
	}
	if len(points) >= len(sizes) {
		t.Errorf("partial sweep returned %d points for %d sizes; the gap must be explicit", len(points), len(sizes))
	}
	for _, p := range points {
		if p.EnvBytes == 512 {
			t.Error("the failed point leaked into the completed set")
		}
	}
	var inj *faultinject.InjectedError
	if !errors.As(err, &inj) {
		t.Errorf("sweep error does not expose the injected cause: %v", err)
	}
}

// TestFaultedSweepResumesByteIdentical is the resume-convergence
// contract: a checkpointed sweep interrupted by a fault, then resumed with
// the fault cleared, must produce exactly what an uninterrupted run does.
func TestFaultedSweepResumesByteIdentical(t *testing.T) {
	defer faultinject.Reset()
	b, _ := bench.ByName("hmmer")
	setup := DefaultSetup("p4")
	sizes := []uint64{8, 512, 1024, 2048, 4096}

	clean, err := EnvSweep(context.Background(), NewRunner(bench.SizeTest), b, setup, sizes)
	if err != nil {
		t.Fatal(err)
	}

	ck := newMemCheckpoint()
	faultinject.Reset()
	faultinject.Arm(faultinject.Fault{Stage: "measure", Match: "env=1024B", Mode: faultinject.ModeError})
	partial, err := EnvSweepCheckpointed(context.Background(), NewRunner(bench.SizeTest), b, setup, sizes, ck)
	faultinject.Reset()
	if err == nil {
		t.Fatal("interrupted run reported success")
	}
	if len(partial) >= len(sizes) {
		t.Fatalf("interrupted run returned %d points, want a gap", len(partial))
	}

	resumed, err := EnvSweepCheckpointed(context.Background(), NewRunner(bench.SizeTest), b, setup, sizes, ck)
	if err != nil {
		t.Fatalf("resume failed: %v", err)
	}
	if len(resumed) != len(clean) {
		t.Fatalf("resumed run has %d points, want %d", len(resumed), len(clean))
	}
	for i := range clean {
		if resumed[i] != clean[i] {
			t.Errorf("point %d: resumed %+v != clean %+v", i, resumed[i], clean[i])
		}
	}
}
