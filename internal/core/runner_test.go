package core

import (
	"context"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"biaslab/internal/bench"
	"biaslab/internal/compiler"
	"biaslab/internal/machine"
)

// TestConcurrentMeasureBitIdentical compares a concurrent sweep against a
// sequential one point by point: pooled machines, the link cache and the
// singleflight paths must never leak state between measurements.
func TestConcurrentMeasureBitIdentical(t *testing.T) {
	b, _ := bench.ByName("bzip2")
	setups := make([]Setup, 18)
	for i := range setups {
		s := DefaultSetup([]string{"p4", "core2", "m5"}[i%3])
		s.EnvBytes = uint64(17 + 32*i)
		if i%2 == 1 {
			s.Compiler.Level = compiler.O3
		}
		if i%3 == 2 {
			s.TextPad = 32
		}
		setups[i] = s
	}

	sequential := make([]Measurement, len(setups))
	seqRunner := NewRunner(bench.SizeTest)
	for i, s := range setups {
		m, err := seqRunner.Measure(context.Background(), b, s)
		if err != nil {
			t.Fatal(err)
		}
		sequential[i] = *m
	}

	concurrent := make([]Measurement, len(setups))
	conRunner := NewRunner(bench.SizeTest)
	err := ForEach(context.Background(), len(setups), 8, func(_ context.Context, i int) error {
		m, err := conRunner.Measure(context.Background(), b, setups[i])
		if err != nil {
			return err
		}
		concurrent[i] = *m
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range setups {
		s, c := sequential[i], concurrent[i]
		if s.Cycles != c.Cycles || s.Counters != c.Counters || s.Checksum != c.Checksum {
			t.Errorf("setup %d: concurrent measurement diverged:\nseq: %+v\ncon: %+v", i, s, c)
		}
	}
}

// TestCompileFailureSurfacesError drives a deliberately uncompilable
// benchmark through concurrent Measure calls: every caller must get an
// error (the singleflight waiters retry and hit the failure themselves,
// never a nil-objects success), and a ForEach sweep over the same
// benchmark surfaces the failure while cancelling the rest of the work.
func TestCompileFailureSurfacesError(t *testing.T) {
	bad := bench.Synthetic("broken", func(int) []compiler.Source {
		return []compiler.Source{{Name: "broken.cm", Text: "int main( {{{ not a program"}}
	})
	r := NewRunner(bench.SizeTest)
	var errCount atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := r.Measure(context.Background(), bad, DefaultSetup("core2"))
			if err != nil {
				errCount.Add(1)
				if !strings.Contains(err.Error(), "broken") {
					t.Errorf("error does not identify the benchmark: %v", err)
				}
			}
		}()
	}
	wg.Wait()
	if got := errCount.Load(); got != 8 {
		t.Errorf("want all 8 concurrent Measure calls to fail, got %d failures", got)
	}

	// Through ForEach, the first failure cancels the remaining indices and
	// the sweep reports the real error, not a cancellation.
	var started atomic.Int32
	sweepErr := ForEach(context.Background(), 8, 8, func(ctx context.Context, i int) error {
		started.Add(1)
		_, err := r.Measure(ctx, bad, DefaultSetup("core2"))
		return err
	})
	if sweepErr == nil {
		t.Fatal("sweep over uncompilable benchmark reported success")
	}
	if !strings.Contains(sweepErr.Error(), "broken") {
		t.Errorf("sweep error does not identify the benchmark: %v", sweepErr)
	}
	if started.Load() == 0 {
		t.Error("no index ran")
	}
}

// TestRegisterMachinePurgesPool is the regression test for the stale-pool
// bug: re-registering a custom machine name must not hand out machines
// built from the previous configuration.
func TestRegisterMachinePurgesPool(t *testing.T) {
	b, _ := bench.ByName("libquantum")
	setup := DefaultSetup("ablated")

	slow := machine.PentiumIV()
	slow.Name = "ablated"
	fast := slow
	fast.Penalties.Mispredict += 100 // guaranteed to change cycle counts

	r := NewRunner(bench.SizeTest)
	r.RegisterMachine("ablated", slow)
	first, err := r.Measure(context.Background(), b, setup)
	if err != nil {
		t.Fatal(err)
	}
	// The machine used above is now idle in the pool. Re-register with a
	// different config; the next measurement must reflect it.
	r.RegisterMachine("ablated", fast)
	second, err := r.Measure(context.Background(), b, setup)
	if err != nil {
		t.Fatal(err)
	}
	if first.Cycles == second.Cycles {
		t.Fatalf("re-registered config ignored: both runs took %d cycles (stale machine pool)", first.Cycles)
	}

	// And the re-registered config must measure identically to a fresh
	// runner that only ever saw it.
	fresh := NewRunner(bench.SizeTest)
	fresh.RegisterMachine("ablated", fast)
	want, err := fresh.Measure(context.Background(), b, setup)
	if err != nil {
		t.Fatal(err)
	}
	if second.Cycles != want.Cycles {
		t.Errorf("re-registered config cycles %d != fresh runner cycles %d", second.Cycles, want.Cycles)
	}
}
