package core

import (
	"context"
	"reflect"
	"testing"

	"biaslab/internal/analysis"
	"biaslab/internal/bench"
	"biaslab/internal/compiler"
	"biaslab/internal/machine"
)

// adaptiveTestGrid is a coarse env grid that keeps these tests fast while
// still crossing at least one real transition for libquantum on core2.
func adaptiveTestGrid() []uint64 { return DefaultEnvSizes(256) }

// pressureFreeConfig is an oracle-exact machine: large associativity, no
// store buffer, no prefetch, so misses are purely compulsory and the
// oracle's predicted plateaus are exactly cycle-flat (the same regime
// analysis's cross-validation test proves). This is where adaptive sweeps
// realize their savings; on the built-in machines the unmodelled mechanisms
// break flatness and the spot checks force dense fallback instead.
func pressureFreeConfig() machine.Config {
	return machine.Config{
		Name:        "pressure-free",
		IssueWidth:  4,
		L1I:         machine.CacheConfig{Name: "L1I", SizeKB: 32, LineSize: 64, Ways: 8},
		L1D:         machine.CacheConfig{Name: "L1D", SizeKB: 64, LineSize: 64, Ways: 8},
		L2:          machine.CacheConfig{Name: "L2", SizeKB: 2048, LineSize: 64, Ways: 16},
		ITLBEntries: 128, DTLBEntries: 256, PageSize: 4096,
		Predictor: machine.PredictorConfig{HistoryBits: 12, BTBEntries: 2048, RASDepth: 16},
		Penalties: machine.Penalties{
			L1Miss: 10, L2Miss: 200, ITLBMiss: 20, DTLBMiss: 30,
			Mispredict: 10, BTBRedirect: 4, TakenBranch: 1, MisalignedEntry: 2,
			SplitAccess: 5, Alias4K: 0, Mul: 3, Div: 20, Sys: 100,
		},
		StoreBufferDepth: 0, AliasWindow: 0, FetchBlockBytes: 16,
	}
}

// TestAdaptiveSweepMatchesDense is the headline guarantee in the regime the
// oracle models exactly: over the same grid, the oracle-guided sweep and
// the dense sweep return byte-identical points — same cycles, same float
// speedups — while the adaptive one measures a small fraction of them with
// zero fallbacks.
func TestAdaptiveSweepMatchesDense(t *testing.T) {
	b, _ := bench.ByName("libquantum")
	cfg := pressureFreeConfig()
	sizes := DefaultEnvSizes(32)
	ctx := context.Background()

	newRunner := func() *Runner {
		r := NewRunner(bench.SizeTest)
		if err := r.RegisterMachine(cfg.Name, cfg); err != nil {
			t.Fatal(err)
		}
		return r
	}
	setup := DefaultSetup(cfg.Name)

	dense, err := EnvSweep(ctx, newRunner(), b, setup, sizes)
	if err != nil {
		t.Fatal(err)
	}
	adaptive, stats, err := EnvSweepAdaptive(ctx, newRunner(), b, setup, sizes, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(dense, adaptive) {
		for i := range dense {
			if dense[i] != adaptive[i] {
				t.Errorf("point %d (env %d): dense %+v vs adaptive %+v", i, sizes[i], dense[i], adaptive[i])
			}
		}
		t.Fatalf("adaptive sweep diverged from dense sweep")
	}
	if stats.Measured+stats.Interpolated+stats.Replayed != stats.GridPoints {
		t.Fatalf("stats don't account for the grid: %+v", stats)
	}
	if stats.Replayed != 0 {
		t.Fatalf("no checkpoint was given, yet %d points were replayed", stats.Replayed)
	}
	if !stats.PlanExact || stats.Fallbacks != 0 {
		t.Fatalf("the pressure-free config should plan exactly and verify cleanly: %+v", stats)
	}
	if stats.Measured*5 > stats.GridPoints {
		t.Fatalf("expected ≥5× fewer measured points, got %d of %d: %+v", stats.Measured, stats.GridPoints, stats)
	}
	t.Logf("adaptive stats: %+v", stats)
}

// TestAdaptiveSweepRealMachineStillIdentical runs the adaptive sweep on a
// built-in machine, where unmodelled mechanisms (store aliasing, set
// pressure) make the oracle's plateaus only approximately flat. The
// verification points must catch every violated plateau and fall back to
// dense measurement, so the output stays byte-identical — the sweep merely
// saves less.
func TestAdaptiveSweepRealMachineStillIdentical(t *testing.T) {
	b, _ := bench.ByName("libquantum")
	setup := DefaultSetup("core2")
	sizes := adaptiveTestGrid()
	ctx := context.Background()

	dense, err := EnvSweep(ctx, NewRunner(bench.SizeTest), b, setup, sizes)
	if err != nil {
		t.Fatal(err)
	}
	adaptive, stats, err := EnvSweepAdaptive(ctx, NewRunner(bench.SizeTest), b, setup, sizes, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(dense, adaptive) {
		t.Fatalf("adaptive sweep diverged from dense sweep on core2")
	}
	if stats.Measured+stats.Interpolated+stats.Replayed != stats.GridPoints {
		t.Fatalf("stats don't account for the grid: %+v", stats)
	}
	t.Logf("core2 adaptive stats (degraded mode): %+v", stats)
}

// TestAdaptiveSweepMispredictionFallsBack forces a deliberately wrong plan
// — one that hides a real transition inside a predicted plateau — and
// demands that the verification points catch it, the plateau is re-measured
// densely, and the final points are still byte-identical to the dense
// sweep. A wrong oracle must cost time, never correctness.
func TestAdaptiveSweepMispredictionFallsBack(t *testing.T) {
	b, _ := bench.ByName("libquantum")
	setup := DefaultSetup("core2")
	sizes := adaptiveTestGrid()
	ctx := context.Background()

	dense, err := EnvSweep(ctx, NewRunner(bench.SizeTest), b, setup, sizes)
	if err != nil {
		t.Fatal(err)
	}
	// Find a real measured transition, then build a plan that claims the
	// plateau [0..t] is flat — its right endpoint sits ON the transition, so
	// the plateau's own verification points must disagree.
	trans := -1
	for i := 1; i < len(dense); i++ {
		if dense[i].CyclesBase != dense[i-1].CyclesBase || dense[i].CyclesOpt != dense[i-1].CyclesOpt {
			trans = i
			break
		}
	}
	if trans < 0 {
		t.Skip("no measured transition on this grid; misprediction cannot be staged")
	}
	if trans+1 >= len(sizes) {
		t.Fatalf("transition at final grid point %d; widen the grid", trans)
	}
	wrong := &analysis.EnvPlan{
		Bench:      b.Name,
		Machine:    setup.Machine,
		Sizes:      sizes,
		Boundaries: []int{trans + 1},
		Exact:      false,
		Reasons:    []string{"deliberately mispredicted (test)"},
	}
	adaptive, stats, err := envSweepPlanned(ctx, NewRunner(bench.SizeTest), b, setup, sizes, wrong, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Fallbacks == 0 {
		t.Fatalf("misprediction went undetected: %+v", stats)
	}
	if !reflect.DeepEqual(dense, adaptive) {
		t.Fatalf("fallback did not restore dense results")
	}
}

// TestAdaptiveSweepSharesDenseJournal: points a dense sweep checkpointed
// are replayed verbatim by an adaptive resume — the two modes write and
// read the same keys.
func TestAdaptiveSweepSharesDenseJournal(t *testing.T) {
	b, _ := bench.ByName("libquantum")
	setup := DefaultSetup("core2")
	sizes := adaptiveTestGrid()
	ctx := context.Background()
	ck := newMemCheckpoint()

	dense, err := EnvSweepCheckpointed(ctx, NewRunner(bench.SizeTest), b, setup, sizes, ck)
	if err != nil {
		t.Fatal(err)
	}
	adaptive, stats, err := EnvSweepAdaptive(ctx, NewRunner(bench.SizeTest), b, setup, sizes, ck)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Replayed != len(sizes) || stats.Measured != 0 {
		t.Fatalf("resume over a complete dense journal should replay everything: %+v", stats)
	}
	if !reflect.DeepEqual(dense, adaptive) {
		t.Fatalf("replayed points diverge from the dense sweep's")
	}
}

// TestMeasureBatchMatchesMeasure checks the batched measurement path
// returns exactly what serial Measure calls return, across machines and
// optimization levels in one heterogeneous batch.
func TestMeasureBatchMatchesMeasure(t *testing.T) {
	b, _ := bench.ByName("libquantum")
	ctx := context.Background()
	var setups []Setup
	for _, model := range []string{"core2", "p4", "m5"} {
		for _, lvl := range []compiler.Level{compiler.O2, compiler.O3} {
			s := DefaultSetup(model).WithLevel(lvl)
			setups = append(setups, s)
		}
	}

	batched, err := NewRunner(bench.SizeTest).MeasureBatch(ctx, b, setups)
	if err != nil {
		t.Fatal(err)
	}
	serial := NewRunner(bench.SizeTest)
	for i, s := range setups {
		want, err := serial.Measure(ctx, b, s)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, batched[i]) {
			t.Errorf("setup %s: batched %+v vs serial %+v", s, batched[i], want)
		}
	}
}
