package core

import (
	"context"
	"fmt"

	"biaslab/internal/bench"
	"biaslab/internal/compiler"
	"biaslab/internal/stats"
)

// EnvPoint is one point of an environment-size sweep: the measured cycles
// at two optimization levels and their ratio.
type EnvPoint struct {
	EnvBytes   uint64
	CyclesBase uint64
	CyclesOpt  uint64
	Speedup    float64
}

// EnvSweep measures b's O3-over-O2 speedup at every environment size in
// sizes, holding everything else in setup fixed. This regenerates the
// paper's Figures 1–2 for a single benchmark and, aggregated across the
// suite, Figures 3–5.
func EnvSweep(ctx context.Context, r *Runner, b *bench.Benchmark, setup Setup, sizes []uint64) ([]EnvPoint, error) {
	return EnvSweepCheckpointed(ctx, r, b, setup, sizes, nil)
}

// sweepKey is the checkpoint key of one sweep point: the sweep kind, the
// benchmark, and the *complete* rendered setup, so that points recorded
// under any different setup (machine, compiler, order, padding, shift) can
// never be replayed for this one.
func sweepKey(kind string, benchName string, s Setup) string {
	return kind + "/" + benchName + "/" + s.String()
}

// PointKey returns the checkpoint-journal key of one sweep point — the
// same key the checkpointed sweeps record under. Kinds in use: "env"
// (environment-size sweeps), "link" (link-order sweeps), and "rand"
// (randomized-setup estimates). Exported so a cluster worker measuring a
// shard of a sweep produces records in exactly the single-node journal
// namespace; the byte-identical merge contract depends on it.
func PointKey(kind, benchName string, s Setup) string {
	return sweepKey(kind, benchName, s)
}

// MeasureEnvPoint measures one environment-size sweep point: b's
// O3-over-O2 speedup with setup's environment forced to size bytes. It is
// the unit of work EnvSweepCheckpointed runs per point, exported as the
// shard-execution primitive for distributed sweeps.
func MeasureEnvPoint(ctx context.Context, r *Runner, b *bench.Benchmark, setup Setup, size uint64) (EnvPoint, error) {
	s := setup
	s.EnvBytes = size
	speedup, mb, mo, err := r.Speedup(ctx, b, s, compiler.O2, compiler.O3)
	if err != nil {
		return EnvPoint{}, err
	}
	return EnvPoint{
		EnvBytes:   size,
		CyclesBase: mb.Cycles,
		CyclesOpt:  mo.Cycles,
		Speedup:    speedup,
	}, nil
}

// EnvSweepCheckpointed is EnvSweep with journal-based checkpoint/resume:
// every completed point is recorded in ck before the sweep moves on, and
// points already recorded (a resumed run) are replayed without
// re-measurement — bit-identical, because measurements are deterministic.
//
// On failure it returns the completed points (in sweep order, with the
// failed and unreached points explicitly absent) alongside an error that
// says how much is missing. Callers must treat such partial results as
// partial: they are never silently aggregated by any code in this package.
func EnvSweepCheckpointed(ctx context.Context, r *Runner, b *bench.Benchmark, setup Setup, sizes []uint64, ck Checkpoint) ([]EnvPoint, error) {
	points := make([]EnvPoint, len(sizes))
	done := make([]bool, len(sizes))
	pending := make([]int, 0, len(sizes))
	for i, sz := range sizes {
		s := setup
		s.EnvBytes = sz
		if ck != nil {
			var p EnvPoint
			ok, err := ck.Lookup(sweepKey("env", b.Name, s), &p)
			if err != nil {
				return nil, err
			}
			if ok {
				points[i], done[i] = p, true
				continue
			}
		}
		pending = append(pending, i)
	}
	err := ForEach(ctx, len(pending), 0, func(ctx context.Context, pi int) error {
		i := pending[pi]
		p, err := MeasureEnvPoint(ctx, r, b, setup, sizes[i])
		if err != nil {
			return err
		}
		if ck != nil {
			s := setup
			s.EnvBytes = sizes[i]
			if err := ck.Record(sweepKey("env", b.Name, s), p); err != nil {
				return err
			}
		}
		points[i], done[i] = p, true
		return nil
	})
	if err != nil {
		completed := gatherDone(points, done)
		return completed, fmt.Errorf("core: env sweep of %s incomplete (%d of %d points measured): %w",
			b.Name, len(completed), len(sizes), err)
	}
	return points, nil
}

// gatherDone compacts the completed points of an interrupted sweep,
// preserving sweep order. The gaps are *explicit*: the result's length
// tells the caller exactly how much is missing.
func gatherDone[T any](points []T, done []bool) []T {
	out := make([]T, 0, len(points))
	for i, ok := range done {
		if ok {
			out = append(out, points[i])
		}
	}
	return out
}

// DefaultEnvSizes returns the canonical environment-size sweep: from the
// empty environment to 4 KiB in the given step (the paper swept 0–4088
// bytes). Sizes 9–16 are unrepresentable (see loader.SyntheticEnv) and are
// skipped automatically.
func DefaultEnvSizes(step uint64) []uint64 {
	if step == 0 {
		step = 128
	}
	sizes := []uint64{8}
	for sz := step; sz <= 4096; sz += step {
		if sz >= 17 {
			sizes = append(sizes, sz)
		}
	}
	return sizes
}

// LinkPoint is one link order's measurement.
type LinkPoint struct {
	Label      string
	Order      []int
	CyclesBase uint64
	CyclesOpt  uint64
	Speedup    float64
}

// LinkSweep measures b's speedup under the default order, the alphabetical
// order, and n random permutations — the paper's link-order experiment.
func LinkSweep(ctx context.Context, r *Runner, b *bench.Benchmark, setup Setup, n int, seed uint64) ([]LinkPoint, error) {
	return LinkSweepCheckpointed(ctx, r, b, setup, n, seed, nil)
}

// LinkCandidate is one labelled link order of a link sweep: the default
// order, the alphabetical order, or a seeded random permutation.
type LinkCandidate struct {
	Label string
	Order []int
}

// LinkCandidates enumerates the link orders a link sweep measures — the
// default order, the alphabetical order, and n seeded random permutations.
// The set is a pure function of (names, n, seed), which is what lets a
// resumed or distributed sweep regenerate exactly the candidates an
// earlier run measured.
func LinkCandidates(names []string, n int, seed uint64) []LinkCandidate {
	rng := stats.NewRNG(seed)
	cands := []LinkCandidate{
		{"default", IdentityOrder(len(names))},
		{"alphabetical", AlphabeticalOrder(names)},
	}
	for i := 0; i < n; i++ {
		cands = append(cands, LinkCandidate{fmt.Sprintf("random%02d", i), RandomOrder(len(names), rng)})
	}
	return cands
}

// MeasureLinkPoint measures one link-order sweep point: b's O3-over-O2
// speedup under candidate c's link order. The shard-execution primitive
// for distributed link sweeps, and the unit of work behind
// LinkSweepCheckpointed.
func MeasureLinkPoint(ctx context.Context, r *Runner, b *bench.Benchmark, setup Setup, c LinkCandidate) (LinkPoint, error) {
	s := setup
	s.LinkOrder = c.Order
	speedup, mb, mo, err := r.Speedup(ctx, b, s, compiler.O2, compiler.O3)
	if err != nil {
		return LinkPoint{}, err
	}
	return LinkPoint{
		Label:      c.Label,
		Order:      c.Order,
		CyclesBase: mb.Cycles,
		CyclesOpt:  mo.Cycles,
		Speedup:    speedup,
	}, nil
}

// LinkSweepCheckpointed is LinkSweep with checkpoint/resume; see
// EnvSweepCheckpointed for the journal and partial-result contract. The
// permutation set depends only on (n, seed), so a resumed run regenerates
// the same candidates and replays the recorded ones.
func LinkSweepCheckpointed(ctx context.Context, r *Runner, b *bench.Benchmark, setup Setup, n int, seed uint64, ck Checkpoint) ([]LinkPoint, error) {
	cands := LinkCandidates(r.UnitNames(b), n, seed)
	points := make([]LinkPoint, len(cands))
	done := make([]bool, len(cands))
	pending := make([]int, 0, len(cands))
	for i, c := range cands {
		s := setup
		s.LinkOrder = c.Order
		if ck != nil {
			var p LinkPoint
			ok, err := ck.Lookup(sweepKey("link", b.Name, s), &p)
			if err != nil {
				return nil, err
			}
			if ok {
				// The stored point carries cycles and speedup; the label and
				// order are regenerated, so keep the fresh ones (identical by
				// construction) to avoid aliasing journal-owned slices.
				p.Label, p.Order = c.Label, c.Order
				points[i], done[i] = p, true
				continue
			}
		}
		pending = append(pending, i)
	}
	err := ForEach(ctx, len(pending), 0, func(ctx context.Context, pi int) error {
		i := pending[pi]
		p, err := MeasureLinkPoint(ctx, r, b, setup, cands[i])
		if err != nil {
			return err
		}
		if ck != nil {
			s := setup
			s.LinkOrder = cands[i].Order
			if err := ck.Record(sweepKey("link", b.Name, s), p); err != nil {
				return err
			}
		}
		points[i], done[i] = p, true
		return nil
	})
	if err != nil {
		completed := gatherDone(points, done)
		return completed, fmt.Errorf("core: link sweep of %s incomplete (%d of %d points measured): %w",
			b.Name, len(completed), len(cands), err)
	}
	return points, nil
}

// BiasReport summarizes how a benchmark's measured speedup moves as one
// innocuous setup factor varies — the per-benchmark content of the paper's
// violin plots and of its "is the bias big enough to matter?" analysis.
type BiasReport struct {
	Benchmark string
	Machine   string
	Factor    string // "environment size" or "link order"
	Speedups  stats.Summary
	// FlipsSign is true when the sweep contains speedups on both sides of
	// 1.0: the same experiment supports opposite conclusions.
	FlipsSign bool
	// BiasOverEffect is (max−min speedup) / |median speedup − 1|: how big
	// the bias is relative to the effect being measured. Values ≥ 1 mean
	// the setup choice matters as much as the optimization itself.
	BiasOverEffect float64
}

// NewBiasReport summarizes a slice of speedups.
func NewBiasReport(benchName, machineName, factor string, speedups []float64) BiasReport {
	s := stats.Summarize(speedups)
	rep := BiasReport{
		Benchmark: benchName,
		Machine:   machineName,
		Factor:    factor,
		Speedups:  s,
		FlipsSign: s.Min < 1 && s.Max > 1,
	}
	effect := s.Median - 1
	if effect < 0 {
		effect = -effect
	}
	if effect < 1e-9 {
		effect = 1e-9
	}
	rep.BiasOverEffect = s.Range() / effect
	return rep
}

func (rep BiasReport) String() string {
	flip := ""
	if rep.FlipsSign {
		flip = " FLIPS-SIGN"
	}
	return fmt.Sprintf("%-11s %-9s %-16s speedup %.4f..%.4f (med %.4f) bias/effect %.2f%s",
		rep.Benchmark, rep.Machine, rep.Factor,
		rep.Speedups.Min, rep.Speedups.Max, rep.Speedups.Median,
		rep.BiasOverEffect, flip)
}

// SuiteEnvStudy runs the environment sweep for every benchmark on one
// machine and returns a BiasReport per benchmark plus the raw speedups —
// the data behind Figures 3–5. A non-nil ck checkpoints every completed
// point, so an interrupted study resumes mid-benchmark.
func SuiteEnvStudy(ctx context.Context, r *Runner, machineName string, sizes []uint64, pers compiler.Personality, ck Checkpoint) ([]BiasReport, map[string][]float64, error) {
	reports := []BiasReport{}
	raw := map[string][]float64{}
	for _, b := range bench.All() {
		setup := DefaultSetup(machineName)
		setup.Compiler.Personality = pers
		points, err := EnvSweepCheckpointed(ctx, r, b, setup, sizes, ck)
		if err != nil {
			return nil, nil, err
		}
		speedups := make([]float64, len(points))
		for i, p := range points {
			speedups[i] = p.Speedup
		}
		raw[b.Name] = speedups
		reports = append(reports, NewBiasReport(b.Name, machineName, "environment size", speedups))
	}
	return reports, raw, nil
}

// SuiteLinkStudy runs the link-order sweep for every benchmark on one
// machine — the data behind Figures 6–7. A non-nil ck checkpoints every
// completed point.
func SuiteLinkStudy(ctx context.Context, r *Runner, machineName string, nOrders int, seed uint64, pers compiler.Personality, ck Checkpoint) ([]BiasReport, map[string][]float64, error) {
	reports := []BiasReport{}
	raw := map[string][]float64{}
	for _, b := range bench.All() {
		setup := DefaultSetup(machineName)
		setup.Compiler.Personality = pers
		points, err := LinkSweepCheckpointed(ctx, r, b, setup, nOrders, seed, ck)
		if err != nil {
			return nil, nil, err
		}
		speedups := make([]float64, len(points))
		for i, p := range points {
			speedups[i] = p.Speedup
		}
		raw[b.Name] = speedups
		reports = append(reports, NewBiasReport(b.Name, machineName, "link order", speedups))
	}
	return reports, raw, nil
}
