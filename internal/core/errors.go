package core

import (
	"context"
	"errors"
	"fmt"
)

// The fault model of the experiment engine (see DESIGN.md §"Fault model"):
// every failure of a measurement is classified by the pipeline stage it
// occurred in and wrapped — panics included — in a *MeasurementError that
// carries the complete experimental setup. Nothing about a failed setup is
// ever averaged into a result silently: a sweep either completes every
// point or returns the completed subset alongside a typed error naming
// what is missing.

// Stage identifies the pipeline stage a measurement failed in.
type Stage uint8

// The four stages of one measurement, in execution order.
const (
	StageCompile Stage = iota
	StageLink
	StageLoad
	StageMeasure
)

// String names the stage.
func (s Stage) String() string {
	switch s {
	case StageCompile:
		return "compile"
	case StageLink:
		return "link"
	case StageLoad:
		return "load"
	case StageMeasure:
		return "measure"
	}
	return fmt.Sprintf("stage(%d)", uint8(s))
}

// MeasurementError is the typed failure of one measurement: which stage
// failed, for which benchmark, under which complete experimental setup,
// and why. The setup is attached because the paper's whole point is that
// setups are not interchangeable — an error report that omits the setup
// hides exactly the variable that matters.
type MeasurementError struct {
	Stage     Stage
	Benchmark string
	Setup     Setup
	Cause     error
	// Attempts counts how many times the stage ran (2 when a transient
	// fault was retried and failed again).
	Attempts int
}

func (e *MeasurementError) Error() string {
	return fmt.Sprintf("core: %s stage: %s under %s: %v", e.Stage, e.Benchmark, e.Setup, e.Cause)
}

// Unwrap exposes the cause to errors.Is/As.
func (e *MeasurementError) Unwrap() error { return e.Cause }

// PanicError is a panic recovered at the runner's isolation boundary,
// preserving the panic value and the stack of the panicking goroutine.
type PanicError struct {
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("panic: %v\n%s", e.Value, e.Stack)
}

// Unwrap exposes an error panic value to errors.Is/As, so a typed panic
// (e.g. an injected fault) stays matchable through the recovery boundary.
func (e *PanicError) Unwrap() error {
	if err, ok := e.Value.(error); ok {
		return err
	}
	return nil
}

// transient is implemented by errors that mark themselves as worth one
// retry: failures of the moment (a pool or cache race, an injected
// transient fault), not of the setup.
type transient interface{ IsTransient() bool }

// IsTransient reports whether err, or anything it wraps, marks itself as
// transient. Context cancellation is never transient: a cancelled
// measurement must not be retried into a cancelled context.
func IsTransient(err error) bool {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	var t transient
	return errors.As(err, &t) && t.IsTransient()
}
