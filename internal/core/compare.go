package core

import (
	"context"
	"fmt"

	"biaslab/internal/bench"
	"biaslab/internal/compiler"
	"biaslab/internal/stats"
)

// Comparison is the robust answer to "is toolchain A faster than toolchain
// B for this benchmark?": paired cycle ratios across randomized setups,
// with interval estimates and a scale-free effect size. This is the
// experiment a paper should run instead of quoting one build on one setup.
type Comparison struct {
	Benchmark string
	Machine   string
	A, B      compiler.Config
	N         int
	// Ratios holds cycles(B)/cycles(A) per randomized setup (>1 ⇒ A faster).
	Ratios    []float64
	Mean      float64
	TInterval stats.Interval
	MedianCI  stats.Interval
	// EffectSize is Cohen's d between the raw cycle samples of A and B.
	EffectSize float64
}

// Verdict summarizes the comparison: "A" or "B" when the 95% interval for
// the ratio excludes 1.0, otherwise "inconclusive".
func (c Comparison) Verdict() string {
	switch {
	case c.TInterval.Lo > 1:
		return "A"
	case c.TInterval.Hi < 1:
		return "B"
	}
	return "inconclusive"
}

func (c Comparison) String() string {
	return fmt.Sprintf("%s on %s: %s vs %s over %d setups: ratio %.4f %v (d=%.2f) → %s",
		c.Benchmark, c.Machine, c.A, c.B, c.N, c.Mean, c.TInterval, c.EffectSize, c.Verdict())
}

// CompareConfigs measures benchmark b under configs a and bCfg across n
// randomized setups (shared between the two sides, so the comparison is
// paired) and returns the robust comparison.
func CompareConfigs(ctx context.Context, r *Runner, b *bench.Benchmark, base Setup, a, bCfg compiler.Config, n int, seed uint64) (*Comparison, error) {
	if n < 3 {
		n = 3
	}
	setups := RandomSetups(base, n, len(r.UnitNames(b)), seed)
	cyclesA := make([]float64, n)
	cyclesB := make([]float64, n)
	err := ForEach(ctx, n, 0, func(ctx context.Context, i int) error {
		sa := setups[i]
		sa.Compiler = a
		ma, err := r.Measure(ctx, b, sa)
		if err != nil {
			return err
		}
		sb := setups[i]
		sb.Compiler = bCfg
		mb, err := r.Measure(ctx, b, sb)
		if err != nil {
			return err
		}
		cyclesA[i] = float64(ma.Cycles)
		cyclesB[i] = float64(mb.Cycles)
		return nil
	})
	if err != nil {
		return nil, err
	}
	ratios := make([]float64, n)
	for i := range ratios {
		ratios[i] = cyclesB[i] / cyclesA[i]
	}
	return &Comparison{
		Benchmark:  b.Name,
		Machine:    base.Machine,
		A:          a,
		B:          bCfg,
		N:          n,
		Ratios:     ratios,
		Mean:       stats.Mean(ratios),
		TInterval:  stats.TInterval(ratios, 0.95),
		MedianCI:   stats.MedianInterval(ratios, 0.95),
		EffectSize: stats.EffectSize(cyclesB, cyclesA),
	}, nil
}
