// Package core implements the paper's contribution: the machinery to
// measure, expose, and correct for **measurement bias** in computer-system
// performance evaluation.
//
// An experimental Setup captures everything the paper shows can silently
// change a measurement: the machine, the compiler and optimization level,
// the UNIX environment size (which displaces the stack), and the link order
// (which displaces the code). The Runner executes a benchmark under a setup
// and returns exact performance-counter measurements. On top of that sit
// the three analyses of the paper: bias sweeps (vary one innocuous factor,
// watch the conclusion change), experimental-setup randomization (the
// statistical remedy), and causal analysis (the diagnostic remedy).
package core

import (
	"fmt"
	"strings"

	"biaslab/internal/compiler"
	"biaslab/internal/stats"
)

// Setup is one complete experimental configuration.
type Setup struct {
	// Machine names the hardware model: "p4", "core2" or "m5".
	Machine string
	// Compiler selects the toolchain personality and optimization level.
	Compiler compiler.Config
	// EnvBytes is the size of the UNIX environment in bytes (as measured
	// by loader.EnvBytes). The paper's Figure 3 x-axis.
	EnvBytes uint64
	// LinkOrder permutes the benchmark's translation units; nil means the
	// default (source) order. Values are indices into the unit list.
	LinkOrder []int
	// StackShift lowers the initial stack pointer directly, bypassing the
	// environment: the causal-analysis intervention knob.
	StackShift uint64
	// TextPad inserts this many bytes between consecutive objects' text at
	// link time — a code-placement perturbation in the spirit of address-
	// space randomization, available to the setup randomizer as a third
	// factor beyond environment size and link order.
	TextPad uint64
	// TextBase relocates the whole image to this base address — the
	// ASLR-style displacement channel. Zero means the linker default.
	TextBase uint64
	// CoRunner co-schedules a second benchmark through the same cache/TLB/
	// predictor hierarchy — the multi-tenant interference channel. The zero
	// value means an idle machine (every pre-existing setup).
	CoRunner CoRunner
}

// CoRunner names the tenant sharing the machine with the measured
// benchmark: which program, at which optimization level, interleaved at
// which granularity. Like every other Setup channel it is a value type
// whose zero value means "channel off".
type CoRunner struct {
	// Bench is the co-running benchmark's name; empty disables the channel.
	Bench string
	// Level is the co-runner's own optimization level ("O0".."O3"; empty
	// means O2). The co-runner's level is part of the *setup*, never of the
	// comparison — both the O2 and the O3 measurement of the subject run
	// against the identical co-runner.
	Level string
	// Quantum is the round-robin interleave granularity in retired
	// instructions; 0 means the tenancy engine's default.
	Quantum uint64
}

// IsZero reports whether the channel is off (no co-runner configured).
func (c CoRunner) IsZero() bool { return c.Bench == "" }

// String renders the co-runner compactly, omitting defaulted knobs, e.g.
// "milc", "milc:O3" or "milc:O3/q4096".
func (c CoRunner) String() string {
	if c.IsZero() {
		return ""
	}
	s := c.Bench
	if c.Level != "" {
		s += ":" + c.Level
	}
	if c.Quantum != 0 {
		s += fmt.Sprintf("/q%d", c.Quantum)
	}
	return s
}

// DefaultEnvBytes is the environment size used when a setup leaves it zero:
// a modest, realistic login environment.
const DefaultEnvBytes = 512

// String renders the setup compactly.
func (s Setup) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s/%s env=%dB", s.Machine, s.Compiler, s.EnvBytes)
	if s.LinkOrder != nil {
		fmt.Fprintf(&sb, " link=%v", s.LinkOrder)
	}
	if s.StackShift != 0 {
		fmt.Fprintf(&sb, " shift=%d", s.StackShift)
	}
	if s.TextPad != 0 {
		fmt.Fprintf(&sb, " pad=%d", s.TextPad)
	}
	if s.TextBase != 0 {
		fmt.Fprintf(&sb, " base=%#x", s.TextBase)
	}
	if !s.CoRunner.IsZero() {
		fmt.Fprintf(&sb, " corun=%s", s.CoRunner)
	}
	return sb.String()
}

// WithLevel returns a copy of s at a different optimization level.
func (s Setup) WithLevel(l compiler.Level) Setup {
	s.Compiler.Level = l
	return s
}

// DefaultSetup is the baseline configuration experiments perturb.
func DefaultSetup(machineName string) Setup {
	return Setup{
		Machine:  machineName,
		Compiler: compiler.Config{Level: compiler.O2, Personality: compiler.GCC},
		EnvBytes: DefaultEnvBytes,
	}
}

// IdentityOrder returns the identity link order for n units.
func IdentityOrder(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	return p
}

// AlphabeticalOrder returns the permutation that sorts the given unit names
// alphabetically — one of the two "natural" link orders the paper measures
// (the other being the default build-system order).
func AlphabeticalOrder(names []string) []int {
	p := IdentityOrder(len(names))
	// Insertion sort keeps this dependency-free and stable.
	for i := 1; i < len(p); i++ {
		for j := i; j > 0 && names[p[j]] < names[p[j-1]]; j-- {
			p[j], p[j-1] = p[j-1], p[j]
		}
	}
	return p
}

// RandomOrder returns a random permutation of n units drawn from rng.
func RandomOrder(n int, rng *stats.RNG) []int {
	return rng.Perm(n)
}

// ValidOrder reports whether order is a permutation of [0, n).
func ValidOrder(order []int, n int) bool {
	if len(order) != n {
		return false
	}
	seen := make([]bool, n)
	for _, v := range order {
		if v < 0 || v >= n || seen[v] {
			return false
		}
		seen[v] = true
	}
	return true
}
