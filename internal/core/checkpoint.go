package core

// Checkpoint persists completed measurement points across process
// restarts. Sweeps record each finished (benchmark, setup) point under a
// key that encodes the complete setup; on a rerun, recorded points are
// replayed instead of re-measured, so an interrupted sweep resumes where
// it stopped and — because every measurement is deterministic — produces
// bit-identical output to an uninterrupted run.
//
// internal/journal provides the JSONL implementation used by cmd/biaslab;
// a nil Checkpoint disables checkpointing.
type Checkpoint interface {
	// Lookup decodes the value stored under key into out (when out is
	// non-nil) and reports whether the key was present.
	Lookup(key string, out any) (bool, error)
	// Record durably stores v under key before returning.
	Record(key string, v any) error
}

// ProgressFunc observes sweep progress: it is invoked once per completed
// point with the point's checkpoint key. replayed is true when the point
// was served from the checkpoint (a resumed run) instead of being
// measured. The function is called from whichever goroutine completed the
// point, so it must be safe for concurrent use; it must not block, or it
// stalls the sweep.
type ProgressFunc func(key string, replayed bool)

// WithProgress wraps ck so fn observes every completed point: replayed
// points as they are looked up, fresh points after they are durably
// recorded. ck may be nil, in which case nothing is persisted and fn still
// sees every fresh point — progress reporting without checkpointing.
func WithProgress(ck Checkpoint, fn ProgressFunc) Checkpoint {
	return &progressCheckpoint{ck: ck, fn: fn}
}

type progressCheckpoint struct {
	ck Checkpoint
	fn ProgressFunc
}

func (p *progressCheckpoint) Lookup(key string, out any) (bool, error) {
	if p.ck == nil {
		return false, nil
	}
	ok, err := p.ck.Lookup(key, out)
	if ok && err == nil && p.fn != nil {
		p.fn(key, true)
	}
	return ok, err
}

func (p *progressCheckpoint) Record(key string, v any) error {
	if p.ck != nil {
		if err := p.ck.Record(key, v); err != nil {
			return err
		}
	}
	if p.fn != nil {
		p.fn(key, false)
	}
	return nil
}
