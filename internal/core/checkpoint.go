package core

// Checkpoint persists completed measurement points across process
// restarts. Sweeps record each finished (benchmark, setup) point under a
// key that encodes the complete setup; on a rerun, recorded points are
// replayed instead of re-measured, so an interrupted sweep resumes where
// it stopped and — because every measurement is deterministic — produces
// bit-identical output to an uninterrupted run.
//
// internal/journal provides the JSONL implementation used by cmd/biaslab;
// a nil Checkpoint disables checkpointing.
type Checkpoint interface {
	// Lookup decodes the value stored under key into out (when out is
	// non-nil) and reports whether the key was present.
	Lookup(key string, out any) (bool, error)
	// Record durably stores v under key before returning.
	Record(key string, v any) error
}
