package core

import (
	"context"
	"fmt"

	"biaslab/internal/analysis"
	"biaslab/internal/bench"
	"biaslab/internal/compiler"
	"biaslab/internal/machine"
)

// machineConfig resolves a machine name to its configuration the same way
// acquireMachine does: registered custom configs first, then the built-in
// catalogue.
func (r *Runner) machineConfig(name string) (machine.Config, error) {
	r.mu.Lock()
	cfg, ok := r.custom[name]
	r.mu.Unlock()
	if ok {
		return cfg, nil
	}
	cfg, ok = machine.ConfigByName(name)
	if !ok {
		return machine.Config{}, fmt.Errorf("core: unknown machine %q", name)
	}
	return cfg, nil
}

// PlanEnvSweep asks the bias oracle where an environment sweep of b under
// setup can transition: it builds one conflict map per optimization level —
// a sweep point measures both the O2 and the O3 binary, and their stack
// placements differ — over the exact executables the sweep will run, and
// merges them into a single plan. The plan is the same struct `biaslab
// predict -json` emits.
func PlanEnvSweep(r *Runner, b *bench.Benchmark, setup Setup, sizes []uint64) (*analysis.EnvPlan, error) {
	cfg, err := r.machineConfig(setup.Machine)
	if err != nil {
		return nil, err
	}
	maps := make([]*analysis.ConflictMap, 0, 2)
	for _, lvl := range []compiler.Level{compiler.O2, compiler.O3} {
		s := setup.WithLevel(lvl)
		exe, err := r.Executable(b, s)
		if err != nil {
			return nil, err
		}
		prog, err := r.program(b, s.Compiler)
		if err != nil {
			return nil, err
		}
		o, err := analysis.NewOracle(exe, prog, cfg, []string{b.Name}, s.StackShift)
		if err != nil {
			return nil, fmt.Errorf("core: planning env sweep of %s: %w", b.Name, err)
		}
		maps = append(maps, o.ConflictMap(b.Name, setup.Machine, sizes))
	}
	return analysis.NewEnvPlan(b.Name, setup.Machine, sizes, maps...)
}

// AdaptiveSweepStats reports what an adaptive sweep actually did — the
// honesty ledger that lets a caller (and the experiment log) distinguish
// "measured everything" from "measured the boundaries and verified the
// plateaus".
type AdaptiveSweepStats struct {
	// GridPoints is the full grid size; Measured + Interpolated + Replayed
	// equals GridPoints on success.
	GridPoints int `json:"grid_points"`
	// Measured counts points obtained by actually running the simulator in
	// this call (boundary points, guard bands, spot checks, and any dense
	// fallback).
	Measured int `json:"measured"`
	// Interpolated counts points filled in from a verified plateau without
	// a run.
	Interpolated int `json:"interpolated"`
	// Replayed counts points restored from the checkpoint journal.
	Replayed int `json:"replayed"`
	// Boundaries is the number of transition boundaries the oracle predicted.
	Boundaries int `json:"boundaries"`
	// Fallbacks counts plateaus whose verification points disagreed —
	// mispredictions — and were therefore re-measured densely.
	Fallbacks int `json:"fallbacks"`
	// PlanExact records whether the oracle claimed exactness for the plan.
	PlanExact bool `json:"plan_exact"`
}

// EnvSweepAdaptive is EnvSweepCheckpointed guided by the bias oracle: it
// measures only the predicted transition boundaries, a guard band before
// each, and one interior spot check per plateau, then fills in plateau
// interiors by interpolation. Every plateau is verified empirically — its
// measured endpoints and spot check must agree exactly on both cycle counts
// — and a plateau that fails verification is re-measured densely, so a
// wrong oracle costs time, never correctness of the points it got to
// verify. When the oracle's predictions hold, the returned points are
// byte-identical to EnvSweep's over the same grid.
//
// Checkpoint keys are identical to the dense sweep's, so adaptive and dense
// runs share a journal: a resumed run replays whichever points either mode
// recorded.
func EnvSweepAdaptive(ctx context.Context, r *Runner, b *bench.Benchmark, setup Setup, sizes []uint64, ck Checkpoint) ([]EnvPoint, AdaptiveSweepStats, error) {
	plan, err := PlanEnvSweep(r, b, setup, sizes)
	if err != nil {
		return nil, AdaptiveSweepStats{GridPoints: len(sizes)}, err
	}
	return envSweepPlanned(ctx, r, b, setup, sizes, plan, ck)
}

// envSweepPlanned is the measurement half of EnvSweepAdaptive, split out so
// tests can force a deliberately wrong plan and assert the dense fallback
// restores correctness.
func envSweepPlanned(ctx context.Context, r *Runner, b *bench.Benchmark, setup Setup, sizes []uint64, plan *analysis.EnvPlan, ck Checkpoint) ([]EnvPoint, AdaptiveSweepStats, error) {
	return plannedSweep(ctx, r, b, "env", sizes, plan, ck, sweepOps[EnvPoint]{
		setupAt: func(i int) Setup {
			s := setup
			s.EnvBytes = sizes[i]
			return s
		},
		makePoint: func(i int, base, opt uint64) EnvPoint {
			return EnvPoint{
				EnvBytes:   sizes[i],
				CyclesBase: base,
				CyclesOpt:  opt,
				Speedup:    float64(base) / float64(opt),
			}
		},
		cycles: func(p EnvPoint) (uint64, uint64) { return p.CyclesBase, p.CyclesOpt },
		revalue: func(p EnvPoint, i int) EnvPoint {
			p.EnvBytes = sizes[i]
			return p
		},
	})
}

// sweepOps adapts one sweep's point type to the generic planned-sweep
// engine: how a grid index becomes a Setup, how a measurement becomes a
// point, how to read a point's cycle pair, and how to re-label a plateau
// representative for an interpolated index.
type sweepOps[T any] struct {
	setupAt   func(i int) Setup
	makePoint func(i int, base, opt uint64) T
	cycles    func(p T) (uint64, uint64)
	revalue   func(p T, i int) T
}

// plannedSweep is the oracle-guided measurement engine shared by the env,
// pad, and base adaptive sweeps: measure the predicted transition boundaries,
// a guard band before each, and one interior spot check per plateau; verify
// every plateau empirically (all held points must agree exactly on both
// cycle counts); interpolate verified plateau interiors and densely
// re-measure failed ones. kind is the checkpoint namespace; the journal keys
// match the corresponding dense sweep's exactly.
func plannedSweep[T any](ctx context.Context, r *Runner, b *bench.Benchmark, kind string, grid []uint64, plan *analysis.EnvPlan, ck Checkpoint, ops sweepOps[T]) ([]T, AdaptiveSweepStats, error) {
	n := len(grid)
	stats := AdaptiveSweepStats{
		GridPoints: n,
		Boundaries: len(plan.Boundaries),
		PlanExact:  plan.Exact,
	}
	if len(plan.Sizes) != n {
		return nil, stats, fmt.Errorf("core: %s plan grid has %d sizes, sweep grid %d", kind, len(plan.Sizes), n)
	}
	for i, sz := range plan.Sizes {
		if sz != grid[i] {
			return nil, stats, fmt.Errorf("core: %s plan grid differs from sweep grid at index %d (%d vs %d)", kind, i, sz, grid[i])
		}
	}
	prev := 0
	for _, bi := range plan.Boundaries {
		if bi <= prev || bi >= n {
			return nil, stats, fmt.Errorf("core: %s plan boundaries %v not strictly increasing within (0,%d)", kind, plan.Boundaries, n)
		}
		prev = bi
	}

	points := make([]T, n)
	done := make([]bool, n)
	for i := 0; i < n; i++ {
		if ck == nil {
			break
		}
		var p T
		ok, err := ck.Lookup(sweepKey(kind, b.Name, ops.setupAt(i)), &p)
		if err != nil {
			return nil, stats, err
		}
		if ok {
			points[i], done[i] = p, true
			stats.Replayed++
		}
	}

	// measurePts measures the given grid indices — both optimization levels
	// per point, batched through MeasureBatch — and records each completed
	// point before moving on, preserving the dense sweep's partial-result
	// contract at chunk granularity.
	measurePts := func(idxs []int) error {
		const pointsPerChunk = measureBatchSize / 2
		for start := 0; start < len(idxs); start += pointsPerChunk {
			end := start + pointsPerChunk
			if end > len(idxs) {
				end = len(idxs)
			}
			chunk := idxs[start:end]
			setups := make([]Setup, 0, 2*len(chunk))
			for _, i := range chunk {
				s := ops.setupAt(i)
				setups = append(setups, s.WithLevel(compiler.O2), s.WithLevel(compiler.O3))
			}
			ms, err := r.MeasureBatch(ctx, b, setups)
			if err != nil {
				return err
			}
			for k, i := range chunk {
				mb, mo := ms[2*k], ms[2*k+1]
				p := ops.makePoint(i, mb.Cycles, mo.Cycles)
				if ck != nil {
					if err := ck.Record(sweepKey(kind, b.Name, ops.setupAt(i)), p); err != nil {
						return err
					}
				}
				points[i], done[i] = p, true
				stats.Measured++
			}
		}
		return nil
	}
	fail := func(err error) ([]T, AdaptiveSweepStats, error) {
		completed := gatherDone(points, done)
		return completed, stats, fmt.Errorf("core: %s sweep of %s incomplete (%d of %d points measured): %w",
			kind, b.Name, len(completed), n, err)
	}

	// Plateaus: [start of grid or a boundary, next boundary). Within each,
	// the oracle predicts constant cycles. The probe set per plateau is its
	// first point (the boundary itself), its last point (the guard band just
	// before the next boundary), and one interior spot check.
	starts := append([]int{0}, plan.Boundaries...)
	probe := make([]int, 0, 3*len(starts))
	want := make([]bool, n)
	mark := func(i int) {
		if !want[i] && !done[i] {
			want[i] = true
			probe = append(probe, i)
		}
	}
	plateau := func(k int) (lo, hi int) {
		lo = starts[k]
		hi = n - 1
		if k+1 < len(starts) {
			hi = starts[k+1] - 1
		}
		return lo, hi
	}
	for k := range starts {
		lo, hi := plateau(k)
		mark(lo)
		mark(hi)
		mark((lo + hi) / 2)
	}
	if err := measurePts(probe); err != nil {
		return fail(err)
	}

	// Verify each plateau against every point of it we hold — probes plus
	// any replayed checkpoint points — and either interpolate the interior
	// or fall back to measuring it densely.
	for k := range starts {
		lo, hi := plateau(k)
		agree := true
		repBase, repOpt := ops.cycles(points[lo])
		for i := lo; i <= hi; i++ {
			cb, co := ops.cycles(points[i])
			if done[i] && (cb != repBase || co != repOpt) {
				agree = false
				break
			}
		}
		if !agree {
			stats.Fallbacks++
			dense := make([]int, 0, hi-lo+1)
			for i := lo; i <= hi; i++ {
				if !done[i] {
					dense = append(dense, i)
				}
			}
			if err := measurePts(dense); err != nil {
				return fail(err)
			}
			continue
		}
		for i := lo; i <= hi; i++ {
			if done[i] {
				continue
			}
			p := ops.revalue(points[lo], i)
			if ck != nil {
				if err := ck.Record(sweepKey(kind, b.Name, ops.setupAt(i)), p); err != nil {
					return fail(err)
				}
			}
			points[i], done[i] = p, true
			stats.Interpolated++
		}
	}
	return points, stats, nil
}
