package core

import (
	"context"
	"fmt"

	"biaslab/internal/bench"
	"biaslab/internal/faultinject"
	"biaslab/internal/loader"
	"biaslab/internal/machine"
)

// measureBatchSize bounds how many setups run concurrently through
// machine.RunBatch. Each member pins an image (up to 16 MiB of simulated
// memory) and a machine for the duration of the chunk, so the bound keeps a
// long adaptive sweep's working set in the tens of megabytes instead of
// letting it scale with the sweep length.
const measureBatchSize = 8

// MeasureBatch measures b under every setup, interleaving the run stage of
// up to measureBatchSize setups through machine.RunBatch so the execute
// engines share dispatch overhead and stay hot in cache. Results arrive in
// setup order and are identical — bit for bit, counter for counter — to
// calling Measure once per setup: compilation, linking, and loading go
// through the same caches and the same fault boundaries, and the batched
// engine is differentially tested against the reference stepper.
//
// On any member's failure the whole chunk is abandoned: a *MeasurementError
// is returned and the chunk's machines and images are dropped, never
// recycled, exactly as Measure drops them.
func (r *Runner) MeasureBatch(ctx context.Context, b *bench.Benchmark, setups []Setup) ([]*Measurement, error) {
	out := make([]*Measurement, len(setups))
	for start := 0; start < len(setups); start += measureBatchSize {
		end := start + measureBatchSize
		if end > len(setups) {
			end = len(setups)
		}
		if err := r.measureChunk(ctx, b, setups[start:end], out[start:end]); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// measureChunk runs one bounded chunk of setups through the staged
// pipeline: compile+link+load each member (cached stages deduplicate the
// work), then one batched run stage for the whole chunk.
func (r *Runner) measureChunk(ctx context.Context, b *bench.Benchmark, setups []Setup, out []*Measurement) error {
	if err := ctx.Err(); err != nil {
		return err
	}

	sids := make([]string, len(setups))
	imgs := make([]*loader.Image, len(setups))
	for i, s := range setups {
		sids[i] = setupID(b, s)
		exe, err := r.stagedExecutable(b, s, sids[i])
		if err != nil {
			return err
		}
		img, err := r.stagedLoad(b, s, sids[i], exe)
		if err != nil {
			return err
		}
		imgs[i] = img
	}

	if err := ctx.Err(); err != nil {
		return err
	}

	var results []*machine.Result
	ms := make([]*machine.Machine, len(setups))
	// The batched run is one fault boundary: a panic or injected fault in
	// any member abandons the chunk, and every machine and image is dropped
	// rather than recycled — same policy as measure(), widened to the chunk.
	if err := runStage(StageMeasure, b.Name, setups[0], func() error {
		for _, sid := range sids {
			if err := faultinject.Check("measure", sid); err != nil {
				return err
			}
		}
		for i, s := range setups {
			m, err := r.acquireMachine(s.Machine)
			if err != nil {
				return err
			}
			ms[i] = m
		}
		var err error
		results, err = machine.RunBatch(ctx, ms, imgs, r.MaxInstructions)
		if err != nil {
			return fmt.Errorf("core: batched run of %s: %w", b.Name, err)
		}
		for i, res := range results {
			if err := r.checkOracle(b.Name, res.Checksum, setups[i]); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return err
	}

	for i, res := range results {
		r.releaseMachine(setups[i].Machine, ms[i])
		imgs[i].Release()
		out[i] = &Measurement{
			Setup:    setups[i],
			Cycles:   res.Counters.Cycles,
			Counters: res.Counters,
			Checksum: res.Checksum,
		}
		if r.OnMeasure != nil {
			r.OnMeasure(out[i])
		}
	}
	return nil
}
