package core

import (
	"context"
	"strings"
	"testing"

	"biaslab/internal/bench"
	"biaslab/internal/compiler"
	"biaslab/internal/stats"
)

func testBench(t *testing.T, name string) *bench.Benchmark {
	t.Helper()
	b, ok := bench.ByName(name)
	if !ok {
		t.Fatalf("benchmark %s missing", name)
	}
	return b
}

func TestSetupHelpers(t *testing.T) {
	s := DefaultSetup("core2")
	if s.Machine != "core2" || s.Compiler.Level != compiler.O2 || s.EnvBytes != DefaultEnvBytes {
		t.Errorf("default setup wrong: %v", s)
	}
	s3 := s.WithLevel(compiler.O3)
	if s3.Compiler.Level != compiler.O3 || s.Compiler.Level != compiler.O2 {
		t.Error("WithLevel should copy")
	}
	if !strings.Contains(s.String(), "core2") {
		t.Error("String missing machine")
	}
	shift := s
	shift.StackShift = 8
	shift.LinkOrder = []int{1, 0}
	str := shift.String()
	if !strings.Contains(str, "shift=8") || !strings.Contains(str, "link=") {
		t.Errorf("String missing fields: %s", str)
	}
}

// TestSetupStringCoRunner pins the CoRunner rendering contract that
// checkpoint keys depend on: a zero co-runner renders NOTHING — so every
// legacy checkpoint key is byte-identical to its pre-tenancy form — and a
// configured one renders its full identity.
func TestSetupStringCoRunner(t *testing.T) {
	s := DefaultSetup("core2")
	legacy := s.String()
	if strings.Contains(legacy, "corun") {
		t.Fatalf("zero co-runner leaked into Setup.String: %s", legacy)
	}
	s.CoRunner = CoRunner{Bench: "milc", Level: "O3", Quantum: 1024}
	if got := s.String(); !strings.Contains(got, " corun=milc:O3/q1024") {
		t.Errorf("String missing co-runner: %s", got)
	}
	if got := (CoRunner{Bench: "milc"}).String(); got != "milc" {
		t.Errorf("defaulted co-runner renders %q, want bare bench name", got)
	}

	// Tenant point keys: deterministic, and separated by co-runner identity.
	base := DefaultSetup("core2")
	idle := TenantPointKey("sjeng", base, TenantIdle)
	milc := TenantPointKey("sjeng", base, "milc")
	if idle == milc {
		t.Error("idle and milc tenant points share a key")
	}
	if again := TenantPointKey("sjeng", base, "milc"); again != milc {
		t.Errorf("tenant keying not deterministic: %s vs %s", again, milc)
	}
	// The idle tenant point keys identically whether spelled "idle" or "":
	// both mean the machine to itself.
	if empty := TenantPointKey("sjeng", base, ""); empty != idle {
		t.Errorf("idle spellings diverge: %s vs %s", empty, idle)
	}
}

func TestOrders(t *testing.T) {
	if got := IdentityOrder(3); got[0] != 0 || got[1] != 1 || got[2] != 2 {
		t.Error("identity order wrong")
	}
	names := []string{"c.cm", "a.cm", "b.cm"}
	alpha := AlphabeticalOrder(names)
	if names[alpha[0]] != "a.cm" || names[alpha[1]] != "b.cm" || names[alpha[2]] != "c.cm" {
		t.Errorf("alphabetical order wrong: %v", alpha)
	}
	rng := stats.NewRNG(5)
	r := RandomOrder(6, rng)
	if !ValidOrder(r, 6) {
		t.Errorf("random order invalid: %v", r)
	}
	if ValidOrder([]int{0, 0, 1}, 3) || ValidOrder([]int{0, 1}, 3) || ValidOrder([]int{0, 1, 5}, 3) {
		t.Error("ValidOrder accepts invalid permutations")
	}
}

func TestMeasureBasics(t *testing.T) {
	r := NewRunner(bench.SizeTest)
	b := testBench(t, "perlbench")
	m, err := r.Measure(context.Background(), b, DefaultSetup("core2"))
	if err != nil {
		t.Fatal(err)
	}
	if m.Cycles == 0 || m.Checksum == 0 {
		t.Error("empty measurement")
	}
	// Same setup twice ⇒ identical cycles (deterministic simulator).
	m2, err := r.Measure(context.Background(), b, DefaultSetup("core2"))
	if err != nil {
		t.Fatal(err)
	}
	if m2.Cycles != m.Cycles {
		t.Errorf("determinism violated: %d vs %d", m.Cycles, m2.Cycles)
	}
}

func TestMeasureRejectsBadInput(t *testing.T) {
	r := NewRunner(bench.SizeTest)
	b := testBench(t, "perlbench")
	s := DefaultSetup("vax11")
	if _, err := r.Measure(context.Background(), b, s); err == nil || !strings.Contains(err.Error(), "unknown machine") {
		t.Errorf("unknown machine not rejected: %v", err)
	}
	s = DefaultSetup("core2")
	s.LinkOrder = []int{0, 0, 1, 2}
	if _, err := r.Measure(context.Background(), b, s); err == nil || !strings.Contains(err.Error(), "invalid link order") {
		t.Errorf("bad link order not rejected: %v", err)
	}
}

// TestOutputStableAcrossSetups is the metamorphic core of the whole paper:
// environment size and link order may change cycles but never output.
func TestOutputStableAcrossSetups(t *testing.T) {
	r := NewRunner(bench.SizeTest)
	b := testBench(t, "bzip2")
	base := DefaultSetup("p4")
	var first uint64
	rng := stats.NewRNG(11)
	for i, s := range []Setup{
		base,
		{Machine: "p4", Compiler: base.Compiler, EnvBytes: 2048},
		{Machine: "p4", Compiler: base.Compiler, EnvBytes: 17},
		{Machine: "p4", Compiler: base.Compiler, EnvBytes: 999, LinkOrder: RandomOrder(4, rng)},
		{Machine: "p4", Compiler: base.Compiler, EnvBytes: 512, StackShift: 256},
	} {
		m, err := r.Measure(context.Background(), b, s)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = m.Checksum
		} else if m.Checksum != first {
			t.Fatalf("setup %v changed output", s)
		}
	}
}

func TestSpeedupAndEnvSweep(t *testing.T) {
	r := NewRunner(bench.SizeTest)
	b := testBench(t, "hmmer")
	setup := DefaultSetup("core2")
	sp, mb, mo, err := r.Speedup(context.Background(), b, setup, compiler.O2, compiler.O3)
	if err != nil {
		t.Fatal(err)
	}
	if sp <= 0 || mb.Cycles == 0 || mo.Cycles == 0 {
		t.Errorf("bad speedup %v", sp)
	}
	points, err := EnvSweep(context.Background(), r, b, setup, []uint64{8, 512, 1024})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("points = %d", len(points))
	}
	for _, p := range points {
		if p.Speedup <= 0 {
			t.Errorf("non-positive speedup at env %d", p.EnvBytes)
		}
	}
}

func TestDefaultEnvSizes(t *testing.T) {
	sizes := DefaultEnvSizes(128)
	if sizes[0] != 8 {
		t.Error("first size should be the empty environment")
	}
	for _, sz := range sizes {
		if sz > 8 && sz < 17 {
			t.Errorf("unrepresentable size %d in sweep", sz)
		}
		if sz > 4096 {
			t.Errorf("size %d beyond sweep bound", sz)
		}
	}
	if len(DefaultEnvSizes(0)) == 0 {
		t.Error("default step should work")
	}
}

func TestLinkSweep(t *testing.T) {
	r := NewRunner(bench.SizeTest)
	b := testBench(t, "gcc")
	points, err := LinkSweep(context.Background(), r, b, DefaultSetup("m5"), 3, 77)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 5 { // default + alphabetical + 3 random
		t.Fatalf("points = %d", len(points))
	}
	if points[0].Label != "default" || points[1].Label != "alphabetical" {
		t.Error("labels wrong")
	}
	for _, p := range points {
		if !ValidOrder(p.Order, len(r.UnitNames(b))) {
			t.Errorf("%s: invalid order", p.Label)
		}
	}
}

func TestBiasReport(t *testing.T) {
	rep := NewBiasReport("x", "core2", "environment size", []float64{0.98, 1.01, 1.05, 0.99})
	if !rep.FlipsSign {
		t.Error("sign flip not detected")
	}
	if rep.BiasOverEffect <= 0 {
		t.Error("bias/effect not positive")
	}
	rep2 := NewBiasReport("y", "core2", "link order", []float64{1.05, 1.06, 1.07})
	if rep2.FlipsSign {
		t.Error("false sign flip")
	}
	if !strings.Contains(rep.String(), "FLIPS-SIGN") || strings.Contains(rep2.String(), "FLIPS-SIGN") {
		t.Error("String flip marker wrong")
	}
}

func TestRandomSetups(t *testing.T) {
	base := DefaultSetup("core2")
	setups := RandomSetups(base, 20, 4, 99)
	if len(setups) != 20 {
		t.Fatal("wrong count")
	}
	distinctEnv := map[uint64]bool{}
	for _, s := range setups {
		if s.EnvBytes != 8 && s.EnvBytes < 17 {
			t.Errorf("unrepresentable env size %d", s.EnvBytes)
		}
		if !ValidOrder(s.LinkOrder, 4) {
			t.Errorf("invalid link order %v", s.LinkOrder)
		}
		distinctEnv[s.EnvBytes] = true
	}
	if len(distinctEnv) < 10 {
		t.Errorf("env sizes not diverse: %d distinct", len(distinctEnv))
	}
	// Determinism.
	again := RandomSetups(base, 20, 4, 99)
	for i := range setups {
		if setups[i].EnvBytes != again[i].EnvBytes {
			t.Fatal("RandomSetups not deterministic")
		}
	}
}

func TestEstimateSpeedup(t *testing.T) {
	r := NewRunner(bench.SizeTest)
	b := testBench(t, "libquantum")
	est, err := EstimateSpeedup(context.Background(), r, b, DefaultSetup("m5"), 6, 123)
	if err != nil {
		t.Fatal(err)
	}
	if est.N != 6 || len(est.Speedups) != 6 {
		t.Error("sample count wrong")
	}
	if !est.TInterval.Contains(est.Mean) {
		t.Error("t interval excludes its own mean")
	}
	if !est.Bootstrap.Contains(est.Mean) {
		t.Error("bootstrap interval excludes its own mean")
	}
	verdicts, err := CompareSingleSetups(context.Background(), r, b, est, map[string]Setup{
		"small-env": {Machine: "m5", Compiler: est.speedupCfg(), EnvBytes: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(verdicts) != 1 || verdicts[0].Speedup <= 0 {
		t.Error("verdicts wrong")
	}
}

// speedupCfg gives tests access to the compiler config used in estimates.
func (e *RobustEstimate) speedupCfg() compiler.Config {
	return compiler.Config{Level: compiler.O2, Personality: compiler.GCC}
}

func TestCausalStudy(t *testing.T) {
	r := NewRunner(bench.SizeTest)
	b := testBench(t, "mcf")
	rep, err := CausalStudy(context.Background(), r, b, DefaultSetup("p4"), 512, 128)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Points) != 5 {
		t.Fatalf("points = %d", len(rep.Points))
	}
	if len(rep.Correlations) == 0 {
		t.Error("no counter correlations")
	}
	for i := 1; i < len(rep.Correlations); i++ {
		if abs(rep.Correlations[i].Pearson) > abs(rep.Correlations[i-1].Pearson) {
			t.Error("correlations not sorted by |r|")
		}
	}
	if rep.TopCause().Counter == "cycles" || rep.TopCause().Counter == "instructions" {
		t.Error("TopCause should skip trivial counters")
	}
	if len(rep.String()) == 0 {
		t.Error("String empty")
	}
}

func TestTextPadFactor(t *testing.T) {
	r := NewRunner(bench.SizeTest)
	b := testBench(t, "milc")
	base := DefaultSetup("m5")
	padded := base
	padded.TextPad = 128
	m0, err := r.Measure(context.Background(), b, base)
	if err != nil {
		t.Fatal(err)
	}
	m1, err := r.Measure(context.Background(), b, padded)
	if err != nil {
		t.Fatal(err)
	}
	if m0.Checksum != m1.Checksum {
		t.Fatal("text padding changed output")
	}
	if !strings.Contains(padded.String(), "pad=128") {
		t.Error("String missing pad")
	}
	// Cycles will usually differ (layout moved); don't assert inequality —
	// on some benchmarks the layouts tie — but both must be positive.
	if m0.Cycles == 0 || m1.Cycles == 0 {
		t.Error("empty measurements")
	}
}

func TestEstimateSpeedupAdaptive(t *testing.T) {
	r := NewRunner(bench.SizeTest)
	b := testBench(t, "gcc")
	// Loose tolerance: should stop well before maxN.
	est, err := EstimateSpeedupAdaptive(context.Background(), r, b, DefaultSetup("m5"), 0.05, 4, 24, 5)
	if err != nil {
		t.Fatal(err)
	}
	if est.N < 4 || est.N > 24 {
		t.Errorf("adaptive N = %d out of bounds", est.N)
	}
	if est.N == 24 {
		t.Logf("note: loose tolerance still used all samples (N=%d, CI %v)", est.N, est.TInterval)
	}
	// Impossible tolerance: must stop at maxN.
	est2, err := EstimateSpeedupAdaptive(context.Background(), r, b, DefaultSetup("m5"), 0, 4, 8, 5)
	if err != nil {
		t.Fatal(err)
	}
	if est2.N != 8 {
		t.Errorf("zero tolerance should exhaust maxN: N=%d", est2.N)
	}
	// Prefix property: adaptive samples are a prefix of the full draw, so
	// a wider run extends (not replaces) a narrower one.
	for i := range est.Speedups {
		if i < len(est2.Speedups) && est.Speedups[i] != est2.Speedups[i] {
			t.Errorf("sample %d differs between runs with same seed", i)
		}
	}
}

func TestCompareConfigs(t *testing.T) {
	r := NewRunner(bench.SizeTest)
	b := testBench(t, "hmmer")
	a := compiler.Config{Level: compiler.O2}
	bc := compiler.Config{Level: compiler.O0}
	cmp, err := CompareConfigs(context.Background(), r, b, DefaultSetup("m5"), a, bc, 5, 9)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.N != 5 || len(cmp.Ratios) != 5 {
		t.Error("sample count wrong")
	}
	// O2 vs O0 is decisive: ratio (cycles O0 / cycles O2) well above 1.
	if cmp.Mean <= 1.1 {
		t.Errorf("O2-vs-O0 ratio implausibly small: %v", cmp.Mean)
	}
	if cmp.Verdict() != "A" {
		t.Errorf("verdict = %q, want A (O2 wins)", cmp.Verdict())
	}
	if cmp.EffectSize <= 0 {
		t.Errorf("effect size %v should be positive (B slower)", cmp.EffectSize)
	}
	// Self-comparison is inconclusive by construction.
	self, err := CompareConfigs(context.Background(), r, b, DefaultSetup("m5"), a, a, 5, 9)
	if err != nil {
		t.Fatal(err)
	}
	if self.Verdict() != "inconclusive" {
		t.Errorf("self comparison verdict = %q", self.Verdict())
	}
}
