package core

import (
	"context"
	"fmt"

	"biaslab/internal/analysis"
	"biaslab/internal/bench"
	"biaslab/internal/compiler"
	"biaslab/internal/loader"
)

// planChannelSweep builds the dataflow-backed plan for a scalar code-layout
// channel: it links the exact executable the sweep will measure at every
// grid value and both optimization levels, runs the interprocedural engine
// over each, and asks the channel comparator for pairwise verdicts. Unlike
// the env oracle — which predicts from one binary because only the stack
// moves — a code channel needs every layout in hand: the proofs are
// relations between pairs of binaries, not properties of one.
func planChannelSweep(r *Runner, b *bench.Benchmark, spec channelSpec, setup Setup, values []uint64) (*analysis.EnvPlan, error) {
	mcfg, err := r.machineConfig(setup.Machine)
	if err != nil {
		return nil, err
	}
	envBytes := setup.EnvBytes
	if envBytes == 0 {
		envBytes = DefaultEnvBytes
	}
	sp := loader.InitialSP(loader.Options{
		Env:        loader.SyntheticEnv(envBytes),
		Args:       []string{b.Name},
		StackShift: setup.StackShift,
	})
	maps := make([]*analysis.ChannelConflictMap, 0, 2)
	for _, lvl := range []compiler.Level{compiler.O2, compiler.O3} {
		layouts := make([]*analysis.ChannelLayout, 0, len(values))
		for _, v := range values {
			s := spec.apply(setup, v).WithLevel(lvl)
			exe, err := r.Executable(b, s)
			if err != nil {
				return nil, err
			}
			prog, err := r.program(b, s.Compiler)
			if err != nil {
				return nil, err
			}
			cl, err := analysis.NewChannelLayout(v, exe, prog)
			if err != nil {
				return nil, fmt.Errorf("core: planning %s sweep of %s: %w", spec.kind, b.Name, err)
			}
			layouts = append(layouts, cl)
		}
		maps = append(maps, analysis.BuildChannelConflictMap(b.Name, setup.Machine, spec.kind, mcfg, sp, layouts))
	}
	return analysis.NewChannelPlan(b.Name, setup.Machine, values, maps...)
}

// PlanPadSweep asks the channel comparator where a text-padding sweep of b
// under setup can transition. The plan is the same struct `biaslab predict
// -channel pad -json` emits.
func PlanPadSweep(r *Runner, b *bench.Benchmark, setup Setup, values []uint64) (*analysis.EnvPlan, error) {
	return planChannelSweep(r, b, padChannel, setup, values)
}

// PlanBaseSweep asks the channel comparator where an image-base sweep of b
// under setup can transition.
func PlanBaseSweep(r *Runner, b *bench.Benchmark, setup Setup, values []uint64) (*analysis.EnvPlan, error) {
	return planChannelSweep(r, b, baseChannel, setup, values)
}

// channelSweepAdaptive is the shared body of PadSweepAdaptive and
// BaseSweepAdaptive: plan, then run the generic planned-sweep engine. The
// verification contract is the same as EnvSweepAdaptive's — every plateau is
// checked empirically, so an UNKNOWN-heavy plan costs measurements, never
// correctness.
func channelSweepAdaptive(ctx context.Context, r *Runner, b *bench.Benchmark, spec channelSpec, setup Setup, values []uint64, ck Checkpoint) ([]ChannelPoint, AdaptiveSweepStats, error) {
	plan, err := planChannelSweep(r, b, spec, setup, values)
	if err != nil {
		return nil, AdaptiveSweepStats{GridPoints: len(values)}, err
	}
	return channelSweepPlanned(ctx, r, b, spec, setup, values, plan, ck)
}

// channelSweepPlanned is the measurement half, split out so tests can force
// a deliberately wrong plan and assert the dense fallback restores
// correctness.
func channelSweepPlanned(ctx context.Context, r *Runner, b *bench.Benchmark, spec channelSpec, setup Setup, values []uint64, plan *analysis.EnvPlan, ck Checkpoint) ([]ChannelPoint, AdaptiveSweepStats, error) {
	return plannedSweep(ctx, r, b, spec.kind, values, plan, ck, sweepOps[ChannelPoint]{
		setupAt: func(i int) Setup { return spec.apply(setup, values[i]) },
		makePoint: func(i int, base, opt uint64) ChannelPoint {
			return ChannelPoint{
				Value:      values[i],
				CyclesBase: base,
				CyclesOpt:  opt,
				Speedup:    float64(base) / float64(opt),
			}
		},
		cycles: func(p ChannelPoint) (uint64, uint64) { return p.CyclesBase, p.CyclesOpt },
		revalue: func(p ChannelPoint, i int) ChannelPoint {
			p.Value = values[i]
			return p
		},
	})
}

// PadSweepAdaptive is PadSweepCheckpointed guided by the channel comparator.
func PadSweepAdaptive(ctx context.Context, r *Runner, b *bench.Benchmark, setup Setup, values []uint64, ck Checkpoint) ([]ChannelPoint, AdaptiveSweepStats, error) {
	return channelSweepAdaptive(ctx, r, b, padChannel, setup, values, ck)
}

// BaseSweepAdaptive is BaseSweepCheckpointed guided by the channel
// comparator.
func BaseSweepAdaptive(ctx context.Context, r *Runner, b *bench.Benchmark, setup Setup, values []uint64, ck Checkpoint) ([]ChannelPoint, AdaptiveSweepStats, error) {
	return channelSweepAdaptive(ctx, r, b, baseChannel, setup, values, ck)
}
