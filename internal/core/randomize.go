package core

import (
	"context"
	"fmt"
	"sort"

	"biaslab/internal/bench"
	"biaslab/internal/compiler"
	"biaslab/internal/stats"
)

// RandomSetups draws n random experimental setups: environment size uniform
// over the representable sizes up to 4 KiB and a uniformly random link
// order. This is the paper's first remedy — **experimental setup
// randomization** — which turns the unknowable bias of any single setup
// into ordinary sampling variance that a confidence interval can honestly
// summarize.
func RandomSetups(base Setup, n, numUnits int, seed uint64) []Setup {
	rng := stats.NewRNG(seed)
	setups := make([]Setup, n)
	for i := range setups {
		s := base
		// Representable env sizes are 8 and [17, ∞); draw until valid.
		for {
			sz := uint64(rng.Intn(4096) + 1)
			if sz == 8 || sz >= 17 {
				s.EnvBytes = sz
				break
			}
		}
		s.LinkOrder = RandomOrder(numUnits, rng)
		// Code placement: pad objects by a random multiple of 4 bytes up
		// to 256, perturbing function addresses beyond what permutation
		// alone reaches.
		s.TextPad = uint64(rng.Intn(64)) * 4
		setups[i] = s
	}
	return setups
}

// RobustEstimate is the randomized-setup estimate of a speedup: a mean over
// n random setups with t, bootstrap and hierarchical confidence intervals
// plus the median-based Speedup-Test verdict.
type RobustEstimate struct {
	Benchmark string
	Machine   string
	N         int
	Speedups  []float64
	Mean      float64
	TInterval stats.Interval
	Bootstrap stats.Interval
	// MedianCI is the distribution-free order-statistic interval for the
	// median — the robust alternative later methodology work recommends.
	MedianCI stats.Interval
	// HierCI is the Kalibera & Jones random-effects bootstrap interval over
	// setup×repetition. The simulator is deterministic, so each setup
	// contributes one repetition and the interval reduces to a setup-level
	// bootstrap — exactly the variance randomization turns bias into. This
	// is the interval behind the headline "faster by x% ± y%" report.
	HierCI stats.Interval
	// Test is the median-based Speedup-Test (Touati et al.): a sign test of
	// H0 "median speedup = 1", distribution-free where the t interval is not.
	Test stats.SpeedupTestResult
}

func (e RobustEstimate) String() string {
	return fmt.Sprintf("%-11s %-9s n=%d speedup %.4f  t95 %v  boot95 %v  med95 %v",
		e.Benchmark, e.Machine, e.N, e.Mean, e.TInterval, e.Bootstrap, e.MedianCI)
}

// EffectPct returns the effect size as a percentage with its 95% half-width:
// the hierarchical interval's midpoint and half-width, in "O3 is x% ± y%
// faster" units (positive = faster).
func (e RobustEstimate) EffectPct() (center, half float64) {
	center = ((e.HierCI.Lo+e.HierCI.Hi)/2 - 1) * 100
	half = e.HierCI.Width() / 2 * 100
	return center, half
}

// EffectString renders the headline effect-size report the paper asks
// evaluations to print instead of a bare point estimate: a direction only
// when the interval supports one, always with the uncertainty attached.
func (e RobustEstimate) EffectString() string {
	center, half := e.EffectPct()
	level := e.HierCI.Level * 100
	switch {
	case e.HierCI.Lo > 1:
		return fmt.Sprintf("effect: O3 faster by %.2f%% ± %.2f%% at %.0f%%", center, half, level)
	case e.HierCI.Hi < 1:
		return fmt.Sprintf("effect: O3 slower by %.2f%% ± %.2f%% at %.0f%%", -center, half, level)
	}
	return fmt.Sprintf("effect: %+.2f%% ± %.2f%% at %.0f%% — interval spans no effect", center, half, level)
}

// Conclusive reports whether the interval excludes 1.0 — i.e. whether the
// randomized experiment actually supports a direction for the effect.
func (e RobustEstimate) Conclusive() bool {
	return !e.TInterval.Contains(1.0)
}

// newRobustEstimate assembles the estimate from measured per-setup
// speedups. Both resamplers are seeded from the experiment's identity
// (bench, machine, sample count, seed) via stats.SeedFrom — the same
// identity fields the daemon's content key hashes — so every interval is a
// pure function of the spec: byte-identical across runs, between local and
// remote execution, and after a checkpoint resume.
func newRobustEstimate(benchName, machineName string, speedups []float64, seed uint64) *RobustEstimate {
	nStr := fmt.Sprintf("%d/%d", len(speedups), seed)
	groups := make([][]float64, len(speedups))
	for i := range speedups {
		groups[i] = speedups[i : i+1]
	}
	return &RobustEstimate{
		Benchmark: benchName,
		Machine:   machineName,
		N:         len(speedups),
		Speedups:  speedups,
		Mean:      stats.Mean(speedups),
		TInterval: stats.TInterval(speedups, 0.95),
		Bootstrap: stats.BootstrapMeanInterval(speedups, 0.95, 1000, stats.NewRNG(stats.SeedFrom("boot", benchName, machineName, nStr))),
		MedianCI:  stats.MedianInterval(speedups, 0.95),
		HierCI:    stats.HierarchicalCI(groups, 0.95, 1000, stats.NewRNG(stats.SeedFrom("hier", benchName, machineName, nStr))),
		Test:      stats.SpeedupTest(speedups, 0.95),
	}
}

// RandomPoint is the checkpoint value of one randomized-setup measurement:
// the speedup at that setup. A float64 survives the JSON round trip
// exactly (encoding/json emits the shortest representation that parses
// back to the same value), so replaying a recorded point is bit-identical
// to re-measuring it.
type RandomPoint struct {
	Speedup float64 `json:"speedup"`
}

// MeasureRandomPoint measures b's O3-over-O2 speedup at one randomized
// setup — the unit of work behind EstimateSpeedup, exported as the
// shard-execution primitive for distributed randomize jobs. Its checkpoint
// key is PointKey("rand", b.Name, s).
func MeasureRandomPoint(ctx context.Context, r *Runner, b *bench.Benchmark, s Setup) (RandomPoint, error) {
	sp, _, _, err := r.Speedup(ctx, b, s, compiler.O2, compiler.O3)
	if err != nil {
		return RandomPoint{}, err
	}
	return RandomPoint{Speedup: sp}, nil
}

// EstimateSpeedup runs benchmark b under n randomized setups and returns
// the robust estimate of the O3-over-O2 speedup.
func EstimateSpeedup(ctx context.Context, r *Runner, b *bench.Benchmark, base Setup, n int, seed uint64) (*RobustEstimate, error) {
	return EstimateSpeedupCheckpointed(ctx, r, b, base, n, seed, nil)
}

// EstimateSpeedupCheckpointed is EstimateSpeedup with journal-based
// checkpoint/resume: each setup's speedup is recorded under
// PointKey("rand", b.Name, setup) as it completes, and recorded points are
// replayed instead of re-measured, so an interrupted randomize run resumes
// where it stopped with bit-identical output. Two drawn setups that happen
// to coincide share a key; the second replays the first's value, which is
// exactly what re-measuring would produce.
func EstimateSpeedupCheckpointed(ctx context.Context, r *Runner, b *bench.Benchmark, base Setup, n int, seed uint64, ck Checkpoint) (*RobustEstimate, error) {
	setups := RandomSetups(base, n, len(r.UnitNames(b)), seed)
	speedups := make([]float64, n)
	pending := make([]int, 0, n)
	for i, s := range setups {
		if ck != nil {
			var p RandomPoint
			ok, err := ck.Lookup(sweepKey("rand", b.Name, s), &p)
			if err != nil {
				return nil, err
			}
			if ok {
				speedups[i] = p.Speedup
				continue
			}
		}
		pending = append(pending, i)
	}
	err := ForEach(ctx, len(pending), 0, func(ctx context.Context, pi int) error {
		i := pending[pi]
		p, err := MeasureRandomPoint(ctx, r, b, setups[i])
		if err != nil {
			return err
		}
		if ck != nil {
			if err := ck.Record(sweepKey("rand", b.Name, setups[i]), p); err != nil {
				return err
			}
		}
		speedups[i] = p.Speedup
		return nil
	})
	if err != nil {
		return nil, err
	}
	return newRobustEstimate(b.Name, base.Machine, speedups, seed), nil
}

// SingleSetupVerdicts contrasts the randomized estimate with what a
// researcher using one fixed setup would have concluded: for each of the
// given single setups, the point estimate and whether it falls inside the
// randomized confidence interval.
type SingleSetupVerdict struct {
	Label      string
	Speedup    float64
	InInterval bool
}

// CompareSingleSetups measures b under each labelled single setup and
// checks the result against the robust interval.
func CompareSingleSetups(ctx context.Context, r *Runner, b *bench.Benchmark, est *RobustEstimate, labelled map[string]Setup) ([]SingleSetupVerdict, error) {
	labels := make([]string, 0, len(labelled))
	for label := range labelled { //determlint:allow keys are sorted below
		labels = append(labels, label)
	}
	sort.Strings(labels)
	verdicts := []SingleSetupVerdict{}
	for _, label := range labels {
		s := labelled[label]
		sp, _, _, err := r.Speedup(ctx, b, s, compiler.O2, compiler.O3)
		if err != nil {
			return nil, err
		}
		verdicts = append(verdicts, SingleSetupVerdict{
			Label:      label,
			Speedup:    sp,
			InInterval: est.TInterval.Contains(sp),
		})
	}
	return verdicts, nil
}

// EstimateSpeedupAdaptive answers the practical question the paper's
// randomization remedy raises — *how many setups are enough?* — by sampling
// adaptively: it draws randomized setups in batches until the 95%
// confidence interval's half-width falls below tol (in absolute speedup
// units, e.g. 0.005 = half a percentage point) or maxN setups have been
// measured. minN guards against lucky early stopping.
func EstimateSpeedupAdaptive(ctx context.Context, r *Runner, b *bench.Benchmark, base Setup, tol float64, minN, maxN int, seed uint64) (*RobustEstimate, error) {
	if minN < 3 {
		minN = 3
	}
	if maxN < minN {
		maxN = minN
	}
	setups := RandomSetups(base, maxN, len(r.UnitNames(b)), seed)
	speedups := make([]float64, 0, maxN)

	const batch = 4
	for len(speedups) < maxN {
		take := batch
		if len(speedups)+take > maxN {
			take = maxN - len(speedups)
		}
		block := make([]float64, take)
		start := len(speedups)
		err := ForEach(ctx, take, 0, func(ctx context.Context, i int) error {
			sp, _, _, err := r.Speedup(ctx, b, setups[start+i], compiler.O2, compiler.O3)
			if err != nil {
				return err
			}
			block[i] = sp
			return nil
		})
		if err != nil {
			return nil, err
		}
		speedups = append(speedups, block...)
		if len(speedups) >= minN {
			iv := stats.TInterval(speedups, 0.95)
			if iv.Width()/2 <= tol {
				break
			}
		}
	}
	return newRobustEstimate(b.Name, base.Machine, speedups, seed), nil
}
