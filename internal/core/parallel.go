package core

import (
	"context"
	"errors"
	"runtime"
	"sync"
)

// ForEach runs fn(ctx, 0..n-1) across min(workers, n) goroutines.
// workers ≤ 0 selects GOMAXPROCS. Results must be written by index into
// caller-owned slices, which keeps output deterministic no matter how the
// work interleaves.
//
// Failure semantics: on the first error the context handed to fn is
// cancelled, no further indices are started, and in-flight siblings are
// expected to notice the cancellation and return promptly. After every
// worker has drained, ForEach returns the error of the *lowest* failing
// index (preferring real failures over the context-cancellation errors
// that the cancel itself provokes in siblings), so the reported error does
// not depend on goroutine scheduling. Cancellation of the caller's ctx
// stops scheduling and is returned as ctx's error.
func ForEach(ctx context.Context, n, workers int, fn func(ctx context.Context, i int) error) error {
	if n <= 0 {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(ctx, i); err != nil {
				return err
			}
		}
		return nil
	}

	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		next int
		// Lowest-index real error and lowest-index cancellation error are
		// tracked separately: once one sibling fails, the cancel makes other
		// indices fail with context.Canceled, and those must not mask the
		// error that caused the cancellation.
		errIdx, cancelIdx   = -1, -1
		firstErr, cancelErr error
	)
	take := func() int {
		mu.Lock()
		defer mu.Unlock()
		if cctx.Err() != nil || next >= n {
			return -1
		}
		i := next
		next++
		return i
	}
	fail := func(i int, err error) {
		mu.Lock()
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			if cancelIdx == -1 || i < cancelIdx {
				cancelIdx, cancelErr = i, err
			}
		} else if errIdx == -1 || i < errIdx {
			errIdx, firstErr = i, err
		}
		mu.Unlock()
		cancel()
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := take()
				if i < 0 {
					return
				}
				if err := fn(cctx, i); err != nil {
					fail(i, err)
				}
			}
		}()
	}
	wg.Wait()
	switch {
	case firstErr != nil:
		return firstErr
	case ctx.Err() != nil:
		return ctx.Err()
	case cancelErr != nil:
		// A worker reported a bare cancellation without any underlying
		// failure or outer cancel — surface it rather than dropping it.
		return cancelErr
	}
	return nil
}
