package core

import (
	"runtime"
	"sync"
)

// ForEach runs fn(0..n-1) across min(workers, n) goroutines and returns the
// first error (remaining work still runs to completion; measurements are
// independent). workers ≤ 0 selects GOMAXPROCS. Results must be written by
// index into caller-owned slices, which keeps output deterministic no
// matter how the work interleaves.
func ForEach(n, workers int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		wg       sync.WaitGroup
		next     int
		mu       sync.Mutex
		firstErr error
	)
	take := func() int {
		mu.Lock()
		defer mu.Unlock()
		if next >= n {
			return -1
		}
		i := next
		next++
		return i
	}
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := take()
				if i < 0 {
					return
				}
				if err := fn(i); err != nil {
					fail(err)
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}
