package core

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"biaslab/internal/bench"
	"biaslab/internal/compiler"
)

func TestForEachCoversAllIndices(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 16} {
		var hits [100]int32
		err := ForEach(context.Background(), 100, workers, func(_ context.Context, i int) error {
			atomic.AddInt32(&hits[i], 1)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d hit %d times", workers, i, h)
			}
		}
	}
}

func TestForEachPropagatesError(t *testing.T) {
	boom := errors.New("boom")
	err := ForEach(context.Background(), 50, 4, func(_ context.Context, i int) error {
		if i == 25 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Errorf("error not propagated: %v", err)
	}
	if err := ForEach(context.Background(), 0, 4, func(context.Context, int) error { return boom }); err != nil {
		t.Error("empty range should not error")
	}
}

// TestForEachOuterCancel: cancelling the caller's context stops scheduling
// and is reported as the context's own error.
func TestForEachOuterCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int32
	err := ForEach(ctx, 100, 4, func(context.Context, int) error {
		ran.Add(1)
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("pre-cancelled ForEach = %v, want context.Canceled", err)
	}
	if ran.Load() != 0 {
		t.Errorf("%d indices ran under a cancelled context", ran.Load())
	}

	// Cancel mid-flight: workers blocked on ctx.Done must drain promptly and
	// the cancellation must be reported.
	ctx, cancel = context.WithCancel(context.Background())
	err = ForEach(ctx, 50, 4, func(fctx context.Context, i int) error {
		if i == 3 {
			cancel()
		}
		<-fctx.Done()
		return fctx.Err()
	})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("mid-flight cancel = %v, want context.Canceled", err)
	}
}

// TestForEachLowestIndexErrorWins pins the determinism contract: when
// several indices fail, the reported error belongs to the lowest failing
// index regardless of which goroutine failed first.
func TestForEachLowestIndexErrorWins(t *testing.T) {
	const n = 8
	for round := 0; round < 10; round++ {
		err := ForEach(context.Background(), n, n, func(_ context.Context, i int) error {
			// Failures arrive in reverse index order: the highest index fails
			// first, index 0 last. The reported error must still be index 0's.
			time.Sleep(time.Duration(n-i) * time.Millisecond)
			return fmt.Errorf("fail-%d", i)
		})
		if err == nil || err.Error() != "fail-0" {
			t.Fatalf("round %d: reported error %v, want fail-0 (lowest index)", round, err)
		}
	}
}

// TestForEachErrorCancelsSiblings: the first real failure must cancel
// in-flight siblings, and their resulting cancellation errors must not mask
// the root cause.
func TestForEachErrorCancelsSiblings(t *testing.T) {
	boom := errors.New("boom")
	var cancelled atomic.Int32
	err := ForEach(context.Background(), 8, 8, func(ctx context.Context, i int) error {
		if i == 5 {
			return boom
		}
		// Siblings park until the failure's cancel releases them.
		<-ctx.Done()
		cancelled.Add(1)
		return ctx.Err()
	})
	if !errors.Is(err, boom) {
		t.Errorf("root cause masked: got %v, want %v", err, boom)
	}
	if cancelled.Load() == 0 {
		t.Error("no sibling observed the cancellation")
	}
}

// TestParallelMeasurementsDeterministic is the contract that makes the
// parallel harness trustworthy: sweeping in parallel must produce exactly
// the numbers the sequential sweep produces.
func TestParallelMeasurementsDeterministic(t *testing.T) {
	b, _ := bench.ByName("hmmer")
	sizes := []uint64{8, 512, 1024, 2048, 4096}

	run := func() []EnvPoint {
		r := NewRunner(bench.SizeTest)
		pts, err := EnvSweep(context.Background(), r, b, DefaultSetup("p4"), sizes)
		if err != nil {
			t.Fatal(err)
		}
		return pts
	}
	a, bpts := run(), run()
	for i := range a {
		if a[i] != bpts[i] {
			t.Fatalf("parallel sweep nondeterministic at %d: %+v vs %+v", i, a[i], bpts[i])
		}
	}
}

// TestConcurrentMeasureSharedRunner hammers one Runner from many
// goroutines across machines and configs.
func TestConcurrentMeasureSharedRunner(t *testing.T) {
	r := NewRunner(bench.SizeTest)
	b, _ := bench.ByName("libquantum")
	machines := []string{"p4", "core2", "m5"}
	cycles := make([]uint64, 24)
	err := ForEach(context.Background(), len(cycles), 8, func(_ context.Context, i int) error {
		s := DefaultSetup(machines[i%3])
		s.EnvBytes = uint64(17 + 64*i)
		if i%2 == 1 {
			s.Compiler.Level = compiler.O3
		}
		m, err := r.Measure(context.Background(), b, s)
		if err != nil {
			return err
		}
		cycles[i] = m.Cycles
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Re-measuring any point sequentially must reproduce it.
	s := DefaultSetup(machines[5%3])
	s.EnvBytes = uint64(17 + 64*5)
	s.Compiler.Level = compiler.O3
	m, err := r.Measure(context.Background(), b, s)
	if err != nil {
		t.Fatal(err)
	}
	if m.Cycles != cycles[5] {
		t.Errorf("parallel measurement %d differs from sequential %d", cycles[5], m.Cycles)
	}
}
