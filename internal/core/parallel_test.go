package core

import (
	"errors"
	"sync/atomic"
	"testing"

	"biaslab/internal/bench"
	"biaslab/internal/compiler"
)

func TestForEachCoversAllIndices(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 16} {
		var hits [100]int32
		err := ForEach(100, workers, func(i int) error {
			atomic.AddInt32(&hits[i], 1)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d hit %d times", workers, i, h)
			}
		}
	}
}

func TestForEachPropagatesError(t *testing.T) {
	boom := errors.New("boom")
	err := ForEach(50, 4, func(i int) error {
		if i == 25 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Errorf("error not propagated: %v", err)
	}
	if err := ForEach(0, 4, func(int) error { return boom }); err != nil {
		t.Error("empty range should not error")
	}
}

// TestParallelMeasurementsDeterministic is the contract that makes the
// parallel harness trustworthy: sweeping in parallel must produce exactly
// the numbers the sequential sweep produces.
func TestParallelMeasurementsDeterministic(t *testing.T) {
	b, _ := bench.ByName("hmmer")
	sizes := []uint64{8, 512, 1024, 2048, 4096}

	run := func() []EnvPoint {
		r := NewRunner(bench.SizeTest)
		pts, err := EnvSweep(r, b, DefaultSetup("p4"), sizes)
		if err != nil {
			t.Fatal(err)
		}
		return pts
	}
	a, bpts := run(), run()
	for i := range a {
		if a[i] != bpts[i] {
			t.Fatalf("parallel sweep nondeterministic at %d: %+v vs %+v", i, a[i], bpts[i])
		}
	}
}

// TestConcurrentMeasureSharedRunner hammers one Runner from many
// goroutines across machines and configs.
func TestConcurrentMeasureSharedRunner(t *testing.T) {
	r := NewRunner(bench.SizeTest)
	b, _ := bench.ByName("libquantum")
	machines := []string{"p4", "core2", "m5"}
	cycles := make([]uint64, 24)
	err := ForEach(len(cycles), 8, func(i int) error {
		s := DefaultSetup(machines[i%3])
		s.EnvBytes = uint64(17 + 64*i)
		if i%2 == 1 {
			s.Compiler.Level = compiler.O3
		}
		m, err := r.Measure(b, s)
		if err != nil {
			return err
		}
		cycles[i] = m.Cycles
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Re-measuring any point sequentially must reproduce it.
	s := DefaultSetup(machines[5%3])
	s.EnvBytes = uint64(17 + 64*5)
	s.Compiler.Level = compiler.O3
	m, err := r.Measure(b, s)
	if err != nil {
		t.Fatal(err)
	}
	if m.Cycles != cycles[5] {
		t.Errorf("parallel measurement %d differs from sequential %d", cycles[5], m.Cycles)
	}
}
