package core

import (
	"context"
	"fmt"
	"runtime/debug"
	"strconv"
	"sync"

	"biaslab/internal/bench"
	"biaslab/internal/compiler"
	"biaslab/internal/faultinject"
	"biaslab/internal/ir"
	"biaslab/internal/linker"
	"biaslab/internal/loader"
	"biaslab/internal/machine"
	"biaslab/internal/obj"
	"biaslab/internal/tenancy"
)

// Measurement is the outcome of running one benchmark under one setup.
type Measurement struct {
	Setup    Setup
	Cycles   uint64
	Counters machine.Counters
	Checksum uint64
}

// Runner executes benchmarks under setups. It caches compiled objects per
// (benchmark, compiler config) — compilation does not depend on environment
// or link order — and linked executables per (benchmark, config, link
// order, padding) — linking does not depend on the environment either, so
// an env sweep links once — and reuses pooled machine instances per model. A Runner also enforces the metamorphic invariant at
// the heart of the paper: across every setup, a benchmark's *output*
// (checksum) must be bit-identical even though its *cycles* differ; any
// violation is a toolchain bug and is reported as an error.
type Runner struct {
	Size bench.Size
	// MaxInstructions bounds each run (0 = default).
	MaxInstructions uint64
	// OnMeasure, when non-nil, observes every successful measurement just
	// before it is returned — the accounting hook behind biaslabd's
	// instructions-retired and measurement counters. It is called from
	// whichever goroutine ran the measurement, so it must be safe for
	// concurrent use, must not block, and must not mutate its argument. Set
	// it before the Runner's first use.
	OnMeasure func(*Measurement)

	mu        sync.Mutex
	objCache  map[objKey][]*obj.Object
	progCache map[objKey]*ir.Program     // IR kept alongside objects for the bias oracle
	compiling map[objKey]*sync.WaitGroup // in-flight compiles (singleflight)
	linkCache map[linkKey]*linker.Executable
	linking   map[linkKey]*sync.WaitGroup   // in-flight links (singleflight)
	machines  map[string][]*machine.Machine // idle pool per model
	custom    map[string]machine.Config     // RegisterMachine configs
	oracles   map[string]uint64             // benchmark → expected checksum
}

type objKey struct {
	bench string
	cfg   compiler.Config
}

// linkKey identifies one linked executable: linking depends only on the
// compiled objects (benchmark × compiler config), the unit order, and the
// inter-object padding — not on the environment, which is why an env sweep
// can reuse one executable across all its points.
type linkKey struct {
	bench string
	cfg   compiler.Config
	order string // LinkOrder encoded as text ([]int is not comparable)
	pad   uint64
	base  uint64
}

// orderKey encodes a link order for use in a map key.
func orderKey(order []int) string {
	if order == nil {
		return ""
	}
	b := make([]byte, 0, 3*len(order))
	for _, v := range order {
		b = strconv.AppendInt(b, int64(v), 10)
		b = append(b, ',')
	}
	return string(b)
}

// linkCacheCap bounds the executable cache. A full link-order study is
// hundreds of permutations per (benchmark, config); eviction is arbitrary
// because the cache is pure memoization — a re-link is deterministic.
const linkCacheCap = 512

// NewRunner builds a runner at the given workload size. A Runner is safe
// for concurrent use: machines are pooled per model, compiled objects are
// cached under a lock, and measurements are deterministic regardless of
// scheduling (every run fully resets its machine).
func NewRunner(size bench.Size) *Runner {
	return &Runner{
		Size:            size,
		MaxInstructions: 1 << 31,
		objCache:        map[objKey][]*obj.Object{},
		progCache:       map[objKey]*ir.Program{},
		compiling:       map[objKey]*sync.WaitGroup{},
		linkCache:       map[linkKey]*linker.Executable{},
		linking:         map[linkKey]*sync.WaitGroup{},
		machines:        map[string][]*machine.Machine{},
		oracles:         map[string]uint64{},
	}
}

// objects compiles (or fetches cached) objects for b under cfg, compiling
// each (benchmark, config) at most once even under concurrency.
func (r *Runner) objects(b *bench.Benchmark, cfg compiler.Config) ([]*obj.Object, error) {
	key := objKey{bench: b.Name, cfg: cfg}
	for {
		r.mu.Lock()
		if objs, ok := r.objCache[key]; ok {
			r.mu.Unlock()
			return objs, nil
		}
		if wg, inflight := r.compiling[key]; inflight {
			r.mu.Unlock()
			wg.Wait()
			continue // cache now populated (or compile failed; retry compiles)
		}
		wg := &sync.WaitGroup{}
		wg.Add(1)
		r.compiling[key] = wg
		r.mu.Unlock()

		objs, prog, err := compiler.Compile(b.Sources(r.Size), cfg)
		r.mu.Lock()
		delete(r.compiling, key)
		if err == nil {
			r.objCache[key] = objs
			r.progCache[key] = prog
		}
		r.mu.Unlock()
		wg.Done()
		if err != nil {
			return nil, fmt.Errorf("core: compiling %s with %s: %w", b.Name, cfg, err)
		}
		return objs, nil
	}
}

// program returns the cached IR program for (b, cfg), compiling if needed.
// The oracle uses it to size address-taken frame slots exactly; predictions
// from a nil program would merely be flagged approximate.
func (r *Runner) program(b *bench.Benchmark, cfg compiler.Config) (*ir.Program, error) {
	if _, err := r.objects(b, cfg); err != nil {
		return nil, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.progCache[objKey{bench: b.Name, cfg: cfg}], nil
}

// linked returns the executable for b's objects under the given order and
// padding, linking each distinct (benchmark, config, order, pad) at most
// once even under concurrency — the same singleflight discipline as
// objects(). Executables are immutable after linking, so a cached one is
// safely shared by concurrent loads.
func (r *Runner) linked(b *bench.Benchmark, setup Setup, ordered []*obj.Object) (*linker.Executable, error) {
	key := linkKey{
		bench: b.Name,
		cfg:   setup.Compiler,
		order: orderKey(setup.LinkOrder),
		pad:   setup.TextPad,
		base:  setup.TextBase,
	}
	for {
		r.mu.Lock()
		if exe, ok := r.linkCache[key]; ok {
			r.mu.Unlock()
			return exe, nil
		}
		if wg, inflight := r.linking[key]; inflight {
			r.mu.Unlock()
			wg.Wait()
			continue // cache now populated (or link failed; retry links)
		}
		wg := &sync.WaitGroup{}
		wg.Add(1)
		r.linking[key] = wg
		r.mu.Unlock()

		exe, err := linker.Link(ordered, linker.Options{PadObjects: setup.TextPad, TextBase: setup.TextBase})
		r.mu.Lock()
		delete(r.linking, key)
		if err == nil {
			if len(r.linkCache) >= linkCacheCap {
				//determlint:allow cache eviction choice never reaches a measurement
				for k := range r.linkCache {
					delete(r.linkCache, k)
					break
				}
			}
			r.linkCache[key] = exe
		}
		r.mu.Unlock()
		wg.Done()
		if err != nil {
			return nil, fmt.Errorf("core: linking %s: %w", b.Name, err)
		}
		return exe, nil
	}
}

// acquireMachine takes an idle machine for the named model from the pool,
// constructing one if none is free.
func (r *Runner) acquireMachine(name string) (*machine.Machine, error) {
	r.mu.Lock()
	pool := r.machines[name]
	if n := len(pool); n > 0 {
		m := pool[n-1]
		r.machines[name] = pool[:n-1]
		r.mu.Unlock()
		return m, nil
	}
	cfg, registered := r.custom[name]
	r.mu.Unlock()
	if !registered {
		var ok bool
		cfg, ok = machine.ConfigByName(name)
		if !ok {
			return nil, fmt.Errorf("core: unknown machine %q", name)
		}
	}
	return machine.New(cfg), nil
}

// releaseMachine returns a machine to the pool.
func (r *Runner) releaseMachine(name string, m *machine.Machine) {
	r.mu.Lock()
	r.machines[name] = append(r.machines[name], m)
	r.mu.Unlock()
}

// UnitNames returns the names of b's translation units in default order.
func (r *Runner) UnitNames(b *bench.Benchmark) []string {
	srcs := b.Sources(r.Size)
	names := make([]string, len(srcs))
	for i, s := range srcs {
		names[i] = s.Name
	}
	return names
}

// Executable compiles and links b exactly as Measure would under setup —
// same caches, same ordering, same padding — without loading or running
// anything. It is the entry point for static analyses (the bias oracle)
// that must reason about the very image the measurements execute.
func (r *Runner) Executable(b *bench.Benchmark, setup Setup) (*linker.Executable, error) {
	objs, err := r.objects(b, setup.Compiler)
	if err != nil {
		return nil, err
	}
	ordered := objs
	if setup.LinkOrder != nil {
		if !ValidOrder(setup.LinkOrder, len(objs)) {
			return nil, fmt.Errorf("core: invalid link order %v for %d units", setup.LinkOrder, len(objs))
		}
		ordered = make([]*obj.Object, len(objs))
		for i, src := range setup.LinkOrder {
			ordered[i] = objs[src]
		}
	}
	return r.linked(b, setup, ordered)
}

// Measure runs benchmark b under setup and returns the measurement. The
// context cancels the measurement cooperatively: compilation and linking
// finish their current unit, and the simulated machine abandons the run at
// the next cancellation poll.
func (r *Runner) Measure(ctx context.Context, b *bench.Benchmark, setup Setup) (*Measurement, error) {
	meas, err := r.measure(ctx, b, setup, false)
	if err != nil {
		return nil, err
	}
	return meas.m, nil
}

// checkOracle enforces output stability across setups.
func (r *Runner) checkOracle(name string, checksum uint64, setup Setup) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if want, ok := r.oracles[name]; ok {
		if checksum != want {
			return fmt.Errorf("core: %s produced checksum %d under %s, expected %d — experimental setup changed program OUTPUT, which must never happen", name, checksum, setup, want)
		}
		return nil
	}
	r.oracles[name] = checksum
	return nil
}

// Speedup measures b at two optimization levels under otherwise identical
// setup and returns cycles(base)/cycles(opt) — the quantity the paper's
// figures plot (>1 means opt is faster).
func (r *Runner) Speedup(ctx context.Context, b *bench.Benchmark, setup Setup, base, opt compiler.Level) (float64, *Measurement, *Measurement, error) {
	mb, err := r.Measure(ctx, b, setup.WithLevel(base))
	if err != nil {
		return 0, nil, nil, err
	}
	mo, err := r.Measure(ctx, b, setup.WithLevel(opt))
	if err != nil {
		return 0, nil, nil, err
	}
	return float64(mb.Cycles) / float64(mo.Cycles), mb, mo, nil
}

// MeasureProfiled is Measure plus per-function cycle attribution. It is
// the instrument behind "where did the extra cycles go?" questions in
// causal analysis.
func (r *Runner) MeasureProfiled(ctx context.Context, b *bench.Benchmark, setup Setup) (*Measurement, machine.Profile, error) {
	meas, err := r.measure(ctx, b, setup, true)
	if err != nil {
		return nil, nil, err
	}
	return meas.m, meas.profile, nil
}

// measured bundles a measurement with its optional profile.
type measured struct {
	m       *Measurement
	profile machine.Profile
}

// runStage executes one measurement stage under the runner's fault
// boundary: a panic inside fn (bad geometry, malformed image, injected
// fault) is recovered into a *PanicError instead of tearing down the whole
// sweep, a failure that marks itself transient (see IsTransient) is
// retried exactly once, and any final error is wrapped in a
// *MeasurementError carrying the stage and the complete setup. Pooled
// resources are deliberately NOT recycled on panic — a machine or image in
// an unknown state is dropped, never handed to the next measurement.
func runStage(stage Stage, benchName string, setup Setup, fn func() error) error {
	attempt := func() (err error) {
		defer func() {
			if p := recover(); p != nil {
				err = &PanicError{Value: p, Stack: debug.Stack()}
			}
		}()
		return fn()
	}
	err := attempt()
	attempts := 1
	if err != nil && IsTransient(err) {
		err = attempt()
		attempts = 2
	}
	if err == nil {
		return nil
	}
	return &MeasurementError{Stage: stage, Benchmark: benchName, Setup: setup, Cause: err, Attempts: attempts}
}

// setupID is the fault-injection key of one (benchmark, setup) — rendered
// once per measurement instead of once per stage, since Setup.String is a
// handful of allocations and the hot sweep path runs four stages per point.
func setupID(b *bench.Benchmark, setup Setup) string {
	return b.Name + "/" + setup.String()
}

// stagedExecutable runs the compile and link stages for (b, setup) behind
// the runStage fault boundary — the shared front half of measure and
// MeasureBatch. sid must be setupID(b, setup).
func (r *Runner) stagedExecutable(b *bench.Benchmark, setup Setup, sid string) (*linker.Executable, error) {
	var objs []*obj.Object
	if err := runStage(StageCompile, b.Name, setup, func() error {
		if err := faultinject.Check("compile", b.Name+"/"+setup.Compiler.String()); err != nil {
			return err
		}
		var err error
		objs, err = r.objects(b, setup.Compiler)
		return err
	}); err != nil {
		return nil, err
	}

	var exe *linker.Executable
	if err := runStage(StageLink, b.Name, setup, func() error {
		if err := faultinject.Check("link", sid); err != nil {
			return err
		}
		ordered := objs
		if setup.LinkOrder != nil {
			if !ValidOrder(setup.LinkOrder, len(objs)) {
				return fmt.Errorf("core: invalid link order %v for %d units", setup.LinkOrder, len(objs))
			}
			ordered = make([]*obj.Object, len(objs))
			for i, src := range setup.LinkOrder {
				ordered[i] = objs[src]
			}
		}
		var err error
		exe, err = r.linked(b, setup, ordered)
		return err
	}); err != nil {
		return nil, err
	}
	return exe, nil
}

// stagedLoad runs the load stage behind the runStage fault boundary. sid
// must be setupID(b, setup).
func (r *Runner) stagedLoad(b *bench.Benchmark, setup Setup, sid string, exe *linker.Executable) (*loader.Image, error) {
	var img *loader.Image
	if err := runStage(StageLoad, b.Name, setup, func() error {
		if err := faultinject.Check("load", sid); err != nil {
			return err
		}
		envBytes := setup.EnvBytes
		if envBytes == 0 {
			envBytes = DefaultEnvBytes
		}
		var err error
		img, err = loader.Load(exe, loader.Options{
			Env:        loader.SyntheticEnv(envBytes),
			Args:       []string{b.Name},
			StackShift: setup.StackShift,
		})
		if err != nil {
			return fmt.Errorf("core: loading %s: %w", b.Name, err)
		}
		return nil
	}); err != nil {
		return nil, err
	}
	return img, nil
}

// measure contains the shared body of Measure and MeasureProfiled: the
// four-stage pipeline (compile, link, load, measure), each stage behind
// the runStage fault boundary and a fault-injection hook.
func (r *Runner) measure(ctx context.Context, b *bench.Benchmark, setup Setup, profiled bool) (*measured, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	sid := setupID(b, setup)
	exe, err := r.stagedExecutable(b, setup, sid)
	if err != nil {
		return nil, err
	}

	if err := ctx.Err(); err != nil {
		return nil, err
	}

	img, err := r.stagedLoad(b, setup, sid, exe)
	if err != nil {
		return nil, err
	}

	var res *machine.Result
	if !setup.CoRunner.IsZero() {
		if profiled {
			return nil, fmt.Errorf("core: profiling is not supported under a co-runner")
		}
		res, err = r.measureCoRun(ctx, b, setup, sid, img)
		if err != nil {
			// The image is dropped, not released (see below).
			return nil, err
		}
	} else if err := runStage(StageMeasure, b.Name, setup, func() error {
		if err := faultinject.Check("measure", sid); err != nil {
			return err
		}
		m, err := r.acquireMachine(setup.Machine)
		if err != nil {
			return err
		}
		m.EnableProfiling(profiled)
		res, err = m.RunCtx(ctx, img, r.MaxInstructions)
		m.EnableProfiling(false)
		r.releaseMachine(setup.Machine, m)
		if err != nil {
			return fmt.Errorf("core: running %s: %w", b.Name, err)
		}
		return r.checkOracle(b.Name, res.Checksum, setup)
	}); err != nil {
		// The image is dropped, not released: a failed or abandoned run may
		// leave it in an unknown state, and the pool must only ever see
		// pristine buffers.
		return nil, err
	}
	// The run is over and nothing retains the image's memory (results copy
	// what they need), so its buffer can be recycled for the next load.
	img.Release()

	out := &measured{
		m: &Measurement{
			Setup:    setup,
			Cycles:   res.Counters.Cycles,
			Counters: res.Counters,
			Checksum: res.Checksum,
		},
		profile: res.Profile,
	}
	if r.OnMeasure != nil {
		r.OnMeasure(out.m)
	}
	return out, nil
}

// CoRunnerSetup derives the co-runner's own complete Setup from the
// subject's: same machine model and compiler personality, the co-runner's
// own optimization level (default O2), a default environment, and the
// displaced text base of the tenancy address-space plan. Everything else
// stays at channel-off defaults — the co-runner is a fixed background
// load, not a second experiment.
func CoRunnerSetup(setup Setup) (Setup, error) {
	level := compiler.O2
	if setup.CoRunner.Level != "" {
		l, err := compiler.ParseLevel(setup.CoRunner.Level)
		if err != nil {
			return Setup{}, fmt.Errorf("core: co-runner level: %w", err)
		}
		level = l
	}
	return Setup{
		Machine:  setup.Machine,
		Compiler: compiler.Config{Level: level, Personality: setup.Compiler.Personality},
		EnvBytes: DefaultEnvBytes,
		TextBase: linker.DefaultTextBase + tenancy.CoRunnerOffset,
	}, nil
}

// measureCoRun is the StageMeasure path for setups with a co-runner: it
// builds the co-runner's image through the same staged, fault-bounded
// compile/link/load pipeline (and the same caches) as any subject, then
// steps both tenants through one shared hierarchy. The returned result is
// the subject's; the co-runner's result is consumed here for its oracle
// check — interference must change either tenant's timing only, never
// its output.
func (r *Runner) measureCoRun(ctx context.Context, b *bench.Benchmark, setup Setup, sid string, subject *loader.Image) (*machine.Result, error) {
	coBench, ok := bench.ByName(setup.CoRunner.Bench)
	if !ok {
		return nil, fmt.Errorf("core: unknown co-runner benchmark %q", setup.CoRunner.Bench)
	}
	coSetup, err := CoRunnerSetup(setup)
	if err != nil {
		return nil, err
	}
	coSid := setupID(coBench, coSetup)
	coExe, err := r.stagedExecutable(coBench, coSetup, coSid)
	if err != nil {
		return nil, err
	}
	var coImg *loader.Image
	if err := runStage(StageLoad, coBench.Name, coSetup, func() error {
		if err := faultinject.Check("load", coSid); err != nil {
			return err
		}
		var err error
		coImg, err = loader.Load(coExe, tenancy.CoRunnerLoadOptions(
			loader.SyntheticEnv(coSetup.EnvBytes), []string{coBench.Name}))
		if err != nil {
			return fmt.Errorf("core: loading co-runner %s: %w", coBench.Name, err)
		}
		return nil
	}); err != nil {
		return nil, err
	}

	var res *machine.Result
	if err := runStage(StageMeasure, b.Name, setup, func() error {
		if err := faultinject.Check("measure", sid); err != nil {
			return err
		}
		cfg, err := r.machineConfig(setup.Machine)
		if err != nil {
			return err
		}
		subjRes, coRes, err := tenancy.CoRun(ctx, cfg, subject, coImg, setup.CoRunner.Quantum, r.MaxInstructions)
		if err != nil {
			return fmt.Errorf("core: co-running %s with %s: %w", b.Name, coBench.Name, err)
		}
		if err := r.checkOracle(b.Name, subjRes.Checksum, setup); err != nil {
			return err
		}
		if err := r.checkOracle(coBench.Name, coRes.Checksum, coSetup); err != nil {
			return err
		}
		res = subjRes
		return nil
	}); err != nil {
		// Both images are dropped, not released, on failure.
		return nil, err
	}
	coImg.Release()
	return res, nil
}

// RegisterMachine makes a custom machine configuration available under the
// given name — the hook for mechanism-ablation studies (e.g. "a Pentium 4
// without 4 KiB aliasing") that pin down which microarchitectural features
// carry each bias channel. The configuration is validated here, at the
// boundary, so a malformed geometry is a returned error instead of a panic
// in the middle of a sweep when the first machine is constructed.
// Re-registering a name purges that name's idle-machine pool: pooled
// machines were built from the previous config, and handing one out for a
// measurement under the new config would silently measure the wrong model.
func (r *Runner) RegisterMachine(name string, cfg machine.Config) error {
	if err := cfg.Validate(); err != nil {
		return fmt.Errorf("core: registering machine %q: %w", name, err)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.custom == nil {
		r.custom = map[string]machine.Config{}
	}
	r.custom[name] = cfg
	delete(r.machines, name)
	return nil
}
