package core

import (
	"context"
	"fmt"
	"sort"

	"biaslab/internal/bench"
	"biaslab/internal/compiler"
	"biaslab/internal/stats"
)

// The multi-tenant interference channel. Where the scalar channels sweep a
// number (env bytes, pad bytes, base address), this one sweeps an
// *identity*: which program shares the cache/TLB/predictor hierarchy with
// the subject while it is measured. "idle" — no co-runner, every
// pre-existing setup — is always the first point, so the sweep reads as
// "here is the conclusion on an idle machine, and here is what each
// tenant does to it".

// TenantIdle is the sweep label of the no-co-runner point.
const TenantIdle = "idle"

// TenantPoint is one point of a co-runner sweep.
type TenantPoint struct {
	// CoRunner is the co-running benchmark's name, or TenantIdle.
	CoRunner   string
	CyclesBase uint64
	CyclesOpt  uint64
	Speedup    float64
}

// DefaultCoRunners returns the canonical co-runner panel: the idle machine
// first, then a fixed spread of tenants from memory-thrashing (milc, lbm,
// mcf) to compute-bound (sjeng), so a sweep brackets the interference a
// serving machine can add.
func DefaultCoRunners() []string {
	return []string{TenantIdle, "hmmer", "lbm", "libquantum", "mcf", "milc", "sjeng"}
}

// withCoRunner returns setup with the channel pointed at the named tenant
// (level and quantum kept from setup), or fully off for TenantIdle.
func withCoRunner(setup Setup, co string) Setup {
	if co == TenantIdle || co == "" {
		setup.CoRunner = CoRunner{}
		return setup
	}
	setup.CoRunner.Bench = co
	return setup
}

// MeasureTenantPoint measures one co-runner sweep point: b's O3-over-O2
// speedup with the named benchmark (or TenantIdle) sharing the machine.
// The co-runner is part of the setup, not the comparison: both the O2 and
// the O3 binary of the subject run against the identical tenant. The
// shard-execution primitive for distributed tenant sweeps; its checkpoint
// key is PointKey("tenant", b.Name, withCoRunner(setup, co)).
func MeasureTenantPoint(ctx context.Context, r *Runner, b *bench.Benchmark, setup Setup, co string) (TenantPoint, error) {
	s := withCoRunner(setup, co)
	speedup, mb, mo, err := r.Speedup(ctx, b, s, compiler.O2, compiler.O3)
	if err != nil {
		return TenantPoint{}, err
	}
	label := co
	if s.CoRunner.IsZero() {
		label = TenantIdle
	}
	return TenantPoint{
		CoRunner:   label,
		CyclesBase: mb.Cycles,
		CyclesOpt:  mo.Cycles,
		Speedup:    speedup,
	}, nil
}

// TenantPointKey returns the checkpoint key of one tenant-sweep point —
// the key TenantSweepCheckpointed records under, exported for cluster
// shard execution.
func TenantPointKey(benchName string, setup Setup, co string) string {
	return sweepKey("tenant", benchName, withCoRunner(setup, co))
}

// TenantSweep measures b's speedup against every co-runner in corunners.
func TenantSweep(ctx context.Context, r *Runner, b *bench.Benchmark, setup Setup, corunners []string) ([]TenantPoint, error) {
	return TenantSweepCheckpointed(ctx, r, b, setup, corunners, nil)
}

// TenantSweepCheckpointed is TenantSweep with journal-based
// checkpoint/resume; see EnvSweepCheckpointed for the journal and
// partial-result contract.
func TenantSweepCheckpointed(ctx context.Context, r *Runner, b *bench.Benchmark, setup Setup, corunners []string, ck Checkpoint) ([]TenantPoint, error) {
	points := make([]TenantPoint, len(corunners))
	done := make([]bool, len(corunners))
	pending := make([]int, 0, len(corunners))
	for i, co := range corunners {
		if ck != nil {
			var p TenantPoint
			ok, err := ck.Lookup(TenantPointKey(b.Name, setup, co), &p)
			if err != nil {
				return nil, err
			}
			if ok {
				points[i], done[i] = p, true
				continue
			}
		}
		pending = append(pending, i)
	}
	err := ForEach(ctx, len(pending), 0, func(ctx context.Context, pi int) error {
		i := pending[pi]
		p, err := MeasureTenantPoint(ctx, r, b, setup, corunners[i])
		if err != nil {
			return err
		}
		if ck != nil {
			if err := ck.Record(TenantPointKey(b.Name, setup, corunners[i]), p); err != nil {
				return err
			}
		}
		points[i], done[i] = p, true
		return nil
	})
	if err != nil {
		completed := gatherDone(points, done)
		return completed, fmt.Errorf("core: tenant sweep of %s incomplete (%d of %d points measured): %w",
			b.Name, len(completed), len(corunners), err)
	}
	return points, nil
}

// RandomSetupsTenant draws n randomized setups exactly like RandomSetups
// and additionally randomizes the co-runner over candidates (which may
// include TenantIdle). The tenant draws come from their own rng stream
// derived from seed, so the env/link/pad draws are bit-identical to
// RandomSetups' — turning the channel on never perturbs how the other
// factors randomize.
func RandomSetupsTenant(base Setup, n, numUnits int, seed uint64, candidates []string) []Setup {
	setups := RandomSetups(base, n, numUnits, seed)
	if len(candidates) == 0 {
		return setups
	}
	rng := stats.NewRNG(stats.SeedFrom("tenant", fmt.Sprintf("%d", seed)))
	for i := range setups {
		setups[i] = withCoRunner(setups[i], candidates[rng.Intn(len(candidates))])
	}
	return setups
}

// EstimateSpeedupTenant runs b under n setups with every factor —
// including the co-runner — randomized, and returns the robust estimate.
// This is the Kalibera & Jones discipline applied to interference:
// a co-runner is a nuisance factor like environment size, so a "serving"
// conclusion must randomize over tenants, not fix one.
func EstimateSpeedupTenant(ctx context.Context, r *Runner, b *bench.Benchmark, base Setup, n int, seed uint64) (*RobustEstimate, error) {
	return EstimateSpeedupTenantCheckpointed(ctx, r, b, base, n, seed, nil)
}

// EstimateSpeedupTenantCheckpointed is EstimateSpeedupTenant with
// journal-based checkpoint/resume, sharing the "rand" checkpoint
// namespace (a setup's key includes its co-runner, so tenant-randomized
// points can never replay for idle-only ones or vice versa). The
// hierarchical interval groups setups by tenant identity: the co-runner
// is the random effect, so between-tenant variance — the channel itself —
// is what widens the interval.
func EstimateSpeedupTenantCheckpointed(ctx context.Context, r *Runner, b *bench.Benchmark, base Setup, n int, seed uint64, ck Checkpoint) (*RobustEstimate, error) {
	setups := RandomSetupsTenant(base, n, len(r.UnitNames(b)), seed, DefaultCoRunners())
	speedups := make([]float64, n)
	pending := make([]int, 0, n)
	for i, s := range setups {
		if ck != nil {
			var p RandomPoint
			ok, err := ck.Lookup(sweepKey("rand", b.Name, s), &p)
			if err != nil {
				return nil, err
			}
			if ok {
				speedups[i] = p.Speedup
				continue
			}
		}
		pending = append(pending, i)
	}
	err := ForEach(ctx, len(pending), 0, func(ctx context.Context, pi int) error {
		i := pending[pi]
		p, err := MeasureRandomPoint(ctx, r, b, setups[i])
		if err != nil {
			return err
		}
		if ck != nil {
			if err := ck.Record(sweepKey("rand", b.Name, setups[i]), p); err != nil {
				return err
			}
		}
		speedups[i] = p.Speedup
		return nil
	})
	if err != nil {
		return nil, err
	}
	est := newRobustEstimate(b.Name, base.Machine, speedups, seed)
	est.HierCI = tenantHierCI(b.Name, base.Machine, setups, speedups, seed)
	return est, nil
}

// tenantHierCI computes the hierarchical interval with setups grouped by
// co-runner identity (idle is a group of its own), in sorted-tenant order
// so the resampling is deterministic.
func tenantHierCI(benchName, machineName string, setups []Setup, speedups []float64, seed uint64) stats.Interval {
	byTenant := map[string][]float64{}
	for i, s := range setups {
		key := TenantIdle
		if !s.CoRunner.IsZero() {
			key = s.CoRunner.Bench
		}
		byTenant[key] = append(byTenant[key], speedups[i])
	}
	tenants := make([]string, 0, len(byTenant))
	for t := range byTenant { //determlint:allow keys are sorted below
		tenants = append(tenants, t)
	}
	sort.Strings(tenants)
	groups := make([][]float64, len(tenants))
	for i, t := range tenants {
		groups[i] = byTenant[t]
	}
	nStr := fmt.Sprintf("%d/%d", len(speedups), seed)
	return stats.HierarchicalCI(groups, 0.95, 1000,
		stats.NewRNG(stats.SeedFrom("hier-tenant", benchName, machineName, nStr)))
}
