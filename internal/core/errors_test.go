package core

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
)

func TestStageString(t *testing.T) {
	want := map[Stage]string{
		StageCompile: "compile",
		StageLink:    "link",
		StageLoad:    "load",
		StageMeasure: "measure",
	}
	for stage, name := range want {
		if got := stage.String(); got != name {
			t.Errorf("Stage(%d).String() = %q, want %q", stage, got, name)
		}
	}
	if got := Stage(42).String(); got != "stage(42)" {
		t.Errorf("unknown stage = %q", got)
	}
}

func TestMeasurementErrorCarriesSetup(t *testing.T) {
	cause := errors.New("simulated fault")
	setup := DefaultSetup("core2")
	setup.EnvBytes = 4096
	me := &MeasurementError{
		Stage:     StageMeasure,
		Benchmark: "bzip2",
		Setup:     setup,
		Cause:     cause,
		Attempts:  1,
	}
	msg := me.Error()
	for _, part := range []string{"measure", "bzip2", setup.String(), "simulated fault"} {
		if !strings.Contains(msg, part) {
			t.Errorf("error message %q missing %q", msg, part)
		}
	}
	if !errors.Is(me, cause) {
		t.Error("MeasurementError does not unwrap to its cause")
	}
	var got *MeasurementError
	if !errors.As(fmt.Errorf("wrapped: %w", me), &got) || got.Setup.EnvBytes != 4096 {
		t.Error("MeasurementError lost through wrapping")
	}
}

func TestPanicErrorUnwrap(t *testing.T) {
	cause := errors.New("typed panic value")
	pe := &PanicError{Value: cause, Stack: []byte("stack")}
	if !errors.Is(pe, cause) {
		t.Error("error panic value must stay matchable through PanicError")
	}
	if !strings.Contains(pe.Error(), "typed panic value") {
		t.Errorf("panic message lost: %q", pe.Error())
	}
	// Non-error panic values unwrap to nothing.
	pe = &PanicError{Value: "string panic"}
	if pe.Unwrap() != nil {
		t.Error("non-error panic value must not unwrap")
	}
}

type transientErr struct{ wrapped error }

func (e *transientErr) Error() string     { return "transient glitch" }
func (e *transientErr) IsTransient() bool { return true }
func (e *transientErr) Unwrap() error     { return e.wrapped }

func TestIsTransient(t *testing.T) {
	if IsTransient(errors.New("plain")) {
		t.Error("plain errors are not transient")
	}
	if !IsTransient(&transientErr{}) {
		t.Error("self-marked transient error not recognized")
	}
	if !IsTransient(fmt.Errorf("wrapped: %w", &transientErr{})) {
		t.Error("transience must survive wrapping")
	}
	// Cancellation is never transient, even when a transient error wraps it:
	// retrying into a cancelled context cannot succeed.
	if IsTransient(context.Canceled) || IsTransient(context.DeadlineExceeded) {
		t.Error("context errors must not be transient")
	}
	if IsTransient(&transientErr{wrapped: context.Canceled}) {
		t.Error("a transient wrapper around cancellation must not retry")
	}
}
