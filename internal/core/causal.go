package core

import (
	"context"
	"fmt"
	"sort"

	"biaslab/internal/bench"
	"biaslab/internal/machine"
	"biaslab/internal/stats"
)

// Causal analysis is the paper's second remedy: when a measurement differs
// between two setups, do not *guess* the microarchitectural cause from a
// plausible story — **intervene** on the suspected cause directly, holding
// everything else fixed, and check that (a) the intervention reproduces the
// effect and (b) a hardware event consistent with the explanation tracks
// the cycles.
//
// The intervention implemented here is the one the env-size channel needs:
// displace the stack directly via the loader's StackShift, without touching
// the environment at all. If cycles move with StackShift the way they move
// with environment size, stack placement — not "the environment" — is the
// cause.

// CausalPoint is one intervention level's measurement.
type CausalPoint struct {
	Shift    uint64
	Cycles   uint64
	Counters machine.Counters
}

// CounterCorrelation ranks one performance counter's association with the
// cycle variation across the intervention sweep.
type CounterCorrelation struct {
	Counter  string
	Pearson  float64
	Spearman float64
}

// CausalReport is the outcome of an intervention study.
type CausalReport struct {
	Benchmark string
	Machine   string
	Points    []CausalPoint
	// CycleRange is max−min cycles across the intervention: the size of
	// the reproduced effect.
	CycleRange uint64
	// EnvRange is max−min cycles across a matched env-size sweep, for the
	// "does the intervention reproduce the effect?" comparison.
	EnvRange uint64
	// Correlations lists counters ordered by |Pearson| with cycles.
	Correlations []CounterCorrelation
}

// Reproduces reports whether the direct intervention produces cycle
// variation of at least half the magnitude the environment sweep produced —
// the paper's criterion for "the suspected cause explains the effect".
func (cr CausalReport) Reproduces() bool {
	return cr.CycleRange*2 >= cr.EnvRange
}

// TopCause returns the most correlated counter (other than cycles and
// instruction count themselves).
func (cr CausalReport) TopCause() CounterCorrelation {
	for _, c := range cr.Correlations {
		if c.Counter != "cycles" && c.Counter != "instructions" {
			return c
		}
	}
	return CounterCorrelation{}
}

func (cr CausalReport) String() string {
	top := cr.TopCause()
	return fmt.Sprintf("%s on %s: intervention range %d cycles (env range %d), reproduces=%v, top correlate %s (r=%.3f)",
		cr.Benchmark, cr.Machine, cr.CycleRange, cr.EnvRange, cr.Reproduces(), top.Counter, top.Pearson)
}

// CausalStudy sweeps StackShift over [0, maxShift] in the given step with a
// fixed environment, and separately sweeps environment size over a matched
// range, then correlates every performance counter with cycles across the
// intervention.
func CausalStudy(ctx context.Context, r *Runner, b *bench.Benchmark, setup Setup, maxShift, step uint64) (*CausalReport, error) {
	if step == 0 {
		step = 64
	}
	report := &CausalReport{Benchmark: b.Name, Machine: setup.Machine}

	var minC, maxC uint64
	for shift := uint64(0); shift <= maxShift; shift += step {
		s := setup
		s.StackShift = shift
		m, err := r.Measure(ctx, b, s)
		if err != nil {
			return nil, err
		}
		report.Points = append(report.Points, CausalPoint{Shift: shift, Cycles: m.Cycles, Counters: m.Counters})
		if minC == 0 || m.Cycles < minC {
			minC = m.Cycles
		}
		if m.Cycles > maxC {
			maxC = m.Cycles
		}
	}
	report.CycleRange = maxC - minC

	// Matched environment sweep (same displacement range, via env bytes).
	minC, maxC = 0, 0
	for extra := uint64(0); extra <= maxShift; extra += step {
		s := setup
		s.EnvBytes = setup.EnvBytes + extra
		if s.EnvBytes > 8 && s.EnvBytes < 17 {
			s.EnvBytes = 17
		}
		m, err := r.Measure(ctx, b, s)
		if err != nil {
			return nil, err
		}
		if minC == 0 || m.Cycles < minC {
			minC = m.Cycles
		}
		if m.Cycles > maxC {
			maxC = m.Cycles
		}
	}
	report.EnvRange = maxC - minC

	// Correlate each counter with cycles across the intervention points.
	cycles := make([]float64, len(report.Points))
	for i, p := range report.Points {
		cycles[i] = float64(p.Cycles)
	}
	for _, name := range machine.CounterNames() {
		vals := make([]float64, len(report.Points))
		allSame := true
		for i, p := range report.Points {
			v, _ := p.Counters.Get(name)
			vals[i] = float64(v)
			if vals[i] != vals[0] {
				allSame = false
			}
		}
		if allSame {
			continue // constants carry no causal signal
		}
		report.Correlations = append(report.Correlations, CounterCorrelation{
			Counter:  name,
			Pearson:  stats.Pearson(vals, cycles),
			Spearman: stats.Spearman(vals, cycles),
		})
	}
	sort.Slice(report.Correlations, func(i, j int) bool {
		return abs(report.Correlations[i].Pearson) > abs(report.Correlations[j].Pearson)
	})
	return report, nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
