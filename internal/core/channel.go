package core

import (
	"context"
	"fmt"

	"biaslab/internal/bench"
	"biaslab/internal/compiler"
	"biaslab/internal/linker"
)

// Scalar layout channels beyond the environment: inter-object text padding
// ("pad") and ASLR-style image-base displacement ("base"). Both perturb only
// where the code lands, exactly like the env channel perturbs only where the
// stack lands, so they get the same sweep machinery: a grid of values, one
// O3-over-O2 speedup per point, checkpoint/resume, and (in adaptive.go) a
// dataflow-backed plan that proves plateaus instead of measuring them.

// ChannelPoint is one point of a scalar channel sweep.
type ChannelPoint struct {
	Value      uint64
	CyclesBase uint64
	CyclesOpt  uint64
	Speedup    float64
}

// channelSpec defines one scalar channel: its checkpoint kind and how a grid
// value lands in a Setup.
type channelSpec struct {
	kind  string
	apply func(Setup, uint64) Setup
}

var padChannel = channelSpec{
	kind:  "pad",
	apply: func(s Setup, v uint64) Setup { s.TextPad = v; return s },
}

var baseChannel = channelSpec{
	kind:  "base",
	apply: func(s Setup, v uint64) Setup { s.TextBase = v; return s },
}

// measureChannelPoint measures one scalar-channel sweep point.
func measureChannelPoint(ctx context.Context, r *Runner, b *bench.Benchmark, spec channelSpec, setup Setup, value uint64) (ChannelPoint, error) {
	s := spec.apply(setup, value)
	speedup, mb, mo, err := r.Speedup(ctx, b, s, compiler.O2, compiler.O3)
	if err != nil {
		return ChannelPoint{}, err
	}
	return ChannelPoint{
		Value:      value,
		CyclesBase: mb.Cycles,
		CyclesOpt:  mo.Cycles,
		Speedup:    speedup,
	}, nil
}

// MeasurePadPoint measures one text-padding sweep point: b's O3-over-O2
// speedup with setup's inter-object padding forced to value bytes. The
// shard-execution primitive for distributed pad sweeps.
func MeasurePadPoint(ctx context.Context, r *Runner, b *bench.Benchmark, setup Setup, value uint64) (ChannelPoint, error) {
	return measureChannelPoint(ctx, r, b, padChannel, setup, value)
}

// MeasureBasePoint measures one image-base sweep point: b's O3-over-O2
// speedup with the image linked at the given base address. Zero means the
// linker default base.
func MeasureBasePoint(ctx context.Context, r *Runner, b *bench.Benchmark, setup Setup, value uint64) (ChannelPoint, error) {
	return measureChannelPoint(ctx, r, b, baseChannel, setup, value)
}

// channelSweepCheckpointed is the shared body of PadSweepCheckpointed and
// BaseSweepCheckpointed; see EnvSweepCheckpointed for the journal and
// partial-result contract.
func channelSweepCheckpointed(ctx context.Context, r *Runner, b *bench.Benchmark, spec channelSpec, setup Setup, values []uint64, ck Checkpoint) ([]ChannelPoint, error) {
	points := make([]ChannelPoint, len(values))
	done := make([]bool, len(values))
	pending := make([]int, 0, len(values))
	for i, v := range values {
		if ck != nil {
			var p ChannelPoint
			ok, err := ck.Lookup(sweepKey(spec.kind, b.Name, spec.apply(setup, v)), &p)
			if err != nil {
				return nil, err
			}
			if ok {
				points[i], done[i] = p, true
				continue
			}
		}
		pending = append(pending, i)
	}
	err := ForEach(ctx, len(pending), 0, func(ctx context.Context, pi int) error {
		i := pending[pi]
		p, err := measureChannelPoint(ctx, r, b, spec, setup, values[i])
		if err != nil {
			return err
		}
		if ck != nil {
			if err := ck.Record(sweepKey(spec.kind, b.Name, spec.apply(setup, values[i])), p); err != nil {
				return err
			}
		}
		points[i], done[i] = p, true
		return nil
	})
	if err != nil {
		completed := gatherDone(points, done)
		return completed, fmt.Errorf("core: %s sweep of %s incomplete (%d of %d points measured): %w",
			spec.kind, b.Name, len(completed), len(values), err)
	}
	return points, nil
}

// PadSweep measures b's speedup at every inter-object padding in values.
func PadSweep(ctx context.Context, r *Runner, b *bench.Benchmark, setup Setup, values []uint64) ([]ChannelPoint, error) {
	return PadSweepCheckpointed(ctx, r, b, setup, values, nil)
}

// PadSweepCheckpointed is PadSweep with journal-based checkpoint/resume.
func PadSweepCheckpointed(ctx context.Context, r *Runner, b *bench.Benchmark, setup Setup, values []uint64, ck Checkpoint) ([]ChannelPoint, error) {
	return channelSweepCheckpointed(ctx, r, b, padChannel, setup, values, ck)
}

// BaseSweep measures b's speedup at every image base in values.
func BaseSweep(ctx context.Context, r *Runner, b *bench.Benchmark, setup Setup, values []uint64) ([]ChannelPoint, error) {
	return BaseSweepCheckpointed(ctx, r, b, setup, values, nil)
}

// BaseSweepCheckpointed is BaseSweep with journal-based checkpoint/resume.
func BaseSweepCheckpointed(ctx context.Context, r *Runner, b *bench.Benchmark, setup Setup, values []uint64, ck Checkpoint) ([]ChannelPoint, error) {
	return channelSweepCheckpointed(ctx, r, b, baseChannel, setup, values, ck)
}

// DefaultPadSizes returns the canonical padding sweep grid: instruction-
// granular steps through one cache line, then line-granular steps through a
// page, then page-granular steps to 32 KiB — dense where the alignment
// effects live, sparse where only set mappings move.
func DefaultPadSizes() []uint64 {
	var sizes []uint64
	for v := uint64(0); v < 64; v += 4 {
		sizes = append(sizes, v)
	}
	for v := uint64(64); v < 4096; v += 64 {
		sizes = append(sizes, v)
	}
	for v := uint64(4096); v <= 32768; v += 4096 {
		sizes = append(sizes, v)
	}
	return sizes
}

// DefaultTextBases returns the canonical image-base sweep grid: the linker
// default plus instruction-granular displacements through one cache line and
// page-granular displacements through 32 KiB — the reach of ASLR's
// contribution to text placement in this model.
func DefaultTextBases() []uint64 {
	base := uint64(linker.DefaultTextBase)
	var sizes []uint64
	for d := uint64(0); d < 64; d += 4 {
		sizes = append(sizes, base+d)
	}
	for d := uint64(4096); d <= 32768; d += 4096 {
		sizes = append(sizes, base+d)
	}
	return sizes
}
