package core

import (
	"context"
	"errors"
	"testing"

	"biaslab/internal/bench"
	"biaslab/internal/machine"
)

// TestStepBudgetWatchdog: a run that exceeds the runner's instruction
// budget must surface as a typed *MeasurementError at the measure stage,
// wrapping machine.ErrStepBudget and carrying the exact failing setup.
func TestStepBudgetWatchdog(t *testing.T) {
	b, _ := bench.ByName("bzip2")
	setup := DefaultSetup("core2")
	setup.EnvBytes = 1033 // distinctive, to verify the setup round-trips

	r := NewRunner(bench.SizeTest)
	r.MaxInstructions = 5_000 // far below any real benchmark
	_, err := r.Measure(context.Background(), b, setup)
	if err == nil {
		t.Fatal("runaway run not stopped by the step budget")
	}
	if !errors.Is(err, machine.ErrStepBudget) {
		t.Fatalf("watchdog error = %v, want machine.ErrStepBudget in the chain", err)
	}
	var me *MeasurementError
	if !errors.As(err, &me) {
		t.Fatalf("watchdog error is not a *MeasurementError: %v", err)
	}
	if me.Stage != StageMeasure {
		t.Errorf("Stage = %v, want measure", me.Stage)
	}
	if me.Benchmark != b.Name || me.Setup.EnvBytes != 1033 {
		t.Errorf("failing setup not attached: benchmark=%q setup=%s", me.Benchmark, me.Setup)
	}
	if IsTransient(err) {
		t.Error("budget exhaustion must not be retried: the rerun would exhaust it again")
	}
}

// TestMeasureHonoursCancel: a cancelled context stops the measurement and
// the error is the cancellation, never retried and never transient.
func TestMeasureHonoursCancel(t *testing.T) {
	b, _ := bench.ByName("bzip2")
	r := NewRunner(bench.SizeTest)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := r.Measure(ctx, b, DefaultSetup("core2"))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled Measure = %v, want context.Canceled", err)
	}
}

// TestRegisterMachineRejectsInvalidConfig: geometry that would corrupt the
// set-index arithmetic is refused at registration with a descriptive error,
// not at first use with a panic.
func TestRegisterMachineRejectsInvalidConfig(t *testing.T) {
	r := NewRunner(bench.SizeTest)

	bad := machine.Core2()
	bad.Name = "bad-l1"
	bad.L1D.SizeKB = 33 // 33 KB / (8 ways × 64 B) is not a power-of-two set count
	if err := r.RegisterMachine("bad-l1", bad); err == nil {
		t.Error("invalid L1D geometry accepted")
	}

	bad = machine.Core2()
	bad.Name = "bad-btb"
	bad.Predictor.BTBEntries = 1000 // not a power of two
	if err := r.RegisterMachine("bad-btb", bad); err == nil {
		t.Error("invalid BTB geometry accepted")
	}

	// A rejected registration must leave the runner usable and must not
	// have installed the broken config.
	good := machine.Core2()
	good.Name = "good"
	if err := r.RegisterMachine("good", good); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	b, _ := bench.ByName("libquantum")
	if _, err := r.Measure(context.Background(), b, DefaultSetup("good")); err != nil {
		t.Errorf("measurement on freshly registered machine: %v", err)
	}
}
