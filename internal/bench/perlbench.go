package bench

import (
	"fmt"

	"biaslab/internal/compiler"
)

// perlbench: analogue of 400.perlbench. The real benchmark is the Perl
// interpreter; its hot paths are string scanning, hash-table operations and
// pattern matching, all call-heavy and byte-oriented. The analogue drives a
// tokenizer, an open-addressing symbol table, and a wildcard matcher over a
// generated "script".
func init() {
	register(&Benchmark{
		Name:   "perlbench",
		Spec:   "400.perlbench",
		Kernel: "string hashing, tokenizing, pattern matching",
		scales: map[Size]int{SizeTest: 1, SizeSmall: 5, SizeRef: 20},
		sources: func(scale int) []compiler.Source {
			return []compiler.Source{
				src("perlbench", "hash", perlHash),
				src("perlbench", "lex", perlLex),
				src("perlbench", "match", perlMatch),
				src("perlbench", "main", fmt.Sprintf(perlMain, scale)),
			}
		},
	})
}

const perlHash = `
// Open-addressing symbol table with linear probing.
int htab[2048];
int hval[2048];
int hcollisions;

int hslot(int key) {
	int idx = (key * 2654435761) & 2047;
	int probes = 0;
	while (htab[idx] != 0 && htab[idx] != key && probes < 2048) {
		idx = (idx + 1) & 2047;
		probes++;
		hcollisions++;
	}
	return idx;
}

void hput(int key, int val) {
	int idx = hslot(key);
	htab[idx] = key;
	hval[idx] = val;
}

int hget(int key) {
	int idx = hslot(key);
	if (htab[idx] == key) {
		return hval[idx];
	}
	return 0;
}

void hclear() {
	for (int i = 0; i < 2048; i++) {
		htab[i] = 0;
		hval[i] = 0;
	}
}
`

const perlLex = `
// Tokenizer over a generated script. Token classes: 1=ident, 2=number,
// 3=operator, 4=string.
byte script[2048];
int tokkind[1024];
int tokhash[1024];
int ntoks;

int isletter(int c) {
	if (c >= 'a' && c <= 'z') { return 1; }
	if (c >= 'A' && c <= 'Z') { return 1; }
	return c == '_';
}

int isdigitc(int c) {
	return c >= '0' && c <= '9';
}

void genscript(int seed, int len) {
	int x = seed;
	for (int i = 0; i < len; i++) {
		x = (x * 1103515245 + 12345) & 2147483647;
		int k = (x >> 7) % 20;
		int c = ' ';
		if (k < 8) {
			c = 'a' + (x >> 3) % 26;
		} else if (k < 12) {
			c = '0' + (x >> 5) % 10;
		} else if (k < 15) {
			int ops = (x >> 4) % 5;
			if (ops == 0) { c = '+'; }
			if (ops == 1) { c = '='; }
			if (ops == 2) { c = '$'; }
			if (ops == 3) { c = '('; }
			if (ops == 4) { c = ')'; }
		} else if (k == 15) {
			c = '"';
		}
		script[i] = c;
	}
	script[len - 1] = ' ';
}

int lex(int len) {
	ntoks = 0;
	int i = 0;
	while (i < len && ntoks < 1024) {
		int c = script[i];
		if (c == ' ') {
			i++;
		} else if (isletter(c)) {
			int h = 5381;
			while (i < len && (isletter(script[i]) || isdigitc(script[i]))) {
				h = (h * 33 + script[i]) & 1048575;
				i++;
			}
			tokkind[ntoks] = 1;
			tokhash[ntoks] = h + 1;
			ntoks++;
		} else if (isdigitc(c)) {
			int v = 0;
			while (i < len && isdigitc(script[i])) {
				v = v * 10 + script[i] - '0';
				i++;
			}
			tokkind[ntoks] = 2;
			tokhash[ntoks] = (v & 65535) + 1;
			ntoks++;
		} else if (c == '"') {
			int h = 7;
			i++;
			while (i < len && script[i] != '"') {
				h = (h * 31 + script[i]) & 1048575;
				i++;
			}
			i++;
			tokkind[ntoks] = 4;
			tokhash[ntoks] = h + 1;
			ntoks++;
		} else {
			tokkind[ntoks] = 3;
			tokhash[ntoks] = c;
			ntoks++;
			i++;
		}
	}
	return ntoks;
}
`

const perlMatch = `
// Wildcard matcher: '?' matches one byte, '*' matches any run. Classic
// backtracking match, quadratic worst case, exactly the shape of a regex
// engine's inner loop.
int matchat(byte* s, int slen, byte* p, int plen) {
	int si = 0;
	int pi = 0;
	int star = 0 - 1;
	int mark = 0;
	while (si < slen) {
		if (pi < plen && (p[pi] == '?' || p[pi] == s[si])) {
			si++;
			pi++;
		} else if (pi < plen && p[pi] == '*') {
			star = pi;
			mark = si;
			pi++;
		} else if (star >= 0) {
			pi = star + 1;
			mark++;
			si = mark;
		} else {
			return 0;
		}
	}
	while (pi < plen && p[pi] == '*') {
		pi++;
	}
	return pi == plen;
}

int countmatches(byte* text, int tlen, byte* pat, int plen, int window) {
	int hits = 0;
	for (int i = 0; i + window <= tlen; i += 3) {
		if (matchat(text + i, window, pat, plen)) {
			hits++;
		}
	}
	return hits;
}
`

const perlMain = `
byte pattern[16];

void main() {
	int total = 0;
	int iters = %d;
	for (int it = 0; it < iters; it++) {
		genscript(it * 7919 + 13, 2048);
		int n = lex(2048);
		hclear();
		for (int t = 0; t < n; t++) {
			if (tokkind[t] == 1) {
				int prev = hget(tokhash[t]);
				hput(tokhash[t], prev + t);
			}
		}
		int found = 0;
		for (int t = 0; t < n; t++) {
			if (tokkind[t] == 1) {
				found += hget(tokhash[t]) & 255;
			}
		}
		pattern[0] = 'a';
		pattern[1] = '*';
		pattern[2] = '?';
		pattern[3] = 'b';
		int hits = countmatches(script, 2048, pattern, 4, 24);
		total = (total * 31 + n + found + hits + hcollisions) & 268435455;
	}
	checksum(total);
}
`
