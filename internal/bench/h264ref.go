package bench

import (
	"fmt"

	"biaslab/internal/compiler"
)

// h264ref: analogue of 464.h264ref. The real benchmark is a video encoder
// whose time is dominated by motion estimation: sum-of-absolute-difference
// (SAD) comparisons of 4×4/8×8 pixel blocks against a reference frame,
// plus a DCT-like transform. The analogue implements exactly that: a
// diamond motion search over byte frames with SAD kernels and an integer
// 4×4 transform of the residual.
func init() {
	register(&Benchmark{
		Name:   "h264ref",
		Spec:   "464.h264ref",
		Kernel: "block SAD motion search + integer transform",
		scales: map[Size]int{SizeTest: 1, SizeSmall: 2, SizeRef: 8},
		sources: func(scale int) []compiler.Source {
			return []compiler.Source{
				src("h264ref", "frame", h264Frame),
				src("h264ref", "sad", h264SAD),
				src("h264ref", "search", h264Search),
				src("h264ref", "main", fmt.Sprintf(h264Main, scale)),
			}
		},
	})
}

const h264Frame = `
// Two 64x64 frames: current and reference (the reference is the current
// frame shifted with noise, so motion search has real structure to find).
byte curframe[4096];
byte refframe[4096];
int frng;

int frand() {
	frng = (frng * 1103515245 + 12345) & 2147483647;
	return frng >> 7;
}

void genframes(int seed) {
	frng = seed;
	for (int y = 0; y < 64; y++) {
		for (int x = 0; x < 64; x++) {
			// Smooth gradient plus texture.
			int v = x * 2 + y + (frand() & 15);
			curframe[y * 64 + x] = v & 255;
		}
	}
	int dx = frand() % 5 - 2;
	int dy = frand() % 5 - 2;
	for (int y = 0; y < 64; y++) {
		for (int x = 0; x < 64; x++) {
			int sx = x + dx;
			int sy = y + dy;
			if (sx < 0) { sx = 0; }
			if (sx > 63) { sx = 63; }
			if (sy < 0) { sy = 0; }
			if (sy > 63) { sy = 63; }
			int v = curframe[sy * 64 + sx] + (frand() & 7);
			refframe[y * 64 + x] = v & 255;
		}
	}
}
`

const h264SAD = `
// SAD kernels. bx/by index 8x8 blocks in the current frame; mx/my is the
// candidate motion vector into the reference frame.
int sad8x8(int bx, int by, int mx, int my) {
	int cx = bx * 8;
	int cy = by * 8;
	int rx = cx + mx;
	int ry = cy + my;
	if (rx < 0 || ry < 0 || rx + 8 > 64 || ry + 8 > 64) {
		return 1 << 20;
	}
	int sum = 0;
	for (int y = 0; y < 8; y++) {
		int crow = (cy + y) * 64 + cx;
		int rrow = (ry + y) * 64 + rx;
		for (int x = 0; x < 8; x++) {
			int d = curframe[crow + x] - refframe[rrow + x];
			if (d < 0) { d = -d; }
			sum += d;
		}
	}
	return sum;
}

int residual[64];

void computeresidual(int bx, int by, int mx, int my) {
	int cx = bx * 8;
	int cy = by * 8;
	for (int y = 0; y < 8; y++) {
		for (int x = 0; x < 8; x++) {
			int rx = cx + mx + x;
			int ry = cy + my + y;
			if (rx < 0) { rx = 0; }
			if (rx > 63) { rx = 63; }
			if (ry < 0) { ry = 0; }
			if (ry > 63) { ry = 63; }
			residual[y * 8 + x] = curframe[(cy + y) * 64 + cx + x] - refframe[ry * 64 + rx];
		}
	}
}

int transform4x4(int ox, int oy) {
	// H.264-style integer DCT butterfly on a 4x4 sub-block of residual.
	int t[16];
	for (int i = 0; i < 4; i++) {
		int a = residual[(oy + i) * 8 + ox];
		int b = residual[(oy + i) * 8 + ox + 1];
		int c = residual[(oy + i) * 8 + ox + 2];
		int d = residual[(oy + i) * 8 + ox + 3];
		int s0 = a + d;
		int s1 = b + c;
		int s2 = b - c;
		int s3 = a - d;
		t[i * 4] = s0 + s1;
		t[i * 4 + 1] = s2 + s3 * 2;
		t[i * 4 + 2] = s0 - s1;
		t[i * 4 + 3] = s3 - s2 * 2;
	}
	int energy = 0;
	for (int j = 0; j < 4; j++) {
		int a = t[j];
		int b = t[4 + j];
		int c = t[8 + j];
		int d = t[12 + j];
		int s0 = a + d;
		int s1 = b + c;
		int s2 = b - c;
		int s3 = a - d;
		int e0 = s0 + s1;
		int e1 = s2 + s3 * 2;
		int e2 = s0 - s1;
		int e3 = s3 - s2 * 2;
		if (e0 < 0) { e0 = -e0; }
		if (e1 < 0) { e1 = -e1; }
		if (e2 < 0) { e2 = -e2; }
		if (e3 < 0) { e3 = -e3; }
		energy += e0 + e1 + e2 + e3;
	}
	return energy;
}
`

const h264Search = `
// Diamond search: start at (0,0), refine by probing the 4 neighbours at
// shrinking step sizes — the classic fast motion-estimation pattern.
int bestmx;
int bestmy;

int diamondsearch(int bx, int by) {
	int mx = 0;
	int my = 0;
	int best = sad8x8(bx, by, 0, 0);
	int step = 4;
	while (step > 0) {
		int improved = 1;
		while (improved != 0) {
			improved = 0;
			for (int d = 0; d < 4; d++) {
				int tx = mx;
				int ty = my;
				if (d == 0) { tx += step; }
				if (d == 1) { tx -= step; }
				if (d == 2) { ty += step; }
				if (d == 3) { ty -= step; }
				if (tx >= 0 - 8 && tx <= 8 && ty >= 0 - 8 && ty <= 8) {
					int s = sad8x8(bx, by, tx, ty);
					if (s < best) {
						best = s;
						mx = tx;
						my = ty;
						improved = 1;
					}
				}
			}
		}
		step = step / 2;
	}
	bestmx = mx;
	bestmy = my;
	return best;
}
`

const h264Main = `
void main() {
	int total = 0;
	int iters = %d;
	for (int it = 0; it < iters; it++) {
		genframes(it * 92821 + 17);
		int sadsum = 0;
		int energy = 0;
		for (int by = 0; by < 5; by++) {
			for (int bx = 0; bx < 5; bx++) {
				int s = diamondsearch(bx, by);
				sadsum = (sadsum + s + bestmx * 3 + bestmy * 5) & 16777215;
				computeresidual(bx, by, bestmx, bestmy);
				energy = (energy + transform4x4(0, 0) + transform4x4(4, 4)) & 16777215;
			}
		}
		total = (total * 31 + sadsum + energy) & 268435455;
	}
	checksum(total);
}
`
