package bench

import (
	"testing"

	"biaslab/internal/compiler"
	"biaslab/internal/ir"
	"biaslab/internal/linker"
	"biaslab/internal/loader"
	"biaslab/internal/machine"
)

func TestRegistry(t *testing.T) {
	all := All()
	if len(all) != 12 {
		t.Fatalf("suite has %d benchmarks, want 12", len(all))
	}
	names := map[string]bool{}
	for _, b := range all {
		if b.Name == "" || b.Spec == "" || b.Kernel == "" {
			t.Errorf("benchmark %q missing metadata", b.Name)
		}
		if names[b.Name] {
			t.Errorf("duplicate name %s", b.Name)
		}
		names[b.Name] = true
		for _, sz := range []Size{SizeTest, SizeSmall, SizeRef} {
			if b.Scale(sz) <= 0 {
				t.Errorf("%s: no scale for %v", b.Name, sz)
			}
		}
		srcs := b.Sources(SizeTest)
		if len(srcs) < 3 {
			t.Errorf("%s: only %d translation units; need ≥3 for link-order experiments", b.Name, len(srcs))
		}
	}
	for _, want := range []string{"perlbench", "bzip2", "gcc", "mcf", "milc", "gobmk", "hmmer", "sjeng", "libquantum", "h264ref", "lbm", "sphinx3"} {
		if !names[want] {
			t.Errorf("missing SPEC analogue %s", want)
		}
	}
}

func TestParseSize(t *testing.T) {
	for s, want := range map[string]Size{"test": SizeTest, "small": SizeSmall, "ref": SizeRef} {
		got, err := ParseSize(s)
		if err != nil || got != want {
			t.Errorf("ParseSize(%s) = %v, %v", s, got, err)
		}
		if got.String() != s {
			t.Errorf("Size.String() = %q, want %q", got.String(), s)
		}
	}
	if _, err := ParseSize("huge"); err == nil {
		t.Error("ParseSize(huge) should fail")
	}
}

// oracleChecksum runs a benchmark's IR through the interpreter.
func oracleChecksum(t *testing.T, b *Benchmark, cfg compiler.Config) uint64 {
	t.Helper()
	_, prog, err := compiler.Compile(b.Sources(SizeTest), cfg)
	if err != nil {
		t.Fatalf("%s: compile: %v", b.Name, err)
	}
	it, err := ir.NewInterp(prog)
	if err != nil {
		t.Fatalf("%s: interp: %v", b.Name, err)
	}
	it.SetStepLimit(1 << 28)
	if err := it.Run(); err != nil {
		t.Fatalf("%s: interp run: %v", b.Name, err)
	}
	return it.Checksum
}

// TestBenchmarksCompileAndValidate is the suite's core correctness test:
// every benchmark × optimization level × personality must produce the same
// checksum under the IR interpreter.
func TestBenchmarksCompileAndValidate(t *testing.T) {
	for _, b := range All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			t.Parallel()
			base := oracleChecksum(t, b, compiler.Config{Level: compiler.O0})
			if base == 0 {
				t.Errorf("%s: checksum is zero; benchmark likely degenerate", b.Name)
			}
			for _, cfg := range []compiler.Config{
				{Level: compiler.O2, Personality: compiler.GCC},
				{Level: compiler.O3, Personality: compiler.GCC},
				{Level: compiler.O3, Personality: compiler.ICC},
			} {
				if got := oracleChecksum(t, b, cfg); got != base {
					t.Errorf("%s at %v: checksum %d, want %d", b.Name, cfg, got, base)
				}
			}
		})
	}
}

// TestBenchmarksRunOnMachine runs every benchmark end-to-end on the Core 2
// model at O2 and checks the machine checksum against the oracle.
func TestBenchmarksRunOnMachine(t *testing.T) {
	for _, b := range All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			t.Parallel()
			cfg := compiler.Config{Level: compiler.O2, Personality: compiler.GCC}
			objs, prog, err := compiler.Compile(b.Sources(SizeTest), cfg)
			if err != nil {
				t.Fatal(err)
			}
			exe, err := linker.Link(objs, linker.Options{})
			if err != nil {
				t.Fatal(err)
			}
			img, err := loader.Load(exe, loader.Options{Env: []string{"PATH=/usr/bin"}})
			if err != nil {
				t.Fatal(err)
			}
			m := machine.New(machine.Core2())
			res, err := m.Run(img, 1<<28)
			if err != nil {
				t.Fatalf("%s: %v", b.Name, err)
			}
			it, err := ir.NewInterp(prog)
			if err != nil {
				t.Fatal(err)
			}
			it.SetStepLimit(1 << 28)
			if err := it.Run(); err != nil {
				t.Fatal(err)
			}
			if res.Checksum != it.Checksum {
				t.Errorf("%s: machine checksum %d != oracle %d", b.Name, res.Checksum, it.Checksum)
			}
			t.Logf("%s: %d instructions, %d cycles, IPC %.2f", b.Name,
				res.Counters.Instructions, res.Counters.Cycles, res.Counters.IPC())
		})
	}
}
