package bench

import (
	"fmt"

	"biaslab/internal/compiler"
)

// lbm: analogue of 470.lbm. The real benchmark is a lattice-Boltzmann fluid
// solver: a 9-point (in our 2-D reduction) stencil streamed over a large
// grid with collide-and-stream updates, bandwidth-bound and perfectly
// regular. The analogue implements D2Q9-style collide and stream over a
// 128×64 double-buffered grid of integer distributions.
func init() {
	register(&Benchmark{
		Name:   "lbm",
		Spec:   "470.lbm",
		Kernel: "D2Q9 collide-and-stream stencil sweep",
		scales: map[Size]int{SizeTest: 1, SizeSmall: 2, SizeRef: 8},
		sources: func(scale int) []compiler.Source {
			return []compiler.Source{
				src("lbm", "grid", lbmGrid),
				src("lbm", "step", lbmStep),
				src("lbm", "main", fmt.Sprintf(lbmMain, scale)),
			}
		},
	})
}

const lbmGrid = `
// 32x32 grid, 9 distributions per cell, double buffered.
// Index: (y*32 + x)*9 + dir.
int gridA[9216];
int gridB[9216];
byte obstacle[1024];

void lbminit(int seed) {
	int x = seed;
	for (int i = 0; i < 9216; i++) {
		x = (x * 1103515245 + 12345) & 2147483647;
		gridA[i] = (x >> 9 & 63) + 16;
		gridB[i] = 0;
	}
	for (int i = 0; i < 1024; i++) {
		x = (x * 1103515245 + 12345) & 2147483647;
		obstacle[i] = 0;
		if ((x >> 11 & 31) == 0) {
			obstacle[i] = 1;
		}
	}
}

int cellmass(int* g, int cell) {
	int m = 0;
	for (int d = 0; d < 9; d++) {
		m += g[cell * 9 + d];
	}
	return m;
}
`

const lbmStep = `
// One collide-and-stream step from src into dst. Directions: 0 rest,
// 1..4 axis (E,W,N,S), 5..8 diagonal (NE,NW,SE,SW).
int dxs[9];
int dys[9];

void initdirs() {
	dxs[0] = 0;  dys[0] = 0;
	dxs[1] = 1;  dys[1] = 0;
	dxs[2] = 0 - 1; dys[2] = 0;
	dxs[3] = 0;  dys[3] = 0 - 1;
	dxs[4] = 0;  dys[4] = 1;
	dxs[5] = 1;  dys[5] = 0 - 1;
	dxs[6] = 0 - 1; dys[6] = 0 - 1;
	dxs[7] = 1;  dys[7] = 1;
	dxs[8] = 0 - 1; dys[8] = 1;
}

int opposite(int d) {
	if (d == 0) { return 0; }
	if (d == 1) { return 2; }
	if (d == 2) { return 1; }
	if (d == 3) { return 4; }
	if (d == 4) { return 3; }
	if (d == 5) { return 8; }
	if (d == 6) { return 7; }
	if (d == 7) { return 6; }
	return 5;
}

int step(int* srcg, int* dstg) {
	int activity = 0;
	for (int y = 0; y < 32; y++) {
		for (int x = 0; x < 32; x++) {
			int cell = y * 32 + x;
			// Collide: relax each distribution toward the cell mean.
			int mass = cellmass(srcg, cell);
			int mean = mass / 9;
			for (int d = 0; d < 9; d++) {
				int f = srcg[cell * 9 + d];
				int relaxed = f + (mean - f) / 4;
				// Stream into the neighbour (torus wrap).
				int nx = x + dxs[d] & 31;
				int ny = y + dys[d] & 31;
				int ncell = ny * 32 + nx;
				if (obstacle[ncell] != 0) {
					// Bounce back.
					dstg[cell * 9 + opposite(d)] = relaxed;
				} else {
					dstg[ncell * 9 + d] = relaxed;
				}
			}
			activity = (activity + mean) & 16777215;
		}
	}
	return activity;
}
`

const lbmMain = `
void main() {
	int total = 0;
	int iters = %d;
	lbminit(161803);
	initdirs();
	for (int it = 0; it < iters; it++) {
		int a1 = step(gridA, gridB);
		int a2 = step(gridB, gridA);
		int probe = 0;
		for (int cell = 5; cell < 1024; cell += 83) {
			probe = (probe + cellmass(gridA, cell)) & 16777215;
		}
		total = (total * 31 + a1 + a2 + probe) & 268435455;
	}
	checksum(total);
}
`
