// Package bench provides the benchmark suite: twelve programs written in
// cmini, one analogue for each SPEC CPU2006 C benchmark the paper evaluates.
// Each analogue reproduces its original's dominant computational kernel and
// memory behaviour (string hashing, compression, sparse graphs, lattice
// sweeps, game-tree search, dynamic programming, bit manipulation, block
// matching, stencils, and beam search) so the suite exercises the same mix
// of call-heavy, loop-heavy, cache-friendly and cache-hostile behaviour the
// paper's measurements ride on.
//
// Every benchmark is split across several translation units — that is what
// gives the linker a link order to permute — and ends by emitting a
// checksum, so any toolchain or simulator bug that changes semantics is
// caught by differential testing rather than silently skewing results.
package bench

import (
	"fmt"
	"sort"

	"biaslab/internal/compiler"
)

// Size selects a workload scale.
type Size int

const (
	// SizeTest is for unit tests: tens of thousands of instructions.
	SizeTest Size = iota
	// SizeSmall is the experiment default: a few million instructions.
	SizeSmall
	// SizeRef is for longer, more stable measurements.
	SizeRef
)

func (s Size) String() string {
	switch s {
	case SizeTest:
		return "test"
	case SizeSmall:
		return "small"
	case SizeRef:
		return "ref"
	}
	return "size?"
}

// ParseSize converts "test", "small" or "ref".
func ParseSize(s string) (Size, error) {
	switch s {
	case "test":
		return SizeTest, nil
	case "small":
		return SizeSmall, nil
	case "ref":
		return SizeRef, nil
	}
	return 0, fmt.Errorf("bench: unknown workload size %q", s)
}

// Benchmark is one suite member.
type Benchmark struct {
	// Name is the short name ("perlbench").
	Name string
	// Spec is the SPEC CPU2006 benchmark this program is an analogue of.
	Spec string
	// Kernel describes the dominant computation.
	Kernel string
	// scales maps workload sizes to the scale parameter spliced into the
	// sources.
	scales map[Size]int
	// sources builds the translation units for a given scale.
	sources func(scale int) []compiler.Source
}

// Sources returns the benchmark's translation units at the given size.
// The unit order returned here is the "default" link order.
func (b *Benchmark) Sources(size Size) []compiler.Source {
	return b.sources(b.scales[size])
}

// Scale exposes the raw scale parameter (for documentation output).
func (b *Benchmark) Scale(size Size) int { return b.scales[size] }

var registry = map[string]*Benchmark{}

func register(b *Benchmark) {
	if _, dup := registry[b.Name]; dup {
		panic("bench: duplicate benchmark " + b.Name)
	}
	registry[b.Name] = b
}

// All returns the suite sorted by name.
func All() []*Benchmark {
	out := make([]*Benchmark, 0, len(registry))
	for _, b := range registry {
		out = append(out, b)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Names returns the benchmark names, sorted.
func Names() []string {
	bs := All()
	names := make([]string, len(bs))
	for i, b := range bs {
		names[i] = b.Name
	}
	return names
}

// ByName looks up a benchmark.
func ByName(name string) (*Benchmark, bool) {
	b, ok := registry[name]
	return b, ok
}

// Synthetic builds an unregistered benchmark directly from a source
// builder — the hook for tests that need to feed the measurement pipeline
// programs outside the suite (for example deliberately uncompilable ones).
// The same builder serves every workload size at scale 1.
func Synthetic(name string, sources func(scale int) []compiler.Source) *Benchmark {
	return &Benchmark{
		Name:    name,
		Kernel:  "synthetic",
		scales:  map[Size]int{SizeTest: 1, SizeSmall: 1, SizeRef: 1},
		sources: sources,
	}
}

// src is a helper to build a compiler.Source with the benchmark prefix.
func src(bench, unit, text string) compiler.Source {
	return compiler.Source{Name: bench + "_" + unit + ".cm", Text: text}
}
