package bench

import (
	"fmt"

	"biaslab/internal/compiler"
)

// sphinx3: analogue of 482.sphinx3. The real benchmark is speech
// recognition; the dominant kernel scores acoustic feature vectors against
// thousands of Gaussian densities (a squared-distance dot product per
// density) and prunes hypotheses with a beam. The analogue scores 39-dim
// integer feature frames against a codebook of densities and runs a
// beam-pruned Viterbi over a word lattice.
func init() {
	register(&Benchmark{
		Name:   "sphinx3",
		Spec:   "482.sphinx3",
		Kernel: "Gaussian density scoring + beam-pruned lattice search",
		scales: map[Size]int{SizeTest: 1, SizeSmall: 2, SizeRef: 8},
		sources: func(scale int) []compiler.Source {
			return []compiler.Source{
				src("sphinx3", "gauss", sphinxGauss),
				src("sphinx3", "beam", sphinxBeam),
				src("sphinx3", "main", fmt.Sprintf(sphinxMain, scale)),
			}
		},
	})
}

const sphinxGauss = `
// Codebook: 128 densities x 39 dims of (mean, precision) pairs.
int means[4992];
int precs[4992];
int feat[39];
int gscores[128];
int grng;

int grand2() {
	grng = (grng * 1103515245 + 12345) & 2147483647;
	return grng >> 7;
}

void buildcodebook(int seed) {
	grng = seed;
	for (int i = 0; i < 4992; i++) {
		means[i] = grand2() & 255;
		precs[i] = (grand2() & 7) + 1;
	}
}

void genframe(int t) {
	for (int d = 0; d < 39; d++) {
		// Slowly varying features with per-dim phase.
		int v = (t * (d + 3) & 511) - 128;
		if (v < 0) { v = -v; }
		feat[d] = v & 255;
	}
}

int scoreframe() {
	// Mahalanobis-style distance to every density; returns best index.
	int best = 1 << 30;
	int besti = 0;
	for (int g = 0; g < 128; g++) {
		int s = 0;
		int base = g * 39;
		for (int d = 0; d < 39; d++) {
			int diff = feat[d] - means[base + d];
			s += diff * diff * precs[base + d] >> 4;
		}
		gscores[g] = s;
		if (s < best) {
			best = s;
			besti = g;
		}
	}
	return besti;
}
`

const sphinxBeam = `
// Beam-pruned lattice: 512 states, each fed by 3 predecessors.
int cur[512];
int nxt[512];
int pred1[512];
int pred2[512];
int pred3[512];
int active;

void buildlattice() {
	for (int s = 0; s < 512; s++) {
		pred1[s] = (s + 511) & 511;
		pred2[s] = (s * 7 + 13) & 511;
		pred3[s] = (s * 31 + 101) & 511;
		cur[s] = 0;
	}
}

int beamstep(int framescore, int beamwidth) {
	// Relax every state from its predecessors, prune against the beam.
	int best = 1 << 30;
	for (int s = 0; s < 512; s++) {
		int a = cur[pred1[s]] + (gscores[s & 127] >> 6);
		int b = cur[pred2[s]] + (gscores[s * 3 & 127] >> 5);
		int c = cur[pred3[s]] + framescore;
		int m = a;
		if (b < m) { m = b; }
		if (c < m) { m = c; }
		nxt[s] = m;
		if (m < best) { best = m; }
	}
	active = 0;
	for (int s = 0; s < 512; s++) {
		if (nxt[s] <= best + beamwidth) {
			cur[s] = nxt[s];
			active++;
		} else {
			cur[s] = best + beamwidth * 2;
		}
	}
	return active;
}
`

const sphinxMain = `
void main() {
	int total = 0;
	int iters = %d;
	buildcodebook(314159);
	buildlattice();
	for (int it = 0; it < iters; it++) {
		int acts = 0;
		int bestsum = 0;
		for (int t = 0; t < 6; t++) {
			genframe(it * 100 + t);
			int besti = scoreframe();
			acts += beamstep(gscores[besti] >> 6, 200);
			bestsum = (bestsum + besti) & 16777215;
		}
		total = (total * 31 + acts + bestsum) & 268435455;
	}
	checksum(total);
}
`
