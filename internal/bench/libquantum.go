package bench

import (
	"fmt"

	"biaslab/internal/compiler"
)

// libquantum: analogue of 462.libquantum. The real benchmark simulates a
// quantum computer running Shor's algorithm; its hot loops sweep the basis-
// state array applying gates as bit manipulations. The analogue keeps a
// register of basis states (bitmask + amplitude proxy) and applies
// Hadamard-like splits, controlled-NOTs, and phase rotations as integer
// bit operations — the same long, branch-light array sweeps.
func init() {
	register(&Benchmark{
		Name:   "libquantum",
		Spec:   "462.libquantum",
		Kernel: "basis-state sweeps with bitwise gate application",
		scales: map[Size]int{SizeTest: 1, SizeSmall: 2, SizeRef: 8},
		sources: func(scale int) []compiler.Source {
			return []compiler.Source{
				src("libquantum", "register", quantumRegister),
				src("libquantum", "gates", quantumGates),
				src("libquantum", "main", fmt.Sprintf(quantumMain, scale)),
			}
		},
	})
}

const quantumRegister = `
// Quantum register: parallel arrays of basis-state bitmasks and integer
// amplitude proxies.
int qstate[1024];
int qamp[1024];
int qsize;

void qinit(int seed, int n) {
	qsize = n;
	int x = seed;
	for (int i = 0; i < n; i++) {
		x = (x * 1103515245 + 12345) & 2147483647;
		qstate[i] = x >> 5 & 65535;
		qamp[i] = (x >> 21 & 255) + 1;
	}
}

int qmeasureproxy() {
	// Collapse proxy: weighted parity sum.
	int acc = 0;
	for (int i = 0; i < qsize; i++) {
		int s = qstate[i];
		int parity = 0;
		while (s != 0) {
			parity = parity ^ s & 1;
			s = s >> 1;
		}
		if (parity != 0) {
			acc = (acc + qamp[i]) & 16777215;
		}
	}
	return acc;
}
`

const quantumGates = `
// Gate kernels, each a full sweep over the register (as in libquantum).
void cnot(int control, int target) {
	int cbit = 1 << control;
	int tbit = 1 << target;
	for (int i = 0; i < qsize; i++) {
		if ((qstate[i] & cbit) != 0) {
			qstate[i] = qstate[i] ^ tbit;
		}
	}
}

void toffoli(int c1, int c2, int target) {
	int b1 = 1 << c1;
	int b2 = 1 << c2;
	int tbit = 1 << target;
	for (int i = 0; i < qsize; i++) {
		int s = qstate[i];
		if ((s & b1) != 0 && (s & b2) != 0) {
			qstate[i] = s ^ tbit;
		}
	}
}

void phase(int target, int k) {
	int tbit = 1 << target;
	for (int i = 0; i < qsize; i++) {
		if ((qstate[i] & tbit) != 0) {
			qamp[i] = qamp[i] * k + 1 & 16777215;
		}
	}
}

void hadamardproxy(int target) {
	// Splits amplitude between the two basis states of the target bit;
	// integer proxy: rotate amplitude and flip.
	int tbit = 1 << target;
	for (int i = 0; i < qsize; i++) {
		int a = qamp[i];
		qamp[i] = (a >> 1) + (a & 1) * 4096 & 16777215;
		qstate[i] = qstate[i] ^ tbit;
	}
}
`

const quantumMain = `
void main() {
	int total = 0;
	int iters = %d;
	for (int it = 0; it < iters; it++) {
		qinit(it * 48271 + 11, 1024);
		for (int bit = 0; bit < 12; bit++) {
			hadamardproxy(bit);
			cnot(bit, bit + 1 & 15);
			if ((bit & 1) == 0) {
				toffoli(bit, bit + 2 & 15, bit + 5 & 15);
			}
			phase(bit + 3 & 15, 3);
		}
		total = (total * 31 + qmeasureproxy()) & 268435455;
	}
	checksum(total);
}
`
