package bench

import (
	"fmt"

	"biaslab/internal/compiler"
)

// mcf: analogue of 429.mcf. The real benchmark solves minimum-cost flow
// with a network simplex; it is the suite's most memory-latency-bound
// program, chasing pointers through a sparse graph. The analogue runs
// Bellman-Ford relaxations and a flow-augmentation loop over a sparse
// adjacency structure stored in index arrays, which produces the same
// dependent-load chains.
func init() {
	register(&Benchmark{
		Name:   "mcf",
		Spec:   "429.mcf",
		Kernel: "sparse-graph relaxation, dependent loads",
		scales: map[Size]int{SizeTest: 1, SizeSmall: 2, SizeRef: 8},
		sources: func(scale int) []compiler.Source {
			return []compiler.Source{
				src("mcf", "graph", mcfGraph),
				src("mcf", "spp", mcfSPP),
				src("mcf", "main", fmt.Sprintf(mcfMain, scale)),
			}
		},
	})
}

const mcfGraph = `
// Sparse directed graph: CSR-style arrays. 512 nodes, 4 out-edges each.
int firstedge[513];
int edgeto[2048];
int edgecost[2048];
int edgecap[2048];
int grng;

int grand() {
	grng = (grng * 1103515245 + 12345) & 2147483647;
	return grng >> 7;
}

void buildgraph(int seed) {
	grng = seed;
	int e = 0;
	for (int v = 0; v < 512; v++) {
		firstedge[v] = e;
		for (int k = 0; k < 4; k++) {
			// Mix of local and long-range edges for realistic locality.
			int dst = 0;
			if ((grand() & 3) != 0) {
				dst = (v + grand() % 16 + 1) & 511;
			} else {
				dst = grand() & 511;
			}
			edgeto[e] = dst;
			edgecost[e] = grand() % 100 + 1;
			edgecap[e] = grand() % 8 + 1;
			e++;
		}
	}
	firstedge[512] = e;
}
`

const mcfSPP = `
// Bellman-Ford with early exit, plus a greedy flow-augmentation sweep.
int dist[512];
int parent[512];

int bellman(int srcnode) {
	for (int v = 0; v < 512; v++) {
		dist[v] = 1 << 30;
		parent[v] = 0 - 1;
	}
	dist[srcnode] = 0;
	int rounds = 0;
	int changed = 1;
	while (changed != 0 && rounds < 20) {
		changed = 0;
		for (int v = 0; v < 512; v++) {
			int dv = dist[v];
			if (dv < 1 << 30) {
				int e0 = firstedge[v];
				int e1 = firstedge[v + 1];
				for (int e = e0; e < e1; e++) {
					int w = edgeto[e];
					int nd = dv + edgecost[e];
					if (nd < dist[w]) {
						dist[w] = nd;
						parent[w] = e;
						changed = 1;
					}
				}
			}
		}
		rounds++;
	}
	return rounds;
}

int augment(int sink) {
	// Walk the parent chain (the dependent-load ladder mcf is famous
	// for), find the bottleneck capacity, and drain it.
	int v = sink;
	int bottleneck = 1 << 30;
	int hops = 0;
	while (parent[v] >= 0 && hops < 2048) {
		int e = parent[v];
		if (edgecap[e] < bottleneck) {
			bottleneck = edgecap[e];
		}
		// Recover the edge's source by scanning its bucket.
		int u = 0;
		int lo = 0;
		int hi = 512;
		while (hi - lo > 1) {
			int mid = (lo + hi) / 2;
			if (firstedge[mid] <= e) {
				lo = mid;
			} else {
				hi = mid;
			}
		}
		u = lo;
		v = u;
		hops++;
	}
	if (bottleneck == 1 << 30) {
		return 0;
	}
	v = sink;
	int drained = 0;
	while (parent[v] >= 0 && drained < hops) {
		int e = parent[v];
		edgecap[e] -= bottleneck;
		if (edgecap[e] <= 0) {
			edgecap[e] = 0;
			parent[v] = 0 - 1;
		}
		int lo = 0;
		int hi = 512;
		while (hi - lo > 1) {
			int mid = (lo + hi) / 2;
			if (firstedge[mid] <= e) {
				lo = mid;
			} else {
				hi = mid;
			}
		}
		v = lo;
		drained++;
	}
	return bottleneck * hops;
}
`

const mcfMain = `
void main() {
	int total = 0;
	int iters = %d;
	for (int it = 0; it < iters; it++) {
		buildgraph(it * 31337 + 5);
		for (int srcnode = 0; srcnode < 2; srcnode++) {
			int rounds = bellman(srcnode * 257 & 511);
			int flow = 0;
			for (int sink = 13; sink < 512; sink += 97) {
				flow += augment(sink);
			}
			int reach = 0;
			for (int v = 0; v < 512; v++) {
				if (dist[v] < 1 << 30) {
					reach++;
				}
			}
			total = (total * 31 + rounds + flow + reach) & 268435455;
		}
	}
	checksum(total);
}
`
