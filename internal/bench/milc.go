package bench

import (
	"fmt"

	"biaslab/internal/compiler"
)

// milc: analogue of 433.milc. The real benchmark is lattice QCD: sweeps
// over a 4-D lattice multiplying 3×3 complex matrices. The analogue sweeps
// a 4-D lattice (4×4×4×4 sites) of 3×3 integer matrices, doing
// matrix-matrix multiplies against per-direction link matrices — the same
// regular, strided, multiply-add-dominated traffic.
func init() {
	register(&Benchmark{
		Name:   "milc",
		Spec:   "433.milc",
		Kernel: "4-D lattice sweep of 3x3 matrix multiplies",
		scales: map[Size]int{SizeTest: 1, SizeSmall: 2, SizeRef: 8},
		sources: func(scale int) []compiler.Source {
			return []compiler.Source{
				src("milc", "su3", milcSU3),
				src("milc", "lattice", milcLattice),
				src("milc", "main", fmt.Sprintf(milcMain, scale)),
			}
		},
	})
}

const milcSU3 = `
// 3x3 integer matrix kernels, flattened row-major (9 ints per matrix).
void matmul(int* a, int* b, int* out) {
	for (int i = 0; i < 3; i++) {
		for (int j = 0; j < 3; j++) {
			int s = 0;
			for (int k = 0; k < 3; k++) {
				s += a[i * 3 + k] * b[k * 3 + j];
			}
			out[i * 3 + j] = s & 16777215;
		}
	}
}

void mataddinto(int* acc, int* m) {
	for (int i = 0; i < 9; i++) {
		acc[i] = (acc[i] + m[i]) & 16777215;
	}
}

int mattrace(int* m) {
	return (m[0] + m[4] + m[8]) & 16777215;
}
`

const milcLattice = `
// Lattice of 256 sites (4^4), one matrix per site, plus 4 direction links.
int lattice[2304];
int links[36];
int staple[9];
int tmpm[9];

void latinit(int seed) {
	int x = seed;
	for (int i = 0; i < 2304; i++) {
		x = (x * 1103515245 + 12345) & 2147483647;
		lattice[i] = x >> 9 & 255;
	}
	for (int i = 0; i < 36; i++) {
		x = (x * 1103515245 + 12345) & 2147483647;
		links[i] = (x >> 9 & 15) + 1;
	}
}

int neighbor(int site, int dir) {
	// 4-D torus coordinates packed as base-4 digits.
	int shift = dir * 2;
	int coord = site >> shift & 3;
	int up = (coord + 1) & 3;
	return site & ~(3 << shift) | up << shift;
}

int sweep() {
	int acc = 0;
	for (int site = 0; site < 256; site++) {
		for (int i = 0; i < 9; i++) {
			staple[i] = 0;
		}
		for (int dir = 0; dir < 4; dir++) {
			int nb = neighbor(site, dir);
			matmul(lattice + site * 9, links + dir * 9, tmpm);
			mataddinto(staple, tmpm);
			acc = (acc + mattrace(lattice + nb * 9)) & 16777215;
		}
		// Relax the site toward the staple (the update step).
		for (int i = 0; i < 9; i++) {
			lattice[site * 9 + i] = (lattice[site * 9 + i] * 3 + staple[i]) / 4 & 16777215;
		}
	}
	return acc;
}
`

const milcMain = `
void main() {
	int total = 0;
	int iters = %d;
	latinit(271828);
	for (int it = 0; it < iters; it++) {
		int acc = sweep();
		int tr = 0;
		for (int site = 0; site < 256; site += 17) {
			tr = (tr + mattrace(lattice + site * 9)) & 16777215;
		}
		total = (total * 31 + acc + tr) & 268435455;
	}
	checksum(total);
}
`
