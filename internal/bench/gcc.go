package bench

import (
	"fmt"

	"biaslab/internal/compiler"
)

// gcc: analogue of 403.gcc. The real benchmark is a compiler: it builds an
// IR, runs folding/DCE-style passes with large dispatch switches, and does
// graph-coloring register allocation. The analogue builds a random
// expression DAG in arrays, constant-folds it, eliminates dead nodes, and
// colors an interference graph — big, branchy code with poor locality,
// which is why the real gcc is I-cache sensitive (and why O3's code growth
// can hurt it, as the paper observes).
func init() {
	register(&Benchmark{
		Name:   "gcc",
		Spec:   "403.gcc",
		Kernel: "IR folding, dead-code elimination, graph coloring",
		scales: map[Size]int{SizeTest: 1, SizeSmall: 2, SizeRef: 8},
		sources: func(scale int) []compiler.Source {
			return []compiler.Source{
				src("gcc", "ir", gccIR),
				src("gcc", "fold", gccFold),
				src("gcc", "color", gccColor),
				src("gcc", "main", fmt.Sprintf(gccMain, scale)),
			}
		},
	})
}

const gccIR = `
// Expression DAG stored in parallel arrays. op 0 = constant leaf,
// 1..8 = binary operators; lhs/rhs are node indices (always smaller).
int nodeop[2048];
int nodelhs[2048];
int noderhs[2048];
int nodeval[2048];
int nodelive[2048];
int nnodes;
int irrng;

int irrand() {
	irrng = (irrng * 1103515245 + 12345) & 2147483647;
	return irrng >> 7;
}

void buildir(int seed, int n) {
	irrng = seed;
	nnodes = n;
	for (int i = 0; i < n; i++) {
		nodelive[i] = 0;
		if (i < 24) {
			nodeop[i] = 0;
			nodeval[i] = irrand() & 1023;
			nodelhs[i] = 0;
			noderhs[i] = 0;
		} else {
			nodeop[i] = irrand() % 8 + 1;
			nodelhs[i] = irrand() % i;
			noderhs[i] = irrand() % i;
		}
	}
}
`

const gccFold = `
// Bottom-up constant folding with a big operator switch, the shape of
// every compiler's simplify pass.
int applyop(int op, int a, int b) {
	if (op == 1) { return (a + b) & 16777215; }
	if (op == 2) { return (a - b) & 16777215; }
	if (op == 3) { return (a * b) & 16777215; }
	if (op == 4) {
		if (b == 0) { return a; }
		return a / b;
	}
	if (op == 5) { return a & b; }
	if (op == 6) { return a | b; }
	if (op == 7) { return a ^ b; }
	return (a << 1 ^ b) & 16777215;
}

int foldall() {
	// Every node's operands precede it, so one forward pass folds fully.
	int folded = 0;
	for (int i = 0; i < nnodes; i++) {
		if (nodeop[i] != 0) {
			int a = nodeval[nodelhs[i]];
			int b = nodeval[noderhs[i]];
			nodeval[i] = applyop(nodeop[i], a, b);
			folded++;
		}
	}
	return folded;
}

int marklive(int root) {
	// Iterative DFS using an explicit work stack (compilers do this to
	// avoid recursion on huge functions).
	int stack[512];
	int sp = 0;
	int live = 0;
	stack[0] = root;
	sp = 1;
	while (sp > 0) {
		sp -= 1;
		int n = stack[sp];
		if (nodelive[n] == 0) {
			nodelive[n] = 1;
			live++;
			if (nodeop[n] != 0 && sp < 510) {
				stack[sp] = nodelhs[n];
				stack[sp + 1] = noderhs[n];
				sp += 2;
			}
		}
	}
	return live;
}
`

const gccColor = `
// Greedy graph coloring over a synthetic interference graph derived from
// node liveness — the register-allocation stage.
int color[2048];
int degree[2048];

int interferes(int a, int b) {
	// Two live nodes interfere when their index distance is small or they
	// share an operand, a cheap stand-in for overlapping live ranges.
	if (nodelive[a] == 0 || nodelive[b] == 0) { return 0; }
	int d = a - b;
	if (d < 0) { d = -d; }
	if (d < 8) { return 1; }
	if (nodelhs[a] == nodelhs[b]) { return 1; }
	return noderhs[a] == noderhs[b];
}

int colorall(int k) {
	int spills = 0;
	for (int i = 0; i < nnodes; i++) {
		color[i] = 0 - 1;
		degree[i] = 0;
	}
	for (int i = 0; i < nnodes; i++) {
		if (nodelive[i] == 0) { continue; }
		int used = 0;
		int lo = i - 64;
		if (lo < 0) { lo = 0; }
		for (int j = lo; j < i; j++) {
			if (interferes(i, j) && color[j] >= 0) {
				used = used | 1 << color[j];
				degree[i]++;
			}
		}
		int c = 0;
		while (c < k && (used >> c & 1) != 0) {
			c++;
		}
		if (c < k) {
			color[i] = c;
		} else {
			spills++;
		}
	}
	return spills;
}
`

const gccMain = `
void main() {
	int total = 0;
	int iters = %d;
	for (int it = 0; it < iters; it++) {
		buildir(it * 16807 + 7, 2048);
		int folded = foldall();
		int live = marklive(nnodes - 1);
		int spills = colorall(8);
		int sum = 0;
		for (int i = 0; i < nnodes; i += 17) {
			sum = (sum + nodeval[i] + degree[i]) & 16777215;
		}
		total = (total * 31 + folded + live * 3 + spills * 7 + sum) & 268435455;
	}
	checksum(total);
}
`
