package bench

import (
	"fmt"

	"biaslab/internal/compiler"
)

// bzip2: analogue of 401.bzip2. The real benchmark is block-sorting
// compression; its hot loops are run-length encoding, move-to-front
// transformation and frequency counting over byte buffers. The analogue
// implements exactly those three stages plus a verifying decoder for the
// RLE stage.
func init() {
	register(&Benchmark{
		Name:   "bzip2",
		Spec:   "401.bzip2",
		Kernel: "run-length encoding, move-to-front, byte histograms",
		scales: map[Size]int{SizeTest: 1, SizeSmall: 3, SizeRef: 12},
		sources: func(scale int) []compiler.Source {
			return []compiler.Source{
				src("bzip2", "gen", bzipGen),
				src("bzip2", "rle", bzipRLE),
				src("bzip2", "mtf", bzipMTF),
				src("bzip2", "main", fmt.Sprintf(bzipMain, scale)),
			}
		},
	})
}

const bzipGen = `
// Input generation: runs of repeated bytes with pseudo-random lengths, the
// kind of data RLE feeds on.
byte input[2048];
int rngstate;

int nextrand() {
	rngstate = (rngstate * 1103515245 + 12345) & 2147483647;
	return rngstate >> 7;
}

void geninput(int seed, int len) {
	rngstate = seed;
	int i = 0;
	while (i < len) {
		int b = nextrand() % 64 + 'A';
		int run = nextrand() % 9 + 1;
		while (run > 0 && i < len) {
			input[i] = b;
			i++;
			run -= 1;
		}
	}
}
`

const bzipRLE = `
// Run-length coder: pairs of (byte, count), counts capped at 255.
byte rlebuf[8192];
int rlelen;

int rleencode(byte* srcb, int len) {
	rlelen = 0;
	int i = 0;
	while (i < len) {
		int b = srcb[i];
		int run = 1;
		while (i + run < len && srcb[i + run] == b && run < 255) {
			run++;
		}
		rlebuf[rlelen] = b;
		rlebuf[rlelen + 1] = run;
		rlelen += 2;
		i += run;
	}
	return rlelen;
}

int rledecodecheck(byte* srcb, int len) {
	// Verify the decode reproduces the input; returns mismatch count.
	int pos = 0;
	int bad = 0;
	for (int r = 0; r < rlelen; r += 2) {
		int b = rlebuf[r];
		int run = rlebuf[r + 1];
		for (int k = 0; k < run; k++) {
			if (pos < len) {
				if (srcb[pos] != b) {
					bad++;
				}
				pos++;
			}
		}
	}
	if (pos != len) {
		bad += 1000;
	}
	return bad;
}
`

const bzipMTF = `
// Move-to-front transform plus output histogram, the entropy-model stage.
byte mtftable[256];
int freq[256];

void mtfinit() {
	for (int i = 0; i < 256; i++) {
		mtftable[i] = i;
		freq[i] = 0;
	}
}

int mtfencode(byte* data, int len) {
	int acc = 0;
	for (int i = 0; i < len; i++) {
		int b = data[i];
		int j = 0;
		while (mtftable[j] != b) {
			j++;
		}
		freq[j] += 1;
		acc = (acc * 17 + j) & 16777215;
		while (j > 0) {
			mtftable[j] = mtftable[j - 1];
			j -= 1;
		}
		mtftable[0] = b;
	}
	return acc;
}

int entropyproxy() {
	// Sum of f*log2ish(f) using integer bit length as a log stand-in.
	int total = 0;
	for (int i = 0; i < 256; i++) {
		int f = freq[i];
		int bits = 0;
		while (f > 0) {
			f = f >> 1;
			bits++;
		}
		total += freq[i] * bits;
	}
	return total;
}
`

const bzipMain = `
void main() {
	int total = 0;
	int iters = %d;
	for (int it = 0; it < iters; it++) {
		geninput(it * 2654435761 + 99, 2048);
		int enc = rleencode(input, 2048);
		int bad = rledecodecheck(input, 2048);
		mtfinit();
		int acc = mtfencode(rlebuf, enc);
		int ent = entropyproxy();
		total = (total * 31 + enc + acc + ent + bad * 7777) & 268435455;
	}
	checksum(total);
}
`
