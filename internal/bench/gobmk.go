package bench

import (
	"fmt"

	"biaslab/internal/compiler"
)

// gobmk: analogue of 445.gobmk. The real benchmark plays Go: board
// manipulation, flood-fill liberty counting, and pattern-driven move
// evaluation — extremely branchy code over a small dense board. The
// analogue implements a 19×19 board with group/liberty analysis via
// flood fill and a greedy self-play loop.
func init() {
	register(&Benchmark{
		Name:   "gobmk",
		Spec:   "445.gobmk",
		Kernel: "board flood-fill, liberty counting, move evaluation",
		scales: map[Size]int{SizeTest: 1, SizeSmall: 2, SizeRef: 8},
		sources: func(scale int) []compiler.Source {
			return []compiler.Source{
				src("gobmk", "board", gobmkBoard),
				src("gobmk", "moves", gobmkMoves),
				src("gobmk", "main", fmt.Sprintf(gobmkMain, scale)),
			}
		},
	})
}

const gobmkBoard = `
// 19x19 board with a one-cell border sentinel (21x21 = 441 cells).
// 0 empty, 1 black, 2 white, 3 border.
byte board[441];
byte marks[441];
int brng;

int brand() {
	brng = (brng * 1103515245 + 12345) & 2147483647;
	return brng >> 7;
}

void clearboard(int seed) {
	brng = seed;
	for (int i = 0; i < 441; i++) {
		board[i] = 0;
		int r = i / 21;
		int c = i % 21;
		if (r == 0 || r == 20 || c == 0 || c == 20) {
			board[i] = 3;
		}
	}
}

int libertiesof(int pos) {
	// Flood fill the group at pos, counting distinct adjacent empties.
	for (int i = 0; i < 441; i++) {
		marks[i] = 0;
	}
	int who = board[pos];
	if (who == 0 || who == 3) {
		return 0;
	}
	int stack[441];
	int sp = 1;
	stack[0] = pos;
	marks[pos] = 1;
	int libs = 0;
	while (sp > 0) {
		sp -= 1;
		int p = stack[sp];
		int dirs[4];
		dirs[0] = p - 21;
		dirs[1] = p + 21;
		dirs[2] = p - 1;
		dirs[3] = p + 1;
		for (int d = 0; d < 4; d++) {
			int q = dirs[d];
			if (marks[q] == 0) {
				if (board[q] == 0) {
					marks[q] = 2;
					libs++;
				} else if (board[q] == who) {
					marks[q] = 1;
					stack[sp] = q;
					sp++;
				}
			}
		}
	}
	return libs;
}
`

const gobmkMoves = `
// Move evaluation: prefer moves with many own liberties, adjacency to
// enemy groups in atari, and central position.
int evalmove(int pos, int who) {
	if (board[pos] != 0) {
		return 0 - 1000;
	}
	int score = 0;
	int r = pos / 21;
	int c = pos % 21;
	int dr = r - 10;
	int dc = c - 10;
	if (dr < 0) { dr = -dr; }
	if (dc < 0) { dc = -dc; }
	score += 18 - dr - dc;
	board[pos] = who;
	int mylibs = libertiesof(pos);
	score += mylibs * 4;
	int enemy = 3 - who;
	int dirs[4];
	dirs[0] = pos - 21;
	dirs[1] = pos + 21;
	dirs[2] = pos - 1;
	dirs[3] = pos + 1;
	for (int d = 0; d < 4; d++) {
		int q = dirs[d];
		if (board[q] == enemy) {
			int el = libertiesof(q);
			if (el == 0) {
				score += 100;
			} else if (el == 1) {
				score += 25;
			}
		}
	}
	board[pos] = 0;
	if (mylibs == 0) {
		return 0 - 500;
	}
	return score;
}

int genmove(int who, int tries) {
	int best = 0 - 10000;
	int bestpos = 0;
	for (int t = 0; t < tries; t++) {
		int pos = brand() % 441;
		if (board[pos] == 0) {
			int s = evalmove(pos, who);
			if (s > best) {
				best = s;
				bestpos = pos;
			}
		}
	}
	if (best > 0 - 400) {
		board[bestpos] = who;
		return bestpos;
	}
	return 0 - 1;
}
`

const gobmkMain = `
void main() {
	int total = 0;
	int iters = %d;
	for (int it = 0; it < iters; it++) {
		clearboard(it * 7 + 3);
		int stones = 0;
		int libsum = 0;
		for (int mv = 0; mv < 20; mv++) {
			int who = mv %% 2 + 1;
			int pos = genmove(who, 8);
			if (pos >= 0) {
				stones++;
				libsum = (libsum + libertiesof(pos)) & 16777215;
			}
		}
		total = (total * 31 + stones + libsum) & 268435455;
	}
	checksum(total);
}
`
