package bench

import (
	"fmt"

	"biaslab/internal/compiler"
)

// sjeng: analogue of 458.sjeng. The real benchmark is a chess engine:
// recursive alpha-beta search with a transposition table and tactical
// evaluation. The analogue searches a simplified 8×8 capture game with
// genuine recursive alpha-beta, Zobrist-style hashing and a transposition
// table — the same deeply recursive, branch-mispredict-heavy profile.
func init() {
	register(&Benchmark{
		Name:   "sjeng",
		Spec:   "458.sjeng",
		Kernel: "recursive alpha-beta with transposition table",
		scales: map[Size]int{SizeTest: 1, SizeSmall: 2, SizeRef: 8},
		sources: func(scale int) []compiler.Source {
			return []compiler.Source{
				src("sjeng", "board", sjengBoard),
				src("sjeng", "tt", sjengTT),
				src("sjeng", "search", sjengSearch),
				src("sjeng", "main", fmt.Sprintf(sjengMain, scale)),
			}
		},
	})
}

const sjengBoard = `
// 8x8 board; piece values 0 empty, 1..5 side A, 9..13 side B.
byte sqs[64];
int zkeys[1024];
int srng;

int srand2() {
	srng = (srng * 1103515245 + 12345) & 2147483647;
	return srng >> 7;
}

void initzobrist() {
	for (int i = 0; i < 1024; i++) {
		zkeys[i] = srand2();
	}
}

void setupboard(int seed) {
	srng = seed;
	for (int i = 0; i < 64; i++) {
		sqs[i] = 0;
		int r = srand2() % 10;
		if (r < 2) {
			sqs[i] = srand2() % 5 + 1;
		} else if (r < 4) {
			sqs[i] = srand2() % 5 + 9;
		}
	}
}

int boardhash() {
	int h = 0;
	for (int i = 0; i < 64; i++) {
		if (sqs[i] != 0) {
			h = h ^ zkeys[(i * 14 + sqs[i]) & 1023];
		}
	}
	return h & 1048575;
}

int material(int side) {
	int m = 0;
	for (int i = 0; i < 64; i++) {
		int p = sqs[i];
		if (side == 0 && p >= 1 && p <= 5) {
			m += p;
		}
		if (side == 1 && p >= 9) {
			m += p - 8;
		}
	}
	return m;
}
`

const sjengTT = `
// Transposition table: depth-preferred replacement.
int ttkey[4096];
int ttscore[4096];
int ttdepth[4096];
int tthits;

int ttprobe(int key, int depth) {
	int idx = key & 4095;
	if (ttkey[idx] == key + 1 && ttdepth[idx] >= depth) {
		tthits++;
		return ttscore[idx];
	}
	return 0 - (1 << 29);
}

void ttstore(int key, int depth, int score) {
	int idx = key & 4095;
	if (ttdepth[idx] <= depth) {
		ttkey[idx] = key + 1;
		ttscore[idx] = score;
		ttdepth[idx] = depth;
	}
}

void ttclear() {
	for (int i = 0; i < 4096; i++) {
		ttkey[i] = 0;
		ttscore[i] = 0;
		ttdepth[i] = 0 - 1;
	}
}
`

const sjengSearch = `
int nodes;
int nodelimit;

int ismine(int p, int side) {
	if (side == 0) { return p >= 1 && p <= 5; }
	return p >= 9;
}

int istheirs(int p, int side) {
	return ismine(p, 1 - side);
}

// alphabeta searches capture sequences: each move slides a piece up to 2
// squares in one of 4 directions and captures whatever it lands on.
int alphabeta(int side, int depth, int alpha, int beta) {
	nodes++;
	if (depth == 0 || nodes >= nodelimit) {
		return material(side) - material(1 - side);
	}
	int key = (boardhash() * 2 + side) & 1048575;
	int cached = ttprobe(key, depth);
	if (cached > 0 - (1 << 29)) {
		return cached;
	}
	int best = 0 - (1 << 20);
	int moved = 0;
	for (int from = 0; from < 64; from++) {
		int p = sqs[from];
		if (ismine(p, side) == 0) { continue; }
		int fr = from / 8;
		int fc = from % 8;
		for (int d = 0; d < 4; d++) {
			int dr = 0;
			int dc = 0;
			if (d == 0) { dr = 1; }
			if (d == 1) { dr = 0 - 1; }
			if (d == 2) { dc = 1; }
			if (d == 3) { dc = 0 - 1; }
			for (int step = 1; step <= 2; step++) {
				int tr = fr + dr * step;
				int tc = fc + dc * step;
				if (tr < 0 || tr > 7 || tc < 0 || tc > 7) { break; }
				int to = tr * 8 + tc;
				int q = sqs[to];
				if (ismine(q, side)) { break; }
				if (q == 0 && step == 2) { break; }
				// Make the move.
				sqs[to] = p;
				sqs[from] = 0;
				int s = -alphabeta(1 - side, depth - 1, -beta, -alpha);
				// Unmake.
				sqs[from] = p;
				sqs[to] = q;
				moved = 1;
				if (s > best) { best = s; }
				if (best > alpha) { alpha = best; }
				if (alpha >= beta) {
					ttstore(key, depth, best);
					return best;
				}
				if (q != 0) { break; }
			}
		}
	}
	if (moved == 0) {
		best = material(side) - material(1 - side);
	}
	ttstore(key, depth, best);
	return best;
}
`

const sjengMain = `
void main() {
	int total = 0;
	int iters = %d;
	initzobrist();
	for (int it = 0; it < iters; it++) {
		setupboard(it * 104729 + 19);
		ttclear();
		nodes = 0;
		nodelimit = 250;
		int s = alphabeta(it & 1, 4, 0 - (1 << 20), 1 << 20);
		total = (total * 31 + s + nodes + tthits) & 268435455;
	}
	checksum(total);
}
`
