package bench

import (
	"fmt"

	"biaslab/internal/compiler"
)

// hmmer: analogue of 456.hmmer. The real benchmark runs profile-HMM
// sequence search; virtually all time goes into the Viterbi dynamic-
// programming recurrence over match/insert/delete state matrices. The
// analogue implements exactly that recurrence with integer scores over a
// synthetic profile and random sequences.
func init() {
	register(&Benchmark{
		Name:   "hmmer",
		Spec:   "456.hmmer",
		Kernel: "Viterbi dynamic programming over M/I/D states",
		scales: map[Size]int{SizeTest: 1, SizeSmall: 2, SizeRef: 8},
		sources: func(scale int) []compiler.Source {
			return []compiler.Source{
				src("hmmer", "hmm", hmmerModel),
				src("hmmer", "viterbi", hmmerViterbi),
				src("hmmer", "main", fmt.Sprintf(hmmerMain, scale)),
			}
		},
	})
}

const hmmerModel = `
// Profile HMM: 64 model positions, 20-letter alphabet.
int matchemit[1280];
int transmm[64];
int transmi[64];
int transmd[64];
byte sequence[128];
int hrng;

int hrand() {
	hrng = (hrng * 1103515245 + 12345) & 2147483647;
	return hrng >> 7;
}

void buildmodel(int seed) {
	hrng = seed;
	for (int i = 0; i < 1280; i++) {
		matchemit[i] = hrand() % 64 - 16;
	}
	for (int i = 0; i < 64; i++) {
		transmm[i] = hrand() % 8;
		transmi[i] = 0 - (hrand() % 12 + 4);
		transmd[i] = 0 - (hrand() % 12 + 4);
	}
}

int genseq(int seed, int maxlen) {
	hrng = seed * 2 + 1;
	int len = hrand() % (maxlen / 2) + maxlen / 2;
	for (int i = 0; i < len; i++) {
		sequence[i] = hrand() % 20;
	}
	return len;
}
`

const hmmerViterbi = `
// Viterbi over match/insert/delete lattices, row-rolled: only the
// previous row is kept, as hmmer's fast implementation does.
int mrow[65];
int irow[65];
int drow[65];
int mprev[65];
int iprev[65];
int dprev[65];

int max2(int a, int b) {
	if (a > b) { return a; }
	return b;
}

int viterbi(int seqlen) {
	int ninf = 0 - (1 << 28);
	for (int k = 0; k <= 64; k++) {
		mprev[k] = ninf;
		iprev[k] = ninf;
		dprev[k] = ninf;
	}
	mprev[0] = 0;
	int best = ninf;
	for (int i = 1; i <= seqlen; i++) {
		int c = sequence[i - 1];
		mrow[0] = ninf;
		irow[0] = max2(mprev[0] + transmi[0], iprev[0] - 2);
		drow[0] = ninf;
		for (int k = 1; k <= 64; k++) {
			int e = matchemit[(k - 1) * 20 + c];
			int viaM = mprev[k - 1] + transmm[k - 1];
			int viaI = iprev[k - 1] - 3;
			int viaD = dprev[k - 1] - 1;
			mrow[k] = max2(max2(viaM, viaI), viaD) + e;
			irow[k] = max2(mprev[k] + transmi[k - 1], iprev[k] - 2);
			drow[k] = max2(mrow[k - 1] + transmd[k - 1], drow[k - 1] - 1);
			if (mrow[k] > best) {
				best = mrow[k];
			}
		}
		for (int k = 0; k <= 64; k++) {
			mprev[k] = mrow[k];
			iprev[k] = irow[k];
			dprev[k] = drow[k];
		}
	}
	return best;
}
`

const hmmerMain = `
void main() {
	int total = 0;
	int iters = %d;
	buildmodel(424243);
	for (int it = 0; it < iters; it++) {
		int len = genseq(it + 1, 96);
		int score = viterbi(len);
		total = (total * 31 + score + len) & 268435455;
	}
	checksum(total);
}
`
