package analysis

import (
	"fmt"
	"sort"
)

// EnvPlan is the oracle's product in measurement-planning form: over one
// environment-size grid, the points whose predicted memory-system signature
// differs from their left neighbour. Between two consecutive boundaries the
// oracle predicts constant measured cycles, so an adaptive sweep need only
// measure the boundaries (plus whatever verification points it wants) and
// interpolate the plateaus.
//
// The struct is the shared contract between `biaslab predict -json` and the
// adaptive sweep planner in internal/core: what the command emits is exactly
// what the planner consumes.
type EnvPlan struct {
	Bench   string `json:"bench"`
	Machine string `json:"machine"`
	// Channel names the layout perturbation the grid walks: "env" (stack
	// displacement via environment bytes), "pad" (inter-object text padding),
	// "base" (image-base displacement), or "link" (link order). Empty means
	// "env" (plans predate the field).
	Channel string   `json:"channel,omitempty"`
	Sizes   []uint64 `json:"sizes"`
	// Boundaries are indices into Sizes where the predicted signature
	// differs from the previous grid point's, under any contributing
	// conflict map. Index 0 is never a boundary (it has no left neighbour).
	Boundaries []int `json:"boundaries"`
	// Exact reports whether every contributing map claimed exactness (no
	// approximate footprint, no set pressure, no unmodelled mechanism).
	// Inexact plans are still useful — the adaptive sweep verifies each
	// plateau empirically and falls back to dense measurement where the
	// prediction fails — but they carry no standalone guarantee.
	Exact   bool     `json:"exact"`
	Reasons []string `json:"reasons,omitempty"`
}

// NewEnvPlan merges one or more conflict maps computed over the same grid —
// typically one per compiler level, since an env sweep measures both O2 and
// O3 binaries — into a single plan whose boundaries are the union of every
// map's predicted transitions.
func NewEnvPlan(benchName, machineName string, sizes []uint64, maps ...*ConflictMap) (*EnvPlan, error) {
	if len(maps) == 0 {
		return nil, fmt.Errorf("analysis: NewEnvPlan needs at least one conflict map")
	}
	p := &EnvPlan{Bench: benchName, Machine: machineName, Sizes: sizes, Exact: true}
	mark := make([]bool, len(sizes))
	seenReason := map[string]bool{}
	addReason := func(r string) {
		if !seenReason[r] {
			seenReason[r] = true
			p.Reasons = append(p.Reasons, r)
		}
	}
	for _, cm := range maps {
		if len(cm.Sizes) != len(sizes) {
			return nil, fmt.Errorf("analysis: conflict map grid has %d sizes, plan grid %d", len(cm.Sizes), len(sizes))
		}
		for i, sz := range cm.Sizes {
			if sz != sizes[i] {
				return nil, fmt.Errorf("analysis: conflict map grid differs from plan grid at index %d (%d vs %d)", i, sz, sizes[i])
			}
		}
		for i := 1; i < len(cm.Signatures); i++ {
			if !cm.Signatures[i].same(cm.Signatures[i-1]) {
				mark[i] = true
			}
		}
		if cm.Approx {
			p.Exact = false
			for _, r := range cm.ApproxReasons {
				addReason(r)
			}
		}
		if cm.PressureAnywhere {
			p.Exact = false
			addReason("set pressure at some grid point")
		}
	}
	for i, m := range mark {
		if m {
			p.Boundaries = append(p.Boundaries, i)
		}
	}
	sort.Strings(p.Reasons)
	return p, nil
}

// NewChannelPlan merges one or more channel conflict maps computed over the
// same grid into a plan. The mapping from pairwise verdicts to boundaries is
// conservative: a plateau extends across grid point i only when every
// contributing map proved point i EQUAL to point i-1; any TRANSITION or
// UNKNOWN consecutive pair becomes a boundary. The plan is Exact only when
// every consecutive pair was decided (no UNKNOWN) and no map was approximate
// — then every claimed plateau is a proof, and every boundary is either a
// proven transition or honestly absent from the guarantee.
func NewChannelPlan(benchName, machineName string, values []uint64, maps ...*ChannelConflictMap) (*EnvPlan, error) {
	if len(maps) == 0 {
		return nil, fmt.Errorf("analysis: NewChannelPlan needs at least one channel conflict map")
	}
	p := &EnvPlan{Bench: benchName, Machine: machineName, Channel: maps[0].Channel, Sizes: values, Exact: true}
	mark := make([]bool, len(values))
	seenReason := map[string]bool{}
	addReason := func(r string) {
		if !seenReason[r] {
			seenReason[r] = true
			p.Reasons = append(p.Reasons, r)
		}
	}
	for _, cm := range maps {
		if cm.Channel != p.Channel {
			return nil, fmt.Errorf("analysis: mixed channels %q and %q in one plan", p.Channel, cm.Channel)
		}
		if len(cm.Values) != len(values) {
			return nil, fmt.Errorf("analysis: channel map grid has %d values, plan grid %d", len(cm.Values), len(values))
		}
		for i, v := range cm.Values {
			if v != values[i] {
				return nil, fmt.Errorf("analysis: channel map grid differs from plan grid at index %d (%d vs %d)", i, v, values[i])
			}
		}
		for i := 1; i < len(values); i++ {
			pr := cm.Pair(i-1, i)
			if pr == nil || pr.Verdict != VerdictEqual {
				mark[i] = true
			}
			if pr != nil && pr.Verdict == VerdictUnknown {
				p.Exact = false
				addReason(fmt.Sprintf("undecided pair %d→%d: %s", values[i-1], values[i], pr.Reason))
			}
		}
		if cm.Approx {
			p.Exact = false
			for _, r := range cm.ApproxReasons {
				addReason(r)
			}
		}
	}
	for i, m := range mark {
		if m {
			p.Boundaries = append(p.Boundaries, i)
		}
	}
	sort.Strings(p.Reasons)
	return p, nil
}
