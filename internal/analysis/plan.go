package analysis

import "fmt"

// EnvPlan is the oracle's product in measurement-planning form: over one
// environment-size grid, the points whose predicted memory-system signature
// differs from their left neighbour. Between two consecutive boundaries the
// oracle predicts constant measured cycles, so an adaptive sweep need only
// measure the boundaries (plus whatever verification points it wants) and
// interpolate the plateaus.
//
// The struct is the shared contract between `biaslab predict -json` and the
// adaptive sweep planner in internal/core: what the command emits is exactly
// what the planner consumes.
type EnvPlan struct {
	Bench   string   `json:"bench"`
	Machine string   `json:"machine"`
	Sizes   []uint64 `json:"sizes"`
	// Boundaries are indices into Sizes where the predicted signature
	// differs from the previous grid point's, under any contributing
	// conflict map. Index 0 is never a boundary (it has no left neighbour).
	Boundaries []int `json:"boundaries"`
	// Exact reports whether every contributing map claimed exactness (no
	// approximate footprint, no set pressure, no unmodelled mechanism).
	// Inexact plans are still useful — the adaptive sweep verifies each
	// plateau empirically and falls back to dense measurement where the
	// prediction fails — but they carry no standalone guarantee.
	Exact   bool     `json:"exact"`
	Reasons []string `json:"reasons,omitempty"`
}

// NewEnvPlan merges one or more conflict maps computed over the same grid —
// typically one per compiler level, since an env sweep measures both O2 and
// O3 binaries — into a single plan whose boundaries are the union of every
// map's predicted transitions.
func NewEnvPlan(benchName, machineName string, sizes []uint64, maps ...*ConflictMap) (*EnvPlan, error) {
	if len(maps) == 0 {
		return nil, fmt.Errorf("analysis: NewEnvPlan needs at least one conflict map")
	}
	p := &EnvPlan{Bench: benchName, Machine: machineName, Sizes: sizes, Exact: true}
	mark := make([]bool, len(sizes))
	seenReason := map[string]bool{}
	addReason := func(r string) {
		if !seenReason[r] {
			seenReason[r] = true
			p.Reasons = append(p.Reasons, r)
		}
	}
	for _, cm := range maps {
		if len(cm.Sizes) != len(sizes) {
			return nil, fmt.Errorf("analysis: conflict map grid has %d sizes, plan grid %d", len(cm.Sizes), len(sizes))
		}
		for i, sz := range cm.Sizes {
			if sz != sizes[i] {
				return nil, fmt.Errorf("analysis: conflict map grid differs from plan grid at index %d (%d vs %d)", i, sz, sizes[i])
			}
		}
		for i := 1; i < len(cm.Signatures); i++ {
			if !cm.Signatures[i].same(cm.Signatures[i-1]) {
				mark[i] = true
			}
		}
		if cm.Approx {
			p.Exact = false
			for _, r := range cm.ApproxReasons {
				addReason(r)
			}
		}
		if cm.PressureAnywhere {
			p.Exact = false
			addReason("set pressure at some grid point")
		}
	}
	for i, m := range mark {
		if m {
			p.Boundaries = append(p.Boundaries, i)
		}
	}
	return p, nil
}
