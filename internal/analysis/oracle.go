package analysis

import (
	"fmt"
	"strings"

	"biaslab/internal/ir"
	"biaslab/internal/linker"
	"biaslab/internal/loader"
	"biaslab/internal/machine"
)

// The bias oracle: stage 2's second half. Under the no-cache-pressure regime
// (every cache set's working-set occupancy is at most its associativity),
// the simulator's data-side misses are purely compulsory: each distinct
// touched line costs one L1D and one L2 miss, each distinct touched page one
// DTLB miss, and nothing else in the cycle count depends on addresses. The
// instruction side never moves with the environment, and the globals are
// fixed by the link. So the only env-sensitive term in the measured cycles
// is the number of distinct lines/pages the *stack* footprint covers at the
// environment-displaced initial SP — an integer-valued function of env size
// that the oracle evaluates without simulating, and whose steps are exactly
// the cycle-count discontinuities the paper's env sweeps exhibit.
//
// When pressure does exist somewhere, conflict-miss counts depend on access
// order, which a static pass cannot know; the oracle then includes the
// per-set occupancy pattern in the signature (any change is a potential
// transition) and flags the prediction as pressure-affected rather than
// claiming exactness.

// Oracle predicts environment-size sensitivity for one linked executable on
// one machine configuration.
type Oracle struct {
	Exe  *linker.Executable
	Foot *StackFootprint
	Cfg  machine.Config

	// Args and StackShift mirror the loader options the measurements use;
	// argv strings live on the stack, so argv participates in the SP
	// arithmetic.
	Args       []string
	StackShift uint64
}

// NewOracle extracts the stack footprint of exe and prepares a predictor
// for cfg. prog may be nil (see ExtractStackFootprint).
func NewOracle(exe *linker.Executable, prog *ir.Program, cfg machine.Config, args []string, stackShift uint64) (*Oracle, error) {
	foot, err := ExtractStackFootprint(exe, prog)
	if err != nil {
		return nil, err
	}
	return &Oracle{Exe: exe, Foot: foot, Cfg: cfg, Args: args, StackShift: stackShift}, nil
}

// EnvSignature is everything about the data-side memory system that can
// change when the environment size moves the stack. Two env sizes with equal
// signatures are predicted to measure identical cycle counts.
type EnvSignature struct {
	SP         uint64 // initial stack pointer at this env size
	StackLines int    // distinct L1D lines covered by the stack footprint
	StackL2    int    // distinct L2 lines (differs when line sizes differ)
	StackPages int    // distinct DTLB pages

	// Pressure is set when some L1D/L2/DTLB set's total occupancy (stack +
	// globals + text where applicable) exceeds its associativity; PatternSig
	// then fingerprints the per-set occupancy vector.
	Pressure   bool
	PatternSig uint64
}

// same reports whether two signatures predict the same cycle count.
func (s EnvSignature) same(o EnvSignature) bool {
	return s.StackLines == o.StackLines && s.StackL2 == o.StackL2 &&
		s.StackPages == o.StackPages && s.Pressure == o.Pressure &&
		s.PatternSig == o.PatternSig
}

// SignatureAt computes the signature for one environment size.
func (o *Oracle) SignatureAt(envBytes uint64) EnvSignature {
	sp := loader.InitialSP(loader.Options{
		Env:        loader.SyntheticEnv(envBytes),
		Args:       o.Args,
		StackShift: o.StackShift,
	})
	sig := EnvSignature{SP: sp}

	l1d := o.Cfg.L1D.Geometry()
	l2 := o.Cfg.L2.Geometry()
	dtlb := machine.TLBGeom(o.Cfg.DTLBEntries, o.Cfg.PageSize)

	stackL1D := o.unitSpans(sp, int64(l1d.LineSize))
	stackL2 := o.unitSpans(sp, int64(l2.LineSize))
	stackPages := o.unitSpans(sp, int64(dtlb.PageSize))
	sig.StackLines = countUnits(stackL1D)
	sig.StackL2 = countUnits(stackL2)
	sig.StackPages = countUnits(stackPages)

	// Pressure: per-set occupancy of each structure, counting everything
	// that competes for it. Globals are counted wholesale (every data/bss
	// byte assumed touched) — an over-approximation that can only err toward
	// reporting pressure, never toward missing it.
	globals := o.globalSpans()
	text := Interval{Lo: int64(o.Exe.TextBase), Hi: int64(o.Exe.TextBase) + int64(len(o.Exe.Text))}

	l1dOcc := occupancy(l1d.Sets, int64(l1d.LineSize), stackL1D, globals)
	l2Occ := occupancy(l2.Sets, int64(l2.LineSize), stackL2, globals, []Interval{text})
	dtlbOcc := occupancy(dtlb.Sets, int64(dtlb.PageSize), stackPages, globals)

	h := newPatternHash()
	over := false
	over = h.fold(l1dOcc, l1d.Ways) || over
	over = h.fold(l2Occ, l2.Ways) || over
	over = h.fold(dtlbOcc, dtlb.Ways) || over
	if over {
		sig.Pressure = true
		sig.PatternSig = h.sum
	}
	return sig
}

// unitSpans translates the stack footprint at sp into absolute intervals and
// returns them unchanged (they are already merged); the unit size is carried
// by the callers' countUnits/occupancy.
func (o *Oracle) unitSpans(sp uint64, unit int64) []unitSpan {
	spans := make([]unitSpan, 0, len(o.Foot.Intervals))
	for _, iv := range o.Foot.Intervals {
		lo := int64(sp) + iv.Lo
		hi := int64(sp) + iv.Hi
		spans = append(spans, unitSpan{first: lo / unit, last: (hi - 1) / unit})
	}
	return spans
}

func (o *Oracle) globalSpans() []Interval {
	var out []Interval
	if len(o.Exe.Data) > 0 {
		out = append(out, Interval{Lo: int64(o.Exe.DataBase), Hi: int64(o.Exe.DataBase) + int64(len(o.Exe.Data))})
	}
	if o.Exe.BSSSize > 0 {
		out = append(out, Interval{Lo: int64(o.Exe.BSSBase), Hi: int64(o.Exe.BSSBase) + int64(o.Exe.BSSSize)})
	}
	return out
}

// unitSpan is an inclusive range of line/page indices.
type unitSpan struct{ first, last int64 }

// countUnits counts distinct unit indices across spans. Spans come from
// merged byte intervals, so they are ordered but may share boundary units.
func countUnits(spans []unitSpan) int {
	n := 0
	prev := int64(-1 << 62)
	for _, s := range spans {
		f := s.first
		if f <= prev {
			f = prev + 1
		}
		if s.last >= f {
			n += int(s.last - f + 1)
			prev = s.last
		}
	}
	return n
}

// occupancy computes the per-set distinct-unit count for one cache/TLB
// structure over stack spans plus byte-interval regions. Units (lines or
// pages) are deduplicated first: several stack intervals inside one line
// still occupy exactly one way.
func occupancy(sets int, unit int64, stack []unitSpan, regions ...[]Interval) []int16 {
	units := map[int64]struct{}{}
	add := func(first, last int64) {
		for u := first; u <= last; u++ {
			units[u] = struct{}{}
		}
	}
	for _, s := range stack {
		add(s.first, s.last)
	}
	for _, ivs := range regions {
		for _, iv := range ivs {
			if iv.Hi > iv.Lo {
				add(iv.Lo/unit, (iv.Hi-1)/unit)
			}
		}
	}
	occ := make([]int16, sets)
	for u := range units {
		occ[((u%int64(sets))+int64(sets))%int64(sets)]++
	}
	return occ
}

// patternHash fingerprints occupancy vectors (FNV-1a over the counts).
type patternHash struct{ sum uint64 }

func newPatternHash() *patternHash { return &patternHash{sum: 14695981039346656037} }

// fold mixes one structure's occupancy vector into the hash and reports
// whether any set exceeds the given associativity.
func (h *patternHash) fold(occ []int16, ways int) bool {
	over := false
	for _, c := range occ {
		h.sum ^= uint64(uint16(c))
		h.sum *= 1099511628211
		if int(c) > ways {
			over = true
		}
	}
	return over
}

// Transition is one predicted conflict-transition point: the first grid env
// size whose signature differs from the previous grid point's.
type Transition struct {
	PrevEnv  uint64
	EnvBytes uint64
	Prev     EnvSignature
	Next     EnvSignature
	// DeltaCycles is the predicted cycle-count step across the transition
	// under the compulsory-miss model (meaningless under pressure).
	DeltaCycles int64
	Reason      string
}

// ConflictMap is the oracle's product: the predicted env-size sensitivity
// structure of one (executable, machine) pair over a grid of env sizes.
type ConflictMap struct {
	Bench      string
	Machine    string
	Sizes      []uint64
	Signatures []EnvSignature
	// Transitions lists the grid points where the predicted signature
	// changes; between consecutive transitions measured cycles are predicted
	// to be constant.
	Transitions []Transition
	// Approx mirrors StackFootprint.Approx: predictions from an approximate
	// footprint may over-count.
	Approx        bool
	ApproxReasons []string
	// PressureAnywhere is set when any grid point saw set pressure; the
	// compulsory-miss cycle model is not exact there.
	PressureAnywhere bool
}

// ConflictMap evaluates the oracle over a grid of env sizes. Grid spacing is
// the caller's resolution/accuracy trade-off; transitions between grid
// points are attributed to the right-hand point.
func (o *Oracle) ConflictMap(benchName, machineName string, sizes []uint64) *ConflictMap {
	cm := &ConflictMap{
		Bench:         benchName,
		Machine:       machineName,
		Sizes:         sizes,
		Approx:        o.Foot.Approx,
		ApproxReasons: o.Foot.ApproxReasons,
	}
	// Two machine features make misses depend on access order/history in
	// ways a footprint cannot capture; predictions stay useful but lose the
	// exactness claim.
	if o.Cfg.NextLinePrefetch {
		cm.Approx = true
		cm.ApproxReasons = append(cm.ApproxReasons, "next-line prefetch not modelled")
	}
	if o.Cfg.StoreBufferDepth > 0 {
		cm.Approx = true
		cm.ApproxReasons = append(cm.ApproxReasons, "4KiB store aliasing not modelled")
	}
	p := o.Cfg.Penalties
	for i, sz := range sizes {
		sig := o.SignatureAt(sz)
		cm.Signatures = append(cm.Signatures, sig)
		if sig.Pressure {
			cm.PressureAnywhere = true
		}
		if i == 0 {
			continue
		}
		prev := cm.Signatures[i-1]
		if sig.same(prev) {
			continue
		}
		delta := int64(sig.StackLines-prev.StackLines)*int64(p.L1Miss) +
			int64(sig.StackL2-prev.StackL2)*int64(p.L2Miss) +
			int64(sig.StackPages-prev.StackPages)*int64(p.DTLBMiss)
		cm.Transitions = append(cm.Transitions, Transition{
			PrevEnv:     sizes[i-1],
			EnvBytes:    sz,
			Prev:        prev,
			Next:        sig,
			DeltaCycles: delta,
			Reason:      transitionReason(prev, sig),
		})
	}
	return cm
}

func transitionReason(a, b EnvSignature) string {
	var parts []string
	if a.StackLines != b.StackLines {
		parts = append(parts, fmt.Sprintf("L1D stack lines %d→%d", a.StackLines, b.StackLines))
	}
	if a.StackL2 != b.StackL2 {
		parts = append(parts, fmt.Sprintf("L2 stack lines %d→%d", a.StackL2, b.StackL2))
	}
	if a.StackPages != b.StackPages {
		parts = append(parts, fmt.Sprintf("stack pages %d→%d", a.StackPages, b.StackPages))
	}
	if a.Pressure != b.Pressure || a.PatternSig != b.PatternSig {
		parts = append(parts, "set-pressure pattern changed")
	}
	return strings.Join(parts, ", ")
}
