package analysis_test

import (
	"context"
	"testing"

	"biaslab/internal/analysis"
	"biaslab/internal/bench"
	"biaslab/internal/core"
	"biaslab/internal/machine"
)

// Cross-validation machine configs. Both are deliberately pressure-free for
// the small-global benchmarks under test (large associativity, no store
// buffer, no prefetch), so the oracle's compulsory-miss model is exact and
// every predicted transition must appear in the measured sweep — and vice
// versa. The two differ in cache geometry, page size and penalties so the
// oracle is validated against two genuinely different set mappings.
func xvalConfigA() machine.Config {
	return machine.Config{
		Name:        "xval-a",
		IssueWidth:  4,
		L1I:         machine.CacheConfig{Name: "L1I", SizeKB: 32, LineSize: 64, Ways: 8},
		L1D:         machine.CacheConfig{Name: "L1D", SizeKB: 64, LineSize: 64, Ways: 8},
		L2:          machine.CacheConfig{Name: "L2", SizeKB: 2048, LineSize: 64, Ways: 16},
		ITLBEntries: 128, DTLBEntries: 256, PageSize: 4096,
		Predictor: machine.PredictorConfig{HistoryBits: 12, BTBEntries: 2048, RASDepth: 16},
		Penalties: machine.Penalties{
			L1Miss: 10, L2Miss: 200, ITLBMiss: 20, DTLBMiss: 30,
			Mispredict: 10, BTBRedirect: 4, TakenBranch: 1, MisalignedEntry: 2,
			SplitAccess: 5, Alias4K: 0, Mul: 3, Div: 20, Sys: 100,
		},
		StoreBufferDepth: 0, AliasWindow: 0, FetchBlockBytes: 16,
	}
}

func xvalConfigB() machine.Config {
	return machine.Config{
		Name:        "xval-b",
		IssueWidth:  2,
		L1I:         machine.CacheConfig{Name: "L1I", SizeKB: 16, LineSize: 64, Ways: 4},
		L1D:         machine.CacheConfig{Name: "L1D", SizeKB: 32, LineSize: 64, Ways: 8},
		L2:          machine.CacheConfig{Name: "L2", SizeKB: 1024, LineSize: 128, Ways: 16},
		ITLBEntries: 64, DTLBEntries: 64, PageSize: 8192,
		Predictor: machine.PredictorConfig{HistoryBits: 12, BTBEntries: 512, RASDepth: 8},
		Penalties: machine.Penalties{
			L1Miss: 18, L2Miss: 350, ITLBMiss: 55, DTLBMiss: 55,
			Mispredict: 20, BTBRedirect: 8, TakenBranch: 1, MisalignedEntry: 2,
			SplitAccess: 6, Alias4K: 0, Mul: 4, Div: 40, Sys: 150,
		},
		StoreBufferDepth: 0, AliasWindow: 0, FetchBlockBytes: 32,
	}
}

// xvalGrid is the shared env-size grid: step-8 over representable synthetic
// sizes, spanning ~1.5 KiB of stack displacement — a couple dozen line
// transitions and (depending on where the stack top lands) a page crossing.
func xvalGrid() []uint64 {
	var sizes []uint64
	for e := uint64(24); e <= 1560; e += 8 {
		sizes = append(sizes, e)
	}
	return sizes
}

// TestOracleCrossValidation is the acceptance gate of the bias oracle: for
// two benchmarks × two machine configs, every statically predicted
// conflict-transition env size must lie within one cache line of a measured
// cycle-count discontinuity, and every measured discontinuity must have a
// predicted transition. With exact footprints and no pressure the
// correspondence is in fact required to be exact — the one-line tolerance of
// the acceptance criterion is slack the test does not need.
func TestOracleCrossValidation(t *testing.T) {
	if testing.Short() {
		t.Skip("sweeps ~800 simulator runs")
	}
	ctx := context.Background()
	sizes := xvalGrid()

	for _, benchName := range []string{"hmmer", "libquantum"} {
		b, ok := bench.ByName(benchName)
		if !ok {
			t.Fatalf("benchmark %s not registered", benchName)
		}
		for _, cfg := range []machine.Config{xvalConfigA(), xvalConfigB()} {
			t.Run(benchName+"/"+cfg.Name, func(t *testing.T) {
				r := core.NewRunner(bench.SizeTest)
				if err := r.RegisterMachine(cfg.Name, cfg); err != nil {
					t.Fatal(err)
				}
				setup := core.DefaultSetup(cfg.Name)

				exe, err := r.Executable(b, setup)
				if err != nil {
					t.Fatal(err)
				}
				o, err := analysis.NewOracle(exe, nil, cfg, []string{b.Name}, 0)
				if err != nil {
					t.Fatal(err)
				}
				if o.Foot.Approx {
					t.Fatalf("footprint unexpectedly approximate: %v", o.Foot.ApproxReasons)
				}
				cm := o.ConflictMap(b.Name, cfg.Name, sizes)
				if cm.PressureAnywhere {
					t.Fatalf("xval config %s was meant to be pressure-free", cfg.Name)
				}

				// Measured sweep: raw cycles at each env size, single level.
				cycles := make([]uint64, len(sizes))
				for i, sz := range sizes {
					s := setup
					s.EnvBytes = sz
					m, err := r.Measure(ctx, b, s)
					if err != nil {
						t.Fatal(err)
					}
					cycles[i] = m.Cycles
				}
				var measured []uint64
				for i := 1; i < len(sizes); i++ {
					if cycles[i] != cycles[i-1] {
						measured = append(measured, sizes[i])
					}
				}
				var predicted []uint64
				for _, tr := range cm.Transitions {
					predicted = append(predicted, tr.EnvBytes)
				}

				t.Logf("%s/%s: %d predicted transitions, %d measured discontinuities",
					benchName, cfg.Name, len(predicted), len(measured))
				if len(measured) == 0 {
					t.Fatalf("sweep shows no discontinuities at all — grid too narrow to validate")
				}

				tol := uint64(cfg.L1D.Geometry().LineSize)
				for _, p := range predicted {
					if !within(p, measured, tol) {
						t.Errorf("predicted transition at env=%d has no measured discontinuity within %dB", p, tol)
					}
				}
				for _, m := range measured {
					if !within(m, predicted, tol) {
						t.Errorf("measured discontinuity at env=%d has no predicted transition within %dB", m, tol)
					}
				}
			})
		}
	}
}

func within(x uint64, ys []uint64, tol uint64) bool {
	for _, y := range ys {
		d := x - y
		if x < y {
			d = y - x
		}
		if d <= tol {
			return true
		}
	}
	return false
}
