package analysis

import (
	"os"
	"testing"

	"biaslab/internal/bench"
	"biaslab/internal/cmini"
)

func checkProgram(t *testing.T, named map[string]string) *cmini.Unit {
	t.Helper()
	var files []*cmini.File
	for name, src := range named {
		f, err := cmini.ParseFile(name, src)
		if err != nil {
			t.Fatalf("parse %s: %v", name, err)
		}
		files = append(files, f)
	}
	u, err := cmini.Check(files)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	return u
}

// TestLintBrokenFixture pins every lint class to its specimen in
// testdata/broken.cm: exact line, exact code, nothing extra.
func TestLintBrokenFixture(t *testing.T) {
	src, err := os.ReadFile("testdata/broken.cm")
	if err != nil {
		t.Fatal(err)
	}
	u := checkProgram(t, map[string]string{"broken.cm": string(src)})
	diags := Lint(u)

	want := []struct {
		line int
		code string
	}{
		{6, CodeUnused},
		{9, CodeUninit},
		{10, CodeUBShift},
		{11, CodeDivZero},
		{12, CodeDivZero},
		{13, CodeConstCond},
		{16, CodeConstCond},
		{20, CodeUnreachable},
	}
	if len(diags) != len(want) {
		for _, d := range diags {
			t.Logf("got: %s", d)
		}
		t.Fatalf("lint produced %d diagnostics, want %d", len(diags), len(want))
	}
	for i, w := range want {
		d := diags[i]
		if d.Pos.Line != w.line || d.Code != w.code {
			t.Errorf("diag %d = %s (line %d, %s), want line %d %s", i, d, d.Pos.Line, d.Code, w.line, w.code)
		}
	}
}

// TestLintCleanOnBenchmarks is an acceptance gate: the shipped benchmark
// programs must produce zero findings, at every size. A lint with false
// positives on its own corpus is worse than no lint.
func TestLintCleanOnBenchmarks(t *testing.T) {
	for _, b := range bench.All() {
		for _, size := range []bench.Size{bench.SizeTest, bench.SizeSmall, bench.SizeRef} {
			named := map[string]string{}
			for _, s := range b.Sources(size) {
				named[s.Name] = s.Text
			}
			u := checkProgram(t, named)
			if diags := Lint(u); len(diags) != 0 {
				for _, d := range diags {
					t.Errorf("%s/%s: %s", b.Name, size, d)
				}
			}
		}
	}
}

// TestLintConservatism locks in the no-false-positive policy on the
// control-flow shapes real code uses.
func TestLintConservatism(t *testing.T) {
	clean := []string{
		// maybe-initialized reads are not flagged
		`void main() { int x; int c; c = 1; if (c) { x = 1; } print(x + c); }`,
		// loop-carried assignment reaches reads earlier in the body
		`void main() { int i; int x; for (i = 0; i < 4; i++) { print(x); x = i; } }`,
		// while(1) with break is not "unreachable" after the loop
		`void main() { int n; n = 0; while (1) { n++; if (n > 3) { break; } } print(n); }`,
		// address-taken locals are exempt from init tracking
		`void f(int* p) { *p = 7; } void main() { int x; f(&x); print(x); }`,
		// arrays are exempt
		`void main() { int a[4]; a[0] = 1; print(a[0]); }`,
		// shift by in-range constant, division by non-zero constant
		`void main() { int x; x = 1 << 63; x = x / 2 % 3 >> 1; print(x); }`,
		// else-if chains where every arm assigns
		`void main() { int c; int x; c = 2; if (c == 1) { x = 1; } else { if (c == 2) { x = 2; } else { x = 3; } } print(x); }`,
	}
	for i, src := range clean {
		u := checkProgram(t, map[string]string{"clean.cm": src})
		for _, d := range Lint(u) {
			t.Errorf("program %d: unexpected diagnostic %s", i, d)
		}
	}

	// Definite-uninit reads through every path ARE flagged.
	u := checkProgram(t, map[string]string{"bad.cm": `void main() { int x; print(x); }`})
	diags := Lint(u)
	if len(diags) != 1 || diags[0].Code != CodeUninit {
		t.Errorf("definite uninit read: got %v, want one %s", diags, CodeUninit)
	}
}
