package analysis

import (
	"fmt"
	"sort"

	"biaslab/internal/linker"
	"biaslab/internal/machine"
	"biaslab/internal/obj"
)

// Link-order half of the conflict map. Permuting object order moves every
// function and global to a new address, which shifts three things the
// simulator charges for: function-entry alignment relative to the fetch
// block (the MisalignedEntry penalty), the L1I sets the text occupies, and
// the L1D/DTLB sets the globals occupy. All three are pure layout functions
// — a relink plus an address scan predicts them without simulating, so the
// oracle can rank every permutation of a benchmark's objects by predicted
// alignment exposure and partition them into layout-equivalence classes
// (identical layouts are guaranteed identical measurements; the simulator
// is deterministic in the image).

// LinkPerm is the static signature of one link permutation.
type LinkPerm struct {
	// Order holds source-object indices in layout order (identity =
	// baseline source order). crt0 is implicit and always first.
	Order []int
	// MisalignedFuncs lists functions whose entry is not aligned to the
	// machine's fetch block; each entry of such a function costs the
	// MisalignedEntry penalty at run time.
	MisalignedFuncs []string
	// L1IPressure is set when some L1I set's line occupancy from the text
	// segment exceeds its associativity.
	L1IPressure bool
	// DataBase/BSSBase locate the globals; moving them remaps every global
	// to new L1D/L2/DTLB sets.
	DataBase, BSSBase uint64
	// LayoutSig fingerprints the full layout (every function address plus
	// section bases). Equal signatures mean bytewise-equivalent layout and
	// therefore identical measured cycles on a deterministic simulator.
	LayoutSig uint64
}

// LinkOrderMap ranks every enumerated permutation of one benchmark's
// objects by predicted alignment exposure.
type LinkOrderMap struct {
	FetchBlockBytes int
	// Perms holds the enumerated permutations, baseline (source order)
	// first, then sorted by misaligned-entry count descending.
	Perms []LinkPerm
	// Classes counts distinct LayoutSig values: an upper bound on the
	// number of distinct cycle counts link order alone can produce.
	Classes int
	// Truncated is set when enumeration stopped at the cap.
	Truncated bool
}

// Baseline returns the source-order permutation's signature.
func (lm *LinkOrderMap) Baseline() *LinkPerm { return &lm.Perms[0] }

// BuildLinkOrderMap links every permutation of objs (up to maxPerms) with
// the given layout options and computes each layout's static signature.
func BuildLinkOrderMap(objs []*obj.Object, cfg machine.Config, opts linker.Options, maxPerms int) (*LinkOrderMap, error) {
	if len(objs) == 0 {
		return nil, fmt.Errorf("analysis: no objects to permute")
	}
	if maxPerms <= 0 {
		maxPerms = 1
	}
	lm := &LinkOrderMap{FetchBlockBytes: cfg.FetchBlockBytes}
	sigs := map[uint64]bool{}

	idx := make([]int, len(objs))
	for i := range idx {
		idx[i] = i
	}
	var firstErr error
	permute(idx, func(order []int) bool {
		if len(lm.Perms) >= maxPerms {
			lm.Truncated = true
			return false
		}
		ordered := make([]*obj.Object, len(order))
		for i, src := range order {
			ordered[i] = objs[src]
		}
		exe, err := linker.Link(ordered, opts)
		if err != nil {
			firstErr = fmt.Errorf("analysis: link order %v: %w", order, err)
			return false
		}
		p := signPerm(exe, cfg, order)
		lm.Perms = append(lm.Perms, p)
		sigs[p.LayoutSig] = true
		return true
	})
	if firstErr != nil {
		return nil, firstErr
	}
	lm.Classes = len(sigs)
	// Baseline stays first; the rest rank worst-aligned first.
	rest := lm.Perms[1:]
	sort.SliceStable(rest, func(i, j int) bool {
		return len(rest[i].MisalignedFuncs) > len(rest[j].MisalignedFuncs)
	})
	return lm, nil
}

// signPerm computes one linked layout's signature.
func signPerm(exe *linker.Executable, cfg machine.Config, order []int) LinkPerm {
	p := LinkPerm{
		Order:    append([]int(nil), order...),
		DataBase: exe.DataBase,
		BSSBase:  exe.BSSBase,
	}
	h := newPatternHash()
	fetch := uint64(cfg.FetchBlockBytes)
	for _, f := range exe.Funcs {
		if fetch > 0 && f.Addr%fetch != 0 {
			p.MisalignedFuncs = append(p.MisalignedFuncs, f.Name)
		}
		h.word(f.Addr)
		h.word(f.Size)
	}
	h.word(exe.TextBase)
	h.word(uint64(len(exe.Text)))
	h.word(exe.DataBase)
	h.word(exe.BSSBase)
	h.word(exe.BSSSize)
	p.LayoutSig = h.sum

	l1i := cfg.L1I.Geometry()
	text := []Interval{{Lo: int64(exe.TextBase), Hi: int64(exe.TextBase) + int64(len(exe.Text))}}
	occ := occupancy(l1i.Sets, int64(l1i.LineSize), nil, text)
	for _, c := range occ {
		if int(c) > l1i.Ways {
			p.L1IPressure = true
			break
		}
	}
	return p
}

// permute calls visit with every permutation of idx in a deterministic
// order (identity first), stopping when visit returns false.
func permute(idx []int, visit func([]int) bool) {
	var rec func(k int) bool
	rec = func(k int) bool {
		if k == len(idx) {
			return visit(idx)
		}
		for i := k; i < len(idx); i++ {
			idx[k], idx[i] = idx[i], idx[k]
			ok := rec(k + 1)
			idx[k], idx[i] = idx[i], idx[k]
			if !ok {
				return false
			}
		}
		return true
	}
	rec(0)
}

// word mixes one 64-bit value into the hash.
func (h *patternHash) word(v uint64) {
	for i := 0; i < 8; i++ {
		h.sum ^= (v >> (8 * i)) & 0xff
		h.sum *= 1099511628211
	}
}
